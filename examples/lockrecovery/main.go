// Lockrecovery: the section 3.1 / 4.2.2 lock-space scenario, end to end.
// Many transactions on different nodes acquire shared locks on the same
// records; each lock control block (LCB) lives in one cache line of shared
// memory, valid only at the node that acquired it last. When that node
// crashes it takes other transactions' lock state with it. Recovery
// releases the crashed transactions' locks, reinstalls the destroyed LCB
// lines, and rebuilds the survivors' entries from their logical lock logs —
// which is why IFA requires logging read locks.
package main

import (
	"errors"
	"fmt"
	"log"

	"smdb"
)

func main() {
	db, err := smdb.Open(smdb.Options{Nodes: 4, Protocol: smdb.VolatileSelectiveRedo})
	if err != nil {
		log.Fatal(err)
	}
	// Seed shared records.
	const shared = 12
	setup, err := db.Begin(0)
	must(err)
	for i := 0; i < shared; i++ {
		must(setup.Insert(smdb.NewRID(0, uint16(i)), []byte{byte(i)}))
	}
	must(setup.Commit())
	must(db.Checkpoint())

	// Every node's transaction read-locks every shared record, in node
	// order: node 3 acquires last, so it holds the only copy of each LCB.
	var txns []*smdb.Txn
	for n := 0; n < 4; n++ {
		tx, err := db.Begin(smdb.NodeID(n))
		must(err)
		txns = append(txns, tx)
	}
	for i := 0; i < shared; i++ {
		for _, tx := range txns {
			_, err := tx.Read(smdb.NewRID(0, uint16(i)))
			must(err)
		}
	}
	fmt.Printf("4 transactions share read locks on %d records; node 3 holds every LCB line\n", shared)

	before := db.Stats().Locks
	fmt.Printf("lock manager so far: %d acquisitions, %d lock log records (read locks included)\n",
		before.Acquires, before.LockLogs)

	// Crash the node holding the lock space.
	db.Crash(3)
	rep, err := db.Recover()
	must(err)
	fmt.Printf("node 3 crashed: recovery reinstalled %d LCB lines, released %d entries of %v, replayed %d lock acquisitions\n",
		rep.LCBsReinstalled, rep.LockEntriesReleased, rep.Aborted, rep.LocksReplayed)
	if v := db.CheckIFA(); len(v) != 0 {
		log.Fatalf("IFA violated: %v", v)
	}
	fmt.Println("IFA check passed: every surviving transaction still holds its read locks")

	// Prove the survivors' locks are live: their reads still work, and a
	// writer must wait for them.
	for _, tx := range txns[:3] {
		_, err := tx.Read(smdb.NewRID(0, 0))
		must(err)
	}
	writer, err := db.Begin(0)
	must(err)
	if err := writer.Write(smdb.NewRID(0, 0), []byte{99}); !errors.Is(err, smdb.ErrBlocked) {
		log.Fatalf("writer was not blocked by the rebuilt read locks: %v", err)
	}
	fmt.Println("a new writer correctly blocks behind the rebuilt shared locks")

	// Survivors commit; the writer proceeds.
	for _, tx := range txns[:3] {
		must(tx.Commit())
	}
	for {
		err := writer.Write(smdb.NewRID(0, 0), []byte{99})
		if errors.Is(err, smdb.ErrBlocked) {
			continue
		}
		must(err)
		break
	}
	must(writer.Commit())
	fmt.Println("survivors committed; the writer acquired the lock and committed")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
