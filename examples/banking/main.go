// Banking: a multi-node money-transfer workload (the classic TP benchmark
// shape) with a node crash in the middle. Each node runs transfer
// transactions between accounts stored in shared memory; accounts are small
// enough that several share a cache line, so uncommitted balances migrate
// between nodes constantly. After the crash and recovery, the example
// verifies the money-conservation invariant: the sum of all balances equals
// the initial total, because exactly the crashed node's in-flight transfers
// were rolled back and nobody else's work was touched.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"smdb"
)

const (
	accounts       = 96
	initialBalance = 1000
	transfersPer   = 25
	nodes          = 4
)

func accountRID(i int) smdb.RID {
	// 24 slots per page with the default layout (8 lines/page, 4
	// records/line, minus the header line).
	return smdb.NewRID(int32(i/24), uint16(i%24))
}

func readBalance(tx *smdb.Txn, i int) (int64, error) {
	b, err := tx.Read(accountRID(i))
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

func writeBalance(tx *smdb.Txn, i int, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return tx.Write(accountRID(i), b[:])
}

// transfer moves amount between two accounts, retrying while blocked.
// It returns false if the transaction was a deadlock victim.
func transfer(db *smdb.DB, node smdb.NodeID, from, to int, amount int64) (bool, error) {
	tx, err := db.Begin(node)
	if err != nil {
		return false, err
	}
	step := func() error {
		src, err := readBalance(tx, from)
		if err != nil {
			return err
		}
		dst, err := readBalance(tx, to)
		if err != nil {
			return err
		}
		if err := writeBalance(tx, from, src-amount); err != nil {
			return err
		}
		return writeBalance(tx, to, dst+amount)
	}
	for {
		err := step()
		switch {
		case err == nil:
			return true, tx.Commit()
		case errors.Is(err, smdb.ErrBlocked):
			continue
		case errors.Is(err, smdb.ErrDeadlock):
			return false, tx.Abort()
		default:
			return false, err
		}
	}
}

func totalBalance(db *smdb.DB, node smdb.NodeID) (int64, error) {
	tx, err := db.Begin(node)
	if err != nil {
		return 0, err
	}
	var sum int64
	for i := 0; i < accounts; i++ {
		for {
			v, err := readBalance(tx, i)
			if errors.Is(err, smdb.ErrBlocked) {
				continue
			}
			if err != nil {
				return 0, err
			}
			sum += v
			break
		}
	}
	return sum, tx.Commit()
}

func main() {
	db, err := smdb.Open(smdb.Options{Nodes: nodes, Protocol: smdb.VolatileSelectiveRedo})
	if err != nil {
		log.Fatal(err)
	}
	// Open accounts.
	setup, err := db.Begin(0)
	must(err)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], initialBalance)
	for i := 0; i < accounts; i++ {
		must(setup.Insert(accountRID(i), b[:]))
	}
	must(setup.Commit())
	must(db.Checkpoint())
	want := int64(accounts * initialBalance)
	fmt.Printf("opened %d accounts with %d each (total %d)\n", accounts, initialBalance, want)

	// Committed transfers from every node.
	rng := rand.New(rand.NewSource(7))
	done, victims := 0, 0
	for i := 0; i < transfersPer*nodes; i++ {
		node := smdb.NodeID(i % nodes)
		from, to := rng.Intn(accounts), rng.Intn(accounts)
		if from == to {
			continue
		}
		ok, err := transfer(db, node, from, to, int64(rng.Intn(100)+1))
		must(err)
		if ok {
			done++
		} else {
			victims++
		}
	}
	fmt.Printf("committed %d transfers (%d deadlock victims rolled back)\n", done, victims)

	// In-flight transfers on every node, withdrawn but not yet deposited:
	// the dangerous moment.
	var inflight []*smdb.Txn
	for n := 0; n < nodes; n++ {
		tx, err := db.Begin(smdb.NodeID(n))
		must(err)
		from := n * 3
		src, err := readBalance(tx, from)
		must(err)
		must(writeBalance(tx, from, src-500)) // money has left the account
		inflight = append(inflight, tx)
	}
	fmt.Printf("4 transfers in flight (withdrawn, not deposited) — crashing node 2 now\n")

	db.Crash(2)
	rep, err := db.Recover()
	must(err)
	fmt.Printf("recovery aborted %v\n", rep.Aborted)
	if v := db.CheckIFA(); len(v) != 0 {
		log.Fatalf("IFA violated: %v", v)
	}

	// Survivors complete their transfers.
	for _, tx := range inflight {
		if tx.Node() == 2 {
			continue
		}
		to := int(tx.Node())*3 + 1
		for {
			dst, err := readBalance(tx, to)
			if errors.Is(err, smdb.ErrBlocked) {
				continue
			}
			must(err)
			must(writeBalance(tx, to, dst+500))
			break
		}
		must(tx.Commit())
	}
	fmt.Println("surviving in-flight transfers completed and committed")

	got, err := totalBalance(db, 0)
	must(err)
	if got != want {
		log.Fatalf("conservation violated: total = %d, want %d", got, want)
	}
	fmt.Printf("conservation holds: total balance = %d\n", got)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
