// DSM: the section 3.3 scenario — a geographically dispersed shared-memory
// network where users "plug into" the machine and may power down at any
// moment, "essentially simulating a node crash". Without IFA such a network
// would be unusable: every departure would abort everyone's work. This
// example churns nodes through repeated crash/recover/rejoin cycles while a
// workload keeps running on the survivors, verifying IFA after every
// departure and showing the system never loses committed work.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"smdb"
)

const (
	nodes  = 6
	churns = 8 // departures (crashes) injected
)

func main() {
	db, err := smdb.Open(smdb.Options{
		Nodes:    nodes,
		Protocol: smdb.VolatileSelectiveRedo,
		Pages:    32,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Shared blackboard records everyone works on.
	const records = 64
	rid := func(i int) smdb.RID { return smdb.NewRID(int32(i/24), uint16(i%24)) }
	setup, err := db.Begin(0)
	must(err)
	for i := 0; i < records; i++ {
		must(setup.Insert(rid(i), []byte{0}))
	}
	must(setup.Commit())
	must(db.Checkpoint())
	fmt.Printf("DSM network up: %d nodes sharing %d records\n\n", nodes, records)

	rng := rand.New(rand.NewSource(2026))
	committedOps := 0
	for round := 0; round < churns; round++ {
		// Survivors do a burst of work; some transactions stay in flight.
		alive := db.AliveNodes()
		var inflight []*smdb.Txn
		for _, nd := range alive {
			for k := 0; k < 3; k++ {
				tx, err := db.Begin(nd)
				must(err)
				target := rid(rng.Intn(records))
				err = tx.Write(target, []byte{byte(round + 1), byte(nd)})
				if errors.Is(err, smdb.ErrBlocked) || errors.Is(err, smdb.ErrDeadlock) {
					must(tx.Abort())
					continue
				}
				must(err)
				if k == 2 {
					inflight = append(inflight, tx) // left running at the crash
				} else {
					must(tx.Commit())
					committedOps++
				}
			}
		}

		// A user powers down without warning.
		victim := alive[rng.Intn(len(alive))]
		crash := db.Crash(victim)
		rep, err := db.Recover()
		must(err)
		if v := db.CheckIFA(); len(v) != 0 {
			log.Fatalf("round %d: IFA violated after node %d left: %v", round, victim, v)
		}
		fmt.Printf("round %d: node %d powered down (%d lines destroyed) — %d of %d in-flight txns aborted, IFA intact\n",
			round, victim, len(crash.LostLines), len(rep.Aborted), len(inflight))

		// Survivors' in-flight transactions finish normally.
		for _, tx := range inflight {
			if tx.Node() == victim {
				continue
			}
			if err := tx.Commit(); err != nil {
				log.Fatalf("survivor commit failed: %v", err)
			}
			committedOps++
		}

		// The user plugs back in with a cold cache and joins the next round.
		must(db.RestartNode(victim))
	}

	fmt.Printf("\n%d churn cycles survived; %d transactions committed; ", churns, committedOps)
	fmt.Println("final durability check:", checkWord(db))
}

func checkWord(db *smdb.DB) string {
	if v := db.CheckIFA(); len(v) != 0 {
		return fmt.Sprintf("FAILED %v", v)
	}
	return "PASS"
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
