// Quickstart: open a 4-node shared-memory database, update records from two
// nodes so that a cache line carrying uncommitted data migrates between
// them (the paper's figure 2 scenario), crash one node, recover, and show
// that IFA held: the crashed transaction's update is gone, the survivor's
// is intact, and committed data is untouched.
package main

import (
	"fmt"
	"log"

	"smdb"
)

func main() {
	db, err := smdb.Open(smdb.Options{
		Nodes:          4,
		Protocol:       smdb.VolatileSelectiveRedo,
		RecordsPerLine: 4, // r1 and r2 below share one cache line
	})
	if err != nil {
		log.Fatal(err)
	}
	r1 := smdb.NewRID(0, 0)
	r2 := smdb.NewRID(0, 1)

	// Seed committed values.
	setup, err := db.Begin(0)
	must(err)
	must(setup.Insert(r1, []byte("alpha v1")))
	must(setup.Insert(r2, []byte("beta v1")))
	must(setup.Commit())
	must(db.Checkpoint())
	fmt.Println("seeded r1=alpha v1, r2=beta v1 (committed, checkpointed)")

	// Two transactions on different nodes update records that share a
	// cache line: the line migrates to whoever wrote last.
	tx, err := db.Begin(0) // t_x on node 0
	must(err)
	ty, err := db.Begin(1) // t_y on node 1
	must(err)
	must(tx.Write(r1, []byte("alpha v2 (t_x, uncommitted)")))
	must(ty.Write(r2, []byte("beta v2 (t_y, uncommitted)")))
	fmt.Println("t_x@node0 updated r1; t_y@node1 updated r2 -> their shared line now lives on node 1")

	// Node 0 crashes. Without IFA, t_x's update would live on in node 1's
	// cache; with it, recovery undoes t_x everywhere and t_y continues.
	db.Crash(0)
	rep, err := db.Recover()
	must(err)
	fmt.Printf("node 0 crashed; recovery aborted %v in %.2fms (redo %d, undo %d)\n",
		rep.Aborted, float64(rep.SimTime)/1e6, rep.RedoApplied, rep.UndoApplied)

	if v := db.CheckIFA(); len(v) != 0 {
		log.Fatalf("IFA violated: %v", v)
	}
	fmt.Println("IFA check passed")

	// t_y is still alive and commits.
	must(ty.Commit())
	reader, err := db.Begin(1)
	must(err)
	v1, err := reader.Read(r1)
	must(err)
	v2, err := reader.Read(r2)
	must(err)
	fmt.Printf("after recovery: r1=%q (t_x undone), r2=%q (t_y preserved and committed)\n",
		trim(v1), trim(v2))
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
