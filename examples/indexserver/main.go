// Indexserver: an order-entry workload over the shared-memory B+-tree.
// Multiple nodes insert, look up, and cancel (delete) orders keyed by order
// ID; tree pages — index lines — migrate between nodes as they work. Page
// splits run as early-committed structural changes, so they survive even
// the crash of the node whose transaction triggered them. The example
// crashes a node with in-flight orders, recovers, validates the tree, and
// shows exactly the crashed node's uncommitted orders vanished.
package main

import (
	"errors"
	"fmt"
	"log"

	"smdb"
)

const nodes = 4

func main() {
	db, err := smdb.Open(smdb.Options{
		Nodes:      nodes,
		Protocol:   smdb.VolatileSelectiveRedo,
		Pages:      192,
		IndexPages: 160,
	})
	if err != nil {
		log.Fatal(err)
	}
	index := db.Index

	// Load committed orders round-robin from every node: order IDs in a
	// mixed arrival pattern so splits happen throughout the range.
	const orders = 300
	for i := 1; i <= orders; i++ {
		node := smdb.NodeID(i % nodes)
		tx, err := db.Begin(node)
		must(err)
		orderID := uint64(i*37%1999 + 1)
		must(index.Insert(tx, orderID, uint64(100+i)))
		must(tx.Commit())
	}
	must(db.Checkpoint())
	committed, err := index.LiveKeys(0)
	must(err)
	fmt.Printf("loaded %d committed orders across %d nodes (tree height: %s)\n",
		len(committed), nodes, heightOf(index))

	// Cancel a batch of orders (logical deletes) and commit.
	cancel, err := db.Begin(1)
	must(err)
	cancelled := 0
	for i := 1; i <= 20; i++ {
		orderID := uint64(i*37%1999 + 1)
		if err := index.Delete(cancel, orderID); err == nil {
			cancelled++
		}
	}
	must(cancel.Commit())
	fmt.Printf("cancelled %d orders (logical deletes: entries marked, undo would be an unmark)\n", cancelled)

	// In-flight orders on every node.
	var pending []*smdb.Txn
	pendingIDs := map[smdb.NodeID]uint64{}
	for n := 0; n < nodes; n++ {
		tx, err := db.Begin(smdb.NodeID(n))
		must(err)
		id := uint64(10_000 + n*500) // spread: each lands in a different leaf region
		must(index.Insert(tx, id, uint64(n)))
		pending = append(pending, tx)
		pendingIDs[smdb.NodeID(n)] = id
	}
	fmt.Printf("%d orders in flight, one per node — crashing node 3\n", len(pending))

	db.Crash(3)
	rep, err := db.Recover()
	must(err)
	fmt.Printf("recovery aborted %v in %.2fms\n", rep.Aborted, float64(rep.SimTime)/1e6)
	if v := db.CheckIFA(); len(v) != 0 {
		log.Fatalf("IFA violated: %v", v)
	}
	if v := index.Validate(0); len(v) != 0 {
		log.Fatalf("tree invalid after crash: %v", v)
	}
	fmt.Println("IFA and tree validation passed")

	// The crashed node's order is gone; the survivors' are intact and
	// commit fine.
	check, err := db.Begin(0)
	must(err)
	switch _, err := index.Lookup(check, pendingIDs[3]); {
	case err == nil:
		log.Fatal("crashed node's uncommitted order survived")
	case errors.Is(err, smdb.ErrKeyNotFound):
		fmt.Printf("order %d from crashed node: correctly gone\n", pendingIDs[3])
	default:
		log.Fatal(err)
	}
	for _, tx := range pending {
		if tx.Node() == 3 {
			continue
		}
		must(tx.Commit())
		fmt.Printf("order %d from surviving node %d committed after recovery\n",
			pendingIDs[tx.Node()], tx.Node())
	}

	final, err := index.LiveKeys(0)
	must(err)
	fmt.Printf("final index: %d live orders (%d committed - %d cancelled + %d surviving in-flight)\n",
		len(final), len(committed), cancelled, len(pending)-1)
}

func heightOf(t *smdb.Tree) string {
	h, err := t.Height(0)
	if err != nil {
		return "?"
	}
	return fmt.Sprintf("%d", h)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
