package smdb_test

import (
	"os/exec"
	"testing"
)

// TestExamplesRun executes every example program end to end; each verifies
// its own invariants (IFA checks, conservation, tree validation) and exits
// nonzero on failure, so a pass here means the narrated scenarios still
// hold.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and run full scenarios; skipped with -short")
	}
	for _, example := range []string{"quickstart", "banking", "indexserver", "lockrecovery", "dsm"} {
		example := example
		t.Run(example, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+example).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", example, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", example)
			}
		})
	}
}
