#!/usr/bin/env sh
# Chaos under CPU load: the capture harness for ROADMAP item 6 (the
# load-sensitive explainer no-verdict flake, seen only on busy hosts). The
# scheduler-pressure half of chaos_soak.sh: synthetic CPU burners (pure-shell
# busy loops, one per core by default) saturate the host while a recorded
# smdb-chaos sweep runs with -waterfall armed. Any seed that fails writes its
# schedule to the record directory — a deterministic repro for `smdb-chaos
# -replay` / `-shrink` — and the optional CI job uploads that directory as an
# artifact, so a flake that only reproduces under load arrives with its
# schedule attached.
#
# Usage:
#
#   scripts/chaos_load.sh [record-dir]
#
# Knobs (environment): LOAD_WORKERS (burner count, default one per online
# CPU), LOAD_SEEDS (sweep width, default 25), LOAD_EPISODES (episodes per
# seed, default 3). Exits non-zero if the sweep fails; failing schedules are
# left under record-dir (default ./chaos-load-schedules) for upload.
set -eu

dir="${1:-chaos-load-schedules}"
workers="${LOAD_WORKERS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 2)}"
seeds="${LOAD_SEEDS:-25}"
episodes="${LOAD_EPISODES:-3}"
cd "$(dirname "$0")/.."

# Build before loading the host, so compilation is not what the burners fight.
bin="$(mktemp -t smdb-chaos.XXXXXX)"
go build -o "$bin" ./cmd/smdb-chaos

pids=""
cleanup() {
    # shellcheck disable=SC2086 — word-split the accumulated pid list.
    kill $pids 2>/dev/null || true
    rm -f "$bin"
}
trap cleanup EXIT INT TERM

echo "== chaos load: starting $workers CPU burner(s)"
i=0
while [ "$i" -lt "$workers" ]; do
    ( while :; do :; done ) &
    pids="$pids $!"
    i=$((i + 1))
done

echo "== chaos load: recorded sweep ($seeds seeds x $episodes episodes, -waterfall)"
mkdir -p "$dir"
"$bin" -seeds "$seeds" -episodes "$episodes" -record "$dir" -waterfall

# A clean sweep records nothing; say so explicitly for the CI log.
if [ -z "$(ls "$dir" 2>/dev/null)" ]; then
    echo "== chaos load: clean (no failing schedules recorded)"
fi
