#!/usr/bin/env sh
# Runs the E20 recovery-profiling benchmark and emits BENCH_profile.json —
# the profiler's wall-clock attribution record (coverage per worker count).
# Usage:
#
#   scripts/bench_profile.sh [output.json]
#
# Knobs (environment): BENCH_COUNT (-count, default 3) and BENCH_TIME
# (-benchtime, default 1x), matching bench_recovery.sh. Coverage is the
# fraction of Recover's host wall time the profiler's buckets (busy,
# lock-wait, condvar-wait, fan-out idle, merge) account for; the acceptance
# bar is 0.9 at every worker count. Like the recovery record, the JSON
# carries gomaxprocs: attribution at 4/8 workers only exercises real
# parallelism when the host grants it.
set -eu

out="${1:-BENCH_profile.json}"
count="${BENCH_COUNT:-3}"
benchtime="${BENCH_TIME:-1x}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkRecoveryProfile' \
    -benchtime="$benchtime" -count="$count" . | tee "$raw" >&2

gomaxprocs="$(go run ./scripts/gomaxprocs 2>/dev/null || true)"
if [ -z "$gomaxprocs" ]; then
    gomaxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
fi

awk -v gomaxprocs="$gomaxprocs" -v count="$count" -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
BEGIN { nb = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    bench[nb] = name; iters[nb] = $2; nsop[nb] = $3
    extra[nb] = ""
    for (i = 5; i + 1 <= NF; i += 2) {
        if (extra[nb] != "") extra[nb] = extra[nb] ","
        extra[nb] = extra[nb] sprintf("{\"value\":%s,\"unit\":\"%s\"}", $(i), jesc($(i+1)))
        if ($(i+1) ~ /^coverage\//) { csum[$(i+1)] += $(i); cn[$(i+1)]++ }
    }
    nsum[name] += $3; ncnt[name]++
    if (!(name in nmin) || $3 + 0 < nmin[name]) nmin[name] = $3 + 0
    if (!(name in nmax) || $3 + 0 > nmax[name]) nmax[name] = $3 + 0
    if (!(name in seenb)) { seenb[name] = 1; border[++nbn] = name }
    nb++
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"count\": %d,\n", count
    printf "  \"benchtime\": \"%s\",\n", jesc(benchtime)
    printf "  \"note\": \"coverage = attributed fraction of Recover host wall time; acceptance bar is 0.9 per worker count\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < nb; i++) {
        printf "    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"metrics\":[%s]}%s\n", \
            jesc(bench[i]), iters[i], nsop[i], extra[i], (i < nb - 1 ? "," : "")
    }
    printf "  ],\n"
    printf "  \"spread\": {\n"
    for (i = 1; i <= nbn; i++) {
        n = border[i]
        mean = nsum[n] / ncnt[n]
        pct = (mean > 0) ? (nmax[n] - nmin[n]) * 100.0 / mean : 0
        printf "    \"%s\": {\"runs\":%d,\"min_ns_per_op\":%d,\"max_ns_per_op\":%d,\"mean_ns_per_op\":%.0f,\"spread_pct\":%.1f}%s\n", \
            jesc(n), ncnt[n], nmin[n], nmax[n], mean, pct, (i < nbn ? "," : "")
    }
    printf "  },\n"
    printf "  \"coverage_mean\": {"
    first = 1
    for (k in cn) {
        if (!first) printf ","
        first = 0
        printf "\"%s\":%.3f", jesc(k), csum[k] / cn[k]
    }
    printf "}\n}\n"
}
' "$raw" > "$out"

echo "wrote $out (gomaxprocs=$gomaxprocs, count=$count, benchtime=$benchtime)" >&2
