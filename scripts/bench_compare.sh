#!/usr/bin/env sh
# Compares a freshly generated BENCH_recovery.json against the committed
# snapshot and fails on ns/op regressions beyond the threshold. Usage:
#
#   scripts/bench_compare.sh [fresh.json] [baseline.json] [threshold-pct]
#
# Defaults: fresh=BENCH_recovery.ci.json (what CI's bench step writes),
# baseline=BENCH_recovery.json (the committed perf-trajectory record),
# threshold=20 (percent). Each benchmark's ns/op samples (the -count
# repetitions) are averaged per file, then fresh-vs-baseline deltas are
# printed for every benchmark; any delta above the threshold exits 1.
#
# Wall-clock comparisons across different hosts are meaningless, so when the
# two files record different gomaxprocs the script prints a loud WARNING
# (with both values, on stderr) and exits 0 without comparing. CI runs this as a non-blocking step (continue-on-error): a
# regression flags the run for a human eye without gating merges on shared
# -runner timing noise. Parsing is plain awk, matching bench_recovery.sh's
# one-benchmark-per-line JSON layout.
#
# When a profiler record pair is also present (BENCH_profile.ci.json fresh,
# BENCH_profile.json committed, overridable via args 4 and 5), the script
# additionally diffs the attribution fields — every coverage_mean key — and
# prints a WARNING when fresh coverage drops more than 0.02 below baseline
# or below the 0.9 acceptance bar. That half is informational only: it never
# changes the exit status (coverage is already gated by the test suite; the
# diff here is for spotting drift in the committed record), and like the
# ns/op half it is skipped with a warning when gomaxprocs differ.
#
# Likewise, when a recovery-debt record pair is present (BENCH_debt.ci.json
# fresh, BENCH_debt.json committed, overridable via args 6 and 7), the
# script diffs the E24 estimator-accuracy ratios per protocol and WARNs
# when a fresh ratio crosses the 2.0x acceptance bar or drifts more than
# 0.5 past baseline. Also informational only: the hard accuracy gate lives
# in the E24 harness itself, and the ratios are wall-clock-derived.
set -eu

cd "$(dirname "$0")/.."
fresh="${1:-BENCH_recovery.ci.json}"
base="${2:-BENCH_recovery.json}"
thresh="${3:-20}"
pfresh="${4:-BENCH_profile.ci.json}"
pbase="${5:-BENCH_profile.json}"
dfresh="${6:-BENCH_debt.ci.json}"
dbase="${7:-BENCH_debt.json}"

for f in "$base" "$fresh"; do
    if [ ! -f "$f" ]; then
        echo "bench_compare: missing $f" >&2
        exit 2
    fi
done

# Attribution diff (non-blocking): runs first so its warnings are not lost
# when the ns/op half exits non-zero below.
if [ -f "$pbase" ] && [ -f "$pfresh" ]; then
    awk -v basefile="$pbase" -v freshfile="$pfresh" '
    FNR == 1 { fileno++ }
    /"gomaxprocs":/ {
        if (match($0, /[0-9]+/)) gmp[fileno] = substr($0, RSTART, RLENGTH) + 0
    }
    /"coverage_mean":/ {
        s = $0
        while (match(s, /"[^"]+":[0-9.]+/)) {
            kv = substr(s, RSTART + 1, RLENGTH - 1)
            s = substr(s, RSTART + RLENGTH)
            split(kv, a, /":/)
            cov[fileno, a[1]] = a[2] + 0
            if (fileno == 1 && !((a[1]) in seen)) { seen[a[1]] = 1; keys[++nk] = a[1] }
            if (fileno == 2 && !((a[1]) in seen)) { seen[a[1]] = 1; keys[++nk] = a[1] }
        }
    }
    END {
        if (gmp[1] != gmp[2]) {
            printf "WARNING: profile gomaxprocs differ (baseline %s: %d, fresh %s: %d) — attribution diff skipped\n", \
                basefile, gmp[1], freshfile, gmp[2] > "/dev/stderr"
            exit 0
        }
        for (i = 1; i <= nk; i++) {
            k = keys[i]
            if (!((1, k) in cov)) { printf "coverage  %s: fresh-only (%.3f)\n", k, cov[2, k]; continue }
            if (!((2, k) in cov)) { printf "WARNING: coverage %s in baseline but missing from fresh run\n", k > "/dev/stderr"; continue }
            b = cov[1, k]; f = cov[2, k]
            flag = "ok"
            if (f < b - 0.02 || f < 0.9) {
                flag = "WARN"
                printf "WARNING: attribution coverage %s dropped: baseline %.3f, fresh %.3f\n", k, b, f > "/dev/stderr"
            }
            printf "%-8s %s: baseline coverage %.3f, fresh %.3f\n", flag, k, b, f
        }
    }
    ' "$pbase" "$pfresh"
elif [ -f "$pbase" ] || [ -f "$pfresh" ]; then
    echo "bench_compare: profile record pair incomplete ($pbase / $pfresh); attribution diff skipped" >&2
fi

# Recovery-debt estimator accuracy diff (non-blocking, E24): per-protocol
# estimate/measured ratios from the ratio_x map. The 2.0x bar mirrors the
# harness gate; the drift bound catches a calibrator quietly getting worse
# without failing the run over host noise.
if [ -f "$dbase" ] && [ -f "$dfresh" ]; then
    awk -v basefile="$dbase" -v freshfile="$dfresh" '
    FNR == 1 { fileno++ }
    /"gomaxprocs":/ {
        if (match($0, /[0-9]+/)) gmp[fileno] = substr($0, RSTART, RLENGTH) + 0
    }
    /"ratio_x":/ {
        s = $0
        while (match(s, /"[^"]+":[0-9.]+/)) {
            kv = substr(s, RSTART + 1, RLENGTH - 1)
            s = substr(s, RSTART + RLENGTH)
            split(kv, a, /":/)
            rt[fileno, a[1]] = a[2] + 0
            if (!((a[1]) in seen)) { seen[a[1]] = 1; keys[++nk] = a[1] }
        }
    }
    END {
        if (nk == 0) exit 0
        if (gmp[1] != gmp[2]) {
            printf "WARNING: debt gomaxprocs differ (baseline %s: %d, fresh %s: %d) — estimator-accuracy diff skipped\n", \
                basefile, gmp[1], freshfile, gmp[2] > "/dev/stderr"
            exit 0
        }
        for (i = 1; i <= nk; i++) {
            k = keys[i]
            if (!((1, k) in rt)) { printf "debt     %s: fresh-only (%.2fx)\n", k, rt[2, k]; continue }
            if (!((2, k) in rt)) { printf "WARNING: debt ratio %s in baseline but missing from fresh run\n", k > "/dev/stderr"; continue }
            b = rt[1, k]; f = rt[2, k]
            flag = "ok"
            if (f > 2.0 || f > b + 0.5) {
                flag = "WARN"
                printf "WARNING: debt estimator accuracy %s drifted: baseline %.2fx, fresh %.2fx\n", k, b, f > "/dev/stderr"
            }
            printf "%-8s %s: baseline est/measured %.2fx, fresh %.2fx\n", flag, k, b, f
        }
    }
    ' "$dbase" "$dfresh"
elif [ -f "$dbase" ] || [ -f "$dfresh" ]; then
    echo "bench_compare: debt record pair incomplete ($dbase / $dfresh); estimator-accuracy diff skipped" >&2
fi

# Parallel-speedup diff (non-blocking): compares every speedup_mean key
# (e.g. "speedup/4-workers") between the two records and WARNs when a fresh
# mean drops more than 10% below baseline. Wall-clock speedup is what the
# work-stealing fan-out buys, so a silent slide here would defeat the point
# of keeping the record — but shared-runner noise makes it advisory, not a
# gate (CI's blocking floor lives in the bench-multicore job instead). Like
# the ns/op half, it is skipped when gomaxprocs differ.
awk -v basefile="$base" -v freshfile="$fresh" '
FNR == 1 { fileno++ }
/"gomaxprocs":/ {
    if (match($0, /[0-9]+/)) gmp[fileno] = substr($0, RSTART, RLENGTH) + 0
}
/"speedup_mean":/ {
    s = $0
    while (match(s, /"[^"]+":[0-9.]+/)) {
        kv = substr(s, RSTART + 1, RLENGTH - 1)
        s = substr(s, RSTART + RLENGTH)
        split(kv, a, /":/)
        sp[fileno, a[1]] = a[2] + 0
        if (!((a[1]) in seen)) { seen[a[1]] = 1; keys[++nk] = a[1] }
    }
}
END {
    if (nk == 0) exit 0
    if (gmp[1] != gmp[2]) {
        printf "WARNING: gomaxprocs differ (baseline %s: %d, fresh %s: %d) — speedup diff skipped\n", \
            basefile, gmp[1], freshfile, gmp[2] > "/dev/stderr"
        exit 0
    }
    for (i = 1; i <= nk; i++) {
        k = keys[i]
        if (!((1, k) in sp)) { printf "speedup  %s: fresh-only (%.3fx)\n", k, sp[2, k]; continue }
        if (!((2, k) in sp)) { printf "WARNING: speedup %s in baseline but missing from fresh run\n", k > "/dev/stderr"; continue }
        b = sp[1, k]; f = sp[2, k]
        flag = "ok"
        if (f < b * 0.9) {
            flag = "WARN"
            printf "WARNING: parallel speedup %s regressed: baseline %.3fx, fresh %.3fx\n", k, b, f > "/dev/stderr"
        }
        printf "%-8s %s: baseline %.3fx, fresh %.3fx\n", flag, k, b, f
    }
}
' "$base" "$fresh"

awk -v thresh="$thresh" -v basefile="$base" -v freshfile="$fresh" '
FNR == 1 { fileno++ }
/"gomaxprocs":/ {
    if (match($0, /[0-9]+/)) gmp[fileno] = substr($0, RSTART, RLENGTH) + 0
    next
}
/"name":/ {
    if (!match($0, /"name":"[^"]*"/)) next
    n = substr($0, RSTART + 8, RLENGTH - 9)
    if (!match($0, /"ns_per_op":[0-9.]+/)) next
    v = substr($0, RSTART + 12, RLENGTH - 12) + 0
    sum[fileno, n] += v; cnt[fileno, n]++
    if (fileno == 1 && !(n in seen)) { seen[n] = 1; order[++nn] = n }
}
END {
    if (gmp[1] != gmp[2]) {
        printf "WARNING: gomaxprocs differ (baseline %s: %d, fresh %s: %d) — cross-host ns/op is not comparable; comparison skipped\n", \
            basefile, gmp[1], freshfile, gmp[2] > "/dev/stderr"
        exit 0
    }
    bad = 0
    for (i = 1; i <= nn; i++) {
        n = order[i]
        if (!cnt[2, n]) {
            printf "MISSING  %s: in baseline but not in fresh run\n", n
            bad = 1
            continue
        }
        b = sum[1, n] / cnt[1, n]
        f = sum[2, n] / cnt[2, n]
        delta = (f - b) * 100.0 / b
        flag = (delta > thresh) ? "REGRESS" : "ok"
        printf "%-8s %s: baseline %.0f ns/op, fresh %.0f ns/op (%+.1f%%, threshold +%s%%)\n", \
            flag, n, b, f, delta, thresh
        if (delta > thresh) bad = 1
    }
    if (nn == 0) { print "bench_compare: no benchmarks found in " basefile; exit 2 }
    exit bad
}
' "$base" "$fresh"
