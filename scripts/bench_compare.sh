#!/usr/bin/env sh
# Compares a freshly generated BENCH_recovery.json against the committed
# snapshot and fails on ns/op regressions beyond the threshold. Usage:
#
#   scripts/bench_compare.sh [fresh.json] [baseline.json] [threshold-pct]
#
# Defaults: fresh=BENCH_recovery.ci.json (what CI's bench step writes),
# baseline=BENCH_recovery.json (the committed perf-trajectory record),
# threshold=20 (percent). Each benchmark's ns/op samples (the -count
# repetitions) are averaged per file, then fresh-vs-baseline deltas are
# printed for every benchmark; any delta above the threshold exits 1.
#
# Wall-clock comparisons across different hosts are meaningless, so when the
# two files record different gomaxprocs the script prints a loud WARNING
# (with both values, on stderr) and exits 0 without comparing. CI runs this as a non-blocking step (continue-on-error): a
# regression flags the run for a human eye without gating merges on shared
# -runner timing noise. Parsing is plain awk, matching bench_recovery.sh's
# one-benchmark-per-line JSON layout.
set -eu

cd "$(dirname "$0")/.."
fresh="${1:-BENCH_recovery.ci.json}"
base="${2:-BENCH_recovery.json}"
thresh="${3:-20}"

for f in "$base" "$fresh"; do
    if [ ! -f "$f" ]; then
        echo "bench_compare: missing $f" >&2
        exit 2
    fi
done

awk -v thresh="$thresh" -v basefile="$base" -v freshfile="$fresh" '
FNR == 1 { fileno++ }
/"gomaxprocs":/ {
    if (match($0, /[0-9]+/)) gmp[fileno] = substr($0, RSTART, RLENGTH) + 0
    next
}
/"name":/ {
    if (!match($0, /"name":"[^"]*"/)) next
    n = substr($0, RSTART + 8, RLENGTH - 9)
    if (!match($0, /"ns_per_op":[0-9.]+/)) next
    v = substr($0, RSTART + 12, RLENGTH - 12) + 0
    sum[fileno, n] += v; cnt[fileno, n]++
    if (fileno == 1 && !(n in seen)) { seen[n] = 1; order[++nn] = n }
}
END {
    if (gmp[1] != gmp[2]) {
        printf "WARNING: gomaxprocs differ (baseline %s: %d, fresh %s: %d) — cross-host ns/op is not comparable; comparison skipped\n", \
            basefile, gmp[1], freshfile, gmp[2] > "/dev/stderr"
        exit 0
    }
    bad = 0
    for (i = 1; i <= nn; i++) {
        n = order[i]
        if (!cnt[2, n]) {
            printf "MISSING  %s: in baseline but not in fresh run\n", n
            bad = 1
            continue
        }
        b = sum[1, n] / cnt[1, n]
        f = sum[2, n] / cnt[2, n]
        delta = (f - b) * 100.0 / b
        flag = (delta > thresh) ? "REGRESS" : "ok"
        printf "%-8s %s: baseline %.0f ns/op, fresh %.0f ns/op (%+.1f%%, threshold +%s%%)\n", \
            flag, n, b, f, delta, thresh
        if (delta > thresh) bad = 1
    }
    if (nn == 0) { print "bench_compare: no benchmarks found in " basefile; exit 2 }
    exit bad
}
' "$base" "$fresh"
