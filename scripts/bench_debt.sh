#!/usr/bin/env sh
# Runs the recovery-debt estimator census (EXPERIMENTS.md E24) and emits a
# JSON record of per-protocol estimator accuracy. Usage:
#
#   scripts/bench_debt.sh [output.json] [seed]
#
# Default output is BENCH_debt.json (the committed accuracy-trajectory
# record) and seed 1. The experiment itself gates hard inside the harness
# (coverage >= 0.9, estimate within 2x of the measured recovery, debt
# collapse after recovery, double-run determinism), so a failing run exits
# non-zero here; the JSON exists for the non-blocking drift report in
# bench_compare.sh — estimate/measured ratios are wall-clock-derived and
# host-sensitive, so cross-host comparison is advisory, never a gate.
# Parsing is plain awk over the E24 table, matching the other bench scripts.
set -eu

out="${1:-BENCH_debt.json}"
seed="${2:-1}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go run ./cmd/smdb-bench -exp recoverydebt -seed "$seed" | tee "$raw" >&2

gomaxprocs="$(go run ./scripts/gomaxprocs 2>/dev/null || true)"
if [ -z "$gomaxprocs" ]; then
    gomaxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
fi

awk -v gomaxprocs="$gomaxprocs" -v seed="$seed" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
# Data rows end their ratio column in "x": proto recs bytes span coverage
# est measured ratio residual recoveries mttr-ewma.
$8 ~ /^[0-9.]+x$/ {
    n++
    name[n] = $1
    cov[n] = substr($5, 1, length($5) - 1) / 100.0
    est[n] = substr($6, 1, length($6) - 2) + 0
    meas[n] = substr($7, 1, length($7) - 2) + 0
    ratio[n] = substr($8, 1, length($8) - 1) + 0
    mttr[n] = substr($11, 1, length($11) - 2) + 0
}
END {
    if (n == 0) { print "bench_debt: no E24 rows parsed" > "/dev/stderr"; exit 2 }
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"seed\": %s,\n", seed
    printf "  \"note\": \"best-of-judged estimate/measured ratios are host wall-clock; cross-host diffs are advisory\",\n"
    printf "  \"protocols\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\":\"%s\",\"coverage\":%.3f,\"est_us\":%.1f,\"measured_us\":%.1f,\"ratio\":%.2f,\"mttr_ewma_us\":%.1f}%s\n", \
            name[i], cov[i], est[i], meas[i], ratio[i], mttr[i], (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"ratio_x\": {"
    for (i = 1; i <= n; i++) printf "%s\"%s\":%.2f", (i > 1 ? "," : ""), name[i], ratio[i]
    printf "}\n}\n"
}
' "$raw" > "$out"

echo "wrote $out (gomaxprocs=$gomaxprocs, seed=$seed)" >&2
