#!/usr/bin/env sh
# Runs experiment E23 (per-worker busy/idle balance: per-item dispatch vs
# work-stealing chunks) and emits BENCH_balance.json — the attribution
# artifact CI uploads from the multicore runner. Usage:
#
#   scripts/bench_balance.sh [output.json] [seed]
#
# The JSON carries, per (arm, phase), the worker count, task count,
# imbalance (max/mean worker busy time; 1.0 is perfectly level) and idle
# fraction, plus per-arm recovery wall times and the host facts needed to
# interpret them: on a 1-core host the workers run serially, one drains the
# whole queue, and imbalance pins at the worker count regardless of the
# dispatch strategy — only a gomaxprocs >= 4 run with ncpu >= 4 shows the
# chunker's effect. Parsing is plain awk over smdb-bench's table, matching
# the other bench scripts.
set -eu

out="${1:-BENCH_balance.json}"
seed="${2:-1}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go run ./cmd/smdb-bench -exp workbalance -seed "$seed" | tee "$raw" >&2

gomaxprocs="$(go run ./scripts/gomaxprocs 2>/dev/null || true)"
if [ -z "$gomaxprocs" ]; then
    gomaxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
fi
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"

awk -v gomaxprocs="$gomaxprocs" -v ncpu="$ncpu" -v seed="$seed" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
# Table rows: arm phase workers tasks mean-busy max-busy imbalance idle-frac
NF == 8 && ($1 == "per-item" || $1 == "chunked") && $3 ~ /^[0-9]+$/ {
    np++
    rows[np] = sprintf("{\"arm\":\"%s\",\"phase\":\"%s\",\"workers\":%s,\"tasks\":%s,\"imbalance\":%s,\"idle_fraction\":%s}",
        $1, $2, $3, $4, $7, $8)
}
# Summary lines: "<arm>: wall 3.590ms, redo applied 104"
/^(per-item|chunked): wall / {
    arm = $1; sub(/:$/, "", arm)
    w = $3; sub(/ms,$/, "", w)
    nw++
    walls[nw] = sprintf("\"%s\":%s", arm, w)
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"seed\": %d,\n", seed
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"ncpu\": %d,\n", ncpu
    printf "  \"note\": \"imbalance = max/mean worker busy per phase (1.0 = level); on a 1-core host it pins at the worker count for both arms\",\n"
    printf "  \"wall_ms\": {"
    for (i = 1; i <= nw; i++) printf "%s%s", walls[i], (i < nw ? "," : "")
    printf "},\n"
    printf "  \"phases\": [\n"
    for (i = 1; i <= np; i++) printf "    %s%s\n", rows[i], (i < np ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out (gomaxprocs=$gomaxprocs, ncpu=$ncpu, seed=$seed)" >&2
