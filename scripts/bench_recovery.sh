#!/usr/bin/env sh
# Runs the recovery benchmarks (E5 restart sweep + E18 parallel-recovery
# sweep) and emits BENCH_recovery.json — the committed perf-trajectory
# record. Usage:
#
#   scripts/bench_recovery.sh [output.json]
#
# Knobs (environment): BENCH_COUNT is the -count repetition knob (default 3),
# BENCH_TIME the -benchtime value (default 1x). The JSON carries every raw
# `go test -bench` sample line plus the custom speedup metrics and, per
# benchmark, the across-repetition ns/op spread (min/max/mean and the spread
# as a percentage of the mean — a wide spread means the host was noisy and
# the numbers deserve suspicion), alongside the host facts (gomaxprocs in
# particular) needed to interpret them: parallel-recovery speedup is host
# wall-clock and is bounded by GOMAXPROCS, so the >= 2x-at-4-workers
# expectation only applies when gomaxprocs >= 4. Parsing is plain awk so the
# script runs anywhere the go toolchain does.
set -eu

out="${1:-BENCH_recovery.json}"
count="${BENCH_COUNT:-3}"
benchtime="${BENCH_TIME:-1x}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkRestartRecovery|BenchmarkParallelRecovery' \
    -benchtime="$benchtime" -count="$count" . | tee "$raw" >&2

gomaxprocs="$(go run ./scripts/gomaxprocs 2>/dev/null || true)"
if [ -z "$gomaxprocs" ]; then
    gomaxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
fi
# Physical processors online, recorded separately from gomaxprocs: a forced
# GOMAXPROCS=4 on a 1-core host still runs the workers serially, and the
# speedup fields are only meaningful when ncpu actually backs the fan-out.
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"

awk -v gomaxprocs="$gomaxprocs" -v ncpu="$ncpu" -v count="$count" -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
BEGIN { nb = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
    # BenchmarkX-N  1  123456 ns/op  [value unit]...
    name = $1; sub(/-[0-9]+$/, "", name)
    bench[nb] = name; iters[nb] = $2; nsop[nb] = $3
    extra[nb] = ""
    for (i = 5; i + 1 <= NF; i += 2) {
        if (extra[nb] != "") extra[nb] = extra[nb] ","
        extra[nb] = extra[nb] sprintf("{\"value\":%s,\"unit\":\"%s\"}", $(i), jesc($(i+1)))
        # Track the per-worker speedup metrics across -count repetitions.
        if ($(i+1) ~ /^speedup\//) { ssum[$(i+1)] += $(i); sn[$(i+1)]++ }
    }
    # Across-repetition ns/op spread, keyed by benchmark.
    nsum[name] += $3; ncnt[name]++
    if (!(name in nmin) || $3 + 0 < nmin[name]) nmin[name] = $3 + 0
    if (!(name in nmax) || $3 + 0 > nmax[name]) nmax[name] = $3 + 0
    if (!(name in seenb)) { seenb[name] = 1; border[++nbn] = name }
    nb++
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"ncpu\": %d,\n", ncpu
    printf "  \"count\": %d,\n", count
    printf "  \"benchtime\": \"%s\",\n", jesc(benchtime)
    printf "  \"note\": \"parallel-recovery speedup is host wall-clock; the >=2x @ 4 workers expectation applies when gomaxprocs >= 4\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < nb; i++) {
        printf "    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"metrics\":[%s]}%s\n", \
            jesc(bench[i]), iters[i], nsop[i], extra[i], (i < nb - 1 ? "," : "")
    }
    printf "  ],\n"
    printf "  \"spread\": {\n"
    for (i = 1; i <= nbn; i++) {
        n = border[i]
        mean = nsum[n] / ncnt[n]
        pct = (mean > 0) ? (nmax[n] - nmin[n]) * 100.0 / mean : 0
        printf "    \"%s\": {\"runs\":%d,\"min_ns_per_op\":%d,\"max_ns_per_op\":%d,\"mean_ns_per_op\":%.0f,\"spread_pct\":%.1f}%s\n", \
            jesc(n), ncnt[n], nmin[n], nmax[n], mean, pct, (i < nbn ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedup_mean\": {"
    first = 1
    for (k in sn) {
        if (!first) printf ","
        first = 0
        printf "\"%s\":%.3f", jesc(k), ssum[k] / sn[k]
    }
    printf "}\n}\n"
}
' "$raw" > "$out"

echo "wrote $out (gomaxprocs=$gomaxprocs, ncpu=$ncpu, count=$count, benchtime=$benchtime)" >&2
