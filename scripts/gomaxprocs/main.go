// Command gomaxprocs prints runtime.GOMAXPROCS(0) — the parallelism the
// benchmark host actually offers. scripts/bench_recovery.sh records it in
// BENCH_recovery.json because parallel-recovery speedup is meaningless
// without it.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.GOMAXPROCS(0))
}
