#!/usr/bin/env sh
# Chaos soak: the interleaving-sensitivity gate. Two halves:
#
#   1. Repeat the workload package's -race suite SOAK_COUNT times (default
#      10). This is the surface the original lost-write flake lived on —
#      at the v0 seed it failed ~1 run in 5, so ten clean repetitions is a
#      meaningful (if not airtight) regression bar.
#   2. Run a recorded smdb-chaos sweep (-record): every seed's run captures
#      its schedule, and any seed that violates IFA writes the failing
#      schedule to the record directory — a deterministic repro an engineer
#      (or CI artifact upload) can replay with `smdb-chaos -replay` and
#      minimize with `smdb-chaos -shrink`.
#
# Usage:
#
#   scripts/chaos_soak.sh [record-dir]
#
# Knobs (environment): SOAK_COUNT (-count for the race soak, default 10),
# SOAK_SEEDS (sweep width, default 25), SOAK_EPISODES (episodes per seed,
# default 3). Exits non-zero if either half fails; failing schedules, if
# any, are left under record-dir (default ./chaos-schedules) for upload.
set -eu

dir="${1:-chaos-schedules}"
count="${SOAK_COUNT:-10}"
seeds="${SOAK_SEEDS:-25}"
episodes="${SOAK_EPISODES:-3}"
cd "$(dirname "$0")/.."

echo "== chaos soak: go test -race -count=$count ./internal/workload/"
go test -race -count="$count" ./internal/workload/

echo "== chaos soak: recorded sweep ($seeds seeds x $episodes episodes)"
mkdir -p "$dir"
go run ./cmd/smdb-chaos -seeds "$seeds" -episodes "$episodes" -record "$dir"

# A clean sweep records nothing; say so explicitly for the CI log.
if [ -z "$(ls "$dir" 2>/dev/null)" ]; then
	echo "== chaos soak: clean (no failing schedules recorded)"
fi
