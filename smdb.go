// Package smdb is a shared-memory multiprocessor database engine with
// crash-recovery protocols that guarantee Isolated Failure Atomicity (IFA),
// reproducing Molesky & Ramamritham, "Recovery Protocols for Shared Memory
// Database Systems" (SIGMOD 1995).
//
// The engine runs on a simulated cache-coherent multiprocessor: a database
// opened with N nodes behaves like N processor/memory pairs sharing a
// coherent address space, where any node can crash independently, destroying
// exactly its own cache contents. Records, the lock table, and the B+-tree
// index live in that shared memory, so their cache lines migrate between
// nodes as a side effect of ordinary access — the failure-coupling problem
// the paper's protocols solve.
//
// Typical use:
//
//	db, err := smdb.Open(smdb.Options{Nodes: 4, Protocol: smdb.VolatileSelectiveRedo})
//	...
//	tx, err := db.Begin(0)                 // a transaction on node 0
//	err = tx.Write(smdb.NewRID(0, 3), []byte("hello"))
//	err = tx.Commit()
//
//	db.Crash(2)                            // node 2 fails
//	rep, err := db.Recover()               // survivors restore IFA
//	violations := db.CheckIFA()            // empty: nothing unnecessary was lost
package smdb

import (
	"smdb/internal/btree"
	"smdb/internal/buffer"
	"smdb/internal/heap"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
	"smdb/internal/wal"
)

// Protocol selects the recovery protocol. See the recovery package for the
// full semantics of each.
type Protocol = recovery.Protocol

// The available protocols (paper sections 4-5).
const (
	// BaselineFA is conventional recovery: any node crash reboots the
	// whole machine and aborts every active transaction.
	BaselineFA = recovery.BaselineFA
	// VolatileRedoAll is Volatile LBM with the Redo All restart scheme.
	VolatileRedoAll = recovery.VolatileRedoAll
	// VolatileSelectiveRedo is Volatile LBM with Selective Redo and undo
	// tags — the paper's recommended low-overhead protocol.
	VolatileSelectiveRedo = recovery.VolatileSelectiveRedo
	// StableEager is Stable LBM with a log force on every update.
	StableEager = recovery.StableEager
	// StableTriggered is Stable LBM with coherency-triggered forces.
	StableTriggered = recovery.StableTriggered
	// AblatedNoLBM is a negative control (logging deferred to commit; no
	// logging-before-migration) that demonstrably violates IFA — see the
	// recovery package documentation.
	AblatedNoLBM = recovery.AblatedNoLBM
)

// Coherency selects the hardware cache-coherency protocol.
type Coherency = machine.Coherency

// The coherency protocols.
const (
	WriteInvalidate = machine.WriteInvalidate
	WriteBroadcast  = machine.WriteBroadcast
)

// RID identifies a record (page, slot).
type RID = heap.RID

// NewRID builds a record identifier.
func NewRID(page int32, slot uint16) RID {
	return RID{Page: storage.PageID(page), Slot: slot}
}

// NodeID identifies a processor/memory pair (0-based).
type NodeID = machine.NodeID

// TxnID identifies a transaction; its node is recoverable from it.
type TxnID = wal.TxnID

// Txn is a transaction handle. See internal/txn for method documentation;
// the essentials are Read, Write, Insert, Delete, Commit, Abort, and the
// ErrBlocked/ErrDeadlock retry contract.
type Txn = txn.Txn

// Tree is a shared-memory B+-tree index.
type Tree = btree.Tree

// CrashReport and RecoveryReport describe failure damage and recovery work.
type (
	CrashReport    = machine.CrashReport
	RecoveryReport = recovery.RecoveryReport
)

// Common errors surfaced through the public API.
var (
	ErrBlocked     = txn.ErrBlocked
	ErrDeadlock    = txn.ErrDeadlock
	ErrNotFound    = txn.ErrNotFound
	ErrNodeDown    = machine.ErrNodeDown
	ErrKeyExists   = btree.ErrKeyExists
	ErrKeyNotFound = btree.ErrKeyNotFound
)

// Options configures a database.
type Options struct {
	// Nodes is the number of processor/memory pairs (default 4, max 64).
	Nodes int
	// Protocol selects the recovery protocol (default VolatileSelectiveRedo).
	Protocol Protocol
	// Coherency selects write-invalidate (default) or write-broadcast.
	Coherency Coherency
	// RecordsPerLine is how many records share one 128-byte cache line
	// (default 4) — the paper's central sharing knob.
	RecordsPerLine int
	// Pages is the heap size in pages (default 64). LinesPerPage is the
	// page size in cache lines (default 8).
	Pages, LinesPerPage int
	// IndexPages reserves that many of the pages for a B+-tree index
	// (default 0: no index). The index occupies the tail of the page
	// range; heap RIDs should stay below Pages-IndexPages.
	IndexPages int
	// LockTableLines sizes the shared-memory lock table (default 512).
	LockTableLines int
	// ChainedLCBs lets lock control blocks span multiple cache lines;
	// recovery then drops and rebuilds whole broken chains (the paper's
	// harder lock-table organization).
	ChainedLCBs bool
	// NVRAMLog prices stable log forces as battery-backed RAM instead of
	// rotational disk.
	NVRAMLog bool
	// DirtyReads permits lock-free reads (browse isolation).
	DirtyReads bool
	// Observer, when non-nil, attaches the observability layer: every
	// coherency event, log append/force, lock decision, transaction
	// boundary, crash, and recovery phase is traced into per-node ring
	// buffers, and line-lock / commit / log-force latencies feed
	// histograms. A nil Observer (the default) costs one pointer test per
	// hook. See package internal/obs (obs.New, WriteChromeTrace,
	// WritePrometheus).
	Observer *obs.Observer
}

// DB is an open shared-memory database.
type DB struct {
	// Engine exposes the underlying recovery engine for experiments and
	// advanced use (statistics, checkpoints, structural operations).
	Engine *recovery.DB
	// Index is the B+-tree, non-nil when Options.IndexPages > 0.
	Index *Tree

	mgr     *txn.Manager
	crashed []NodeID
}

// Open creates a database on a fresh simulated machine.
func Open(opts Options) (*DB, error) {
	cfg := recovery.Config{
		Machine: machine.Config{
			Nodes:     opts.Nodes,
			Coherency: opts.Coherency,
		},
		Protocol:       opts.Protocol,
		RecsPerLine:    opts.RecordsPerLine,
		LinesPerPage:   opts.LinesPerPage,
		Pages:          opts.Pages,
		LockTableLines: opts.LockTableLines,
		ChainedLCBs:    opts.ChainedLCBs,
		NVRAMLog:       opts.NVRAMLog,
		DirtyReads:     opts.DirtyReads,
	}
	if cfg.Pages == 0 {
		cfg.Pages = 64
	}
	if cfg.LinesPerPage == 0 {
		cfg.LinesPerPage = 8
	}
	// Size shared memory to fit the heap, lock table, and slack.
	if cfg.Machine.Lines == 0 {
		lockLines := cfg.LockTableLines
		if lockLines == 0 {
			lockLines = 512
		}
		cfg.Machine.Lines = cfg.Pages*cfg.LinesPerPage + lockLines + 64
	}
	eng, err := recovery.New(cfg)
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		eng.AttachObserver(opts.Observer)
	}
	db := &DB{Engine: eng, mgr: txn.NewManager(eng)}
	if opts.IndexPages > 0 {
		first := storage.PageID(cfg.Pages - opts.IndexPages)
		db.Index, err = btree.New(eng, first, opts.IndexPages)
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Begin starts a transaction on the given node.
func (db *DB) Begin(node NodeID) (*Txn, error) { return db.mgr.Begin(node) }

// ParallelTxn is a transaction parallelized across several nodes: if any
// participating node crashes, the whole transaction aborts (paper §9).
type ParallelTxn = txn.ParallelTxn

// BeginParallel starts a parallel transaction with one branch per given
// node.
func (db *DB) BeginParallel(nodes ...NodeID) (*ParallelTxn, error) {
	return db.mgr.BeginParallel(nodes...)
}

// Crash fails the given nodes, destroying their caches, volatile log tails,
// and in-flight transaction state. Call Recover afterwards.
func (db *DB) Crash(nodes ...NodeID) CrashReport {
	db.crashed = append(db.crashed, nodes...)
	return db.Engine.Crash(nodes...)
}

// Recover runs the configured restart-recovery protocol for every node
// crashed since the last Recover, returning a report of the work done.
func (db *DB) Recover() (*RecoveryReport, error) {
	crashed := db.crashed
	db.crashed = nil
	return db.Engine.Recover(crashed)
}

// RestartNode brings a crashed node back with a cold cache.
func (db *DB) RestartNode(n NodeID) error { return db.Engine.RestartNode(n) }

// Checkpoint flushes dirty pages (WAL-enforced) and writes forced
// checkpoint records, bounding future redo scans.
func (db *DB) Checkpoint() error { return db.Engine.Checkpoint(0) }

// CheckIFA verifies the isolated-failure-atomicity invariants against the
// engine's oracle and returns any violations (empty means IFA holds).
func (db *DB) CheckIFA() []string {
	alive := db.Engine.M.AliveNodes()
	if len(alive) == 0 {
		return []string{"no surviving nodes"}
	}
	return db.Engine.CheckIFA(alive[0])
}

// AliveNodes returns the nodes currently up.
func (db *DB) AliveNodes() []NodeID { return db.Engine.M.AliveNodes() }

// Stats bundles every layer's counters.
type Stats struct {
	Machine  machine.Stats
	Buffer   buffer.Stats
	Locks    lock.Stats
	Protocol recovery.Stats
	// SimTime is the simulated makespan in nanoseconds.
	SimTime int64
}

// Sub returns the per-interval delta s - prev, layer by layer. Taking a
// snapshot before and after a workload phase and subtracting isolates that
// phase's activity from everything that ran before it.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Machine:  s.Machine.Sub(prev.Machine),
		Buffer:   s.Buffer.Sub(prev.Buffer),
		Locks:    s.Locks.Sub(prev.Locks),
		Protocol: s.Protocol.Sub(prev.Protocol),
		SimTime:  s.SimTime - prev.SimTime,
	}
}

// Stats returns a snapshot of all counters.
func (db *DB) Stats() Stats {
	return Stats{
		Machine:  db.Engine.M.Stats(),
		Buffer:   db.Engine.BM.Stats(),
		Locks:    db.Engine.Locks.Stats(),
		Protocol: db.Engine.Stats(),
		SimTime:  db.Engine.M.MaxClock(),
	}
}

// Observer returns the attached observability layer (nil if none was
// configured).
func (db *DB) Observer() *obs.Observer { return db.Engine.Observer() }
