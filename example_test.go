package smdb_test

import (
	"fmt"
	"log"

	"smdb"
)

// Example reproduces the paper's figure 2 scenario through the public API:
// uncommitted data migrates between nodes, one node crashes, and Isolated
// Failure Atomicity holds.
func Example() {
	db, err := smdb.Open(smdb.Options{Nodes: 2, Protocol: smdb.VolatileSelectiveRedo})
	if err != nil {
		log.Fatal(err)
	}
	r1, r2 := smdb.NewRID(0, 0), smdb.NewRID(0, 1) // same cache line

	setup, _ := db.Begin(0)
	setup.Insert(r1, []byte{1})
	setup.Insert(r2, []byte{1})
	setup.Commit()
	db.Checkpoint()

	tx, _ := db.Begin(0) // t_x
	ty, _ := db.Begin(1) // t_y
	tx.Write(r1, []byte{100})
	ty.Write(r2, []byte{200}) // the shared line migrates to node 1

	db.Crash(0)
	rep, _ := db.Recover()
	fmt.Println("aborted:", len(rep.Aborted) == 1)
	fmt.Println("ifa:", len(db.CheckIFA()) == 0)

	reader, _ := db.Begin(1)
	v1, _ := reader.Read(r1)
	fmt.Println("t_x undone:", v1[0] == 1)
	ty.Commit()
	v2, _ := reader.Read(r2)
	fmt.Println("t_y preserved:", v2[0] == 200)
	// Output:
	// aborted: true
	// ifa: true
	// t_x undone: true
	// t_y preserved: true
}
