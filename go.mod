module smdb

go 1.22
