// Package txn provides the transaction interface of the shared-memory
// database: begin/read/write/insert/delete/commit/abort with strict
// two-phase locking over the recovery engine. Under strict 2PL, record
// locks are held until commit or abort, so at most one transaction is ever
// associated with an uncommitted record — the assumption the paper's
// recovery protocols (and their simple before-image undo) rest on.
//
// Lock waits are surfaced as ErrBlocked rather than blocking the goroutine:
// the workload drivers re-issue the operation until it succeeds, which keeps
// single-goroutine experiments deterministic. Deadlocks are detected on the
// waits-for graph in the shared lock space and broken by aborting the
// requester (ErrDeadlock).
package txn

import (
	"errors"
	"fmt"

	"smdb/internal/heap"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/waterfall"
	"smdb/internal/recovery"
	"smdb/internal/sched"
	"smdb/internal/wal"
)

// Errors.
var (
	// ErrBlocked reports that a lock request was queued; retry the
	// operation until it stops returning ErrBlocked.
	ErrBlocked = errors.New("txn: waiting for lock")
	// ErrDeadlock reports that the transaction was chosen as a deadlock
	// victim and must be aborted by the caller.
	ErrDeadlock = errors.New("txn: deadlock victim")
	// ErrDone reports an operation on a committed or aborted transaction.
	ErrDone = errors.New("txn: transaction already finished")
	// ErrNotFound reports a read of an unoccupied or deleted record.
	ErrNotFound = errors.New("txn: record not found")
)

// Manager creates and runs transactions against a recovery.DB.
type Manager struct {
	DB *recovery.DB
}

// NewManager returns a transaction manager over db.
func NewManager(db *recovery.DB) *Manager { return &Manager{DB: db} }

// Txn is one transaction, bound to the node it runs on.
type Txn struct {
	mgr  *Manager
	id   wal.TxnID
	node machine.NodeID
	done bool
	// stallSince is the sim time this transaction first observed the recovery
	// freeze window (0 = not stalled); when the freeze lifts, the span becomes
	// a CauseFrozen waterfall segment.
	stallSince int64
}

// wfNop is the shared no-op bracket closer for the recorder-off path.
var wfNop = func() {}

// wfOp opens this operation's waterfall bracket — the compute-residue
// accounting covers the whole transaction-layer op, lock-manager work
// included — and returns its closer. The engine's own brackets (applyChange)
// nest inside harmlessly. With no recorder attached both halves no-op.
func (t *Txn) wfOp() func() {
	wf := t.mgr.DB.Waterfall()
	if wf == nil {
		return wfNop
	}
	wf.OpStart(int64(t.id), int32(t.node), t.mgr.DB.M.Clock(t.node))
	return func() {
		wf.OpEnd(int64(t.id), int32(t.node), t.mgr.DB.M.Clock(t.node))
	}
}

// Begin starts a transaction on node nd.
func (m *Manager) Begin(nd machine.NodeID) (*Txn, error) {
	id, err := m.DB.Begin(nd)
	if err != nil {
		return nil, err
	}
	return &Txn{mgr: m, id: id, node: nd}, nil
}

// ID returns the transaction identifier.
func (t *Txn) ID() wal.TxnID { return t.id }

// Node returns the node the transaction runs on.
func (t *Txn) Node() machine.NodeID { return t.node }

// Done reports whether the transaction has committed or aborted.
func (t *Txn) Done() bool { return t.done }

func (t *Txn) check() error {
	if t.done {
		return ErrDone
	}
	// Chaos scheduling point: every operation's liveness/freeze observation
	// is a recorded decision, so a replay re-executes it at exactly the
	// recorded place in the global interleaving. No-op without a session.
	t.mgr.DB.SchedPoint(int32(t.node), sched.SiteCheck, 0)
	if !t.mgr.DB.M.Alive(t.node) {
		return machine.ErrNodeDown
	}
	if t.mgr.DB.Frozen() {
		// Between a crash and the end of restart recovery, transaction
		// processing stalls (the hardware has interrupted all CPUs);
		// callers retry as they do for lock waits.
		if t.stallSince == 0 && t.mgr.DB.Waterfall() != nil {
			t.stallSince = t.mgr.DB.M.Clock(t.node)
		}
		return ErrBlocked
	}
	if t.stallSince != 0 {
		// The freeze lifted: whatever sim time recovery charged this node in
		// the meantime is the transaction's frozen stall.
		if wf := t.mgr.DB.Waterfall(); wf != nil {
			now := t.mgr.DB.M.Clock(t.node)
			wf.AddWait(int64(t.id), waterfall.CauseFrozen, t.stallSince, now-t.stallSince, 0, 0)
		}
		t.stallSince = 0
	}
	return nil
}

// acquire requests a lock, translating a queued request into ErrBlocked and
// a waits-for cycle into ErrDeadlock (with the wait cancelled). Each blocked
// attempt's sim cost — the shared-memory lock-manager work of queueing and
// re-probing, which is how a waiting node's clock advances — is recorded as a
// CauseLockWait segment; a granted attempt's cost stays in the enclosing
// bracket's compute residue.
func (t *Txn) acquire(name lock.Name, mode lock.Mode) (err error) {
	if wf := t.mgr.DB.Waterfall(); wf != nil {
		waitFrom := t.mgr.DB.M.Clock(t.node)
		defer func() {
			if !errors.Is(err, ErrBlocked) && !errors.Is(err, ErrDeadlock) {
				return
			}
			if end := t.mgr.DB.M.Clock(t.node); end > waitFrom {
				wf.AddWait(int64(t.id), waterfall.CauseLockWait, waitFrom, end-waitFrom, int64(name), 0)
			}
		}()
	}
	locks := t.mgr.DB.Locks
	granted, err := locks.Acquire(t.node, t.id, name, mode)
	if err != nil {
		return err
	}
	if !granted {
		// It may have been promoted between the queueing and now.
		if m, held, err := locks.Holds(t.node, t.id, name); err != nil {
			return err
		} else if held && m >= mode {
			granted = true
		}
	}
	if granted {
		t.mgr.DB.NoteLock(t.id, name, mode)
		return nil
	}
	victim, err := locks.FindDeadlock(t.node)
	if err != nil {
		return err
	}
	if victim == t.id {
		if err := locks.CancelWait(t.node, t.id, name); err != nil {
			return err
		}
		t.mgr.DB.Observer().Instant(obs.KindDeadlock, int32(t.node),
			t.mgr.DB.M.Clock(t.node), int64(t.id), int64(name))
		return ErrDeadlock
	}
	return ErrBlocked
}

// LockKey acquires a key lock for the transaction (used by the B-tree,
// whose isolation unit is the key rather than the slot). It returns
// ErrBlocked / ErrDeadlock like every other lock acquisition.
func (t *Txn) LockKey(key uint64, mode lock.Mode) error {
	if err := t.check(); err != nil {
		return err
	}
	defer t.wfOp()()
	return t.acquire(lock.NameOfKey(key), mode)
}

// Read returns the record at rid under a shared lock (serializable).
func (t *Txn) Read(rid heap.RID) ([]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	defer t.wfOp()()
	if err := t.acquire(lock.NameOfRID(rid), lock.Shared); err != nil {
		return nil, err
	}
	sd, err := t.mgr.DB.Read(t.node, rid)
	if err != nil {
		return nil, err
	}
	if !sd.Occupied() || sd.Deleted() {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return append([]byte(nil), sd.Data...), nil
}

// ReadDirty returns the record at rid without any lock — the browse/chaos
// isolation degrees of Gray & Reuter, permitted only when the database is
// configured with DirtyReads. Section 3.2's point: with dirty reads, the
// H_wr hazard arises even with one object per cache line.
func (t *Txn) ReadDirty(rid heap.RID) ([]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if !t.mgr.DB.Cfg.DirtyReads {
		return nil, errors.New("txn: dirty reads not enabled")
	}
	defer t.wfOp()()
	sd, err := t.mgr.DB.Read(t.node, rid)
	if err != nil {
		return nil, err
	}
	if !sd.Occupied() || sd.Deleted() {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return append([]byte(nil), sd.Data...), nil
}

// Write updates the record at rid under an exclusive lock.
func (t *Txn) Write(rid heap.RID, data []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	defer t.wfOp()()
	if err := t.acquire(lock.NameOfRID(rid), lock.Exclusive); err != nil {
		return err
	}
	return t.mgr.DB.Update(t.node, t.id, rid, data)
}

// Insert stores a new record at rid under an exclusive lock.
func (t *Txn) Insert(rid heap.RID, data []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	defer t.wfOp()()
	if err := t.acquire(lock.NameOfRID(rid), lock.Exclusive); err != nil {
		return err
	}
	return t.mgr.DB.Insert(t.node, t.id, rid, data)
}

// Delete logically deletes the record at rid under an exclusive lock.
func (t *Txn) Delete(rid heap.RID) error {
	if err := t.check(); err != nil {
		return err
	}
	defer t.wfOp()()
	if err := t.acquire(lock.NameOfRID(rid), lock.Exclusive); err != nil {
		return err
	}
	return t.mgr.DB.Delete(t.node, t.id, rid)
}

// Commit commits the transaction and releases its locks (strict 2PL: only
// after the commit record is stable).
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.mgr.DB.Commit(t.node, t.id); err != nil {
		return err
	}
	t.releaseAll()
	t.done = true
	return nil
}

// Abort rolls the transaction back and releases its locks.
func (t *Txn) Abort() error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.mgr.DB.Abort(t.node, t.id); err != nil {
		return err
	}
	t.releaseAll()
	t.done = true
	return nil
}

// releaseAll frees every lock the node-local state recorded. Tolerated
// errors: ErrNotHeld (restart recovery already restructured the lock
// space), ErrLineLost (the LCB died with a crashed node; recovery's replay
// re-establishes only still-active transactions' locks, which releases ours
// implicitly), and ErrNodeDown (our own node died mid-release).
func (t *Txn) releaseAll() {
	for _, name := range t.mgr.DB.HeldLocks(t.id) {
		err := t.mgr.DB.Locks.Release(t.node, t.id, name)
		switch {
		case err == nil:
		case errors.Is(err, lock.ErrNotHeld),
			errors.Is(err, machine.ErrLineLost),
			errors.Is(err, machine.ErrNodeDown):
		default:
			panic(fmt.Sprintf("txn: releasing %v for %v: %v", name, t.id, err))
		}
	}
}

// Retry re-invokes op until it stops returning ErrBlocked, yielding the
// node's goroutine between attempts. Deterministic drivers schedule around
// ErrBlocked themselves; Retry is for concurrent use.
func Retry(op func() error) error {
	for {
		err := op()
		if !errors.Is(err, ErrBlocked) {
			return err
		}
	}
}
