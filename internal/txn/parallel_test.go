package txn_test

import (
	"errors"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

func newDirtyMgr(t *testing.T) *txn.Manager {
	t.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: 2, Lines: 2048},
		Protocol:       recovery.VolatileSelectiveRedo,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          8,
		LockTableLines: 128,
		DirtyReads:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return txn.NewManager(db)
}

func TestParallelWrapper(t *testing.T) {
	mgr := newMgr(t, 3)
	rids := []heap.RID{{Page: 0, Slot: 0}, {Page: 1, Slot: 0}}
	for _, rid := range rids {
		seedOne(t, mgr, rid, 1)
	}
	p, err := mgr.BeginParallel(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Global() == 0 {
		t.Error("zero global id")
	}
	if p.On(1) != nil {
		t.Error("branch on non-participating node")
	}
	if got := len(p.Nodes()); got != 2 {
		t.Errorf("Nodes = %d", got)
	}
	if err := p.On(0).Write(rids[0], []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := p.On(2).Write(rids[1], []byte{8}); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); !errors.Is(err, txn.ErrDone) {
		t.Errorf("double commit: %v", err)
	}
	check, _ := mgr.Begin(1)
	if v, err := check.Read(rids[0]); err != nil || v[0] != 9 {
		t.Errorf("branch write = %v, %v", v, err)
	}
}

func TestParallelWrapperAbort(t *testing.T) {
	mgr := newMgr(t, 2)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 1)
	p, err := mgr.BeginParallel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.On(1).Write(rid, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(); !errors.Is(err, txn.ErrDone) {
		t.Errorf("double abort: %v", err)
	}
	check, _ := mgr.Begin(0)
	if v, err := check.Read(rid); err != nil || v[0] != 1 {
		t.Errorf("abort not applied: %v, %v", v, err)
	}
}

func TestBeginParallelValidation(t *testing.T) {
	mgr := newMgr(t, 2)
	if _, err := mgr.BeginParallel(); err == nil {
		t.Error("parallel transaction with no nodes accepted")
	}
}

func TestLockKeyAndRetry(t *testing.T) {
	mgr := newMgr(t, 2)
	t1, _ := mgr.Begin(0)
	t2, _ := mgr.Begin(1)
	if err := t1.LockKey(77, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := t2.LockKey(77, lock.Shared); !errors.Is(err, txn.ErrBlocked) {
		t.Fatalf("conflicting key lock: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- txn.Retry(func() error { return t2.LockKey(77, lock.Shared) })
	}()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Retry after release: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDirtyPositive(t *testing.T) {
	mgr := newDirtyMgr(t)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 3)
	writer, _ := mgr.Begin(0)
	if err := writer.Write(rid, []byte{42}); err != nil {
		t.Fatal(err)
	}
	reader, _ := mgr.Begin(1)
	// A dirty read sees the uncommitted value without blocking.
	got, err := reader.ReadDirty(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Errorf("dirty read = %d, want 42", got[0])
	}
	// A locked read would block.
	if _, err := reader.Read(rid); !errors.Is(err, txn.ErrBlocked) {
		t.Errorf("locked read: %v", err)
	}
	if err := writer.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err = reader.ReadDirty(rid)
	if err != nil || got[0] != 3 {
		t.Errorf("dirty read after abort = %v, %v", got, err)
	}
	// Dirty read of a missing record.
	if _, err := reader.ReadDirty(heap.RID{Page: 1, Slot: 0}); !errors.Is(err, txn.ErrNotFound) {
		t.Errorf("dirty read of empty slot: %v", err)
	}
}

func TestFreezeBlocksOps(t *testing.T) {
	mgr := newMgr(t, 2)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 1)
	tx, _ := mgr.Begin(0)
	mgr.DB.Crash(1)
	// Between crash and recovery, survivors stall.
	if _, err := tx.Read(rid); !errors.Is(err, txn.ErrBlocked) {
		t.Errorf("read during freeze: %v", err)
	}
	if _, err := mgr.DB.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(rid); err != nil {
		t.Errorf("read after recovery: %v", err)
	}
}
