package txn_test

import (
	"errors"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

func newMgr(t *testing.T, nodes int) *txn.Manager {
	t.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: nodes, Lines: 2048},
		Protocol:       recovery.VolatileSelectiveRedo,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          8,
		LockTableLines: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	return txn.NewManager(db)
}

func seedOne(t *testing.T, mgr *txn.Manager, rid heap.RID, val byte) {
	t.Helper()
	tx, err := mgr.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(rid, []byte{val}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	mgr := newMgr(t, 2)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 1)
	tx, _ := mgr.Begin(1)
	if err := tx.Write(rid, []byte{42}); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Errorf("read-own-write = %d, want 42", got[0])
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !tx.Done() {
		t.Error("Done() false after commit")
	}
}

func TestConflictBlocksThenProceeds(t *testing.T) {
	mgr := newMgr(t, 2)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 1)
	t1, _ := mgr.Begin(0)
	t2, _ := mgr.Begin(1)
	if err := t1.Write(rid, []byte{10}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(rid, []byte{20}); !errors.Is(err, txn.ErrBlocked) {
		t.Fatalf("conflicting write: err = %v, want ErrBlocked", err)
	}
	// Reads by the blocked transaction also conflict (X held elsewhere).
	if _, err := t2.Read(rid); !errors.Is(err, txn.ErrBlocked) {
		t.Fatalf("conflicting read: err = %v, want ErrBlocked", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// The waiter was promoted on release; the retry succeeds.
	if err := t2.Write(rid, []byte{20}); err != nil {
		t.Fatalf("retry after release: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := mgr.DB.Read(0, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 20 {
		t.Errorf("final value = %d, want 20", got.Data[0])
	}
}

func TestDeadlockVictim(t *testing.T) {
	mgr := newMgr(t, 2)
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 1, Slot: 0}
	seedOne(t, mgr, r1, 1)
	seedOne(t, mgr, r2, 1)
	t1, _ := mgr.Begin(0)
	t2, _ := mgr.Begin(1)
	if err := t1.Write(r1, []byte{10}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(r2, []byte{20}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(r2, []byte{11}); !errors.Is(err, txn.ErrBlocked) {
		t.Fatalf("t1 on r2: %v", err)
	}
	// t2 requesting r1 closes the cycle: one of them is the victim.
	err := t2.Write(r1, []byte{21})
	if !errors.Is(err, txn.ErrDeadlock) && !errors.Is(err, txn.ErrBlocked) {
		t.Fatalf("t2 on r1: err = %v, want deadlock or blocked", err)
	}
	if errors.Is(err, txn.ErrBlocked) {
		// Retry until the detector fires for one of the two.
		err = t1.Write(r2, []byte{11})
		if !errors.Is(err, txn.ErrDeadlock) {
			t.Fatalf("no deadlock detected: %v", err)
		}
		if err := t1.Abort(); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := t2.Abort(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpsAfterDone(t *testing.T) {
	mgr := newMgr(t, 1)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 1)
	tx, _ := mgr.Begin(0)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(rid); !errors.Is(err, txn.ErrDone) {
		t.Errorf("read after commit: err = %v, want ErrDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrDone) {
		t.Errorf("double commit: err = %v, want ErrDone", err)
	}
}

func TestReadMissingRecord(t *testing.T) {
	mgr := newMgr(t, 1)
	tx, _ := mgr.Begin(0)
	if _, err := tx.Read(heap.RID{Page: 0, Slot: 3}); !errors.Is(err, txn.ErrNotFound) {
		t.Errorf("read of empty slot: err = %v, want ErrNotFound", err)
	}
}

func TestDirtyReadGate(t *testing.T) {
	mgr := newMgr(t, 1) // DirtyReads not enabled
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 1)
	tx, _ := mgr.Begin(0)
	if _, err := tx.ReadDirty(rid); err == nil {
		t.Error("ReadDirty allowed without DirtyReads config")
	}
}

func TestOpsOnCrashedNode(t *testing.T) {
	mgr := newMgr(t, 2)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 1)
	tx, _ := mgr.Begin(1)
	mgr.DB.Crash(1)
	if _, err := tx.Read(rid); !errors.Is(err, machine.ErrNodeDown) {
		t.Errorf("read on crashed node: err = %v, want ErrNodeDown", err)
	}
	if _, err := mgr.Begin(1); !errors.Is(err, machine.ErrNodeDown) {
		t.Errorf("begin on crashed node: err = %v, want ErrNodeDown", err)
	}
}

func TestSharedReadersDoNotBlock(t *testing.T) {
	mgr := newMgr(t, 2)
	rid := heap.RID{Page: 0, Slot: 0}
	seedOne(t, mgr, rid, 7)
	t1, _ := mgr.Begin(0)
	t2, _ := mgr.Begin(1)
	for _, tx := range []*txn.Txn{t1, t2} {
		got, err := tx.Read(rid)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 7 {
			t.Errorf("read = %d", got[0])
		}
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}
