package txn

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/recovery"
)

// ParallelTxn is a transaction parallelized across several nodes (paper
// section 9): one branch per node, each doing that node's share of the
// work, committed atomically. If any participating node crashes, restart
// recovery aborts every branch — the whole transaction is all-or-nothing
// across the machine.
type ParallelTxn struct {
	mgr      *Manager
	global   recovery.GlobalID
	branches map[machine.NodeID]*Txn
	done     bool
}

// BeginParallel starts a parallel transaction with a branch on each of the
// given nodes.
func (m *Manager) BeginParallel(nodes ...machine.NodeID) (*ParallelTxn, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("txn: parallel transaction needs at least one node")
	}
	g := m.DB.BeginGlobal()
	p := &ParallelTxn{mgr: m, global: g, branches: make(map[machine.NodeID]*Txn, len(nodes))}
	for _, nd := range nodes {
		id, err := m.DB.BeginBranch(g, nd)
		if err != nil {
			return nil, err
		}
		p.branches[nd] = &Txn{mgr: m, id: id, node: nd}
	}
	return p, nil
}

// Global returns the parallel transaction's identifier.
func (p *ParallelTxn) Global() recovery.GlobalID { return p.global }

// On returns the branch running on node nd (nil if none).
func (p *ParallelTxn) On(nd machine.NodeID) *Txn { return p.branches[nd] }

// Nodes returns the participating nodes.
func (p *ParallelTxn) Nodes() []machine.NodeID {
	out := make([]machine.NodeID, 0, len(p.branches))
	for nd := range p.branches {
		out = append(out, nd)
	}
	return out
}

// Commit commits every branch atomically: all logs are forced through their
// commit records before any branch is considered committed.
func (p *ParallelTxn) Commit() error {
	if p.done {
		return ErrDone
	}
	if err := p.mgr.DB.CommitGlobal(p.global); err != nil {
		return err
	}
	for _, b := range p.branches {
		b.releaseAll()
		b.done = true
	}
	p.done = true
	return nil
}

// Abort rolls back every live branch.
func (p *ParallelTxn) Abort() error {
	if p.done {
		return ErrDone
	}
	if err := p.mgr.DB.AbortGlobal(p.global); err != nil {
		return err
	}
	for _, b := range p.branches {
		if p.mgr.DB.M.Alive(b.node) {
			b.releaseAll()
		}
		b.done = true
	}
	p.done = true
	return nil
}
