// Package sched records and replays the nondeterministic decisions of a
// concurrent chaos run, so a failing interleaving caught once under -race
// can be reproduced deterministically forever after.
//
// A run's nondeterminism has exactly three sources once every PRNG is
// seeded: (1) when each worker observes the harness stop signal, (2) how the
// Go scheduler interleaves the workers' engine calls, and (3) the order in
// which concurrent engine calls reach the fault injector's shared PRNG. The
// session pins all three:
//
//   - Points. Workers call Point at every scheduling-relevant site ("stop"
//     checks, the transaction-layer freeze check, buffer-manager page
//     fetches, episode boundaries). Both modes serialize execution through
//     the "floor" — the exclusive right to run between two of one's points:
//     recording lets the Go scheduler pick which blocked worker takes the
//     floor next (that choice IS the recorded nondeterminism, appended as
//     {actor, site, arg} in floor-grant order); replay grants the floor in
//     recorded order instead, blocking each caller until its point is at
//     the schedule head. Because recording and replay execute segments
//     under the same one-runnable-worker rule, a replayed run sees exactly
//     the recorded engine state at every step — every interleaving, lock
//     outcome, and version allocation reproduces regardless of -race
//     timing skew.
//   - Draws. Fault-injector outcomes are recorded per keyed site and
//     replayed from per-key FIFOs, so a replay fires exactly the recorded
//     faults (same victims, same torn fractions) without consulting a PRNG.
//   - Notes. Record-only annotations (machine line-lock acquisitions,
//     installs, crashes) that document the low-level interleaving for
//     humans and the shrinker; replay never awaits them.
//
// Replay divergence — a candidate schedule whose control flow no longer
// matches, as delta-debugging candidates routinely are — is detected by a
// watchdog timeout instead of deadlocking: every waiter unblocks, stop
// points return "stop now" so workers drain, and Diverged reports why.
package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Actor ids. Workers use their node id; the harness uses HarnessActor.
const (
	// HarnessActor is the chaos harness itself (episode markers).
	HarnessActor int32 = -1
	// NoActor marks a free floor.
	NoActor int32 = -2
)

// Well-known point sites.
const (
	// SiteStop is a worker's observation of the harness stop signal; Arg is
	// 1 when the worker saw "stop" and exited the workload.
	SiteStop = "stop"
	// SiteCheck is the transaction layer's per-operation freeze/liveness
	// check — the entry point of every Read/Write/Commit/Abort.
	SiteCheck = "check"
	// SiteFetch is a buffer-manager page fetch on behalf of a worker: the
	// site where a stale disk image can be reinstalled over destroyed cache
	// lines, and therefore the hazard window of the lost-write race.
	SiteFetch = "fetch"
	// SiteEpisode is the harness marker opening episode Arg (the episode's
	// ORIGINAL index, so seed derivation survives shrinking).
	SiteEpisode = "episode"
	// SiteGroupForce is a group-commit epoch wait on a node's WAL: the
	// leader's window-open hand-off and each follower wait round are one
	// point each, so epoch coalescing decisions are functions of log state
	// at floor-serialized recorded instants.
	SiteGroupForce = "gforce"
)

// Point is one awaited scheduling decision: actor reached site, with a
// site-specific argument (stop outcome, episode index).
type Point struct {
	Actor int32  `json:"a"`
	Site  string `json:"s"`
	Arg   int64  `json:"v,omitempty"`
}

// Draw is one fault-injector outcome at a keyed decision site.
type Draw struct {
	Key  string  `json:"k"`
	Fire bool    `json:"f,omitempty"`
	Node int32   `json:"n,omitempty"`
	Frac float64 `json:"x,omitempty"`
}

// Note is a record-only annotation of low-level interleaving (machine line
// locks, installs, crashes). Replay ignores notes.
type Note struct {
	Actor int32  `json:"a"`
	Site  string `json:"s"`
	Arg   int64  `json:"v,omitempty"`
}

// RunSpec captures the workload and injector knobs a replay must reuse
// verbatim: per-worker PRNG streams derive from the workload shape, and the
// injector's guard logic (crash budget, I/O burst bounds, the PIOError>0
// gate) runs outside the recorded draws.
type RunSpec struct {
	TxnsPerNode     int     `json:"txnsPerNode,omitempty"`
	OpsPerTxn       int     `json:"opsPerTxn,omitempty"`
	ReadFraction    float64 `json:"readFraction,omitempty"`
	SharingFraction float64 `json:"sharingFraction,omitempty"`
	HotSpot         float64 `json:"hotSpot,omitempty"`
	HotProb         float64 `json:"hotProb,omitempty"`
	AbortFraction   float64 `json:"abortFraction,omitempty"`
	HeapPages       int     `json:"heapPages,omitempty"`
	MaxCrashes      int     `json:"maxCrashes,omitempty"`
	MinAlive        int     `json:"minAlive,omitempty"`
	IOErrorBurst    int     `json:"ioErrorBurst,omitempty"`
	PIOError        float64 `json:"pioError,omitempty"`
	// GroupForce records whether the run had epoch/group commit forces on,
	// so a replay rebuilds the same coalescing-capable WAL configuration.
	GroupForce bool `json:"groupForce,omitempty"`
}

// Schedule is a serialized chaos run: everything needed to re-execute it
// deterministically. Produced by a recording session, consumed by a replay.
type Schedule struct {
	Version int `json:"version"`
	// Seed is the workload spec seed; FaultSeed the injector plan seed.
	Seed      int64  `json:"seed"`
	FaultSeed int64  `json:"faultSeed"`
	Protocol  string `json:"protocol,omitempty"`
	Nodes     int    `json:"nodes,omitempty"`
	// Spec carries the recorded run's workload/injector shape so a replay
	// can rebuild an identical environment from the schedule file alone.
	Spec *RunSpec `json:"spec,omitempty"`
	// Episodes lists the original episode indices in run order (also
	// present as SiteEpisode points; kept here for human readers and for
	// the shrinker). EpisodeSeeds are the derived per-episode spec seeds.
	Episodes     []int   `json:"episodes,omitempty"`
	EpisodeSeeds []int64 `json:"episodeSeeds,omitempty"`
	// FailEpisode is the original index of the first violating episode in
	// the run that produced this schedule (-1 = none); FailSeed its derived
	// spec seed. Recorded so a violation dump carries its own repro seed.
	FailEpisode int     `json:"failEpisode"`
	FailSeed    int64   `json:"failSeed,omitempty"`
	Points      []Point `json:"points"`
	Draws       []Draw  `json:"draws,omitempty"`
	Notes       []Note  `json:"notes,omitempty"`
}

// ScheduleVersion is the current serialization version.
const ScheduleVersion = 1

// WriteJSON serializes the schedule as indented JSON to w.
func (s *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// WriteFile serializes the schedule as indented JSON.
func (s *Schedule) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a schedule written by WriteFile.
func ReadFile(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("sched: parse %s: %w", path, err)
	}
	if s.Version != ScheduleVersion {
		return nil, fmt.Errorf("sched: %s has schedule version %d, want %d", path, s.Version, ScheduleVersion)
	}
	return &s, nil
}

// Mode of a session.
type Mode int

const (
	// ModeRecord appends every decision to a fresh schedule.
	ModeRecord Mode = iota + 1
	// ModeReplay enforces a recorded schedule via floor tokens.
	ModeReplay
)

// DefaultWatchdog is the replay divergence timeout: how long a waiter may
// sit behind a schedule head that never arrives before the session declares
// the replay diverged. Generous, because it only fires on genuinely dead
// replays (shrink candidates with broken control flow).
const DefaultWatchdog = 10 * time.Second

// Session is one record or replay context. All methods are safe for
// concurrent use and nil-receiver-safe (a nil session is a disabled one).
type Session struct {
	mode Mode

	mu   sync.Mutex
	cond *sync.Cond
	// armed gates points: only the workload window of each episode is
	// scheduled; harness-phase engine calls (recovery, checker, stranded
	// rollback) pass through. Draws are NOT gated by armed — in-recovery
	// fault decisions must replay too.
	armed bool

	// Record state.
	sch Schedule

	// Replay state.
	src      *Schedule
	cursor   int
	draws    map[string][]Draw
	floor    int32
	diverged bool
	divMsg   string
	watchdog time.Duration

	// divergedFlag mirrors diverged for lock-free reads on hot paths.
	divergedFlag atomic.Bool
}

// NewRecorder starts a recording session.
func NewRecorder() *Session {
	s := &Session{mode: ModeRecord, floor: NoActor}
	s.sch = Schedule{Version: ScheduleVersion, FailEpisode: -1}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// NewReplayer starts a replay session over a recorded schedule.
func NewReplayer(src *Schedule) *Session {
	s := &Session{mode: ModeReplay, src: src, floor: NoActor, watchdog: DefaultWatchdog}
	s.cond = sync.NewCond(&s.mu)
	s.draws = make(map[string][]Draw)
	for _, d := range src.Draws {
		s.draws[d.Key] = append(s.draws[d.Key], d)
	}
	return s
}

// SetWatchdog overrides the divergence timeout (replay only).
func (s *Session) SetWatchdog(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.mu.Lock()
	s.watchdog = d
	s.mu.Unlock()
}

// Recording reports whether s is an armed-capable recording session.
func (s *Session) Recording() bool { return s != nil && s.mode == ModeRecord }

// Replaying reports whether s replays a schedule.
func (s *Session) Replaying() bool { return s != nil && s.mode == ModeReplay }

// Arm opens the scheduled window: points are recorded/enforced until Disarm.
func (s *Session) Arm() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.armed = true
	s.mu.Unlock()
}

// Disarm closes the scheduled window and frees the floor.
func (s *Session) Disarm() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.armed = false
	s.floor = NoActor
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Point records (recording) or enforces (replay) one scheduling decision and
// returns its argument: the passed arg when recording or disarmed, the
// RECORDED arg when replaying. Replay blocks until this actor+site is at the
// schedule head and the floor is free, then holds the floor until the
// actor's next Point, Yield, or Exit.
func (s *Session) Point(actor int32, site string, arg int64) int64 {
	if s == nil {
		return arg
	}
	switch s.mode {
	case ModeRecord:
		return s.recordPoint(actor, site, arg)
	case ModeReplay:
		return s.await(actor, site, arg)
	}
	return arg
}

// recordPoint is the recording side of Point: release the floor, contend
// for it (the Go scheduler's choice of winner is the nondeterminism being
// captured), and append the point in floor-grant order.
//
// The release and the re-acquisition MUST be separate critical sections
// with a scheduler yield between them: if the releaser held s.mu across
// both, parked waiters could never take the freed floor before the
// releaser re-claimed it, every worker would run to completion unpreempted,
// and the recorder would only ever capture one coarse serial interleaving —
// in particular never the crash-between-check-and-fetch window of the
// lost-write race.
func (s *Session) recordPoint(actor int32, site string, arg int64) int64 {
	s.mu.Lock()
	if !s.armed {
		s.mu.Unlock()
		return arg
	}
	if s.floor == actor {
		s.floor = NoActor
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	runtime.Gosched()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.floor != NoActor && s.armed {
		s.cond.Wait()
	}
	if !s.armed {
		return arg
	}
	s.floor = actor
	s.sch.Points = append(s.sch.Points, Point{Actor: actor, Site: site, Arg: arg})
	return arg
}

// await is the replay side of Point.
func (s *Session) await(actor int32, site string, arg int64) int64 {
	if s.divergedFlag.Load() {
		return divergedArg(site, arg)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return arg
	}
	// Hand back the floor before competing for the next token.
	if s.floor == actor {
		s.floor = NoActor
		s.cond.Broadcast()
	}
	deadline := time.Now().Add(s.watchdog)
	// The watchdog goroutine is spawned lazily, only if this await actually
	// blocks, and is reaped via done when the await returns.
	var watching bool
	done := make(chan struct{})
	defer close(done)
	for {
		if s.diverged || !s.armed {
			return divergedArg(site, arg)
		}
		if s.cursor >= len(s.src.Points) {
			s.divergeLocked(fmt.Sprintf("schedule exhausted: actor %d waiting at %q with all %d points consumed",
				actor, site, len(s.src.Points)))
			return divergedArg(site, arg)
		}
		head := s.src.Points[s.cursor]
		if head.Actor == actor && head.Site == site && s.floor == NoActor {
			if site == SiteFetch && head.Arg != arg {
				// Identifier sites must match exactly: fetching a different
				// page here means the replay's control flow already left the
				// recording — fail fast instead of corrupting downstream.
				s.divergeLocked(fmt.Sprintf("actor %d fetch of page %d where recording fetched page %d (point %d/%d)",
					actor, arg, head.Arg, s.cursor, len(s.src.Points)))
				return divergedArg(site, arg)
			}
			s.cursor++
			s.floor = actor
			s.cond.Broadcast()
			return head.Arg
		}
		if time.Now().After(deadline) {
			s.divergeLocked(fmt.Sprintf("watchdog: actor %d stuck at %q while schedule head is {actor %d, %q} (point %d/%d)",
				actor, site, head.Actor, head.Site, s.cursor, len(s.src.Points)))
			return divergedArg(site, arg)
		}
		if !watching {
			watching = true
			go func() {
				t := time.NewTimer(time.Until(deadline))
				defer t.Stop()
				select {
				case <-t.C:
					s.mu.Lock()
					s.cond.Broadcast()
					s.mu.Unlock()
				case <-done:
				}
			}()
		}
		s.cond.Wait()
	}
}

// divergedArg chooses the pass-through result after divergence: stop points
// answer "stop now" so the drained workers terminate instead of spinning on
// a wedged engine; everything else echoes the caller's arg.
func divergedArg(site string, arg int64) int64 {
	if site == SiteStop {
		return 1
	}
	return arg
}

// Yield releases the floor if the actor holds it, without consuming a point.
// The harness yields after its episode marker so the workers can run.
func (s *Session) Yield(actor int32) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.floor == actor {
		s.floor = NoActor
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Exit releases the floor at a worker's final return, letting the next
// scheduled actor run. Harmless when the actor does not hold it.
func (s *Session) Exit(actor int32) { s.Yield(actor) }

// divergeLocked marks the replay diverged and wakes every waiter. Called
// with s.mu held.
func (s *Session) divergeLocked(msg string) {
	if !s.diverged {
		s.diverged = true
		s.divMsg = msg
		s.divergedFlag.Store(true)
	}
	s.cond.Broadcast()
}

// Diverged reports whether the replay left the recorded schedule, and why.
func (s *Session) Diverged() (bool, string) {
	if s == nil {
		return false, ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diverged, s.divMsg
}

// Draw records (recording) or replays one fault-injector outcome for the
// keyed site. When recording, draw() computes the real outcome from the
// injector's PRNG and is recorded; when replaying, the next recorded outcome
// for the key is returned WITHOUT calling draw(), and an exhausted key
// yields a quiet no-fire. Draws are not gated by Arm: in-recovery fault
// decisions replay too.
func (s *Session) Draw(key string, draw func() Draw) Draw {
	if s == nil {
		return draw()
	}
	switch s.mode {
	case ModeRecord:
		d := draw()
		d.Key = key
		s.mu.Lock()
		s.sch.Draws = append(s.sch.Draws, d)
		s.mu.Unlock()
		return d
	case ModeReplay:
		s.mu.Lock()
		defer s.mu.Unlock()
		q := s.draws[key]
		if len(q) == 0 {
			return Draw{Key: key}
		}
		d := q[0]
		s.draws[key] = q[1:]
		return d
	}
	return draw()
}

// Note appends a record-only annotation; no-op on replay. Safe to call from
// machine hooks (it takes only the session mutex).
func (s *Session) Note(actor int32, site string, arg int64) {
	if s == nil || s.mode != ModeRecord {
		return
	}
	s.mu.Lock()
	if s.armed {
		s.sch.Notes = append(s.sch.Notes, Note{Actor: actor, Site: site, Arg: arg})
	}
	s.mu.Unlock()
}

// BeginEpisode marks an episode boundary: records (or awaits) the episode
// point and registers the derived seed. orig is the episode's original index
// in the run that first recorded it; seed the derived per-episode spec seed.
// On replay it returns the RECORDED original index (callers must derive the
// episode seed from it).
func (s *Session) BeginEpisode(orig int, seed int64) int {
	if s == nil {
		return orig
	}
	if s.mode == ModeRecord {
		s.mu.Lock()
		s.sch.Episodes = append(s.sch.Episodes, orig)
		s.sch.EpisodeSeeds = append(s.sch.EpisodeSeeds, seed)
		s.mu.Unlock()
	}
	got := s.Point(HarnessActor, SiteEpisode, int64(orig))
	s.Yield(HarnessActor)
	return int(got)
}

// EpisodePoints returns how many episode markers the replay schedule holds.
func (s *Session) EpisodePoints() int {
	if s == nil || s.src == nil {
		return 0
	}
	n := 0
	for _, p := range s.src.Points {
		if p.Site == SiteEpisode {
			n++
		}
	}
	return n
}

// NoteFailure records the first violating episode (original index) and its
// derived seed into the schedule being recorded.
func (s *Session) NoteFailure(origEp int, seed int64) {
	if s == nil || s.mode != ModeRecord {
		return
	}
	s.mu.Lock()
	if s.sch.FailEpisode < 0 {
		s.sch.FailEpisode = origEp
		s.sch.FailSeed = seed
	}
	s.mu.Unlock()
}

// SetRunInfo stamps run-identifying metadata on the schedule being recorded.
func (s *Session) SetRunInfo(seed, faultSeed int64, protocol string, nodes int) {
	if s == nil || s.mode != ModeRecord {
		return
	}
	s.mu.Lock()
	s.sch.Seed = seed
	s.sch.FaultSeed = faultSeed
	s.sch.Protocol = protocol
	s.sch.Nodes = nodes
	s.mu.Unlock()
}

// SetSpec stamps the recorded run's workload/injector shape.
func (s *Session) SetSpec(rs RunSpec) {
	if s == nil || s.mode != ModeRecord {
		return
	}
	s.mu.Lock()
	s.sch.Spec = &rs
	s.mu.Unlock()
}

// Schedule returns a snapshot of the recorded schedule (recording sessions),
// or the source schedule being replayed.
func (s *Session) Schedule() *Schedule {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == ModeReplay {
		return s.src
	}
	cp := s.sch
	cp.Points = append([]Point(nil), s.sch.Points...)
	cp.Draws = append([]Draw(nil), s.sch.Draws...)
	cp.Notes = append([]Note(nil), s.sch.Notes...)
	cp.Episodes = append([]int(nil), s.sch.Episodes...)
	cp.EpisodeSeeds = append([]int64(nil), s.sch.EpisodeSeeds...)
	return &cp
}
