package sched

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestRecorderCapturesFloorOrder checks that a recording session serializes
// concurrent actors and appends their points in floor-grant order.
func TestRecorderCapturesFloorOrder(t *testing.T) {
	rec := NewRecorder()
	rec.Arm()
	var wg sync.WaitGroup
	for a := int32(0); a < 3; a++ {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rec.Exit(a)
			for i := 0; i < 4; i++ {
				rec.Point(a, SiteCheck, 0)
			}
		}()
	}
	wg.Wait()
	rec.Disarm()
	sch := rec.Schedule()
	if len(sch.Points) != 12 {
		t.Fatalf("recorded %d points, want 12", len(sch.Points))
	}
	per := map[int32]int{}
	for _, p := range sch.Points {
		if p.Site != SiteCheck {
			t.Fatalf("unexpected site %q", p.Site)
		}
		per[p.Actor]++
	}
	for a := int32(0); a < 3; a++ {
		if per[a] != 4 {
			t.Fatalf("actor %d recorded %d points, want 4", a, per[a])
		}
	}
}

// TestReplayEnforcesOrder replays a hand-built schedule and checks the
// actors' observed execution order matches it exactly.
func TestReplayEnforcesOrder(t *testing.T) {
	src := &Schedule{Version: ScheduleVersion, FailEpisode: -1}
	// Interleave two actors in a specific, non-round-robin order.
	order := []int32{0, 0, 1, 0, 1, 1}
	for _, a := range order {
		src.Points = append(src.Points, Point{Actor: a, Site: SiteCheck})
	}
	rep := NewReplayer(src)
	rep.Arm()
	var mu sync.Mutex
	var got []int32
	var wg sync.WaitGroup
	for a := int32(0); a < 2; a++ {
		a := a
		n := 0
		for _, o := range order {
			if o == a {
				n++
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rep.Exit(a)
			for i := 0; i < n; i++ {
				rep.Point(a, SiteCheck, 0)
				mu.Lock()
				got = append(got, a)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Disarm()
	if d, msg := rep.Diverged(); d {
		t.Fatalf("replay diverged: %s", msg)
	}
	if !reflect.DeepEqual(got, order) {
		t.Fatalf("execution order %v, want %v", got, order)
	}
}

// TestReplayReturnsRecordedArg checks stop points echo the recorded outcome,
// not the live one.
func TestReplayReturnsRecordedArg(t *testing.T) {
	src := &Schedule{
		Version:     ScheduleVersion,
		FailEpisode: -1,
		Points: []Point{
			{Actor: 0, Site: SiteStop, Arg: 0},
			{Actor: 0, Site: SiteStop, Arg: 1},
		},
	}
	rep := NewReplayer(src)
	rep.Arm()
	defer rep.Disarm()
	if got := rep.Point(0, SiteStop, 0); got != 0 {
		t.Fatalf("first stop observation = %d, want 0", got)
	}
	// Live arg says "keep going" (0) but the recording stopped here.
	if got := rep.Point(0, SiteStop, 0); got != 1 {
		t.Fatalf("second stop observation = %d, want recorded 1", got)
	}
}

// TestDisarmedPassThrough checks points outside the armed window are free.
func TestDisarmedPassThrough(t *testing.T) {
	rec := NewRecorder()
	if got := rec.Point(3, SiteCheck, 7); got != 7 {
		t.Fatalf("disarmed point = %d, want 7", got)
	}
	if n := len(rec.Schedule().Points); n != 0 {
		t.Fatalf("disarmed recording stored %d points, want 0", n)
	}
	rep := NewReplayer(&Schedule{Version: ScheduleVersion})
	if got := rep.Point(3, SiteCheck, 7); got != 7 {
		t.Fatalf("disarmed replay point = %d, want 7", got)
	}
}

// TestNilSessionSafe checks the nil session is a working disabled session.
func TestNilSessionSafe(t *testing.T) {
	var s *Session
	if got := s.Point(0, SiteCheck, 5); got != 5 {
		t.Fatalf("nil Point = %d, want 5", got)
	}
	s.Arm()
	s.Disarm()
	s.Yield(0)
	s.Exit(0)
	s.Note(0, "x", 0)
	s.NoteFailure(0, 0)
	if d, _ := s.Diverged(); d {
		t.Fatal("nil session reports diverged")
	}
	if s.Recording() || s.Replaying() {
		t.Fatal("nil session claims a mode")
	}
	d := s.Draw("k", func() Draw { return Draw{Fire: true} })
	if !d.Fire {
		t.Fatal("nil session did not pass the draw through")
	}
	if got := s.BeginEpisode(4, 0); got != 4 {
		t.Fatalf("nil BeginEpisode = %d, want 4", got)
	}
}

// TestDrawFIFOPerKey checks draws replay per-key in FIFO order and that an
// exhausted key yields a quiet no-fire.
func TestDrawFIFOPerKey(t *testing.T) {
	rec := NewRecorder()
	outcomes := []Draw{
		{Fire: true, Node: 2},
		{Fire: false},
		{Fire: true, Frac: 0.5},
	}
	i := 0
	mk := func() Draw { d := outcomes[i]; i++; return d }
	rec.Draw("migrate:1", mk)
	rec.Draw("io:force", mk)
	rec.Draw("migrate:1", mk)
	sch := rec.Schedule()
	if len(sch.Draws) != 3 {
		t.Fatalf("recorded %d draws, want 3", len(sch.Draws))
	}

	rep := NewReplayer(sch)
	fail := func() Draw { t.Fatal("replay consulted the live PRNG"); return Draw{} }
	if d := rep.Draw("migrate:1", fail); !d.Fire || d.Node != 2 {
		t.Fatalf("first migrate draw = %+v", d)
	}
	if d := rep.Draw("io:force", fail); d.Fire {
		t.Fatalf("io draw fired, recorded no-fire: %+v", d)
	}
	if d := rep.Draw("migrate:1", fail); !d.Fire || d.Frac != 0.5 {
		t.Fatalf("second migrate draw = %+v", d)
	}
	// Exhausted key: quiet no-fire, still no PRNG consultation.
	if d := rep.Draw("migrate:1", fail); d.Fire {
		t.Fatalf("exhausted key fired: %+v", d)
	}
	// Never-recorded key: same.
	if d := rep.Draw("update:9", fail); d.Fire {
		t.Fatalf("unknown key fired: %+v", d)
	}
}

// TestWatchdogDivergence checks a waiter stuck behind a head that never
// arrives unblocks via the watchdog, reports why, and that stop points
// answer "stop now" afterwards.
func TestWatchdogDivergence(t *testing.T) {
	src := &Schedule{
		Version:     ScheduleVersion,
		FailEpisode: -1,
		Points:      []Point{{Actor: 9, Site: SiteCheck}}, // actor 9 never shows up
	}
	rep := NewReplayer(src)
	rep.SetWatchdog(50 * time.Millisecond)
	rep.Arm()
	defer rep.Disarm()
	start := time.Now()
	got := rep.Point(0, SiteStop, 0)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	if got != 1 {
		t.Fatalf("post-divergence stop = %d, want 1 (stop now)", got)
	}
	d, msg := rep.Diverged()
	if !d || msg == "" {
		t.Fatalf("divergence not reported: %v %q", d, msg)
	}
}

// TestFetchArgMismatchDiverges checks an identifier-site argument mismatch is
// an immediate divergence.
func TestFetchArgMismatchDiverges(t *testing.T) {
	src := &Schedule{
		Version:     ScheduleVersion,
		FailEpisode: -1,
		Points:      []Point{{Actor: 0, Site: SiteFetch, Arg: 3}},
	}
	rep := NewReplayer(src)
	rep.Arm()
	defer rep.Disarm()
	rep.Point(0, SiteFetch, 8) // recording fetched page 3
	if d, msg := rep.Diverged(); !d || msg == "" {
		t.Fatal("fetch arg mismatch did not diverge")
	}
}

// TestScheduleExhaustionDiverges checks a point past the end of the schedule
// diverges rather than deadlocking.
func TestScheduleExhaustionDiverges(t *testing.T) {
	rep := NewReplayer(&Schedule{Version: ScheduleVersion, FailEpisode: -1})
	rep.Arm()
	defer rep.Disarm()
	rep.Point(0, SiteCheck, 0)
	if d, _ := rep.Diverged(); !d {
		t.Fatal("exhausted schedule did not diverge")
	}
}

// TestEpisodeRoundTrip checks BeginEpisode records the original index and
// replays it back even when the surrounding loop index differs (the shrink
// case: episode 2 replayed as the run's first episode).
func TestEpisodeRoundTrip(t *testing.T) {
	rec := NewRecorder()
	rec.Arm()
	if got := rec.BeginEpisode(2, 777); got != 2 {
		t.Fatalf("record BeginEpisode = %d, want 2", got)
	}
	rec.Disarm()
	rec.NoteFailure(2, 777)
	sch := rec.Schedule()
	if !reflect.DeepEqual(sch.Episodes, []int{2}) || !reflect.DeepEqual(sch.EpisodeSeeds, []int64{777}) {
		t.Fatalf("episode metadata %v / %v", sch.Episodes, sch.EpisodeSeeds)
	}
	if sch.FailEpisode != 2 || sch.FailSeed != 777 {
		t.Fatalf("failure metadata %d / %d", sch.FailEpisode, sch.FailSeed)
	}

	rep := NewReplayer(sch)
	rep.Arm()
	defer rep.Disarm()
	if n := rep.EpisodePoints(); n != 1 {
		t.Fatalf("EpisodePoints = %d, want 1", n)
	}
	// The replaying harness passes its own loop index (0); the session must
	// return the recorded original index.
	if got := rep.BeginEpisode(0, 0); got != 2 {
		t.Fatalf("replay BeginEpisode = %d, want recorded 2", got)
	}
}

// TestNotesRecordOnly checks notes are captured when recording armed and
// ignored otherwise.
func TestNotesRecordOnly(t *testing.T) {
	rec := NewRecorder()
	rec.Note(0, "install", 5) // disarmed: dropped
	rec.Arm()
	rec.Note(1, "getline", 9)
	rec.Disarm()
	sch := rec.Schedule()
	if len(sch.Notes) != 1 || sch.Notes[0].Actor != 1 {
		t.Fatalf("notes = %+v", sch.Notes)
	}
	rep := NewReplayer(sch)
	rep.Arm()
	rep.Note(1, "getline", 9) // replay: ignored, not awaited
	rep.Disarm()
}

// TestReadFileVersionCheck checks version skew is rejected.
func TestReadFileVersionCheck(t *testing.T) {
	s := &Schedule{Version: ScheduleVersion + 1}
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("version skew accepted")
	}
}
