// Package storage simulates the stable storage of the shared-memory database
// system: a set of shared disks holding the stable database (pages) and one
// stable log device per node. In the paper's system model (figure 1) every
// node is connected to all disks; stable storage survives any number of node
// crashes. Latency is charged by the callers (buffer manager, log manager)
// to the simulated per-node clocks using the machine's cost model; this
// package only stores bytes and counts I/O.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// PageID identifies a page of the stable database.
type PageID int32

// NoPage is the null page identifier.
const NoPage PageID = -1

// ErrNoPage reports a read of a page that has never been written.
var ErrNoPage = errors.New("storage: page has never been written")

// Disk is a simulated shared disk holding fixed-size pages. It is safe for
// concurrent use.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	reads    int64
	writes   int64
}

// NewDisk returns an empty disk with the given page size.
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		panic(fmt.Sprintf("storage: page size must be positive, got %d", pageSize))
	}
	return &Disk{pageSize: pageSize, pages: make(map[PageID][]byte)}
}

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// ReadPage returns a copy of page id, or ErrNoPage if it was never written.
func (d *Disk) ReadPage(id PageID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: page %d", ErrNoPage, id)
	}
	d.reads++
	out := make([]byte, d.pageSize)
	copy(out, p)
	return out, nil
}

// WritePage durably stores page id. Short data is zero-padded; long data is
// rejected.
func (d *Disk) WritePage(id PageID, data []byte) error {
	if len(data) > d.pageSize {
		return fmt.Errorf("storage: page %d write of %d bytes exceeds page size %d", id, len(data), d.pageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := make([]byte, d.pageSize)
	copy(p, data)
	d.pages[id] = p
	d.writes++
	return nil
}

// Exists reports whether page id has ever been written.
func (d *Disk) Exists(id PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.pages[id]
	return ok
}

// IOCounts returns the cumulative page reads and writes.
func (d *Disk) IOCounts() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// LogDevice is the stable, append-only log device of one node. Forcing a
// node's volatile log tail appends its encoded records here; the contents
// survive every crash.
type LogDevice struct {
	mu     sync.Mutex
	buf    []byte
	forces int64
}

// NewLogDevice returns an empty stable log device.
func NewLogDevice() *LogDevice { return &LogDevice{} }

// Append durably appends data and returns the byte offset at which it was
// written.
func (d *LogDevice) Append(data []byte) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	off := int64(len(d.buf))
	d.buf = append(d.buf, data...)
	d.forces++
	return off
}

// Size returns the number of stable bytes.
func (d *LogDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf))
}

// Forces returns the number of Append calls (physical log forces).
func (d *LogDevice) Forces() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.forces
}

// Contents returns a copy of the entire stable log.
func (d *LogDevice) Contents() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, len(d.buf))
	copy(out, d.buf)
	return out
}

// Truncate replaces the device contents with keep — log-space reclamation
// after a checkpoint has archived everything older (on real hardware the
// log is a ring; here the archive is simply dropped).
func (d *LogDevice) Truncate(keep []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = append(d.buf[:0], keep...)
}
