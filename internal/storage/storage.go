// Package storage simulates the stable storage of the shared-memory database
// system: a set of shared disks holding the stable database (pages) and one
// stable log device per node. In the paper's system model (figure 1) every
// node is connected to all disks; stable storage survives any number of node
// crashes. Latency is charged by the callers (buffer manager, log manager)
// to the simulated per-node clocks using the machine's cost model; this
// package only stores bytes and counts I/O.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// PageID identifies a page of the stable database.
type PageID int32

// NoPage is the null page identifier.
const NoPage PageID = -1

// ErrNoPage reports a read of a page that has never been written.
var ErrNoPage = errors.New("storage: page has never been written")

// ErrTransient reports a transient I/O error (injected by the fault engine;
// on real hardware a recoverable bus/controller fault). Callers should retry
// with backoff; the fault engine bounds consecutive failures so bounded
// retries always succeed.
var ErrTransient = errors.New("storage: transient I/O error")

// FaultFunc is consulted before each storage operation; a non-nil return
// fails the operation. The op string names the operation ("read", "write",
// "append"). Installed via SetFault; nil disables injection.
type FaultFunc func(op string) error

// RetryPolicy bounds and paces retries of transient storage errors.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first try included).
	MaxAttempts int
	// BackoffNanos is the simulated-time delay charged before the first
	// retry; it doubles on each subsequent one.
	BackoffNanos int64
}

// DefaultRetry is the policy used by the buffer and log managers. Its six
// attempts comfortably exceed the fault engine's default I/O-error burst
// bound of two, so injected transient errors never become permanent.
var DefaultRetry = RetryPolicy{MaxAttempts: 6, BackoffNanos: 20_000}

// Backoff returns the simulated delay before retry attempt (1-based count of
// failures so far), doubling per attempt.
func (p RetryPolicy) Backoff(attempt int) int64 {
	d := p.BackoffNanos
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	return d
}

// Disk is a simulated shared disk holding fixed-size pages. It is safe for
// concurrent use.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	reads    int64
	writes   int64
	fault    FaultFunc
}

// NewDisk returns an empty disk with the given page size.
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		panic(fmt.Sprintf("storage: page size must be positive, got %d", pageSize))
	}
	return &Disk{pageSize: pageSize, pages: make(map[PageID][]byte)}
}

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// SetFault installs (or with nil removes) a fault hook consulted before
// every read and write.
func (d *Disk) SetFault(f FaultFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// faultCheck calls the installed hook outside d.mu (the hook takes its own
// lock and must not be invoked under ours).
func (d *Disk) faultCheck(op string) error {
	d.mu.Lock()
	f := d.fault
	d.mu.Unlock()
	if f == nil {
		return nil
	}
	return f(op)
}

// ReadPage returns a copy of page id, or ErrNoPage if it was never written.
func (d *Disk) ReadPage(id PageID) ([]byte, error) {
	if err := d.faultCheck("read"); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: page %d", ErrNoPage, id)
	}
	d.reads++
	out := make([]byte, d.pageSize)
	copy(out, p)
	return out, nil
}

// WritePage durably stores page id. Short data is zero-padded; long data is
// rejected.
func (d *Disk) WritePage(id PageID, data []byte) error {
	if len(data) > d.pageSize {
		return fmt.Errorf("storage: page %d write of %d bytes exceeds page size %d", id, len(data), d.pageSize)
	}
	if err := d.faultCheck("write"); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := make([]byte, d.pageSize)
	copy(p, data)
	d.pages[id] = p
	d.writes++
	return nil
}

// Exists reports whether page id has ever been written.
func (d *Disk) Exists(id PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.pages[id]
	return ok
}

// IOCounts returns the cumulative page reads and writes.
func (d *Disk) IOCounts() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// LogDevice is the stable, append-only log device of one node. Forcing a
// node's volatile log tail appends its encoded records here; the contents
// survive every crash.
type LogDevice struct {
	mu     sync.Mutex
	buf    []byte
	forces int64
	fault  FaultFunc
}

// NewLogDevice returns an empty stable log device.
func NewLogDevice() *LogDevice { return &LogDevice{} }

// SetFault installs (or with nil removes) a fault hook consulted before
// every append.
func (d *LogDevice) SetFault(f FaultFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// Append durably appends data and returns the byte offset at which it was
// written. A transient fault fails the append with no bytes written (an
// injected torn write is modelled one level up, in wal.ForceTorn, which
// appends only a prefix).
func (d *LogDevice) Append(data []byte) (int64, error) {
	d.mu.Lock()
	f := d.fault
	d.mu.Unlock()
	if f != nil {
		if err := f("append"); err != nil {
			return 0, err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	off := int64(len(d.buf))
	d.buf = append(d.buf, data...)
	d.forces++
	return off, nil
}

// Size returns the number of stable bytes.
func (d *LogDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf))
}

// Forces returns the number of Append calls (physical log forces).
func (d *LogDevice) Forces() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.forces
}

// Contents returns a copy of the entire stable log.
func (d *LogDevice) Contents() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, len(d.buf))
	copy(out, d.buf)
	return out
}

// Truncate replaces the device contents with keep — log-space reclamation
// after a checkpoint has archived everything older (on real hardware the
// log is a ring; here the archive is simply dropped).
func (d *LogDevice) Truncate(keep []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = append(d.buf[:0], keep...)
}
