package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestDiskRoundTrip(t *testing.T) {
	d := NewDisk(256)
	if d.PageSize() != 256 {
		t.Fatalf("PageSize = %d", d.PageSize())
	}
	if _, err := d.ReadPage(3); !errors.Is(err, ErrNoPage) {
		t.Errorf("read of missing page: err = %v, want ErrNoPage", err)
	}
	if d.Exists(3) {
		t.Error("Exists(3) before write")
	}
	want := bytes.Repeat([]byte{7}, 256)
	if err := d.WritePage(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read back differs")
	}
	if !d.Exists(3) {
		t.Error("Exists(3) after write")
	}
	r, w := d.IOCounts()
	if r != 1 || w != 1 {
		t.Errorf("IOCounts = %d, %d; want 1, 1", r, w)
	}
}

func TestDiskShortWriteZeroPads(t *testing.T) {
	d := NewDisk(16)
	if err := d.WritePage(0, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 16)
	want[0], want[1] = 1, 2
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDiskOversizeWriteRejected(t *testing.T) {
	d := NewDisk(8)
	if err := d.WritePage(0, make([]byte, 9)); err == nil {
		t.Error("oversize write accepted")
	}
}

func TestDiskReadReturnsCopy(t *testing.T) {
	d := NewDisk(8)
	if err := d.WritePage(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadPage(0)
	got[0] = 99
	again, _ := d.ReadPage(0)
	if again[0] != 1 {
		t.Error("ReadPage exposed internal buffer")
	}
}

func TestNewDiskPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDisk(0) did not panic")
		}
	}()
	NewDisk(0)
}

func TestLogDeviceAppend(t *testing.T) {
	d := NewLogDevice()
	o1, err := d.Append([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := d.Append([]byte("de"))
	if err != nil {
		t.Fatal(err)
	}
	if o1 != 0 || o2 != 3 {
		t.Errorf("offsets = %d, %d; want 0, 3", o1, o2)
	}
	if d.Size() != 5 {
		t.Errorf("Size = %d, want 5", d.Size())
	}
	if d.Forces() != 2 {
		t.Errorf("Forces = %d, want 2", d.Forces())
	}
	if got := d.Contents(); string(got) != "abcde" {
		t.Errorf("Contents = %q", got)
	}
}

func TestLogDeviceContentsIsCopy(t *testing.T) {
	d := NewLogDevice()
	d.Append([]byte{1})
	c := d.Contents()
	c[0] = 9
	if d.Contents()[0] != 1 {
		t.Error("Contents exposed internal buffer")
	}
}

func TestFaultHooks(t *testing.T) {
	d := NewDisk(16)
	if err := d.WritePage(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	fail := true
	fault := func(op string) error {
		if fail {
			return ErrTransient
		}
		return nil
	}
	d.SetFault(fault)
	if _, err := d.ReadPage(0); !errors.Is(err, ErrTransient) {
		t.Errorf("read under fault: err = %v, want ErrTransient", err)
	}
	if err := d.WritePage(0, []byte{2}); !errors.Is(err, ErrTransient) {
		t.Errorf("write under fault: err = %v, want ErrTransient", err)
	}
	fail = false
	if _, err := d.ReadPage(0); err != nil {
		t.Errorf("read after fault cleared: %v", err)
	}
	d.SetFault(nil)

	ld := NewLogDevice()
	ld.SetFault(fault)
	fail = true
	if _, err := ld.Append([]byte("x")); !errors.Is(err, ErrTransient) {
		t.Errorf("append under fault: err = %v, want ErrTransient", err)
	}
	if ld.Size() != 0 {
		t.Errorf("failed append wrote %d bytes", ld.Size())
	}
	fail = false
	if _, err := ld.Append([]byte("x")); err != nil {
		t.Errorf("append after fault cleared: %v", err)
	}
}

func TestRetryPolicyBackoffDoubles(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BackoffNanos: 100}
	for i, want := range []int64{100, 200, 400} {
		if got := p.Backoff(i + 1); got != want {
			t.Errorf("Backoff(%d) = %d, want %d", i+1, got, want)
		}
	}
}

func TestDiskConcurrent(t *testing.T) {
	d := NewDisk(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := PageID(j % 10)
				_ = d.WritePage(id, []byte{byte(i), byte(j)})
				if b, err := d.ReadPage(id); err == nil && len(b) != 64 {
					t.Errorf("short page: %d", len(b))
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestQuickDiskLastWriteWins: after any sequence of writes, each page holds
// its last written (zero-padded) content.
func TestQuickDiskLastWriteWins(t *testing.T) {
	type wr struct {
		ID   uint8
		Data []byte
	}
	f := func(writes []wr) bool {
		d := NewDisk(32)
		last := map[PageID][]byte{}
		for _, w := range writes {
			data := w.Data
			if len(data) > 32 {
				data = data[:32]
			}
			id := PageID(w.ID % 8)
			if err := d.WritePage(id, data); err != nil {
				return false
			}
			p := make([]byte, 32)
			copy(p, data)
			last[id] = p
		}
		for id, want := range last {
			got, err := d.ReadPage(id)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLogDeviceIsAppendOnly: the device's contents are always the
// concatenation of everything appended, and offsets are strictly increasing.
func TestQuickLogDeviceIsAppendOnly(t *testing.T) {
	f := func(chunks [][]byte) bool {
		d := NewLogDevice()
		var want []byte
		prev := int64(-1)
		for _, c := range chunks {
			off, err := d.Append(c)
			if err != nil {
				return false
			}
			if off != int64(len(want)) || off <= prev && len(c) > 0 && prev >= 0 && off != prev {
				return false
			}
			prev = off
			want = append(want, c...)
		}
		return bytes.Equal(d.Contents(), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
