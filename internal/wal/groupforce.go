package wal

import (
	"runtime"
	"sync"
	"time"
)

// Epoch/group log forces: commits arriving within one epoch window coalesce
// into a single physical device force. The first committer whose record is
// not yet stable becomes the epoch's leader — it waits out the window (so
// concurrent committers can append their own commit records), then forces
// the log through its current tail, covering every record the epoch
// collected in one device write. Committers that arrive while a leader is in
// flight are followers: they wait for the leader's force and, if it covered
// their LSN, return without a device write of their own. Commit-heavy
// workloads thus stop serializing on one physical force per commit; the
// commit *durability* contract is unchanged because a caller only returns
// success once its own LSN is stable (the recovery layer re-checks
// ForcedLSN after every ForceGroup).
//
// Determinism under chaos record/replay: a host-time window would make the
// set of commit records stable at a crash instant depend on scheduling, so
// the wait is pluggable. With a yield hook installed (the recovery layer
// wires it to a sched.Session point), both the leader's collection wait and
// each follower wait round are single recorded scheduler points: the
// coalescing decisions become functions of log state at floor-serialized,
// recorded instants, and a replay reproduces them exactly. Followers must
// never block on the condvar in that mode — a follower parked under the
// scheduler floor would deadlock the session — so they yield-loop instead.

// groupForce is the per-log epoch/group-commit state, guarded by Log.mu.
type groupForce struct {
	enabled bool
	// window is the leader's host-time collection wait (ignored when a
	// yield hook is installed).
	window time.Duration
	// yield, when non-nil, replaces the host-time window: the leader calls
	// it once to open the epoch to concurrent committers, and followers
	// call it per wait round instead of parking on cond.
	yield func()
	// leader is true while an epoch leader is collecting or forcing.
	leader bool
	// cond wakes parked followers after the leader's force — and on
	// Crash/ForceTorn, so nobody waits on a dead log.
	cond *sync.Cond
	// downCh interrupts a leader parked in its host-time window when the
	// log goes down mid-epoch (a condvar cannot time out, a sleep cannot
	// be woken). Closed by wakeGroupLocked, remade by Reopen.
	downCh     chan struct{}
	downClosed bool
	// leads/joins/coalesced: epochs led (physical forces attempted by a
	// leader), waits satisfied by another commit's force, and calls whose
	// LSN was already stable on arrival.
	leads, joins, coalesced int64
}

// GroupForceResult reports how one ForceGroup call was satisfied.
type GroupForceResult struct {
	// Records is the number of records made stable by this caller's own
	// physical force (0 unless Led).
	Records int
	// Led: this caller was the epoch leader and performed (or attempted)
	// the physical force.
	Led bool
	// Joined: the caller waited and another commit's force covered its LSN.
	Joined bool
	// Coalesced: the LSN was already stable on arrival; no wait, no force.
	Coalesced bool
}

// EnableGroupForce turns on epoch/group commit forces for this log. window
// is the leader's collection wait in host time; yield (optional) replaces it
// with a deterministic scheduler hand-off — see SetGroupYield.
func (l *Log) EnableGroupForce(window time.Duration, yield func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gf.enabled = true
	l.gf.window = window
	l.gf.yield = yield
	if l.gf.cond == nil {
		l.gf.cond = sync.NewCond(&l.mu)
	}
	if l.gf.downCh == nil {
		l.gf.downCh = make(chan struct{})
		l.gf.downClosed = false
	}
}

// SetGroupYield installs (or, with nil, removes) the deterministic wait
// hook. With a hook installed the leader's epoch window and every follower
// wait round are one hook call each — the recovery layer points this at a
// sched.Session so record/replay serializes the coalescing decisions.
func (l *Log) SetGroupYield(yield func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gf.yield = yield
}

// GroupForceEnabled reports whether epoch/group forces are on.
func (l *Log) GroupForceEnabled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gf.enabled
}

// GroupStats returns the cumulative epoch census: epochs led, waits
// satisfied by another commit's force, and already-stable no-ops.
func (l *Log) GroupStats() (leads, joins, coalesced int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gf.leads, l.gf.joins, l.gf.coalesced
}

// wakeGroupLocked unparks any followers; called (with l.mu held) wherever
// the log goes down, so nobody waits on a dead log.
func (l *Log) wakeGroupLocked() {
	if l.gf.cond != nil {
		l.gf.cond.Broadcast()
	}
	if l.gf.downCh != nil && !l.gf.downClosed {
		close(l.gf.downCh)
		l.gf.downClosed = true
	}
}

// coveredLocked reports whether upto is already stable.
func (l *Log) coveredLocked(upto LSN) bool {
	return int(upto-l.first)+1 <= l.forced
}

// ForceGroup makes the record at upto stable via the epoch/group-commit
// path. With group forces disabled it degrades to a plain Force. The result
// says how the request was satisfied; like Force, a down log yields a zero
// result and the caller must re-check ForcedLSN before acknowledging.
func (l *Log) ForceGroup(upto LSN) GroupForceResult {
	l.mu.Lock()
	if !l.gf.enabled {
		n, f := l.forceLocked(upto)
		l.mu.Unlock()
		return GroupForceResult{Records: n, Led: f}
	}
	if l.down {
		l.mu.Unlock()
		return GroupForceResult{}
	}
	if l.coveredLocked(upto) {
		l.gf.coalesced++
		l.mu.Unlock()
		return GroupForceResult{Coalesced: true}
	}
	// Follower path: a leader is collecting or forcing; wait for its force
	// and re-check. The loop re-enters when a new leader won the race first.
	for l.gf.leader {
		if yield := l.gf.yield; yield != nil {
			l.mu.Unlock()
			yield()
			// The hook may be a pass-through (e.g. a disarmed session);
			// keep the wait loop polite on real CPUs.
			runtime.Gosched()
			l.mu.Lock()
		} else {
			l.gf.cond.Wait()
		}
		if l.down {
			l.mu.Unlock()
			return GroupForceResult{}
		}
		if l.coveredLocked(upto) {
			l.gf.joins++
			l.mu.Unlock()
			return GroupForceResult{Joined: true}
		}
	}
	// A previous leader may have exited without covering us (torn or failed
	// force) while an unrelated plain Force advanced the stable prefix;
	// re-check before taking the epoch over.
	if l.coveredLocked(upto) {
		l.gf.joins++
		l.mu.Unlock()
		return GroupForceResult{Joined: true}
	}
	// Leader path: open the epoch, let concurrent committers append, then
	// force through the whole tail so every collected record piggybacks on
	// one device write.
	l.gf.leader = true
	l.gf.leads++
	window, yield, downCh := l.gf.window, l.gf.yield, l.gf.downCh
	l.mu.Unlock()
	if yield != nil {
		yield()
	} else if window > 0 {
		// A crash mid-window must wake the leader: the select races the
		// epoch timer against the log going down.
		t := time.NewTimer(window)
		select {
		case <-t.C:
		case <-downCh:
			t.Stop()
		}
	}
	l.mu.Lock()
	var res GroupForceResult
	if !l.down {
		n, f := l.forceLocked(LSN(1 << 62))
		res = GroupForceResult{Records: n, Led: f}
	}
	l.gf.leader = false
	l.gf.cond.Broadcast()
	l.mu.Unlock()
	return res
}
