package wal

import (
	"testing"

	"smdb/internal/storage"
)

// scanLog builds a log with n update records (plus a checkpoint in the
// middle) for the Scan tests.
func scanLog(tb testing.TB, n int) *Log {
	tb.Helper()
	l, err := NewLog(0, storage.NewLogDevice())
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == n/2 {
			l.Append(Record{Type: TypeCheckpoint})
		}
		r := benchRecord()
		r.Page = storage.PageID(i % 8)
		l.Append(r)
	}
	return l
}

func TestScanMatchesRecords(t *testing.T) {
	l := scanLog(t, 40)
	for _, from := range []LSN{0, 1, 7, 20, 41, 42, 1000} {
		want := l.Records(from)
		var got []Record
		l.Scan(from, func(r Record) bool {
			got = append(got, r)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("Scan(%d) visited %d records, Records returned %d", from, len(got), len(want))
		}
		for i := range want {
			if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type {
				t.Fatalf("Scan(%d) record %d = LSN %d type %d, want LSN %d type %d",
					from, i, got[i].LSN, got[i].Type, want[i].LSN, want[i].Type)
			}
		}
	}
}

func TestScanStopsEarly(t *testing.T) {
	l := scanLog(t, 40)
	seen := 0
	l.Scan(1, func(Record) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("early-stopping scan visited %d records, want 5", seen)
	}
}

// TestScanZeroAlloc is the benchmark guard for the satellite requirement:
// replacing the Records full-slice copy with Scan on recovery hot paths is
// only a win if the iterator itself allocates nothing.
func TestScanZeroAlloc(t *testing.T) {
	l := scanLog(t, 256)
	var count int
	fn := func(r Record) bool {
		if r.Type == TypeUpdate {
			count++
		}
		return true
	}
	allocs := testing.AllocsPerRun(20, func() {
		count = 0
		l.Scan(1, fn)
	})
	if allocs != 0 {
		t.Errorf("Scan allocated %.1f times per full pass, want 0", allocs)
	}
	if count != 256 {
		t.Errorf("scan visited %d update records, want 256", count)
	}
}

func BenchmarkLogScan(b *testing.B) {
	l := scanLog(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l.Scan(1, func(Record) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkLogRecords is the baseline Scan replaces: a full-slice copy per
// pass.
func BenchmarkLogRecords(b *testing.B) {
	l := scanLog(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(l.Records(1)) == 0 {
			b.Fatal("empty scan")
		}
	}
}
