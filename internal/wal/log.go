package wal

import (
	"sync"

	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/debt"
	"smdb/internal/obs/waterfall"
	"smdb/internal/storage"
)

// Log is one node's write-ahead log: a stable prefix on the node's log
// device and a volatile tail in the node's cache. Appends are volatile;
// Force moves the tail (up to a chosen LSN) to the device in one physical
// force. A node crash (Crash) destroys exactly the volatile tail — the
// paper's section 2 alignment assumption guarantees a node's log lines never
// migrate, so nothing else is lost and nothing of it survives elsewhere.
//
// A Log is safe for concurrent use; in the simulated system only its owning
// node appends, but recovery on other nodes reads it.
type Log struct {
	node machine.NodeID
	dev  *storage.LogDevice

	mu sync.Mutex
	// down is set by Crash and cleared by Reopen: a crashed node's CPU has
	// stopped, so nothing may append to or force its log until restart
	// (late writes by in-flight goroutines of the dead node are dropped).
	down bool
	// recs[i] has LSN first+i; recs[:forced] are stable. first grows when
	// DiscardThrough reclaims log space.
	recs      []Record
	first     LSN // LSN of recs[0]; records below first have been discarded
	forced    int // count of stable records still retained
	lastCkpt  LSN // LSN of the most recent checkpoint record, 0 if none
	lastByTxn map[TxnID]LSN
	// firstByTxn records each transaction's earliest LSN, the input to the
	// truncation low-water mark.
	firstByTxn map[TxnID]LSN

	// gf is the epoch/group-commit force state (groupforce.go); disabled
	// unless EnableGroupForce was called.
	gf groupForce

	// tornBytes counts stable-tail bytes discarded because a crash tore a
	// force mid-write (repaired at NewLog/Reopen by truncating the device
	// at the last checksum-valid record).
	tornBytes int
	// ioRetries counts transient device errors retried inside Force.
	ioRetries int

	// obs receives append/force events; simNow supplies the owning node's
	// simulated clock. simNow must be lock-free: Force can run inside a
	// machine pre-transition callback (triggered Stable LBM), where the
	// machine lock is already held.
	obs    *obs.Observer
	simNow func() int64
	// wf receives per-transaction append markers for the latency waterfall
	// (appends cost no simulated time, so the markers carry ordering, not
	// duration). Same locking constraints as obs.
	wf *waterfall.Recorder
	// dbt receives append/force/crash/discard accounting for the live
	// recovery-debt tracker. Same locking constraints as obs; the tracker
	// only takes its own mutex and never calls back into the log.
	dbt *debt.Tracker
}

// NewLog creates a log for node n backed by stable device dev. If dev
// already holds records (a restarted node), they are decoded and become the
// stable prefix; a torn tail — a partial record left by a crash mid-force —
// is truncated at the last checksum-valid record rather than failing the
// node open.
func NewLog(n machine.NodeID, dev *storage.LogDevice) (*Log, error) {
	l := &Log{node: n, dev: dev, first: 1,
		lastByTxn: make(map[TxnID]LSN), firstByTxn: make(map[TxnID]LSN)}
	if dev.Size() > 0 {
		contents := dev.Contents()
		recs, torn := DecodeAll(contents)
		if torn > 0 {
			dev.Truncate(contents[:len(contents)-torn])
			l.tornBytes = torn
		}
		l.recs = recs
		l.forced = len(recs)
		for i := range recs {
			if recs[i].Type == TypeCheckpoint {
				l.lastCkpt = recs[i].LSN
			}
			l.lastByTxn[recs[i].Txn] = recs[i].LSN
			if _, ok := l.firstByTxn[recs[i].Txn]; !ok {
				l.firstByTxn[recs[i].Txn] = recs[i].LSN
			}
		}
	}
	return l, nil
}

// Node returns the owning node.
func (l *Log) Node() machine.NodeID { return l.node }

// SetObserver attaches the observability layer. simNow supplies the owning
// node's simulated clock for event timestamps and must be safe to call
// without any engine locks (machine.Clock qualifies).
func (l *Log) SetObserver(o *obs.Observer, simNow func() int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.obs = o
	l.simNow = simNow
}

// SetWaterfall attaches (or, with nil, detaches) the waterfall recorder.
// simNow has the same contract as in SetObserver; it is shared.
func (l *Log) SetWaterfall(w *waterfall.Recorder, simNow func() int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wf = w
	if simNow != nil {
		l.simNow = simNow
	}
}

// SetDebt attaches (or, with nil, detaches) the recovery-debt tracker.
// simNow has the same contract as in SetObserver; it is shared.
func (l *Log) SetDebt(d *debt.Tracker, simNow func() int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dbt = d
	if simNow != nil {
		l.simNow = simNow
	}
}

// EncodedSize returns the bytes r occupies on the stable device (header,
// fixed body, and both images) without marshalling it.
func EncodedSize(r *Record) int {
	return recHeaderLen + 52 + len(r.Before) + len(r.After)
}

// now returns the owning node's simulated clock (0 when unwired).
func (l *Log) now() int64 {
	if l.simNow == nil {
		return 0
	}
	return l.simNow()
}

// Device returns the stable log device backing this log (for force-count
// accounting in experiments).
func (l *Log) Device() *storage.LogDevice { return l.dev }

// Append adds r to the volatile tail, assigning and returning its LSN.
// PrevLSN is filled in automatically from the transaction's previous record
// in this log (zero for its first).
// Append returns LSN 0, appending nothing, while the node is down.
func (l *Log) Append(r Record) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return 0
	}
	r.LSN = l.first + LSN(len(l.recs))
	if r.Txn != 0 {
		r.PrevLSN = l.lastByTxn[r.Txn]
		l.lastByTxn[r.Txn] = r.LSN
		if _, ok := l.firstByTxn[r.Txn]; !ok {
			l.firstByTxn[r.Txn] = r.LSN
		}
	}
	if r.Type == TypeCheckpoint {
		l.lastCkpt = r.LSN
	}
	l.recs = append(l.recs, r)
	if l.obs != nil {
		l.obs.Instant(obs.KindWALAppend, int32(l.node), l.now(), int64(r.LSN), int64(r.Type))
	}
	if l.wf != nil && r.Txn != 0 {
		l.wf.NoteAppend(int64(r.Txn), l.now(), 0, int64(r.LSN))
	}
	l.dbt.NoteAppend(int32(l.node), int64(r.LSN), uint8(r.Type), uint64(r.Txn), EncodedSize(&r), l.now())
	return r.LSN
}

// NextLSN returns the LSN the next Append will assign.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first + LSN(len(l.recs))
}

// ForcedLSN returns the highest stable LSN (0 if nothing is stable).
func (l *Log) ForcedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.forced == 0 {
		return l.first - 1
	}
	return l.first + LSN(l.forced) - 1
}

// Force makes all records up to and including upto stable. It returns the
// number of records written and whether a physical force (device append)
// occurred, so the caller can charge simulated log-force latency and count
// force frequency. Forcing an already-stable LSN is a no-op.
func (l *Log) Force(upto LSN) (records int, forced bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forceLocked(upto)
}

// forceLocked is Force's body, shared with the group-commit path (which
// holds l.mu across its leader hand-off). Caller holds l.mu.
func (l *Log) forceLocked(upto LSN) (records int, forced bool) {
	if l.down {
		return 0, false
	}
	uptoIdx := int(upto-l.first) + 1
	if uptoIdx > len(l.recs) {
		uptoIdx = len(l.recs)
	}
	if uptoIdx <= l.forced {
		return 0, false
	}
	var buf []byte
	for i := l.forced; i < uptoIdx; i++ {
		buf = append(buf, Marshal(&l.recs[i])...)
	}
	// The device can fail transiently (injected I/O faults). Retry under
	// the default policy; no simulated backoff is charged here because
	// Force may run inside a machine pre-transition callback, where the
	// machine lock (and so AdvanceClock) is off-limits. On persistent
	// failure nothing is stable and `forced` does not advance, so the
	// commit path correctly reports the commit record unforced.
	var err error
	for attempt := 1; ; attempt++ {
		if _, err = l.dev.Append(buf); err == nil {
			break
		}
		if attempt >= storage.DefaultRetry.MaxAttempts {
			return 0, false
		}
		l.ioRetries++
		if l.obs != nil {
			l.obs.Instant(obs.KindIORetry, int32(l.node), l.now(), int64(attempt), 0)
		}
	}
	records = uptoIdx - l.forced
	l.forced = uptoIdx
	if l.obs != nil {
		l.obs.Instant(obs.KindWALForce, int32(l.node), l.now(),
			int64(records), int64(l.first)+int64(l.forced)-1)
	}
	l.dbt.NoteForce(int32(l.node), int64(l.first)+int64(l.forced)-1, records, l.now())
	return records, true
}

// ForceTorn simulates a crash in the middle of a physical force: of the
// records that Force(upto) would have written, only a `frac` fraction of the
// encoded bytes reach the device — every whole record that fits, plus a
// partial prefix of the next (the torn tail a restart must truncate). The
// log is marked down, as the forcing node dies at this instant; the caller
// crashes the node. It returns the whole records made stable and the torn
// bytes left on the device.
func (l *Log) ForceTorn(upto LSN, frac float64) (whole, torn int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return 0, 0
	}
	uptoIdx := int(upto-l.first) + 1
	if uptoIdx > len(l.recs) {
		uptoIdx = len(l.recs)
	}
	if uptoIdx <= l.forced {
		l.down = true
		l.wakeGroupLocked()
		return 0, 0
	}
	var bufs [][]byte
	total := 0
	for i := l.forced; i < uptoIdx; i++ {
		b := Marshal(&l.recs[i])
		bufs = append(bufs, b)
		total += len(b)
	}
	limit := int(frac * float64(total))
	if limit >= total {
		limit = total - 1 // a torn force never completes
	}
	if limit < 0 {
		limit = 0
	}
	var out []byte
	for _, b := range bufs {
		if len(out)+len(b) <= limit {
			out = append(out, b...)
			whole++
			continue
		}
		torn = limit - len(out)
		out = append(out, b[:torn]...)
		break
	}
	if len(out) > 0 {
		// A transient device fault can compound the torn force; retry so
		// the partial write lands, or fall back to "nothing reached the
		// device" (an even shorter tear) on persistent failure.
		landed := false
		for attempt := 1; attempt <= storage.DefaultRetry.MaxAttempts; attempt++ {
			if _, err := l.dev.Append(out); err == nil {
				landed = true
				break
			}
			l.ioRetries++
		}
		if !landed {
			whole, torn = 0, 0
		}
	}
	l.forced += whole
	l.tornBytes += torn
	l.down = true
	l.wakeGroupLocked()
	if l.obs != nil {
		l.obs.Instant(obs.KindWALForce, int32(l.node), l.now(),
			int64(whole), int64(l.first)+int64(l.forced)-1)
	}
	if whole > 0 {
		l.dbt.NoteForce(int32(l.node), int64(l.first)+int64(l.forced)-1, whole, l.now())
	}
	return whole, torn
}

// ForceAll forces the entire log.
func (l *Log) ForceAll() (records int, forced bool) {
	return l.Force(LSN(1 << 62))
}

// Crash destroys the volatile tail, as a node failure would, and returns the
// number of records lost. The log remains usable (for the node's restarted
// incarnation); its next LSN continues after the stable prefix.
func (l *Log) Crash() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = true
	l.wakeGroupLocked()
	lost := len(l.recs) - l.forced
	l.recs = l.recs[:l.forced]
	// Rebuild per-transaction chains and checkpoint marker from what
	// survived.
	l.lastByTxn = make(map[TxnID]LSN)
	l.firstByTxn = make(map[TxnID]LSN)
	l.lastCkpt = 0
	for i := range l.recs {
		if l.recs[i].Txn != 0 {
			l.lastByTxn[l.recs[i].Txn] = l.recs[i].LSN
			if _, ok := l.firstByTxn[l.recs[i].Txn]; !ok {
				l.firstByTxn[l.recs[i].Txn] = l.recs[i].LSN
			}
		}
		if l.recs[i].Type == TypeCheckpoint {
			l.lastCkpt = l.recs[i].LSN
		}
	}
	l.dbt.NoteCrash(int32(l.node), int64(l.first)+int64(l.forced)-1, lost)
	return lost
}

// Reopen re-enables the log for the node's restarted incarnation. If the
// crash tore a force mid-write, the partial record left on the device is
// truncated away here (the in-memory state never counted it as stable).
func (l *Log) Reopen() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = false
	if l.gf.downClosed {
		// Re-arm the group-force down signal for the restarted incarnation.
		l.gf.downCh = make(chan struct{})
		l.gf.downClosed = false
	}
	contents := l.dev.Contents()
	if _, torn := DecodeAll(contents); torn > 0 {
		l.dev.Truncate(contents[:len(contents)-torn])
	}
}

// TornBytes returns the cumulative stable-tail bytes discarded because a
// crash tore a force mid-write.
func (l *Log) TornBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tornBytes
}

// IORetries returns the number of transient device errors retried by forces.
func (l *Log) IORetries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ioRetries
}

// LastCheckpoint returns the LSN of the most recent checkpoint record (0 if
// none). Redo scans start just after it.
func (l *Log) LastCheckpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastCkpt
}

// Records returns a copy of the records with LSN >= from (use 1 for all).
// For a live node this is the whole log; after Crash it is the stable
// prefix only.
func (l *Log) Records(from LSN) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.first {
		from = l.first
	}
	idx := int(from - l.first)
	if idx >= len(l.recs) {
		return nil
	}
	out := make([]Record, len(l.recs)-idx)
	copy(out, l.recs[idx:])
	return out
}

// Scan calls fn for every record with LSN >= from (use 1 for all) in LSN
// order, stopping early if fn returns false. The whole scan runs under the
// log mutex with no copying, so it is the zero-allocation alternative to
// Records for recovery's hot read-only passes. Retaining a Record value is
// safe (records are never mutated in place), but fn must not call back into
// this Log — an Append/Force from inside fn would self-deadlock.
func (l *Log) Scan(from LSN, fn func(Record) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.first {
		from = l.first
	}
	for i := int(from - l.first); i < len(l.recs); i++ {
		if !fn(l.recs[i]) {
			return
		}
	}
}

// Get returns the record at the given LSN.
func (l *Log) Get(lsn LSN) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn < l.first || int(lsn-l.first) >= len(l.recs) {
		return Record{}, false
	}
	return l.recs[lsn-l.first], true
}

// LastLSNOf returns the LSN of the transaction's most recent record in this
// log (0 if none). Abort walks the PrevLSN chain from here.
func (l *Log) LastLSNOf(t TxnID) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastByTxn[t]
}

// Len returns the number of records (stable + volatile).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// FirstLSNOf returns the LSN of the transaction's earliest retained record
// (0 if none). It is the per-transaction component of the truncation
// low-water mark.
func (l *Log) FirstLSNOf(t TxnID) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstByTxn[t]
}

// FirstLSN returns the LSN of the oldest retained record.
func (l *Log) FirstLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// DiscardThrough reclaims log space by discarding every record with
// LSN <= upto, from memory and from the stable device (the archive is
// dropped). The caller — the checkpointer — guarantees upto is stable and
// below both the last checkpoint record and every active transaction's
// first LSN, so nothing recovery could ever need is lost. Out-of-range
// requests are clamped; discarding nothing is a no-op.
func (l *Log) DiscardThrough(upto LSN) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	maxStable := l.first + LSN(l.forced) - 1
	if upto > maxStable {
		upto = maxStable
	}
	drop := int(upto-l.first) + 1
	if drop <= 0 {
		return 0
	}
	l.recs = append([]Record(nil), l.recs[drop:]...)
	l.first = upto + 1
	l.forced -= drop
	// Re-encode the retained stable prefix onto the device.
	var buf []byte
	for i := 0; i < l.forced; i++ {
		buf = append(buf, Marshal(&l.recs[i])...)
	}
	l.dev.Truncate(buf)
	// Forget chains that now point entirely below the horizon.
	for t, last := range l.lastByTxn {
		if last < l.first {
			delete(l.lastByTxn, t)
			delete(l.firstByTxn, t)
		}
	}
	l.dbt.NoteDiscard(int32(l.node), int64(l.first))
	return drop
}

// StableRecords decodes and returns the records on the stable device,
// re-based to their true LSNs. It is what restart recovery can read for a
// crashed node. A torn tail is ignored (recovery reads only the
// checksum-valid prefix; the tail is truncated at Reopen).
func (l *Log) StableRecords() ([]Record, error) {
	recs, _ := DecodeAll(l.dev.Contents())
	l.mu.Lock()
	base := l.first - 1
	l.mu.Unlock()
	for i := range recs {
		recs[i].LSN += base
	}
	return recs, nil
}
