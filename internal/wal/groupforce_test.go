package wal

import (
	"sync"
	"testing"
	"time"

	"smdb/internal/storage"
)

func groupLog(t *testing.T, window time.Duration, yield func()) *Log {
	t.Helper()
	l, err := NewLog(0, storage.NewLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.EnableGroupForce(window, yield)
	return l
}

func appendCommit(t *testing.T, l *Log, seq uint64) LSN {
	t.Helper()
	lsn := l.Append(Record{Type: TypeCommit, Txn: MakeTxnID(0, seq)})
	if lsn == 0 {
		t.Fatal("append on a live log returned LSN 0")
	}
	return lsn
}

// Disabled group forces degrade to plain Force semantics.
func TestForceGroupDisabledIsPlainForce(t *testing.T) {
	l, err := NewLog(0, storage.NewLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	lsn := appendCommit(t, l, 1)
	res := l.ForceGroup(lsn)
	if !res.Led || res.Records != 1 || res.Joined || res.Coalesced {
		t.Fatalf("disabled ForceGroup = %+v, want Led with 1 record", res)
	}
	if l.ForcedLSN() != lsn {
		t.Fatalf("ForcedLSN = %d, want %d", l.ForcedLSN(), lsn)
	}
}

// Epoch window boundaries: sequential commits from one caller each open
// their own epoch (the previous epoch closed before the next record was
// appended), while an already-stable LSN coalesces without any force.
func TestForceGroupEpochBoundaries(t *testing.T) {
	l := groupLog(t, 0, nil) // zero window: the leader forces immediately
	a := appendCommit(t, l, 1)
	if res := l.ForceGroup(a); !res.Led || res.Records != 1 {
		t.Fatalf("first commit: %+v, want Led/1", res)
	}
	b := appendCommit(t, l, 2)
	if res := l.ForceGroup(b); !res.Led || res.Records != 1 {
		t.Fatalf("second commit (new epoch): %+v, want Led/1", res)
	}
	// Re-forcing a stable LSN is the coalesced no-op.
	if res := l.ForceGroup(a); !res.Coalesced {
		t.Fatalf("stable LSN: %+v, want Coalesced", res)
	}
	leads, joins, coalesced := l.GroupStats()
	if leads != 2 || joins != 0 || coalesced != 1 {
		t.Fatalf("GroupStats = %d/%d/%d, want 2/0/1", leads, joins, coalesced)
	}
}

// Concurrent committers inside one window coalesce into a single physical
// force: one leader, everyone else joined or coalesced, and the device sees
// exactly one force (records land in one epoch).
func TestForceGroupCoalescesConcurrentCommits(t *testing.T) {
	const n = 8
	l := groupLog(t, 20*time.Millisecond, nil)
	var wg sync.WaitGroup
	results := make([]GroupForceResult, n)
	lsns := make([]LSN, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			lsn := l.Append(Record{Type: TypeCommit, Txn: MakeTxnID(0, uint64(i+1))})
			mu.Unlock()
			lsns[i] = lsn
			results[i] = l.ForceGroup(lsn)
		}(i)
	}
	wg.Wait()
	var led, satisfied int
	for i, res := range results {
		if res.Led {
			led++
		}
		if res.Joined || res.Coalesced || res.Led {
			satisfied++
		}
		if l.ForcedLSN() < lsns[i] {
			t.Errorf("commit %d: LSN %d not stable after ForceGroup", i, lsns[i])
		}
	}
	if led < 1 {
		t.Fatalf("no epoch leader among %d commits", n)
	}
	if satisfied != n {
		t.Fatalf("%d of %d commits satisfied", satisfied, n)
	}
	// The whole batch must have used fewer physical forces than commits —
	// with a 20ms window and concurrent arrival, far fewer.
	leads, joins, coalesced := l.GroupStats()
	if leads >= int64(n) {
		t.Fatalf("leads = %d, want < %d (no coalescing happened)", leads, n)
	}
	if joins+coalesced == 0 {
		t.Fatalf("GroupStats = %d/%d/%d: nobody joined an epoch", leads, joins, coalesced)
	}
}

// A torn group force marks the log down; parked followers wake and report
// their LSN unforced (zero result) instead of hanging.
func TestForceGroupTornWakesFollowers(t *testing.T) {
	l := groupLog(t, time.Hour, nil) // leader would park forever
	lead := appendCommit(t, l, 1)

	leaderDone := make(chan GroupForceResult, 1)
	go func() { leaderDone <- l.ForceGroup(lead) }()
	// Wait until the leader owns the epoch, then add a follower.
	for {
		l.mu.Lock()
		isLeader := l.gf.leader
		l.mu.Unlock()
		if isLeader {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	fol := appendCommit(t, l, 2)
	folDone := make(chan GroupForceResult, 1)
	go func() { folDone <- l.ForceGroup(fol) }()

	// Crash mid-epoch via a torn force: the log goes down under the
	// leader's nose and everyone must drain.
	time.Sleep(time.Millisecond)
	l.ForceTorn(fol, 0.3)

	select {
	case res := <-folDone:
		if res.Joined || res.Coalesced || res.Led {
			t.Fatalf("follower on a torn log: %+v, want zero result", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower still parked after torn force")
	}
	select {
	case res := <-leaderDone:
		if res.Led && res.Records > 0 {
			t.Fatalf("leader forced %d records on a down log", res.Records)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader still parked after torn force")
	}
	if l.ForcedLSN() >= fol {
		t.Fatalf("follower LSN %d stable after torn force at 0.3", fol)
	}
}

// Crash mid-epoch (node failure, not a torn device write): followers wake,
// nothing new becomes stable, and the stable prefix survives Reopen.
func TestForceGroupCrashMidEpoch(t *testing.T) {
	l := groupLog(t, time.Hour, nil)
	stable := appendCommit(t, l, 1)
	if n, ok := l.Force(stable); !ok || n != 1 {
		t.Fatalf("seed force = %d/%v", n, ok)
	}
	lead := appendCommit(t, l, 2)
	leaderDone := make(chan GroupForceResult, 1)
	go func() { leaderDone <- l.ForceGroup(lead) }()
	for {
		l.mu.Lock()
		isLeader := l.gf.leader
		l.mu.Unlock()
		if isLeader {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	fol := appendCommit(t, l, 3)
	folDone := make(chan GroupForceResult, 1)
	go func() { folDone <- l.ForceGroup(fol) }()

	time.Sleep(time.Millisecond)
	lost := l.Crash()
	if lost != 2 {
		t.Fatalf("Crash lost %d records, want 2 (the volatile epoch)", lost)
	}
	for _, ch := range []chan GroupForceResult{folDone, leaderDone} {
		select {
		case res := <-ch:
			if res.Led && res.Records > 0 {
				t.Fatalf("force on a crashed log claimed %d records", res.Records)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter still parked after crash mid-epoch")
		}
	}
	l.Reopen()
	if l.ForcedLSN() != stable {
		t.Fatalf("after crash+reopen ForcedLSN = %d, want %d", l.ForcedLSN(), stable)
	}
}

// The yield hook replaces all parking: a leader's window is one hook call
// and followers poll through the hook instead of cond-waiting, so a
// scheduler-governed run never blocks outside its floor token.
func TestForceGroupYieldHook(t *testing.T) {
	var calls int64
	var mu sync.Mutex
	l := groupLog(t, time.Hour, func() { // window must be ignored
		mu.Lock()
		calls++
		mu.Unlock()
	})
	lsn := appendCommit(t, l, 1)
	done := make(chan GroupForceResult, 1)
	go func() { done <- l.ForceGroup(lsn) }()
	select {
	case res := <-done:
		if !res.Led || res.Records != 1 {
			t.Fatalf("yield-mode leader: %+v, want Led/1", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("yield-mode leader slept the host-time window")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("leader made %d yield calls, want exactly 1", calls)
	}
}
