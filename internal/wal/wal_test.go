package wal

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"smdb/internal/storage"
)

func TestTxnID(t *testing.T) {
	id := MakeTxnID(7, 123456)
	if id.Node() != 7 {
		t.Errorf("Node = %d, want 7", id.Node())
	}
	if id.Seq() != 123456 {
		t.Errorf("Seq = %d, want 123456", id.Seq())
	}
	if id.String() != "t7.123456" {
		t.Errorf("String = %q", id.String())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: TypeUpdate, Txn: MakeTxnID(1, 2), PrevLSN: 9, Page: 44, Slot: 3,
			Version: 77, Before: []byte("old"), After: []byte("newer")},
		{Type: TypeCommit, Txn: MakeTxnID(0, 1)},
		{Type: TypeLockAcquire, Txn: MakeTxnID(2, 5), Lock: 0xdeadbeef, Mode: 1},
		{Type: TypeNTABegin, Txn: MakeTxnID(3, 9), NTA: 42},
		{Type: TypeCheckpoint},
		{Type: TypeCLR, Txn: MakeTxnID(1, 2), Page: 44, Slot: 3, Version: 80, After: []byte("old")},
	}
	for _, want := range recs {
		buf := Marshal(&want)
		got, n, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", want.Type, err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d bytes", n, len(buf))
		}
		got.LSN = want.LSN // LSN is positional, not encoded
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	r := Record{Type: TypeUpdate, Txn: 1, After: []byte("x")}
	buf := Marshal(&r)
	// Flip a body byte: checksum must fail.
	buf[len(buf)-1] ^= 0xff
	if _, _, err := Unmarshal(buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt body: err = %v, want ErrCorrupt", err)
	}
	// Truncated header.
	if _, _, err := Unmarshal(buf[:3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short header: err = %v, want ErrCorrupt", err)
	}
	// Truncated body.
	buf = Marshal(&r)
	if _, _, err := Unmarshal(buf[:len(buf)-1]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short body: err = %v, want ErrCorrupt", err)
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(typ uint8, txn uint64, page int32, slot uint16, version, lock, nta uint64, mode uint8, before, after []byte) bool {
		if len(before) > 60000 {
			before = before[:60000]
		}
		if len(after) > 60000 {
			after = after[:60000]
		}
		want := Record{
			Type: RecordType(typ), Txn: TxnID(txn), Page: storage.PageID(page),
			Slot: slot, Version: version, Lock: lock, NTA: nta, Mode: mode,
		}
		if len(before) > 0 {
			want.Before = before
		}
		if len(after) > 0 {
			want.After = after
		}
		got, n, err := Unmarshal(Marshal(&want))
		if err != nil || n == 0 {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newLog(t *testing.T) *Log {
	t.Helper()
	l, err := NewLog(0, storage.NewLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLogAppendAssignsLSNs(t *testing.T) {
	l := newLog(t)
	tx := MakeTxnID(0, 1)
	l1 := l.Append(Record{Type: TypeUpdate, Txn: tx})
	l2 := l.Append(Record{Type: TypeUpdate, Txn: tx})
	if l1 != 1 || l2 != 2 {
		t.Errorf("LSNs = %d, %d; want 1, 2", l1, l2)
	}
	if l.NextLSN() != 3 {
		t.Errorf("NextLSN = %d, want 3", l.NextLSN())
	}
	r, ok := l.Get(2)
	if !ok || r.PrevLSN != 1 {
		t.Errorf("PrevLSN chain: got %+v", r)
	}
	if l.LastLSNOf(tx) != 2 {
		t.Errorf("LastLSNOf = %d, want 2", l.LastLSNOf(tx))
	}
}

func TestLogForceAndCrash(t *testing.T) {
	dev := storage.NewLogDevice()
	l, err := NewLog(3, dev)
	if err != nil {
		t.Fatal(err)
	}
	tx := MakeTxnID(3, 1)
	for i := 0; i < 5; i++ {
		l.Append(Record{Type: TypeUpdate, Txn: tx, Version: uint64(i)})
	}
	n, forced := l.Force(3)
	if n != 3 || !forced {
		t.Fatalf("Force(3) = %d, %v; want 3, true", n, forced)
	}
	if l.ForcedLSN() != 3 {
		t.Errorf("ForcedLSN = %d, want 3", l.ForcedLSN())
	}
	// Forcing an already-stable prefix is a no-op (no physical force).
	if n, forced := l.Force(2); n != 0 || forced {
		t.Errorf("redundant force = %d, %v; want 0, false", n, forced)
	}
	devForces := dev.Forces()
	if devForces != 1 {
		t.Errorf("device forces = %d, want 1", devForces)
	}
	// Crash: volatile tail (records 4, 5) is destroyed.
	if lost := l.Crash(); lost != 2 {
		t.Errorf("Crash lost %d records, want 2", lost)
	}
	if l.Len() != 3 {
		t.Errorf("Len after crash = %d, want 3", l.Len())
	}
	// The stable device still decodes to the surviving prefix.
	stable, err := l.StableRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(stable) != 3 {
		t.Errorf("stable records = %d, want 3", len(stable))
	}
	// While the node is down, appends and forces are dropped (the CPU has
	// stopped; late writes by its zombie goroutines must not reach the
	// stable device).
	if lsn := l.Append(Record{Type: TypeAbort, Txn: tx}); lsn != 0 {
		t.Errorf("append while down = LSN %d, want 0", lsn)
	}
	if n, forced := l.Force(10); n != 0 || forced {
		t.Errorf("force while down = %d, %v", n, forced)
	}
	// After Reopen, appends continue after the stable prefix.
	l.Reopen()
	if lsn := l.Append(Record{Type: TypeAbort, Txn: tx}); lsn != 4 {
		t.Errorf("post-restart LSN = %d, want 4", lsn)
	}
	// The PrevLSN chain must not point at destroyed records.
	r, _ := l.Get(4)
	if r.PrevLSN != 3 {
		t.Errorf("post-restart PrevLSN = %d, want 3 (last surviving record of txn)", r.PrevLSN)
	}
}

func TestLogRecoverFromDevice(t *testing.T) {
	dev := storage.NewLogDevice()
	l1, err := NewLog(1, dev)
	if err != nil {
		t.Fatal(err)
	}
	tx := MakeTxnID(1, 9)
	l1.Append(Record{Type: TypeUpdate, Txn: tx, After: []byte("a")})
	l1.Append(Record{Type: TypeCheckpoint})
	l1.Append(Record{Type: TypeUpdate, Txn: tx, After: []byte("b")})
	l1.ForceAll()

	// A fresh Log over the same device (restarted node) sees everything.
	l2, err := NewLog(1, dev)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 3 {
		t.Fatalf("recovered Len = %d, want 3", l2.Len())
	}
	if l2.LastCheckpoint() != 2 {
		t.Errorf("LastCheckpoint = %d, want 2", l2.LastCheckpoint())
	}
	if l2.ForcedLSN() != 3 {
		t.Errorf("ForcedLSN = %d, want 3", l2.ForcedLSN())
	}
	if l2.LastLSNOf(tx) != 3 {
		t.Errorf("LastLSNOf = %d, want 3", l2.LastLSNOf(tx))
	}
	recs := l2.Records(2)
	if len(recs) != 2 || recs[0].Type != TypeCheckpoint {
		t.Errorf("Records(2) = %+v", recs)
	}
}

func TestLogCheckpointTracking(t *testing.T) {
	l := newLog(t)
	if l.LastCheckpoint() != 0 {
		t.Errorf("initial LastCheckpoint = %d", l.LastCheckpoint())
	}
	l.Append(Record{Type: TypeUpdate, Txn: 1})
	ck := l.Append(Record{Type: TypeCheckpoint})
	l.Append(Record{Type: TypeUpdate, Txn: 1})
	if l.LastCheckpoint() != ck {
		t.Errorf("LastCheckpoint = %d, want %d", l.LastCheckpoint(), ck)
	}
	// An unforced checkpoint does not survive a crash.
	l.Crash()
	if l.LastCheckpoint() != 0 {
		t.Errorf("LastCheckpoint after crash = %d, want 0", l.LastCheckpoint())
	}
}

func TestLogRecordsCopy(t *testing.T) {
	l := newLog(t)
	l.Append(Record{Type: TypeUpdate, Txn: 1, Version: 5})
	recs := l.Records(1)
	recs[0].Version = 99
	r, _ := l.Get(1)
	if r.Version != 5 {
		t.Error("Records exposed internal storage")
	}
}

// TestQuickLogForcePrefix checks that for any interleaving of appends,
// forces, and crashes, the stable device always decodes to a prefix of the
// in-memory log, and the in-memory log never shrinks below the stable
// prefix.
func TestQuickLogForcePrefix(t *testing.T) {
	f := func(ops []uint8) bool {
		dev := storage.NewLogDevice()
		l, err := NewLog(0, dev)
		if err != nil {
			return false
		}
		ver := uint64(0)
		for _, op := range ops {
			switch op % 5 {
			case 0, 1:
				ver++
				l.Append(Record{Type: TypeUpdate, Txn: 1, Version: ver})
			case 2:
				l.Force(LSN(int(op))) // arbitrary target
			case 3:
				l.Crash()
				l.Reopen() // next incarnation
			case 4:
				l.DiscardThrough(LSN(int(op) / 2)) // arbitrary horizon
			}
			stable, err := l.StableRecords()
			if err != nil {
				return false
			}
			if l.FirstLSN()+LSN(len(stable))-1 != l.ForcedLSN() {
				return false
			}
			all := l.Records(1)
			if len(all) < len(stable) {
				return false
			}
			for i := range stable {
				if stable[i].Version != all[i].Version || stable[i].LSN != all[i].LSN {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDiscardThrough(t *testing.T) {
	dev := storage.NewLogDevice()
	l, err := NewLog(0, dev)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := MakeTxnID(0, 1), MakeTxnID(0, 2)
	l.Append(Record{Type: TypeUpdate, Txn: t1, Version: 1}) // LSN 1
	l.Append(Record{Type: TypeCommit, Txn: t1})             // LSN 2
	l.Append(Record{Type: TypeUpdate, Txn: t2, Version: 3}) // LSN 3 (active)
	ck := l.Append(Record{Type: TypeCheckpoint})            // LSN 4
	l.ForceAll()

	// The low-water mark protects t2's chain: discard through LSN 2.
	if n := l.DiscardThrough(2); n != 2 {
		t.Fatalf("discarded %d, want 2", n)
	}
	if l.FirstLSN() != 3 {
		t.Errorf("FirstLSN = %d, want 3", l.FirstLSN())
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	// LSNs keep their identity across truncation.
	if r, ok := l.Get(3); !ok || r.Txn != t2 {
		t.Errorf("Get(3) = %+v, %v", r, ok)
	}
	if _, ok := l.Get(2); ok {
		t.Error("discarded record still visible")
	}
	if l.LastCheckpoint() != ck {
		t.Errorf("LastCheckpoint = %d, want %d", l.LastCheckpoint(), ck)
	}
	// t1's chain is forgotten; t2's preserved.
	if l.LastLSNOf(t1) != 0 || l.FirstLSNOf(t1) != 0 {
		t.Error("t1's chain survived truncation")
	}
	if l.FirstLSNOf(t2) != 3 {
		t.Errorf("FirstLSNOf(t2) = %d", l.FirstLSNOf(t2))
	}
	// The stable device was rewritten and re-bases correctly.
	stable, err := l.StableRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(stable) != 2 || stable[0].LSN != 3 || stable[1].LSN != 4 {
		t.Errorf("stable after truncation = %+v", stable)
	}
	// Appends continue with monotone LSNs; ForcedLSN accounts the base.
	if lsn := l.Append(Record{Type: TypeUpdate, Txn: t2, Version: 9}); lsn != 5 {
		t.Errorf("post-truncation LSN = %d, want 5", lsn)
	}
	if l.ForcedLSN() != 4 {
		t.Errorf("ForcedLSN = %d, want 4", l.ForcedLSN())
	}
	// Crash after truncation: the volatile record dies, prefix intact.
	if lost := l.Crash(); lost != 1 {
		t.Errorf("lost %d, want 1", lost)
	}
	if l.FirstLSN() != 3 || l.Len() != 2 {
		t.Errorf("post-crash state: first=%d len=%d", l.FirstLSN(), l.Len())
	}
}

func TestDiscardThroughClamps(t *testing.T) {
	l := newLog(t)
	l.Append(Record{Type: TypeUpdate, Txn: 1})
	l.Append(Record{Type: TypeUpdate, Txn: 1})
	l.Force(1) // only LSN 1 is stable
	// Cannot discard past the stable horizon.
	if n := l.DiscardThrough(99); n != 1 {
		t.Errorf("discarded %d, want 1 (clamped to stable)", n)
	}
	// Discarding below the horizon is a no-op.
	if n := l.DiscardThrough(0); n != 0 {
		t.Errorf("no-op discard removed %d", n)
	}
}
