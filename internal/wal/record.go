// Package wal implements write-ahead logging for the shared-memory database:
// per-node logs with a volatile in-cache tail and a stable (disk or NVRAM)
// prefix, the log-record vocabulary needed by the paper's recovery protocols
// (physical undo/redo images, commit/abort, compensation records, the
// logical lock-acquisition records of section 4.2.2 — including read locks —
// and nested-top-level-action brackets for early-committed structural
// changes), and a compact binary encoding with per-record checksums.
//
// Each node maintains its own log (paper section 2). All appends go to the
// node's volatile tail; a node crash destroys exactly the unforced suffix.
// Because the paper assumes each node's log lines store no other sharable
// information, a log never migrates: survivors keep their entire logs, and a
// crashed node keeps only the stable prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"smdb/internal/machine"
	"smdb/internal/storage"
)

// LSN is a per-node log sequence number. LSN 1 is the first record in a
// node's log; 0 means "none".
type LSN uint64

// TxnID identifies a transaction. The owning node is encoded in the top 16
// bits, so the node is recoverable from any log record or lock entry — the
// property section 4.2.2 relies on ("if the transaction ID also encodes the
// node ID, this information is already available").
type TxnID uint64

// MakeTxnID builds a TxnID for a transaction with per-node sequence seq
// running on node n.
func MakeTxnID(n machine.NodeID, seq uint64) TxnID {
	return TxnID(uint64(n)<<48 | seq&(1<<48-1))
}

// Node returns the node on which the transaction runs.
func (t TxnID) Node() machine.NodeID { return machine.NodeID(uint64(t) >> 48) }

// Seq returns the per-node sequence number of the transaction.
func (t TxnID) Seq() uint64 { return uint64(t) & (1<<48 - 1) }

// String formats a TxnID as node.seq.
func (t TxnID) String() string { return fmt.Sprintf("t%d.%d", t.Node(), t.Seq()) }

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	// TypeUpdate is an in-place record update carrying both the before
	// image (undo) and after image (redo).
	TypeUpdate RecordType = iota + 1
	// TypeCommit marks transaction commit; it must be stable before the
	// commit is acknowledged.
	TypeCommit
	// TypeAbort marks a completed transaction abort.
	TypeAbort
	// TypeCLR is a compensation record written while undoing an update
	// (the restored before image is its redo).
	TypeCLR
	// TypeLockAcquire is the logical record written before acquiring a
	// lock (section 4.2.2). Under IFA both read and write locks are
	// logged so a survivor can re-establish lock state destroyed with a
	// crashed node's cache.
	TypeLockAcquire
	// TypeLockRelease is the logical record written before releasing a
	// lock.
	TypeLockRelease
	// TypeNTABegin opens a nested top-level action for a structural
	// change (B-tree split, space allocation).
	TypeNTABegin
	// TypeNTAEnd commits a nested top-level action; under IFA the NTA's
	// records are forced at this point (early commit of structural
	// changes).
	TypeNTAEnd
	// TypeCheckpoint marks a node checkpoint; redo scans start at the
	// last checkpoint.
	TypeCheckpoint
)

var typeNames = map[RecordType]string{
	TypeUpdate:      "update",
	TypeCommit:      "commit",
	TypeAbort:       "abort",
	TypeCLR:         "clr",
	TypeLockAcquire: "lock-acquire",
	TypeLockRelease: "lock-release",
	TypeNTABegin:    "nta-begin",
	TypeNTAEnd:      "nta-end",
	TypeCheckpoint:  "checkpoint",
}

func (t RecordType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// Record is one log record. Only the fields relevant to a record's Type are
// meaningful; the rest stay zero and encode compactly.
type Record struct {
	Type RecordType
	// LSN is assigned by Log.Append and recomputed on decode (records are
	// dense: the i-th record of a node's log has LSN i+1).
	LSN LSN
	// Txn is the transaction (or, for NTA records, the enclosing
	// transaction) that wrote the record.
	Txn TxnID
	// PrevLSN chains a transaction's records within its node's log.
	PrevLSN LSN
	// Page and Slot locate the updated record for physical records
	// (update, CLR).
	Page storage.PageID
	Slot uint16
	// Version is the global update version used for idempotent redo: an
	// update is applied if and only if its Version exceeds the page
	// record's current version.
	Version uint64
	// Before and After are the undo and redo images.
	Before, After []byte
	// Lock and Mode describe a logical lock record.
	Lock uint64
	Mode uint8
	// NTA identifies a nested top-level action.
	NTA uint64
}

// Errors from decoding.
var (
	ErrCorrupt = errors.New("wal: corrupt log record")
)

const recHeaderLen = 4 + 4 // total length + crc32

// Marshal encodes r (excluding its LSN, which is positional).
func Marshal(r *Record) []byte {
	body := make([]byte, 0, 64+len(r.Before)+len(r.After))
	body = append(body, byte(r.Type), r.Mode)
	body = binary.LittleEndian.AppendUint64(body, uint64(r.Txn))
	body = binary.LittleEndian.AppendUint64(body, uint64(r.PrevLSN))
	body = binary.LittleEndian.AppendUint32(body, uint32(r.Page))
	body = binary.LittleEndian.AppendUint16(body, r.Slot)
	body = binary.LittleEndian.AppendUint64(body, r.Version)
	body = binary.LittleEndian.AppendUint64(body, r.Lock)
	body = binary.LittleEndian.AppendUint64(body, r.NTA)
	body = binary.LittleEndian.AppendUint16(body, uint16(len(r.Before)))
	body = append(body, r.Before...)
	body = binary.LittleEndian.AppendUint16(body, uint16(len(r.After)))
	body = append(body, r.After...)

	out := make([]byte, recHeaderLen, recHeaderLen+len(body))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// Unmarshal decodes one record from the front of buf, returning the record
// and the number of bytes consumed.
func Unmarshal(buf []byte) (Record, int, error) {
	if len(buf) < recHeaderLen {
		return Record{}, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[0:]))
	sum := binary.LittleEndian.Uint32(buf[4:])
	if len(buf) < recHeaderLen+n {
		return Record{}, 0, fmt.Errorf("%w: truncated body (want %d, have %d)", ErrCorrupt, n, len(buf)-recHeaderLen)
	}
	body := buf[recHeaderLen : recHeaderLen+n]
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var r Record
	if len(body) < 2+8+8+4+2+8+8+8+2 {
		return Record{}, 0, fmt.Errorf("%w: body too short (%d)", ErrCorrupt, len(body))
	}
	r.Type = RecordType(body[0])
	r.Mode = body[1]
	p := 2
	r.Txn = TxnID(binary.LittleEndian.Uint64(body[p:]))
	p += 8
	r.PrevLSN = LSN(binary.LittleEndian.Uint64(body[p:]))
	p += 8
	r.Page = storage.PageID(binary.LittleEndian.Uint32(body[p:]))
	p += 4
	r.Slot = binary.LittleEndian.Uint16(body[p:])
	p += 2
	r.Version = binary.LittleEndian.Uint64(body[p:])
	p += 8
	r.Lock = binary.LittleEndian.Uint64(body[p:])
	p += 8
	r.NTA = binary.LittleEndian.Uint64(body[p:])
	p += 8
	nb := int(binary.LittleEndian.Uint16(body[p:]))
	p += 2
	if p+nb+2 > len(body) {
		return Record{}, 0, fmt.Errorf("%w: before image overruns body", ErrCorrupt)
	}
	if nb > 0 {
		r.Before = append([]byte(nil), body[p:p+nb]...)
	}
	p += nb
	na := int(binary.LittleEndian.Uint16(body[p:]))
	p += 2
	if p+na > len(body) {
		return Record{}, 0, fmt.Errorf("%w: after image overruns body", ErrCorrupt)
	}
	if na > 0 {
		r.After = append([]byte(nil), body[p:p+na]...)
	}
	return r, recHeaderLen + n, nil
}

// DecodeAll decodes a concatenation of records (e.g. a stable log device's
// contents), assigning dense LSNs starting at 1. A log device's tail can be
// torn: a crash mid-force leaves a partial (or checksum-corrupt) final
// record. Decoding therefore stops at the last checksum-valid record and
// reports the number of trailing bytes it discarded, instead of failing the
// whole log open — the paper's force discipline guarantees nothing past the
// last valid record was ever relied upon.
func DecodeAll(buf []byte) (recs []Record, tornBytes int) {
	for len(buf) > 0 {
		r, n, err := Unmarshal(buf)
		if err != nil {
			return recs, len(buf)
		}
		r.LSN = LSN(len(recs) + 1)
		recs = append(recs, r)
		buf = buf[n:]
	}
	return recs, 0
}
