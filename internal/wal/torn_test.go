package wal

import (
	"bytes"
	"testing"

	"smdb/internal/storage"
)

// tornDevice builds a log device holding n whole records followed by a
// partial (torn) final record, returning the device and the torn byte count.
func tornDevice(t *testing.T, n int) (*storage.LogDevice, int) {
	t.Helper()
	dev := storage.NewLogDevice()
	var buf []byte
	for i := 0; i < n; i++ {
		r := Record{Type: TypeUpdate, Txn: MakeTxnID(0, uint64(i+1)),
			Page: 1, Slot: uint16(i), Version: uint64(i + 1),
			Before: []byte{byte(i)}, After: []byte{byte(i + 1)}}
		buf = append(buf, Marshal(&r)...)
	}
	last := Marshal(&Record{Type: TypeCommit, Txn: MakeTxnID(0, uint64(n+1))})
	torn := len(last) / 2
	buf = append(buf, last[:torn]...)
	if _, err := dev.Append(buf); err != nil {
		t.Fatal(err)
	}
	return dev, torn
}

// The satellite bugfix: DecodeAll must stop at the last checksum-valid
// record and report the torn tail, not fail the whole log open.
func TestDecodeAllTornTail(t *testing.T) {
	dev, torn := tornDevice(t, 3)
	recs, got := DecodeAll(dev.Contents())
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	if got != torn {
		t.Errorf("tornBytes = %d, want %d", got, torn)
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) {
			t.Errorf("record %d: LSN = %d, want %d", i, r.LSN, i+1)
		}
	}
	// A checksum-corrupt (not merely truncated) tail is also cut off.
	c := dev.Contents()
	c[len(c)-torn-3] ^= 0xff // flip a bit inside the last whole record's body
	recs, got = DecodeAll(c)
	if len(recs) != 2 || got == 0 {
		t.Errorf("corrupt tail: decoded %d records (torn %d), want 2 with torn > 0", len(recs), got)
	}
}

func TestNewLogRepairsTornTail(t *testing.T) {
	dev, torn := tornDevice(t, 2)
	sizeBefore := dev.Size()
	l, err := NewLog(0, dev)
	if err != nil {
		t.Fatal(err)
	}
	if l.TornBytes() != torn {
		t.Errorf("TornBytes = %d, want %d", l.TornBytes(), torn)
	}
	if got := l.ForcedLSN(); got != 2 {
		t.Errorf("ForcedLSN = %d, want 2", got)
	}
	if dev.Size() != sizeBefore-int64(torn) {
		t.Errorf("device not repaired: size %d, want %d", dev.Size(), sizeBefore-int64(torn))
	}
	// The repaired device must round-trip cleanly.
	if recs, torn := DecodeAll(dev.Contents()); len(recs) != 2 || torn != 0 {
		t.Errorf("after repair: %d records, %d torn bytes", len(recs), torn)
	}
}

func TestForceTornLeavesRecoverableTail(t *testing.T) {
	dev := storage.NewLogDevice()
	l, err := NewLog(1, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Append(Record{Type: TypeUpdate, Txn: MakeTxnID(1, 1), Page: 2,
			Slot: uint16(i), Version: uint64(i + 1), After: []byte{byte(i)}})
	}
	whole, torn := l.ForceTorn(4, 0.6)
	if whole >= 4 {
		t.Fatalf("torn force completed: %d whole records", whole)
	}
	if torn == 0 {
		t.Fatal("torn force left no partial bytes (want a torn tail)")
	}
	if got := l.ForcedLSN(); got != LSN(whole) {
		t.Errorf("ForcedLSN = %d, want %d", got, whole)
	}
	// The forcing node died: the log is down, appends are dropped.
	if lsn := l.Append(Record{Type: TypeCommit, Txn: MakeTxnID(1, 1)}); lsn != 0 {
		t.Errorf("append on downed log returned LSN %d", lsn)
	}
	// Recovery reads only the checksum-valid prefix.
	recs, err := l.StableRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != whole {
		t.Errorf("StableRecords = %d records, want %d", len(recs), whole)
	}
	// Reopen truncates the torn tail from the device.
	l.Reopen()
	if recs, torn := DecodeAll(dev.Contents()); len(recs) != whole || torn != 0 {
		t.Errorf("after Reopen: %d records, %d torn bytes; want %d, 0", len(recs), torn, whole)
	}
	// And a restarted incarnation opens the same device cleanly.
	l2, err := NewLog(1, dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Len(); got != whole {
		t.Errorf("restarted log has %d records, want %d", got, whole)
	}
}

func TestForceRetriesTransientErrors(t *testing.T) {
	dev := storage.NewLogDevice()
	l, err := NewLog(0, dev)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Type: TypeUpdate, Txn: MakeTxnID(0, 1), After: []byte{1}})
	fails := 2
	dev.SetFault(func(op string) error {
		if fails > 0 {
			fails--
			return storage.ErrTransient
		}
		return nil
	})
	if n, forced := l.Force(1); n != 1 || !forced {
		t.Fatalf("Force under transient faults = (%d, %v), want (1, true)", n, forced)
	}
	if l.IORetries() != 2 {
		t.Errorf("IORetries = %d, want 2", l.IORetries())
	}
	dev.SetFault(nil)
	if recs, torn := DecodeAll(dev.Contents()); len(recs) != 1 || torn != 0 {
		t.Errorf("device holds %d records, %d torn bytes", len(recs), torn)
	}
}

func TestForcePersistentFailureDoesNotAdvance(t *testing.T) {
	dev := storage.NewLogDevice()
	l, err := NewLog(0, dev)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Type: TypeCommit, Txn: MakeTxnID(0, 1)})
	dev.SetFault(func(string) error { return storage.ErrTransient })
	if n, forced := l.Force(1); n != 0 || forced {
		t.Fatalf("Force under permanent faults = (%d, %v), want (0, false)", n, forced)
	}
	if got := l.ForcedLSN(); got != 0 {
		t.Errorf("ForcedLSN advanced to %d on failed force", got)
	}
	if !bytes.Equal(dev.Contents(), nil) {
		t.Errorf("failed force wrote %d bytes", dev.Size())
	}
}
