package wal

import (
	"testing"

	"smdb/internal/storage"
)

func benchRecord() Record {
	return Record{
		Type: TypeUpdate, Txn: MakeTxnID(3, 42), Page: 7, Slot: 11,
		Version: 12345, Before: make([]byte, 32), After: make([]byte, 32),
	}
}

func BenchmarkMarshal(b *testing.B) {
	r := benchRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := Marshal(&r); len(buf) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	r := benchRecord()
	buf := Marshal(&r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	l, err := NewLog(0, storage.NewLogDevice())
	if err != nil {
		b.Fatal(err)
	}
	r := benchRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(r)
	}
}

func BenchmarkAppendForce(b *testing.B) {
	l, err := NewLog(0, storage.NewLogDevice())
	if err != nil {
		b.Fatal(err)
	}
	r := benchRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn := l.Append(r)
		l.Force(lsn)
	}
}
