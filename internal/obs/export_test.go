package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenObserver builds a small deterministic trace: a few instants on two
// node tracks, then a recovery span enclosing three phase spans. Wall clocks
// are pinned so the export is byte-stable.
func goldenObserver() *Observer {
	o := NewWithCapacity(64)
	w := int64(1)
	rec := func(e Event) {
		e.Wall = w
		w++
		o.Record(e)
	}
	rec(Event{Kind: KindTxnBegin, Node: 0, Sim: 100, A: 1})
	rec(Event{Kind: KindWALAppend, Node: 0, Sim: 220, A: 7, B: 2})
	rec(Event{Kind: KindMigrate, Node: 1, Sim: 340, A: 12})
	// A dependency edge echoed by the deps tracker: txn 1 (home node 0) now
	// has uncommitted data on line 12 in node 1's cache (B = to<<32|line).
	rec(Event{Kind: KindDepEdge, Node: 0, Sim: 360, A: 1, B: 1<<32 | 12})
	rec(Event{Kind: KindCrash, Node: 1, Sim: 500, A: 4, B: 2})
	rec(Event{Kind: KindPhase, Phase: PhaseDirectoryRepair, Node: SystemNode, Sim: 1000, Dur: 400})
	rec(Event{Kind: KindPhase, Phase: PhaseLockRebuild, Node: SystemNode, Sim: 1400, Dur: 300})
	rec(Event{Kind: KindPhase, Phase: PhaseRedoApply, Node: SystemNode, Sim: 1700, Dur: 800})
	rec(Event{Kind: KindRecovery, Node: SystemNode, Sim: 1000, Dur: 1500})
	o.ObserveLineLock(90)
	o.ObserveCommit(1200)
	o.ObserveLogForce(800000)
	return o
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenObserver().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", buf.String())
	}
	checkPhaseNesting(t, buf.Bytes())

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			buf.String(), string(want))
	}
}

// checkPhaseNesting asserts that every phase span lies inside a recovery
// span of the same trace process — the containment Perfetto renders as
// nesting.
func checkPhaseNesting(t *testing.T, traceJSON []byte) {
	t.Helper()
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int32   `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceJSON, &tr); err != nil {
		t.Fatal(err)
	}
	type span struct{ ts, end float64 }
	recoveries := map[int32][]span{}
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && e.Name == "recovery" {
			recoveries[e.PID] = append(recoveries[e.PID], span{e.Ts, e.Ts + e.Dur})
		}
	}
	phases := 0
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" || e.Name == "recovery" {
			continue
		}
		phases++
		nested := false
		for _, r := range recoveries[e.PID] {
			if r.ts <= e.Ts && e.Ts+e.Dur <= r.end {
				nested = true
				break
			}
		}
		if !nested {
			t.Errorf("phase span %q at ts=%v dur=%v (pid %d) not nested in any recovery span",
				e.Name, e.Ts, e.Dur, e.PID)
		}
	}
	if phases == 0 {
		t.Error("trace contains no phase spans")
	}
}

func TestPrometheusExport(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenObserver().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`smdb_events_total{kind="crash"} 1`,
		`smdb_events_total{kind="phase"} 3`,
		`smdb_events_total{kind="recovery"} 1`,
		`smdb_events_total{kind="deadlock"} 0`,
		"# TYPE smdb_line_lock_latency_ns histogram",
		`smdb_line_lock_latency_ns_bucket{le="+Inf"} 1`,
		"smdb_txn_commit_latency_ns_sum 1200",
		"smdb_log_force_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsTable(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenObserver().MetricsTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wal-append", "crash", "line_lock_latency", "txn_commit_latency", "800.0µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
}
