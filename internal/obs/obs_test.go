package obs

import (
	"strings"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 0; i < histBuckets; i++ {
		if got := bucketOf(bucketUpper(i)); got > i {
			t.Errorf("bucketUpper(%d) = %d lands in bucket %d", i, bucketUpper(i), got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("test_ns")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot: %+v", s)
	}
	if m := s.Mean(); m != 500 {
		t.Errorf("mean = %d, want 500", m)
	}
	// Log2 buckets are accurate to a factor-of-two band; interpolation
	// should land each quantile within its bucket's bounds.
	for _, c := range []struct {
		q      float64
		lo, hi int64
	}{{0.5, 256, 1000}, {0.95, 512, 1000}, {0.99, 512, 1000}} {
		got := s.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("q%.2f = %d, want in [%d, %d]", c.q, got, c.lo, c.hi)
		}
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 1000 {
		t.Errorf("extreme quantiles: q0=%d q1=%d", s.Quantile(0), s.Quantile(1))
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram("edge_ns")
	if s := h.Snapshot(); s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min != 0 {
		t.Errorf("empty histogram not zero-valued: %+v", s)
	}
	// Every quantile of an empty histogram is zero, including the extremes.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Snapshot().Quantile(q); got != 0 {
			t.Errorf("empty q%.2f = %d", q, got)
		}
	}
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("clamped observations: %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram("single_ns")
	h.Observe(777)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 777 || s.Max != 777 || s.Sum != 777 {
		t.Fatalf("snapshot: %+v", s)
	}
	// With one sample, every quantile collapses onto it: interpolation
	// inside the bucket must clamp to the observed [Min, Max].
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := s.Quantile(q); got != 777 {
			t.Errorf("q%.2f = %d, want 777", q, got)
		}
	}
	if s.Mean() != 777 {
		t.Errorf("mean = %d", s.Mean())
	}
}

func TestHistogramMergeDisjointRanges(t *testing.T) {
	// lo's samples live in the single-digit buckets, hi's five orders of
	// magnitude up — no bucket overlaps. The merge must preserve both modes
	// exactly: counts add, the min comes from lo, the max from hi, and the
	// extreme quantiles land in the respective modes.
	lo := NewHistogram("merge_ns")
	for v := int64(2); v <= 8; v++ {
		lo.Observe(v)
	}
	hi := NewHistogram("ignored")
	for v := int64(1 << 20); v < 1<<20+7; v++ {
		hi.Observe(v)
	}
	lo.Merge(hi.Snapshot())
	s := lo.Snapshot()
	if s.Count != 14 || s.Min != 2 || s.Max != 1<<20+6 {
		t.Fatalf("merged snapshot: %+v", s)
	}
	var want int64
	for v := int64(2); v <= 8; v++ {
		want += v
	}
	for v := int64(1 << 20); v < 1<<20+7; v++ {
		want += v
	}
	if s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
	if q := s.Quantile(0.05); q < 2 || q > 8 {
		t.Errorf("q0.05 = %d, want in the low mode [2, 8]", q)
	}
	if q := s.Quantile(0.95); q < 1<<20 || q > 1<<20+6 {
		t.Errorf("q0.95 = %d, want in the high mode", q)
	}
	// Merging an empty snapshot is a no-op.
	before := s
	lo.Merge(NewHistogram("empty").Snapshot())
	if after := lo.Snapshot(); after != before {
		t.Errorf("empty merge changed state: %+v -> %+v", before, after)
	}
	// Merging into an empty histogram adopts the snapshot wholesale,
	// including Min (the empty side's zero Min must not win).
	fresh := NewHistogram("fresh_ns")
	fresh.Merge(s)
	if got := fresh.Snapshot(); got.Min != 2 || got.Count != 14 || got.Max != s.Max {
		t.Errorf("merge into empty: %+v", got)
	}
}

func TestRingWrap(t *testing.T) {
	o := NewWithCapacity(8)
	for i := 0; i < 20; i++ {
		o.Record(Event{Kind: KindMigrate, Node: 3, Sim: int64(i), Wall: 1})
	}
	evs := o.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	// The 8 newest survive, in order.
	for i, e := range evs {
		if want := int64(12 + i); e.Sim != want {
			t.Errorf("event %d: sim %d, want %d", i, e.Sim, want)
		}
	}
	// The counter survives the wrap.
	if c := o.Count(KindMigrate); c != 20 {
		t.Errorf("count = %d, want 20", c)
	}
}

func TestTracksAreIndependent(t *testing.T) {
	o := NewWithCapacity(4)
	o.Instant(KindWALAppend, 0, 10, 1, 0)
	o.Instant(KindWALAppend, 1, 20, 2, 0)
	o.Span(KindPhase, PhaseUndo, SystemNode, 30, 5)
	evs := o.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	spans := o.PhaseSpans()
	if len(spans) != 1 || spans[0].Phase != PhaseUndo || spans[0].Start != 30 || spans[0].Dur != 5 {
		t.Errorf("phase spans: %+v", spans)
	}
}

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	// Every hook must be callable on nil without panicking.
	o.Record(Event{Kind: KindCrash})
	o.Instant(KindMigrate, 0, 1, 2, 3)
	o.Span(KindPhase, PhaseFreeze, SystemNode, 0, 10)
	o.ObserveLineLock(5)
	o.ObserveCommit(5)
	o.ObserveLogForce(5)
	o.BeginProcess("x")
	if o.Enabled() {
		t.Error("nil observer reports enabled")
	}
	if o.Events() != nil || o.PhaseSpans() != nil || o.Histograms() != nil {
		t.Error("nil observer returned data")
	}
	if o.Count(KindCrash) != 0 {
		t.Error("nil observer counted")
	}
	if o.LineLockHist() != nil || o.CommitHist() != nil || o.LogForceHist() != nil {
		t.Error("nil observer returned histograms")
	}
	var b strings.Builder
	if err := o.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Errorf("nil trace export: %q", b.String())
	}
	if err := o.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := o.MetricsTable(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFormatNS(t *testing.T) {
	cases := map[int64]string{
		7:          "7ns",
		1500:       "1.5µs",
		2500000:    "2.50ms",
		3000000000: "3.00s",
	}
	for ns, want := range cases {
		if got := FormatNS(ns); got != want {
			t.Errorf("FormatNS(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestFormatPhases(t *testing.T) {
	if got := FormatPhases(nil); got != "-" {
		t.Errorf("empty: %q", got)
	}
	spans := []PhaseSpan{
		{Phase: PhaseFreeze, Start: 0, Dur: 0},
		{Phase: PhaseRedoScan, Start: 0, Dur: 1500},
		{Phase: PhaseRedoApply, Start: 1500, Dur: 2500000},
	}
	got := FormatPhases(spans)
	if got != "redo-scan=1.5µs redo-apply=2.50ms" {
		t.Errorf("FormatPhases = %q", got)
	}
	if got := FormatPhases([]PhaseSpan{{Phase: PhaseSettle}}); got != "all=0ns" {
		t.Errorf("all-zero: %q", got)
	}
}

func TestBeginProcessGroups(t *testing.T) {
	o := New()
	o.Instant(KindTxnBegin, 0, 1, 1, 0)
	o.BeginProcess("second run")
	o.Instant(KindTxnBegin, 0, 2, 2, 0)
	evs := o.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].PID != 0 || evs[1].PID != 1 {
		t.Errorf("pids: %d, %d (want 0, 1)", evs[0].PID, evs[1].PID)
	}
}
