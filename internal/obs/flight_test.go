package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubGraph is a GraphWriter standing in for the deps tracker (obs cannot
// import its own subpackage; the real wiring is exercised in obscli).
type stubGraph struct{}

func (stubGraph) WriteDOT(w io.Writer) error {
	_, err := io.WriteString(w, "digraph recovery_deps {}\n")
	return err
}
func (stubGraph) WriteGraphJSON(w io.Writer) error {
	_, err := io.WriteString(w, "{\"txns\":null}\n")
	return err
}

// stubAudit is an AuditSource standing in for the online auditor (same
// import constraint as stubGraph).
type stubAudit struct{}

func (stubAudit) WriteAuditTxn(w io.Writer, id string) error {
	_, err := fmt.Fprintf(w, "{\"enabled\":true,\"id\":%q}\n", id)
	return err
}
func (stubAudit) WriteAuditViolations(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true,\"total\":0,\"violations\":[]}\n")
	return err
}
func (stubAudit) WriteTimeSeries(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true,\"windows\":[]}\n")
	return err
}

// stubProf is a ProfSource standing in for the contention profiler (same
// import constraint as stubGraph).
type stubProf struct{}

func (stubProf) WriteProfStripes(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true,\"stripes\":128}\n")
	return err
}
func (stubProf) WriteProfWorkers(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true,\"phases\":[]}\n")
	return err
}
func (stubProf) WriteProfJSON(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true,\"stripes\":{},\"workers\":[]}\n")
	return err
}
func (stubProf) WriteProfProm(w io.Writer) error {
	_, err := io.WriteString(w, "# TYPE smdb_prof_stripe_acquires_total counter\nsmdb_prof_stripe_acquires_total 0\n")
	return err
}

func TestFlightRecorderDump(t *testing.T) {
	o := NewWithCapacity(64)
	o.Instant(KindMigrate, 0, 100, 12, 1)
	o.Instant(KindCrash, 1, 200, 4, 2)
	o.Instant(KindRecovery, SystemNode, 300, 0, 0)

	r := NewFlightRecorder(t.TempDir(), 16)
	r.SetSources(o, stubGraph{}, nil, nil, nil, nil, func(w io.Writer) error {
		_, err := io.WriteString(w, "stats delta: {}\n")
		return err
	})
	dir, err := r.Dump("ifa violation #1")
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(dir); !strings.HasPrefix(base, "001-ifa-violation--1-") {
		t.Errorf("dump dir name = %q (reason not sanitized?)", base)
	}
	for _, f := range []string{"MANIFEST.txt", "events.json", "events.txt", "deps.dot", "deps.json", "stats.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("dump missing %s: %v", f, err)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason string `json:"reason"`
		Nodes  map[string][]struct {
			Kind string `json:"kind"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("events.json invalid: %v", err)
	}
	if doc.Reason != "ifa violation #1" {
		t.Errorf("reason = %q", doc.Reason)
	}
	if len(doc.Nodes["node0"]) != 1 || doc.Nodes["node0"][0].Kind != "migrate" {
		t.Errorf("node0 events = %+v", doc.Nodes["node0"])
	}
	if len(doc.Nodes["system"]) != 1 || doc.Nodes["system"][0].Kind != "recovery" {
		t.Errorf("system events = %+v", doc.Nodes["system"])
	}

	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reason: ifa violation #1", "deps.dot", "stats.txt", "migrate"} {
		if !strings.Contains(string(manifest), want) {
			t.Errorf("MANIFEST missing %q:\n%s", want, manifest)
		}
	}
	if got := r.Dumps(); len(got) != 1 || got[0] != dir {
		t.Errorf("Dumps() = %v", got)
	}
}

func TestFlightRecorderLastNTail(t *testing.T) {
	o := NewWithCapacity(64)
	for i := 0; i < 40; i++ {
		o.Instant(KindMigrate, 0, int64(i), int64(i), 0)
	}
	r := NewFlightRecorder(t.TempDir(), 8)
	r.SetSources(o, nil, nil, nil, nil, nil, nil)
	dir, err := r.Dump("crash")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Nodes map[string][]struct {
			A int64 `json:"a"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	evs := doc.Nodes["node0"]
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want the last 8", len(evs))
	}
	if evs[0].A != 32 || evs[7].A != 39 {
		t.Errorf("tail = %d..%d, want 32..39", evs[0].A, evs[7].A)
	}
	// No graph, no stats: those files must be absent and unlisted.
	if _, err := os.Stat(filepath.Join(dir, "deps.dot")); !os.IsNotExist(err) {
		t.Error("deps.dot written without a graph source")
	}
}

func TestFlightRecorderBudget(t *testing.T) {
	o := NewWithCapacity(8)
	root := t.TempDir()
	r := NewFlightRecorder(root, 4)
	r.SetSources(o, nil, nil, nil, nil, nil, nil)
	for i := 0; i < maxDumps+3; i++ {
		if _, err := r.Dump(fmt.Sprintf("crash-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != maxDumps {
		t.Errorf("wrote %d dumps, budget is %d", len(entries), maxDumps)
	}
	if got := len(r.Dumps()); got != maxDumps {
		t.Errorf("Dumps() = %d entries, want %d", got, maxDumps)
	}
}

func TestFlightRecorderAuditFiles(t *testing.T) {
	o := NewWithCapacity(8)
	o.Instant(KindCrash, 0, 100, 4, 2)
	r := NewFlightRecorder(t.TempDir(), 8)
	r.SetSources(o, nil, stubAudit{}, nil, nil, nil, nil)
	dir, err := r.Dump("crash")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"violations.json", "audit_trails.json", "timeseries.json"} {
		raw, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("dump missing %s: %v", f, err)
			continue
		}
		if !strings.Contains(string(raw), `"enabled":true`) {
			t.Errorf("%s = %q", f, raw)
		}
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "violations.json audit_trails.json timeseries.json") {
		t.Errorf("MANIFEST does not list the audit files:\n%s", manifest)
	}
}

func TestFlightRecorderProfFile(t *testing.T) {
	o := NewWithCapacity(8)
	o.Instant(KindCrash, 0, 100, 4, 2)
	r := NewFlightRecorder(t.TempDir(), 8)
	r.SetSources(o, nil, nil, stubProf{}, nil, nil, nil)
	dir, err := r.Dump("crash")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "prof.json"))
	if err != nil {
		t.Fatalf("dump missing prof.json: %v", err)
	}
	if !strings.Contains(string(raw), `"enabled":true`) {
		t.Errorf("prof.json = %q", raw)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "prof.json") {
		t.Errorf("MANIFEST does not list prof.json:\n%s", manifest)
	}
}

func TestFlightRecorderZeroBudget(t *testing.T) {
	root := t.TempDir()
	r := NewFlightRecorder(root, 4)
	r.SetSources(NewWithCapacity(8), nil, nil, nil, nil, nil, nil)
	r.SetBudget(0, 0, false)
	dir, err := r.Dump("crash")
	if err != nil || dir != "" {
		t.Errorf("Dump with zero budget = %q, %v", dir, err)
	}
	r.SetBudget(0, 0, true) // rotate mode with a zero budget is also "none"
	if dir, err := r.Dump("crash"); err != nil || dir != "" {
		t.Errorf("rotate Dump with zero budget = %q, %v", dir, err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("zero budget left %d dirs behind", len(entries))
	}
	if r.Dumps() != nil {
		t.Errorf("Dumps() = %v, want none", r.Dumps())
	}
}

func TestFlightRecorderByteBudgetSmallerThanManifest(t *testing.T) {
	root := t.TempDir()
	r := NewFlightRecorder(root, 4)
	r.SetSources(NewWithCapacity(8), nil, nil, nil, nil, nil, nil)
	// Even a lone MANIFEST.txt exceeds 10 bytes: the dump must be written,
	// measured, and removed without leaving a partial directory.
	r.SetBudget(64, 10, false)
	dir, err := r.Dump("crash")
	if err != nil || dir != "" {
		t.Errorf("over-budget Dump = %q, %v", dir, err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("over-budget dump left %d dirs behind", len(entries))
	}
}

func TestFlightRecorderRotation(t *testing.T) {
	root := t.TempDir()
	r := NewFlightRecorder(root, 4)
	r.SetSources(NewWithCapacity(8), nil, nil, nil, nil, nil, nil)
	r.SetBudget(3, 0, true)
	// Fill the directory to its dump budget, then keep dumping: rotation
	// must evict the oldest instead of skipping the newest.
	var dirs []string
	for i := 0; i < 5; i++ {
		dir, err := r.Dump(fmt.Sprintf("crash-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if dir == "" {
			t.Fatalf("rotating Dump %d skipped", i)
		}
		dirs = append(dirs, dir)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("rotation kept %d dirs, budget is 3", len(entries))
	}
	for _, old := range dirs[:2] {
		if _, err := os.Stat(old); !os.IsNotExist(err) {
			t.Errorf("oldest dump %s not evicted", old)
		}
	}
	got := r.Dumps()
	if len(got) != 3 || got[0] != dirs[2] || got[2] != dirs[4] {
		t.Errorf("Dumps() = %v, want the newest three", got)
	}
	// The next MANIFEST records how many were rotated away.
	manifest, err := os.ReadFile(filepath.Join(got[2], "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "rotated-dumps: 2") {
		t.Errorf("MANIFEST rotated count:\n%s", manifest)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.SetSources(nil, nil, nil, nil, nil, nil, nil)
	dir, err := r.Dump("crash")
	if err != nil || dir != "" {
		t.Errorf("nil recorder Dump = %q, %v", dir, err)
	}
	if r.Dumps() != nil {
		t.Error("nil recorder has dumps")
	}
}
