package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubGraph is a GraphWriter standing in for the deps tracker (obs cannot
// import its own subpackage; the real wiring is exercised in obscli).
type stubGraph struct{}

func (stubGraph) WriteDOT(w io.Writer) error {
	_, err := io.WriteString(w, "digraph recovery_deps {}\n")
	return err
}
func (stubGraph) WriteGraphJSON(w io.Writer) error {
	_, err := io.WriteString(w, "{\"txns\":null}\n")
	return err
}

func TestFlightRecorderDump(t *testing.T) {
	o := NewWithCapacity(64)
	o.Instant(KindMigrate, 0, 100, 12, 1)
	o.Instant(KindCrash, 1, 200, 4, 2)
	o.Instant(KindRecovery, SystemNode, 300, 0, 0)

	r := NewFlightRecorder(t.TempDir(), 16)
	r.SetSources(o, stubGraph{}, func(w io.Writer) error {
		_, err := io.WriteString(w, "stats delta: {}\n")
		return err
	})
	dir, err := r.Dump("ifa violation #1")
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(dir); !strings.HasPrefix(base, "001-ifa-violation--1-") {
		t.Errorf("dump dir name = %q (reason not sanitized?)", base)
	}
	for _, f := range []string{"MANIFEST.txt", "events.json", "events.txt", "deps.dot", "deps.json", "stats.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("dump missing %s: %v", f, err)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason string `json:"reason"`
		Nodes  map[string][]struct {
			Kind string `json:"kind"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("events.json invalid: %v", err)
	}
	if doc.Reason != "ifa violation #1" {
		t.Errorf("reason = %q", doc.Reason)
	}
	if len(doc.Nodes["node0"]) != 1 || doc.Nodes["node0"][0].Kind != "migrate" {
		t.Errorf("node0 events = %+v", doc.Nodes["node0"])
	}
	if len(doc.Nodes["system"]) != 1 || doc.Nodes["system"][0].Kind != "recovery" {
		t.Errorf("system events = %+v", doc.Nodes["system"])
	}

	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reason: ifa violation #1", "deps.dot", "stats.txt", "migrate"} {
		if !strings.Contains(string(manifest), want) {
			t.Errorf("MANIFEST missing %q:\n%s", want, manifest)
		}
	}
	if got := r.Dumps(); len(got) != 1 || got[0] != dir {
		t.Errorf("Dumps() = %v", got)
	}
}

func TestFlightRecorderLastNTail(t *testing.T) {
	o := NewWithCapacity(64)
	for i := 0; i < 40; i++ {
		o.Instant(KindMigrate, 0, int64(i), int64(i), 0)
	}
	r := NewFlightRecorder(t.TempDir(), 8)
	r.SetSources(o, nil, nil)
	dir, err := r.Dump("crash")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Nodes map[string][]struct {
			A int64 `json:"a"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	evs := doc.Nodes["node0"]
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want the last 8", len(evs))
	}
	if evs[0].A != 32 || evs[7].A != 39 {
		t.Errorf("tail = %d..%d, want 32..39", evs[0].A, evs[7].A)
	}
	// No graph, no stats: those files must be absent and unlisted.
	if _, err := os.Stat(filepath.Join(dir, "deps.dot")); !os.IsNotExist(err) {
		t.Error("deps.dot written without a graph source")
	}
}

func TestFlightRecorderBudget(t *testing.T) {
	o := NewWithCapacity(8)
	root := t.TempDir()
	r := NewFlightRecorder(root, 4)
	r.SetSources(o, nil, nil)
	for i := 0; i < maxDumps+3; i++ {
		if _, err := r.Dump(fmt.Sprintf("crash-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != maxDumps {
		t.Errorf("wrote %d dumps, budget is %d", len(entries), maxDumps)
	}
	if got := len(r.Dumps()); got != maxDumps {
		t.Errorf("Dumps() = %d entries, want %d", got, maxDumps)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.SetSources(nil, nil, nil)
	dir, err := r.Dump("crash")
	if err != nil || dir != "" {
		t.Errorf("nil recorder Dump = %q, %v", dir, err)
	}
	if r.Dumps() != nil {
		t.Error("nil recorder has dumps")
	}
}
