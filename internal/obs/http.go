package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The live introspection server: every cmd grows an -http flag serving the
// observability surface while the engine runs — Prometheus metrics, a
// Chrome-trace snapshot, the recovery-dependency graph, slow-transaction
// waterfalls, live recovery progress, a health probe, and net/http/pprof.
// Handlers snapshot under the observer's own locks, so scraping is safe
// mid-run.

// endpoint is one registered introspection path plus the display decoration
// the index shows for it ("" = the pattern itself).
type endpoint struct {
	pattern string
	display string
}

// indexMux wraps the mux so the root index is generated from the actual
// registrations rather than hand-maintained (which drifted every time an
// endpoint was added).
type indexMux struct {
	mux       *http.ServeMux
	endpoints []endpoint
}

// handle registers the handler and records the pattern for the index.
// display overrides how the index renders the pattern ("/deps[?format=json]"
// for "/deps"); prefix patterns ending in "/" are rendered with a {value}
// placeholder automatically.
func (m *indexMux) handle(pattern, display string, h http.HandlerFunc) {
	m.mux.HandleFunc(pattern, h)
	if display == "" {
		display = pattern
	}
	m.endpoints = append(m.endpoints, endpoint{pattern: pattern, display: display})
}

// Endpoints returns every introspection path the HTTP handler registers, in
// sorted order — the source of truth the index handler and its test share.
func Endpoints() []string {
	m := newHTTPMux(nil, nil, nil, nil, nil, nil)
	out := make([]string, 0, len(m.endpoints))
	for _, e := range m.endpoints {
		out = append(out, e.pattern)
	}
	sort.Strings(out)
	return out
}

// NewHTTPHandler builds the introspection mux:
//
//	/healthz            liveness ("ok events=N uptime=...")
//	/metrics            Prometheus text exposition (waterfall counters join
//	                    when a recorder is attached)
//	/trace              Chrome trace-event JSON snapshot (Perfetto-loadable)
//	/deps               dependency graph, DOT (default) or ?format=json
//	/audit/txn/{id}     one transaction's audit trail ("t0.3" or the packed
//	                    integer id); bare /audit/txn lists all trails
//	/audit/violations   the online IFA auditor's typed violations
//	/timeseries         windowed metrics ring + anomaly watchdog findings
//	/prof/stripes       contention profiler: per-stripe lock counters
//	/prof/workers       contention profiler: per-phase worker attribution
//	/slow               tail-sampled slow-transaction waterfalls (?max=N)
//	/slow/trace         the sampled waterfalls as Chrome trace-event JSON
//	/slow/{txnid}       one sampled transaction's waterfall ("t0.3" or the
//	                    packed integer id)
//	/recovery/progress  live restart-recovery progress (rates, ETA)
//	/recovery/debt      live recovery-debt accounting (log debt per node,
//	                    MTTR history, estimated replay time)
//	/debug/pprof/       the standard Go profiler endpoints
//
// o may be nil (endpoints degrade to empty documents), graph may be nil
// (/deps explains that no tracker is attached), and aud/prf/wf/dbt may be
// nil (their endpoints report {"enabled": false}).
func NewHTTPHandler(o *Observer, graph GraphWriter, aud AuditSource, prf ProfSource, wf WaterfallSource, dbt DebtSource) http.Handler {
	return newHTTPMux(o, graph, aud, prf, wf, dbt).mux
}

func newHTTPMux(o *Observer, graph GraphWriter, aud AuditSource, prf ProfSource, wf WaterfallSource, dbt DebtSource) *indexMux {
	start := time.Now()
	m := &indexMux{mux: http.NewServeMux()}
	m.handle("/healthz", "", func(w http.ResponseWriter, _ *http.Request) {
		var events int64
		for k := Kind(0); k < numKinds; k++ {
			events += o.Count(k)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok events=%d uptime=%s\n", events, time.Since(start).Round(time.Millisecond))
	})
	m.handle("/metrics", "", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if prf != nil {
			if err := prf.WriteProfProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		if wf != nil {
			if err := wf.WriteWaterfallProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		if dbt != nil {
			if err := dbt.WriteDebtProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	m.handle("/trace", "", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	m.handle("/deps", "/deps[?format=json]", func(w http.ResponseWriter, r *http.Request) {
		if graph == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "digraph recovery_deps {\n  // no dependency tracker attached\n}")
			return
		}
		var err error
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			err = graph.WriteGraphJSON(w)
		} else {
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			err = graph.WriteDOT(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	auditJSON := func(w http.ResponseWriter, write func(io.Writer) error) {
		w.Header().Set("Content-Type", "application/json")
		if aud == nil {
			fmt.Fprintln(w, `{"enabled": false}`)
			return
		}
		if err := write(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	auditTxn := func(w http.ResponseWriter, id string) {
		auditJSON(w, func(out io.Writer) error { return aud.WriteAuditTxn(out, id) })
	}
	m.handle("/audit/txn", "", func(w http.ResponseWriter, _ *http.Request) {
		auditTxn(w, "")
	})
	m.handle("/audit/txn/", "/audit/txn/{id}", func(w http.ResponseWriter, r *http.Request) {
		auditTxn(w, strings.TrimPrefix(r.URL.Path, "/audit/txn/"))
	})
	m.handle("/audit/violations", "", func(w http.ResponseWriter, _ *http.Request) {
		auditJSON(w, func(out io.Writer) error { return aud.WriteAuditViolations(out) })
	})
	m.handle("/timeseries", "", func(w http.ResponseWriter, _ *http.Request) {
		auditJSON(w, func(out io.Writer) error { return aud.WriteTimeSeries(out) })
	})
	profJSON := func(w http.ResponseWriter, write func(io.Writer) error) {
		w.Header().Set("Content-Type", "application/json")
		if prf == nil {
			fmt.Fprintln(w, `{"enabled": false}`)
			return
		}
		if err := write(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	m.handle("/prof/stripes", "", func(w http.ResponseWriter, _ *http.Request) {
		profJSON(w, func(out io.Writer) error { return prf.WriteProfStripes(out) })
	})
	m.handle("/prof/workers", "", func(w http.ResponseWriter, _ *http.Request) {
		profJSON(w, func(out io.Writer) error { return prf.WriteProfWorkers(out) })
	})
	wfJSON := func(w http.ResponseWriter, ct string, write func(io.Writer) error) {
		w.Header().Set("Content-Type", ct)
		if wf == nil {
			fmt.Fprintln(w, `{"enabled": false}`)
			return
		}
		if err := write(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	m.handle("/slow", "/slow[?max=N]", func(w http.ResponseWriter, r *http.Request) {
		max, _ := strconv.Atoi(r.URL.Query().Get("max"))
		wfJSON(w, "application/json", func(out io.Writer) error { return wf.WriteSlowJSON(out, max) })
	})
	m.handle("/slow/trace", "", func(w http.ResponseWriter, _ *http.Request) {
		wfJSON(w, "application/json", func(out io.Writer) error { return wf.WriteWaterfallChrome(out) })
	})
	m.handle("/slow/", "/slow/{txnid}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := parseTxnID(strings.TrimPrefix(r.URL.Path, "/slow/"))
		if !ok {
			http.Error(w, "bad txn id (want t<node>.<seq> or the packed integer)", http.StatusBadRequest)
			return
		}
		wfJSON(w, "application/json", func(out io.Writer) error { return wf.WriteTxnJSON(out, id) })
	})
	m.handle("/recovery/progress", "", func(w http.ResponseWriter, _ *http.Request) {
		wfJSON(w, "application/json", func(out io.Writer) error { return wf.WriteRecoveryProgress(out) })
	})
	m.handle("/recovery/debt", "", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if dbt == nil {
			fmt.Fprintln(w, `{"enabled": false}`)
			return
		}
		if err := dbt.WriteDebtJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	m.handle("/debug/pprof/", "", pprof.Index)
	m.handle("/debug/pprof/cmdline", "", pprof.Cmdline)
	m.handle("/debug/pprof/profile", "", pprof.Profile)
	m.handle("/debug/pprof/symbol", "", pprof.Symbol)
	m.handle("/debug/pprof/trace", "", pprof.Trace)
	// The index is generated from the registrations above: every handle()
	// call appears, rendered by its display form, in sorted order.
	index := make([]string, 0, len(m.endpoints))
	for _, e := range m.endpoints {
		index = append(index, e.display)
	}
	sort.Strings(index)
	m.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "smdb introspection endpoints:")
		for _, e := range index {
			fmt.Fprintf(w, "  %s\n", e)
		}
	})
	return m
}

// parseTxnID accepts "t<node>.<seq>" (the engine's display form) or the
// packed integer transaction id.
func parseTxnID(s string) (int64, bool) {
	if rest, ok := strings.CutPrefix(s, "t"); ok {
		nd, seq, found := strings.Cut(rest, ".")
		if !found {
			return 0, false
		}
		n, err1 := strconv.ParseInt(nd, 10, 16)
		q, err2 := strconv.ParseInt(seq, 10, 64)
		if err1 != nil || err2 != nil || n < 0 || q < 0 || q >= 1<<48 {
			return 0, false
		}
		return n<<48 | q, true
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// HTTPServer is a running introspection server.
type HTTPServer struct {
	Addr string // bound address (resolves ":0" requests)
	srv  *http.Server
	lis  net.Listener
	done atomic.Bool
}

// ServeHTTP starts the introspection server on addr (e.g. "127.0.0.1:8321"
// or "127.0.0.1:0") in a background goroutine and returns once the listener
// is bound. Close with Shutdown.
func ServeHTTP(addr string, o *Observer, graph GraphWriter, aud AuditSource, prf ProfSource, wf WaterfallSource, dbt DebtSource) (*HTTPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{
		Addr: lis.Addr().String(),
		srv:  &http.Server{Handler: NewHTTPHandler(o, graph, aud, prf, wf, dbt)},
		lis:  lis,
	}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Shutdown stops the server, closing the listener. Safe to call twice.
func (s *HTTPServer) Shutdown() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	_ = s.srv.Close()
}
