package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"
)

// The live introspection server: every cmd grows an -http flag serving the
// observability surface while the engine runs — Prometheus metrics, a
// Chrome-trace snapshot, the recovery-dependency graph, a health probe, and
// net/http/pprof. Handlers snapshot under the observer's own locks, so
// scraping is safe mid-run.

// NewHTTPHandler builds the introspection mux:
//
//	/healthz            liveness ("ok events=N uptime=...")
//	/metrics            Prometheus text exposition
//	/trace              Chrome trace-event JSON snapshot (Perfetto-loadable)
//	/deps               dependency graph, DOT (default) or ?format=json
//	/audit/txn/{id}     one transaction's audit trail ("t0.3" or the packed
//	                    integer id); bare /audit/txn lists all trails
//	/audit/violations   the online IFA auditor's typed violations
//	/timeseries         windowed metrics ring + anomaly watchdog findings
//	/prof/stripes       contention profiler: per-stripe lock counters
//	/prof/workers       contention profiler: per-phase worker attribution
//	/debug/pprof/       the standard Go profiler endpoints
//
// o may be nil (endpoints degrade to empty documents), graph may be nil
// (/deps explains that no tracker is attached), aud may be nil (the audit
// endpoints report {"enabled": false}), and prf may be nil (the /prof
// endpoints likewise report {"enabled": false}).
func NewHTTPHandler(o *Observer, graph GraphWriter, aud AuditSource, prf ProfSource) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var events int64
		for k := Kind(0); k < numKinds; k++ {
			events += o.Count(k)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok events=%d uptime=%s\n", events, time.Since(start).Round(time.Millisecond))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if prf != nil {
			if err := prf.WriteProfProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/deps", func(w http.ResponseWriter, r *http.Request) {
		if graph == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "digraph recovery_deps {\n  // no dependency tracker attached\n}")
			return
		}
		var err error
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			err = graph.WriteGraphJSON(w)
		} else {
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			err = graph.WriteDOT(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	auditJSON := func(w http.ResponseWriter, write func(io.Writer) error) {
		w.Header().Set("Content-Type", "application/json")
		if aud == nil {
			fmt.Fprintln(w, `{"enabled": false}`)
			return
		}
		if err := write(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	auditTxn := func(w http.ResponseWriter, id string) {
		auditJSON(w, func(out io.Writer) error { return aud.WriteAuditTxn(out, id) })
	}
	mux.HandleFunc("/audit/txn", func(w http.ResponseWriter, _ *http.Request) {
		auditTxn(w, "")
	})
	mux.HandleFunc("/audit/txn/", func(w http.ResponseWriter, r *http.Request) {
		auditTxn(w, strings.TrimPrefix(r.URL.Path, "/audit/txn/"))
	})
	mux.HandleFunc("/audit/violations", func(w http.ResponseWriter, _ *http.Request) {
		auditJSON(w, func(out io.Writer) error { return aud.WriteAuditViolations(out) })
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		auditJSON(w, func(out io.Writer) error { return aud.WriteTimeSeries(out) })
	})
	profJSON := func(w http.ResponseWriter, write func(io.Writer) error) {
		w.Header().Set("Content-Type", "application/json")
		if prf == nil {
			fmt.Fprintln(w, `{"enabled": false}`)
			return
		}
		if err := write(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/prof/stripes", func(w http.ResponseWriter, _ *http.Request) {
		profJSON(w, func(out io.Writer) error { return prf.WriteProfStripes(out) })
	})
	mux.HandleFunc("/prof/workers", func(w http.ResponseWriter, _ *http.Request) {
		profJSON(w, func(out io.Writer) error { return prf.WriteProfWorkers(out) })
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "smdb introspection endpoints:\n  /healthz\n  /metrics\n  /trace\n  /deps[?format=json]\n  /audit/txn[/{id}]\n  /audit/violations\n  /timeseries\n  /prof/stripes\n  /prof/workers\n  /debug/pprof/")
	})
	return mux
}

// HTTPServer is a running introspection server.
type HTTPServer struct {
	Addr string // bound address (resolves ":0" requests)
	srv  *http.Server
	lis  net.Listener
	done atomic.Bool
}

// ServeHTTP starts the introspection server on addr (e.g. "127.0.0.1:8321"
// or "127.0.0.1:0") in a background goroutine and returns once the listener
// is bound. Close with Shutdown.
func ServeHTTP(addr string, o *Observer, graph GraphWriter, aud AuditSource, prf ProfSource) (*HTTPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{
		Addr: lis.Addr().String(),
		srv:  &http.Server{Handler: NewHTTPHandler(o, graph, aud, prf)},
		lis:  lis,
	}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Shutdown stops the server, closing the listener. Safe to call twice.
func (s *HTTPServer) Shutdown() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	_ = s.srv.Close()
}
