package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// The crash flight recorder: on any node crash or IFA-check failure the
// engine dumps a post-mortem snapshot — the last-N trace events per node,
// the recovery-dependency graph, and engine stats deltas — into a fresh
// timestamped directory, so a failed chaos run leaves enough evidence to
// reconstruct the failure without re-running it.

// GraphWriter renders a dependency graph (deps.Tracker satisfies it; the
// interface lives here so obs does not import its own subpackage).
type GraphWriter interface {
	WriteDOT(io.Writer) error
	WriteGraphJSON(io.Writer) error
}

// DefaultFlightEvents is the per-node event tail retained in a dump.
const DefaultFlightEvents = 256

// maxDumps bounds the dumps one recorder writes, so a crash loop cannot
// fill the disk; later dumps are counted but skipped.
const maxDumps = 64

// FlightRecorder writes crash dumps. A nil recorder is inert (all methods
// are nil-receiver safe), so the engine hooks cost one pointer test when
// disabled.
type FlightRecorder struct {
	mu      sync.Mutex
	dir     string
	lastN   int
	seq     int
	skipped int
	obs     *Observer
	graph   GraphWriter
	stats   func(io.Writer) error
	dumps   []string
}

// NewFlightRecorder creates a recorder dumping into subdirectories of dir
// (created on first dump). lastN bounds the per-node event tail; <= 0 uses
// DefaultFlightEvents.
func NewFlightRecorder(dir string, lastN int) *FlightRecorder {
	if lastN <= 0 {
		lastN = DefaultFlightEvents
	}
	return &FlightRecorder{dir: dir, lastN: lastN}
}

// SetSources wires the recorder's data sources: the observer whose event
// rings are tailed, an optional dependency-graph renderer, and an optional
// stats writer (called once per dump; implementations typically print
// deltas since the previous dump). Any may be nil.
func (r *FlightRecorder) SetSources(o *Observer, g GraphWriter, stats func(io.Writer) error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.obs = o
	r.graph = g
	r.stats = stats
	r.mu.Unlock()
}

// Dumps lists the directories written so far.
func (r *FlightRecorder) Dumps() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.dumps...)
}

// sanitize keeps reason strings path-safe.
func sanitize(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "dump"
	}
	return b.String()
}

// flightEvent is the JSON rendering of one trace event.
type flightEvent struct {
	Sim   int64  `json:"sim"`
	Wall  int64  `json:"wall"`
	Kind  string `json:"kind"`
	Phase string `json:"phase,omitempty"`
	Dur   int64  `json:"dur,omitempty"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// Dump writes one post-mortem directory named <seq>-<reason>-<stamp> and
// returns its path. Dumps beyond the recorder's budget are skipped (counted
// in MANIFEST of later dumps); a nil recorder returns ("", nil).
func (r *FlightRecorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq >= maxDumps {
		r.skipped++
		return "", nil
	}
	r.seq++
	name := fmt.Sprintf("%03d-%s-%s", r.seq, sanitize(reason),
		time.Now().UTC().Format("20060102T150405.000000000"))
	dir := filepath.Join(r.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	// Group the observer's retained events by node and keep each tail.
	byNode := map[int32][]Event{}
	var nodes []int32
	for _, e := range r.obs.Events() {
		if _, ok := byNode[e.Node]; !ok {
			nodes = append(nodes, e.Node)
		}
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j] < nodes[i] {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
		}
	}
	for n, evs := range byNode {
		if len(evs) > r.lastN {
			byNode[n] = evs[len(evs)-r.lastN:]
		}
	}

	if err := r.writeFile(dir, "MANIFEST.txt", func(w io.Writer) error {
		fmt.Fprintf(w, "reason: %s\nwall: %s\nevents-per-node: %d\nskipped-dumps: %d\n",
			reason, time.Now().UTC().Format(time.RFC3339Nano), r.lastN, r.skipped)
		fmt.Fprintf(w, "files: MANIFEST.txt events.json events.txt")
		if r.graph != nil {
			fmt.Fprintf(w, " deps.dot deps.json")
		}
		if r.stats != nil {
			fmt.Fprintf(w, " stats.txt")
		}
		fmt.Fprintln(w)
		if r.obs != nil {
			fmt.Fprintln(w)
			return r.obs.MetricsTable(w)
		}
		return nil
	}); err != nil {
		return "", err
	}

	if err := r.writeFile(dir, "events.json", func(w io.Writer) error {
		doc := struct {
			Reason string                  `json:"reason"`
			Nodes  map[string][]flightEvent `json:"nodes"`
		}{Reason: reason, Nodes: map[string][]flightEvent{}}
		for n, evs := range byNode {
			key := fmt.Sprintf("node%d", n)
			if n == SystemNode {
				key = "system"
			}
			out := make([]flightEvent, 0, len(evs))
			for _, e := range evs {
				fe := flightEvent{Sim: e.Sim, Wall: e.Wall, Kind: e.Kind.String(), Dur: e.Dur, A: e.A, B: e.B}
				if e.Phase != PhaseNone {
					fe.Phase = e.Phase.String()
				}
				out = append(out, fe)
			}
			doc.Nodes[key] = out
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}); err != nil {
		return "", err
	}

	if err := r.writeFile(dir, "events.txt", func(w io.Writer) error {
		for _, n := range nodes {
			label := fmt.Sprintf("node %d", n)
			if n == SystemNode {
				label = "system"
			}
			fmt.Fprintf(w, "== %s (last %d events)\n", label, len(byNode[n]))
			for _, e := range byNode[n] {
				name := e.Kind.String()
				if e.Kind == KindPhase {
					name = "phase:" + e.Phase.String()
				}
				fmt.Fprintf(w, "  sim=%-12d %-16s a=%-8d b=%-8d dur=%d\n", e.Sim, name, e.A, e.B, e.Dur)
			}
		}
		return nil
	}); err != nil {
		return "", err
	}

	if r.graph != nil {
		if err := r.writeFile(dir, "deps.dot", r.graph.WriteDOT); err != nil {
			return "", err
		}
		if err := r.writeFile(dir, "deps.json", r.graph.WriteGraphJSON); err != nil {
			return "", err
		}
	}
	if r.stats != nil {
		if err := r.writeFile(dir, "stats.txt", r.stats); err != nil {
			return "", err
		}
	}
	r.dumps = append(r.dumps, dir)
	return dir, nil
}

func (r *FlightRecorder) writeFile(dir, name string, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
