package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// The crash flight recorder: on any node crash or IFA-check failure the
// engine dumps a post-mortem snapshot — the last-N trace events per node,
// the recovery-dependency graph, and engine stats deltas — into a fresh
// timestamped directory, so a failed chaos run leaves enough evidence to
// reconstruct the failure without re-running it.

// GraphWriter renders a dependency graph (deps.Tracker satisfies it; the
// interface lives here so obs does not import its own subpackage).
type GraphWriter interface {
	WriteDOT(io.Writer) error
	WriteGraphJSON(io.Writer) error
}

// AuditSource renders the online auditor's three surfaces (audit.Auditor
// satisfies it; like GraphWriter, the interface lives here so obs does not
// import its own subpackage). WriteAuditTxn with an empty id writes the
// full trail listing.
type AuditSource interface {
	WriteAuditTxn(w io.Writer, id string) error
	WriteAuditViolations(w io.Writer) error
	WriteTimeSeries(w io.Writer) error
}

// ProfSource renders the contention & cost-attribution profiler's surfaces
// (prof.Pair satisfies it; like GraphWriter, the interface lives here so
// obs does not import its own subpackage). WriteProfJSON is the combined
// document the flight recorder stores as prof.json; WriteProfProm appends
// Prometheus lines to /metrics.
type ProfSource interface {
	WriteProfStripes(w io.Writer) error
	WriteProfWorkers(w io.Writer) error
	WriteProfJSON(w io.Writer) error
	WriteProfProm(w io.Writer) error
}

// WaterfallSource renders the per-transaction latency waterfall surfaces
// (waterfall.Recorder satisfies it; like GraphWriter, the interface lives
// here so obs does not import its own subpackage). WriteWaterfallJSON is the
// combined document the flight recorder stores as waterfall.json;
// WriteWaterfallProm appends Prometheus lines to /metrics.
type WaterfallSource interface {
	WriteSlowJSON(w io.Writer, max int) error
	WriteTxnJSON(w io.Writer, txn int64) error
	WriteWaterfallChrome(w io.Writer) error
	WriteWaterfallProm(w io.Writer) error
	WriteWaterfallJSON(w io.Writer) error
	WriteRecoveryProgress(w io.Writer) error
}

// DebtSource renders the recovery-debt tracker's surfaces (debt.Tracker
// satisfies it; like GraphWriter, the interface lives here so obs does not
// import its own subpackage). WriteDebtJSON is the combined document the
// flight recorder stores as debt.json and the /recovery/debt endpoint
// serves; WriteDebtProm appends Prometheus lines to /metrics.
type DebtSource interface {
	WriteDebtJSON(w io.Writer) error
	WriteDebtProm(w io.Writer) error
}

// DefaultFlightEvents is the per-node event tail retained in a dump.
const DefaultFlightEvents = 256

// maxDumps is the default dump budget, so a crash loop cannot fill the
// disk; later dumps are counted but skipped. SetBudget overrides it.
const maxDumps = 64

// FlightRecorder writes crash dumps. A nil recorder is inert (all methods
// are nil-receiver safe), so the engine hooks cost one pointer test when
// disabled.
type FlightRecorder struct {
	mu       sync.Mutex
	dir      string
	lastN    int
	seq      int
	skipped  int
	rotated  int
	maxDumps int
	maxBytes int64
	rotate   bool
	bytes    int64
	obs      *Observer
	graph    GraphWriter
	audit    AuditSource
	prof     ProfSource
	wfall    WaterfallSource
	debt     DebtSource
	stats    func(io.Writer) error
	aux      map[string]func(io.Writer) error
	dumps    []string
	sizes    []int64
}

// NewFlightRecorder creates a recorder dumping into subdirectories of dir
// (created on first dump). lastN bounds the per-node event tail; <= 0 uses
// DefaultFlightEvents.
func NewFlightRecorder(dir string, lastN int) *FlightRecorder {
	if lastN <= 0 {
		lastN = DefaultFlightEvents
	}
	return &FlightRecorder{dir: dir, lastN: lastN, maxDumps: maxDumps}
}

// SetSources wires the recorder's data sources: the observer whose event
// rings are tailed, an optional dependency-graph renderer, an optional
// audit source (the online auditor's violations, trails, and time series
// join every dump), an optional profiler source (the contention profiler's
// combined document joins as prof.json), an optional waterfall source (the
// tail-sampled slow-transaction traces and recovery progress join as
// waterfall.json), an optional recovery-debt source (the live debt
// accounting joins as debt.json), and an optional stats writer (called once
// per dump; implementations typically print deltas since the previous
// dump). Any may be nil.
func (r *FlightRecorder) SetSources(o *Observer, g GraphWriter, a AuditSource, p ProfSource, wf WaterfallSource, dbt DebtSource, stats func(io.Writer) error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.obs = o
	r.graph = g
	r.audit = a
	r.prof = p
	r.wfall = wf
	r.debt = dbt
	r.stats = stats
	r.mu.Unlock()
}

// SetAux registers (or, with a nil fn, removes) an auxiliary file written
// into every subsequent dump and listed in its MANIFEST. The chaos harness
// uses it to attach the recorded schedule (schedule.json) to violation
// dumps, so a dump carries its own deterministic repro. Aux writers run
// under the recorder mutex; keep them self-contained.
func (r *FlightRecorder) SetAux(name string, fn func(io.Writer) error) {
	if r == nil || name == "" {
		return
	}
	r.mu.Lock()
	if r.aux == nil {
		r.aux = make(map[string]func(io.Writer) error)
	}
	if fn == nil {
		delete(r.aux, name)
	} else {
		r.aux[name] = fn
	}
	r.mu.Unlock()
}

// SetBudget overrides the recorder's dump budget. dumps bounds how many
// dump directories may exist (0 = none: every Dump is skipped); bytes, when
// > 0, bounds the total on-disk size — a dump that would exceed it is
// written, measured, and removed (so even a lone dump larger than the
// budget, MANIFEST included, leaves nothing behind). With rotate set, the
// recorder deletes the oldest dump instead of skipping new ones once the
// dump budget is full.
func (r *FlightRecorder) SetBudget(dumps int, bytes int64, rotate bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.maxDumps = dumps
	r.maxBytes = bytes
	r.rotate = rotate
	r.mu.Unlock()
}

// Dumps lists the directories written so far.
func (r *FlightRecorder) Dumps() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.dumps...)
}

// sanitize keeps reason strings path-safe.
func sanitize(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "dump"
	}
	return b.String()
}

// flightEvent is the JSON rendering of one trace event.
type flightEvent struct {
	Sim   int64  `json:"sim"`
	Wall  int64  `json:"wall"`
	Kind  string `json:"kind"`
	Phase string `json:"phase,omitempty"`
	Dur   int64  `json:"dur,omitempty"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// Dump writes one post-mortem directory named <seq>-<reason>-<stamp> and
// returns its path. Dumps beyond the recorder's budget are skipped (counted
// in MANIFEST of later dumps); a nil recorder returns ("", nil).
func (r *FlightRecorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rotate {
		for len(r.dumps) > 0 && len(r.dumps) >= r.maxDumps {
			os.RemoveAll(r.dumps[0])
			r.bytes -= r.sizes[0]
			r.dumps = r.dumps[1:]
			r.sizes = r.sizes[1:]
			r.rotated++
		}
		if r.maxDumps <= 0 {
			r.skipped++
			return "", nil
		}
	} else if r.seq >= r.maxDumps {
		r.skipped++
		return "", nil
	}
	r.seq++
	name := fmt.Sprintf("%03d-%s-%s", r.seq, sanitize(reason),
		time.Now().UTC().Format("20060102T150405.000000000"))
	dir := filepath.Join(r.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	// Group the observer's retained events by node and keep each tail.
	byNode := map[int32][]Event{}
	var nodes []int32
	for _, e := range r.obs.Events() {
		if _, ok := byNode[e.Node]; !ok {
			nodes = append(nodes, e.Node)
		}
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j] < nodes[i] {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
		}
	}
	for n, evs := range byNode {
		if len(evs) > r.lastN {
			byNode[n] = evs[len(evs)-r.lastN:]
		}
	}

	// Aux files are written (and listed) in sorted-name order.
	auxNames := make([]string, 0, len(r.aux))
	for name := range r.aux {
		auxNames = append(auxNames, name)
	}
	sort.Strings(auxNames)

	var written int64
	if err := r.writeFile(dir, "MANIFEST.txt", &written, func(w io.Writer) error {
		fmt.Fprintf(w, "reason: %s\nwall: %s\nevents-per-node: %d\nskipped-dumps: %d\nrotated-dumps: %d\n",
			reason, time.Now().UTC().Format(time.RFC3339Nano), r.lastN, r.skipped, r.rotated)
		fmt.Fprintf(w, "files: MANIFEST.txt events.json events.txt")
		if r.graph != nil {
			fmt.Fprintf(w, " deps.dot deps.json")
		}
		if r.audit != nil {
			fmt.Fprintf(w, " violations.json audit_trails.json timeseries.json")
		}
		if r.prof != nil {
			fmt.Fprintf(w, " prof.json")
		}
		if r.wfall != nil {
			fmt.Fprintf(w, " waterfall.json")
		}
		if r.debt != nil {
			fmt.Fprintf(w, " debt.json")
		}
		if r.stats != nil {
			fmt.Fprintf(w, " stats.txt")
		}
		for _, name := range auxNames {
			fmt.Fprintf(w, " %s", name)
		}
		fmt.Fprintln(w)
		if r.obs != nil {
			fmt.Fprintln(w)
			return r.obs.MetricsTable(w)
		}
		return nil
	}); err != nil {
		return "", err
	}

	if err := r.writeFile(dir, "events.json", &written, func(w io.Writer) error {
		doc := struct {
			Reason string                   `json:"reason"`
			Nodes  map[string][]flightEvent `json:"nodes"`
		}{Reason: reason, Nodes: map[string][]flightEvent{}}
		for n, evs := range byNode {
			key := fmt.Sprintf("node%d", n)
			if n == SystemNode {
				key = "system"
			}
			out := make([]flightEvent, 0, len(evs))
			for _, e := range evs {
				fe := flightEvent{Sim: e.Sim, Wall: e.Wall, Kind: e.Kind.String(), Dur: e.Dur, A: e.A, B: e.B}
				if e.Phase != PhaseNone {
					fe.Phase = e.Phase.String()
				}
				out = append(out, fe)
			}
			doc.Nodes[key] = out
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}); err != nil {
		return "", err
	}

	if err := r.writeFile(dir, "events.txt", &written, func(w io.Writer) error {
		for _, n := range nodes {
			label := fmt.Sprintf("node %d", n)
			if n == SystemNode {
				label = "system"
			}
			fmt.Fprintf(w, "== %s (last %d events)\n", label, len(byNode[n]))
			for _, e := range byNode[n] {
				name := e.Kind.String()
				if e.Kind == KindPhase {
					name = "phase:" + e.Phase.String()
				}
				fmt.Fprintf(w, "  sim=%-12d %-16s a=%-8d b=%-8d dur=%d\n", e.Sim, name, e.A, e.B, e.Dur)
			}
		}
		return nil
	}); err != nil {
		return "", err
	}

	if r.graph != nil {
		if err := r.writeFile(dir, "deps.dot", &written, r.graph.WriteDOT); err != nil {
			return "", err
		}
		if err := r.writeFile(dir, "deps.json", &written, r.graph.WriteGraphJSON); err != nil {
			return "", err
		}
	}
	if r.audit != nil {
		if err := r.writeFile(dir, "violations.json", &written, r.audit.WriteAuditViolations); err != nil {
			return "", err
		}
		if err := r.writeFile(dir, "audit_trails.json", &written, func(w io.Writer) error {
			return r.audit.WriteAuditTxn(w, "")
		}); err != nil {
			return "", err
		}
		if err := r.writeFile(dir, "timeseries.json", &written, r.audit.WriteTimeSeries); err != nil {
			return "", err
		}
	}
	if r.prof != nil {
		if err := r.writeFile(dir, "prof.json", &written, r.prof.WriteProfJSON); err != nil {
			return "", err
		}
	}
	if r.wfall != nil {
		if err := r.writeFile(dir, "waterfall.json", &written, r.wfall.WriteWaterfallJSON); err != nil {
			return "", err
		}
	}
	if r.debt != nil {
		if err := r.writeFile(dir, "debt.json", &written, r.debt.WriteDebtJSON); err != nil {
			return "", err
		}
	}
	if r.stats != nil {
		if err := r.writeFile(dir, "stats.txt", &written, r.stats); err != nil {
			return "", err
		}
	}
	for _, name := range auxNames {
		if err := r.writeFile(dir, name, &written, r.aux[name]); err != nil {
			return "", err
		}
	}
	if r.maxBytes > 0 && r.bytes+written > r.maxBytes {
		// The dump itself blew the byte budget (possibly on its own — even
		// the MANIFEST counts); leave nothing behind.
		os.RemoveAll(dir)
		r.skipped++
		return "", nil
	}
	r.bytes += written
	r.dumps = append(r.dumps, dir)
	r.sizes = append(r.sizes, written)
	return dir, nil
}

// countWriter tallies bytes for the recorder's byte budget.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (r *FlightRecorder) writeFile(dir, name string, total *int64, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	cw := &countWriter{w: f}
	if err := fn(cw); err != nil {
		f.Close()
		return err
	}
	*total += cw.n
	return f.Close()
}
