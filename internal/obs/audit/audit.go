// Package audit turns the engine's IFA guarantee from a post-crash
// assertion into a continuously monitored invariant. It maintains three
// surfaces, all bounded in memory and all fed from the existing
// observability hook set (the obs event stream plus the recovery layer's
// direct write/crash/recovered notifications):
//
//   - a per-transaction *audit trail*: a bounded span list per transaction
//     (begin, each update with its line and LSN, every migration /
//     replication / downgrade of a line it dirtied, the log forces that
//     covered those updates, commit/abort, and — if its node crashed — the
//     recovery outcome), with a ring of recently completed trails;
//
//   - an *online IFA auditor*: on every coherency transition that exposes a
//     dirty line to another node's failure domain it checks the
//     logging-before-migration invariant — a covering log record must exist,
//     stable or volatile per the protocol's policy — and raises a typed
//     Violation carrying the transaction's trail as evidence;
//
//   - *windowed time-series metrics*: a fixed ring of per-window
//     (simulated-time bucketed) counter/quantile snapshots with an anomaly
//     watchdog flagging threshold and ratio breaches (see timeseries.go).
//
// A nil *Auditor is fully inert: every method is nil-receiver safe and
// allocation-free, so the engine's hooks cost one pointer test when
// auditing is off.
package audit

import (
	"fmt"
	"sort"
	"sync"

	"smdb/internal/obs"
)

// Defaults for Config's zero values.
const (
	DefaultWindowNS      = int64(1e6) // 1ms of simulated time per window
	DefaultTrailSteps    = 64
	DefaultTrailRing     = 128
	DefaultMaxViolations = 64
	DefaultWindows       = 128
	DefaultP99Factor     = 8.0
)

// Violation kinds.
const (
	// ViolationUnlogged: a dirty line left its writer's failure domain with
	// at least one covering update that had no log record at all — the
	// deferred-logging hazard the ablated protocol exists to exhibit.
	ViolationUnlogged = "unlogged-exposure"
	// ViolationUnforced: under a stable-LBM policy, a dirty line left its
	// writer's failure domain before the covering log records were stable.
	ViolationUnforced = "unforced-exposure"
)

// Config parameterizes an Auditor. Zero values select the defaults above.
type Config struct {
	// Stable requires *stable* log coverage at exposure time (the
	// StableEager / StableTriggered discipline under write-invalidate
	// coherency): the writer's home log must have been forced through the
	// covering LSN. When false, a volatile log record (LSN != 0) satisfies
	// the check — the Volatile LBM policies, the baseline, and the claimed
	// discipline of the ablated control.
	Stable bool
	// WindowNS is the time-series window width in simulated nanoseconds.
	WindowNS int64
	// TrailSteps caps the steps retained per transaction trail; later steps
	// are counted in Trail.DroppedSteps.
	TrailSteps int
	// TrailRing caps the ring of recently completed trails.
	TrailRing int
	// MaxViolations caps retained Violation records (the total keeps
	// counting beyond it).
	MaxViolations int
	// Windows caps the time-series ring (see timeseries.go).
	Windows int
	// P99Factor is the watchdog's commit-latency ratio threshold.
	P99Factor float64
}

func (c *Config) setDefaults() {
	if c.WindowNS <= 0 {
		c.WindowNS = DefaultWindowNS
	}
	if c.TrailSteps <= 0 {
		c.TrailSteps = DefaultTrailSteps
	}
	if c.TrailRing <= 0 {
		c.TrailRing = DefaultTrailRing
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = DefaultMaxViolations
	}
	if c.Windows <= 0 {
		c.Windows = DefaultWindows
	}
	if c.P99Factor <= 0 {
		c.P99Factor = DefaultP99Factor
	}
}

// Step is one entry of a transaction's audit trail. From/To are node ids
// (-1 when not applicable); Line is -1 for lifecycle steps.
type Step struct {
	Sim  int64  `json:"sim"`
	Kind string `json:"kind"` // begin|update|migrate|replicate|downgrade|invalidate|log-force|lost-line|crash|violation|committed|aborted|recovery-aborted|recovery-committed
	Line int32  `json:"line"`
	From int32  `json:"from"`
	To   int32  `json:"to"`
	LSN  int64  `json:"lsn,omitempty"`
	Note string `json:"note,omitempty"`
}

// Trail is one transaction's audit trail.
type Trail struct {
	Txn          int64  `json:"txn"`
	Name         string `json:"name"`
	Node         int32  `json:"node"`
	Outcome      string `json:"outcome"` // active|committed|aborted|crashed|recovery-aborted|recovery-committed
	BeginSim     int64  `json:"begin_sim"`
	EndSim       int64  `json:"end_sim,omitempty"`
	Updates      int    `json:"updates"`
	Violations   int    `json:"violations,omitempty"`
	DroppedSteps int    `json:"dropped_steps,omitempty"`
	Steps        []Step `json:"steps"`
}

// Violation is one typed LBM-invariant breach, carrying the offending
// transaction's trail (snapshotted at violation time) as evidence.
type Violation struct {
	Kind   string `json:"kind"` // ViolationUnlogged | ViolationUnforced
	Txn    int64  `json:"txn"`
	Name   string `json:"name"`
	Node   int32  `json:"node"` // the writer's home node
	Line   int32  `json:"line"`
	Event  string `json:"event"` // migrate|replicate|downgrade
	To     int32  `json:"to"`    // the failure domain the data entered
	Sim    int64  `json:"sim"`
	LSN    int64  `json:"lsn"`    // highest covering log record (0 = none)
	Forced int64  `json:"forced"` // the home log's stable LSN at the time
	Detail string `json:"detail"`
	Trail  Trail  `json:"trail"`
}

// Summary is the headline census of an auditor's run.
type Summary struct {
	Enabled          bool           `json:"enabled"`
	Active           int            `json:"active_trails"`
	Completed        int            `json:"completed_trails"`
	Violations       int            `json:"violations"`
	ViolationsByKind map[string]int `json:"violations_by_kind,omitempty"`
	Windows          int            `json:"windows"`
	Anomalies        int            `json:"anomalies"`
}

// lineCover summarizes one transaction's log coverage on one line.
type lineCover struct {
	maxLSN   int64
	unlogged int
}

type exposeKey struct {
	line int32
	to   int32
}

// trailState is one live transaction's audit state.
type trailState struct {
	t          Trail
	cover      map[int32]*lineCover
	flagged    map[exposeKey]bool
	maxLSN     int64 // highest LSN of any of its updates
	coveredLSN int64 // highest force step already recorded for it
}

// Auditor is the online audit engine. Install it as (part of) the
// Observer's sink and call the direct Note* hooks from the recovery layer;
// all methods are safe for concurrent use and nil-receiver safe. Like the
// dependency tracker it may run with emitter locks held, so it never calls
// back into the engine.
type Auditor struct {
	cfg Config

	mu    sync.Mutex
	txns  map[int64]*trailState
	lines map[int32]map[int64]*trailState // line -> live writers
	// forced tracks each node's highest stable LSN, from WAL-force events.
	forced map[int32]int64
	// recovering suspends LBM checks between a crash and the end of restart
	// recovery: the invariant governs normal operation, and recovery's own
	// repair traffic (reinstalls, redo migrations) is CheckIFA's
	// jurisdiction, not the online auditor's.
	recovering bool

	done      []Trail // ring of completed trails
	doneNext  int
	doneTotal int

	viols      []Violation
	violTotal  int
	violByKind map[string]int

	ts timeSeries
}

// New creates an auditor.
func New(cfg Config) *Auditor {
	cfg.setDefaults()
	a := &Auditor{
		cfg:        cfg,
		txns:       make(map[int64]*trailState),
		lines:      make(map[int32]map[int64]*trailState),
		forced:     make(map[int32]int64),
		violByKind: make(map[string]int),
	}
	a.ts.init(cfg)
	return a
}

// Enabled reports whether auditing is live (false for a nil Auditor).
func (a *Auditor) Enabled() bool { return a != nil }

// tname renders a transaction id as the engine prints it (wal.TxnID packs
// the home node in the high 16 bits and a per-node sequence below).
func tname(id int64) string {
	return fmt.Sprintf("t%d.%d", uint64(id)>>48, uint64(id)&((1<<48)-1))
}

func (a *Auditor) ensureLocked(id int64, node int32, sim int64) *trailState {
	ts := a.txns[id]
	if ts == nil {
		ts = &trailState{
			t: Trail{
				Txn: id, Name: tname(id), Node: node,
				Outcome: "active", BeginSim: sim,
			},
			cover:   make(map[int32]*lineCover),
			flagged: make(map[exposeKey]bool),
		}
		ts.t.Steps = append(ts.t.Steps, Step{Sim: sim, Kind: "begin", Line: -1, From: -1, To: node})
		a.txns[id] = ts
	}
	return ts
}

func (a *Auditor) stepLocked(ts *trailState, s Step) {
	if len(ts.t.Steps) >= a.cfg.TrailSteps {
		ts.t.DroppedSteps++
		return
	}
	ts.t.Steps = append(ts.t.Steps, s)
}

// OnEvent is the obs.Sink hook: coherency transitions drive the exposure
// checks, WAL forces advance stable coverage, lifecycle events open and
// close trails, and everything feeds the time-series windows.
func (a *Auditor) OnEvent(e obs.Event) {
	if a == nil {
		return
	}
	a.mu.Lock()
	w := a.ts.tick(e.Sim)
	switch e.Kind {
	case obs.KindTxnBegin:
		a.ensureLocked(e.A, e.Node, e.Sim)
	case obs.KindTxnCommit:
		w.Commits++
		w.observeCommit(e.B)
		a.finishLocked(e.A, "committed", e.Sim)
	case obs.KindTxnAbort:
		w.Aborts++
		a.finishLocked(e.A, "aborted", e.Sim)
	case obs.KindMigrate:
		w.Migrations++
		a.exposeLocked(w, int32(e.A), e.Node, int32(e.B), "migrate", e.Sim)
	case obs.KindReplicate:
		w.Replications++
		a.exposeLocked(w, int32(e.A), e.Node, int32(e.B), "replicate", e.Sim)
	case obs.KindDowngrade:
		w.Downgrades++
		a.exposeLocked(w, int32(e.A), e.Node, int32(e.B), "downgrade", e.Sim)
	case obs.KindInvalidate:
		w.Invalidations++
		// Invalidation destroys the *other* copies — data does not enter a
		// new failure domain, so there is no LBM check; the writers' trails
		// still record the transition.
		for _, ts := range a.lines[int32(e.A)] {
			if ts.t.Outcome == "active" {
				a.stepLocked(ts, Step{Sim: e.Sim, Kind: "invalidate", Line: int32(e.A), From: -1, To: e.Node})
			}
		}
	case obs.KindWALForce:
		w.LogForces++
		a.noteForceLocked(e.Node, e.B, e.Sim)
	case obs.KindLineLockWait, obs.KindLockWait:
		w.LockStalls++
	case obs.KindCrash:
		w.Crashes++
	case obs.KindRecovery:
		w.RecoveryNS += e.Dur
	}
	a.mu.Unlock()
}

// exposeLocked runs the LBM check for one coherency transition that placed
// line's content in node to's cache: every live writer of the line must
// have covering log records (stable or volatile per Config.Stable).
// Violations are deduplicated per (transaction, line, destination).
func (a *Auditor) exposeLocked(w *windowCounters, line, to, from int32, kind string, sim int64) {
	writers := a.lines[line]
	if len(writers) == 0 {
		return
	}
	ids := make([]int64, 0, len(writers))
	for id := range writers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return uint64(ids[i]) < uint64(ids[j]) })
	for _, id := range ids {
		ts := writers[id]
		if ts.t.Outcome != "active" || ts.t.Node == to {
			continue
		}
		a.stepLocked(ts, Step{Sim: sim, Kind: kind, Line: line, From: from, To: to})
		if a.recovering {
			continue
		}
		cov := ts.cover[line]
		if cov == nil {
			continue
		}
		var vkind, detail string
		switch {
		case cov.unlogged > 0:
			vkind = ViolationUnlogged
			detail = fmt.Sprintf("%s of line %d to node %d: %d covering update(s) of %s have no log record",
				kind, line, to, cov.unlogged, ts.t.Name)
		case a.cfg.Stable && cov.maxLSN > a.forced[ts.t.Node]:
			vkind = ViolationUnforced
			detail = fmt.Sprintf("%s of line %d to node %d: %s's update LSN %d exceeds node %d's stable LSN %d",
				kind, line, to, ts.t.Name, cov.maxLSN, ts.t.Node, a.forced[ts.t.Node])
		default:
			continue
		}
		k := exposeKey{line: line, to: to}
		if ts.flagged[k] {
			continue
		}
		ts.flagged[k] = true
		ts.t.Violations++
		a.violTotal++
		a.violByKind[vkind]++
		w.Violations++
		if vkind == ViolationUnlogged {
			w.UnloggedExposures++
		}
		a.stepLocked(ts, Step{Sim: sim, Kind: "violation", Line: line, From: from, To: to, Note: vkind})
		if len(a.viols) < a.cfg.MaxViolations {
			ev := ts.t
			ev.Steps = append([]Step(nil), ts.t.Steps...)
			a.viols = append(a.viols, Violation{
				Kind: vkind, Txn: id, Name: ts.t.Name, Node: ts.t.Node,
				Line: line, Event: kind, To: to, Sim: sim,
				LSN: cov.maxLSN, Forced: a.forced[ts.t.Node],
				Detail: detail, Trail: ev,
			})
		}
	}
}

// noteForceLocked advances a node's stable LSN and records a log-force step
// on every live trail homed there whose updates the force newly covered.
func (a *Auditor) noteForceLocked(node int32, stable, sim int64) {
	old := a.forced[node]
	if stable <= old {
		return
	}
	a.forced[node] = stable
	for _, ts := range a.txns {
		if ts.t.Node == node && ts.t.Outcome == "active" && ts.maxLSN > old && ts.maxLSN > ts.coveredLSN {
			a.stepLocked(ts, Step{Sim: sim, Kind: "log-force", Line: -1, From: -1, To: node, LSN: stable})
			ts.coveredLSN = stable
		}
	}
}

// finishLocked closes a trail on a normal commit/abort event. Crashed
// trails are closed by NoteRecovered, not by lifecycle events.
func (a *Auditor) finishLocked(id int64, outcome string, sim int64) {
	ts := a.txns[id]
	if ts == nil || ts.t.Outcome != "active" {
		return
	}
	a.closeLocked(ts, outcome, sim)
}

func (a *Auditor) closeLocked(ts *trailState, outcome string, sim int64) {
	ts.t.Outcome = outcome
	ts.t.EndSim = sim
	a.stepLocked(ts, Step{Sim: sim, Kind: outcome, Line: -1, From: -1, To: ts.t.Node})
	for line := range ts.cover {
		if ws := a.lines[line]; ws != nil {
			delete(ws, ts.t.Txn)
			if len(ws) == 0 {
				delete(a.lines, line)
			}
		}
	}
	delete(a.txns, ts.t.Txn)
	if len(a.done) < a.cfg.TrailRing {
		a.done = append(a.done, ts.t)
	} else {
		a.done[a.doneNext] = ts.t
		a.doneNext = (a.doneNext + 1) % a.cfg.TrailRing
	}
	a.doneTotal++
}

// NoteWrite records one update transaction txn applied on its home node.
// It is called from inside the update critical section — the line lock
// still pins the line — so the auditor knows about the uncommitted data
// before the line can move. The slot key is accepted for hook symmetry with
// the dependency tracker but not retained (the trail records line + LSN).
func (a *Auditor) NoteWrite(txn int64, node, line int32, slot, lsn, sim int64) {
	if a == nil {
		return
	}
	_ = slot
	a.mu.Lock()
	w := a.ts.tick(sim)
	w.Updates++
	ts := a.ensureLocked(txn, node, sim)
	ts.t.Updates++
	cov := ts.cover[line]
	if cov == nil {
		cov = &lineCover{}
		ts.cover[line] = cov
	}
	if lsn == 0 {
		cov.unlogged++
	} else {
		if lsn > cov.maxLSN {
			cov.maxLSN = lsn
		}
		if lsn > ts.maxLSN {
			ts.maxLSN = lsn
		}
	}
	ws := a.lines[line]
	if ws == nil {
		ws = make(map[int64]*trailState)
		a.lines[line] = ws
	}
	ws[txn] = ts
	a.stepLocked(ts, Step{Sim: sim, Kind: "update", Line: line, From: -1, To: node, LSN: lsn})
	a.mu.Unlock()
}

// NoteCrash folds a node-failure event into the trails: transactions homed
// on crashed nodes become crash victims (their trails stay open until
// NoteRecovered settles them), destroyed lines are recorded on their
// writers' trails, and LBM checks are suspended until recovery completes.
// It runs under the machine lock and never calls back into the engine.
func (a *Auditor) NoteCrash(crashed, lost []int32, sim int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.ts.tick(sim)
	a.recovering = true
	var cmask uint64
	for _, n := range crashed {
		if n >= 0 && n < 64 {
			cmask |= 1 << uint(n)
		}
	}
	for _, ts := range a.txns {
		if ts.t.Outcome == "active" && ts.t.Node >= 0 && ts.t.Node < 64 && cmask&(1<<uint(ts.t.Node)) != 0 {
			ts.t.Outcome = "crashed"
			a.stepLocked(ts, Step{Sim: sim, Kind: "crash", Line: -1, From: -1, To: ts.t.Node})
		}
	}
	for _, ln := range lost {
		for _, ts := range a.lines[ln] {
			a.stepLocked(ts, Step{Sim: sim, Kind: "lost-line", Line: ln, From: -1, To: -1})
		}
	}
	a.mu.Unlock()
}

// NoteRecovered closes the crash episode: crash victims recovery aborted
// settle as recovery-aborted, the rest as recovery-committed (their commit
// records were stable — the crash only ate the acknowledgement), and LBM
// checking resumes.
func (a *Auditor) NoteRecovered(aborted []int64, sim int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.ts.tick(sim)
	ab := make(map[int64]bool, len(aborted))
	for _, id := range aborted {
		ab[id] = true
	}
	var crashedIDs []int64
	for id, ts := range a.txns {
		if ts.t.Outcome == "crashed" {
			crashedIDs = append(crashedIDs, id)
		}
	}
	for _, id := range crashedIDs {
		outcome := "recovery-committed"
		if ab[id] {
			outcome = "recovery-aborted"
		}
		a.closeLocked(a.txns[id], outcome, sim)
	}
	a.recovering = false
	a.mu.Unlock()
}

// Trail returns a transaction's trail — live or recently completed — with
// its steps copied out.
func (a *Auditor) Trail(id int64) (Trail, bool) {
	if a == nil {
		return Trail{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ts := a.txns[id]; ts != nil {
		return copyTrail(ts.t), true
	}
	// Scan the completed ring newest-first so re-used ids resolve to the
	// most recent run.
	for i := 0; i < len(a.done); i++ {
		idx := (a.doneNext - 1 - i + 2*len(a.done)) % len(a.done)
		if len(a.done) < a.cfg.TrailRing {
			idx = len(a.done) - 1 - i
		}
		if a.done[idx].Txn == id {
			return copyTrail(a.done[idx]), true
		}
	}
	return Trail{}, false
}

func copyTrail(t Trail) Trail {
	t.Steps = append([]Step(nil), t.Steps...)
	return t
}

// activeTrailsLocked returns the live trails sorted by transaction id.
func (a *Auditor) activeTrailsLocked() []Trail {
	out := make([]Trail, 0, len(a.txns))
	for _, ts := range a.txns {
		out = append(out, copyTrail(ts.t))
	}
	sort.Slice(out, func(i, j int) bool { return uint64(out[i].Txn) < uint64(out[j].Txn) })
	return out
}

// recentTrailsLocked returns the completed ring newest-first.
func (a *Auditor) recentTrailsLocked() []Trail {
	out := make([]Trail, 0, len(a.done))
	for i := 0; i < len(a.done); i++ {
		var idx int
		if len(a.done) < a.cfg.TrailRing {
			idx = len(a.done) - 1 - i
		} else {
			idx = (a.doneNext - 1 - i + 2*len(a.done)) % len(a.done)
		}
		out = append(out, copyTrail(a.done[idx]))
	}
	return out
}

// Violations returns a copy of the retained violation records (bounded by
// Config.MaxViolations; ViolationCount keeps the full total).
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.viols...)
}

// ViolationCount returns the total violations raised (including any beyond
// the retention cap).
func (a *Auditor) ViolationCount() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.violTotal
}

// Summary returns the headline census.
func (a *Auditor) Summary() Summary {
	if a == nil {
		return Summary{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	byKind := make(map[string]int, len(a.violByKind))
	for k, v := range a.violByKind {
		byKind[k] = v
	}
	return Summary{
		Enabled:          true,
		Active:           len(a.txns),
		Completed:        a.doneTotal,
		Violations:       a.violTotal,
		ViolationsByKind: byKind,
		Windows:          a.ts.windowCount(),
		Anomalies:        a.ts.anomTotal,
	}
}
