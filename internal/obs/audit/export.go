package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The exporters behind the introspection server's /audit/txn/{id},
// /audit/violations, and /timeseries endpoints and the flight recorder's
// audit files. The Auditor satisfies obs.AuditSource; every writer is
// nil-receiver safe and emits {"enabled": false} when auditing is off, so
// the HTTP layer and the flight recorder never branch.

func writeDisabled(w io.Writer) error {
	_, err := io.WriteString(w, "{\n  \"enabled\": false\n}\n")
	return err
}

func writeJSON(w io.Writer, doc any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ParseTxnID parses a transaction id in either spelling the engine uses:
// the rendered "tN.M" form (home node N, per-node sequence M) or the raw
// packed integer.
func ParseTxnID(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "t"); ok && strings.Contains(rest, ".") {
		nodeStr, seqStr, _ := strings.Cut(rest, ".")
		node, err1 := strconv.ParseUint(nodeStr, 10, 16)
		seq, err2 := strconv.ParseUint(seqStr, 10, 48)
		if err1 != nil || err2 != nil {
			return 0, fmt.Errorf("audit: bad transaction id %q", s)
		}
		return int64(node<<48 | seq), nil
	}
	id, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("audit: bad transaction id %q", s)
	}
	return id, nil
}

// WriteAuditTxn writes one transaction's trail as JSON. An empty id writes
// the full trail listing instead: the summary, the live trails, and the
// ring of recently completed ones.
func (a *Auditor) WriteAuditTxn(w io.Writer, id string) error {
	if a == nil {
		return writeDisabled(w)
	}
	if strings.TrimSpace(id) == "" {
		a.mu.Lock()
		doc := struct {
			Enabled bool    `json:"enabled"`
			Summary Summary `json:"summary"`
			Active  []Trail `json:"active"`
			Recent  []Trail `json:"recent"`
		}{
			Enabled: true,
			Active:  a.activeTrailsLocked(),
			Recent:  a.recentTrailsLocked(),
		}
		a.mu.Unlock()
		doc.Summary = a.Summary()
		return writeJSON(w, doc)
	}
	txn, err := ParseTxnID(id)
	if err != nil {
		return writeJSON(w, struct {
			Enabled bool   `json:"enabled"`
			Found   bool   `json:"found"`
			Error   string `json:"error"`
		}{true, false, err.Error()})
	}
	tr, ok := a.Trail(txn)
	doc := struct {
		Enabled bool   `json:"enabled"`
		Found   bool   `json:"found"`
		Trail   *Trail `json:"trail,omitempty"`
	}{Enabled: true, Found: ok}
	if ok {
		doc.Trail = &tr
	}
	return writeJSON(w, doc)
}

// WriteAuditViolations writes the retained violation records (each with its
// evidence trail) plus the running totals.
func (a *Auditor) WriteAuditViolations(w io.Writer) error {
	if a == nil {
		return writeDisabled(w)
	}
	a.mu.Lock()
	byKind := make(map[string]int, len(a.violByKind))
	for k, v := range a.violByKind {
		byKind[k] = v
	}
	doc := struct {
		Enabled    bool           `json:"enabled"`
		Total      int            `json:"total"`
		ByKind     map[string]int `json:"by_kind"`
		Retained   int            `json:"retained"`
		Violations []Violation    `json:"violations"`
	}{
		Enabled:    true,
		Total:      a.violTotal,
		ByKind:     byKind,
		Retained:   len(a.viols),
		Violations: append([]Violation(nil), a.viols...),
	}
	a.mu.Unlock()
	return writeJSON(w, doc)
}

// WriteTimeSeries writes the windowed metrics ring and the watchdog's
// anomaly log.
func (a *Auditor) WriteTimeSeries(w io.Writer) error {
	if a == nil {
		return writeDisabled(w)
	}
	a.mu.Lock()
	doc := a.ts.snapshotLocked()
	a.mu.Unlock()
	return writeJSON(w, doc)
}

// Anomalies returns a copy of the retained watchdog findings.
func (a *Auditor) Anomalies() []Anomaly {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Anomaly(nil), a.ts.anomalies...)
}
