package audit

import (
	"testing"

	"smdb/internal/obs"
)

// The recovery layer calls the auditor's hooks on every update and the
// observer fans every event into it, almost always with auditing disabled.
// Like the nil observer and nil tracker, the nil-auditor fast path must cost
// a pointer test and zero allocations; these benchmarks (with -benchmem) and
// the allocation test pin that contract.

func BenchmarkNilAuditorNoteWrite(b *testing.B) {
	var a *Auditor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.NoteWrite(1, 0, 5, int64(i), int64(i), int64(i))
	}
}

func BenchmarkNilAuditorOnEvent(b *testing.B) {
	var a *Auditor
	e := obs.Event{Kind: obs.KindMigrate, Node: 1, A: 5, B: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Sim = int64(i)
		a.OnEvent(e)
	}
}

// BenchmarkEnabledAuditorNoteWrite is the comparison point: the price an
// update pays once -audit turns the auditor on.
func BenchmarkEnabledAuditorNoteWrite(b *testing.B) {
	a := New(Config{})
	a.OnEvent(obs.Event{Kind: obs.KindTxnBegin, Node: 0, Sim: 0, A: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.NoteWrite(1, 0, int32(i&7), int64(i), int64(i+1), int64(i))
	}
}

func TestNilAuditorHooksDoNotAllocate(t *testing.T) {
	var a *Auditor
	e := obs.Event{Kind: obs.KindMigrate, Node: 1, A: 5, B: 0}
	if n := testing.AllocsPerRun(100, func() {
		a.NoteWrite(1, 0, 5, 0, 1, 10)
		a.OnEvent(e)
		a.NoteCrash(nil, nil, 0)
		a.NoteRecovered(nil, 0)
		_ = a.Enabled()
		_ = a.ViolationCount()
	}); n != 0 {
		t.Errorf("disabled auditor hooks allocate %v times per call", n)
	}
}
