package audit

import (
	"strings"
	"testing"

	"smdb/internal/obs"
)

func ev(kind obs.Kind, node int32, sim, a, b int64) obs.Event {
	return obs.Event{Kind: kind, Node: node, Sim: sim, A: a, B: b}
}

func txnID(node, seq int64) int64 { return node<<48 | seq }

func TestTrailLifecycle(t *testing.T) {
	a := New(Config{})
	id := txnID(0, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 0, 10, id, 0))
	a.NoteWrite(id, 0, 7, 0, 42, 20)
	a.OnEvent(ev(obs.KindWALForce, 0, 30, 0, 42))
	a.OnEvent(ev(obs.KindTxnCommit, 0, 40, id, 1000))

	tr, ok := a.Trail(id)
	if !ok {
		t.Fatal("completed trail not found")
	}
	if tr.Outcome != "committed" || tr.Name != "t0.1" || tr.Updates != 1 {
		t.Errorf("trail = %+v", tr)
	}
	if tr.BeginSim != 10 || tr.EndSim != 40 {
		t.Errorf("trail times = %d..%d, want 10..40", tr.BeginSim, tr.EndSim)
	}
	kinds := make([]string, len(tr.Steps))
	for i, s := range tr.Steps {
		kinds[i] = s.Kind
	}
	want := "begin update log-force committed"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("steps = %q, want %q", got, want)
	}
	if tr.Steps[1].LSN != 42 || tr.Steps[1].Line != 7 {
		t.Errorf("update step = %+v", tr.Steps[1])
	}
	sum := a.Summary()
	if !sum.Enabled || sum.Active != 0 || sum.Completed != 1 || sum.Violations != 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestUnloggedExposureViolation(t *testing.T) {
	a := New(Config{})
	id := txnID(0, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 0, 10, id, 0))
	a.NoteWrite(id, 0, 5, 0, 0 /* no log record */, 20)

	// Dirty line 5 migrates to node 1: the deferred-logging hazard.
	a.OnEvent(ev(obs.KindMigrate, 1, 30, 5, 0))
	if n := a.ViolationCount(); n != 1 {
		t.Fatalf("violations = %d, want 1", n)
	}
	vs := a.Violations()
	v := vs[0]
	if v.Kind != ViolationUnlogged || v.Line != 5 || v.To != 1 || v.Event != "migrate" || v.Txn != id {
		t.Errorf("violation = %+v", v)
	}
	if len(v.Trail.Steps) == 0 {
		t.Error("violation carries no evidence trail")
	}

	// Same (line, destination) again: deduplicated.
	a.OnEvent(ev(obs.KindMigrate, 1, 40, 5, 0))
	if n := a.ViolationCount(); n != 1 {
		t.Errorf("violations after duplicate exposure = %d, want 1", n)
	}
	// A different destination is a fresh breach.
	a.OnEvent(ev(obs.KindReplicate, 2, 50, 5, 1))
	if n := a.ViolationCount(); n != 2 {
		t.Errorf("violations after second destination = %d, want 2", n)
	}
	sum := a.Summary()
	if sum.ViolationsByKind[ViolationUnlogged] != 2 {
		t.Errorf("by-kind census = %+v", sum.ViolationsByKind)
	}
}

func TestUnforcedExposureViolation(t *testing.T) {
	a := New(Config{Stable: true})
	id := txnID(0, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 0, 10, id, 0))
	a.NoteWrite(id, 0, 5, 0, 42, 20)

	// Exposure before the covering record is stable: unforced.
	a.OnEvent(ev(obs.KindMigrate, 1, 30, 5, 0))
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Kind != ViolationUnforced {
		t.Fatalf("violations = %+v, want one unforced-exposure", vs)
	}
	if vs[0].LSN != 42 || vs[0].Forced != 0 {
		t.Errorf("violation evidence = lsn %d forced %d, want 42/0", vs[0].LSN, vs[0].Forced)
	}

	// After a force covering the update, a fresh dirty line moves cleanly.
	a.NoteWrite(id, 0, 6, 0, 43, 40)
	a.OnEvent(ev(obs.KindWALForce, 0, 50, 0, 43))
	a.OnEvent(ev(obs.KindMigrate, 1, 60, 6, 0))
	if n := a.ViolationCount(); n != 1 {
		t.Errorf("violations after covered exposure = %d, want still 1", n)
	}
}

func TestVolatileCoverageSatisfies(t *testing.T) {
	a := New(Config{Stable: false})
	id := txnID(0, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 0, 10, id, 0))
	a.NoteWrite(id, 0, 5, 0, 42, 20)
	// Volatile policy: an unforced log record is enough.
	a.OnEvent(ev(obs.KindMigrate, 1, 30, 5, 0))
	if n := a.ViolationCount(); n != 0 {
		t.Errorf("violations = %d, want 0 under volatile LBM", n)
	}
}

func TestExposureToHomeNodeIgnored(t *testing.T) {
	a := New(Config{})
	id := txnID(0, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 0, 10, id, 0))
	a.NoteWrite(id, 0, 5, 0, 0, 20)
	// The line comes back home (abort undo fetch): same failure domain.
	a.OnEvent(ev(obs.KindMigrate, 0, 30, 5, 1))
	if n := a.ViolationCount(); n != 0 {
		t.Errorf("violations = %d, want 0 for home-bound transfer", n)
	}
}

func TestRecoverySuspendsChecks(t *testing.T) {
	a := New(Config{})
	survivor := txnID(1, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 1, 10, survivor, 0))
	a.NoteWrite(survivor, 1, 9, 0, 0, 20)

	// Node 0 crashes: recovery repair traffic must not be audited.
	a.NoteCrash([]int32{0}, []int32{3}, 30)
	a.OnEvent(ev(obs.KindMigrate, 2, 40, 9, 1))
	if n := a.ViolationCount(); n != 0 {
		t.Errorf("violations during recovery = %d, want 0 (checks suspended)", n)
	}

	// Recovery done: checking resumes.
	a.NoteRecovered(nil, 50)
	a.OnEvent(ev(obs.KindMigrate, 3, 60, 9, 2))
	if n := a.ViolationCount(); n != 1 {
		t.Errorf("violations after recovery = %d, want 1 (checks resumed)", n)
	}
}

func TestCrashVictimOutcomes(t *testing.T) {
	a := New(Config{})
	loser := txnID(0, 1)
	winner := txnID(0, 2)
	bystander := txnID(1, 1)
	for _, tc := range []struct {
		id   int64
		node int32
	}{{loser, 0}, {winner, 0}, {bystander, 1}} {
		a.OnEvent(ev(obs.KindTxnBegin, tc.node, 10, tc.id, 0))
		a.NoteWrite(tc.id, tc.node, int32(tc.id%64), 0, int64(tc.id), 20)
	}
	a.NoteCrash([]int32{0}, nil, 30)
	a.NoteRecovered([]int64{loser}, 40)

	if tr, ok := a.Trail(loser); !ok || tr.Outcome != "recovery-aborted" {
		t.Errorf("loser trail = %+v, %v", tr, ok)
	}
	if tr, ok := a.Trail(winner); !ok || tr.Outcome != "recovery-committed" {
		t.Errorf("winner trail = %+v, %v", tr, ok)
	}
	// The bystander on the surviving node is still live.
	if tr, ok := a.Trail(bystander); !ok || tr.Outcome != "active" {
		t.Errorf("bystander trail = %+v, %v", tr, ok)
	}
	sum := a.Summary()
	if sum.Active != 1 || sum.Completed != 2 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestTrailRingBound(t *testing.T) {
	a := New(Config{TrailRing: 2})
	for seq := int64(1); seq <= 3; seq++ {
		id := txnID(0, seq)
		a.OnEvent(ev(obs.KindTxnBegin, 0, seq*10, id, 0))
		a.OnEvent(ev(obs.KindTxnCommit, 0, seq*10+5, id, 100))
	}
	if _, ok := a.Trail(txnID(0, 1)); ok {
		t.Error("oldest trail survived a full ring")
	}
	if _, ok := a.Trail(txnID(0, 3)); !ok {
		t.Error("newest trail missing")
	}
	a.mu.Lock()
	recent := a.recentTrailsLocked()
	a.mu.Unlock()
	if len(recent) != 2 || recent[0].Txn != txnID(0, 3) || recent[1].Txn != txnID(0, 2) {
		t.Errorf("recent ring = %+v, want newest-first [t0.3 t0.2]", recent)
	}
	if sum := a.Summary(); sum.Completed != 3 {
		t.Errorf("completed total = %d, want 3 (ring bounds retention, not the count)", sum.Completed)
	}
}

func TestTrailStepCap(t *testing.T) {
	a := New(Config{TrailSteps: 4})
	id := txnID(0, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 0, 10, id, 0))
	for i := 0; i < 6; i++ {
		a.NoteWrite(id, 0, int32(i), 0, int64(i+1), int64(20+i))
	}
	a.OnEvent(ev(obs.KindTxnCommit, 0, 100, id, 50))
	tr, ok := a.Trail(id)
	if !ok {
		t.Fatal("trail not found")
	}
	if len(tr.Steps) != 4 {
		t.Errorf("steps = %d, want capped at 4", len(tr.Steps))
	}
	if tr.DroppedSteps == 0 {
		t.Error("dropped steps not counted")
	}
	if tr.Updates != 6 {
		t.Errorf("updates = %d, want 6 (counter is exact even when steps drop)", tr.Updates)
	}
}

func TestParseTxnID(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"t1.2", 1<<48 | 2, true},
		{"t0.7", 7, true},
		{" t3.1 ", 3<<48 | 1, true},
		{"42", 42, true},
		{"t1.x", 0, false},
		{"bogus", 0, false},
		{"", 0, false},
	} {
		got, err := ParseTxnID(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseTxnID(%q) = %d, %v, want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseTxnID(%q) accepted", tc.in)
		}
	}
	if name := tname(1<<48 | 2); name != "t1.2" {
		t.Errorf("tname round-trip = %q", name)
	}
}

func TestWritersNilSafe(t *testing.T) {
	var a *Auditor
	if a.Enabled() {
		t.Error("nil auditor claims enabled")
	}
	a.OnEvent(ev(obs.KindMigrate, 1, 10, 5, 0))
	a.NoteWrite(1, 0, 5, 0, 1, 10)
	a.NoteCrash(nil, nil, 0)
	a.NoteRecovered(nil, 0)
	if _, ok := a.Trail(1); ok {
		t.Error("nil auditor found a trail")
	}
	if a.Violations() != nil || a.ViolationCount() != 0 || a.Anomalies() != nil {
		t.Error("nil auditor reports data")
	}
	var sb strings.Builder
	for _, fn := range []func() error{
		func() error { return a.WriteAuditTxn(&sb, "") },
		func() error { return a.WriteAuditViolations(&sb) },
		func() error { return a.WriteTimeSeries(&sb) },
	} {
		sb.Reset()
		if err := fn(); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), `"enabled": false`) {
			t.Errorf("nil writer output = %q", sb.String())
		}
	}
}

func TestWriteAuditTxnJSON(t *testing.T) {
	a := New(Config{})
	id := txnID(0, 1)
	a.OnEvent(ev(obs.KindTxnBegin, 0, 10, id, 0))
	a.NoteWrite(id, 0, 5, 0, 0, 20)
	a.OnEvent(ev(obs.KindMigrate, 1, 30, 5, 0))

	var sb strings.Builder
	if err := a.WriteAuditTxn(&sb, "t0.1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"found": true`, `"name": "t0.1"`, `"kind": "violation"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trail JSON missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := a.WriteAuditTxn(&sb, "t9.9"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"found": false`) {
		t.Errorf("missing-txn JSON = %q", sb.String())
	}

	sb.Reset()
	if err := a.WriteAuditTxn(&sb, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"summary"`, `"active"`, `"recent"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("listing JSON missing %q", want)
		}
	}

	sb.Reset()
	if err := a.WriteAuditViolations(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total": 1`, ViolationUnlogged, `"trail"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("violations JSON missing %q:\n%s", want, sb.String())
		}
	}
}
