package audit

import (
	"strings"
	"testing"

	"smdb/internal/obs"
)

func TestTimeSeriesWindowBucketing(t *testing.T) {
	a := New(Config{WindowNS: 100, Windows: 4})
	// Commits land in windows 0, 0, 2 (unknown txns: only the counters move).
	a.OnEvent(ev(obs.KindTxnCommit, 0, 10, 900, 50))
	a.OnEvent(ev(obs.KindTxnCommit, 0, 90, 901, 70))
	a.OnEvent(ev(obs.KindTxnCommit, 0, 250, 902, 60))

	var sb strings.Builder
	if err := a.WriteTimeSeries(&sb); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	snap := a.ts.snapshotLocked()
	a.mu.Unlock()
	if len(snap.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(snap.Windows))
	}
	if snap.Windows[0].Window != 0 || snap.Windows[0].Commits != 2 {
		t.Errorf("window 0 = %+v", snap.Windows[0])
	}
	if snap.Windows[1].Window != 2 || snap.Windows[1].Commits != 1 {
		t.Errorf("window 2 = %+v", snap.Windows[1])
	}
	if snap.WindowNS != 100 || !snap.Enabled {
		t.Errorf("snapshot header = %+v", snap)
	}
	if !strings.Contains(sb.String(), `"window_ns": 100`) {
		t.Errorf("JSON missing window width: %s", sb.String())
	}
}

func TestTimeSeriesRingEvictionAndStragglers(t *testing.T) {
	a := New(Config{WindowNS: 100, Windows: 4})
	for w := int64(0); w <= 5; w++ {
		a.OnEvent(ev(obs.KindMigrate, 1, w*100+10, 50, 0))
	}
	a.mu.Lock()
	snap := a.ts.snapshotLocked()
	a.mu.Unlock()
	if len(snap.Windows) != 4 {
		t.Fatalf("resident windows = %d, want ring size 4", len(snap.Windows))
	}
	if snap.Windows[0].Window != 2 || snap.Windows[3].Window != 5 {
		t.Errorf("resident range = %d..%d, want 2..5", snap.Windows[0].Window, snap.Windows[3].Window)
	}

	// A straggler event for the evicted window 0 must not corrupt the ring.
	a.OnEvent(ev(obs.KindMigrate, 1, 10, 50, 0))
	a.mu.Lock()
	scratch := a.ts.scratch.Migrations
	snap = a.ts.snapshotLocked()
	a.mu.Unlock()
	if scratch != 1 {
		t.Errorf("straggler migrations = %d, want absorbed into scratch", scratch)
	}
	if len(snap.Windows) != 4 || snap.Windows[0].Window != 2 {
		t.Errorf("ring disturbed by straggler: %+v", snap.Windows)
	}
}

func tickN(ts *timeSeries, window int64, fill func(*windowCounters)) {
	c := ts.tick(window * 100)
	if fill != nil {
		fill(c)
	}
}

func newTestSeries() *timeSeries {
	ts := &timeSeries{}
	cfg := Config{WindowNS: 100, Windows: 16}
	cfg.setDefaults()
	cfg.WindowNS = 100
	cfg.Windows = 16
	ts.init(cfg)
	return ts
}

func anomalyKinds(ts *timeSeries) []string {
	out := make([]string, len(ts.anomalies))
	for i, an := range ts.anomalies {
		out[i] = an.Kind
	}
	return out
}

func TestWatchdogThresholdRules(t *testing.T) {
	ts := newTestSeries()
	tickN(ts, 0, func(c *windowCounters) {
		c.Violations = 2
		c.UnloggedExposures = 1
	})
	tickN(ts, 1, nil) // closes window 0
	kinds := anomalyKinds(ts)
	if len(kinds) != 2 || kinds[0] != "unlogged-exposure" || kinds[1] != "lbm-violation" {
		t.Errorf("anomalies = %v, want [unlogged-exposure lbm-violation]", kinds)
	}
	if ts.anomTotal != 2 {
		t.Errorf("anomaly total = %d", ts.anomTotal)
	}
	if ts.anomalies[0].Window != 0 || ts.anomalies[0].Sim != 0 {
		t.Errorf("anomaly provenance = %+v", ts.anomalies[0])
	}
}

func TestWatchdogCommitLatencyRule(t *testing.T) {
	ts := newTestSeries()
	// Five healthy windows build the trailing baseline (p99 = 128ns bucket).
	for w := int64(0); w < 5; w++ {
		tickN(ts, w, func(c *windowCounters) {
			for i := 0; i < minCommitSamples; i++ {
				c.observeCommit(100)
			}
		})
	}
	// A slow window: p99 jumps to the 2^20 bucket, far over 8x the median.
	tickN(ts, 5, func(c *windowCounters) {
		for i := 0; i < minCommitSamples; i++ {
			c.observeCommit(1 << 20)
		}
	})
	tickN(ts, 6, nil)
	kinds := anomalyKinds(ts)
	if len(kinds) != 1 || kinds[0] != "commit-latency" {
		t.Fatalf("anomalies = %v, want [commit-latency]", kinds)
	}

	// Sparse windows (below minCommitSamples) never qualify.
	ts2 := newTestSeries()
	for w := int64(0); w < 6; w++ {
		tickN(ts2, w, func(c *windowCounters) { c.observeCommit(1 << 30) })
	}
	tickN(ts2, 6, nil)
	if len(ts2.anomalies) != 0 {
		t.Errorf("sparse windows raised %v", anomalyKinds(ts2))
	}
}

func TestWatchdogMigrationSpikeRule(t *testing.T) {
	ts := newTestSeries()
	for w := int64(0); w < 5; w++ {
		tickN(ts, w, func(c *windowCounters) { c.Migrations = 2 })
	}
	tickN(ts, 5, func(c *windowCounters) { c.Migrations = 40 })
	tickN(ts, 6, nil)
	kinds := anomalyKinds(ts)
	if len(kinds) != 1 || kinds[0] != "migration-spike" {
		t.Fatalf("anomalies = %v, want [migration-spike]", kinds)
	}

	// Below the absolute floor no ratio triggers.
	ts2 := newTestSeries()
	for w := int64(0); w < 5; w++ {
		tickN(ts2, w, func(c *windowCounters) { c.Migrations = 1 })
	}
	tickN(ts2, 5, func(c *windowCounters) { c.Migrations = 20 }) // 20x median but < floor
	tickN(ts2, 6, nil)
	if len(ts2.anomalies) != 0 {
		t.Errorf("sub-floor spike raised %v", anomalyKinds(ts2))
	}
}

func TestCommitQuantiles(t *testing.T) {
	var c windowCounters
	if got := c.quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	for i := 0; i < 99; i++ {
		c.observeCommit(100) // bucket 7, upper bound 128
	}
	c.observeCommit(1 << 20)
	if got := c.quantile(0.50); got != 128 {
		t.Errorf("p50 = %d, want 128", got)
	}
	if got := c.quantile(0.99); got != 1<<21 {
		t.Errorf("p99 = %d, want %d (top of the 2^20 bucket)", got, 1<<21)
	}
	if bucketOf(0) != 0 || bucketOf(-5) != 0 {
		t.Error("non-positive latencies must land in bucket 0")
	}
	if bucketOf(1<<62) != 62 {
		t.Errorf("bucketOf(1<<62) = %d, want capped at 62", bucketOf(1<<62))
	}
}

func TestPushTrailBound(t *testing.T) {
	var trail []int64
	for i := int64(0); i < int64(trailCap)+10; i++ {
		trail = pushTrail(trail, i)
	}
	if len(trail) != trailCap {
		t.Fatalf("trail len = %d, want %d", len(trail), trailCap)
	}
	if trail[0] != 10 || trail[trailCap-1] != int64(trailCap)+9 {
		t.Errorf("trail = %d..%d, want oldest entries evicted", trail[0], trail[trailCap-1])
	}
}
