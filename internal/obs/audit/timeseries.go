package audit

import (
	"fmt"
	"math/bits"
	"sort"
)

// The windowed time-series: a fixed-size ring of per-window counter
// snapshots, bucketed by simulated time, so a long-running workload keeps a
// bounded, recent view of its own shape — log forces, coherency traffic,
// lock stalls, commit-latency quantiles, recovery makespan — instead of one
// unbounded cumulative counter set. An anomaly watchdog evaluates each
// window as it closes (when events for a later window arrive) against
// threshold and ratio rules; see evalWindow for the rule table, which
// DESIGN.md §8 documents.

// watchdog tuning (documented in DESIGN.md §8).
const (
	// minCommitSamples gates the commit-latency ratio rule: windows with
	// fewer commits have meaningless p99s.
	minCommitSamples = 8
	// minTrailWindows gates the ratio rules until a trailing baseline
	// exists.
	minTrailWindows = 4
	// trailCap bounds the trailing-history deques.
	trailCap = 32
	// migrationSpikeFloor and migrationSpikeFactor gate the coherency-storm
	// rule: a window must see at least the floor and more than factor x the
	// trailing median.
	migrationSpikeFloor  = 32
	migrationSpikeFactor = 8
	// maxAnomalies bounds retained anomaly records (the total keeps
	// counting).
	maxAnomalies = 64
)

// windowCounters is one window's live counter set. The commit-latency
// histogram is log2-bucketed, matching obs.Histogram's resolution.
type windowCounters struct {
	Updates           int64
	Migrations        int64
	Replications      int64
	Downgrades        int64
	Invalidations     int64
	LogForces         int64
	LockStalls        int64
	Commits           int64
	Aborts            int64
	Crashes           int64
	Violations        int64
	UnloggedExposures int64
	RecoveryNS        int64

	commitBuckets [65]int64
	commitCount   int64
	commitSum     int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > 62 {
		b = 62
	}
	return b
}

func (w *windowCounters) observeCommit(ns int64) {
	w.commitBuckets[bucketOf(ns)]++
	w.commitCount++
	w.commitSum += ns
}

// quantile returns an upper-bound estimate of the q-quantile of the
// window's commit latencies (the top of the log2 bucket holding the rank).
func (w *windowCounters) quantile(q float64) int64 {
	if w.commitCount == 0 {
		return 0
	}
	rank := int64(q * float64(w.commitCount))
	if rank >= w.commitCount {
		rank = w.commitCount - 1
	}
	var cum int64
	for i, c := range w.commitBuckets {
		cum += c
		if cum > rank {
			if i == 0 {
				return 0
			}
			return int64(1) << uint(i)
		}
	}
	return int64(1) << 62
}

// WindowSnapshot is one window's exported view.
type WindowSnapshot struct {
	Window            int64 `json:"window"`
	StartSim          int64 `json:"start_sim"`
	Updates           int64 `json:"updates"`
	Migrations        int64 `json:"migrations"`
	Replications      int64 `json:"replications"`
	Downgrades        int64 `json:"downgrades"`
	Invalidations     int64 `json:"invalidations"`
	LogForces         int64 `json:"log_forces"`
	LockStalls        int64 `json:"lock_stalls"`
	Commits           int64 `json:"commits"`
	Aborts            int64 `json:"aborts"`
	Crashes           int64 `json:"crashes"`
	Violations        int64 `json:"violations"`
	UnloggedExposures int64 `json:"unlogged_exposures"`
	RecoveryNS        int64 `json:"recovery_ns"`
	CommitP50         int64 `json:"commit_p50_ns"`
	CommitP99         int64 `json:"commit_p99_ns"`
	CommitMean        int64 `json:"commit_mean_ns"`
}

// Anomaly is one watchdog finding.
type Anomaly struct {
	Window int64  `json:"window"`
	Sim    int64  `json:"sim"` // window start, simulated ns
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// TimeSeries is the exported snapshot of the whole ring.
type TimeSeries struct {
	Enabled      bool             `json:"enabled"`
	WindowNS     int64            `json:"window_ns"`
	Windows      []WindowSnapshot `json:"windows"`
	Anomalies    []Anomaly        `json:"anomalies"`
	AnomalyTotal int              `json:"anomaly_total"`
}

type winSlot struct {
	id   int64
	used bool
	c    windowCounters
}

// timeSeries is the ring + watchdog state, guarded by the Auditor's mutex.
type timeSeries struct {
	width  int64
	factor float64
	wins   []winSlot

	started   bool
	maxID     int64
	evaluated int64 // highest window id the watchdog has judged

	p99Trail []int64
	migTrail []int64

	anomalies []Anomaly
	anomTotal int

	// scratch absorbs counters for events older than the ring's horizon
	// (possible because per-node simulated clocks are only loosely aligned).
	scratch windowCounters
}

func (t *timeSeries) init(cfg Config) {
	t.width = cfg.WindowNS
	t.factor = cfg.P99Factor
	t.wins = make([]winSlot, cfg.Windows)
}

// tick returns the live counter set for the window containing sim,
// evaluating any windows that just closed.
func (t *timeSeries) tick(sim int64) *windowCounters {
	if sim < 0 {
		sim = 0
	}
	id := sim / t.width
	if !t.started {
		t.started = true
		t.maxID = id
		t.evaluated = id - 1
	} else if id > t.maxID {
		t.evalThrough(id - 1)
		t.maxID = id
	}
	s := &t.wins[id%int64(len(t.wins))]
	if s.used && s.id == id {
		return &s.c
	}
	if s.used && s.id > id {
		// A straggler event for a window the ring already evicted.
		return &t.scratch
	}
	if s.used && s.id > t.evaluated {
		t.evalWindow(s)
	}
	s.id = id
	s.used = true
	s.c = windowCounters{}
	return &s.c
}

// evalThrough runs the watchdog over every closed, still-resident window up
// to and including upTo.
func (t *timeSeries) evalThrough(upTo int64) {
	lo := t.evaluated + 1
	if floor := upTo - int64(len(t.wins)) + 1; lo < floor {
		lo = floor
	}
	for id := lo; id <= upTo; id++ {
		s := &t.wins[id%int64(len(t.wins))]
		if s.used && s.id == id {
			t.evalWindow(s)
		}
	}
	if upTo > t.evaluated {
		t.evaluated = upTo
	}
}

func pushTrail(trail []int64, v int64) []int64 {
	if len(trail) >= trailCap {
		copy(trail, trail[1:])
		trail = trail[:trailCap-1]
	}
	return append(trail, v)
}

func median(vs []int64) int64 {
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// evalWindow applies the watchdog rules to one closed window:
//
//	unlogged-exposure   UnloggedExposures > 0 (threshold; always a bug)
//	lbm-violation       Violations > 0 (threshold; always a bug)
//	commit-latency      p99 > P99Factor x trailing median p99, with at
//	                    least minCommitSamples commits in the window and
//	                    minTrailWindows qualifying windows of history
//	migration-spike     Migrations > migrationSpikeFactor x trailing
//	                    median, above migrationSpikeFloor, same history gate
func (t *timeSeries) evalWindow(s *winSlot) {
	c := &s.c
	if c.UnloggedExposures > 0 {
		t.anomaly(s, "unlogged-exposure",
			fmt.Sprintf("%d exposure(s) of unlogged updates left their failure domain", c.UnloggedExposures))
	}
	if c.Violations > 0 {
		t.anomaly(s, "lbm-violation",
			fmt.Sprintf("%d LBM violation(s) raised in this window", c.Violations))
	}
	if c.commitCount >= minCommitSamples {
		p99 := c.quantile(0.99)
		if len(t.p99Trail) >= minTrailWindows {
			if med := median(t.p99Trail); med > 0 && float64(p99) > t.factor*float64(med) {
				t.anomaly(s, "commit-latency",
					fmt.Sprintf("commit p99 %dns > %.0fx trailing median %dns", p99, t.factor, med))
			}
		}
		t.p99Trail = pushTrail(t.p99Trail, p99)
	}
	if c.Migrations >= migrationSpikeFloor && len(t.migTrail) >= minTrailWindows {
		if med := median(t.migTrail); med > 0 && c.Migrations > migrationSpikeFactor*med {
			t.anomaly(s, "migration-spike",
				fmt.Sprintf("%d migrations > %dx trailing median %d", c.Migrations, migrationSpikeFactor, med))
		}
	}
	if c.Migrations > 0 || c.Updates > 0 {
		t.migTrail = pushTrail(t.migTrail, c.Migrations)
	}
}

func (t *timeSeries) anomaly(s *winSlot, kind, detail string) {
	t.anomTotal++
	if len(t.anomalies) < maxAnomalies {
		t.anomalies = append(t.anomalies, Anomaly{
			Window: s.id, Sim: s.id * t.width, Kind: kind, Detail: detail,
		})
	}
}

func (t *timeSeries) windowCount() int {
	n := 0
	for i := range t.wins {
		if t.wins[i].used {
			n++
		}
	}
	return n
}

// snapshotLocked exports the resident windows in time order plus the
// anomaly log. Caller holds the Auditor's mutex.
func (t *timeSeries) snapshotLocked() TimeSeries {
	out := TimeSeries{
		Enabled:      true,
		WindowNS:     t.width,
		Anomalies:    append([]Anomaly(nil), t.anomalies...),
		AnomalyTotal: t.anomTotal,
	}
	for i := range t.wins {
		s := &t.wins[i]
		if !s.used {
			continue
		}
		out.Windows = append(out.Windows, WindowSnapshot{
			Window:            s.id,
			StartSim:          s.id * t.width,
			Updates:           s.c.Updates,
			Migrations:        s.c.Migrations,
			Replications:      s.c.Replications,
			Downgrades:        s.c.Downgrades,
			Invalidations:     s.c.Invalidations,
			LogForces:         s.c.LogForces,
			LockStalls:        s.c.LockStalls,
			Commits:           s.c.Commits,
			Aborts:            s.c.Aborts,
			Crashes:           s.c.Crashes,
			Violations:        s.c.Violations,
			UnloggedExposures: s.c.UnloggedExposures,
			RecoveryNS:        s.c.RecoveryNS,
			CommitP50:         s.c.quantile(0.50),
			CommitP99:         s.c.quantile(0.99),
			CommitMean:        meanOf(s.c.commitSum, s.c.commitCount),
		})
	}
	sort.Slice(out.Windows, func(i, j int) bool { return out.Windows[i].Window < out.Windows[j].Window })
	return out
}

func meanOf(sum, n int64) int64 {
	if n == 0 {
		return 0
	}
	return sum / n
}
