package debt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// appendN feeds n update appends for txn on node, starting at the node's
// next LSN, each sized bytes, at simulated time sim.
func appendN(t *Tracker, node int32, startLSN int64, n int, txn uint64, size int, sim int64) int64 {
	lsn := startLSN
	for i := 0; i < n; i++ {
		t.NoteAppend(node, lsn, 1 /* update */, txn, size, sim)
		lsn++
	}
	return lsn
}

func TestDebtAccumulatesAndAnchors(t *testing.T) {
	tr := New(Config{Nodes: 2})
	// Node 0: txn 7 writes 5 updates then commits; txn 8 writes 3 and stays
	// in flight.
	next := appendN(tr, 0, 1, 5, 7, 100, 0)
	tr.NoteAppend(0, next, typeCommit, 7, 60, 0)
	next++
	next = appendN(tr, 0, next, 3, 8, 100, 0)
	s := tr.Snapshot()
	n0 := s.Nodes[0]
	if n0.LastLSN != 9 || n0.Appends != 9 {
		t.Fatalf("node0 lastLSN=%d appends=%d, want 9/9", n0.LastLSN, n0.Appends)
	}
	// No checkpoint yet: safe point is 0, everything is debt.
	if n0.SafeLSN != 0 || n0.DebtRecords != 9 {
		t.Fatalf("node0 safe=%d debt=%d, want 0/9", n0.SafeLSN, n0.DebtRecords)
	}
	if n0.OldestActive != 7 {
		t.Fatalf("oldest active = %d, want 7 (txn 8's first record)", n0.OldestActive)
	}
	if n0.ActiveTxns != 1 {
		t.Fatalf("active txns = %d, want 1", n0.ActiveTxns)
	}
	wantBytes := int64(5*100 + 60 + 3*100)
	if n0.DebtBytes != wantBytes {
		t.Fatalf("debt bytes = %d, want %d", n0.DebtBytes, wantBytes)
	}
	if s.DebtRecords != 9 {
		t.Fatalf("global debt = %d, want 9", s.DebtRecords)
	}
}

func TestCheckpointBoundsSafePointByOldestActive(t *testing.T) {
	tr := New(Config{Nodes: 1})
	next := appendN(tr, 0, 1, 4, 5, 100, 0) // txn 5 in flight from LSN 1
	tr.NoteAppend(0, next, typeCheckpoint, 0, 60, 0)
	next++
	appendN(tr, 0, next, 2, 6, 100, 0)
	s := tr.Snapshot()
	n := s.Nodes[0]
	// Checkpoint at 5, but txn 5 is active since LSN 1: safe = min(5, 0) = 0.
	if n.CkptLSN != 5 {
		t.Fatalf("ckpt = %d, want 5", n.CkptLSN)
	}
	if n.SafeLSN != 0 {
		t.Fatalf("safe = %d, want 0 (oldest active txn anchors below the checkpoint)", n.SafeLSN)
	}
	// Commit txn 5: safe point advances to the checkpoint.
	tr.NoteAppend(0, 8, typeCommit, 5, 60, 0)
	n = tr.Snapshot().Nodes[0]
	if n.SafeLSN != 5 {
		t.Fatalf("safe after commit = %d, want 5", n.SafeLSN)
	}
	if n.DebtRecords != 3 {
		t.Fatalf("debt after commit = %d, want 3 (LSNs 6..8)", n.DebtRecords)
	}
}

func TestCrashTruncatesToStablePrefix(t *testing.T) {
	tr := New(Config{Nodes: 1})
	next := appendN(tr, 0, 1, 6, 3, 100, 0)
	tr.NoteForce(0, 4, 4, 0)
	tr.NoteCrash(0, 4, 2)
	s := tr.Snapshot().Nodes[0]
	if s.LastLSN != 4 {
		t.Fatalf("last after crash = %d, want 4", s.LastLSN)
	}
	if s.DebtBytes != 400 {
		t.Fatalf("debt bytes after crash = %d, want 400", s.DebtBytes)
	}
	// The restarted incarnation appends from LSN 5 again.
	appendN(tr, 0, next-2, 2, 9, 100, 0)
	s = tr.Snapshot().Nodes[0]
	if s.LastLSN != 6 || s.DebtRecords != 6 {
		t.Fatalf("after reappend last=%d debt=%d, want 6/6", s.LastLSN, s.DebtRecords)
	}
}

func TestDiscardRebasesBytes(t *testing.T) {
	tr := New(Config{Nodes: 1})
	appendN(tr, 0, 1, 10, 3, 100, 0)
	tr.NoteForce(0, 10, 10, 0)
	tr.NoteDiscard(0, 6) // records 1..5 reclaimed
	s := tr.Snapshot().Nodes[0]
	if s.FirstLSN != 6 || s.Discarded != 5 {
		t.Fatalf("first=%d discarded=%d, want 6/5", s.FirstLSN, s.Discarded)
	}
	// All bytes above the (now clamped) safe point are the retained 5 records.
	if s.DebtBytes != 500 {
		t.Fatalf("debt bytes after discard = %d, want 500", s.DebtBytes)
	}
}

// TestRecoveryResetsDebtAndRecalibrates is the satellite unit test: debt
// drops to ~zero immediately after a completed recovery, re-accumulates
// from there, and the estimator produces calibrated estimates.
func TestRecoveryResetsDebtAndRecalibrates(t *testing.T) {
	tr := New(Config{Nodes: 2})
	appendN(tr, 0, 1, 50, 3, 100, 0)
	appendN(tr, 1, 1, 30, 1<<48|9, 100, 0)
	if s := tr.Snapshot(); s.DebtRecords != 80 {
		t.Fatalf("pre-recovery debt = %d, want 80", s.DebtRecords)
	}
	tr.RecoveryStart(1)
	tr.RecoveryEnd(true, 60, 0, 1, 5_000_000)
	s := tr.Snapshot()
	if s.DebtRecords != 0 || s.DebtBytes != 0 {
		t.Fatalf("post-recovery debt = %d records / %d bytes, want 0/0", s.DebtRecords, s.DebtBytes)
	}
	if !s.Calibrated || s.Recoveries != 1 || s.Calibrations != 1 {
		t.Fatalf("calibration missing: %+v", s)
	}
	if s.LastSimNS != 5_000_000 {
		t.Fatalf("last sim MTTR = %d, want 5ms", s.LastSimNS)
	}
	if s.NSPerRecPar <= 0 {
		t.Fatalf("ns/record not calibrated: %v", s.NSPerRecPar)
	}
	// Re-accumulate: estimates scale with the new debt.
	appendN(tr, 0, 51, 40, 4, 100, 0)
	s = tr.Snapshot()
	if s.DebtRecords != 40 {
		t.Fatalf("re-accumulated debt = %d, want 40", s.DebtRecords)
	}
	if s.EstParNS <= 0 || s.EstSeqNS < s.EstParNS {
		t.Fatalf("estimates wrong: seq=%d par=%d", s.EstSeqNS, s.EstParNS)
	}
	want := int64(float64(40) * s.NSPerRecPar)
	if s.EstParNS != want {
		t.Fatalf("par estimate = %d, want %d", s.EstParNS, want)
	}
}

func TestFailedRecoveryDoesNotReset(t *testing.T) {
	tr := New(Config{Nodes: 1})
	appendN(tr, 0, 1, 20, 3, 100, 0)
	tr.RecoveryStart(1)
	tr.RecoveryEnd(false, 0, 0, 1, 0)
	s := tr.Snapshot()
	if s.DebtRecords != 20 {
		t.Fatalf("debt after failed recovery = %d, want 20 (no reset)", s.DebtRecords)
	}
	if s.Failures != 1 || s.Recoveries != 0 || s.Calibrated {
		t.Fatalf("failure accounting wrong: %+v", s)
	}
}

func TestGrowthWatchdogFires(t *testing.T) {
	tr := New(Config{Nodes: 1, WindowNS: 1000})
	lsn := int64(1)
	// Seed enough debt to clear the floor, then keep growing across windows
	// with no force/checkpoint/discard.
	for w := int64(0); w < growthWindows+3; w++ {
		for i := 0; i < growthFloor; i++ {
			tr.NoteAppend(0, lsn, 1, 3, 60, w*1000)
			lsn++
		}
	}
	an := tr.Anomalies()
	if len(an) != 1 {
		t.Fatalf("anomalies = %d, want exactly 1 (streak fires once)", len(an))
	}
	if an[0].Kind != "unbounded-debt-growth" {
		t.Fatalf("anomaly kind = %q", an[0].Kind)
	}
}

func TestGrowthWatchdogQuietWhenSafePointAdvances(t *testing.T) {
	tr := New(Config{Nodes: 1, WindowNS: 1000})
	lsn := int64(1)
	for w := int64(0); w < growthWindows+4; w++ {
		for i := 0; i < growthFloor; i++ {
			tr.NoteAppend(0, lsn, 1, 3, 60, w*1000)
			lsn++
		}
		// A checkpoint in every window keeps the safe point moving.
		tr.NoteAppend(0, lsn, typeCheckpoint, 0, 60, w*1000)
		lsn++
	}
	if an := tr.Anomalies(); len(an) != 0 {
		t.Fatalf("anomalies = %v, want none while checkpoints advance the safe point", an)
	}
}

func TestWriteDebtJSONShape(t *testing.T) {
	tr := New(Config{Nodes: 2})
	appendN(tr, 0, 1, 3, 7, 100, 0)
	tr.NoteDirty(4)
	tr.NoteDirty(5)
	tr.NoteClean(5)
	var buf bytes.Buffer
	if err := tr.WriteDebtJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc["enabled"] != true {
		t.Fatalf("enabled = %v", doc["enabled"])
	}
	if doc["debt_records"].(float64) != 3 {
		t.Fatalf("debt_records = %v", doc["debt_records"])
	}
	if doc["dirty_pages"].(float64) != 1 {
		t.Fatalf("dirty_pages = %v", doc["dirty_pages"])
	}
	nodes := doc["nodes"].([]any)
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(nodes))
	}

	// The nil tracker degrades like every obs surface.
	buf.Reset()
	var nilTr *Tracker
	if err := nilTr.WriteDebtJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"enabled\": false}\n" {
		t.Fatalf("nil tracker JSON = %q", got)
	}
}

func TestWriteDebtProm(t *testing.T) {
	tr := New(Config{Nodes: 2})
	appendN(tr, 0, 1, 3, 7, 100, 0)
	var buf bytes.Buffer
	if err := tr.WriteDebtProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"smdb_recovery_debt_records{node=\"0\"} 3",
		"smdb_recovery_debt_records{node=\"1\"} 0",
		"smdb_recovery_debt_bytes{node=\"0\"} 300",
		"smdb_recovery_debt_estimate_ns{kind=\"sequential\"} 0",
		"smdb_recovery_debt_dirty_pages 0",
		"smdb_recovery_debt_recoveries_total 0",
		"# TYPE smdb_recovery_debt_records gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	var nilTr *Tracker
	buf.Reset()
	if err := nilTr.WriteDebtProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil tracker prom output = %q, want empty", buf.String())
	}
}

func TestTypeAttributionAndCoverage(t *testing.T) {
	tr := New(Config{Nodes: 1})
	appendN(tr, 0, 1, 4, 3, 100, 0)
	tr.NoteAppend(0, 5, typeCommit, 3, 60, 0)
	tr.NoteAppend(0, 6, typeCheckpoint, 0, 60, 0)
	tr.NoteAppend(0, 7, 5 /* lock-acquire */, 0, 60, 0) // txn 0: unattributed
	tc := tr.TypeAttribution()
	var updates, commits int64
	for _, c := range tc {
		switch c.Type {
		case 1:
			updates = c.Records
		case typeCommit:
			commits = c.Records
		}
	}
	if updates != 4 || commits != 1 {
		t.Fatalf("type attribution updates=%d commits=%d, want 4/1", updates, commits)
	}
	s := tr.Snapshot()
	want := float64(6) / float64(7)
	if s.Coverage < want-1e-9 || s.Coverage > want+1e-9 {
		t.Fatalf("coverage = %v, want %v", s.Coverage, want)
	}
}

func TestSummaryLines(t *testing.T) {
	var nilTr *Tracker
	if got := nilTr.Summary(); got != "debt: disabled" {
		t.Fatalf("nil summary = %q", got)
	}
	tr := New(Config{Nodes: 1})
	appendN(tr, 0, 1, 2, 3, 100, 0)
	if got := tr.Summary(); !strings.Contains(got, "2 record(s)") || !strings.Contains(got, "uncalibrated") {
		t.Fatalf("summary = %q", got)
	}
}

func TestMidRunAttachResyncs(t *testing.T) {
	tr := New(Config{Nodes: 1})
	// First observed append is LSN 100 (the tracker attached mid-run).
	tr.NoteAppend(0, 100, 1, 3, 100, 0)
	tr.NoteAppend(0, 101, 1, 3, 100, 0)
	s := tr.Snapshot().Nodes[0]
	if s.FirstLSN != 100 || s.LastLSN != 101 || s.DebtRecords != 2 {
		t.Fatalf("resync wrong: %+v", s)
	}
}
