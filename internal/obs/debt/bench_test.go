package debt

import "testing"

// The nil-receiver guard benchmarks: with the debt surface disabled the
// engine's hot paths (WAL append above all) pay one pointer test and must
// not allocate. Same convention as the obs / audit / prof guard benches.

func BenchmarkNilTrackerNoteAppend(b *testing.B) {
	var t *Tracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.NoteAppend(0, int64(i), 1, 7, 100, int64(i))
	}
}

func BenchmarkNilTrackerNoteForce(b *testing.B) {
	var t *Tracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.NoteForce(0, int64(i), 1, int64(i))
	}
}

func BenchmarkNilTrackerNoteDirty(b *testing.B) {
	var t *Tracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.NoteDirty(int64(i))
	}
}

func BenchmarkLiveTrackerNoteAppend(b *testing.B) {
	t := New(Config{Nodes: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.NoteAppend(0, int64(i+1), 1, 7, 100, int64(i))
	}
}

// TestNilTrackerHooksDoNotAllocate pins the zero-allocation property (the
// benchmarks measure it; this gate fails the build if it regresses).
func TestNilTrackerHooksDoNotAllocate(t *testing.T) {
	var tr *Tracker
	n := testing.AllocsPerRun(100, func() {
		tr.NoteAppend(0, 1, 1, 7, 100, 0)
		tr.NoteForce(0, 1, 1, 0)
		tr.NoteCrash(0, 1, 0)
		tr.NoteDiscard(0, 1)
		tr.NoteDirty(1)
		tr.NoteClean(1)
		tr.RecoveryStart(1)
		tr.RecoveryEnd(true, 0, 0, 1, 0)
	})
	if n != 0 {
		t.Fatalf("nil tracker hooks allocated %v times per run, want 0", n)
	}
}
