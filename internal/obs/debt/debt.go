// Package debt implements the live recovery-debt tracker: a continuously
// maintained answer to "if a node crashed right now, how much replay work —
// and how much wall time — would restart recovery cost?".
//
// The tracker is fed by cheap hooks on the engine's WAL append/force paths
// and the buffer manager's dirty-page transitions, and keeps, per node and
// globally:
//
//   - log records and bytes accumulated since the node's last safe point
//     (the truncation low-water mark: min of the last checkpoint record and
//     the oldest active transaction's first LSN — the same anchors
//     wal.Log's checkpointing uses);
//   - the oldest-active-transaction anchor and the redo/undo spans it
//     implies (redo scans start at the last checkpoint; undo walks back to
//     the oldest in-flight transaction's first record);
//   - the dirty-page set (pages whose cached lines diverge from disk — the
//     redo working set a crash would have to reinstall);
//   - an estimated replay time, calibrated online from completed
//     recoveries: ns-per-debt-record rates on both the sequential
//     (worker-busy) and parallel (wall, speedup-adjusted) axes.
//
// A completed recovery acts as a fuzzy end-of-restart checkpoint: the
// tracker re-anchors every node's safe point at its current end of log, so
// debt drops to ~zero and re-accumulates from there. Each completed
// recovery also contributes one MTTR sample (wall and simulated) and one
// calibration sample for the estimator.
//
// Like the rest of the observability stack the tracker is nil-receiver
// safe: every hook on a nil *Tracker is a no-op that performs no allocation,
// so the engine's hot paths pay one pointer test when the surface is off.
// Hooks may be called with engine locks held (the WAL mutex, the machine
// lock inside pre-transition callbacks); the tracker only ever takes its own
// mutex and never calls back out.
//
// Package debt imports only the standard library, so the engine packages
// (wal, buffer, recovery) can call its hooks directly while obs re-exports
// its documents — the same leaf-package arrangement as obs/prof.
package debt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record-type codes mirrored from internal/wal (this package cannot import
// it); only the ones the tracker classifies specially are named.
const (
	typeCommit     = 2
	typeAbort      = 3
	typeCheckpoint = 9
	maxRecordType  = 16
)

// Defaults for Config zero values.
const (
	// DefaultWindowNS is the windowed time-series width in simulated time.
	DefaultWindowNS = int64(time.Millisecond)
	// defaultLinesPerPage scales dirty pages to dirty lines when the caller
	// does not say.
	defaultLinesPerPage = 4
	// maxWindows bounds the closed-window ring retained for the JSON doc.
	maxWindows = 64
	// maxAnomalies bounds the watchdog's anomaly log.
	maxAnomalies = 64
	// growthWindows is how many consecutive closed windows of strictly
	// rising debt with no safe-point advance trip the unbounded-growth
	// watchdog.
	growthWindows = 4
	// growthFloor is the minimum global debt (records) before the growth
	// watchdog may fire, so tiny idle systems do not alarm.
	growthFloor = 256
	// ewmaAlpha weights new calibration and MTTR samples.
	ewmaAlpha = 0.5
)

// Config sizes a Tracker.
type Config struct {
	// Nodes is the node count (per-node accounting slots). Hooks for nodes
	// beyond it grow the table on demand.
	Nodes int
	// WindowNS is the time-series window width in simulated nanoseconds
	// (<= 0 uses DefaultWindowNS).
	WindowNS int64
	// LinesPerPage scales the dirty-page count to dirty lines (<= 0 uses
	// defaultLinesPerPage).
	LinesPerPage int
}

// nodeState is one node's debt accounting.
type nodeState struct {
	// first is the oldest retained LSN (DiscardThrough advances it); last
	// is the highest appended LSN; forced the highest stable LSN.
	first, last, forced int64
	// lastCkpt is the LSN of the node's most recent checkpoint record.
	lastCkpt int64
	// safeOverride is the recovery-established safe point: a completed
	// recovery re-anchors the node here (its end of log at the time), the
	// fuzzy end-of-restart checkpoint.
	safeOverride int64
	// cum[i] is the cumulative appended bytes through LSN first+i, so the
	// bytes above any anchor are two lookups.
	cum []int64
	// active maps in-flight transactions (first record seen, no
	// commit/abort yet) to their first LSN — the per-txn truncation
	// low-water input.
	active map[uint64]int64

	// Lifetime counters.
	appends, appendBytes   int64
	forces, crashes, drops int64
	typeCount, typeBytes   [maxRecordType]int64
	unattributed, lostTail int64
}

// anchorsLocked returns the node's checkpoint anchor, oldest-active anchor,
// and effective safe point (all LSNs; the safe point is the highest LSN
// whose records are not debt).
func (n *nodeState) anchorsLocked() (ckpt, oldestActive, safe int64) {
	ckpt = n.lastCkpt
	oldestActive = 0
	for _, first := range n.active {
		if oldestActive == 0 || first < oldestActive {
			oldestActive = first
		}
	}
	txnAnchor := n.last
	if oldestActive > 0 {
		txnAnchor = oldestActive - 1
	}
	safe = ckpt
	if txnAnchor < safe {
		safe = txnAnchor
	}
	if n.safeOverride > safe {
		safe = n.safeOverride
	}
	if min := n.first - 1; safe < min {
		safe = min
	}
	if safe > n.last {
		safe = n.last
	}
	return ckpt, oldestActive, safe
}

// bytesAboveLocked returns the appended bytes of records with LSN > lsn
// still retained by the node.
func (n *nodeState) bytesAboveLocked(lsn int64) int64 {
	if n.last < n.first || len(n.cum) == 0 {
		return 0
	}
	total := n.cum[len(n.cum)-1]
	if lsn < n.first {
		return total
	}
	idx := lsn - n.first
	if idx >= int64(len(n.cum)) {
		return 0
	}
	return total - n.cum[idx]
}

// debtLocked returns the node's debt records and bytes above its safe point.
func (n *nodeState) debtLocked() (records, bytes int64) {
	_, _, safe := n.anchorsLocked()
	if n.last <= safe {
		return 0, 0
	}
	return n.last - safe, n.bytesAboveLocked(safe)
}

// window is one closed (or live) time-series window.
type window struct {
	ID      int64 `json:"id"`       // sim / width
	Appends int64 `json:"appends"`  // records appended in the window
	Bytes   int64 `json:"bytes"`    // bytes appended in the window
	Forces  int64 `json:"forces"`   // physical log forces
	SafeAdv int64 `json:"safe_adv"` // safe-point advances (ckpt, discard, recovery)
	EndDebt int64 `json:"end_debt"` // global debt records at window close
}

// Anomaly is one watchdog finding.
type Anomaly struct {
	Window int64  `json:"window"`
	Sim    int64  `json:"sim"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// recoverySample is one completed (or failed) recovery's accounting.
type recoverySample struct {
	OK        bool  `json:"ok"`
	WallNS    int64 `json:"wall_ns"`
	SimNS     int64 `json:"sim_ns"`
	BusyNS    int64 `json:"busy_ns"`
	DebtStart int64 `json:"debt_records_at_start"`
	Replayed  int64 `json:"replayed_records"`
	Workers   int   `json:"workers"`
	Down      int   `json:"down"`
}

// Tracker is the live recovery-debt tracker. A nil *Tracker is the disabled
// tracker: every method no-ops (and allocates nothing).
type Tracker struct {
	mu    sync.Mutex
	cfg   Config
	start time.Time

	nodes []nodeState
	dirty map[int64]struct{}

	// Windowed series + watchdog.
	win       *window
	closed    []window
	streak    int
	prevDebt  int64
	anomalies []Anomaly
	dropped   int64 // anomalies beyond the bound

	// Recovery / MTTR accounting.
	recovering    bool
	recoveryWall0 int64
	recoveryDebt0 int64
	recoveryDown  int
	recoveries    int64
	failures      int64
	totalMTTRNS   int64
	ewmaMTTRNS    float64
	lastRecovery  recoverySample
	haveRecovery  bool

	// Estimator calibration (ns per debt record).
	nsPerRecSeq  float64
	nsPerRecPar  float64
	calibrations int64
}

// New creates a tracker.
func New(cfg Config) *Tracker {
	if cfg.WindowNS <= 0 {
		cfg.WindowNS = DefaultWindowNS
	}
	if cfg.LinesPerPage <= 0 {
		cfg.LinesPerPage = defaultLinesPerPage
	}
	if cfg.Nodes < 0 {
		cfg.Nodes = 0
	}
	t := &Tracker{cfg: cfg, start: time.Now(), dirty: make(map[int64]struct{})}
	t.nodes = make([]nodeState, cfg.Nodes)
	for i := range t.nodes {
		t.nodes[i].first = 1
	}
	return t
}

// now returns monotonic wall nanoseconds since New.
func (t *Tracker) now() int64 { return int64(time.Since(t.start)) }

// nodeLocked returns node n's state, growing the table on demand.
func (t *Tracker) nodeLocked(n int32) *nodeState {
	for int(n) >= len(t.nodes) {
		t.nodes = append(t.nodes, nodeState{first: 1})
	}
	return &t.nodes[n]
}

// globalDebtLocked sums every node's debt records.
func (t *Tracker) globalDebtLocked() int64 {
	var total int64
	for i := range t.nodes {
		r, _ := t.nodes[i].debtLocked()
		total += r
	}
	return total
}

// tickLocked rolls the time-series window forward to the one containing sim,
// closing (and watchdog-evaluating) any window left behind. Sim clocks from
// different nodes are not globally monotonic; a sim behind the live window
// is attributed to the live window rather than rolling backwards.
func (t *Tracker) tickLocked(sim int64) *window {
	id := sim / t.cfg.WindowNS
	if t.win == nil {
		t.win = &window{ID: id}
		return t.win
	}
	if id <= t.win.ID {
		return t.win
	}
	t.closeWindowLocked(sim)
	t.win = &window{ID: id}
	return t.win
}

// closeWindowLocked finalises the live window into the ring and evaluates
// the unbounded-growth watchdog: debt strictly rising across growthWindows
// consecutive windows with no safe-point advance, above the floor.
func (t *Tracker) closeWindowLocked(sim int64) {
	w := t.win
	w.EndDebt = t.globalDebtLocked()
	t.closed = append(t.closed, *w)
	if len(t.closed) > maxWindows {
		t.closed = t.closed[len(t.closed)-maxWindows:]
	}
	if w.EndDebt > t.prevDebt && w.SafeAdv == 0 {
		t.streak++
	} else {
		t.streak = 0
	}
	t.prevDebt = w.EndDebt
	if t.streak == growthWindows && w.EndDebt >= growthFloor {
		t.noteAnomalyLocked(w.ID, sim, "unbounded-debt-growth",
			fmt.Sprintf("global debt rose for %d consecutive windows with no safe-point advance (now %d records)",
				growthWindows, w.EndDebt))
	}
}

// noteAnomalyLocked appends a watchdog finding, bounded.
func (t *Tracker) noteAnomalyLocked(winID, sim int64, kind, detail string) {
	if len(t.anomalies) >= maxAnomalies {
		t.dropped++
		return
	}
	t.anomalies = append(t.anomalies, Anomaly{Window: winID, Sim: sim, Kind: kind, Detail: detail})
}

// syncLocked re-bases a node whose append stream starts (or resumes) at an
// LSN the tracker has not accounted — a tracker attached mid-run. Lifetime
// counters survive; positional accounting restarts at lsn.
func (n *nodeState) syncLocked(lsn int64) {
	n.first = lsn
	n.last = lsn - 1
	n.cum = n.cum[:0]
}

// NoteAppend records one WAL append: node appended a record of the given
// type and encoded size, owned by txn (0 for non-transactional records), at
// simulated time sim. Called under the WAL mutex.
func (t *Tracker) NoteAppend(node int32, lsn int64, typ uint8, txn uint64, bytes int, sim int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := t.nodeLocked(node)
	if lsn != n.last+1 {
		n.syncLocked(lsn)
	}
	n.last = lsn
	prev := int64(0)
	if len(n.cum) > 0 {
		prev = n.cum[len(n.cum)-1]
	}
	n.cum = append(n.cum, prev+int64(bytes))
	n.appends++
	n.appendBytes += int64(bytes)
	if int(typ) < maxRecordType {
		n.typeCount[typ]++
		n.typeBytes[typ] += int64(bytes)
	}
	w := t.tickLocked(sim)
	w.Appends++
	w.Bytes += int64(bytes)
	switch {
	case typ == typeCheckpoint:
		n.lastCkpt = lsn
		w.SafeAdv++
	case txn != 0:
		switch typ {
		case typeCommit, typeAbort:
			delete(n.active, txn)
		default:
			if n.active == nil {
				n.active = make(map[uint64]int64)
			}
			if _, ok := n.active[txn]; !ok {
				n.active[txn] = lsn
			}
		}
	default:
		n.unattributed++
	}
	t.mu.Unlock()
}

// NoteForce records a physical log force on node through LSN forced,
// covering `records` records. Called under the WAL mutex (possibly inside a
// machine pre-transition callback).
func (t *Tracker) NoteForce(node int32, forced int64, records int, sim int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := t.nodeLocked(node)
	if forced > n.forced {
		n.forced = forced
	}
	n.forces++
	t.tickLocked(sim).Forces++
	t.mu.Unlock()
}

// NoteCrash records a node crash: the volatile log tail above stable is
// gone. Debt accounting truncates back to the stable prefix; in-flight
// transactions whose entire trace was volatile vanish with it.
func (t *Tracker) NoteCrash(node int32, stable int64, lostRecords int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := t.nodeLocked(node)
	n.crashes++
	n.lostTail += int64(lostRecords)
	if stable < n.last {
		n.last = stable
		if keep := stable - n.first + 1; keep >= 0 && keep <= int64(len(n.cum)) {
			n.cum = n.cum[:keep]
		} else if keep < 0 {
			n.cum = n.cum[:0]
			n.first = stable + 1
		}
		for txn, first := range n.active {
			if first > stable {
				delete(n.active, txn)
			}
		}
		if n.lastCkpt > stable {
			n.lastCkpt = 0
		}
		if n.safeOverride > stable {
			n.safeOverride = stable
		}
	}
	t.mu.Unlock()
}

// NoteDiscard records log truncation: node discarded every record with
// LSN < newFirst (the checkpointer reclaiming space below the low-water
// mark) — a safe-point advance by construction.
func (t *Tracker) NoteDiscard(node int32, newFirst int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := t.nodeLocked(node)
	if newFirst > n.first {
		drop := newFirst - n.first
		if drop >= int64(len(n.cum)) {
			n.cum = n.cum[:0]
		} else {
			base := n.cum[drop-1]
			kept := n.cum[drop:]
			for i := range kept {
				kept[i] -= base
			}
			n.cum = append(n.cum[:0], kept...)
		}
		n.first = newFirst
		if n.last < newFirst-1 {
			n.last = newFirst - 1
		}
		n.drops += drop
		if t.win != nil {
			t.win.SafeAdv++
		}
	}
	t.mu.Unlock()
}

// NoteDirty records that page p now diverges from its disk image.
func (t *Tracker) NoteDirty(p int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dirty[p] = struct{}{}
	t.mu.Unlock()
}

// NoteClean records that page p was flushed (or dropped) and matches disk
// again.
func (t *Tracker) NoteClean(p int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.dirty, p)
	t.mu.Unlock()
}

// RecoveryStart opens a recovery run over `down` crashed nodes, snapshotting
// the global debt the estimator is judged against.
func (t *Tracker) RecoveryStart(down int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recovering = true
	t.recoveryWall0 = t.now()
	t.recoveryDebt0 = t.globalDebtLocked()
	t.recoveryDown = down
	t.mu.Unlock()
}

// RecoveryEnd closes a recovery run. A successful recovery contributes one
// MTTR sample, one estimator calibration sample (ns per debt record, on the
// sequential/busy and parallel/wall axes), and re-anchors every node's safe
// point at its current end of log — debt drops to ~zero and re-accumulates.
// replayed is the records recovery actually processed (redo applied+skipped,
// undo applied); busyNS the summed worker busy time from the profiler (0
// when unmetered — wall time stands in); workers the recovery fan-out;
// simNS the simulated recovery duration.
func (t *Tracker) RecoveryEnd(ok bool, replayed, busyNS int64, workers int, simNS int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	wall := t.now() - t.recoveryWall0
	if !t.recovering {
		wall = 0
	}
	t.recovering = false
	sample := recoverySample{
		OK: ok, WallNS: wall, SimNS: simNS, BusyNS: busyNS,
		DebtStart: t.recoveryDebt0, Replayed: replayed,
		Workers: workers, Down: t.recoveryDown,
	}
	t.lastRecovery = sample
	t.haveRecovery = true
	if !ok {
		t.failures++
		t.mu.Unlock()
		return
	}
	t.recoveries++
	t.totalMTTRNS += wall
	if t.ewmaMTTRNS == 0 {
		t.ewmaMTTRNS = float64(wall)
	} else {
		t.ewmaMTTRNS += ewmaAlpha * (float64(wall) - t.ewmaMTTRNS)
	}
	if t.recoveryDebt0 > 0 && wall > 0 {
		busy := busyNS
		if busy <= 0 {
			busy = wall
		}
		par := float64(wall) / float64(t.recoveryDebt0)
		seq := float64(busy) / float64(t.recoveryDebt0)
		if seq < par {
			// Sequential replay can never beat the parallel wall time.
			seq = par
		}
		if t.calibrations == 0 {
			t.nsPerRecPar, t.nsPerRecSeq = par, seq
		} else {
			t.nsPerRecPar += ewmaAlpha * (par - t.nsPerRecPar)
			t.nsPerRecSeq += ewmaAlpha * (seq - t.nsPerRecSeq)
		}
		t.calibrations++
	}
	// The fuzzy end-of-restart checkpoint: re-anchor every node.
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.last > n.safeOverride {
			n.safeOverride = n.last
		}
	}
	if t.win != nil {
		t.win.SafeAdv++
	}
	t.prevDebt = t.globalDebtLocked()
	t.streak = 0
	t.mu.Unlock()
}

// NodeSnapshot is one node's debt accounting at a Snapshot instant.
type NodeSnapshot struct {
	Node         int   `json:"node"`
	FirstLSN     int64 `json:"first_lsn"`
	LastLSN      int64 `json:"last_lsn"`
	ForcedLSN    int64 `json:"forced_lsn"`
	CkptLSN      int64 `json:"ckpt_lsn"`
	OldestActive int64 `json:"oldest_active_lsn"`
	SafeLSN      int64 `json:"safe_lsn"`
	ActiveTxns   int   `json:"active_txns"`
	DebtRecords  int64 `json:"debt_records"`
	DebtBytes    int64 `json:"debt_bytes"`
	UnforcedRecs int64 `json:"unforced_records"`
	RedoSpan     int64 `json:"redo_span"`
	UndoSpan     int64 `json:"undo_span"`
	Appends      int64 `json:"appends"`
	AppendBytes  int64 `json:"append_bytes"`
	Forces       int64 `json:"forces"`
	Crashes      int64 `json:"crashes"`
	Discarded    int64 `json:"discarded_records"`
	Unattributed int64 `json:"unattributed_records"`
}

// Snapshot is the tracker's full state at an instant; the harness gates on
// its sim-deterministic fields and the JSON/Prom writers render it.
type Snapshot struct {
	Calibrated  bool           `json:"calibrated"`
	DebtRecords int64          `json:"debt_records"`
	DebtBytes   int64          `json:"debt_bytes"`
	RedoSpan    int64          `json:"redo_span"`
	UndoSpan    int64          `json:"undo_span"`
	DirtyPages  int            `json:"dirty_pages"`
	DirtyLines  int            `json:"dirty_lines"`
	EstSeqNS    int64          `json:"est_replay_seq_ns"`
	EstParNS    int64          `json:"est_replay_par_ns"`
	Speedup     float64        `json:"speedup"`
	Coverage    float64        `json:"attr_coverage"`
	Appends     int64          `json:"appends"`
	AppendBytes int64          `json:"append_bytes"`
	Nodes       []NodeSnapshot `json:"nodes"`

	Recovering   bool    `json:"recovering"`
	Recoveries   int64   `json:"recoveries"`
	Failures     int64   `json:"failed_recoveries"`
	LastWallNS   int64   `json:"last_mttr_wall_ns"`
	LastSimNS    int64   `json:"last_mttr_sim_ns"`
	AvgWallNS    int64   `json:"avg_mttr_wall_ns"`
	EwmaWallNS   int64   `json:"ewma_mttr_wall_ns"`
	NSPerRecSeq  float64 `json:"ns_per_record_seq"`
	NSPerRecPar  float64 `json:"ns_per_record_par"`
	Calibrations int64   `json:"calibration_samples"`
	Anomalies    int     `json:"anomalies"`
}

// Snapshot copies the tracker's current accounting.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Tracker) snapshotLocked() Snapshot {
	s := Snapshot{
		Calibrated:   t.calibrations > 0,
		DirtyPages:   len(t.dirty),
		DirtyLines:   len(t.dirty) * t.cfg.LinesPerPage,
		Recovering:   t.recovering,
		Recoveries:   t.recoveries,
		Failures:     t.failures,
		NSPerRecSeq:  t.nsPerRecSeq,
		NSPerRecPar:  t.nsPerRecPar,
		Calibrations: t.calibrations,
		Anomalies:    len(t.anomalies) + int(t.dropped),
	}
	if t.haveRecovery {
		s.LastWallNS = t.lastRecovery.WallNS
		s.LastSimNS = t.lastRecovery.SimNS
	}
	if t.recoveries > 0 {
		s.AvgWallNS = t.totalMTTRNS / t.recoveries
		s.EwmaWallNS = int64(t.ewmaMTTRNS)
	}
	var attributed int64
	for i := range t.nodes {
		n := &t.nodes[i]
		ckpt, oldest, safe := n.anchorsLocked()
		recs, bytes := n.debtLocked()
		ns := NodeSnapshot{
			Node: i, FirstLSN: n.first, LastLSN: n.last, ForcedLSN: n.forced,
			CkptLSN: ckpt, OldestActive: oldest, SafeLSN: safe,
			ActiveTxns: len(n.active), DebtRecords: recs, DebtBytes: bytes,
			Appends: n.appends, AppendBytes: n.appendBytes, Forces: n.forces,
			Crashes: n.crashes, Discarded: n.drops, Unattributed: n.unattributed,
		}
		if n.last > n.forced {
			ns.UnforcedRecs = n.last - n.forced
		}
		redoAnchor := ckpt
		if n.safeOverride > redoAnchor {
			redoAnchor = n.safeOverride
		}
		if n.last > redoAnchor {
			ns.RedoSpan = n.last - redoAnchor
		}
		if oldest > 0 && n.last >= oldest {
			ns.UndoSpan = n.last - oldest + 1
		}
		s.Nodes = append(s.Nodes, ns)
		s.DebtRecords += recs
		s.DebtBytes += bytes
		s.RedoSpan += ns.RedoSpan
		s.UndoSpan += ns.UndoSpan
		s.Appends += n.appends
		s.AppendBytes += n.appendBytes
		attributed += n.appends - n.unattributed
	}
	if s.Appends > 0 {
		s.Coverage = float64(attributed) / float64(s.Appends)
	} else {
		s.Coverage = 1
	}
	if t.calibrations > 0 {
		s.EstSeqNS = int64(float64(s.DebtRecords) * t.nsPerRecSeq)
		s.EstParNS = int64(float64(s.DebtRecords) * t.nsPerRecPar)
		if t.nsPerRecPar > 0 {
			s.Speedup = t.nsPerRecSeq / t.nsPerRecPar
		}
	}
	return s
}

// disabledJSON matches the rest of the obs stack's degraded surfaces.
const disabledJSON = "{\"enabled\": false}\n"

// debtDoc is the /recovery/debt (and flight-recorder debt.json) body.
type debtDoc struct {
	Enabled bool `json:"enabled"`
	Snapshot
	WindowNS     int64           `json:"window_ns"`
	LastRecovery *recoverySample `json:"last_recovery,omitempty"`
	Windows      []window        `json:"windows,omitempty"`
	AnomalyList  []Anomaly       `json:"anomaly_list,omitempty"`
}

// WriteDebtJSON writes the full debt document ({"enabled": false} on a nil
// tracker, like every degraded obs surface).
func (t *Tracker) WriteDebtJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, disabledJSON)
		return err
	}
	t.mu.Lock()
	doc := debtDoc{
		Enabled:  true,
		Snapshot: t.snapshotLocked(),
		WindowNS: t.cfg.WindowNS,
		Windows:  append([]window(nil), t.closed...),
	}
	if t.win != nil {
		live := *t.win
		live.EndDebt = t.globalDebtLocked()
		doc.Windows = append(doc.Windows, live)
	}
	doc.AnomalyList = append([]Anomaly(nil), t.anomalies...)
	if t.haveRecovery {
		lr := t.lastRecovery
		doc.LastRecovery = &lr
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteDebtProm appends the smdb_recovery_debt_* Prometheus exposition
// lines (nothing on a nil tracker).
func (t *Tracker) WriteDebtProm(w io.Writer) error {
	if t == nil {
		return nil
	}
	s := t.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_records Log records above each node's safe point (replay debt).\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_records gauge\n")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "smdb_recovery_debt_records{node=\"%d\"} %d\n", n.Node, n.DebtRecords)
	}
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_bytes Log bytes above each node's safe point.\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_bytes gauge\n")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "smdb_recovery_debt_bytes{node=\"%d\"} %d\n", n.Node, n.DebtBytes)
	}
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_safe_lsn Each node's effective safe-point LSN.\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_safe_lsn gauge\n")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "smdb_recovery_debt_safe_lsn{node=\"%d\"} %d\n", n.Node, n.SafeLSN)
	}
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_estimate_ns Estimated replay wall time for the current debt.\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_estimate_ns gauge\n")
	fmt.Fprintf(&b, "smdb_recovery_debt_estimate_ns{kind=\"sequential\"} %d\n", s.EstSeqNS)
	fmt.Fprintf(&b, "smdb_recovery_debt_estimate_ns{kind=\"parallel\"} %d\n", s.EstParNS)
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_dirty_pages Pages whose cached lines diverge from disk.\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_dirty_pages gauge\n")
	fmt.Fprintf(&b, "smdb_recovery_debt_dirty_pages %d\n", s.DirtyPages)
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_attr_coverage Fraction of appended records attributed to a transaction or system category.\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_attr_coverage gauge\n")
	fmt.Fprintf(&b, "smdb_recovery_debt_attr_coverage %.6f\n", s.Coverage)
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_recoveries_total Completed recoveries observed.\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_recoveries_total counter\n")
	fmt.Fprintf(&b, "smdb_recovery_debt_recoveries_total %d\n", s.Recoveries)
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_mttr_ns Recovery wall-time accounting.\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_mttr_ns gauge\n")
	fmt.Fprintf(&b, "smdb_recovery_debt_mttr_ns{stat=\"last\"} %d\n", s.LastWallNS)
	fmt.Fprintf(&b, "smdb_recovery_debt_mttr_ns{stat=\"ewma\"} %d\n", s.EwmaWallNS)
	fmt.Fprintf(&b, "# HELP smdb_recovery_debt_anomalies_total Watchdog anomalies (unbounded debt growth).\n")
	fmt.Fprintf(&b, "# TYPE smdb_recovery_debt_anomalies_total counter\n")
	fmt.Fprintf(&b, "smdb_recovery_debt_anomalies_total %d\n", s.Anomalies)
	_, err := io.WriteString(w, b.String())
	return err
}

// Anomalies returns a copy of the watchdog findings.
func (t *Tracker) Anomalies() []Anomaly {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Anomaly(nil), t.anomalies...)
}

// TypeAttribution returns the per-record-type lifetime counts summed over
// nodes, keyed by the numeric wal record type, sorted by type.
func (t *Tracker) TypeAttribution() []TypeCount {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var agg [maxRecordType]TypeCount
	for i := range t.nodes {
		for ty := range agg {
			agg[ty].Type = uint8(ty)
			agg[ty].Records += t.nodes[i].typeCount[ty]
			agg[ty].Bytes += t.nodes[i].typeBytes[ty]
		}
	}
	out := make([]TypeCount, 0, maxRecordType)
	for _, c := range agg {
		if c.Records > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// TypeCount is one record type's lifetime attribution.
type TypeCount struct {
	Type    uint8 `json:"type"`
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// Summary renders the end-of-run one-liner the commands print.
func (t *Tracker) Summary() string {
	if t == nil {
		return "debt: disabled"
	}
	s := t.Snapshot()
	est := "uncalibrated"
	if s.Calibrated {
		est = fmt.Sprintf("est replay %s (seq %s)", formatNS(s.EstParNS), formatNS(s.EstSeqNS))
	}
	return fmt.Sprintf("debt: %d record(s) / %d byte(s) over %d node(s), %d dirty page(s), %s; %d recovery(ies), last MTTR %s, %d anomaly(ies)",
		s.DebtRecords, s.DebtBytes, len(s.Nodes), s.DirtyPages, est,
		s.Recoveries, formatNS(s.LastWallNS), s.Anomalies)
}

// formatNS renders a duration compactly (mirrors obs.FormatNS, which this
// leaf package cannot import).
func formatNS(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
