package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res.StatusCode, string(body), res.Header.Get("Content-Type")
}

func TestHTTPHandlerEndpoints(t *testing.T) {
	h := NewHTTPHandler(goldenObserver(), stubGraph{}, stubAudit{}, stubProf{}, nil, nil)

	code, body, _ := get(t, h, "/healthz")
	if code != 200 || !strings.HasPrefix(body, "ok events=") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, ctype := get(t, h, "/metrics")
	if code != 200 || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics = %d content-type %q", code, ctype)
	}
	if !strings.Contains(body, `smdb_events_total{kind="crash"} 1`) {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, body, ctype = get(t, h, "/trace")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/trace = %d %q %q", code, ctype, body[:min(len(body), 80)])
	}

	code, body, ctype = get(t, h, "/deps")
	if code != 200 || !strings.Contains(ctype, "graphviz") || !strings.Contains(body, "digraph recovery_deps") {
		t.Errorf("/deps = %d %q %q", code, ctype, body)
	}
	code, body, ctype = get(t, h, "/deps?format=json")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"txns"`) {
		t.Errorf("/deps?format=json = %d %q %q", code, ctype, body)
	}

	code, body, ctype = get(t, h, "/audit/txn")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"id":""`) {
		t.Errorf("/audit/txn = %d %q %q", code, ctype, body)
	}
	code, body, _ = get(t, h, "/audit/txn/t0.3")
	if code != 200 || !strings.Contains(body, `"id":"t0.3"`) {
		t.Errorf("/audit/txn/t0.3 = %d %q", code, body)
	}
	code, body, ctype = get(t, h, "/audit/violations")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"violations"`) {
		t.Errorf("/audit/violations = %d %q %q", code, ctype, body)
	}
	code, body, ctype = get(t, h, "/timeseries")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"windows"`) {
		t.Errorf("/timeseries = %d %q %q", code, ctype, body)
	}

	code, body, ctype = get(t, h, "/prof/stripes")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"stripes"`) {
		t.Errorf("/prof/stripes = %d %q %q", code, ctype, body)
	}
	code, body, ctype = get(t, h, "/prof/workers")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"phases"`) {
		t.Errorf("/prof/workers = %d %q %q", code, ctype, body)
	}
	code, body, _ = get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "smdb_prof_stripe_acquires_total") {
		t.Errorf("/metrics does not append profiler lines: %d\n%s", code, body)
	}

	code, _, _ = get(t, h, "/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	code, body, _ = get(t, h, "/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	code, _, _ = get(t, h, "/nope")
	if code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestHTTPHandlerNilSources(t *testing.T) {
	h := NewHTTPHandler(nil, nil, nil, nil, nil, nil)
	code, body, _ := get(t, h, "/deps")
	if code != 200 || !strings.Contains(body, "no dependency tracker attached") {
		t.Errorf("/deps with nil graph = %d %q", code, body)
	}
	code, _, _ = get(t, h, "/healthz")
	if code != 200 {
		t.Errorf("/healthz with nil observer = %d", code)
	}
	code, _, _ = get(t, h, "/metrics")
	if code != 200 {
		t.Errorf("/metrics with nil observer = %d", code)
	}
	for _, path := range []string{"/audit/txn", "/audit/txn/t0.1", "/audit/violations", "/timeseries", "/prof/stripes", "/prof/workers", "/recovery/debt"} {
		code, body, _ := get(t, h, path)
		if code != 200 || !strings.Contains(body, `"enabled": false`) {
			t.Errorf("%s with nil source = %d %q", path, code, body)
		}
	}
}

func TestServeHTTPLive(t *testing.T) {
	s, err := ServeHTTP("127.0.0.1:0", goldenObserver(), nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	resp, err := http.Get("http://" + s.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(string(body), "ok events=") {
		t.Errorf("live /healthz = %d %q", resp.StatusCode, body)
	}
	s.Shutdown()
	s.Shutdown() // idempotent
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// stubWf is a WaterfallSource standing in for the waterfall recorder (same
// import constraint as stubGraph: obs cannot import its own subpackage).
type stubWf struct{}

func (stubWf) WriteSlowJSON(w io.Writer, max int) error {
	_, err := fmt.Fprintf(w, "{\"enabled\":true,\"slow\":[],\"max\":%d}\n", max)
	return err
}
func (stubWf) WriteTxnJSON(w io.Writer, txn int64) error {
	_, err := fmt.Fprintf(w, "{\"enabled\":true,\"txn\":%d}\n", txn)
	return err
}
func (stubWf) WriteWaterfallChrome(w io.Writer) error {
	_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
	return err
}
func (stubWf) WriteWaterfallProm(w io.Writer) error {
	_, err := io.WriteString(w, "# TYPE smdb_txn_wait_ns counter\nsmdb_txn_wait_ns{cause=\"compute\"} 0\n")
	return err
}
func (stubWf) WriteWaterfallJSON(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true}\n")
	return err
}
func (stubWf) WriteRecoveryProgress(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true,\"phases\":[]}\n")
	return err
}

// stubDebt is a DebtSource standing in for the recovery-debt tracker (same
// import constraint as stubGraph: obs cannot import its own subpackage).
type stubDebt struct{}

func (stubDebt) WriteDebtJSON(w io.Writer) error {
	_, err := io.WriteString(w, "{\"enabled\":true,\"debt_records\":7}\n")
	return err
}
func (stubDebt) WriteDebtProm(w io.Writer) error {
	_, err := io.WriteString(w, "# TYPE smdb_recovery_debt_records gauge\nsmdb_recovery_debt_records 7\n")
	return err
}

// TestEndpointIndexComplete pins the generated index to the registrations:
// every endpoint the mux registers must appear in the "/" body and must not
// 404 — the drift the hand-maintained index used to accumulate.
func TestEndpointIndexComplete(t *testing.T) {
	h := NewHTTPHandler(goldenObserver(), stubGraph{}, stubAudit{}, stubProf{}, stubWf{}, stubDebt{})
	code, body, _ := get(t, h, "/")
	if code != 200 {
		t.Fatalf("index = %d", code)
	}
	eps := Endpoints()
	if len(eps) < 15 {
		t.Fatalf("only %d registered endpoints — registration enumeration broken: %v", len(eps), eps)
	}
	for _, pat := range eps {
		if !strings.Contains(body, strings.TrimSuffix(pat, "/")) {
			t.Errorf("index body missing registered endpoint %s:\n%s", pat, body)
		}
		switch pat {
		case "/debug/pprof/profile", "/debug/pprof/trace":
			// These block sampling for seconds; presence in the index plus the
			// shared registration path is the guarantee.
			continue
		}
		if code, _, _ := get(t, h, pat); code == 404 {
			t.Errorf("registered endpoint %s returns 404", pat)
		}
	}
}

func TestWaterfallEndpoints(t *testing.T) {
	h := NewHTTPHandler(goldenObserver(), nil, nil, nil, stubWf{}, nil)

	code, body, ctype := get(t, h, "/slow?max=5")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"max":5`) {
		t.Errorf("/slow?max=5 = %d %q %q", code, ctype, body)
	}
	code, body, _ = get(t, h, "/slow/trace")
	if code != 200 || !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/slow/trace = %d %q", code, body)
	}
	// Both txn id spellings resolve to the packed integer.
	code, body, _ = get(t, h, "/slow/t0.3")
	if code != 200 || !strings.Contains(body, `"txn":3`) {
		t.Errorf("/slow/t0.3 = %d %q", code, body)
	}
	code, body, _ = get(t, h, "/slow/281474976710660")
	if code != 200 || !strings.Contains(body, `"txn":281474976710660`) {
		t.Errorf("/slow/<packed> = %d %q", code, body)
	}
	code, _, _ = get(t, h, "/slow/bogus")
	if code != 400 {
		t.Errorf("/slow/bogus = %d, want 400", code)
	}
	code, body, _ = get(t, h, "/recovery/progress")
	if code != 200 || !strings.Contains(body, `"phases"`) {
		t.Errorf("/recovery/progress = %d %q", code, body)
	}
	code, body, _ = get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "smdb_txn_wait_ns") {
		t.Errorf("/metrics does not append waterfall lines: %d\n%s", code, body)
	}

	// Without a recorder the waterfall endpoints degrade, not 404.
	h = NewHTTPHandler(nil, nil, nil, nil, nil, nil)
	for _, path := range []string{"/slow", "/slow/trace", "/slow/t0.1", "/recovery/progress"} {
		code, body, _ := get(t, h, path)
		if code != 200 || !strings.Contains(body, `"enabled": false`) {
			t.Errorf("%s with nil recorder = %d %q", path, code, body)
		}
	}
}

func TestDebtEndpoint(t *testing.T) {
	h := NewHTTPHandler(goldenObserver(), nil, nil, nil, nil, stubDebt{})

	code, body, ctype := get(t, h, "/recovery/debt")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"debt_records":7`) {
		t.Errorf("/recovery/debt = %d %q %q", code, ctype, body)
	}
	code, body, _ = get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "smdb_recovery_debt_records") {
		t.Errorf("/metrics does not append debt lines: %d\n%s", code, body)
	}

	// Without a tracker the endpoint degrades, not 404.
	h = NewHTTPHandler(nil, nil, nil, nil, nil, nil)
	code, body, _ = get(t, h, "/recovery/debt")
	if code != 200 || !strings.Contains(body, `"enabled": false`) {
		t.Errorf("/recovery/debt with nil tracker = %d %q", code, body)
	}
}
