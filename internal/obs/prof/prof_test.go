package prof

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// feedPair builds a deterministic profile by calling the same hot-path
// methods the machine and the recovery pipeline call, with pinned
// nanosecond values.
func feedPair() *Pair {
	p := NewPair(8)
	// Stripe 3: hot and contended. Stripe 5: busy but uncontended.
	for i := 0; i < 10; i++ {
		p.Stripes.LockAcquired(3, i%2 == 0, 1000)
		p.Stripes.LockHeld(3, 500)
	}
	for i := 0; i < 20; i++ {
		p.Stripes.LockAcquired(5, false, 0)
		p.Stripes.LockHeld(5, 100)
	}
	p.Stripes.CondWait(3, 7000)
	p.Stripes.Wakeup(3)
	p.Stripes.Wakeup(5)

	// One redo-scan fan-out across 2 workers, then its merge.
	meters := []TaskMeter{
		{BusyNS: 6000, Tasks: 3, Records: 30, Bytes: 300},
		{BusyNS: 4000, Tasks: 2, Records: 20, Bytes: 200},
	}
	p.Workers.RecordFanout("redo-scan", 8000, meters)
	p.Workers.AddMerge("redo-scan", 1500)
	// A second, single-worker fan-out of another phase.
	p.Workers.RecordFanout("lock-rebuild", 2000, []TaskMeter{{BusyNS: 2000, Tasks: 4, Records: 8}})
	return p
}

func TestStripeCountersAccumulate(t *testing.T) {
	p := feedPair()
	s := p.Stripes.Snapshot()
	c3 := s.Stripes[3]
	if c3.Acquires != 10 || c3.Contended != 5 || c3.WaitNS != 5000 || c3.HoldNS != 5000 {
		t.Errorf("stripe 3 = %+v", c3)
	}
	if c3.CondWaits != 1 || c3.CondWaitNS != 7000 || c3.Wakeups != 1 {
		t.Errorf("stripe 3 condvar counters = %+v", c3)
	}
	if s.Active() != 2 {
		t.Errorf("active = %d, want 2", s.Active())
	}
	tot := s.Totals()
	if tot.Acquires != 30 || tot.Contended != 5 || tot.HoldNS != 7000 {
		t.Errorf("totals = %+v", tot)
	}

	top := s.TopContended(5)
	if len(top) != 2 || top[0].Stripe != 3 || top[1].Stripe != 5 {
		t.Errorf("TopContended = %+v", top)
	}
	// Delta across an idle interval is empty.
	d := p.Stripes.Snapshot().Sub(s)
	if d.Totals().Acquires != 0 || d.Active() != 0 {
		t.Errorf("idle delta = %+v", d.Totals())
	}
}

func TestWorkerProfAttribution(t *testing.T) {
	p := feedPair()
	ws := p.Workers.Snapshot()
	if len(ws.Phases) != 2 || ws.Phases[0].Phase != "redo-scan" || ws.Phases[1].Phase != "lock-rebuild" {
		t.Fatalf("phases = %+v", ws.Phases)
	}
	rs := ws.Phases[0]
	if rs.Fanouts != 1 || rs.WallNS != 8000 || rs.MergeNS != 1500 || rs.WorkerWallNS != 16000 {
		t.Errorf("redo-scan = %+v", rs)
	}
	// Worker 0: busy 6000, wait 8000−6000. Worker 1: busy 4000, wait 4000.
	if rs.Workers[0].WaitNS != 2000 || rs.Workers[1].WaitNS != 4000 {
		t.Errorf("worker waits = %+v", rs.Workers)
	}
	// busy/workerWall = 10000/16000 → wall-scale busy 5000 of 8000.
	if got := rs.BusyWallNS(); got != 5000 {
		t.Errorf("BusyWallNS = %d, want 5000", got)
	}
	if ws.TotalWallNS() != 10000 || ws.TotalMergeNS() != 1500 {
		t.Errorf("totals: wall %d merge %d", ws.TotalWallNS(), ws.TotalMergeNS())
	}

	// Sub drops idle phases and subtracts active ones.
	prev := ws
	p.Workers.RecordFanout("redo-scan", 1000, []TaskMeter{{BusyNS: 1000, Tasks: 1}})
	d := p.Workers.Snapshot().Sub(prev)
	if len(d.Phases) != 1 || d.Phases[0].Phase != "redo-scan" || d.Phases[0].WallNS != 1000 {
		t.Errorf("delta = %+v", d.Phases)
	}
}

func TestNilProfilerIsSafeAndFree(t *testing.T) {
	var sp *StripeProf
	var wp *WorkerProf
	var tm *TaskMeter
	var pair *Pair
	if n := testing.AllocsPerRun(100, func() {
		sp.LockAcquired(1, true, 10)
		sp.LockHeld(1, 10)
		sp.CondWait(1, 10)
		sp.Wakeup(1)
		tm.AddTask(5)
		tm.AddRecords(1)
		tm.AddBytes(1)
		wp.RecordFanout("x", 1, nil)
		wp.AddMerge("x", 1)
	}); n != 0 {
		t.Errorf("nil profiler hot path allocates %.1f/op", n)
	}
	if s := sp.Snapshot(); len(s.Stripes) != 0 {
		t.Error("nil StripeProf snapshot not empty")
	}
	if s := wp.Snapshot(); len(s.Phases) != 0 {
		t.Error("nil WorkerProf snapshot not empty")
	}
	for name, fn := range map[string]func(*Pair, *bytes.Buffer) error{
		"stripes": func(p *Pair, b *bytes.Buffer) error { return p.WriteProfStripes(b) },
		"workers": func(p *Pair, b *bytes.Buffer) error { return p.WriteProfWorkers(b) },
		"json":    func(p *Pair, b *bytes.Buffer) error { return p.WriteProfJSON(b) },
	} {
		var buf bytes.Buffer
		if err := fn(pair, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), `"enabled": false`) {
			t.Errorf("nil pair %s = %q", name, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := pair.WriteProfProm(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil pair prom = %q, %v", buf.String(), err)
	}
	if got := pair.Report(5); got != "profiler disabled\n" {
		t.Errorf("nil pair report = %q", got)
	}
}

// Out-of-range stripe indices must be ignored, not panic: the machine sizes
// the profiler at attach time and the two can disagree in tests.
func TestStripeBoundsIgnored(t *testing.T) {
	p := NewStripeProf(4)
	p.LockAcquired(-1, true, 1)
	p.LockAcquired(4, true, 1)
	p.LockHeld(99, 1)
	p.CondWait(-5, 1)
	p.Wakeup(1000)
	if got := p.Snapshot().Totals().Acquires; got != 0 {
		t.Errorf("out-of-range ops counted: %+v", got)
	}
}

func TestWriteProfStripesJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := feedPair().WriteProfStripes(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Enabled      bool `json:"enabled"`
		Stripes      int  `json:"stripes"`
		Active       int  `json:"active"`
		Totals       StripeCounters
		TopContended []StripeCounters `json:"top_contended"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if !doc.Enabled || doc.Stripes != 8 || doc.Active != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if len(doc.TopContended) != 2 || doc.TopContended[0].Stripe != 3 {
		t.Errorf("top = %+v", doc.TopContended)
	}
}

func TestWriteProfWorkersJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := feedPair().WriteProfWorkers(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Enabled bool        `json:"enabled"`
		Phases  []PhaseProf `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if !doc.Enabled || len(doc.Phases) != 2 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestWriteProfJSONCombined(t *testing.T) {
	var buf bytes.Buffer
	if err := feedPair().WriteProfJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"enabled": true`, `"stripes"`, `"workers"`, `"top_contended"`, `"redo-scan"`} {
		if !strings.Contains(s, want) {
			t.Errorf("prof.json missing %s:\n%s", want, s)
		}
	}
}

func TestWriteProfProm(t *testing.T) {
	var buf bytes.Buffer
	if err := feedPair().WriteProfProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE smdb_prof_stripe_acquires_total counter",
		"smdb_prof_stripe_acquires_total 30",
		"smdb_prof_stripe_contended_total 5",
		"smdb_prof_stripe_wait_ns_total 5000",
		"smdb_prof_stripe_cond_wait_ns_total 7000",
		`smdb_prof_worker_busy_ns_total{phase="redo-scan"} 10000`,
		`smdb_prof_worker_wait_ns_total{phase="redo-scan"} 6000`,
		`smdb_prof_worker_merge_ns_total{phase="redo-scan"} 1500`,
		`smdb_prof_worker_tasks_total{phase="lock-rebuild"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Every sample line must be Prometheus text exposition shaped.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// The text report is golden-tested inline: the data is hand-fed, so the
// rendering is byte-stable.
func TestReportGolden(t *testing.T) {
	got := feedPair().Report(5)
	want := `contention & cost-attribution profile
top-5 contended stripes (of 8, 2 active):
  stripe  acquires  contended  wait   hold   cond-waits  cond-wait  wakeups
  3       10        5          5.0µs  5.0µs  1           7.0µs      1
  5       20        0          0ns    2.0µs  0           0ns        1
per-phase fan-out profile:
  phase         fanouts  wall   merge  workers  busy    wait   tasks  records  bytes
  redo-scan     1        8.0µs  1.5µs  2        10.0µs  6.0µs  5      50       500
  lock-rebuild  1        2.0µs  0ns    1        2.0µs   0ns    4      8        0
per-worker totals (all phases):
  worker  busy   wait   tasks  records  bytes
  w0      8.0µs  2.0µs  7      38       300
  w1      4.0µs  4.0µs  2      20       200
`
	if got != want {
		t.Errorf("report differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFormatNS(t *testing.T) {
	for _, c := range []struct {
		ns   int64
		want string
	}{{999, "999ns"}, {1500, "1.5µs"}, {2_300_000, "2.3ms"}, {4_560_000_000, "4.56s"}} {
		if got := FormatNS(c.ns); got != c.want {
			t.Errorf("FormatNS(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// BenchmarkStripeProfHotPath measures the enabled profiler's per-acquire
// cost: a handful of atomic adds, no allocation.
func BenchmarkStripeProfHotPath(b *testing.B) {
	p := NewStripeProf(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.LockAcquired(i&127, false, 0)
		p.LockHeld(i&127, 10)
	}
}

// BenchmarkNilStripeProfHotPath is the disabled-profiler guard: the nil
// receiver path must stay allocation-free and branch-cheap.
func BenchmarkNilStripeProfHotPath(b *testing.B) {
	var p *StripeProf
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.LockAcquired(i&127, false, 0)
		p.LockHeld(i&127, 10)
	}
}
