// Package prof is the contention & cost-attribution profiler: per-stripe
// lock counters for the simulated machine's striped line directory, and
// per-worker per-phase cost accounting for the parallel restart-recovery
// pipeline. It is always compiled and off by default — every hot-path method
// is nil-receiver safe and allocation-free, so callers hold a possibly-nil
// pointer and call unconditionally.
//
// The package deliberately imports nothing but the standard library (and no
// other internal package): internal/machine and internal/recovery both
// import it, and internal/obs exposes it over HTTP/flight dumps through the
// obs.ProfSource interface, so any inward dependency would cycle. Phases are
// keyed by their obs.Phase string form for the same reason.
package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// base pins the profiler's monotonic epoch at process start.
var base = time.Now()

// Now returns monotonic nanoseconds since process start. It is the only
// clock the profiler uses: cheap (one monotonic read, no allocation) and
// immune to wall-clock steps.
func Now() int64 { return int64(time.Since(base)) }

// stripeBlock is one stripe's counter block. Each block is padded to 128
// bytes (two cache lines on common x86/arm parts, covering the spatial
// prefetcher's pair granularity) so that two cores hammering adjacent
// stripes never false-share a line: the whole point of striping the
// directory lock is independence, and the profiler must not quietly couple
// the stripes back together.
type stripeBlock struct {
	acquires   atomic.Int64
	contended  atomic.Int64
	waitNS     atomic.Int64
	holdNS     atomic.Int64
	condWaits  atomic.Int64
	condWaitNS atomic.Int64
	wakeups    atomic.Int64
	_          [128 - 7*8]byte
}

// StripeProf holds per-stripe lock-contention counters. A nil *StripeProf
// is the disabled profiler: all methods no-op.
type StripeProf struct {
	blocks []stripeBlock
}

// NewStripeProf allocates counters for the given stripe count.
func NewStripeProf(stripes int) *StripeProf {
	return &StripeProf{blocks: make([]stripeBlock, stripes)}
}

// LockAcquired records one stripe-mutex acquisition; contended acquisitions
// additionally carry the nanoseconds spent blocked.
func (p *StripeProf) LockAcquired(si int, contended bool, waitNS int64) {
	if p == nil || si < 0 || si >= len(p.blocks) {
		return
	}
	b := &p.blocks[si]
	b.acquires.Add(1)
	if contended {
		b.contended.Add(1)
		b.waitNS.Add(waitNS)
	}
}

// LockHeld charges a completed critical section's hold time to the stripe.
func (p *StripeProf) LockHeld(si int, holdNS int64) {
	if p == nil || si < 0 || si >= len(p.blocks) {
		return
	}
	p.blocks[si].holdNS.Add(holdNS)
}

// CondWait records one condvar sleep on the stripe and its duration.
func (p *StripeProf) CondWait(si int, waitNS int64) {
	if p == nil || si < 0 || si >= len(p.blocks) {
		return
	}
	b := &p.blocks[si]
	b.condWaits.Add(1)
	b.condWaitNS.Add(waitNS)
}

// Wakeup records one broadcast on the stripe's condvar.
func (p *StripeProf) Wakeup(si int) {
	if p == nil || si < 0 || si >= len(p.blocks) {
		return
	}
	p.blocks[si].wakeups.Add(1)
}

// StripeCounters is one stripe's counter snapshot (Stripe = -1 for totals).
type StripeCounters struct {
	Stripe     int   `json:"stripe"`
	Acquires   int64 `json:"acquires"`
	Contended  int64 `json:"contended"`
	WaitNS     int64 `json:"wait_ns"`
	HoldNS     int64 `json:"hold_ns"`
	CondWaits  int64 `json:"cond_waits"`
	CondWaitNS int64 `json:"cond_wait_ns"`
	Wakeups    int64 `json:"wakeups"`
}

func (c *StripeCounters) sub(prev StripeCounters) {
	c.Acquires -= prev.Acquires
	c.Contended -= prev.Contended
	c.WaitNS -= prev.WaitNS
	c.HoldNS -= prev.HoldNS
	c.CondWaits -= prev.CondWaits
	c.CondWaitNS -= prev.CondWaitNS
	c.Wakeups -= prev.Wakeups
}

// StripeSnapshot is a point-in-time copy of every stripe's counters,
// indexed by stripe id.
type StripeSnapshot struct {
	Stripes []StripeCounters `json:"stripes"`
}

// Snapshot copies the live counters. Safe to call concurrently with the hot
// paths; each counter is read atomically (the snapshot as a whole is not a
// consistent cut, which is fine for profiling).
func (p *StripeProf) Snapshot() StripeSnapshot {
	if p == nil {
		return StripeSnapshot{}
	}
	out := StripeSnapshot{Stripes: make([]StripeCounters, len(p.blocks))}
	for i := range p.blocks {
		b := &p.blocks[i]
		out.Stripes[i] = StripeCounters{
			Stripe:     i,
			Acquires:   b.acquires.Load(),
			Contended:  b.contended.Load(),
			WaitNS:     b.waitNS.Load(),
			HoldNS:     b.holdNS.Load(),
			CondWaits:  b.condWaits.Load(),
			CondWaitNS: b.condWaitNS.Load(),
			Wakeups:    b.wakeups.Load(),
		}
	}
	return out
}

// Sub returns the per-stripe delta s − prev (an interval's worth of
// counters, e.g. across one recovery).
func (s StripeSnapshot) Sub(prev StripeSnapshot) StripeSnapshot {
	out := StripeSnapshot{Stripes: make([]StripeCounters, len(s.Stripes))}
	copy(out.Stripes, s.Stripes)
	for i := range out.Stripes {
		if i < len(prev.Stripes) {
			out.Stripes[i].sub(prev.Stripes[i])
		}
	}
	return out
}

// Totals sums the snapshot across stripes (Stripe = -1 in the result).
func (s StripeSnapshot) Totals() StripeCounters {
	t := StripeCounters{Stripe: -1}
	for i := range s.Stripes {
		c := &s.Stripes[i]
		t.Acquires += c.Acquires
		t.Contended += c.Contended
		t.WaitNS += c.WaitNS
		t.HoldNS += c.HoldNS
		t.CondWaits += c.CondWaits
		t.CondWaitNS += c.CondWaitNS
		t.Wakeups += c.Wakeups
	}
	return t
}

// Active counts stripes with at least one acquisition.
func (s StripeSnapshot) Active() int {
	n := 0
	for i := range s.Stripes {
		if s.Stripes[i].Acquires > 0 {
			n++
		}
	}
	return n
}

// TopContended returns the k most contended touched stripes, ordered by
// contended acquisitions, then cumulative wait, then total acquisitions
// (so a contention-free run still names its hottest stripes).
func (s StripeSnapshot) TopContended(k int) []StripeCounters {
	var touched []StripeCounters
	for i := range s.Stripes {
		if s.Stripes[i].Acquires > 0 {
			touched = append(touched, s.Stripes[i])
		}
	}
	sort.Slice(touched, func(i, j int) bool {
		a, b := touched[i], touched[j]
		if a.Contended != b.Contended {
			return a.Contended > b.Contended
		}
		if a.WaitNS != b.WaitNS {
			return a.WaitNS > b.WaitNS
		}
		if a.Acquires != b.Acquires {
			return a.Acquires > b.Acquires
		}
		return a.Stripe < b.Stripe
	})
	if len(touched) > k {
		touched = touched[:k]
	}
	return touched
}

// TaskMeter accumulates one worker's costs during a fan-out. The fan-out
// driver owns BusyNS/Tasks via AddTask; the task body reports its data
// volume via AddRecords/AddBytes. A nil *TaskMeter (profiler off) no-ops.
type TaskMeter struct {
	BusyNS  int64
	Tasks   int64
	Records int64
	Bytes   int64
}

// AddTask charges one completed task's duration to the worker.
func (t *TaskMeter) AddTask(busyNS int64) {
	if t == nil {
		return
	}
	t.BusyNS += busyNS
	t.Tasks++
}

// AddRecords counts records (redo log records, lock entries, tag-scan hits)
// processed by the current task.
func (t *TaskMeter) AddRecords(n int) {
	if t == nil {
		return
	}
	t.Records += int64(n)
}

// AddBytes counts payload bytes moved by the current task.
func (t *TaskMeter) AddBytes(n int) {
	if t == nil {
		return
	}
	t.Bytes += int64(n)
}

// WorkerCell is one worker's accumulated cost within one phase.
type WorkerCell struct {
	Worker  int   `json:"worker"`
	BusyNS  int64 `json:"busy_ns"`
	WaitNS  int64 `json:"wait_ns"`
	Tasks   int64 `json:"tasks"`
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
}

func (c *WorkerCell) sub(prev WorkerCell) {
	c.BusyNS -= prev.BusyNS
	c.WaitNS -= prev.WaitNS
	c.Tasks -= prev.Tasks
	c.Records -= prev.Records
	c.Bytes -= prev.Bytes
}

// PhaseProf is one pipeline phase's accumulated fan-out profile.
// WorkerWallNS is Σ over fan-outs of (workers × wall): with it, the summed
// worker busy time can be rescaled to wall-clock terms even when different
// fan-outs of the same phase ran with different worker counts.
type PhaseProf struct {
	Phase        string       `json:"phase"`
	Fanouts      int64        `json:"fanouts"`
	WallNS       int64        `json:"wall_ns"`
	MergeNS      int64        `json:"merge_ns"`
	WorkerWallNS int64        `json:"worker_wall_ns"`
	Workers      []WorkerCell `json:"workers"`
}

// BusyNS sums worker busy time across the phase.
func (p PhaseProf) BusyNS() int64 {
	var busy int64
	for i := range p.Workers {
		busy += p.Workers[i].BusyNS
	}
	return busy
}

// BusyWallNS rescales the summed worker busy time to the wall-clock axis:
// WallNS × (Σ busy / WorkerWallNS). The complement (WallNS − BusyWallNS)
// is the phase's wall-scale idle (load-imbalance) time.
func (p PhaseProf) BusyWallNS() int64 {
	if p.WorkerWallNS <= 0 {
		return p.BusyNS()
	}
	return int64(float64(p.WallNS) * float64(p.BusyNS()) / float64(p.WorkerWallNS))
}

// PhaseBalance is one phase's worker load-balance summary: how evenly the
// fan-out's busy time spread across workers, and what fraction of the
// phase's worker-seconds were spent idle (queue-empty or parked at the end
// barrier). Experiment E23 reports these before/after the work-stealing
// chunker to show where the parallel speedup comes from.
type PhaseBalance struct {
	Phase      string `json:"phase"`
	Workers    int    `json:"workers"`
	Tasks      int64  `json:"tasks"`
	MeanBusyNS int64  `json:"mean_busy_ns"`
	MinBusyNS  int64  `json:"min_busy_ns"`
	MaxBusyNS  int64  `json:"max_busy_ns"`
	// Imbalance is max/mean worker busy time: 1.0 is a perfectly level
	// fan-out, W (the worker count) is one worker doing everything.
	Imbalance float64 `json:"imbalance"`
	// IdleFraction is Σwait / (Σbusy + Σwait): the share of worker-time the
	// phase's critical path left on the table.
	IdleFraction float64 `json:"idle_fraction"`
}

// Balance summarizes the phase's per-worker busy/idle spread.
func (p PhaseProf) Balance() PhaseBalance {
	b := PhaseBalance{Phase: p.Phase, Workers: len(p.Workers)}
	if len(p.Workers) == 0 {
		return b
	}
	var busy, wait int64
	b.MinBusyNS = p.Workers[0].BusyNS
	for i := range p.Workers {
		c := &p.Workers[i]
		busy += c.BusyNS
		wait += c.WaitNS
		b.Tasks += c.Tasks
		if c.BusyNS < b.MinBusyNS {
			b.MinBusyNS = c.BusyNS
		}
		if c.BusyNS > b.MaxBusyNS {
			b.MaxBusyNS = c.BusyNS
		}
	}
	b.MeanBusyNS = busy / int64(len(p.Workers))
	if b.MeanBusyNS > 0 {
		b.Imbalance = float64(b.MaxBusyNS) / float64(b.MeanBusyNS)
	}
	if busy+wait > 0 {
		b.IdleFraction = float64(wait) / float64(busy+wait)
	}
	return b
}

// Balances summarizes every phase in the snapshot, skipping phases that
// recorded no worker activity.
func (s WorkerSnapshot) Balances() []PhaseBalance {
	var out []PhaseBalance
	for _, p := range s.Phases {
		if len(p.Workers) == 0 {
			continue
		}
		out = append(out, p.Balance())
	}
	return out
}

type phaseAgg struct {
	prof PhaseProf
}

// WorkerProf accumulates per-worker per-phase cost attribution for the
// parallel recovery pipeline. A nil *WorkerProf is the disabled profiler.
type WorkerProf struct {
	mu     sync.Mutex
	phases map[string]*phaseAgg
	order  []string
}

// NewWorkerProf allocates an empty worker profiler.
func NewWorkerProf() *WorkerProf {
	return &WorkerProf{phases: make(map[string]*phaseAgg)}
}

func (p *WorkerProf) aggLocked(phase string) *phaseAgg {
	a := p.phases[phase]
	if a == nil {
		a = &phaseAgg{prof: PhaseProf{Phase: phase}}
		p.phases[phase] = a
		p.order = append(p.order, phase)
	}
	return a
}

// RecordFanout folds one completed fan-out into the phase: wallNS is the
// fan-out's wall time, meters[w] each worker's accumulated task costs. Each
// worker's wait is the fan-out wall minus its busy time — time the worker
// spent idle at the task queue or parked at the end barrier.
func (p *WorkerProf) RecordFanout(phase string, wallNS int64, meters []TaskMeter) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.aggLocked(phase)
	a.prof.Fanouts++
	a.prof.WallNS += wallNS
	a.prof.WorkerWallNS += int64(len(meters)) * wallNS
	for w := range meters {
		for len(a.prof.Workers) <= w {
			a.prof.Workers = append(a.prof.Workers, WorkerCell{Worker: len(a.prof.Workers)})
		}
		c := &a.prof.Workers[w]
		m := &meters[w]
		wait := wallNS - m.BusyNS
		if wait < 0 {
			wait = 0
		}
		c.BusyNS += m.BusyNS
		c.WaitNS += wait
		c.Tasks += m.Tasks
		c.Records += m.Records
		c.Bytes += m.Bytes
	}
}

// AddMerge charges coordinator-side serial work (result concatenation,
// shard roll-up, dedupe) to the phase's merge bucket.
func (p *WorkerProf) AddMerge(phase string, ns int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aggLocked(phase).prof.MergeNS += ns
}

// WorkerSnapshot is a point-in-time copy of the per-phase attribution, in
// first-recorded phase order.
type WorkerSnapshot struct {
	Phases []PhaseProf `json:"phases"`
}

// Snapshot deep-copies the accumulated phases.
func (p *WorkerProf) Snapshot() WorkerSnapshot {
	if p == nil {
		return WorkerSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := WorkerSnapshot{}
	for _, name := range p.order {
		ph := p.phases[name].prof
		ws := make([]WorkerCell, len(ph.Workers))
		copy(ws, ph.Workers)
		ph.Workers = ws
		out.Phases = append(out.Phases, ph)
	}
	return out
}

// Sub returns the per-phase delta s − prev, dropping phases with no
// activity in the interval.
func (s WorkerSnapshot) Sub(prev WorkerSnapshot) WorkerSnapshot {
	idx := make(map[string]PhaseProf, len(prev.Phases))
	for _, p := range prev.Phases {
		idx[p.Phase] = p
	}
	out := WorkerSnapshot{}
	for _, p := range s.Phases {
		ws := make([]WorkerCell, len(p.Workers))
		copy(ws, p.Workers)
		p.Workers = ws
		if q, ok := idx[p.Phase]; ok {
			p.Fanouts -= q.Fanouts
			p.WallNS -= q.WallNS
			p.MergeNS -= q.MergeNS
			p.WorkerWallNS -= q.WorkerWallNS
			for i := range p.Workers {
				if i < len(q.Workers) {
					p.Workers[i].sub(q.Workers[i])
				}
			}
		}
		if p.Fanouts != 0 || p.WallNS != 0 || p.MergeNS != 0 {
			out.Phases = append(out.Phases, p)
		}
	}
	return out
}

// TotalWallNS sums fan-out wall time across phases.
func (s WorkerSnapshot) TotalWallNS() int64 {
	var t int64
	for _, p := range s.Phases {
		t += p.WallNS
	}
	return t
}

// TotalMergeNS sums coordinator merge time across phases.
func (s WorkerSnapshot) TotalMergeNS() int64 {
	var t int64
	for _, p := range s.Phases {
		t += p.MergeNS
	}
	return t
}

// Pair bundles the two profiler halves. A nil *Pair is the disabled
// profiler; it satisfies obs.ProfSource with "{"enabled": false}" output.
type Pair struct {
	Stripes *StripeProf
	Workers *WorkerProf
}

// NewPair allocates an enabled profiler pair for the given stripe count
// (pass machine.StripeCount).
func NewPair(stripes int) *Pair {
	return &Pair{Stripes: NewStripeProf(stripes), Workers: NewWorkerProf()}
}

// StripeDoc is the JSON body served at /prof/stripes (sans enabled flag).
type StripeDoc struct {
	Stripes      int              `json:"stripes"`
	Active       int              `json:"active"`
	Totals       StripeCounters   `json:"totals"`
	TopContended []StripeCounters `json:"top_contended"`
}

// Doc summarizes the snapshot: totals plus the topK most contended stripes.
func (s StripeSnapshot) Doc(topK int) StripeDoc {
	return StripeDoc{
		Stripes:      len(s.Stripes),
		Active:       s.Active(),
		Totals:       s.Totals(),
		TopContended: s.TopContended(topK),
	}
}

const disabledJSON = "{\"enabled\": false}\n"

func writeDoc(w io.Writer, doc any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteProfStripes writes the /prof/stripes JSON document.
func (p *Pair) WriteProfStripes(w io.Writer) error {
	if p == nil || p.Stripes == nil {
		_, err := io.WriteString(w, disabledJSON)
		return err
	}
	return writeDoc(w, struct {
		Enabled bool `json:"enabled"`
		StripeDoc
	}{true, p.Stripes.Snapshot().Doc(16)})
}

// WriteProfWorkers writes the /prof/workers JSON document.
func (p *Pair) WriteProfWorkers(w io.Writer) error {
	if p == nil || p.Workers == nil {
		_, err := io.WriteString(w, disabledJSON)
		return err
	}
	return writeDoc(w, struct {
		Enabled bool        `json:"enabled"`
		Phases  []PhaseProf `json:"phases"`
	}{true, p.Workers.Snapshot().Phases})
}

// WriteProfJSON writes the combined document the flight recorder stores as
// prof.json.
func (p *Pair) WriteProfJSON(w io.Writer) error {
	if p == nil || (p.Stripes == nil && p.Workers == nil) {
		_, err := io.WriteString(w, disabledJSON)
		return err
	}
	return writeDoc(w, struct {
		Enabled bool        `json:"enabled"`
		Stripes StripeDoc   `json:"stripes"`
		Workers []PhaseProf `json:"workers"`
	}{true, p.Stripes.Snapshot().Doc(16), p.Workers.Snapshot().Phases})
}

// WriteProfProm appends the profiler's Prometheus lines (stripe totals plus
// per-phase worker aggregates) in text exposition format.
func (p *Pair) WriteProfProm(w io.Writer) error {
	if p == nil || p.Stripes == nil {
		return nil
	}
	t := p.Stripes.Snapshot().Totals()
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"smdb_prof_stripe_acquires_total", "Stripe-lock acquisitions.", t.Acquires},
		{"smdb_prof_stripe_contended_total", "Contended stripe-lock acquisitions.", t.Contended},
		{"smdb_prof_stripe_wait_ns_total", "Nanoseconds blocked acquiring stripe locks.", t.WaitNS},
		{"smdb_prof_stripe_hold_ns_total", "Nanoseconds stripe locks were held.", t.HoldNS},
		{"smdb_prof_stripe_cond_waits_total", "Condvar sleeps on stripe locks.", t.CondWaits},
		{"smdb_prof_stripe_cond_wait_ns_total", "Nanoseconds slept on stripe condvars.", t.CondWaitNS},
		{"smdb_prof_stripe_wakeups_total", "Broadcast wakeups on stripe condvars.", t.Wakeups},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	snap := p.Workers.Snapshot()
	if len(snap.Phases) == 0 {
		return nil
	}
	families := []struct {
		name, help string
		v          func(PhaseProf) int64
	}{
		{"smdb_prof_worker_busy_ns_total", "Worker busy nanoseconds per recovery phase.", PhaseProf.BusyNS},
		{"smdb_prof_worker_wait_ns_total", "Worker wait nanoseconds per recovery phase.", func(p PhaseProf) int64 {
			var t int64
			for i := range p.Workers {
				t += p.Workers[i].WaitNS
			}
			return t
		}},
		{"smdb_prof_worker_tasks_total", "Tasks executed per recovery phase.", func(p PhaseProf) int64 {
			var t int64
			for i := range p.Workers {
				t += p.Workers[i].Tasks
			}
			return t
		}},
		{"smdb_prof_worker_records_total", "Records processed per recovery phase.", func(p PhaseProf) int64 {
			var t int64
			for i := range p.Workers {
				t += p.Workers[i].Records
			}
			return t
		}},
		{"smdb_prof_worker_bytes_total", "Payload bytes moved per recovery phase.", func(p PhaseProf) int64 {
			var t int64
			for i := range p.Workers {
				t += p.Workers[i].Bytes
			}
			return t
		}},
		{"smdb_prof_worker_merge_ns_total", "Coordinator merge nanoseconds per recovery phase.", func(p PhaseProf) int64 {
			return p.MergeNS
		}},
	}
	for _, f := range families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name); err != nil {
			return err
		}
		for _, ph := range snap.Phases {
			if _, err := fmt.Fprintf(w, "%s{phase=%q} %d\n", f.name, ph.Phase, f.v(ph)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Report renders the human-readable profile: the top-k contended stripes
// and the per-phase / per-worker cost breakdown.
func (p *Pair) Report(k int) string {
	if p == nil || p.Stripes == nil {
		return "profiler disabled\n"
	}
	return RenderReport(p.Stripes.Snapshot(), p.Workers.Snapshot(), k)
}

// RenderReport formats a stripe + worker snapshot pair (e.g. a recovery
// interval's deltas) as the text report.
func RenderReport(ss StripeSnapshot, ws WorkerSnapshot, k int) string {
	var b sb
	b.printf("contention & cost-attribution profile\n")
	top := ss.TopContended(k)
	b.printf("top-%d contended stripes (of %d, %d active):\n", k, len(ss.Stripes), ss.Active())
	tw := b.table()
	fmt.Fprintf(tw, "  stripe\tacquires\tcontended\twait\thold\tcond-waits\tcond-wait\twakeups\n")
	for _, c := range top {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%s\t%s\t%d\t%s\t%d\n",
			c.Stripe, c.Acquires, c.Contended, FormatNS(c.WaitNS), FormatNS(c.HoldNS),
			c.CondWaits, FormatNS(c.CondWaitNS), c.Wakeups)
	}
	tw.Flush()
	if len(ws.Phases) == 0 {
		b.printf("no parallel fan-outs recorded\n")
		return b.String()
	}
	b.printf("per-phase fan-out profile:\n")
	tw = b.table()
	fmt.Fprintf(tw, "  phase\tfanouts\twall\tmerge\tworkers\tbusy\twait\ttasks\trecords\tbytes\n")
	workers := map[int]*WorkerCell{}
	var order []int
	for _, ph := range ws.Phases {
		var busy, wait, tasks, records, bytes int64
		for _, c := range ph.Workers {
			busy += c.BusyNS
			wait += c.WaitNS
			tasks += c.Tasks
			records += c.Records
			bytes += c.Bytes
			t := workers[c.Worker]
			if t == nil {
				t = &WorkerCell{Worker: c.Worker}
				workers[c.Worker] = t
				order = append(order, c.Worker)
			}
			t.BusyNS += c.BusyNS
			t.WaitNS += c.WaitNS
			t.Tasks += c.Tasks
			t.Records += c.Records
			t.Bytes += c.Bytes
		}
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%d\t%s\t%s\t%d\t%d\t%d\n",
			ph.Phase, ph.Fanouts, FormatNS(ph.WallNS), FormatNS(ph.MergeNS), len(ph.Workers),
			FormatNS(busy), FormatNS(wait), tasks, records, bytes)
	}
	tw.Flush()
	b.printf("per-worker totals (all phases):\n")
	tw = b.table()
	fmt.Fprintf(tw, "  worker\tbusy\twait\ttasks\trecords\tbytes\n")
	sort.Ints(order)
	for _, wid := range order {
		c := workers[wid]
		fmt.Fprintf(tw, "  w%d\t%s\t%s\t%d\t%d\t%d\n",
			c.Worker, FormatNS(c.BusyNS), FormatNS(c.WaitNS), c.Tasks, c.Records, c.Bytes)
	}
	tw.Flush()
	return b.String()
}

// FormatNS renders nanoseconds compactly (1.2µs / 3.4ms / 5.67s).
func FormatNS(ns int64) string {
	f := float64(ns)
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", f/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", f/1e6)
	default:
		return fmt.Sprintf("%.2fs", f/1e9)
	}
}

// sb is a tiny string builder with a tabwriter shortcut.
type sb struct {
	buf []byte
}

func (b *sb) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *sb) printf(format string, args ...any) { fmt.Fprintf(b, format, args...) }
func (b *sb) table() *tabwriter.Writer          { return tabwriter.NewWriter(b, 2, 2, 2, ' ', 0) }
func (b *sb) String() string                    { return string(b.buf) }
