package waterfall

import (
	"reflect"
	"strings"
	"testing"
)

// feedScenario drives a fixed, deterministic sequence of hook calls: three
// transactions on two nodes — a committed one with a convoy line wait, an
// aborted one with undo time, and a fast committed one — plus a recovery
// progress run. Both the golden exports and the determinism tests reuse it.
func feedScenario(r *Recorder) {
	r.Begin(1, 0, 100)
	r.OpStart(1, 0, 100)
	r.NoteAppend(1, 120, 0, 9)
	r.AddWait(1, CauseLineWait, 120, 30, 7, 2)
	r.NoteFetch(0, 3, 170, 20)
	r.OpEnd(1, 0, 180) // residue 80-50=30 compute
	r.End(1, 200, OutcomeCommitted)

	r.Begin(2, 1, 100)
	r.SpanStart(2, 1, 150, CauseUndo)
	r.AddWait(2, CauseLineWait, 160, 10, 7, 0)
	r.OpEnd(2, 1, 190) // residue 40-10=30 undo
	r.End(2, 190, OutcomeAborted)
	r.End(2, 195, OutcomeAborted) // double end no-ops

	r.Begin(3, 0, 150)
	r.OpStart(3, 0, 150)
	r.OpEnd(3, 0, 160)
	r.End(3, 170, OutcomeCommitted)

	p := r.Progress()
	p.Start(1)
	p.Attempt(1)
	p.Plan("redo-apply", 4)
	p.Note("redo-apply", 4, 64)
	p.PhaseDone("redo-apply", 500)
	p.End(true)
}

func TestWaterfallAttribution(t *testing.T) {
	r := New(Config{TopK: 2, WindowNS: 1000, SampleN: 1, Nodes: 2})
	feedScenario(r)

	if got := r.Completed(); got != 3 {
		t.Fatalf("completed = %d, want 3", got)
	}
	w := r.Lookup(1)
	if w == nil {
		t.Fatal("txn 1 not retained")
	}
	if w.Latency() != 100 {
		t.Fatalf("latency = %d, want 100", w.Latency())
	}
	want := map[Cause]int64{CauseCompute: 30, CauseLineWait: 30, CauseFetch: 20}
	for c, v := range want {
		if w.ByCause[c] != v {
			t.Errorf("ByCause[%v] = %d, want %d", c, w.ByCause[c], v)
		}
	}
	// The log-append marker is a zero-duration segment: present in the trace,
	// absent from the sums.
	if w.ByCause[CauseLogAppend] != 0 {
		t.Errorf("append marker added duration %d", w.ByCause[CauseLogAppend])
	}
	found := false
	for _, s := range w.Segments {
		if s.Cause == CauseLogAppend && s.Dur == 0 && s.Detail == 9 {
			found = true
		}
	}
	if !found {
		t.Error("append marker segment missing")
	}

	u := r.Lookup(2)
	if u == nil || u.ByCause[CauseUndo] != 30 {
		t.Fatalf("undo attribution = %+v", u)
	}
}

func TestCoverage(t *testing.T) {
	var nilR *Recorder
	if cov, _, _ := nilR.Coverage(); cov != 1 {
		t.Fatalf("nil coverage = %v, want 1", cov)
	}
	r := New(Config{SampleN: 1, Nodes: 2})
	feedScenario(r)
	cov, attr, total := r.Coverage()
	// txn1: 80/100 attributed; txn2: 40/90; txn3: 10/20.
	if total != 210 || attr != 130 {
		t.Fatalf("attr/total = %d/%d, want 130/210", attr, total)
	}
	if cov < 0.61 || cov > 0.62 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestCurrentTxnRegister(t *testing.T) {
	r := New(Config{Nodes: 2})
	r.Begin(5, 0, 0)
	r.OpStart(5, 0, 0)
	if got := r.CurrentTxn(0); got != 5 {
		t.Fatalf("CurrentTxn = %d, want 5", got)
	}
	// Nested bracket: the register survives the inner close.
	r.OpStart(5, 0, 10)
	r.OpEnd(5, 0, 20)
	if got := r.CurrentTxn(0); got != 5 {
		t.Fatalf("CurrentTxn after inner close = %d, want 5", got)
	}
	r.OpEnd(5, 0, 30)
	if got := r.CurrentTxn(0); got != 0 {
		t.Fatalf("CurrentTxn after outer close = %d, want 0", got)
	}
	// Out-of-range nodes never panic.
	r.OpStart(5, 99, 0)
	r.OpEnd(5, 99, 0)
	_ = r.CurrentTxn(99)
}

func TestHookGatingOutsideBracket(t *testing.T) {
	r := New(Config{Nodes: 2})
	r.Begin(1, 0, 0)
	// No bracket open: line/fetch hooks must not attribute (recovery traffic
	// on a node must never pollute a stalled survivor's waterfall).
	r.cur[0].Store(1)
	r.NoteLineWait(0, 7, 0, 100, 50)
	r.NoteFetch(0, 3, 100, 50)
	r.End(1, 100, OutcomeCommitted)
	w := r.Lookup(1)
	if w != nil && (w.ByCause[CauseLineWait] != 0 || w.ByCause[CauseFetch] != 0) {
		t.Fatalf("hooks attributed outside a bracket: %+v", w.ByCause)
	}
}

func TestCrashNodeDropsLive(t *testing.T) {
	r := New(Config{Nodes: 2})
	r.Begin(1, 0, 0)
	r.Begin(2, 1, 0)
	r.OpStart(2, 1, 0)
	r.CrashNode(1)
	if got := r.Live(); got != 1 {
		t.Fatalf("live = %d, want 1 (node 1's txn dropped)", got)
	}
	if got := r.CurrentTxn(1); got != 0 {
		t.Fatalf("crashed node's register = %d, want 0", got)
	}
	// Ending a dropped txn no-ops.
	r.End(2, 10, OutcomeCommitted)
	if got := r.Completed(); got != 0 {
		t.Fatalf("completed = %d, want 0", got)
	}
}

func TestTailSamplerDeterminism(t *testing.T) {
	slowIDs := func() []int64 {
		r := New(Config{TopK: 2, WindowNS: 1000, SampleN: 4, Nodes: 2})
		feedScenario(r)
		var ids []int64
		for _, w := range r.Slow(0) {
			ids = append(ids, w.Txn)
		}
		return ids
	}
	a, b := slowIDs(), slowIDs()
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("sampler not deterministic: %v vs %v", a, b)
	}
}

func TestTopKTieBreak(t *testing.T) {
	r := New(Config{TopK: 2, WindowNS: 1_000_000, SampleN: 1 << 30, Nodes: 1})
	// Three completions with identical latency: the two lowest txn ids win.
	for _, id := range []int64{30, 10, 20} {
		r.Begin(id, 0, 0)
		r.End(id, 50, OutcomeCommitted)
	}
	var ids []int64
	for _, w := range r.Slow(0) {
		ids = append(ids, w.Txn)
	}
	if !reflect.DeepEqual(ids, []int64{10, 20}) {
		t.Fatalf("topK tie-break = %v, want [10 20]", ids)
	}
}

func TestExemplars(t *testing.T) {
	r := New(Config{TopK: 4, SampleN: 1, Nodes: 1})
	r.Begin(1, 0, 0)
	r.End(1, 100, OutcomeCommitted) // latency 100 -> bucket 7 (le 128)
	ex := r.Exemplars()
	ids, ok := ex[7]
	if !ok || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("exemplars = %v, want bucket 7 -> [1]", ex)
	}
}

func TestProgressJSON(t *testing.T) {
	r := New(Config{Nodes: 1})
	feedScenario(r)
	var b strings.Builder
	if err := r.Progress().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"enabled": true`, `"last_ok": true`, `"redo-apply"`, `"planned": 4`, `"records": 4`, `"sim_ns": 500`, `"rate_per_sec"`, `"eta_ns"`} {
		if !strings.Contains(out, want) {
			t.Errorf("progress JSON missing %s:\n%s", want, out)
		}
	}
	var nilP *Progress
	b.Reset()
	if err := nilP.WriteJSON(&b); err != nil || b.String() != "{\"enabled\": false}\n" {
		t.Fatalf("nil progress JSON = %q, %v", b.String(), err)
	}
}

func TestSummary(t *testing.T) {
	var nilR *Recorder
	if nilR.Summary() != "waterfall disabled" {
		t.Fatal("nil summary")
	}
	r := New(Config{SampleN: 1, Nodes: 2})
	feedScenario(r)
	s := r.Summary()
	for _, want := range []string{"3 txns", "compute=", "line-wait=", "undo="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %s: %s", want, s)
		}
	}
}
