package waterfall

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the export golden files")

// goldenRecorder is the deterministic recorder behind the golden files:
// fixed config, fixed scenario, no wall-clock inputs in the exported docs.
func goldenRecorder() *Recorder {
	r := New(Config{TopK: 2, WindowNS: 1000, SampleN: 1, Nodes: 2})
	feedScenario(r)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with go test -run Golden -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestSlowJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteSlowJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "slow.golden.json", buf.Bytes())

	buf.Reset()
	var nilR *Recorder
	if err := nilR.WriteSlowJSON(&buf, 0); err != nil || buf.String() != disabledJSON {
		t.Fatalf("nil /slow = %q, %v", buf.String(), err)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.golden.json", buf.Bytes())

	buf.Reset()
	var nilR *Recorder
	if err := nilR.WriteChromeTrace(&buf); err != nil || buf.String() != `{"traceEvents":[],"displayTimeUnit":"ns"}` {
		t.Fatalf("nil chrome trace = %q, %v", buf.String(), err)
	}
}

func TestTxnJSON(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WriteTxnJSON(&buf, 1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"found": true`, `"txn": 1`, `"outcome": "committed"`, `"line-wait"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/slow/1 missing %s:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := r.WriteTxnJSON(&buf, 999); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"found": false`) {
		t.Errorf("/slow/999 should report found=false:\n%s", buf.String())
	}
}

func TestProm(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`smdb_txn_wait_ns{cause="line-wait"} 40`,
		`smdb_txn_wait_ns{cause="compute"} 40`,
		`smdb_txn_wait_ns{cause="undo"} 30`,
		`smdb_txn_wait_ns{cause="fetch"} 20`,
		"smdb_txn_waterfalls_total 3",
		"smdb_txn_attributed_ns_total 130",
		"smdb_txn_latency_ns_total 210",
		"smdb_txn_waterfall_coverage 0.619048",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q:\n%s", want, out)
		}
	}
	var nilR *Recorder
	buf.Reset()
	if err := nilR.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil prom wrote %q, %v", buf.String(), err)
	}
}

func TestWaterfallFlightBody(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteWaterfallJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The flight body is the /slow document followed by the progress document.
	if !strings.Contains(out, `"wait_ns_by_cause"`) || !strings.Contains(out, `"phases"`) {
		t.Errorf("flight body missing a section:\n%s", out)
	}
}
