// Package waterfall is the per-transaction causal latency decomposition:
// every transaction accumulates a waterfall of simulated-time segments —
// line-lock waits (with the holder's txn id, so convoys are explainable),
// record-lock waits, page-fetch waits, log-append markers, log-force waits,
// recovery-freeze stalls, undo time, and the pure-compute residue — fed by
// hooks in internal/machine, internal/wal, internal/buffer, internal/txn and
// internal/recovery. A bounded tail sampler keeps the K slowest completed
// waterfalls per sim-time window plus a deterministic 1-in-N reservoir, and
// links them as exemplars from the commit-latency histogram's log2 buckets.
//
// Like the obs/audit/prof layers, the recorder is always compiled and off by
// default: every hot-path method is nil-receiver safe and allocation-free on
// the nil path, so callers hold a possibly-nil *Recorder and call it
// unconditionally. The package imports nothing but the standard library —
// machine, wal, buffer and recovery all import it, and internal/obs exposes
// it over HTTP/flight dumps through the obs.WaterfallSource interface, so
// any inward dependency would cycle.
package waterfall

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// base pins the monotonic epoch used for recovery-progress rates.
var base = time.Now()

// now returns monotonic host nanoseconds since process start (wall rates for
// the recovery-progress observer; everything else in this package is sim time).
func now() int64 { return int64(time.Since(base)) }

// Cause labels one waterfall segment with where the time went.
type Cause uint8

const (
	// CauseCompute is the residue of an operation's sim time not explained
	// by any recorded wait: directory walks, uncontended line acquisitions,
	// slot reads/writes, log-manager CPU.
	CauseCompute Cause = iota
	// CauseLockWait is time blocked on a record/key lock (strict 2PL),
	// attributed with the blocking holder's txn id when known.
	CauseLockWait
	// CauseLineWait is time waiting for a machine line — queued behind the
	// line's lock or waiting out a migration — with the holder's txn id.
	CauseLineWait
	// CauseFetch is disk-read time installing a page absent from every cache.
	CauseFetch
	// CauseLogAppend is log-manager append work (LogAppend cost per record).
	CauseLogAppend
	// CauseLogForce is time stalled forcing the WAL to stable storage.
	CauseLogForce
	// CauseFrozen is time stalled against the recovery freeze window
	// (ErrBlocked retry loops while a crash is being repaired).
	CauseFrozen
	// CauseUndo is rollback time: walking the undo chain and reinstalling
	// before-images during Abort.
	CauseUndo

	numCauses = int(CauseUndo) + 1
)

var causeNames = [numCauses]string{
	"compute", "lock-wait", "line-wait", "fetch",
	"log-append", "log-force", "frozen", "undo",
}

// String returns the cause's label (the Prometheus cause= value).
func (c Cause) String() string {
	if int(c) < numCauses {
		return causeNames[c]
	}
	return "unknown"
}

// Causes lists every cause in declaration order.
func Causes() []Cause {
	out := make([]Cause, numCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// Outcome is how a transaction's waterfall ended.
type Outcome uint8

const (
	OutcomeLive Outcome = iota
	OutcomeCommitted
	OutcomeAborted
	OutcomeCrashed
)

var outcomeNames = [...]string{"live", "committed", "aborted", "crashed"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Segment is one attributed slice of a transaction's life. Start/Dur are
// simulated nanoseconds; Detail is the cause-specific subject (line id,
// page id, LSN, or lock name hash) and Holder the blocking transaction for
// lock/line waits (0 = unknown).
type Segment struct {
	Cause  Cause `json:"cause_id"`
	Start  int64 `json:"start"`
	Dur    int64 `json:"dur"`
	Detail int64 `json:"detail,omitempty"`
	Holder int64 `json:"holder,omitempty"`
}

// Waterfall is one transaction's completed (or in-flight) decomposition.
type Waterfall struct {
	Txn      int64   `json:"txn"`
	Node     int32   `json:"node"`
	Outcome  Outcome `json:"outcome_id"`
	BeginSim int64   `json:"begin_sim"`
	EndSim   int64   `json:"end_sim"`
	// ByCause sums segment durations per cause (compute residue included),
	// so attribution survives even when Segments overflowed.
	ByCause [numCauses]int64 `json:"-"`
	// Segments is the bounded ordered trace; Dropped counts overflow.
	Segments []Segment `json:"segments"`
	Dropped  int       `json:"dropped,omitempty"`
	// Reservoir marks waterfalls retained by the deterministic 1-in-N
	// sampler rather than (or in addition to) the per-window top-K.
	Reservoir bool `json:"reservoir,omitempty"`
}

// Latency is the transaction's total measured sim latency.
func (w *Waterfall) Latency() int64 { return w.EndSim - w.BeginSim }

// Attributed sums every cause bucket.
func (w *Waterfall) Attributed() int64 {
	var t int64
	for _, v := range w.ByCause {
		t += v
	}
	return t
}

// Config bounds the recorder and tail sampler. Zero values take defaults.
type Config struct {
	// TopK is the number of slowest completed waterfalls kept per window.
	TopK int
	// WindowNS is the sampler's sim-time window width.
	WindowNS int64
	// SampleN keeps every transaction whose id hashes to 0 mod SampleN in
	// the reservoir — deterministic across replays by construction.
	SampleN int
	// Retain caps the reservoir length (FIFO eviction).
	Retain int
	// MaxWindows caps live top-K windows; older windows are evicted whole.
	MaxWindows int
	// MaxSegments caps one transaction's recorded segments (ByCause keeps
	// counting past the cap; Dropped counts the overflow).
	MaxSegments int
	// Nodes sizes the per-node current-transaction table (default 64).
	Nodes int
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if c.WindowNS <= 0 {
		c.WindowNS = 1_000_000 // 1ms of sim time
	}
	if c.SampleN <= 0 {
		c.SampleN = 64
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 64
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 96
	}
	if c.Nodes <= 0 {
		c.Nodes = 64
	}
	return c
}

// liveTxn is one in-flight transaction's accumulating state.
type liveTxn struct {
	wf Waterfall
	// opStart/opWaits implement the compute residue: OpEnd charges
	// (sim − opStart) − opWaits to opCause (CauseCompute for ordinary
	// operations, CauseUndo for rollback), clamped at zero.
	opStart int64
	opWaits int64
	opDepth int32
	opCause Cause
}

// window is one sim-time window's K-slowest completed waterfalls, sorted by
// latency descending (ties broken by ascending txn id, for determinism).
type window struct {
	idx  int64
	slow []*Waterfall
}

// Recorder accumulates per-transaction waterfalls and tail-samples the
// completed ones. A nil *Recorder is the disabled recorder: every method
// no-ops without allocating.
type Recorder struct {
	cfg Config

	// cur[node] is the txn currently executing an instrumented operation on
	// that node — how the machine/buffer hooks, which see only a node id,
	// resolve their waits onto a transaction.
	cur []atomic.Int64

	mu      sync.Mutex
	live    map[int64]*liveTxn
	windows []*window // ascending window index
	maxWin  int64
	reserve []*Waterfall // deterministic 1-in-N reservoir, FIFO-bounded

	// exemplars links the commit-latency histogram's log2 buckets to recent
	// slow-sampled txn ids (same bucketing as obs.Histogram).
	exemplars [64][4]int64
	exemplarN [64]int

	// Totals across every completed transaction, for coverage and the
	// Prometheus smdb_txn_wait_ns{cause=...} counters.
	byCause   [numCauses]atomic.Int64
	completed atomic.Int64
	totalLat  atomic.Int64
	totalAttr atomic.Int64
	dropped   atomic.Int64 // segments dropped past MaxSegments

	progress *Progress
}

// New allocates an enabled recorder.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:      cfg,
		cur:      make([]atomic.Int64, cfg.Nodes),
		live:     make(map[int64]*liveTxn),
		progress: newProgress(),
	}
}

// Progress returns the recovery-progress observer (nil when disabled).
func (r *Recorder) Progress() *Progress {
	if r == nil {
		return nil
	}
	return r.progress
}

// Begin opens a transaction's waterfall at its begin sim time.
func (r *Recorder) Begin(txn int64, node int32, sim int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.live[txn] = &liveTxn{wf: Waterfall{Txn: txn, Node: node, BeginSim: sim}}
	r.mu.Unlock()
}

// OpStart marks the transaction entering an instrumented engine operation on
// node: sets the node's current-txn register (so machine/buffer hooks resolve
// onto it) and opens the compute-residue bracket. Reentrant (txn layer over
// DB layer): only the outermost bracket counts.
func (r *Recorder) OpStart(txn int64, node int32, sim int64) {
	r.SpanStart(txn, node, sim, CauseCompute)
}

// SpanStart is OpStart with an explicit residue cause: the outermost
// bracket's unexplained sim time is charged to c instead of CauseCompute
// (Abort brackets with CauseUndo, so the rollback walk's directory and slot
// work lands under "undo" while its line waits keep their own cause).
func (r *Recorder) SpanStart(txn int64, node int32, sim int64, c Cause) {
	if r == nil {
		return
	}
	if int(node) < len(r.cur) {
		r.cur[node].Store(txn)
	}
	r.mu.Lock()
	if lt := r.live[txn]; lt != nil {
		if lt.opDepth == 0 {
			lt.opStart = sim
			lt.opWaits = 0
			lt.opCause = c
		}
		lt.opDepth++
	}
	r.mu.Unlock()
}

// OpEnd closes the operation bracket, charging the unexplained residue of
// its sim time to the bracket's cause. The node's current-txn register is
// cleared only when the outermost bracket closes.
func (r *Recorder) OpEnd(txn int64, node int32, sim int64) {
	if r == nil {
		return
	}
	outer := true
	r.mu.Lock()
	if lt := r.live[txn]; lt != nil && lt.opDepth > 0 {
		lt.opDepth--
		if lt.opDepth == 0 {
			if residue := sim - lt.opStart - lt.opWaits; residue > 0 {
				r.addSegmentLocked(lt, Segment{Cause: lt.opCause, Start: lt.opStart, Dur: residue})
			}
		} else {
			outer = false
		}
	}
	r.mu.Unlock()
	if outer && int(node) < len(r.cur) {
		r.cur[node].CompareAndSwap(txn, 0)
	}
}

// CurrentTxn returns the transaction currently running an instrumented
// operation on node, 0 when none.
func (r *Recorder) CurrentTxn(node int32) int64 {
	if r == nil || int(node) >= len(r.cur) {
		return 0
	}
	return r.cur[node].Load()
}

// AddWait records one attributed wait segment for txn. start is the sim time
// the wait began, dur its sim length; detail/holder per Segment. Zero and
// negative durations are recorded as markers only when dur == 0 and the
// cause is CauseLogAppend (append markers order the trace); otherwise they
// are dropped.
func (r *Recorder) AddWait(txn int64, c Cause, start, dur, detail, holder int64) {
	if r == nil {
		return
	}
	if dur <= 0 && !(dur == 0 && c == CauseLogAppend) {
		return
	}
	r.mu.Lock()
	if lt := r.live[txn]; lt != nil {
		r.addSegmentLocked(lt, Segment{Cause: c, Start: start, Dur: dur, Detail: detail, Holder: holder})
		if lt.opDepth > 0 {
			lt.opWaits += dur
		}
	}
	r.mu.Unlock()
}

// NoteLineWait is the machine hook: node waited dur sim-ns for line,
// acquiring it at sim time end; holderNode held (or last held) it. The wait
// is attributed to node's current transaction — and recorded only when that
// transaction has an operation bracket open, so recovery's own line traffic
// never pollutes a stalled survivor's waterfall.
func (r *Recorder) NoteLineWait(node int32, line int, holderTxn, end, dur int64) {
	if r == nil || dur <= 0 {
		return
	}
	txn := r.CurrentTxn(node)
	if txn == 0 {
		return
	}
	r.mu.Lock()
	if lt := r.live[txn]; lt != nil && lt.opDepth > 0 {
		if holderTxn == txn {
			holderTxn = 0
		}
		r.addSegmentLocked(lt, Segment{Cause: CauseLineWait, Start: end - dur, Dur: dur, Detail: int64(line), Holder: holderTxn})
		lt.opWaits += dur
	}
	r.mu.Unlock()
}

// NoteFetch is the buffer-manager hook: node spent dur sim-ns reading page
// from disk, finishing at sim time end. Attributed like NoteLineWait.
func (r *Recorder) NoteFetch(node int32, page int, end, dur int64) {
	if r == nil || dur <= 0 {
		return
	}
	txn := r.CurrentTxn(node)
	if txn == 0 {
		return
	}
	r.mu.Lock()
	if lt := r.live[txn]; lt != nil && lt.opDepth > 0 {
		r.addSegmentLocked(lt, Segment{Cause: CauseFetch, Start: end - dur, Dur: dur, Detail: int64(page)})
		lt.opWaits += dur
	}
	r.mu.Unlock()
}

// NoteAppend is the WAL hook: txn appended the record at lsn at sim time
// sim, costing dur sim-ns of log-manager work.
func (r *Recorder) NoteAppend(txn, sim, dur, lsn int64) {
	r.AddWait(txn, CauseLogAppend, sim-dur, dur, lsn, 0)
}

// addSegmentLocked appends a segment under r.mu, enforcing the per-txn cap.
func (r *Recorder) addSegmentLocked(lt *liveTxn, s Segment) {
	lt.wf.ByCause[s.Cause] += s.Dur
	if len(lt.wf.Segments) < r.cfg.MaxSegments {
		lt.wf.Segments = append(lt.wf.Segments, s)
	} else {
		lt.wf.Dropped++
		r.dropped.Add(1)
	}
}

// End closes txn's waterfall at sim time sim and feeds it to the tail
// sampler. Unknown ids (crash-settled transactions, double ends) no-op.
func (r *Recorder) End(txn int64, sim int64, oc Outcome) {
	if r == nil {
		return
	}
	r.mu.Lock()
	lt := r.live[txn]
	if lt == nil {
		r.mu.Unlock()
		return
	}
	delete(r.live, txn)
	lt.wf.EndSim = sim
	lt.wf.Outcome = oc
	r.mu.Unlock()

	for c, v := range lt.wf.ByCause {
		if v > 0 {
			r.byCause[c].Add(v)
		}
	}
	r.completed.Add(1)
	r.totalLat.Add(lt.wf.Latency())
	r.totalAttr.Add(lt.wf.Attributed())

	r.mu.Lock()
	r.sampleLocked(&lt.wf)
	r.mu.Unlock()
}

// CrashNode drops every live waterfall on node: the crash destroyed the
// node's control state, and recovery will settle those transactions without
// their accumulating goroutines. Runs from the machine's crash path.
func (r *Recorder) CrashNode(node int32) {
	if r == nil {
		return
	}
	if int(node) < len(r.cur) {
		r.cur[node].Store(0)
	}
	r.mu.Lock()
	for id, lt := range r.live {
		if lt.wf.Node == node {
			delete(r.live, id)
		}
	}
	r.mu.Unlock()
}

// reservoirHash is the deterministic 1-in-N membership test: FNV-1a over the
// txn id's bytes. Pure function of the id, so record and replay runs sample
// identical transactions.
func reservoirHash(txn int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(txn >> (8 * i)))
		h *= 1099511628211
	}
	return h
}

// sampleLocked feeds one completed waterfall to the tail sampler.
func (r *Recorder) sampleLocked(w *Waterfall) {
	// Deterministic reservoir: membership depends only on the txn id.
	if reservoirHash(w.Txn)%uint64(r.cfg.SampleN) == 0 {
		w.Reservoir = true
		r.reserve = append(r.reserve, w)
		if len(r.reserve) > r.cfg.Retain {
			r.reserve = r.reserve[1:]
		}
	}

	// Per-window top-K slowest.
	wi := int64(0)
	if r.cfg.WindowNS > 0 {
		wi = w.EndSim / r.cfg.WindowNS
	}
	if wi > r.maxWin {
		r.maxWin = wi
	}
	var win *window
	for _, c := range r.windows {
		if c.idx == wi {
			win = c
			break
		}
	}
	if win == nil {
		if min := r.maxWin - int64(r.cfg.MaxWindows) + 1; wi < min {
			return // window already evicted; late completion is dropped
		}
		win = &window{idx: wi}
		// Insert keeping ascending window order.
		at := len(r.windows)
		for i, c := range r.windows {
			if c.idx > wi {
				at = i
				break
			}
		}
		r.windows = append(r.windows, nil)
		copy(r.windows[at+1:], r.windows[at:])
		r.windows[at] = win
		for len(r.windows) > r.cfg.MaxWindows {
			r.windows = r.windows[1:]
		}
	}
	// Insert sorted: latency desc, txn asc (deterministic under replay).
	lat := w.Latency()
	at := len(win.slow)
	for i, s := range win.slow {
		if lat > s.Latency() || (lat == s.Latency() && w.Txn < s.Txn) {
			at = i
			break
		}
	}
	if at >= r.cfg.TopK {
		return
	}
	win.slow = append(win.slow, nil)
	copy(win.slow[at+1:], win.slow[at:])
	win.slow[at] = w
	if len(win.slow) > r.cfg.TopK {
		win.slow = win.slow[:r.cfg.TopK]
	}
	// Exemplar: link this slow sample from its commit-latency log2 bucket
	// (same bucketing as obs.Histogram: bucket 0 is v <= 1, else
	// bits.Len64(v-1)).
	b := 0
	if lat > 1 {
		b = bits.Len64(uint64(lat) - 1)
	}
	n := r.exemplarN[b] % len(r.exemplars[b])
	r.exemplars[b][n] = w.Txn
	r.exemplarN[b]++
}

// Totals returns the per-cause attributed sim-ns across all completed
// transactions, in Cause order.
func (r *Recorder) Totals() [numCauses]int64 {
	var out [numCauses]int64
	if r == nil {
		return out
	}
	for i := range out {
		out[i] = r.byCause[i].Load()
	}
	return out
}

// Coverage returns attributed/total sim latency across completed
// transactions (1.0 when nothing completed), plus the raw sums.
func (r *Recorder) Coverage() (cov float64, attributed, total int64) {
	if r == nil {
		return 1, 0, 0
	}
	attributed = r.totalAttr.Load()
	total = r.totalLat.Load()
	if total <= 0 {
		return 1, attributed, total
	}
	cov = float64(attributed) / float64(total)
	return cov, attributed, total
}

// Completed returns how many waterfalls have ended.
func (r *Recorder) Completed() int64 {
	if r == nil {
		return 0
	}
	return r.completed.Load()
}

// Live returns how many waterfalls are currently open.
func (r *Recorder) Live() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Slow returns every retained waterfall — per-window top-K (ascending
// window, then latency desc) followed by reservoir-only samples — capped at
// max entries (0 = no cap). The returned waterfalls are shared, completed
// (immutable) records.
func (r *Recorder) Slow(max int) []*Waterfall {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Waterfall
	seen := map[int64]bool{}
	for _, win := range r.windows {
		for _, w := range win.slow {
			if !seen[w.Txn] {
				seen[w.Txn] = true
				out = append(out, w)
			}
		}
	}
	for _, w := range r.reserve {
		if !seen[w.Txn] {
			seen[w.Txn] = true
			out = append(out, w)
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Lookup returns the retained waterfall for txn, nil when not sampled.
func (r *Recorder) Lookup(txn int64) *Waterfall {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, win := range r.windows {
		for _, w := range win.slow {
			if w.Txn == txn {
				return w
			}
		}
	}
	for _, w := range r.reserve {
		if w.Txn == txn {
			return w
		}
	}
	return nil
}

// Exemplars returns the histogram-bucket → recent slow txn id links, for
// buckets that have any (bucket i covers latencies in (2^(i-1), 2^i]).
func (r *Recorder) Exemplars() map[int][]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[int][]int64{}
	for b := range r.exemplars {
		n := r.exemplarN[b]
		if n == 0 {
			continue
		}
		k := n
		if k > len(r.exemplars[b]) {
			k = len(r.exemplars[b])
		}
		ids := make([]int64, 0, k)
		for i := 0; i < k; i++ {
			ids = append(ids, r.exemplars[b][i])
		}
		out[b] = ids
	}
	return out
}
