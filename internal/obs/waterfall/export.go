package waterfall

import (
	"encoding/json"
	"fmt"
	"io"
)

// Exporters for the tail-sampled waterfalls: the /slow and /slow/{txnid}
// JSON documents, Chrome trace-event spans, the Prometheus
// smdb_txn_wait_ns{cause=...} counters, and the flight-recorder body. All
// nil-receiver safe, emitting {"enabled": false} like the prof writers.

const disabledJSON = "{\"enabled\": false}\n"

// slowSeg is one exported waterfall segment.
type slowSeg struct {
	Cause  string `json:"cause"`
	Start  int64  `json:"start"`
	Dur    int64  `json:"dur"`
	Detail int64  `json:"detail,omitempty"`
	Holder int64  `json:"holder,omitempty"`
}

func entryOf(w *Waterfall) map[string]any {
	segs := make([]slowSeg, 0, len(w.Segments))
	for _, s := range w.Segments {
		segs = append(segs, slowSeg{
			Cause: s.Cause.String(), Start: s.Start, Dur: s.Dur,
			Detail: s.Detail, Holder: s.Holder,
		})
	}
	by := map[string]int64{}
	for c, v := range w.ByCause {
		if v > 0 {
			by[Cause(c).String()] = v
		}
	}
	cov := 1.0
	if lat := w.Latency(); lat > 0 {
		cov = float64(w.Attributed()) / float64(lat)
	}
	return map[string]any{
		"txn":        w.Txn,
		"node":       w.Node,
		"outcome":    w.Outcome.String(),
		"begin_sim":  w.BeginSim,
		"end_sim":    w.EndSim,
		"latency_ns": w.Latency(),
		"coverage":   cov,
		"by_cause":   by,
		"reservoir":  w.Reservoir,
		"dropped":    w.Dropped,
		"segments":   segs,
	}
}

func writeDoc(w io.Writer, doc any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteSlowJSON writes the /slow document: recorder totals, coverage, the
// retained tail samples (bounded at max entries, 0 = all), and the
// histogram-bucket exemplar links.
func (r *Recorder) WriteSlowJSON(w io.Writer, max int) error {
	if r == nil {
		_, err := io.WriteString(w, disabledJSON)
		return err
	}
	cov, attr, total := r.Coverage()
	by := map[string]int64{}
	for c, v := range r.Totals() {
		if v > 0 {
			by[Cause(c).String()] = v
		}
	}
	slow := r.Slow(max)
	entries := make([]map[string]any, 0, len(slow))
	for _, wf := range slow {
		entries = append(entries, entryOf(wf))
	}
	ex := map[string][]int64{}
	for b, ids := range r.Exemplars() {
		ex[fmt.Sprintf("le_%d", int64(1)<<uint(b))] = ids
	}
	return writeDoc(w, map[string]any{
		"enabled":             true,
		"completed":           r.Completed(),
		"live":                r.Live(),
		"coverage":            cov,
		"attributed_ns":       attr,
		"total_latency_ns":    total,
		"wait_ns_by_cause":    by,
		"dropped_segments":    r.dropped.Load(),
		"slow":                entries,
		"histogram_exemplars": ex,
	})
}

// WriteTxnJSON writes one sampled transaction's waterfall (/slow/{txnid}),
// or {"found": false} when it was not retained.
func (r *Recorder) WriteTxnJSON(w io.Writer, txn int64) error {
	if r == nil {
		_, err := io.WriteString(w, disabledJSON)
		return err
	}
	wf := r.Lookup(txn)
	if wf == nil {
		return writeDoc(w, map[string]any{"enabled": true, "found": false, "txn": txn})
	}
	doc := entryOf(wf)
	doc["enabled"] = true
	doc["found"] = true
	return writeDoc(w, doc)
}

// chromeEvent mirrors the subset of the Chrome trace-event format the
// waterfall exporter emits (complete "X" spans and "M" metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained waterfalls as Chrome trace-event
// JSON: one thread per sampled transaction (named after it), one outer span
// for the transaction's life, and one nested span per attributed segment —
// so a convoy reads as stacked line-wait slices pointing at their holder.
// Timestamps are simulated microseconds, matching the obs exporter.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`)
		return err
	}
	const pid = int32(1)
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": "txn waterfalls (tail-sampled)"},
	}}
	for i, wf := range r.Slow(0) {
		t := int32(i + 1)
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: t,
			Args: map[string]any{"name": fmt.Sprintf("t%d.%d node%d", wf.Txn>>48, wf.Txn&((1<<48)-1), wf.Node)},
		})
		dur := float64(wf.Latency()) / 1e3
		events = append(events, chromeEvent{
			Name: "txn " + wf.Outcome.String(), Cat: "waterfall", Ph: "X",
			Ts: float64(wf.BeginSim) / 1e3, Dur: &dur, PID: pid, TID: t,
			Args: map[string]any{
				"txn": wf.Txn, "node": wf.Node, "latency_ns": wf.Latency(),
				"attributed_ns": wf.Attributed(), "reservoir": wf.Reservoir,
			},
		})
		for _, s := range wf.Segments {
			sd := float64(s.Dur) / 1e3
			args := map[string]any{"dur_ns": s.Dur}
			if s.Detail != 0 {
				args["detail"] = s.Detail
			}
			if s.Holder != 0 {
				args["holder_txn"] = s.Holder
			}
			events = append(events, chromeEvent{
				Name: s.Cause.String(), Cat: "waterfall", Ph: "X",
				Ts: float64(s.Start) / 1e3, Dur: &sd, PID: pid, TID: t, Args: args,
			})
		}
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	})
}

// WriteProm appends the waterfall's Prometheus lines: per-cause attributed
// wait counters plus the sampler's census.
func (r *Recorder) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP smdb_txn_wait_ns Attributed transaction sim-time by cause.\n# TYPE smdb_txn_wait_ns counter\n"); err != nil {
		return err
	}
	totals := r.Totals()
	for c, v := range totals {
		if _, err := fmt.Fprintf(w, "smdb_txn_wait_ns{cause=%q} %d\n", Cause(c).String(), v); err != nil {
			return err
		}
	}
	cov, attr, total := r.Coverage()
	_, err := fmt.Fprintf(w,
		"# HELP smdb_txn_waterfalls_total Completed transaction waterfalls.\n# TYPE smdb_txn_waterfalls_total counter\nsmdb_txn_waterfalls_total %d\n"+
			"# HELP smdb_txn_attributed_ns_total Attributed sim latency.\n# TYPE smdb_txn_attributed_ns_total counter\nsmdb_txn_attributed_ns_total %d\n"+
			"# HELP smdb_txn_latency_ns_total Measured sim latency.\n# TYPE smdb_txn_latency_ns_total counter\nsmdb_txn_latency_ns_total %d\n"+
			"# HELP smdb_txn_waterfall_coverage Attribution coverage (attributed/total).\n# TYPE smdb_txn_waterfall_coverage gauge\nsmdb_txn_waterfall_coverage %.6f\n",
		r.Completed(), attr, total, cov)
	return err
}

// WriteWaterfallJSON is the flight-recorder body (waterfall.json): the full
// /slow document plus the recovery-progress snapshot.
func (r *Recorder) WriteWaterfallJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, disabledJSON)
		return err
	}
	if err := r.WriteSlowJSON(w, 0); err != nil {
		return err
	}
	return r.Progress().WriteJSON(w)
}

// WriteWaterfallChrome, WriteWaterfallProm, and WriteRecoveryProgress are
// the names the obs.WaterfallSource interface uses (obs cannot import this
// package's types, so the recorder satisfies the interface structurally).
func (r *Recorder) WriteWaterfallChrome(w io.Writer) error { return r.WriteChromeTrace(w) }

// WriteWaterfallProm appends the Prometheus lines (see WriteProm).
func (r *Recorder) WriteWaterfallProm(w io.Writer) error { return r.WriteProm(w) }

// WriteRecoveryProgress writes the /recovery/progress document.
func (r *Recorder) WriteRecoveryProgress(w io.Writer) error { return r.Progress().WriteJSON(w) }

// Summary renders the one-line census obscli prints at Finish.
func (r *Recorder) Summary() string {
	if r == nil {
		return "waterfall disabled"
	}
	cov, _, total := r.Coverage()
	totals := r.Totals()
	s := fmt.Sprintf("waterfall: %d txns, coverage %.1f%% of %s", r.Completed(), cov*100, formatNS(total))
	for c, v := range totals {
		if v > 0 {
			s += fmt.Sprintf(" %s=%s", Cause(c).String(), formatNS(v))
		}
	}
	return s
}

// formatNS renders sim nanoseconds compactly.
func formatNS(ns int64) string {
	f := float64(ns)
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", f/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", f/1e6)
	default:
		return fmt.Sprintf("%.2fs", f/1e9)
	}
}
