package waterfall

import (
	"encoding/json"
	"io"
	"sync"
)

// Progress is the live recovery-progress observer behind /recovery/progress:
// while Recover runs it reports, per phase, records and bytes done, the
// wall-clock processing rate, and — once a planned total is known (the redo
// candidate count) — an ETA. Sim-time phase durations are folded in as each
// phase closes. A nil *Progress no-ops, like the recorder it belongs to.
type Progress struct {
	mu       sync.Mutex
	active   bool
	attempt  int
	down     int
	startW   int64 // wall ns (monotonic) recovery began
	lastOK   bool
	runs     int
	current  string
	phases   map[string]*PhaseProgress
	order    []string
	lastSimD int64
}

// PhaseProgress is one recovery phase's accumulated progress.
type PhaseProgress struct {
	Phase   string `json:"phase"`
	Records int64  `json:"records"`
	Bytes   int64  `json:"bytes"`
	// Planned is the known total work (0 = unknown), set once discovery
	// (collectRedo) has counted the candidates.
	Planned int64 `json:"planned,omitempty"`
	// SimNS is the phase's simulated duration, folded in when it closes.
	SimNS int64 `json:"sim_ns"`
	Done  bool  `json:"done"`

	firstW, lastW int64 // wall ns of first/last Note, for the rate
}

// RatePerSec is the phase's wall-clock record rate (0 until measurable).
func (p *PhaseProgress) RatePerSec() float64 {
	d := p.lastW - p.firstW
	if d <= 0 || p.Records == 0 {
		return 0
	}
	return float64(p.Records) / (float64(d) / 1e9)
}

// ETANS estimates wall ns remaining from the planned total and current
// rate; -1 when unknowable (no plan, no rate, or already done).
func (p *PhaseProgress) ETANS() int64 {
	if p.Done || p.Planned <= 0 || p.Records >= p.Planned {
		return -1
	}
	rate := p.RatePerSec()
	if rate <= 0 {
		return -1
	}
	return int64(float64(p.Planned-p.Records) / rate * 1e9)
}

func newProgress() *Progress {
	return &Progress{phases: map[string]*PhaseProgress{}}
}

// Start opens a recovery run over `down` crashed nodes, resetting per-run
// phase state.
func (p *Progress) Start(down int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.active = true
	p.attempt = 0
	p.down = down
	p.startW = now()
	p.current = ""
	p.phases = map[string]*PhaseProgress{}
	p.order = nil
	p.runs++
	p.mu.Unlock()
}

// Attempt records the current recovery attempt number (coordinator
// failovers re-enter recovery with attempt > 1).
func (p *Progress) Attempt(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.attempt = n
	p.mu.Unlock()
}

// End closes the recovery run.
func (p *Progress) End(ok bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.active = false
	p.lastOK = ok
	p.current = ""
	p.mu.Unlock()
}

func (p *Progress) phaseLocked(name string) *PhaseProgress {
	ph := p.phases[name]
	if ph == nil {
		ph = &PhaseProgress{Phase: name}
		p.phases[name] = ph
		p.order = append(p.order, name)
	}
	return ph
}

// Note adds records/bytes of completed work to the named phase and marks it
// current. Hot during redo apply; one mutex, no allocation after the first
// Note per phase.
func (p *Progress) Note(phase string, records, bytes int) {
	if p == nil {
		return
	}
	w := now()
	p.mu.Lock()
	ph := p.phaseLocked(phase)
	if ph.firstW == 0 {
		ph.firstW = w
	}
	ph.lastW = w
	ph.Records += int64(records)
	ph.Bytes += int64(bytes)
	p.current = phase
	p.mu.Unlock()
}

// Plan sets the named phase's known total work (the redo candidate count),
// enabling its ETA.
func (p *Progress) Plan(phase string, planned int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phaseLocked(phase).Planned = int64(planned)
	p.mu.Unlock()
}

// PhaseDone closes the named phase with its simulated duration (called from
// the recovery pipeline's phase tracker as each span ends).
func (p *Progress) PhaseDone(phase string, simNS int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	ph := p.phaseLocked(phase)
	ph.SimNS += simNS
	ph.Done = true
	if p.current == phase {
		p.current = ""
	}
	p.lastSimD += simNS
	p.mu.Unlock()
}

// progressDoc is the /recovery/progress JSON body.
type progressDoc struct {
	Enabled bool   `json:"enabled"`
	Active  bool   `json:"active"`
	Runs    int    `json:"runs"`
	Attempt int    `json:"attempt,omitempty"`
	Down    int    `json:"down,omitempty"`
	LastOK  bool   `json:"last_ok"`
	WallNS  int64  `json:"wall_ns,omitempty"`
	Current string `json:"current,omitempty"`
	Phases  []struct {
		PhaseProgress
		RatePerSec float64 `json:"rate_per_sec"`
		ETANS      int64   `json:"eta_ns"`
	} `json:"phases"`
}

// WriteJSON writes the live progress document.
func (p *Progress) WriteJSON(w io.Writer) error {
	if p == nil {
		_, err := io.WriteString(w, "{\"enabled\": false}\n")
		return err
	}
	p.mu.Lock()
	doc := progressDoc{
		Enabled: true,
		Active:  p.active,
		Runs:    p.runs,
		Attempt: p.attempt,
		Down:    p.down,
		LastOK:  p.lastOK,
		Current: p.current,
	}
	if p.active {
		doc.WallNS = now() - p.startW
	}
	for _, name := range p.order {
		ph := *p.phases[name]
		var row struct {
			PhaseProgress
			RatePerSec float64 `json:"rate_per_sec"`
			ETANS      int64   `json:"eta_ns"`
		}
		row.PhaseProgress = ph
		row.RatePerSec = ph.RatePerSec()
		row.ETANS = ph.ETANS()
		doc.Phases = append(doc.Phases, row)
	}
	p.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Snapshot returns a copy of the per-phase progress in first-seen order.
func (p *Progress) Snapshot() []PhaseProgress {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseProgress, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.phases[name])
	}
	return out
}
