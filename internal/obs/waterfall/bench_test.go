package waterfall

import "testing"

// The recorder is compiled into every hot path unconditionally; when no
// -waterfall flag attached one, every hook runs against a nil *Recorder (or
// nil *Progress) and must cost nothing: no allocation, a nil check and out.
// This is the guard the obs/audit/prof layers carry too.
func TestNilSinkZeroAlloc(t *testing.T) {
	var r *Recorder
	var p *Progress
	cases := []struct {
		name string
		fn   func()
	}{
		{"Begin", func() { r.Begin(1, 0, 0) }},
		{"OpStart", func() { r.OpStart(1, 0, 0) }},
		{"SpanStart", func() { r.SpanStart(1, 0, 0, CauseUndo) }},
		{"OpEnd", func() { r.OpEnd(1, 0, 0) }},
		{"CurrentTxn", func() { _ = r.CurrentTxn(0) }},
		{"AddWait", func() { r.AddWait(1, CauseLockWait, 0, 5, 0, 0) }},
		{"NoteLineWait", func() { r.NoteLineWait(0, 1, 0, 10, 5) }},
		{"NoteFetch", func() { r.NoteFetch(0, 1, 10, 5) }},
		{"NoteAppend", func() { r.NoteAppend(1, 10, 0, 1) }},
		{"End", func() { r.End(1, 10, OutcomeCommitted) }},
		{"CrashNode", func() { r.CrashNode(0) }},
		{"Totals", func() { _ = r.Totals() }},
		{"Coverage", func() { _, _, _ = r.Coverage() }},
		{"Completed", func() { _ = r.Completed() }},
		{"Live", func() { _ = r.Live() }},
		{"Progress", func() { _ = r.Progress() }},
		{"Progress.Start", func() { p.Start(1) }},
		{"Progress.Attempt", func() { p.Attempt(1) }},
		{"Progress.Note", func() { p.Note("redo-apply", 1, 8) }},
		{"Progress.Plan", func() { p.Plan("probe", 4) }},
		{"Progress.PhaseDone", func() { p.PhaseDone("undo", 10) }},
		{"Progress.End", func() { p.End(true) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("%s on nil sink allocated %.1f bytes-worth/op, want 0", c.name, n)
		}
	}
}

// BenchmarkNilHooks times the disabled path of a full operation's hook
// sequence (the overhead every un-instrumented run pays).
func BenchmarkNilHooks(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.OpStart(1, 0, int64(i))
		r.NoteLineWait(0, 1, 0, int64(i), 5)
		r.NoteAppend(1, int64(i), 0, int64(i))
		r.OpEnd(1, 0, int64(i))
	}
}

// BenchmarkEnabledTxn times one full transaction waterfall — begin, bracket,
// an attributed wait, residue close, end-and-sample — on the enabled path
// (the <10%-overhead acceptance number's microscopic view).
func BenchmarkEnabledTxn(b *testing.B) {
	r := New(Config{Nodes: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := int64(i + 1)
		sim := int64(i) * 20
		r.Begin(txn, 0, sim)
		r.OpStart(txn, 0, sim)
		r.AddWait(txn, CauseLineWait, sim, 5, 1, 0)
		r.OpEnd(txn, 0, sim+15)
		r.End(txn, sim+15, OutcomeCommitted)
	}
}

// BenchmarkEnabledHotHook times the single hottest hook (NoteLineWait via the
// node register) inside an open bracket.
func BenchmarkEnabledHotHook(b *testing.B) {
	r := New(Config{Nodes: 4})
	r.Begin(1, 0, 0)
	r.OpStart(1, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NoteLineWait(0, 1, 2, int64(i), 1)
	}
}
