package obs

import (
	"math/bits"
	"sync"
)

// histBuckets is the number of log2 buckets: bucket 0 holds values <= 1,
// bucket i holds values in (2^(i-1), 2^i], covering the full int64 range.
const histBuckets = 64

// Histogram is a log2-bucketed latency distribution. Observations are
// nanoseconds (simulated-clock); quantiles interpolate linearly inside a
// bucket, which is accurate to a factor-of-two band — plenty for latency
// shapes spanning orders of magnitude. Safe for concurrent use.
type Histogram struct {
	name string

	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram creates an empty histogram. The name is used as the
// Prometheus metric stem and the table row label.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: -1}
}

// Name returns the histogram's metric name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a value onto its log2 bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v) - 1)
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1) << uint(i)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Merge folds a snapshot into h, bucket by bucket — used to aggregate
// per-shard histograms (e.g. the dependency census across protocol runs).
// Merging an empty snapshot is a no-op.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range s.Buckets {
		h.buckets[i] += c
	}
	h.count += s.Count
	h.sum += s.Sum
	if h.min < 0 || s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Name       string
	Count, Sum int64
	Min, Max   int64
	Buckets    [histBuckets]int64
}

// Snapshot returns a consistent copy (Min is 0 when empty).
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name:    h.name,
		Count:   h.count,
		Sum:     h.sum,
		Max:     h.max,
		Buckets: h.buckets,
	}
	if h.min > 0 {
		s.Min = h.min
	}
	return s
}

// Mean returns the arithmetic mean, 0 when empty.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile returns the q-th quantile (0 <= q <= 1) with linear interpolation
// inside the containing log2 bucket, clamped to the observed [Min, Max].
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(bucketUpper(i - 1))
			}
			hi := float64(bucketUpper(i))
			frac := (rank - cum) / float64(c)
			v := int64(lo + (hi-lo)*frac)
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}
