package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// TestTracerLiveCrash drives a goroutine-per-node workload with an attached
// observer, crashes a node out from under it, and runs restart recovery.
// Every engine layer's hooks fire concurrently while a reader goroutine
// snapshots the trace, so `go test -race ./internal/obs` checks the
// observer's synchronization end to end.
func TestTracerLiveCrash(t *testing.T) {
	o := obs.New()
	db, err := recovery.New(recovery.Config{
		Machine:     machine.Config{Nodes: 4},
		Protocol:    recovery.VolatileSelectiveRedo,
		RecsPerLine: 4,
		Pages:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.AttachObserver(o)
	if err := workload.Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 500, OpsPerTxn: 8,
		ReadFraction: 0.4, SharingFraction: 0.6, Seed: 7,
	})

	stop := make(chan struct{})
	workDone := make(chan struct{})
	go func() {
		defer close(workDone)
		if _, err := r.RunConcurrent(stop); err != nil {
			t.Errorf("workload: %v", err)
		}
	}()
	// Concurrent reader: snapshots must be safe while workers record.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = o.Events()
				_ = o.LineLockHist().Snapshot()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	time.Sleep(5 * time.Millisecond)
	victim := machine.NodeID(3)
	db.Crash(victim)
	close(stop)
	<-workDone
	<-readDone

	rep, err := db.Recover([]machine.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 {
		t.Error("recovery report has no phase breakdown")
	}
	if o.Count(obs.KindCrash) == 0 {
		t.Error("no crash event recorded")
	}
	if o.Count(obs.KindTxnBegin) == 0 {
		t.Error("no txn-begin events recorded")
	}
	if o.Count(obs.KindRecovery) != 1 {
		t.Errorf("recovery spans recorded = %d, want 1", o.Count(obs.KindRecovery))
	}
	if got, want := int64(len(o.PhaseSpans())), o.Count(obs.KindPhase); got != want {
		t.Errorf("PhaseSpans() = %d spans, counter says %d", got, want)
	}
	if v := db.CheckIFA(0); len(v) != 0 {
		t.Errorf("IFA violations after live-crash recovery: %v", v)
	}

	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("live trace export is not valid JSON")
	}
}
