package obs

import "testing"

// The engine calls the observer's hooks on every lock acquire, WAL append,
// and coherency transition, almost always with observability disabled. The
// nil-receiver fast path must therefore cost a few nanoseconds and zero
// allocations; these benchmarks (with -benchmem) and the allocation test
// pin that contract.

func BenchmarkNilObserver(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Instant(KindMigrate, 1, int64(i), 5, 0)
	}
}

func BenchmarkNilObserverSpan(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Span(KindPhase, PhaseRedoApply, SystemNode, int64(i), 10)
	}
}

func BenchmarkNilObserverHistogram(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.ObserveLineLock(int64(i))
	}
}

// BenchmarkEnabledObserverInstant is the comparison point: the price a run
// pays once -trace/-metrics/-http turn the observer on.
func BenchmarkEnabledObserverInstant(b *testing.B) {
	o := NewWithCapacity(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Instant(KindMigrate, 1, int64(i), 5, 0)
	}
}

func TestNilObserverHooksDoNotAllocate(t *testing.T) {
	var o *Observer
	if n := testing.AllocsPerRun(100, func() {
		o.Instant(KindMigrate, 1, 10, 5, 0)
		o.Span(KindPhase, PhaseRedoApply, SystemNode, 10, 5)
		o.Record(Event{Kind: KindCrash})
		o.ObserveLineLock(7)
		o.ObserveCommit(7)
		o.ObserveLogForce(7)
	}); n != 0 {
		t.Errorf("disabled observer hooks allocate %v times per call", n)
	}
}
