package deps

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smdb/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracker builds a small deterministic graph: one logged transaction
// whose line migrated into the (later crashed) node 3, one deferred-logging
// transaction whose line was downgraded into node 0, a WAL-force horizon, and
// one crash episode. Every exporter input is pinned so the output is
// byte-stable.
func goldenTracker() *Tracker {
	tr := New(nil)
	t1 := txnID(1, 1)
	t2 := txnID(2, 1)
	tr.NoteWrite(t1, 1, 5, 100, 7, 10)
	tr.NoteWrite(t2, 2, 6, 200, 0, 12) // never logged
	tr.OnEvent(ev(obs.KindWALForce, 1, 15, 3, 7))
	tr.OnEvent(ev(obs.KindMigrate, 3, 20, 5, 1))
	tr.OnEvent(ev(obs.KindDowngrade, 0, 25, 6, 2))
	tr.NoteCrash([]int32{3}, []int32{5}, nil, 30)
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestWriteDOTGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracker().WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "deps_dot.golden", buf.Bytes())
}

func TestWriteGraphJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracker().WriteGraphJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("graph export is not valid JSON:\n%s", buf.String())
	}
	// The export must round-trip into the documented shape.
	var g GraphJSON
	if err := json.Unmarshal(buf.Bytes(), &g); err != nil {
		t.Fatal(err)
	}
	if len(g.Txns) != 2 || len(g.Crashes) != 1 {
		t.Errorf("graph = %d txns %d crashes, want 2/1", len(g.Txns), len(g.Crashes))
	}
	checkGolden(t, "deps_json.golden", buf.Bytes())
}

func TestWriteDOTNil(t *testing.T) {
	var tr *Tracker
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("digraph recovery_deps")) {
		t.Errorf("nil-tracker DOT = %q", buf.String())
	}
}
