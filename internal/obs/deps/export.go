package deps

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Exporters: the dependency graph as Graphviz DOT and as JSON, served by
// the live introspection server's /deps endpoint and written into crash
// flight-recorder dumps. Both take a consistent snapshot under the tracker
// lock and render deterministically (sorted nodes, transactions, and
// holders), so they golden-test cleanly. The Tracker satisfies
// obs.GraphWriter.

// WriteDOT renders the live graph as Graphviz DOT: machine nodes as boxes
// (annotated when down), in-flight transactions as ellipses, and one edge
// per (transaction, node, line) dependency labelled with the line, the
// exposing coherency event, and the covering log record. Unlogged edges —
// the hazard LBM exists to prevent — render red.
func (t *Tracker) WriteDOT(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "digraph recovery_deps {\n  // no dependency tracker attached\n}\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	down := make(map[int32]bool)
	for _, c := range t.crashes {
		for _, n := range c.Nodes {
			down[n] = true
		}
	}
	nodeSet := make(map[int32]bool)
	ids := make([]int64, 0, len(t.txns))
	for id, ts := range t.txns {
		ids = append(ids, id)
		nodeSet[ts.node] = true
		for _, e := range ts.edges {
			nodeSet[e.To] = true
		}
	}
	sort.Slice(ids, func(i, j int) bool { return uint64(ids[i]) < uint64(ids[j]) })
	nodes := make([]int32, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var b []byte
	b = append(b, "digraph recovery_deps {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n"...)
	for _, n := range nodes {
		label := fmt.Sprintf("node %d", n)
		attr := ""
		if down[n] {
			label += "\\n(down)"
			attr = ",style=filled,fillcolor=lightgray"
		}
		b = append(b, fmt.Sprintf("  \"node%d\" [shape=box,label=\"%s\"%s];\n", n, label, attr)...)
	}
	for _, id := range ids {
		ts := t.txns[id]
		b = append(b, fmt.Sprintf("  %q [shape=ellipse,label=\"%s\\n%s, %d writes\"];\n",
			tname(id), tname(id), ts.status, len(ts.writes))...)
		b = append(b, fmt.Sprintf("  %q -> \"node%d\" [style=dashed,label=\"home\"];\n",
			tname(id), ts.node)...)
		for _, e := range ts.edges {
			cover := fmt.Sprintf("lsn=%d", e.LSN)
			color := ""
			if e.Unlogged {
				cover = "UNLOGGED"
				color = ",color=red,fontcolor=red"
			}
			b = append(b, fmt.Sprintf("  %q -> \"node%d\" [label=\"0x%X %s %s\"%s];\n",
				tname(id), e.To, e.Line, e.Kind, cover, color)...)
		}
	}
	b = append(b, "}\n"...)
	_, err := w.Write(b)
	return err
}

// TxnJSON is one in-flight transaction in the JSON graph.
type TxnJSON struct {
	ID     int64  `json:"id"`
	Name   string `json:"name"`
	Node   int32  `json:"node"`
	Status string `json:"status"`
	Writes int    `json:"writes"`
	Deps   []Edge `json:"deps"`
}

// LineJSON is one tracked cache line in the JSON graph.
type LineJSON struct {
	Line    int32           `json:"line"`
	Holders []int32         `json:"holders"`
	Writers []string        `json:"writers"`
	History []ResidencyStep `json:"history"`
}

// GraphJSON is the /deps?format=json document.
type GraphJSON struct {
	Txns      []TxnJSON        `json:"txns"`
	Lines     []LineJSON       `json:"lines"`
	ForcedLSN map[string]int64 `json:"forced_lsn"`
	Crashes   []Crash          `json:"crashes"`
	Census    Census           `json:"census"`
}

// Graph snapshots the full dependency graph.
func (t *Tracker) Graph() GraphJSON {
	if t == nil {
		return GraphJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g := GraphJSON{ForcedLSN: make(map[string]int64), Census: t.censusLocked()}
	ids := make([]int64, 0, len(t.txns))
	for id := range t.txns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return uint64(ids[i]) < uint64(ids[j]) })
	for _, id := range ids {
		ts := t.txns[id]
		g.Txns = append(g.Txns, TxnJSON{
			ID: id, Name: tname(id), Node: ts.node, Status: ts.status.String(),
			Writes: len(ts.writes), Deps: append([]Edge(nil), ts.edges...),
		})
	}
	lineIDs := make([]int32, 0, len(t.lines))
	for l := range t.lines {
		lineIDs = append(lineIDs, l)
	}
	sort.Slice(lineIDs, func(i, j int) bool { return lineIDs[i] < lineIDs[j] })
	for _, lid := range lineIDs {
		l := t.lines[lid]
		lj := LineJSON{Line: lid, History: append([]ResidencyStep(nil), l.history...)}
		for n := int32(0); n < 64; n++ {
			if l.holders&bit(n) != 0 {
				lj.Holders = append(lj.Holders, n)
			}
		}
		wids := make([]int64, 0, len(l.writers))
		for id := range l.writers {
			wids = append(wids, id)
		}
		sort.Slice(wids, func(i, j int) bool { return uint64(wids[i]) < uint64(wids[j]) })
		for _, id := range wids {
			lj.Writers = append(lj.Writers, tname(id))
		}
		g.Lines = append(g.Lines, lj)
	}
	for n, lsn := range t.forced {
		g.ForcedLSN[fmt.Sprintf("node%d", n)] = lsn
	}
	g.Crashes = append([]Crash(nil), t.crashes...)
	return g
}

// WriteGraphJSON writes the Graph snapshot as indented JSON.
func (t *Tracker) WriteGraphJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Graph())
}

// Census is the dependency-set size distribution over every transaction the
// tracker has seen — the quantity experiment E17 compares across LBM
// policies (stable LBM neutralizes dependencies by forcing before exposure;
// volatile LBM covers them with surviving volatile logs; the ablated
// control leaves them unlogged).
type Census struct {
	// Txns counts every transaction observed (settled plus in flight);
	// Active the in-flight subset.
	Txns   int `json:"txns"`
	Active int `json:"active"`
	// Edges counts dependency edges discovered; UnloggedEdges the subset
	// with no covering log record.
	Edges         int `json:"edges"`
	UnloggedEdges int `json:"unlogged_edges"`
	// TxnsWithDeps counts transactions that ever depended on another node;
	// TxnsWithUnlogged those that ever exposed an unlogged update.
	TxnsWithDeps     int `json:"txns_with_deps"`
	TxnsWithUnlogged int `json:"txns_with_unlogged"`
	// MaxDeps is the largest per-transaction dependency-set size; DepSizes
	// the full size histogram (distinct dependent nodes -> transactions).
	MaxDeps  int         `json:"max_deps"`
	DepSizes map[int]int `json:"dep_sizes"`
}

// MeanDeps is the mean dependency-set size across all transactions.
func (c Census) MeanDeps() float64 {
	if c.Txns == 0 {
		return 0
	}
	total := 0
	for size, n := range c.DepSizes {
		total += size * n
	}
	return float64(total) / float64(c.Txns)
}

// Census returns the cumulative dependency census.
func (t *Tracker) Census() Census {
	if t == nil {
		return Census{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.censusLocked()
}

func (t *Tracker) censusLocked() Census {
	c := Census{
		Txns:             t.settledTxns + len(t.txns),
		Active:           len(t.txns),
		Edges:            t.edgesTotal,
		UnloggedEdges:    t.unloggedTotal,
		TxnsWithDeps:     t.settledWithDeps,
		TxnsWithUnlogged: t.settledUnlogged,
		DepSizes:         make(map[int]int, len(t.settledSizes)+4),
	}
	for size, n := range t.settledSizes {
		c.DepSizes[size] += n
		if size > c.MaxDeps {
			c.MaxDeps = size
		}
	}
	for _, ts := range t.txns {
		size := popcount(ts.depNodes)
		c.DepSizes[size]++
		if size > 0 {
			c.TxnsWithDeps++
		}
		if ts.unlogged {
			c.TxnsWithUnlogged++
		}
		if size > c.MaxDeps {
			c.MaxDeps = size
		}
	}
	return c
}
