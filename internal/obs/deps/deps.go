// Package deps maintains the live recovery-dependency graph of the paper's
// section 3: cache-coherency traffic silently places a transaction's
// uncommitted updates in other nodes' failure domains, and the LBM policies
// exist precisely to neutralize those hidden dependencies. The Tracker
// consumes the engine's coherency event stream (migrations, replications,
// downgrades, invalidations, installs, discards, trigger fires) plus
// transaction lifecycle and WAL-force events, and maintains:
//
//   - per transaction, its *node-dependency set*: every node that currently
//     caches a line carrying the transaction's uncommitted data, with the
//     coherency event that exposed it and the covering log record's LSN;
//   - per cache line, its bounded *residency history*: the sequence of
//     installs, migrations, replications, and losses, so a post-mortem can
//     cite the concrete transition that moved data into a failure domain.
//
// Three consumers sit on top: the IFA explainer (verdict.go) renders
// per-transaction verdicts at crash time; the exporters (export.go) serve
// the graph as DOT and JSON for the live introspection server and the crash
// flight recorder; and the dependency census (export.go) feeds experiment
// E17's policy comparison.
//
// A nil *Tracker is fully inert: every method is nil-receiver safe, so
// engine hooks cost a single pointer test when dependency tracking is off.
package deps

import (
	"fmt"
	"sort"
	"sync"

	"smdb/internal/obs"
)

// historyCap bounds each line's retained residency history; the newest
// steps win, matching the flight recorder's last-N philosophy.
const historyCap = 32

// ResidencyStep is one entry of a line's residency history.
type ResidencyStep struct {
	Sim  int64  `json:"sim"`
	Kind string `json:"kind"` // install|migrate|replicate|downgrade|invalidate|discard|lost|lbm-trigger
	From int32  `json:"from"` // -1 when not applicable
	To   int32  `json:"to"`   // -1 when not applicable
}

// Edge is one recovery-dependency edge: transaction Txn (home node From)
// has uncommitted data on line Line currently cached by node To, exposed by
// coherency event Kind at simulated time Sim. LSN is the highest log record
// covering the transaction's updates to that line when the edge appeared
// (0 = no log record existed — the deferred-logging hazard); Unlogged is
// true if any covering update had no log record.
type Edge struct {
	Txn      int64  `json:"txn"`
	From     int32  `json:"from"`
	To       int32  `json:"to"`
	Line     int32  `json:"line"`
	Kind     string `json:"kind"`
	Sim      int64  `json:"sim"`
	LSN      int64  `json:"lsn"`
	Unlogged bool   `json:"unlogged"`
}

// Crash records one failure event fed to NoteCrash.
type Crash struct {
	Sim   int64   `json:"sim"`
	Nodes []int32 `json:"nodes"`
	Lost  []int32 `json:"lost_lines"`
}

// txn lifecycle states, tracker-side.
type txnStatus uint8

const (
	statusActive txnStatus = iota
	statusCommitted
	statusAborted
	statusCrashed
)

func (s txnStatus) String() string {
	switch s {
	case statusActive:
		return "active"
	case statusCommitted:
		return "committed"
	case statusAborted:
		return "aborted"
	case statusCrashed:
		return "crashed"
	}
	return "status?"
}

// write is one update a transaction applied (fed by NoteWrite).
type write struct {
	line int32
	slot int64
	lsn  int64 // 0 = never logged (deferred logging)
	sim  int64
}

type edgeKey struct {
	to   int32
	line int32
}

type txnState struct {
	id       int64
	node     int32
	status   txnStatus
	beginSim int64
	writes   map[int64]write // slot key -> latest write
	edges    []Edge
	edgeSet  map[edgeKey]bool
	depNodes uint64 // distinct nodes ever depended on
	unlogged bool   // ever exposed an unlogged update
}

type lineState struct {
	holders uint64
	history []ResidencyStep
	writers map[int64]bool // active txns with uncommitted data on this line
}

func (l *lineState) step(s ResidencyStep) {
	if len(l.history) >= historyCap {
		copy(l.history, l.history[1:])
		l.history = l.history[:historyCap-1]
	}
	l.history = append(l.history, s)
}

// Tracker is the dependency-graph tracker. Feed it events by installing it
// as the Observer's sink (obs.Observer.SetSink) and by calling the direct
// Note* hooks from the recovery layer (writes and crashes carry context the
// event stream alone does not). All methods are safe for concurrent use and
// nil-receiver safe.
type Tracker struct {
	// echo, when non-nil, receives a KindDepEdge instant for every edge
	// discovered, so Chrome traces render the dependency structure inline.
	echo *obs.Observer

	mu       sync.Mutex
	lines    map[int32]*lineState
	txns     map[int64]*txnState
	forced   map[int32]int64 // node -> highest stable LSN
	crashes  []Crash
	verdicts []Verdict

	// Cumulative census over settled transactions (active ones are folded
	// in at query time).
	settledTxns     int
	settledSizes    map[int]int // dep-set size -> settled txn count
	settledWithDeps int
	settledUnlogged int
	edgesTotal      int
	unloggedTotal   int
}

// New creates a tracker. echo may be nil; when set, every discovered
// dependency edge is echoed into it as a KindDepEdge instant.
func New(echo *obs.Observer) *Tracker {
	return &Tracker{
		echo:         echo,
		lines:        make(map[int32]*lineState),
		txns:         make(map[int64]*txnState),
		forced:       make(map[int32]int64),
		settledSizes: make(map[int]int),
	}
}

// Enabled reports whether tracking is live (false for a nil Tracker).
func (t *Tracker) Enabled() bool { return t != nil }

func bit(n int32) uint64 {
	if n < 0 || n >= 64 {
		return 0
	}
	return 1 << uint(n)
}

func popcount(m uint64) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// tname renders a transaction id as the engine prints it (wal.TxnID packs
// the home node in the high 16 bits and a per-node sequence below).
func tname(id int64) string {
	return fmt.Sprintf("t%d.%d", uint64(id)>>48, uint64(id)&((1<<48)-1))
}

func (t *Tracker) line(id int32) *lineState {
	l := t.lines[id]
	if l == nil {
		l = &lineState{writers: make(map[int64]bool)}
		t.lines[id] = l
	}
	return l
}

func (t *Tracker) ensureTxnLocked(id int64, node int32, sim int64) *txnState {
	ts := t.txns[id]
	if ts == nil {
		ts = &txnState{
			id: id, node: node, status: statusActive, beginSim: sim,
			writes:  make(map[int64]write),
			edgeSet: make(map[edgeKey]bool),
		}
		t.txns[id] = ts
	}
	return ts
}

// pendEdge is a dep-edge echo deferred until the tracker lock is released.
type pendEdge struct {
	node int32
	sim  int64
	txn  int64
	b    int64
}

// OnEvent is the obs.Sink hook: it folds one engine event into the graph.
// It may run with emitter locks (machine, wal) held, so it never calls back
// into the engine; dep-edge echoes go only to the Observer, after the
// tracker lock is released.
func (t *Tracker) OnEvent(e obs.Event) {
	if t == nil || e.Kind == obs.KindDepEdge {
		return
	}
	var pend []pendEdge
	t.mu.Lock()
	switch e.Kind {
	case obs.KindMigrate:
		// node = new exclusive holder, A = line, B = previous holder.
		l := t.line(int32(e.A))
		l.step(ResidencyStep{Sim: e.Sim, Kind: "migrate", From: int32(e.B), To: e.Node})
		l.holders = bit(e.Node)
		pend = t.addDepsLocked(l, int32(e.A), e.Node, "migrate", e.Sim)
	case obs.KindDowngrade:
		// node = reader gaining a shared copy, A = line, B = former
		// exclusive holder (which keeps its copy).
		l := t.line(int32(e.A))
		l.step(ResidencyStep{Sim: e.Sim, Kind: "downgrade", From: int32(e.B), To: e.Node})
		l.holders |= bit(e.Node)
		pend = t.addDepsLocked(l, int32(e.A), e.Node, "downgrade", e.Sim)
	case obs.KindReplicate:
		// node = new sharer, A = line, B = a prior holder.
		l := t.line(int32(e.A))
		l.step(ResidencyStep{Sim: e.Sim, Kind: "replicate", From: int32(e.B), To: e.Node})
		l.holders |= bit(e.Node)
		pend = t.addDepsLocked(l, int32(e.A), e.Node, "replicate", e.Sim)
	case obs.KindInvalidate:
		// node = writer becoming sole exclusive holder, A = line.
		l := t.line(int32(e.A))
		l.step(ResidencyStep{Sim: e.Sim, Kind: "invalidate", From: -1, To: e.Node})
		l.holders = bit(e.Node)
	case obs.KindInstall:
		// node = new sole holder, fresh content from stable storage.
		l := t.line(int32(e.A))
		l.step(ResidencyStep{Sim: e.Sim, Kind: "install", From: -1, To: e.Node})
		l.holders = bit(e.Node)
	case obs.KindDiscard:
		l := t.line(int32(e.A))
		l.holders &^= bit(e.Node)
		if e.B != 0 {
			l.holders = 0
			l.step(ResidencyStep{Sim: e.Sim, Kind: "discard-lost", From: e.Node, To: -1})
		} else {
			l.step(ResidencyStep{Sim: e.Sim, Kind: "discard", From: e.Node, To: -1})
		}
	case obs.KindTriggerFire:
		l := t.line(int32(e.A))
		l.step(ResidencyStep{Sim: e.Sim, Kind: "lbm-trigger", From: -1, To: e.Node})
	case obs.KindWALForce:
		// B = highest stable LSN after the force.
		if e.B > t.forced[e.Node] {
			t.forced[e.Node] = e.B
		}
	case obs.KindTxnBegin:
		t.ensureTxnLocked(e.A, e.Node, e.Sim)
	case obs.KindTxnCommit:
		t.settleLocked(e.A, statusCommitted)
	case obs.KindTxnAbort:
		t.settleLocked(e.A, statusAborted)
	}
	t.mu.Unlock()
	for _, p := range pend {
		t.echo.Instant(obs.KindDepEdge, p.node, p.sim, p.txn, p.b)
	}
}

// addDepsLocked creates dependency edges: every active writer of line l now
// has uncommitted data in node to's failure domain. Returns the dep-edge
// echoes to emit once the lock is released. Writer iteration is sorted so
// edge discovery order is deterministic.
func (t *Tracker) addDepsLocked(l *lineState, line, to int32, kind string, sim int64) []pendEdge {
	if len(l.writers) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(l.writers))
	for id := range l.writers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return uint64(ids[i]) < uint64(ids[j]) })
	var pend []pendEdge
	for _, id := range ids {
		ts := t.txns[id]
		if ts == nil || ts.status != statusActive || ts.node == to {
			continue
		}
		k := edgeKey{to: to, line: line}
		if ts.edgeSet[k] {
			continue
		}
		ts.edgeSet[k] = true
		lsn, unlogged := lineLSN(ts, line)
		ts.edges = append(ts.edges, Edge{
			Txn: id, From: ts.node, To: to, Line: line,
			Kind: kind, Sim: sim, LSN: lsn, Unlogged: unlogged,
		})
		ts.depNodes |= bit(to)
		t.edgesTotal++
		if unlogged {
			t.unloggedTotal++
			ts.unlogged = true
		}
		if t.echo != nil {
			pend = append(pend, pendEdge{
				node: ts.node, sim: sim, txn: id,
				b: int64(to)<<32 | int64(uint32(line)),
			})
		}
	}
	return pend
}

// lineLSN summarizes a transaction's log coverage for its writes on line:
// the highest covering LSN and whether any covering update was never logged.
func lineLSN(ts *txnState, line int32) (lsn int64, unlogged bool) {
	for _, w := range ts.writes {
		if w.line != line {
			continue
		}
		if w.lsn == 0 {
			unlogged = true
		} else if w.lsn > lsn {
			lsn = w.lsn
		}
	}
	return lsn, unlogged
}

// settleLocked finishes a transaction: its dep-set size joins the census and
// it leaves the live graph.
func (t *Tracker) settleLocked(id int64, status txnStatus) {
	ts := t.txns[id]
	if ts == nil {
		return
	}
	ts.status = status
	size := popcount(ts.depNodes)
	t.settledTxns++
	t.settledSizes[size]++
	if size > 0 {
		t.settledWithDeps++
	}
	if ts.unlogged {
		t.settledUnlogged++
	}
	for _, w := range ts.writes {
		if l := t.lines[w.line]; l != nil {
			delete(l.writers, id)
		}
	}
	delete(t.txns, id)
}

// NoteWrite records one update transaction txn applied on its home node:
// the written line, a stable slot key, the covering log record's LSN (0 if
// the update was never logged — the deferred-logging negative control), and
// the simulated time. It is called from inside the update critical section
// (the line lock pins the line), so the write is registered before the line
// can move. Under write-broadcast coherency the fresh data is already
// resident on every sharer, so edges to current remote holders are created
// immediately.
func (t *Tracker) NoteWrite(txn int64, node, line int32, slot, lsn, sim int64) {
	if t == nil {
		return
	}
	var pend []pendEdge
	t.mu.Lock()
	ts := t.ensureTxnLocked(txn, node, sim)
	ts.writes[slot] = write{line: line, slot: slot, lsn: lsn, sim: sim}
	l := t.line(line)
	l.writers[txn] = true
	l.holders |= bit(node)
	for n := int32(0); n < 64; n++ {
		if n != node && l.holders&bit(n) != 0 {
			pend = append(pend, t.addDepsLocked(l, line, n, "broadcast", sim)...)
		}
	}
	t.mu.Unlock()
	for _, p := range pend {
		t.echo.Instant(obs.KindDepEdge, p.node, p.sim, p.txn, p.b)
	}
}

// TxnRef identifies one in-flight transaction the engine knows about at a
// crash instant: the victim list the recovery layer hands to NoteCrash so
// the explainer's census cannot lag the engine's.
type TxnRef struct {
	ID   int64
	Node int32
}

// NoteCrash folds a node-failure event into the graph: the crashed nodes'
// cached copies vanish, the listed lines are destroyed outright (the crash
// held their sole copies), transactions homed on crashed nodes become crash
// victims, and the IFA explainer computes a verdict for every in-flight
// transaction against the crash-instant state. It is called from the
// recovery layer's crash-notify hook — with the machine lock held — so it
// must not (and does not) call back into the engine.
//
// victims is the verdict-presence barrier: the engine's own census of
// active transactions homed on the crashed nodes, taken under its lock in
// the same crash callback. Transaction registration normally rides the
// KindTxnBegin observer event, which DB.Begin emits *after* releasing its
// lock — so a crash landing in that window reaches the tracker before the
// begin event does, the explainer issues no verdict for the victim, and the
// cross-check later flags "recovery aborted tX.Y but explainer issued no
// verdict". Registering the listed victims here, atomically with the
// verdict computation, closes that window; the late begin event then finds
// the transaction already known and is a no-op.
func (t *Tracker) NoteCrash(crashed, lost []int32, victims []TxnRef, sim int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, v := range victims {
		t.ensureTxnLocked(v.ID, v.Node, sim)
	}
	var cmask uint64
	for _, n := range crashed {
		cmask |= bit(n)
	}
	lostSet := make(map[int32]bool, len(lost))
	for _, ln := range lost {
		lostSet[ln] = true
		l := t.line(ln)
		l.holders = 0
		l.step(ResidencyStep{Sim: sim, Kind: "lost", From: -1, To: -1})
	}
	for _, l := range t.lines {
		l.holders &^= cmask
	}
	crash := Crash{Sim: sim, Nodes: append([]int32(nil), crashed...), Lost: append([]int32(nil), lost...)}
	t.crashes = append(t.crashes, crash)
	var newly []*txnState
	for _, ts := range t.txns {
		if ts.status == statusActive && cmask&bit(ts.node) != 0 {
			ts.status = statusCrashed
			newly = append(newly, ts)
		}
	}
	t.verdicts = append(t.verdicts, t.explainLocked(crash, lostSet, newly)...)
}

// NoteRecovered marks the end of a successful restart recovery: crash
// victims recovery aborted settle as aborted, the remaining victims settle
// as committed (their commit records were stable — the crash only ate the
// acknowledgement), and the crash episode closes. Accumulated verdicts stay
// until TakeVerdicts drains them.
func (t *Tracker) NoteRecovered(aborted []int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ab := make(map[int64]bool, len(aborted))
	for _, id := range aborted {
		ab[id] = true
	}
	var crashedIDs []int64
	for id, ts := range t.txns {
		if ts.status == statusCrashed {
			crashedIDs = append(crashedIDs, id)
		}
	}
	for _, id := range crashedIDs {
		if ab[id] {
			t.settleLocked(id, statusAborted)
		} else {
			t.settleLocked(id, statusCommitted)
		}
	}
	t.crashes = nil
}

// Verdicts returns a copy of the accumulated explainer verdicts.
func (t *Tracker) Verdicts() []Verdict {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Verdict(nil), t.verdicts...)
}

// TakeVerdicts drains and returns the accumulated explainer verdicts.
func (t *Tracker) TakeVerdicts() []Verdict {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.verdicts
	t.verdicts = nil
	return out
}
