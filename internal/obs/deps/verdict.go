package deps

import (
	"fmt"
	"sort"

	"smdb/internal/obs"
)

// The IFA explainer: at every crash the tracker renders, per in-flight
// transaction, a human-readable verdict grounding the recovery outcome in
// concrete coherency events — which migration exposed which update to which
// failure domain, and what log coverage (stable, volatile, none) neutralizes
// the dependency. The chaos harness asserts these verdicts against its IFA
// checker: every recovery abort must correspond to a crashed verdict, and
// every "surviving transaction's update lost" violation to a Doomed one.

// Verdict is one transaction's explainer output for one crash.
type Verdict struct {
	// Txn is the transaction id; Name its engine-format rendering ("t3.5").
	Txn  int64
	Name string
	// Node is the transaction's home node; Sim the crash's simulated time.
	Node int32
	Sim  int64
	// Crashed is true when the transaction's own node died: recovery will
	// abort it (or settle it committed if its commit record was stable).
	Crashed bool
	// Doomed is true for a *survivor* whose update was destroyed with no
	// log record anywhere — the unlogged cross-node dependency hazard LBM
	// exists to prevent. Real protocols never produce it; the ablated
	// no-LBM control does.
	Doomed bool
	// Text is the one-line verdict; Evidence the per-update detail citing
	// the concrete residency events.
	Text     string
	Evidence []string
}

func (v Verdict) String() string { return v.Text }

func lineName(l int32) string { return fmt.Sprintf("line 0x%X", l) }

// coverage describes a write's log coverage from the perspective of its
// home node's forced horizon.
func (t *Tracker) coverageLocked(ts *txnState, w write) string {
	switch {
	case w.lsn == 0:
		return "no log record (deferred logging)"
	case w.lsn <= t.forced[ts.node]:
		return fmt.Sprintf("stable log record LSN %d", w.lsn)
	default:
		return fmt.Sprintf("volatile log record LSN %d on node %d", w.lsn, ts.node)
	}
}

// lastExposure finds the most recent residency step that moved line l's
// content into one of the crashed nodes, for citation in evidence.
func lastExposure(l *lineState, crashed map[int32]bool) (ResidencyStep, bool) {
	for i := len(l.history) - 1; i >= 0; i-- {
		s := l.history[i]
		switch s.Kind {
		case "migrate", "replicate", "downgrade", "invalidate", "install":
			if crashed[s.To] {
				return s, true
			}
		}
	}
	return ResidencyStep{}, false
}

// sortedWrites returns a transaction's writes in slot order (deterministic
// evidence ordering).
func sortedWrites(ts *txnState) []write {
	out := make([]write, 0, len(ts.writes))
	for _, w := range ts.writes {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].slot < out[j].slot })
	return out
}

// explainLocked computes the verdicts for one crash: one per newly-crashed
// transaction, one per surviving in-flight transaction that has updates or
// dependencies to account for.
func (t *Tracker) explainLocked(crash Crash, lostSet map[int32]bool, newly []*txnState) []Verdict {
	crashedNodes := make(map[int32]bool, len(crash.Nodes))
	for _, n := range crash.Nodes {
		crashedNodes[n] = true
	}
	sort.Slice(newly, func(i, j int) bool { return uint64(newly[i].id) < uint64(newly[j].id) })

	var out []Verdict
	for _, ts := range newly {
		out = append(out, t.explainCrashedLocked(ts, crash, lostSet, crashedNodes))
	}

	var survivors []*txnState
	for _, ts := range t.txns {
		if ts.status == statusActive && (len(ts.writes) > 0 || len(ts.edges) > 0) {
			survivors = append(survivors, ts)
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return uint64(survivors[i].id) < uint64(survivors[j].id) })
	for _, ts := range survivors {
		out = append(out, t.explainSurvivorLocked(ts, crash, lostSet, crashedNodes))
	}
	return out
}

// explainCrashedLocked: the transaction's own node died. Recovery aborts it
// unless its commit record was already stable; its updates that migrated to
// survivors must be undone there, which the evidence pins to the concrete
// coherency events.
func (t *Tracker) explainCrashedLocked(ts *txnState, crash Crash, lostSet map[int32]bool, crashedNodes map[int32]bool) Verdict {
	var stable, volatileOnly, unlogged int
	for _, w := range ts.writes {
		switch {
		case w.lsn == 0:
			unlogged++
		case w.lsn <= t.forced[ts.node]:
			stable++
		default:
			volatileOnly++
		}
	}
	v := Verdict{
		Txn: ts.id, Name: tname(ts.id), Node: ts.node, Sim: crash.Sim, Crashed: true,
		Text: fmt.Sprintf(
			"%s aborted: node %d crashed at sim t=%s while it was active (%d updates in flight: %d stable-logged, %d volatile-only, %d unlogged)",
			tname(ts.id), ts.node, obs.FormatNS(crash.Sim), len(ts.writes), stable, volatileOnly, unlogged),
	}
	for _, w := range sortedWrites(ts) {
		l := t.lines[w.line]
		switch {
		case l != nil && lostSet[w.line]:
			v.Evidence = append(v.Evidence, fmt.Sprintf(
				"update to %s died with the crash (no surviving copy); %s",
				lineName(w.line), t.coverageLocked(ts, w)))
		case l != nil && l.holders != 0:
			step, ok := lastMove(l, ts.node)
			where := "a surviving cache"
			if ok {
				where = fmt.Sprintf("node %d by %s at sim t=%s", step.To, step.Kind, obs.FormatNS(step.Sim))
			}
			v.Evidence = append(v.Evidence, fmt.Sprintf(
				"uncommitted update to %s migrated to %s; recovery must undo it there (%s)",
				lineName(w.line), where, t.coverageLocked(ts, w)))
		default:
			v.Evidence = append(v.Evidence, fmt.Sprintf(
				"update to %s stayed in the crashed failure domain; %s",
				lineName(w.line), t.coverageLocked(ts, w)))
		}
	}
	return v
}

// lastMove finds the most recent step that placed line content on a node
// other than home (the transaction's own node).
func lastMove(l *lineState, home int32) (ResidencyStep, bool) {
	for i := len(l.history) - 1; i >= 0; i-- {
		s := l.history[i]
		switch s.Kind {
		case "migrate", "replicate", "downgrade":
			if s.To != home {
				return s, true
			}
		}
	}
	return ResidencyStep{}, false
}

// explainSurvivorLocked: the transaction's node survived, so under IFA it
// must continue untouched. Each of its updates is classified against the
// crash: lost-and-unlogged (doomed — the LBM hazard), lost-but-logged
// (selective redo restores it from the surviving log), exposed-but-alive
// (a surviving copy remains), or untouched.
func (t *Tracker) explainSurvivorLocked(ts *txnState, crash Crash, lostSet map[int32]bool, crashedNodes map[int32]bool) Verdict {
	v := Verdict{
		Txn: ts.id, Name: tname(ts.id), Node: ts.node, Sim: crash.Sim,
	}
	doomed := 0
	for _, w := range sortedWrites(ts) {
		l := t.lines[w.line]
		if l == nil {
			continue
		}
		if lostSet[w.line] {
			step, ok := lastExposure(l, crashedNodes)
			how := "its sole copy was in a crashed cache"
			if ok {
				how = fmt.Sprintf("sole copy of %s %sd to crashed node %d at sim t=%s",
					lineName(w.line), step.Kind, step.To, obs.FormatNS(step.Sim))
			}
			if w.lsn == 0 {
				doomed++
				v.Evidence = append(v.Evidence, fmt.Sprintf(
					"unlogged cross-node dependency: %s; no log record exists — the update is lost and cannot be redone (IFA violation expected)", how))
			} else {
				v.Evidence = append(v.Evidence, fmt.Sprintf(
					"%s; %s survives on its home node, so redo restores the update",
					how, t.coverageLocked(ts, w)))
			}
			continue
		}
		if edge, ok := edgeTo(ts, w.line, crashedNodes); ok {
			v.Evidence = append(v.Evidence, fmt.Sprintf(
				"a copy of %s reached crashed node %d (%s at sim t=%s), but a surviving copy remains — no loss",
				lineName(w.line), edge.To, edge.Kind, obs.FormatNS(edge.Sim)))
		}
	}
	v.Doomed = doomed > 0
	switch {
	case v.Doomed:
		v.Text = fmt.Sprintf(
			"%s survivor DOOMED: %d update(s) destroyed by the crash of node(s) %v at sim t=%s with no log record — the unlogged cross-node dependency LBM prevents",
			tname(ts.id), doomed, crash.Nodes, obs.FormatNS(crash.Sim))
	case len(v.Evidence) > 0:
		v.Text = fmt.Sprintf(
			"%s survivor unaffected: crash of node(s) %v at sim t=%s touched its lines but every update is covered",
			tname(ts.id), crash.Nodes, obs.FormatNS(crash.Sim))
	default:
		v.Text = fmt.Sprintf(
			"%s survivor clean: no dependency on crashed node(s) %v",
			tname(ts.id), crash.Nodes)
	}
	return v
}

// edgeTo returns the transaction's dependency edge for line into any crashed
// node, if one exists.
func edgeTo(ts *txnState, line int32, crashedNodes map[int32]bool) (Edge, bool) {
	for _, e := range ts.edges {
		if e.Line == line && crashedNodes[e.To] {
			return e, true
		}
	}
	return Edge{}, false
}
