package deps

import (
	"strings"
	"testing"

	"smdb/internal/obs"
)

// txnID packs a wal.TxnID-style id: home node in the high 16 bits.
func txnID(node, seq int64) int64 { return node<<48 | seq }

func ev(k obs.Kind, node int32, sim, a, b int64) obs.Event {
	return obs.Event{Kind: k, Node: node, Sim: sim, A: a, B: b}
}

func TestNilTrackerInert(t *testing.T) {
	var tr *Tracker
	if tr.Enabled() {
		t.Error("nil tracker reports enabled")
	}
	tr.OnEvent(ev(obs.KindMigrate, 1, 10, 5, 0))
	tr.NoteWrite(txnID(1, 1), 1, 5, 0, 7, 10)
	tr.NoteCrash([]int32{1}, []int32{5}, nil, 20)
	tr.NoteRecovered(nil)
	if got := tr.Verdicts(); got != nil {
		t.Errorf("nil tracker verdicts = %v", got)
	}
	if got := tr.TakeVerdicts(); got != nil {
		t.Errorf("nil tracker take-verdicts = %v", got)
	}
	if c := tr.Census(); c.Txns != 0 {
		t.Errorf("nil tracker census = %+v", c)
	}
	if g := tr.Graph(); len(g.Txns) != 0 || len(g.Lines) != 0 {
		t.Errorf("nil tracker graph = %+v", g)
	}
}

func TestNilTrackerHooksDoNotAllocate(t *testing.T) {
	var tr *Tracker
	e := ev(obs.KindMigrate, 1, 10, 5, 0)
	if n := testing.AllocsPerRun(100, func() {
		tr.OnEvent(e)
		tr.NoteWrite(txnID(1, 1), 1, 5, 0, 7, 10)
	}); n != 0 {
		t.Errorf("disabled tracker hooks allocate %v times per call", n)
	}
}

func TestMigrateCreatesEdge(t *testing.T) {
	tr := New(nil)
	id := txnID(1, 1)
	tr.NoteWrite(id, 1, 5, 100, 7, 10)
	tr.OnEvent(ev(obs.KindMigrate, 3, 20, 5, 1)) // line 5: node 1 -> node 3

	g := tr.Graph()
	if len(g.Txns) != 1 {
		t.Fatalf("txns = %d, want 1", len(g.Txns))
	}
	deps := g.Txns[0].Deps
	if len(deps) != 1 {
		t.Fatalf("deps = %+v, want one edge", deps)
	}
	e := deps[0]
	if e.To != 3 || e.Line != 5 || e.Kind != "migrate" || e.LSN != 7 || e.Unlogged {
		t.Errorf("edge = %+v", e)
	}
	// Residency history records the move, and holdership transferred.
	var line5 LineJSON
	for _, l := range g.Lines {
		if l.Line == 5 {
			line5 = l
		}
	}
	if len(line5.Holders) != 1 || line5.Holders[0] != 3 {
		t.Errorf("line 5 holders = %v, want [3]", line5.Holders)
	}
	last := line5.History[len(line5.History)-1]
	if last.Kind != "migrate" || last.From != 1 || last.To != 3 {
		t.Errorf("last residency step = %+v", last)
	}
}

func TestEdgeDedupAndCensus(t *testing.T) {
	tr := New(nil)
	id := txnID(1, 1)
	tr.NoteWrite(id, 1, 5, 100, 0, 10) // unlogged
	tr.OnEvent(ev(obs.KindMigrate, 3, 20, 5, 1))
	tr.OnEvent(ev(obs.KindMigrate, 1, 30, 5, 3)) // back home
	tr.OnEvent(ev(obs.KindMigrate, 3, 40, 5, 1)) // away again: deduped

	c := tr.Census()
	if c.Edges != 1 || c.UnloggedEdges != 1 {
		t.Errorf("census edges = %d unlogged = %d, want 1/1", c.Edges, c.UnloggedEdges)
	}
	tr.OnEvent(ev(obs.KindTxnCommit, 1, 50, id, 0))
	c = tr.Census()
	if c.Txns != 1 || c.Active != 0 || c.TxnsWithDeps != 1 || c.TxnsWithUnlogged != 1 {
		t.Errorf("census after commit = %+v", c)
	}
	if c.MaxDeps != 1 || c.DepSizes[1] != 1 {
		t.Errorf("dep sizes = %+v max = %d", c.DepSizes, c.MaxDeps)
	}
	if got := c.MeanDeps(); got != 1 {
		t.Errorf("mean deps = %v, want 1", got)
	}
}

func TestDoomedSurvivorVerdict(t *testing.T) {
	tr := New(nil)
	id := txnID(1, 1)
	tr.NoteWrite(id, 1, 5, 100, 0, 10)            // unlogged (deferred logging)
	tr.OnEvent(ev(obs.KindMigrate, 3, 20, 5, 1))  // sole copy now on node 3
	tr.NoteCrash([]int32{3}, []int32{5}, nil, 30) // node 3 dies holding it

	vs := tr.Verdicts()
	if len(vs) != 1 {
		t.Fatalf("verdicts = %+v, want one survivor verdict", vs)
	}
	v := vs[0]
	if v.Crashed || !v.Doomed || v.Txn != id {
		t.Errorf("verdict = %+v, want doomed survivor", v)
	}
	if !strings.Contains(v.Text, "DOOMED") {
		t.Errorf("text = %q", v.Text)
	}
	joined := strings.Join(v.Evidence, "\n")
	if !strings.Contains(joined, "unlogged cross-node dependency") ||
		!strings.Contains(joined, "migrated to crashed node 3") {
		t.Errorf("evidence = %q", joined)
	}
}

func TestLoggedSurvivorLossIsCovered(t *testing.T) {
	tr := New(nil)
	id := txnID(1, 1)
	tr.NoteWrite(id, 1, 5, 100, 7, 10) // volatile log record LSN 7
	tr.OnEvent(ev(obs.KindMigrate, 3, 20, 5, 1))
	tr.NoteCrash([]int32{3}, []int32{5}, nil, 30)

	vs := tr.Verdicts()
	if len(vs) != 1 {
		t.Fatalf("verdicts = %+v", vs)
	}
	v := vs[0]
	if v.Doomed {
		t.Errorf("logged update marked doomed: %+v", v)
	}
	if !strings.Contains(strings.Join(v.Evidence, "\n"), "redo restores the update") {
		t.Errorf("evidence = %q", v.Evidence)
	}
}

func TestSharedCopySurvivesNoLoss(t *testing.T) {
	tr := New(nil)
	id := txnID(1, 1)
	tr.NoteWrite(id, 1, 5, 100, 0, 10)
	// Node 3 gains only a shared copy; node 1 keeps its own.
	tr.OnEvent(ev(obs.KindDowngrade, 3, 20, 5, 1))
	tr.NoteCrash([]int32{3}, nil, nil, 30) // line 5 not lost: node 1 still holds it

	vs := tr.Verdicts()
	if len(vs) != 1 {
		t.Fatalf("verdicts = %+v", vs)
	}
	v := vs[0]
	if v.Doomed {
		t.Errorf("surviving copy marked doomed: %+v", v)
	}
	if !strings.Contains(strings.Join(v.Evidence, "\n"), "a surviving copy remains") {
		t.Errorf("evidence = %q", v.Evidence)
	}
}

func TestCrashedVerdictLogCoverageCounts(t *testing.T) {
	tr := New(nil)
	id := txnID(2, 9)
	tr.NoteWrite(id, 2, 10, 1, 3, 10) // will be stable (forced through 5)
	tr.NoteWrite(id, 2, 11, 2, 8, 11) // volatile only
	tr.NoteWrite(id, 2, 12, 3, 0, 12) // unlogged
	tr.OnEvent(ev(obs.KindWALForce, 2, 15, 2, 5))
	tr.NoteCrash([]int32{2}, []int32{10, 11, 12}, nil, 20)

	vs := tr.Verdicts()
	if len(vs) != 1 {
		t.Fatalf("verdicts = %+v", vs)
	}
	v := vs[0]
	if !v.Crashed {
		t.Fatalf("verdict = %+v, want crashed", v)
	}
	if !strings.Contains(v.Text, "3 updates in flight: 1 stable-logged, 1 volatile-only, 1 unlogged") {
		t.Errorf("text = %q", v.Text)
	}
	if len(v.Evidence) != 3 {
		t.Errorf("evidence = %q", v.Evidence)
	}
}

func TestNoteRecoveredSettlesVictims(t *testing.T) {
	tr := New(nil)
	aborted := txnID(1, 1)
	committed := txnID(1, 2)
	tr.NoteWrite(aborted, 1, 5, 1, 3, 10)
	tr.NoteWrite(committed, 1, 6, 2, 4, 11)
	tr.NoteCrash([]int32{1}, nil, nil, 20)
	tr.NoteRecovered([]int64{aborted})

	c := tr.Census()
	if c.Txns != 2 || c.Active != 0 {
		t.Errorf("census = %+v, want 2 settled", c)
	}
	g := tr.Graph()
	if len(g.Crashes) != 0 {
		t.Errorf("crash episode not closed: %+v", g.Crashes)
	}
	if len(g.Txns) != 0 {
		t.Errorf("victims still live: %+v", g.Txns)
	}
}

func TestResidencyHistoryBounded(t *testing.T) {
	tr := New(nil)
	for i := 0; i < historyCap*3; i++ {
		to := int32(i % 4)
		tr.OnEvent(ev(obs.KindMigrate, to, int64(i), 5, int64((i+1)%4)))
	}
	g := tr.Graph()
	if len(g.Lines) != 1 {
		t.Fatalf("lines = %+v", g.Lines)
	}
	h := g.Lines[0].History
	if len(h) != historyCap {
		t.Errorf("history length = %d, want %d", len(h), historyCap)
	}
	// The newest steps survive.
	if h[len(h)-1].Sim != int64(historyCap*3-1) {
		t.Errorf("newest step = %+v", h[len(h)-1])
	}
}

func TestEchoEmitsDepEdgeInstant(t *testing.T) {
	o := obs.NewWithCapacity(64)
	tr := New(o)
	id := txnID(1, 1)
	tr.NoteWrite(id, 1, 5, 100, 7, 10)
	tr.OnEvent(ev(obs.KindMigrate, 3, 20, 5, 1))

	found := false
	for _, e := range o.Events() {
		if e.Kind == obs.KindDepEdge {
			found = true
			if e.A != id {
				t.Errorf("dep-edge txn = %d, want %d", e.A, id)
			}
			if to, line := e.B>>32, e.B&0xffffffff; to != 3 || line != 5 {
				t.Errorf("dep-edge packed to/line = %d/%d, want 3/5", to, line)
			}
		}
	}
	if !found {
		t.Fatal("no KindDepEdge instant echoed to the observer")
	}
	// The echo must not recurse: feeding the tracker its own echo is a no-op.
	before := tr.Census()
	for _, e := range o.Events() {
		tr.OnEvent(e)
	}
	if after := tr.Census(); after.Edges != before.Edges {
		t.Errorf("replaying echoed events changed the graph: %+v -> %+v", before, after)
	}
}

func BenchmarkNilTrackerOnEvent(b *testing.B) {
	var tr *Tracker
	e := ev(obs.KindMigrate, 1, 10, 5, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.OnEvent(e)
	}
}

func BenchmarkNilTrackerNoteWrite(b *testing.B) {
	var tr *Tracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.NoteWrite(1, 1, 5, 100, 7, 10)
	}
}

func BenchmarkTrackerNoteWrite(b *testing.B) {
	tr := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.NoteWrite(txnID(1, 1), 1, int32(i%64), int64(i%128), 7, int64(i))
	}
}
