// Package obs is the engine-wide observability layer: a low-overhead,
// race-clean event tracer plus latency histograms, wired through every
// engine layer (machine, wal, lock, buffer, txn, recovery).
//
// The tracer records typed events into per-node ring buffers, each event
// carrying both a simulated-clock timestamp (the engine's calibrated
// 1995-hardware time base) and a wall-clock timestamp. Coherency traffic
// (migrations, downgrades, invalidations, trigger fires), WAL appends and
// forces, lock acquisitions and waits, transaction lifecycle, node crashes,
// and every restart-recovery phase (as an explicit span) all flow through
// it, so experiments can argue about the *shape* of a run — when the
// migrations happened, how recovery time divides into phases — rather than
// only end-of-run counter totals.
//
// Three exporters render the same data: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing), Prometheus text exposition, and an
// aligned text table.
//
// A nil *Observer is fully inert: every method is nil-receiver safe and
// returns immediately, so the engine's hooks cost a single pointer test
// when tracing is disabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind uint8

// Event kinds, grouped by the engine layer that emits them.
const (
	// Coherency traffic (internal/machine).
	KindMigrate Kind = iota
	KindDowngrade
	KindInvalidate
	KindTriggerFire
	// KindLineLockWait is a contended line-lock acquisition (A = line,
	// B = acquisition latency in simulated ns). Uncontended acquisitions
	// feed the line-lock histogram but emit no event.
	KindLineLockWait
	// Log pipeline (internal/wal): A = LSN, B = record type for appends;
	// A = records made stable, B = highest stable LSN for forces.
	KindWALAppend
	KindWALForce
	// Lock manager (internal/lock): A = lock name, B = mode.
	KindLockAcquire
	KindLockWait
	// KindDeadlock is a deadlock-victim decision (A = victim transaction).
	KindDeadlock
	// Transaction lifecycle (internal/recovery): A = transaction id;
	// B = commit latency in simulated ns for commits.
	KindTxnBegin
	KindTxnCommit
	KindTxnAbort
	// Buffer manager (internal/buffer): A = page; B = 1 for a disk read
	// (fetch) or a steal (flush), 0 otherwise.
	KindPageFetch
	KindPageFlush
	// KindCrash is a node failure (A = lines destroyed machine-wide,
	// B = lines orphaned on survivors).
	KindCrash
	// KindPhase is one restart-recovery phase, recorded as a span (Phase
	// names it; Sim is the span start; Dur its simulated duration).
	KindPhase
	// KindRecovery is the whole restart-recovery run, the parent span
	// enclosing the phase spans.
	KindRecovery
	// KindFault is an injected fault firing (internal/fault via the hooked
	// layer; A = fault-site discriminator, B = victim node or 0).
	KindFault
	// KindIORetry is a transient storage error retried by a caller
	// (A = attempt number, B = backoff charged in simulated ns).
	KindIORetry
	// KindReplicate is a shared-read remote fetch replicating a line into
	// another cache without a downgrade (A = line, B = a prior holder).
	// Downgrades and migrations have their own kinds; together the four
	// residency kinds let a consumer reconstruct every line's holder set.
	KindReplicate
	// KindInstall is a line (re)installed from stable storage, replacing
	// all cached copies (A = line; node = the new sole holder).
	KindInstall
	// KindDiscard drops one node's cached copy (A = line, B = 1 if that was
	// the last copy and the content was destroyed).
	KindDiscard
	// KindDepEdge is a recovery-dependency edge discovered by the
	// dependency tracker (internal/obs/deps): node = the dependent
	// transaction's home node, A = its transaction id, B packs the node now
	// holding its uncommitted data with the line (to<<32 | line).
	KindDepEdge
	// KindProfFanout is one parallel-recovery fan-out recorded by the
	// contention profiler (internal/obs/prof): Phase names the fanned-out
	// phase, Dur is *host* wall-clock nanoseconds (not simulated time),
	// A = worker count, B = summed worker busy nanoseconds.
	KindProfFanout

	numKinds
)

var kindNames = [numKinds]string{
	"migrate", "downgrade", "invalidate", "trigger-fire", "line-lock-wait",
	"wal-append", "wal-force", "lock-acquire", "lock-wait", "deadlock",
	"txn-begin", "txn-commit", "txn-abort", "page-fetch", "page-flush",
	"crash", "phase", "recovery", "fault", "io-retry",
	"replicate", "install", "discard", "dep-edge", "prof-fanout",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Phase names a restart-recovery phase (see internal/recovery's Recover).
type Phase uint8

const (
	PhaseNone Phase = iota
	// PhaseFreeze spans from the crash to the start of restart recovery:
	// the hardware has interrupted all CPUs and transaction processing is
	// stalled.
	PhaseFreeze
	// PhaseDirectoryRepair reinstalls destroyed lock-table lines and sweeps
	// broken LCB chains (section 4.2.2's structural repair).
	PhaseDirectoryRepair
	// PhaseLockRebuild releases crashed transactions' lock entries and
	// replays the survivors' logical lock logs.
	PhaseLockRebuild
	// PhaseRedoScan builds the recovery-visible log views and collects the
	// redo candidate set.
	PhaseRedoScan
	// PhaseProbe is Selective Redo's residency probing: the "cache miss
	// with I/O disabled" test, plus reinstalling lost lines from the
	// stable database.
	PhaseProbe
	// PhaseRedoApply applies the redo candidates whose effects are missing.
	PhaseRedoApply
	// PhaseUndo rolls back crashed transactions from their stable logs.
	PhaseUndo
	// PhaseUndoTagScan is the Selective Redo sequential cache scan for
	// undo-tagged records of dead transactions.
	PhaseUndoTagScan
	// PhaseSettle settles crash victims (stable-committed vs aborted) and
	// dooms orphaned parallel-transaction branches.
	PhaseSettle

	numPhases
)

var phaseNames = [numPhases]string{
	"none", "freeze", "directory-repair", "lock-rebuild", "redo-scan",
	"probe", "redo-apply", "undo", "undo-tag-scan", "settle",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase?"
}

// SystemNode is the pseudo-node recovery spans are recorded against: restart
// recovery is coordinated machine-wide, not by any single node.
const SystemNode int32 = -1

// Event is one trace record. Sim is the simulated-clock timestamp in
// nanoseconds (span start for span kinds), Wall the wall-clock timestamp
// (UnixNano), Dur the simulated duration for span kinds, and A/B carry
// kind-specific arguments (see the Kind constants).
type Event struct {
	Kind  Kind
	Phase Phase
	Node  int32
	PID   int32
	Sim   int64
	Wall  int64
	Dur   int64
	A, B  int64
}

// PhaseSpan is one recovery phase's timing (simulated nanoseconds), the
// per-phase breakdown attached to recovery reports and experiment tables.
type PhaseSpan struct {
	Phase Phase
	Start int64
	Dur   int64
}

// maxTracks bounds the per-node ring array: 64 nodes (the machine's limit)
// plus the system track. Track index = node + 1.
const maxTracks = 65

// DefaultRingCapacity is the per-node event capacity when none is given.
const DefaultRingCapacity = 1 << 14

// ring is one node's event buffer: fixed capacity, overwriting the oldest
// events, so a long run keeps its most recent history.
type ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
}

func (r *ring) record(cap int, e Event) {
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]Event, cap)
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// snapshot returns the ring's events in record order.
func (r *ring) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return nil
	}
	var out []Event
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// Sink receives every event an Observer records, synchronously, after the
// event has been placed in its ring. Implementations must be safe for
// concurrent calls and must not call back into the engine layer that emitted
// the event (emitters may hold their own locks across Record); calling back
// into the Observer itself is allowed. The dependency tracker
// (internal/obs/deps) is the canonical sink.
type Sink interface {
	OnEvent(Event)
}

// MultiSink fans one event stream out to several sinks, in order. The
// recovery layer uses it when both the dependency tracker and the online
// auditor are attached; each element must satisfy the Sink contract on its
// own (the fan-out adds no locking).
type MultiSink []Sink

// OnEvent delivers e to every sink in order.
func (m MultiSink) OnEvent(e Event) {
	for _, s := range m {
		s.OnEvent(e)
	}
}

// Observer is the engine-wide trace collector. All methods are safe for
// concurrent use, and all are nil-receiver safe: a nil Observer records
// nothing and costs one pointer test per hook.
type Observer struct {
	cap   int
	rings [maxTracks]ring

	// sink, when set, sees every recorded event (stored as *Sink so the
	// hot path is one atomic load).
	sink atomic.Pointer[Sink]

	// counts survive ring overwrites: total events recorded per kind.
	counts [numKinds]atomic.Int64

	// pid groups events into trace "processes" (one per experiment run).
	pid    atomic.Int32
	procMu sync.Mutex
	procs  map[int32]string

	// The engine's three headline latency distributions.
	lineLock *Histogram
	commit   *Histogram
	logForce *Histogram
}

// New creates an observer with the default per-node ring capacity.
func New() *Observer { return NewWithCapacity(DefaultRingCapacity) }

// NewWithCapacity creates an observer keeping up to perNode events per node.
func NewWithCapacity(perNode int) *Observer {
	if perNode < 1 {
		perNode = DefaultRingCapacity
	}
	return &Observer{
		cap:      perNode,
		procs:    map[int32]string{0: "smdb"},
		lineLock: NewHistogram("line_lock_latency_ns"),
		commit:   NewHistogram("txn_commit_latency_ns"),
		logForce: NewHistogram("log_force_latency_ns"),
	}
}

// Enabled reports whether tracing is live (false for a nil Observer).
func (o *Observer) Enabled() bool { return o != nil }

// track maps a node id onto a ring index.
func track(node int32) int {
	i := int(node) + 1
	if i < 0 || i >= maxTracks {
		i = 0
	}
	return i
}

// Record appends a fully-formed event. The wall timestamp is filled in if
// zero.
func (o *Observer) Record(e Event) {
	if o == nil {
		return
	}
	if e.Wall == 0 {
		e.Wall = time.Now().UnixNano()
	}
	if e.PID == 0 {
		e.PID = o.pid.Load()
	}
	if e.Kind < numKinds {
		o.counts[e.Kind].Add(1)
	}
	o.rings[track(e.Node)].record(o.cap, e)
	if s := o.sink.Load(); s != nil {
		(*s).OnEvent(e)
	}
}

// SetSink installs (or, with nil, removes) the event sink. The sink sees
// every subsequent Record call synchronously on the recording goroutine.
func (o *Observer) SetSink(s Sink) {
	if o == nil {
		return
	}
	if s == nil {
		o.sink.Store(nil)
		return
	}
	o.sink.Store(&s)
}

// Instant records a point event at simulated time sim on node's track.
func (o *Observer) Instant(k Kind, node int32, sim, a, b int64) {
	if o == nil {
		return
	}
	o.Record(Event{Kind: k, Node: node, Sim: sim, A: a, B: b})
}

// Span records a duration event (a recovery phase or the whole recovery)
// starting at simulated time start and lasting dur simulated nanoseconds.
func (o *Observer) Span(k Kind, p Phase, node int32, start, dur int64) {
	if o == nil {
		return
	}
	o.Record(Event{Kind: k, Phase: p, Node: node, Sim: start, Dur: dur})
}

// ObserveLineLock feeds one line-lock acquisition latency (simulated ns).
func (o *Observer) ObserveLineLock(ns int64) {
	if o == nil {
		return
	}
	o.lineLock.Observe(ns)
}

// ObserveCommit feeds one transaction commit latency (simulated ns,
// begin-to-commit).
func (o *Observer) ObserveCommit(ns int64) {
	if o == nil {
		return
	}
	o.commit.Observe(ns)
}

// ObserveLogForce feeds one physical log-force latency (simulated ns).
func (o *Observer) ObserveLogForce(ns int64) {
	if o == nil {
		return
	}
	o.logForce.Observe(ns)
}

// LineLockHist, CommitHist, and LogForceHist expose the headline histograms
// (nil for a nil Observer).
func (o *Observer) LineLockHist() *Histogram {
	if o == nil {
		return nil
	}
	return o.lineLock
}

func (o *Observer) CommitHist() *Histogram {
	if o == nil {
		return nil
	}
	return o.commit
}

func (o *Observer) LogForceHist() *Histogram {
	if o == nil {
		return nil
	}
	return o.logForce
}

// Histograms returns the observer's histograms in presentation order.
func (o *Observer) Histograms() []*Histogram {
	if o == nil {
		return nil
	}
	return []*Histogram{o.lineLock, o.commit, o.logForce}
}

// BeginProcess starts a new trace process group (one per experiment run in
// a sweep); subsequent events carry its pid, and the Chrome trace exporter
// renders each process as its own named track group.
func (o *Observer) BeginProcess(name string) {
	if o == nil {
		return
	}
	pid := o.pid.Add(1)
	o.procMu.Lock()
	o.procs[pid] = name
	o.procMu.Unlock()
}

// processes snapshots the pid -> name map.
func (o *Observer) processes() map[int32]string {
	o.procMu.Lock()
	defer o.procMu.Unlock()
	out := make(map[int32]string, len(o.procs))
	for k, v := range o.procs {
		out[k] = v
	}
	return out
}

// Events returns every retained event, ordered by (PID, Sim, Wall).
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	var out []Event
	for i := range o.rings {
		out = append(out, o.rings[i].snapshot()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		if out[i].Sim != out[j].Sim {
			return out[i].Sim < out[j].Sim
		}
		return out[i].Wall < out[j].Wall
	})
	return out
}

// Count returns the number of events ever recorded with kind k (ring
// overwrites do not decrement it).
func (o *Observer) Count(k Kind) int64 {
	if o == nil || k >= numKinds {
		return 0
	}
	return o.counts[k].Load()
}

// PhaseSpans extracts the recovery-phase spans (KindPhase events) from the
// retained trace, in time order. With several recoveries in the trace, all
// their phases are returned; pair with KindRecovery spans to segment them.
func (o *Observer) PhaseSpans() []PhaseSpan {
	if o == nil {
		return nil
	}
	var out []PhaseSpan
	for _, e := range o.Events() {
		if e.Kind == KindPhase {
			out = append(out, PhaseSpan{Phase: e.Phase, Start: e.Sim, Dur: e.Dur})
		}
	}
	return out
}
