package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Exporters. All three render the observer's retained events and histograms;
// they take a snapshot, so they are safe to call while the engine runs.

// chromeEvent is one Chrome trace-event record (the subset of the format the
// exporter uses: complete spans "X", instants "i", and metadata "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// tid maps a node onto a Chrome thread id: nodes keep their own id shifted
// past the system track, which gets tid 0.
func tid(node int32) int32 {
	if node == SystemNode {
		return 0
	}
	return node + 1
}

// WriteChromeTrace writes the retained events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
// the engine's simulated clock (microseconds in the trace, as the format
// dictates); each trace process is one BeginProcess group, each thread one
// node, with recovery spans on a dedicated "recovery" thread. Phase spans
// nest inside their enclosing recovery span by containment.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`)
		return err
	}
	events := o.Events()
	procs := o.processes()

	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}

	// Metadata: name every process and every thread that has events.
	type track struct{ pid, node int32 }
	seen := map[track]bool{}
	for _, e := range events {
		seen[track{e.PID, e.Node}] = true
	}
	pids := make([]int32, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": procs[pid]},
		})
	}
	tracks := make([]track, 0, len(seen))
	for t := range seen {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tid(tracks[i].node) < tid(tracks[j].node)
	})
	for _, t := range tracks {
		name := "recovery"
		if t.node != SystemNode {
			name = fmt.Sprintf("node %d", t.node)
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: t.pid, TID: tid(t.node),
			Args: map[string]any{"name": name},
		})
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  "smdb",
			Ts:   float64(e.Sim) / 1e3, // sim ns -> trace µs
			PID:  e.PID,
			TID:  tid(e.Node),
		}
		switch e.Kind {
		case KindPhase, KindRecovery:
			if e.Kind == KindPhase {
				ce.Name = e.Phase.String()
			}
			dur := float64(e.Dur) / 1e3
			ce.Ph = "X"
			ce.Dur = &dur
			ce.Args = map[string]any{"sim_ns": e.Sim, "dur_ns": e.Dur}
		case KindProfFanout:
			// Profiler fan-out spans: one slice per parallel fan-out, named
			// after the fanned-out phase, with the worker count and summed
			// worker busy time as args. Dur is host wall-clock ns; the span
			// is anchored at the recovery's simulated timeline position.
			ce.Name = "prof:" + e.Phase.String()
			dur := float64(e.Dur) / 1e3
			ce.Ph = "X"
			ce.Dur = &dur
			ce.Args = map[string]any{"workers": e.A, "busy_ns": e.B, "wall_ns": e.Dur}
		case KindDepEdge:
			// Dependency edges decode their packed argument so a trace
			// viewer shows which node/line the transaction depends on.
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{
				"txn":  e.A,
				"to":   e.B >> 32,
				"line": e.B & 0xffffffff,
			}
		default:
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"a": e.A, "b": e.B}
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// WritePrometheus writes the counters and histograms in Prometheus text
// exposition format (metric stems smdb_events_total and smdb_<histogram>).
func (o *Observer) WritePrometheus(w io.Writer) error {
	if o == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP smdb_events_total Trace events recorded, by kind.\n# TYPE smdb_events_total counter\n"); err != nil {
		return err
	}
	for k := Kind(0); k < numKinds; k++ {
		if _, err := fmt.Fprintf(w, "smdb_events_total{kind=%q} %d\n", k.String(), o.Count(k)); err != nil {
			return err
		}
	}
	for _, h := range o.Histograms() {
		s := h.Snapshot()
		stem := "smdb_" + s.Name
		if _, err := fmt.Fprintf(w, "# HELP %s Engine latency (simulated nanoseconds).\n# TYPE %s histogram\n", stem, stem); err != nil {
			return err
		}
		// Cumulative buckets, up to the highest populated one.
		top := 0
		for i, c := range s.Buckets {
			if c > 0 {
				top = i
			}
		}
		var cum int64
		for i := 0; i <= top; i++ {
			cum += s.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", stem, bucketUpper(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			stem, s.Count, stem, s.Sum, stem, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// MetricsTable writes an aligned, human-readable summary: per-kind event
// counts followed by the latency histograms' quantiles.
func (o *Observer) MetricsTable(w io.Writer) error {
	if o == nil {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "event\tcount")
	for k := Kind(0); k < numKinds; k++ {
		if c := o.Count(k); c > 0 {
			fmt.Fprintf(tw, "%s\t%d\n", k.String(), c)
		}
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "latency (sim)\tcount\tmean\tp50\tp95\tp99\tmax")
	for _, h := range o.Histograms() {
		s := h.Snapshot()
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			strings.TrimSuffix(s.Name, "_ns"), s.Count,
			FormatNS(s.Mean()), FormatNS(s.Quantile(0.50)),
			FormatNS(s.Quantile(0.95)), FormatNS(s.Quantile(0.99)),
			FormatNS(s.Max))
	}
	return tw.Flush()
}

// FormatNS renders a simulated-nanosecond duration in a compact human unit.
func FormatNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// FormatPhases renders a phase breakdown as "name=dur" pairs in span order,
// for experiment table columns. Zero-duration phases are elided unless
// everything is zero.
func FormatPhases(spans []PhaseSpan) string {
	var parts []string
	for _, s := range spans {
		if s.Dur > 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", s.Phase, FormatNS(s.Dur)))
		}
	}
	if len(parts) == 0 {
		if len(spans) == 0 {
			return "-"
		}
		return "all=0ns"
	}
	return strings.Join(parts, " ")
}
