package machine

import "math/bits"

// bitset is a set of up to 64 node IDs, enough for the largest configuration
// this simulator supports. (The KSR-1 scaled to 1,088 nodes; the protocols
// under study do not depend on node count, so 64 keeps the directory entry a
// single word, as real directory-based machines strive for.)
type bitset uint64

func (b bitset) has(n NodeID) bool  { return n >= 0 && b&(1<<uint(n)) != 0 }
func (b *bitset) add(n NodeID)      { *b |= 1 << uint(n) }
func (b *bitset) remove(n NodeID)   { *b &^= 1 << uint(n) }
func (b bitset) empty() bool        { return b == 0 }
func (b bitset) count() int         { return bits.OnesCount64(uint64(b)) }
func (b bitset) sole(n NodeID) bool { return b == 1<<uint(n) }

// lowest returns the smallest node in the set, or NoNode if empty.
func (b bitset) lowest() NodeID {
	if b == 0 {
		return NoNode
	}
	return NodeID(bits.TrailingZeros64(uint64(b)))
}

// nodes returns the members in ascending order.
func (b bitset) nodes() []NodeID {
	out := make([]NodeID, 0, b.count())
	for v := uint64(b); v != 0; v &= v - 1 {
		out = append(out, NodeID(bits.TrailingZeros64(v)))
	}
	return out
}
