package machine

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

func newTestMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	return New(Config{Nodes: nodes, LineSize: 128, Lines: 256})
}

// install materializes a zeroed line on node nd.
func install(t *testing.T, m *Machine, nd NodeID, l LineID) {
	t.Helper()
	if err := m.Install(nd, l, make([]byte, m.LineSize())); err != nil {
		t.Fatalf("Install(%d, %d): %v", nd, l, err)
	}
}

func TestNewDefaults(t *testing.T) {
	m := New(Config{})
	if m.Nodes() != 4 {
		t.Errorf("default Nodes = %d, want 4", m.Nodes())
	}
	if m.LineSize() != 128 {
		t.Errorf("default LineSize = %d, want 128", m.LineSize())
	}
	if got := m.Config().Cost.RemoteFetch; got != DefaultCostModel().RemoteFetch {
		t.Errorf("default RemoteFetch = %d, want %d", got, DefaultCostModel().RemoteFetch)
	}
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Nodes: 65},
		{Nodes: -1},
		{LineSize: 4},
		{Lines: -5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestAlloc(t *testing.T) {
	m := newTestMachine(t, 2)
	a := m.Alloc(10)
	b := m.Alloc(5)
	if a != 0 || b != 10 {
		t.Errorf("Alloc: got %d, %d; want 0, 10", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("Alloc beyond capacity did not panic")
		}
	}()
	m.Alloc(1 << 20)
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	want := []byte("hello, coherent world")
	if err := m.Write(0, l, 7, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := m.Read(0, l, 7, len(want))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("Read = %q, want %q", got, want)
	}
}

func TestAccessLostLine(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	if _, err := m.Read(0, l, 0, 8); !errors.Is(err, ErrLineLost) {
		t.Errorf("Read of never-installed line: err = %v, want ErrLineLost", err)
	}
	if err := m.Write(0, l, 0, []byte{1}); !errors.Is(err, ErrLineLost) {
		t.Errorf("Write of never-installed line: err = %v, want ErrLineLost", err)
	}
	if err := m.GetLine(0, l); !errors.Is(err, ErrLineLost) {
		t.Errorf("GetLine of never-installed line: err = %v, want ErrLineLost", err)
	}
}

func TestBadAddress(t *testing.T) {
	m := newTestMachine(t, 1)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if _, err := m.Read(0, LineID(9999), 0, 1); !errors.Is(err, ErrBadAddress) {
		t.Errorf("out-of-range line: err = %v, want ErrBadAddress", err)
	}
	if err := m.Write(0, l, 120, make([]byte, 20)); !errors.Is(err, ErrBadAddress) {
		t.Errorf("overflowing write: err = %v, want ErrBadAddress", err)
	}
	if _, err := m.Read(0, l, -1, 4); !errors.Is(err, ErrBadAddress) {
		t.Errorf("negative offset: err = %v, want ErrBadAddress", err)
	}
}

// TestMigrationHww1 reproduces history H_ww1: w_x[l]; w_y[l] migrates the
// line from x to y, leaving y with the only copy.
func TestMigrationHww1(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.Write(0, l, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, l, 1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got := m.ExclusiveHolder(l); got != 1 {
		t.Errorf("after w_x;w_y exclusive holder = %d, want 1", got)
	}
	if h := m.Holders(l); len(h) != 1 || h[0] != 1 {
		t.Errorf("holders = %v, want [1]", h)
	}
	if s := m.Stats(); s.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1", s.Migrations)
	}
	// Node x's write must still be visible (coherent memory).
	got, err := m.Read(1, l, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("line contents = %v, want [1 2]", got)
	}
}

// TestDowngradeHwr reproduces history H_wr: w_x[l]; r_y[l] replicates the
// line, downgrading x from exclusive to shared.
func TestDowngradeHwr(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.Write(0, l, 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(1, l, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Errorf("r_y = %d, want 7", got[0])
	}
	if ex := m.ExclusiveHolder(l); ex != NoNode {
		t.Errorf("exclusive holder after downgrade = %d, want NoNode", ex)
	}
	if h := m.Holders(l); len(h) != 2 {
		t.Errorf("holders = %v, want both nodes", h)
	}
	s := m.Stats()
	if s.Downgrades != 1 || s.Replications != 1 {
		t.Errorf("Downgrades=%d Replications=%d, want 1,1", s.Downgrades, s.Replications)
	}
}

// TestHww2 reproduces H_ww2: intermediate reads put the line in shared state
// in several caches; the next write invalidates all of them.
func TestHww2(t *testing.T) {
	m := newTestMachine(t, 4)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.Write(0, l, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	for nd := NodeID(1); nd < 4; nd++ {
		if _, err := m.Read(nd, l, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Holders(l)) != 4 {
		t.Fatalf("holders = %v, want 4 nodes", m.Holders(l))
	}
	if err := m.Write(3, l, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if h := m.Holders(l); len(h) != 1 || h[0] != 3 {
		t.Errorf("after invalidating write holders = %v, want [3]", h)
	}
	if s := m.Stats(); s.Invalidations != 3 {
		t.Errorf("Invalidations = %d, want 3", s.Invalidations)
	}
}

func TestSilentUpgrade(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	// Read-then-write by the sole holder should not count remote traffic.
	if _, err := m.Read(0, l, 0, 1); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if err := m.Write(0, l, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.RemoteFetches != 0 || s.Invalidations != 0 || s.Migrations != 0 {
		t.Errorf("sole-holder write caused remote traffic: %+v", s)
	}
	if m.ExclusiveHolder(l) != 0 {
		t.Errorf("holder not upgraded to exclusive")
	}
}

func TestWriteBroadcast(t *testing.T) {
	m := New(Config{Nodes: 3, Lines: 16, Coherency: WriteBroadcast})
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.Write(0, l, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(1, l, 0, 1); err != nil {
		t.Fatal(err)
	}
	// ww sharing: node 1 writes; node 0 keeps its copy (no migration).
	if err := m.Write(1, l, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if h := m.Holders(l); len(h) != 2 {
		t.Errorf("holders = %v, want both", h)
	}
	got, err := m.Read(0, l, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Errorf("broadcast did not update node 0's copy: got %d", got[0])
	}
	if s := m.Stats(); s.Migrations != 0 || s.Broadcasts == 0 {
		t.Errorf("write-broadcast stats wrong: %+v", s)
	}
}

func TestCrashDestroysSoleCopy(t *testing.T) {
	m := newTestMachine(t, 3)
	lost := m.Alloc(1)
	shared := m.Alloc(1)
	install(t, m, 0, lost)
	install(t, m, 0, shared)
	if err := m.Write(0, lost, 0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, shared, 0, []byte{43}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(1, shared, 0, 1); err != nil { // replicate
		t.Fatal(err)
	}
	rep := m.Crash(0)
	if len(rep.Crashed) != 1 || rep.Crashed[0] != 0 {
		t.Fatalf("Crashed = %v", rep.Crashed)
	}
	if len(rep.LostLines) != 1 || rep.LostLines[0] != lost {
		t.Errorf("LostLines = %v, want [%d]", rep.LostLines, lost)
	}
	if len(rep.OrphanedLines) != 1 || rep.OrphanedLines[0] != shared {
		t.Errorf("OrphanedLines = %v, want [%d]", rep.OrphanedLines, shared)
	}
	if m.Resident(lost) {
		t.Error("lost line still resident")
	}
	if !m.Resident(shared) {
		t.Error("shared line should survive on node 1")
	}
	got, err := m.Read(1, shared, 0, 1)
	if err != nil || got[0] != 43 {
		t.Errorf("surviving copy read = %v, %v; want [43]", got, err)
	}
	if _, err := m.Read(1, lost, 0, 1); !errors.Is(err, ErrLineLost) {
		t.Errorf("read of destroyed line: err = %v, want ErrLineLost", err)
	}
	if err := m.Write(0, shared, 0, []byte{1}); !errors.Is(err, ErrNodeDown) {
		t.Errorf("write by crashed node: err = %v, want ErrNodeDown", err)
	}
}

// TestCrashFigure2 is the paper's figure 2 scenario at the machine level:
// t_x's uncommitted update migrates to node y. If x crashes the update
// survives on y (incomplete annulment); if y crashes the update is destroyed
// even though x did not fail.
func TestCrashFigure2(t *testing.T) {
	t.Run("x crashes, update survives on y", func(t *testing.T) {
		m := newTestMachine(t, 2)
		l := m.Alloc(1)
		install(t, m, 0, l)
		if err := m.Write(0, l, 0, []byte{11}); err != nil { // t_x updates r1
			t.Fatal(err)
		}
		if err := m.Write(1, l, 1, []byte{22}); err != nil { // t_y updates r2: line migrates
			t.Fatal(err)
		}
		m.Crash(0)
		got, err := m.Read(1, l, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 11 {
			t.Errorf("t_x's uncommitted update should survive on y: got %v", got)
		}
	})
	t.Run("y crashes, x's update is destroyed", func(t *testing.T) {
		m := newTestMachine(t, 2)
		l := m.Alloc(1)
		install(t, m, 0, l)
		if err := m.Write(0, l, 0, []byte{11}); err != nil {
			t.Fatal(err)
		}
		if err := m.Write(1, l, 1, []byte{22}); err != nil {
			t.Fatal(err)
		}
		m.Crash(1)
		if m.Resident(l) {
			t.Error("line should be destroyed with node y")
		}
		if _, err := m.Read(0, l, 0, 1); !errors.Is(err, ErrLineLost) {
			t.Errorf("err = %v, want ErrLineLost", err)
		}
	})
}

func TestCrashIdempotentAndRestart(t *testing.T) {
	m := newTestMachine(t, 2)
	m.Crash(0)
	rep := m.Crash(0)
	if len(rep.Crashed) != 0 {
		t.Errorf("second crash of same node reported: %v", rep.Crashed)
	}
	if got := m.AliveNodes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("AliveNodes = %v, want [1]", got)
	}
	if err := m.Restart(0); err != nil {
		t.Fatal(err)
	}
	if got := m.AliveNodes(); len(got) != 2 {
		t.Errorf("AliveNodes after restart = %v", got)
	}
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.Write(0, l, 0, []byte{1}); err != nil {
		t.Errorf("restarted node cannot write: %v", err)
	}
}

func TestLineLockExcludes(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.GetLine(0, l); err != nil {
		t.Fatal(err)
	}
	if got := m.LineLockHeldBy(l); got != 0 {
		t.Errorf("LineLockHeldBy = %d, want 0", got)
	}
	// A direct write by another node while the lock is held is a protocol
	// violation the machine rejects.
	if err := m.Write(1, l, 0, []byte{1}); !errors.Is(err, ErrLineLockHeld) {
		t.Errorf("write to locked line: err = %v, want ErrLineLockHeld", err)
	}
	ok, err := m.TryGetLine(1, l)
	if err != nil || ok {
		t.Errorf("TryGetLine on held lock = %v, %v; want false, nil", ok, err)
	}
	if err := m.ReleaseLine(1, l); !errors.Is(err, ErrNotLockHolder) {
		t.Errorf("release by non-holder: err = %v, want ErrNotLockHolder", err)
	}
	if err := m.ReleaseLine(0, l); err != nil {
		t.Fatal(err)
	}
	ok, err = m.TryGetLine(1, l)
	if err != nil || !ok {
		t.Errorf("TryGetLine after release = %v, %v; want true, nil", ok, err)
	}
	if m.ExclusiveHolder(l) != 1 {
		t.Error("GetLine should make the line exclusive in the caller's cache")
	}
}

func TestLineLockBlocksAndChains(t *testing.T) {
	m := newTestMachine(t, 4)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.GetLine(0, l); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	acquired := make(chan NodeID, 3)
	for nd := NodeID(1); nd < 4; nd++ {
		wg.Add(1)
		go func(nd NodeID) {
			defer wg.Done()
			if err := m.GetLine(nd, l); err != nil {
				t.Errorf("GetLine(%d): %v", nd, err)
				return
			}
			acquired <- nd
			if err := m.ReleaseLine(nd, l); err != nil {
				t.Errorf("ReleaseLine(%d): %v", nd, err)
			}
		}(nd)
	}
	// Wait until all three waiters have entered GetLine (each bumps
	// LineLockAcquires before blocking), then release.
	for m.Stats().LineLockAcquires < 4 {
		runtime.Gosched()
	}
	m.AdvanceClock(0, 1000)
	if err := m.ReleaseLine(0, l); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(acquired)
	n := 0
	for range acquired {
		n++
	}
	if n != 3 {
		t.Fatalf("%d waiters acquired, want 3", n)
	}
	s := m.Stats()
	if s.LineLockAcquires != 4 {
		t.Errorf("LineLockAcquires = %d, want 4", s.LineLockAcquires)
	}
	if s.LineLockContended == 0 {
		t.Error("expected contended acquisitions")
	}
}

func TestLineLockSimulatedQueueing(t *testing.T) {
	// Successive holders of the same line lock must observe chained
	// simulated start times: the Nth acquirer cannot start before the
	// (N-1)th released.
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.GetLine(0, l); err != nil {
		t.Fatal(err)
	}
	m.AdvanceClock(0, 50_000) // hold for 50 us of simulated work
	if err := m.ReleaseLine(0, l); err != nil {
		t.Fatal(err)
	}
	if err := m.GetLine(1, l); err != nil {
		t.Fatal(err)
	}
	if got := m.Clock(1); got < 50_000 {
		t.Errorf("second holder's clock = %d, want >= 50000 (chained behind first holder)", got)
	}
	if err := m.ReleaseLine(1, l); err != nil {
		t.Fatal(err)
	}
}

func TestCrashBreaksLineLock(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.GetLine(0, l); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.GetLine(1, l)
	}()
	m.Crash(0)
	if err := <-done; !errors.Is(err, ErrLineLost) {
		// Node 0 held the only copy, so the line died with it; the
		// waiter must be woken with ErrLineLost rather than hanging.
		t.Errorf("waiter after crash: err = %v, want ErrLineLost", err)
	}
}

func TestDiscard(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.Write(0, l, 0, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(1, l, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Dropping one of two copies keeps the line alive.
	if err := m.Discard(0, l); err != nil {
		t.Fatal(err)
	}
	if !m.Resident(l) {
		t.Fatal("line should survive on node 1")
	}
	// Dropping the last copy destroys the content.
	if err := m.Discard(1, l); err != nil {
		t.Fatal(err)
	}
	if m.Resident(l) {
		t.Error("line should be gone after last discard")
	}
	// Discard of a non-held line is a no-op.
	if err := m.Discard(0, l); err != nil {
		t.Errorf("idempotent discard: %v", err)
	}
}

func TestCachedLines(t *testing.T) {
	m := newTestMachine(t, 2)
	a := m.Alloc(1)
	b := m.Alloc(1)
	c := m.Alloc(1)
	install(t, m, 0, a)
	install(t, m, 0, b)
	install(t, m, 1, c)
	if _, err := m.Read(1, b, 0, 1); err != nil {
		t.Fatal(err)
	}
	got := m.CachedLines(1)
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Errorf("CachedLines(1) = %v, want [%d %d]", got, b, c)
	}
}

func TestActiveBitAndTrigger(t *testing.T) {
	m := newTestMachine(t, 3)
	l := m.Alloc(1)
	install(t, m, 0, l)
	var events []Event
	m.SetPreTransition(func(ev Event) (int64, error) {
		events = append(events, ev)
		return 123, nil
	})
	if err := m.Write(0, l, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetActive(l, true); err != nil {
		t.Fatal(err)
	}
	if !m.Active(l) {
		t.Fatal("active bit not set")
	}
	// A remote read downgrades: the trigger must fire first.
	before := m.Clock(1)
	if _, err := m.Read(1, l, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventDowngrade || events[0].From != 0 || events[0].To != 1 {
		t.Fatalf("events = %+v, want one downgrade 0->1", events)
	}
	if m.Clock(1)-before < 123 {
		t.Error("trigger cost not charged to the requesting node")
	}
	// The successful fire cleared the active bit (the force made the line
	// clean), so a subsequent invalidating write fires no second trigger.
	if m.Active(l) {
		t.Error("active bit not cleared after successful fire")
	}
	if err := m.Write(2, l, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %+v, want no event after bit cleared", events)
	}
	// Re-marking the line active re-arms the trigger.
	if err := m.Write(2, l, 0, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetActive(l, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(0, l, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Kind != EventDowngrade {
		t.Fatalf("events = %+v, want a second downgrade", events)
	}
	if s := m.Stats(); s.TriggerFires != 2 {
		t.Errorf("TriggerFires = %d, want 2", s.TriggerFires)
	}
}

func TestMigrationFiresTrigger(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	var events []Event
	m.SetPreTransition(func(ev Event) (int64, error) {
		events = append(events, ev)
		return 0, nil
	})
	if err := m.Write(0, l, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetActive(l, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, l, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventMigrate {
		t.Fatalf("events = %+v, want one migrate", events)
	}
}

func TestClocksAdvance(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	c0 := m.Clock(0)
	if _, err := m.Read(0, l, 0, 1); err != nil {
		t.Fatal(err)
	}
	if m.Clock(0) <= c0 {
		t.Error("local read did not advance clock")
	}
	c1 := m.Clock(1)
	if _, err := m.Read(1, l, 0, 1); err != nil {
		t.Fatal(err)
	}
	if d := m.Clock(1) - c1; d < m.Config().Cost.RemoteFetch {
		t.Errorf("remote read advanced clock by %d, want >= RemoteFetch", d)
	}
	if m.MaxClock() < m.Clock(0) {
		t.Error("MaxClock below a node clock")
	}
	m.AdvanceClock(0, 1e9)
	if m.MaxClock() < 1e9 {
		t.Error("AdvanceClock not reflected in MaxClock")
	}
}

func TestInstallReplacesCopies(t *testing.T) {
	m := newTestMachine(t, 2)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.Write(0, l, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	fresh := make([]byte, m.LineSize())
	fresh[0] = 99
	if err := m.Install(1, l, fresh); err != nil {
		t.Fatal(err)
	}
	if h := m.Holders(l); len(h) != 1 || h[0] != 1 {
		t.Errorf("holders after Install = %v, want [1]", h)
	}
	got, err := m.Read(1, l, 0, 1)
	if err != nil || got[0] != 99 {
		t.Errorf("Install content = %v, %v", got, err)
	}
}

func TestInstallShortData(t *testing.T) {
	m := newTestMachine(t, 1)
	l := m.Alloc(1)
	if err := m.Install(0, l, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0, l, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}
