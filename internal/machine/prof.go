package machine

// Stripe-lock profiling. The contention profiler (internal/obs/prof) is
// off by default: hookSet.prof is nil and every stripe acquisition costs
// exactly one extra atomic hook load and one predictable branch over the
// bare mutex — the nil-profiler guard benchmark in bench_test.go holds this
// path to zero allocations. With a profiler attached, every stripe
// critical section is bracketed: TryLock distinguishes contended from
// uncontended acquisitions (and times the blocking ones), unlockStripe
// charges the hold, condWait splits a condvar sleep out of the enclosing
// hold span, and broadcast counts wakeups.

import "smdb/internal/obs/prof"

// StripeCount is the number of line-directory lock stripes, exported so
// callers can size a prof.StripeProf to match (prof.NewPair(machine.StripeCount)).
const StripeCount = stripeCount

// SetProfiler attaches (or, with nil, detaches) the per-stripe lock
// profiler. The profiler must be sized with at least StripeCount stripes;
// it must not call back into the Machine.
func (m *Machine) SetProfiler(p *prof.StripeProf) {
	m.setHooks(func(hk *hookSet) { hk.prof = p })
}

// lockStripe acquires s.mu, recording the acquisition when profiling.
func (m *Machine) lockStripe(s *stripe) {
	p := m.hooks.Load().prof
	if p == nil {
		s.mu.Lock()
		return
	}
	si := int(s.idx)
	if s.mu.TryLock() {
		p.LockAcquired(si, false, 0)
	} else {
		t0 := prof.Now()
		s.mu.Lock()
		p.LockAcquired(si, true, prof.Now()-t0)
	}
	// holdStart is guarded by s.mu itself; nonzero only while a profiled
	// critical section is open, so unlockStripe stays correct if the
	// profiler is attached or detached mid-section.
	s.holdStart = prof.Now()
}

// unlockStripe releases s.mu, charging the hold time when the section was
// opened with a profiler attached.
func (m *Machine) unlockStripe(s *stripe) {
	if s.holdStart != 0 {
		if p := m.hooks.Load().prof; p != nil {
			p.LockHeld(int(s.idx), prof.Now()-s.holdStart)
		}
		s.holdStart = 0
	}
	s.mu.Unlock()
}

// condWait waits on s.cond. When profiling, the enclosing hold span is
// closed for the duration of the sleep (the mutex is not held while
// parked) and reopened on wakeup, and the sleep itself is charged to the
// stripe's condvar counters.
func (m *Machine) condWait(s *stripe) {
	p := m.hooks.Load().prof
	if p == nil {
		s.cond.Wait()
		return
	}
	si := int(s.idx)
	if s.holdStart != 0 {
		p.LockHeld(si, prof.Now()-s.holdStart)
		s.holdStart = 0
	}
	t0 := prof.Now()
	s.cond.Wait()
	now := prof.Now()
	p.CondWait(si, now-t0)
	s.holdStart = now
}

// broadcast wakes s's waiters, counting the wakeup when profiling.
func (m *Machine) broadcast(s *stripe) {
	s.cond.Broadcast()
	if p := m.hooks.Load().prof; p != nil {
		p.Wakeup(int(s.idx))
	}
}
