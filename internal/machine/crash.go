package machine

// Crash injection and the low-level (hardware) recovery step. Following the
// FLASH design sketched in section 2 of the paper, a node failure is detected
// by the (simulated) diagnostic processor; all caches whose node failed are
// destroyed; and the interconnect restores the cache directories to a
// consistent state reflecting the surviving caches. Software recovery — the
// paper's actual contribution — runs on top of this.

import (
	"sync/atomic"

	"smdb/internal/obs"
)

// CrashReport describes the memory damage of a crash: which lines lost their
// only copy and were destroyed, and which survived on other nodes.
type CrashReport struct {
	// Crashed lists the nodes taken down by this call.
	Crashed []NodeID
	// LostLines are lines whose only valid copies were on crashed nodes;
	// their contents are gone.
	LostLines []LineID
	// OrphanedLines are lines that survive on at least one live node but
	// had a copy (shared or exclusive) on a crashed node; uncommitted
	// crashed-node updates may live on in these (the undo problem).
	OrphanedLines []LineID
}

// Crash fails the given nodes: their cache contents and any in-progress
// state are destroyed, line locks they held are broken, and the directory is
// restored to a consistent state. Crash is idempotent for already-down
// nodes. It returns a report of the lines destroyed and orphaned.
func (m *Machine) Crash(nodes ...NodeID) CrashReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashLocked(nodes)
}

// crashLocked is Crash with m.mu held, so an injected transition fault can
// crash a node from inside a coherency operation.
func (m *Machine) crashLocked(nodes []NodeID) CrashReport {
	var rep CrashReport
	var down bitset
	for _, n := range nodes {
		if n < 0 || int(n) >= len(m.alive) || !m.alive[n] {
			continue
		}
		m.alive[n] = false
		m.stats.Crashes++
		down.add(n)
		rep.Crashed = append(rep.Crashed, n)
	}
	if down.empty() {
		// Even an idempotent re-crash must wake line-lock waiters: a waiter
		// may be blocked on a lock whose owner died in the *first* crash of
		// this node, and the wake-up is how it learns to re-check liveness.
		m.cond.Broadcast()
		return rep
	}
	for i := LineID(0); i < m.next; i++ {
		ln := &m.lines[i]
		// Break line locks held by crashed nodes so survivors blocked in
		// GetLine can proceed (the low-level recovery interrupts all CPUs
		// and repairs the interconnect state).
		if ln.lock.held && down.has(ln.lock.owner) {
			ln.lock.held = false
			ln.lock.owner = NoNode
		}
		if !ln.valid {
			continue
		}
		touched := false
		for _, n := range down.nodes() {
			if ln.holders.has(n) {
				ln.holders.remove(n)
				touched = true
			}
		}
		if !touched {
			continue
		}
		if ln.excl != NoNode && down.has(ln.excl) {
			ln.excl = NoNode
		}
		if ln.holders.empty() {
			// The only copy was on a crashed node: destroyed.
			ln.valid = false
			ln.active = false
			for j := range ln.data {
				ln.data[j] = 0
			}
			m.stats.LinesLost++
			rep.LostLines = append(rep.LostLines, i)
		} else {
			rep.OrphanedLines = append(rep.OrphanedLines, i)
		}
	}
	for _, n := range rep.Crashed {
		m.traceLocked(obs.KindCrash, n, int64(len(rep.LostLines)), int64(len(rep.OrphanedLines)))
	}
	if m.crashNotify != nil {
		m.crashNotify(rep)
	}
	m.cond.Broadcast()
	return rep
}

// Restart brings a crashed node back up with a cold (empty) cache. Its
// simulated clock is advanced to the maximum across nodes, modelling the
// repair delay.
func (m *Machine) Restart(n NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 || int(n) >= len(m.alive) {
		return ErrBadAddress
	}
	if m.alive[n] {
		return nil
	}
	m.alive[n] = true
	var max int64
	for i := range m.clocks {
		if c := atomic.LoadInt64(&m.clocks[i]); c > max {
			max = c
		}
	}
	atomic.StoreInt64(&m.clocks[n], max)
	return nil
}

// AliveNodes returns the IDs of all live nodes in ascending order.
func (m *Machine) AliveNodes() []NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeID, 0, len(m.alive))
	for i, a := range m.alive {
		if a {
			out = append(out, NodeID(i))
		}
	}
	return out
}
