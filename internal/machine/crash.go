package machine

// Crash injection and the low-level (hardware) recovery step. Following the
// FLASH design sketched in section 2 of the paper, a node failure is detected
// by the (simulated) diagnostic processor; all caches whose node failed are
// destroyed; and the interconnect restores the cache directories to a
// consistent state reflecting the surviving caches. Software recovery — the
// paper's actual contribution — runs on top of this.
//
// Under the striped line directory, Crash quiesces the whole machine: it
// takes liveMu (ordering it against Restart and other Crash calls) and then
// every stripe in ascending index order, so the liveness flip, the directory
// sweep, and the crashNotify callback are a single atomic step with respect
// to all line operations — the guarantee the old global mutex provided.

import (
	"sync/atomic"

	"smdb/internal/obs"
)

// CrashReport describes the memory damage of a crash: which lines lost their
// only copy and were destroyed, and which survived on other nodes.
type CrashReport struct {
	// Crashed lists the nodes taken down by this call.
	Crashed []NodeID
	// LostLines are lines whose only valid copies were on crashed nodes;
	// their contents are gone.
	LostLines []LineID
	// OrphanedLines are lines that survive on at least one live node but
	// had a copy (shared or exclusive) on a crashed node; uncommitted
	// crashed-node updates may live on in these (the undo problem).
	OrphanedLines []LineID
}

// Crash fails the given nodes: their cache contents and any in-progress
// state are destroyed, line locks they held are broken, and the directory is
// restored to a consistent state. Crash is idempotent for already-down
// nodes. It returns a report of the lines destroyed and orphaned.
func (m *Machine) Crash(nodes ...NodeID) CrashReport {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	for i := range m.stripes {
		m.lockStripe(&m.stripes[i])
	}
	defer func() {
		// Even an idempotent re-crash must wake line-lock waiters: a waiter
		// may be blocked on a lock whose owner died in the *first* crash of
		// this node, and the wake-up is how it learns to re-check liveness.
		for i := range m.stripes {
			m.broadcast(&m.stripes[i])
		}
		for i := len(m.stripes) - 1; i >= 0; i-- {
			m.unlockStripe(&m.stripes[i])
		}
	}()
	return m.crashQuiesced(nodes)
}

// crashQuiesced performs the crash with liveMu and every stripe held.
func (m *Machine) crashQuiesced(nodes []NodeID) CrashReport {
	var rep CrashReport
	var down bitset
	mask := m.aliveMask.Load()
	for _, n := range nodes {
		if n < 0 || int(n) >= m.cfg.Nodes || mask&(1<<uint(n)) == 0 {
			continue
		}
		mask &^= 1 << uint(n)
		atomic.AddInt64(&m.stats.Crashes, 1)
		down.add(n)
		rep.Crashed = append(rep.Crashed, n)
	}
	m.aliveMask.Store(mask)
	if down.empty() {
		return rep
	}
	frontier := m.frontier()
	for i := LineID(0); i < frontier; i++ {
		ln := &m.lines[i]
		// Break line locks held by crashed nodes so survivors blocked in
		// GetLine can proceed (the low-level recovery interrupts all CPUs
		// and repairs the interconnect state).
		if ln.lock.held && down.has(ln.lock.owner) {
			ln.lock.held = false
			ln.lock.owner = NoNode
		}
		if !ln.valid {
			continue
		}
		touched := false
		for _, n := range down.nodes() {
			if ln.holders.has(n) {
				ln.holders.remove(n)
				touched = true
			}
		}
		if !touched {
			continue
		}
		if ln.excl != NoNode && down.has(ln.excl) {
			ln.excl = NoNode
		}
		if ln.holders.empty() {
			// The only copy was on a crashed node: destroyed.
			ln.valid = false
			ln.active = false
			for j := range ln.data {
				ln.data[j] = 0
			}
			atomic.AddInt64(&m.stats.LinesLost, 1)
			rep.LostLines = append(rep.LostLines, i)
		} else {
			rep.OrphanedLines = append(rep.OrphanedLines, i)
		}
	}
	for _, n := range rep.Crashed {
		m.trace(obs.KindCrash, n, int64(len(rep.LostLines)), int64(len(rep.OrphanedLines)))
	}
	if hk := m.hooks.Load(); hk.wf != nil {
		// The crash destroyed these nodes' control state; their in-flight
		// waterfalls die with them (recovery settles the transactions).
		for _, n := range rep.Crashed {
			hk.wf.CrashNode(int32(n))
		}
	}
	if hk := m.hooks.Load(); hk.crashNotify != nil {
		hk.crashNotify(rep)
	}
	return rep
}

// consultFault asks the injected transition-fault hook, with the line's
// stripe held, which nodes should crash at this transition, and traces the
// injection instants. The crash itself is applied by applyFault once the
// caller releases its stripe: executing the sweep from inside a line
// operation would mean taking every stripe while holding one, which
// deadlocks against a concurrent injector on another stripe. The observable
// difference from the old in-line crash is only that the triggering
// operation's own effect lands before the victims die — and since after a
// migrate/invalidate transition the initiator is the line's sole holder,
// a crash of the initiator still destroys that effect, while a crash of
// the old holder was already past influencing it.
func (m *Machine) consultFault(ev Event) []NodeID {
	hk := m.hooks.Load()
	if hk.transitionFault == nil {
		return nil
	}
	victims := hk.transitionFault(ev, m.aliveCount())
	if len(victims) == 0 {
		return nil
	}
	for _, v := range victims {
		m.trace(obs.KindFault, v, int64(ev.Line), int64(ev.Kind))
	}
	return victims
}

// applyFault crashes the victims collected by consultFault, after the
// triggering operation has released its stripe. It returns ErrNodeDown if
// the initiating node nd itself was taken down, so the caller reports its
// operation as lost with the node.
func (m *Machine) applyFault(victims []NodeID, nd NodeID) error {
	if len(victims) == 0 {
		return nil
	}
	m.Crash(victims...)
	if !m.Alive(nd) {
		return ErrNodeDown
	}
	return nil
}

// Restart brings a crashed node back up with a cold (empty) cache. Its
// simulated clock is advanced to the maximum across nodes, modelling the
// repair delay.
func (m *Machine) Restart(n NodeID) error {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	if n < 0 || int(n) >= m.cfg.Nodes {
		return ErrBadAddress
	}
	mask := m.aliveMask.Load()
	if mask&(1<<uint(n)) != 0 {
		return nil
	}
	m.aliveMask.Store(mask | 1<<uint(n))
	maxStoreInt64(&m.clocks[n], m.MaxClock())
	return nil
}

// AliveNodes returns the IDs of all live nodes in ascending order.
// Lock-free.
func (m *Machine) AliveNodes() []NodeID {
	mask := m.aliveMask.Load()
	out := make([]NodeID, 0, m.cfg.Nodes)
	for i := 0; i < m.cfg.Nodes; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}
