package machine

import (
	"errors"
	"testing"
	"time"
)

// waitForWaiters polls until the line's lock has n registered waiters, so
// tests can order "goroutine is blocked in GetLine" before the next step.
func waitForWaiters(t *testing.T, m *Machine, l LineID, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := m.stripeOf(l)
		s.mu.Lock()
		got := m.lines[l].lock.waiters
		s.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d line-lock waiters (have %d)", n, got)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Regression test: Crash of an already-crashed node must be a true no-op
// (empty report, no double-counted stats) but must still broadcast, so
// goroutines blocked on line locks re-check their liveness and never sleep
// through a wake-up they were owed.
func TestCrashIdempotentAndWakesWaiters(t *testing.T) {
	m := newTestMachine(t, 3)
	l := m.Alloc(1)
	install(t, m, 0, l)
	if err := m.GetLine(0, l); err != nil {
		t.Fatal(err)
	}

	// Node 1 blocks on node 0's line lock.
	errc := make(chan error, 1)
	go func() { errc <- m.GetLine(1, l) }()
	waitForWaiters(t, m, l, 1)

	rep := m.Crash(2)
	if len(rep.Crashed) != 1 || rep.Crashed[0] != 2 {
		t.Fatalf("first Crash(2): Crashed = %v, want [2]", rep.Crashed)
	}
	crashes := m.Stats().Crashes

	// Idempotent re-crash: empty report, stats unchanged, and the blocked
	// waiter is not disturbed into a wrong result.
	rep = m.Crash(2)
	if len(rep.Crashed) != 0 || len(rep.LostLines) != 0 || len(rep.OrphanedLines) != 0 {
		t.Errorf("re-crash of dead node: report = %+v, want empty", rep)
	}
	if got := m.Stats().Crashes; got != crashes {
		t.Errorf("re-crash bumped Crashes %d -> %d", crashes, got)
	}
	select {
	case err := <-errc:
		t.Fatalf("waiter returned %v during unrelated re-crash", err)
	default:
	}

	// Killing the waiter's own node — interleaved with another idempotent
	// re-crash — must wake it with ErrNodeDown.
	m.Crash(1)
	m.Crash(2) // idempotent again, must still broadcast
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNodeDown) {
			t.Errorf("dead waiter: err = %v, want ErrNodeDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by crash of its own node")
	}

	// A fresh waiter blocked on the (still-held) lock is woken when the
	// *owner* crashes; the sole copy dies with it, so the waiter observes
	// ErrLineLost rather than acquiring a destroyed line.
	if err := m.Restart(2); err != nil {
		t.Fatal(err)
	}
	go func() { errc <- m.GetLine(2, l) }()
	waitForWaiters(t, m, l, 1)
	m.Crash(0)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrLineLost) {
			t.Errorf("waiter after owner crash: err = %v, want ErrLineLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by crash of the lock owner")
	}
}

// A transition fault that names an already-dead victim must stay a no-op.
func TestTransitionFaultOnDeadVictim(t *testing.T) {
	m := newTestMachine(t, 3)
	l := m.Alloc(1)
	install(t, m, 0, l)
	m.SetTransitionFault(func(ev Event, alive int) []NodeID {
		return []NodeID{0}
	})
	// Write from node 1 migrates the line off node 0; the hook crashes
	// node 0 at that instant.
	if err := m.Write(1, l, 0, []byte{1}); err != nil {
		t.Fatalf("migrating write: %v", err)
	}
	if m.Alive(0) {
		t.Fatal("transition fault did not crash node 0")
	}
	if !m.Resident(l) {
		t.Fatal("line lost despite surviving copy on node 1")
	}
	// The next migration fires the hook again, naming the dead node:
	// nothing changes.
	crashes := m.Stats().Crashes
	if err := m.Write(2, l, 0, []byte{2}); err != nil {
		t.Fatalf("second migrating write: %v", err)
	}
	if got := m.Stats().Crashes; got != crashes {
		t.Errorf("dead-victim fault bumped Crashes %d -> %d", crashes, got)
	}
	if !m.Alive(1) || !m.Alive(2) {
		t.Error("dead-victim fault crashed a live node")
	}
}
