package machine

// This file implements the coherency protocol proper: reads, writes, and the
// software-visible residency operations (Install, Discard, Resident) used by
// the buffer manager and the restart-recovery schemes.

import (
	"sync/atomic"

	"smdb/internal/obs"
)

// charge adds simulated cost to node nd's clock. Called with m.mu held;
// stores are atomic so lock-free clock readers see them.
func (m *Machine) charge(nd NodeID, cost int64) {
	atomic.AddInt64(&m.clocks[nd], cost)
}

// Read copies n bytes starting at byte off of line l into a fresh slice, on
// behalf of node nd. If the line is valid somewhere the protocol replicates
// it into nd's cache (downgrading an exclusive remote holder, history H_wr);
// if it is valid nowhere Read returns ErrLineLost and the caller must
// re-install it from stable storage.
func (m *Machine) Read(nd NodeID, l LineID, off, n int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(l, off, n); err != nil {
		return nil, err
	}
	if !m.aliveLocked(nd) {
		return nil, ErrNodeDown
	}
	ln := &m.lines[l]
	m.stats.Reads++
	if !ln.valid {
		return nil, ErrLineLost
	}
	var fev *Event
	switch {
	case ln.holders.has(nd):
		// Local hit.
		m.stats.LocalHits++
		m.charge(nd, m.cfg.Cost.ReadLocal)
	default:
		// Remote fetch; replicate into nd's cache.
		if ln.excl != NoNode && ln.excl != nd {
			// H_wr: the exclusive holder is downgraded to shared.
			from := ln.excl
			if err := m.fire(l, EventDowngrade, ln.excl, nd, nd); err != nil {
				return nil, err
			}
			m.stats.Downgrades++
			ln.excl = NoNode
			m.traceLocked(obs.KindDowngrade, nd, int64(l), int64(from))
			fev = &Event{Line: l, Kind: EventDowngrade, From: from, To: nd}
		} else {
			// Shared replication: a copy spreads without any holder losing
			// state. Traced so residency consumers (the dependency tracker)
			// see the line enter nd's failure domain.
			m.traceLocked(obs.KindReplicate, nd, int64(l), int64(ln.holders.lowest()))
		}
		ln.holders.add(nd)
		m.stats.RemoteFetches++
		m.stats.Replications++
		m.charge(nd, m.cfg.Cost.RemoteFetch)
	}
	if fev != nil {
		// Injected fault: the downgraded holder can die at exactly this
		// instant, after its uncommitted data replicated to nd's failure
		// domain (fired once nd holds a copy, so the line itself survives
		// as the hardware guarantees).
		if err := m.faultTransition(*fev, nd); err != nil {
			return nil, err
		}
	}
	out := make([]byte, n)
	copy(out, ln.data[off:off+n])
	return out, nil
}

// Write stores data at byte off of line l on behalf of node nd. Under
// write-invalidate the write first obtains the line exclusively, invalidating
// every other cached copy (migrating the line if another node held it
// exclusively — histories H_ww1/H_ww2). Under write-broadcast the update is
// propagated to all cached copies instead. Write returns ErrLineLost if the
// line is valid nowhere.
func (m *Machine) Write(nd NodeID, l LineID, off int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeLocked(nd, l, off, data)
}

func (m *Machine) writeLocked(nd NodeID, l LineID, off int, data []byte) error {
	if err := m.checkRange(l, off, len(data)); err != nil {
		return err
	}
	if !m.aliveLocked(nd) {
		return ErrNodeDown
	}
	ln := &m.lines[l]
	m.stats.Writes++
	if !ln.valid {
		return ErrLineLost
	}
	if ln.lock.held && ln.lock.owner != nd {
		// A line lock pins the line: no other node may read or write it.
		// Callers coordinate through GetLine, so reaching this is a
		// protocol bug above the machine; report it loudly.
		return ErrLineLockHeld
	}
	if m.cfg.Coherency == WriteBroadcast {
		return m.writeBroadcastLocked(nd, ln, l, off, data)
	}
	var fev *Event
	switch {
	case ln.excl == nd:
		// Already exclusive locally.
		m.stats.LocalHits++
		m.charge(nd, m.cfg.Cost.WriteLocal)
	case ln.holders.sole(nd):
		// Sole sharer: silent upgrade.
		ln.excl = nd
		m.stats.LocalHits++
		m.charge(nd, m.cfg.Cost.WriteLocal)
	case ln.excl != NoNode:
		// Another node holds it exclusively: the line migrates.
		from := ln.excl
		if err := m.fire(l, EventMigrate, ln.excl, nd, nd); err != nil {
			return err
		}
		m.stats.Migrations++
		m.stats.RemoteFetches++
		ln.holders = 0
		ln.holders.add(nd)
		ln.excl = nd
		m.charge(nd, m.cfg.Cost.RemoteFetch)
		m.traceLocked(obs.KindMigrate, nd, int64(l), int64(from))
		fev = &Event{Line: l, Kind: EventMigrate, From: from, To: nd}
	default:
		// Shared in one or more caches: invalidate them all.
		others := ln.holders
		others.remove(nd)
		if !others.empty() {
			if err := m.fire(l, EventInvalidate, others.lowest(), nd, nd); err != nil {
				return err
			}
			m.stats.Invalidations += int64(others.count())
			m.charge(nd, int64(others.count())*m.cfg.Cost.InvalidatePerSharer)
			m.traceLocked(obs.KindInvalidate, nd, int64(l), int64(others.count()))
			fev = &Event{Line: l, Kind: EventInvalidate, From: others.lowest(), To: nd}
		}
		cost := m.cfg.Cost.WriteLocal
		if !ln.holders.has(nd) {
			cost = m.cfg.Cost.RemoteFetch
			m.stats.RemoteFetches++
		} else {
			m.stats.LocalHits++
		}
		ln.holders = 0
		ln.holders.add(nd)
		ln.excl = nd
		m.charge(nd, cost)
	}
	if fev != nil {
		// Injected fault: a node that just lost this line can die at
		// exactly this instant (H_ww1/H_ww2 — fired once the transfer is
		// complete, so nd's fresh copy keeps the line alive). If nd itself
		// was taken down, the write is lost with it.
		if err := m.faultTransition(*fev, nd); err != nil {
			return err
		}
	}
	copy(ln.data[off:], data)
	return nil
}

// writeBroadcastLocked implements the write-broadcast protocol of section 7:
// every cached copy is updated in place, so ww sharing replicates lines
// instead of migrating them and a crash loses a line only if the crashed
// node held its sole copy.
func (m *Machine) writeBroadcastLocked(nd NodeID, ln *line, l LineID, off int, data []byte) error {
	if !ln.holders.has(nd) {
		from := nd
		if !ln.holders.empty() {
			from = ln.holders.lowest()
		}
		m.traceLocked(obs.KindReplicate, nd, int64(l), int64(from))
		ln.holders.add(nd)
		m.stats.RemoteFetches++
		m.stats.Replications++
		m.charge(nd, m.cfg.Cost.RemoteFetch)
	} else {
		m.stats.LocalHits++
		m.charge(nd, m.cfg.Cost.WriteLocal)
	}
	remote := ln.holders.count() - 1
	if remote > 0 {
		m.stats.Broadcasts++
		m.charge(nd, int64(remote)*m.cfg.Cost.BroadcastPerSharer)
	}
	// The broadcast keeps every copy current; exclusivity is not tracked.
	ln.excl = NoNode
	copy(ln.data[off:], data)
	return nil
}

// Install loads content into line l and makes node nd its (exclusive) sole
// holder. The buffer manager calls it after reading a page from the stable
// database; restart recovery calls it to rebuild caches. Any previously
// cached copies are replaced. The caller is responsible for charging disk
// time via AdvanceClock; Install itself charges only the local store.
func (m *Machine) Install(nd NodeID, l LineID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(l, 0, len(data)); err != nil {
		return err
	}
	if !m.aliveLocked(nd) {
		return ErrNodeDown
	}
	ln := &m.lines[l]
	if ln.lock.held {
		return ErrLineLockHeld
	}
	if ln.data == nil {
		ln.data = make([]byte, m.cfg.LineSize)
	}
	copy(ln.data, data)
	for i := len(data); i < m.cfg.LineSize; i++ {
		ln.data[i] = 0
	}
	ln.valid = true
	ln.holders = 0
	ln.holders.add(nd)
	ln.excl = nd
	ln.active = false
	m.stats.Installs++
	m.traceLocked(obs.KindInstall, nd, int64(l), 0)
	m.charge(nd, m.cfg.Cost.WriteLocal)
	return nil
}

// Discard drops node nd's cached copy of line l, if any. If that was the
// only copy, the line's content is destroyed (shared memory is the union of
// the caches): this is exactly the "discard all cached database records"
// step of the Redo All restart scheme, and also how the buffer manager
// evicts a page after writing it back. Discard of a line-locked line fails.
func (m *Machine) Discard(nd NodeID, l LineID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLine(l); err != nil {
		return err
	}
	ln := &m.lines[l]
	if ln.lock.held {
		return ErrLineLockHeld
	}
	if !ln.valid || !ln.holders.has(nd) {
		return nil
	}
	ln.holders.remove(nd)
	if ln.excl == nd {
		ln.excl = NoNode
	}
	m.stats.Discards++
	var destroyed int64
	if ln.holders.empty() {
		ln.valid = false
		ln.active = false
		destroyed = 1
		for i := range ln.data {
			ln.data[i] = 0
		}
	}
	m.traceLocked(obs.KindDiscard, nd, int64(l), destroyed)
	return nil
}

// Resident reports whether line l is valid in at least one surviving cache.
// Selective Redo uses it as the "cache miss with I/O disabled" probe of
// section 4.1.2: if a memory reference cannot be satisfied by any surviving
// node, no copy of the update exists and redo is required.
func (m *Machine) Resident(l LineID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l < 0 || int(l) >= len(m.lines) {
		return false
	}
	return m.lines[l].valid
}

// Holders returns the nodes currently caching line l (empty if lost).
func (m *Machine) Holders(l LineID) []NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l < 0 || int(l) >= len(m.lines) || !m.lines[l].valid {
		return nil
	}
	return m.lines[l].holders.nodes()
}

// ExclusiveHolder returns the node holding line l exclusively, or NoNode.
func (m *Machine) ExclusiveHolder(l LineID) NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l < 0 || int(l) >= len(m.lines) || !m.lines[l].valid {
		return NoNode
	}
	return m.lines[l].excl
}

// CachedLines returns, in ascending order, every allocated line with a valid
// copy in node nd's cache. Selective Redo's undo phase performs its
// "sequential search of all cache lines" with this.
func (m *Machine) CachedLines(nd NodeID) []LineID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []LineID
	for i := LineID(0); i < m.next; i++ {
		if m.lines[i].valid && m.lines[i].holders.has(nd) {
			out = append(out, i)
		}
	}
	return out
}
