package machine

// This file implements the coherency protocol proper: reads, writes, and the
// software-visible residency operations (Install, Discard, Resident) used by
// the buffer manager and the restart-recovery schemes. Every operation here
// holds exactly one stripe lock (the one guarding its line); injected
// transition-fault crashes are collected under the stripe and applied by the
// exported wrappers after it is released (see consultFault in crash.go).

import (
	"sort"
	"sync/atomic"

	"smdb/internal/obs"
)

// charge adds simulated cost to node nd's clock. Atomic, so lock-free clock
// readers (and concurrent charges from parallel recovery workers acting for
// the same node) compose correctly.
func (m *Machine) charge(nd NodeID, cost int64) {
	atomic.AddInt64(&m.clocks[nd], cost)
}

// Read copies n bytes starting at byte off of line l into a fresh slice, on
// behalf of node nd. If the line is valid somewhere the protocol replicates
// it into nd's cache (downgrading an exclusive remote holder, history H_wr);
// if it is valid nowhere Read returns ErrLineLost and the caller must
// re-install it from stable storage.
func (m *Machine) Read(nd NodeID, l LineID, off, n int) ([]byte, error) {
	if err := m.checkRange(l, off, n); err != nil {
		return nil, err
	}
	out, victims, err := m.readLocked(nd, l, off, n)
	if err != nil {
		return nil, err
	}
	if err := m.applyFault(victims, nd); err != nil {
		return nil, err
	}
	return out, nil
}

func (m *Machine) readLocked(nd NodeID, l LineID, off, n int) ([]byte, []NodeID, error) {
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	if !m.Alive(nd) {
		return nil, nil, ErrNodeDown
	}
	ln := &m.lines[l]
	atomic.AddInt64(&m.stats.Reads, 1)
	if !ln.valid {
		return nil, nil, ErrLineLost
	}
	var fev *Event
	switch {
	case ln.holders.has(nd):
		// Local hit.
		atomic.AddInt64(&m.stats.LocalHits, 1)
		m.charge(nd, m.cfg.Cost.ReadLocal)
	default:
		// Remote fetch; replicate into nd's cache.
		if ln.excl != NoNode && ln.excl != nd {
			// H_wr: the exclusive holder is downgraded to shared.
			from := ln.excl
			if _, err := m.fire(l, EventDowngrade, ln.excl, nd, nd); err != nil {
				return nil, nil, err
			}
			atomic.AddInt64(&m.stats.Downgrades, 1)
			ln.excl = NoNode
			m.trace(obs.KindDowngrade, nd, int64(l), int64(from))
			fev = &Event{Line: l, Kind: EventDowngrade, From: from, To: nd}
		} else {
			// Shared replication: a copy spreads without any holder losing
			// state. Traced so residency consumers (the dependency tracker)
			// see the line enter nd's failure domain.
			m.trace(obs.KindReplicate, nd, int64(l), int64(ln.holders.lowest()))
		}
		ln.holders.add(nd)
		atomic.AddInt64(&m.stats.RemoteFetches, 1)
		atomic.AddInt64(&m.stats.Replications, 1)
		m.charge(nd, m.cfg.Cost.RemoteFetch)
	}
	// Injected fault: the downgraded holder can die at exactly this
	// transition, after its uncommitted data replicated to nd's failure
	// domain (consulted once nd holds a copy, so the line itself survives
	// as the hardware guarantees). The crash applies once we release the
	// stripe; if nd itself is a victim the copied-out data is dropped by
	// the wrapper, same as the pre-stripe code which returned before the
	// copy.
	var victims []NodeID
	if fev != nil {
		victims = m.consultFault(*fev)
	}
	out := make([]byte, n)
	copy(out, ln.data[off:off+n])
	return out, victims, nil
}

// Write stores data at byte off of line l on behalf of node nd. Under
// write-invalidate the write first obtains the line exclusively, invalidating
// every other cached copy (migrating the line if another node held it
// exclusively — histories H_ww1/H_ww2). Under write-broadcast the update is
// propagated to all cached copies instead. Write returns ErrLineLost if the
// line is valid nowhere.
func (m *Machine) Write(nd NodeID, l LineID, off int, data []byte) error {
	if err := m.checkRange(l, off, len(data)); err != nil {
		return err
	}
	victims, err := m.writeLocked(nd, l, off, data)
	if err != nil {
		return err
	}
	return m.applyFault(victims, nd)
}

func (m *Machine) writeLocked(nd NodeID, l LineID, off int, data []byte) ([]NodeID, error) {
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	if !m.Alive(nd) {
		return nil, ErrNodeDown
	}
	ln := &m.lines[l]
	atomic.AddInt64(&m.stats.Writes, 1)
	if !ln.valid {
		return nil, ErrLineLost
	}
	if ln.lock.held && ln.lock.owner != nd {
		// A line lock pins the line: no other node may read or write it.
		// Callers coordinate through GetLine, so reaching this is a
		// protocol bug above the machine; report it loudly.
		return nil, ErrLineLockHeld
	}
	if m.cfg.Coherency == WriteBroadcast {
		return nil, m.writeBroadcastLocked(nd, ln, l, off, data)
	}
	var fev *Event
	switch {
	case ln.excl == nd:
		// Already exclusive locally.
		atomic.AddInt64(&m.stats.LocalHits, 1)
		m.charge(nd, m.cfg.Cost.WriteLocal)
	case ln.holders.sole(nd):
		// Sole sharer: silent upgrade.
		ln.excl = nd
		atomic.AddInt64(&m.stats.LocalHits, 1)
		m.charge(nd, m.cfg.Cost.WriteLocal)
	case ln.excl != NoNode:
		// Another node holds it exclusively: the line migrates.
		from := ln.excl
		if _, err := m.fire(l, EventMigrate, ln.excl, nd, nd); err != nil {
			return nil, err
		}
		atomic.AddInt64(&m.stats.Migrations, 1)
		atomic.AddInt64(&m.stats.RemoteFetches, 1)
		ln.holders = 0
		ln.holders.add(nd)
		ln.excl = nd
		m.charge(nd, m.cfg.Cost.RemoteFetch)
		m.trace(obs.KindMigrate, nd, int64(l), int64(from))
		fev = &Event{Line: l, Kind: EventMigrate, From: from, To: nd}
	default:
		// Shared in one or more caches: invalidate them all.
		others := ln.holders
		others.remove(nd)
		if !others.empty() {
			if _, err := m.fire(l, EventInvalidate, others.lowest(), nd, nd); err != nil {
				return nil, err
			}
			atomic.AddInt64(&m.stats.Invalidations, int64(others.count()))
			m.charge(nd, int64(others.count())*m.cfg.Cost.InvalidatePerSharer)
			m.trace(obs.KindInvalidate, nd, int64(l), int64(others.count()))
			fev = &Event{Line: l, Kind: EventInvalidate, From: others.lowest(), To: nd}
		}
		cost := m.cfg.Cost.WriteLocal
		if !ln.holders.has(nd) {
			cost = m.cfg.Cost.RemoteFetch
			atomic.AddInt64(&m.stats.RemoteFetches, 1)
		} else {
			atomic.AddInt64(&m.stats.LocalHits, 1)
		}
		ln.holders = 0
		ln.holders.add(nd)
		ln.excl = nd
		m.charge(nd, cost)
	}
	// Injected fault: a node that just lost this line can die at this
	// transition (H_ww1/H_ww2 — consulted once the transfer is complete,
	// so nd's fresh copy keeps the line alive). The crash applies after
	// the stripe is released; if nd itself is a victim, its written copy
	// dies with it (nd is the sole holder after the transition), so the
	// observable outcome equals the old order of crash-then-skip-write.
	var victims []NodeID
	if fev != nil {
		victims = m.consultFault(*fev)
	}
	copy(ln.data[off:], data)
	return victims, nil
}

// writeBroadcastLocked implements the write-broadcast protocol of section 7:
// every cached copy is updated in place, so ww sharing replicates lines
// instead of migrating them and a crash loses a line only if the crashed
// node held its sole copy. Called with the line's stripe held.
func (m *Machine) writeBroadcastLocked(nd NodeID, ln *line, l LineID, off int, data []byte) error {
	if !ln.holders.has(nd) {
		from := nd
		if !ln.holders.empty() {
			from = ln.holders.lowest()
		}
		m.trace(obs.KindReplicate, nd, int64(l), int64(from))
		ln.holders.add(nd)
		atomic.AddInt64(&m.stats.RemoteFetches, 1)
		atomic.AddInt64(&m.stats.Replications, 1)
		m.charge(nd, m.cfg.Cost.RemoteFetch)
	} else {
		atomic.AddInt64(&m.stats.LocalHits, 1)
		m.charge(nd, m.cfg.Cost.WriteLocal)
	}
	remote := ln.holders.count() - 1
	if remote > 0 {
		atomic.AddInt64(&m.stats.Broadcasts, 1)
		m.charge(nd, int64(remote)*m.cfg.Cost.BroadcastPerSharer)
	}
	// The broadcast keeps every copy current; exclusivity is not tracked.
	ln.excl = NoNode
	copy(ln.data[off:], data)
	return nil
}

// Install loads content into line l and makes node nd its (exclusive) sole
// holder. The buffer manager calls it after reading a page from the stable
// database; restart recovery calls it to rebuild caches. Any previously
// cached copies are replaced. The caller is responsible for charging disk
// time via AdvanceClock; Install itself charges only the local store.
func (m *Machine) Install(nd NodeID, l LineID, data []byte) error {
	if err := m.checkRange(l, 0, len(data)); err != nil {
		return err
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	if !m.Alive(nd) {
		return ErrNodeDown
	}
	ln := &m.lines[l]
	if ln.lock.held {
		return ErrLineLockHeld
	}
	if gate := m.hooks.Load().installGate; gate != nil {
		// Consulted with the stripe held: a concurrent Crash cannot publish
		// its state change (it needs every stripe) until this install — and
		// therefore this gate decision — completes.
		if err := gate(nd, l); err != nil {
			return err
		}
	}
	m.schedNote(nd, "install", l)
	if ln.data == nil {
		ln.data = make([]byte, m.cfg.LineSize)
	}
	copy(ln.data, data)
	for i := len(data); i < m.cfg.LineSize; i++ {
		ln.data[i] = 0
	}
	ln.valid = true
	ln.holders = 0
	ln.holders.add(nd)
	ln.excl = nd
	ln.active = false
	atomic.AddInt64(&m.stats.Installs, 1)
	m.trace(obs.KindInstall, nd, int64(l), 0)
	m.charge(nd, m.cfg.Cost.WriteLocal)
	return nil
}

// Discard drops node nd's cached copy of line l, if any. If that was the
// only copy, the line's content is destroyed (shared memory is the union of
// the caches): this is exactly the "discard all cached database records"
// step of the Redo All restart scheme, and also how the buffer manager
// evicts a page after writing it back. Discard of a line-locked line fails.
func (m *Machine) Discard(nd NodeID, l LineID) error {
	if err := m.checkLine(l); err != nil {
		return err
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	ln := &m.lines[l]
	if ln.lock.held {
		return ErrLineLockHeld
	}
	if m.discardLocked(nd, l, ln) {
		atomic.AddInt64(&m.stats.Discards, 1)
	}
	return nil
}

// discardLocked drops nd's copy of ln (line id l), destroying the line if it
// was the last copy, and reports whether a copy was actually dropped. Called
// with the line's stripe held; the caller accounts the Discards stat.
func (m *Machine) discardLocked(nd NodeID, l LineID, ln *line) bool {
	if !ln.valid || !ln.holders.has(nd) {
		return false
	}
	ln.holders.remove(nd)
	if ln.excl == nd {
		ln.excl = NoNode
	}
	var destroyed int64
	if ln.holders.empty() {
		ln.valid = false
		ln.active = false
		destroyed = 1
		for i := range ln.data {
			ln.data[i] = 0
		}
	}
	m.trace(obs.KindDiscard, nd, int64(l), destroyed)
	return true
}

// DiscardAll drops node nd's cached copy of every allocated line for which
// filter returns true (a nil filter selects every line). It is the batched
// form of Discard behind Redo All's "discard all cached database records"
// restart step: instead of one lock round-trip per line it takes each stripe
// once and sweeps that stripe's lines. Line-locked lines are silently
// skipped (the per-line Discard reports ErrLineLockHeld for those; callers
// of the batch form filter them out or own the locks). DiscardAll returns
// the number of cached copies dropped, which is also added to the Discards
// counter in Stats.
func (m *Machine) DiscardAll(nd NodeID, filter func(LineID) bool) int {
	frontier := m.frontier()
	dropped := 0
	for si := range m.stripes {
		s := &m.stripes[si]
		m.lockStripe(s)
		for l := LineID(si); l < frontier; l += stripeCount {
			ln := &m.lines[l]
			if ln.lock.held {
				continue
			}
			if filter != nil && !filter(l) {
				continue
			}
			if m.discardLocked(nd, l, ln) {
				dropped++
			}
		}
		m.unlockStripe(s)
	}
	if dropped > 0 {
		atomic.AddInt64(&m.stats.Discards, int64(dropped))
	}
	return dropped
}

// Resident reports whether line l is valid in at least one surviving cache.
// Selective Redo uses it as the "cache miss with I/O disabled" probe of
// section 4.1.2: if a memory reference cannot be satisfied by any surviving
// node, no copy of the update exists and redo is required.
func (m *Machine) Resident(l LineID) bool {
	if l < 0 || int(l) >= len(m.lines) {
		return false
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	return m.lines[l].valid
}

// Holders returns the nodes currently caching line l (empty if lost).
func (m *Machine) Holders(l LineID) []NodeID {
	if l < 0 || int(l) >= len(m.lines) {
		return nil
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	if !m.lines[l].valid {
		return nil
	}
	return m.lines[l].holders.nodes()
}

// ExclusiveHolder returns the node holding line l exclusively, or NoNode.
func (m *Machine) ExclusiveHolder(l LineID) NodeID {
	if l < 0 || int(l) >= len(m.lines) {
		return NoNode
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	if !m.lines[l].valid {
		return NoNode
	}
	return m.lines[l].excl
}

// CachedLines returns, in ascending order, every allocated line with a valid
// copy in node nd's cache. Selective Redo's undo phase performs its
// "sequential search of all cache lines" with this. The snapshot is taken
// stripe by stripe: it is internally consistent per stripe but, unlike under
// the old global mutex, not a single point-in-time picture of the whole
// machine — recovery only calls it on a quiesced (frozen) machine, where the
// distinction vanishes.
func (m *Machine) CachedLines(nd NodeID) []LineID {
	frontier := m.frontier()
	var out []LineID
	for si := range m.stripes {
		s := &m.stripes[si]
		m.lockStripe(s)
		for l := LineID(si); l < frontier; l += stripeCount {
			if m.lines[l].valid && m.lines[l].holders.has(nd) {
				out = append(out, l)
			}
		}
		m.unlockStripe(s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CachedLineCount counts node nd's valid cached lines without materializing
// the CachedLines slice. The parallel recovery pipeline uses it as a cheap
// load estimate when weight-balancing per-node fan-out chunks; like
// CachedLines it is stripe-consistent, which on a quiesced machine is exact.
func (m *Machine) CachedLineCount(nd NodeID) int {
	frontier := m.frontier()
	count := 0
	for si := range m.stripes {
		s := &m.stripes[si]
		m.lockStripe(s)
		for l := LineID(si); l < frontier; l += stripeCount {
			if m.lines[l].valid && m.lines[l].holders.has(nd) {
				count++
			}
		}
		m.unlockStripe(s)
	}
	return count
}
