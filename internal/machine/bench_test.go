package machine

import (
	"sync/atomic"
	"testing"
)

func benchMachine(b *testing.B, nodes int) (*Machine, LineID) {
	b.Helper()
	m := New(Config{Nodes: nodes, Lines: 1024})
	l := m.Alloc(1)
	if err := m.Install(0, l, make([]byte, m.LineSize())); err != nil {
		b.Fatal(err)
	}
	return m, l
}

func BenchmarkLocalRead(b *testing.B) {
	m, l := benchMachine(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Read(0, l, 0, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalWrite(b *testing.B) {
	m, l := benchMachine(b, 2)
	buf := []byte{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write(0, l, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMigrationPingPong alternates writes from two nodes so every
// write migrates the line — the H_ww1 pattern at full intensity.
func BenchmarkMigrationPingPong(b *testing.B) {
	m, l := benchMachine(b, 2)
	buf := []byte{9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write(NodeID(i%2), l, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Stats().Migrations)/float64(b.N), "migrations/op")
}

func BenchmarkLineLockAcquireRelease(b *testing.B) {
	m, l := benchMachine(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.GetLine(0, l); err != nil {
			b.Fatal(err)
		}
		if err := m.ReleaseLine(0, l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLineLockContended(b *testing.B) {
	m, l := benchMachine(b, 64)
	var next atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine impersonates a distinct node.
		nd := NodeID(next.Add(1) - 1)
		if int(nd) >= m.Nodes() {
			b.Fatalf("more goroutines than nodes (%d)", m.Nodes())
		}
		for pb.Next() {
			if err := m.GetLine(nd, l); err != nil {
				b.Fatal(err)
			}
			if err := m.ReleaseLine(nd, l); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCrashAndRestart(b *testing.B) {
	m := New(Config{Nodes: 4, Lines: 4096})
	base := m.Alloc(2048)
	img := make([]byte, m.LineSize())
	for i := 0; i < 2048; i++ {
		if err := m.Install(NodeID(i%4), base+LineID(i), img); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Crash(3)
		if err := m.Restart(3); err != nil {
			b.Fatal(err)
		}
		// Reinstall what died with node 3 so the next iteration crashes
		// a comparable cache.
		b.StopTimer()
		for j := 3; j < 2048; j += 4 {
			_ = m.Install(3, base+LineID(j), img)
		}
		b.StartTimer()
	}
}
