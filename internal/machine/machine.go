// Package machine simulates a cache-coherent shared-memory multiprocessor
// with independent node failures, in the style of the KSR-1 and the Stanford
// FLASH machines assumed by Molesky & Ramamritham (SIGMOD 1995).
//
// A node is a processor/memory pair. Shared memory is a flat array of cache
// lines; every valid line is resident in one or more node caches (an
// ALLCACHE-style model: memory *is* the union of the caches, and anything not
// cached anywhere must be re-fetched from disk by the database layers above).
// The hardware keeps the caches coherent with a write-invalidate protocol (a
// write-broadcast variant is also provided), so a line can migrate and
// replicate between nodes as a side effect of ordinary reads and writes.
//
// A node crash destroys the contents of that node's cache: every line whose
// only valid copy was on the crashed node is lost. The machine then performs
// the FLASH-style low-level recovery step, restoring the coherency directory
// to a state consistent with the surviving caches. Everything above this
// (undo, redo, IFA) is the job of the database recovery protocols.
//
// The machine also provides the two hardware hooks the paper's protocols
// rely on:
//
//   - line locks (KSR-1 gsp/rsp, here GetLine/ReleaseLine), which pin a line
//     exclusively in the caller's cache so an update and its log write can be
//     made atomic with respect to migration, and
//   - a per-line "active data" bit with a pre-transition callback, the
//     coherency-protocol extension of section 5.2 used to trigger log forces
//     exactly when an active line is about to be downgraded or invalidated.
//
// All operations advance a per-node simulated clock according to a CostModel,
// so experiments can report latencies in simulated time with the shape (not
// the absolute values) of the paper's 1995 hardware.
//
// # Concurrency model
//
// The line directory is sharded: all state of line l — its data, directory
// entry, active bit, and line lock — is guarded by the stripe l hashes to,
// and a line operation holds exactly one stripe for its duration. Operations
// on lines in different stripes run in parallel on real CPUs, which is what
// lets the parallel restart-recovery pipeline scale with the survivor count.
// Per-node clocks, counters, and node liveness are atomics readable without
// any lock. Whole-machine transitions (Crash) quiesce the machine by taking
// every stripe in ascending order, so a crash and its notification callback
// remain atomic with respect to all line traffic, exactly as under the old
// single global mutex. What is *no longer* globally ordered: operations on
// lines in different stripes have no defined mutual order, and an injected
// transition fault (SetTransitionFault) crashes its victims immediately
// *after* the triggering operation completes and releases its stripe rather
// than from inside it — see consultFault in crash.go for why this preserves
// the observable crash semantics.
package machine

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"smdb/internal/obs"
	"smdb/internal/obs/prof"
	"smdb/internal/obs/waterfall"
)

// NodeID identifies a processor/memory pair. Nodes are numbered from 0.
type NodeID int32

// NoNode is the null node identifier (for example, the undo tag of a record
// with no active transaction, or the owner of an unowned line).
const NoNode NodeID = -1

// LineID identifies a cache line in the shared address space.
type LineID int32

// NoLine is the null line identifier.
const NoLine LineID = -1

// Coherency selects the hardware cache-coherency protocol.
type Coherency int

const (
	// WriteInvalidate invalidates all other cached copies before a write,
	// so the writer ends up with the only copy (the paper's main model).
	WriteInvalidate Coherency = iota
	// WriteBroadcast propagates writes to every cached copy, so write-write
	// sharing replicates rather than migrates lines (section 7).
	WriteBroadcast
)

func (c Coherency) String() string {
	switch c {
	case WriteInvalidate:
		return "write-invalidate"
	case WriteBroadcast:
		return "write-broadcast"
	default:
		return fmt.Sprintf("Coherency(%d)", int(c))
	}
}

// Errors returned by machine operations.
var (
	// ErrLineLost reports an access to a line that is valid in no cache:
	// either it was never installed, or a node crash destroyed its only
	// copy. The database layer reacts by re-fetching from stable storage
	// (or, during Selective Redo's probe phase, by scheduling a redo).
	ErrLineLost = errors.New("machine: cache line not resident in any cache")
	// ErrNodeDown reports an operation issued by or to a crashed node.
	ErrNodeDown = errors.New("machine: node is down")
	// ErrBadAddress reports an out-of-range line or byte offset.
	ErrBadAddress = errors.New("machine: bad address")
	// ErrNotLockHolder reports a ReleaseLine by a node that does not hold
	// the line lock.
	ErrNotLockHolder = errors.New("machine: caller does not hold line lock")
	// ErrLineLockHeld reports a destructive operation (Discard, Install)
	// on a line whose line lock is held.
	ErrLineLockHeld = errors.New("machine: line lock held")
)

// Config parameterizes a simulated machine.
type Config struct {
	// Nodes is the number of processor/memory pairs (1..64).
	Nodes int
	// LineSize is the coherency unit in bytes. The KSR-1 and FLASH both
	// use 128-byte lines; that is the default.
	LineSize int
	// Lines is the number of cache lines of shared memory.
	Lines int
	// Coherency selects write-invalidate (default) or write-broadcast.
	Coherency Coherency
	// Cost is the simulated-time cost model. Zero fields are filled with
	// DefaultCostModel values.
	Cost CostModel
}

func (c *Config) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.LineSize == 0 {
		c.LineSize = 128
	}
	if c.Lines == 0 {
		c.Lines = 1 << 16
	}
	c.Cost.setDefaults()
}

func (c *Config) validate() error {
	if c.Nodes < 1 || c.Nodes > 64 {
		return fmt.Errorf("machine: Nodes must be in 1..64, got %d", c.Nodes)
	}
	if c.LineSize < 8 {
		return fmt.Errorf("machine: LineSize must be >= 8, got %d", c.LineSize)
	}
	if c.Lines < 1 {
		return fmt.Errorf("machine: Lines must be >= 1, got %d", c.Lines)
	}
	return nil
}

// lineLock is the hardware line-lock state of one cache line.
type lineLock struct {
	held    bool
	owner   NodeID
	waiters int
	// freeAt is the simulated time at which the lock last became (or will
	// become) free; it chains queueing delay through successive holders.
	freeAt int64
	// lastTxn is the transaction that last released the lock (resolved at
	// release time through the waterfall recorder's current-txn table), so
	// a queued-but-uncontended acquisition — simulated queueing chained
	// through freeAt — can still name the convoy it waited behind.
	lastTxn int64
}

// line is one cache line plus its directory entry.
type line struct {
	data    []byte
	valid   bool   // resident in at least one cache
	holders bitset // nodes with a valid copy
	excl    NodeID // node with the (sole, writable) copy; NoNode if shared
	active  bool   // "contains active data" trigger bit (section 5.2)
	lock    lineLock
}

// stripeCount is the number of lock stripes sharding the line directory.
// A power of two, so the stripe of a line is a mask of its LineID. 128
// stripes keep contention negligible up to the 64-node machine maximum
// while keeping Crash's take-all-stripes quiesce cheap.
const stripeCount = 128

// stripeMask extracts a LineID's stripe index.
const stripeMask = stripeCount - 1

// stripe is one shard of the line-directory lock. The cond wakes GetLine
// waiters queued on lines of this stripe (on release and on crash).
type stripe struct {
	mu   sync.Mutex
	cond *sync.Cond
	// holdStart is the profiler's open hold-span start (prof.Now ns).
	// Guarded by mu itself: nonzero exactly while a profiled critical
	// section is open (see lockStripe/unlockStripe in prof.go).
	holdStart int64
	// idx is this stripe's own index, for profiler attribution.
	idx int32
	// pad the struct to a cache line so neighbouring stripes do not false-
	// share on real hardware (the simulator's own scalability matters to
	// the parallel-recovery experiments).
	_ [36]byte
}

// EventKind classifies coherency-protocol transitions that can expose
// uncommitted data to remote failure domains.
type EventKind int

const (
	// EventMigrate: an exclusively held line moves to another node because
	// of a remote write (history H_ww1/H_ww2). The old copy is invalidated.
	EventMigrate EventKind = iota
	// EventDowngrade: an exclusively held line is downgraded to shared
	// because of a remote read (history H_wr). Copies then exist on both
	// nodes.
	EventDowngrade
	// EventInvalidate: shared copies are invalidated because some node
	// writes the line.
	EventInvalidate
)

func (k EventKind) String() string {
	switch k {
	case EventMigrate:
		return "migrate"
	case EventDowngrade:
		return "downgrade"
	case EventInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event describes a coherency transition on a line whose active bit is set.
type Event struct {
	Line LineID
	Kind EventKind
	// From is the node losing exclusivity (migrate, downgrade) or one of
	// the nodes losing its shared copy (invalidate; From is the lowest).
	From NodeID
	// To is the node acquiring the line.
	To NodeID
}

// PreTransitionFunc is invoked, with the line's stripe lock held, immediately
// before a coherency transition on a line whose active bit is set. It is the
// software half of the section 5.2 hardware extension: the recovery policy
// uses it to force log records to stable store before uncommitted data
// becomes visible to (or dependent on) another failure domain. The returned
// duration (simulated nanoseconds) is charged to the node that triggered the
// transition. The callback must not call back into the Machine except
// through lock-free methods (Clock, MaxClock, Alive).
type PreTransitionFunc func(ev Event) (cost int64, err error)

// TransitionFaultFunc is the fault-injection hook: it is invoked, with the
// line's stripe lock held, immediately *after* every coherency transition (on
// any line, active or not) and returns the nodes to crash at that instant —
// the hazard windows Logging-Before-Migration exists to cover. alive is the
// current live-node count, so the injector can respect a survivor floor. The
// hook must not call back into the Machine. The crash itself is applied as
// soon as the triggering operation completes and releases its stripe (see
// the package comment on the concurrency model).
type TransitionFaultFunc func(ev Event, alive int) []NodeID

// hookSet bundles the rarely-mutated callbacks so line operations can load
// all of them with a single atomic read. Set* methods copy-on-write under
// hookMu; the stored pointer is never nil.
type hookSet struct {
	preTransition   PreTransitionFunc
	transitionFault TransitionFaultFunc
	crashNotify     func(CrashReport)
	installGate     InstallGateFunc
	schedNote       SchedNoteFunc
	obs             *obs.Observer
	prof            *prof.StripeProf
	wf              *waterfall.Recorder
}

// InstallGateFunc is consulted by Install with the line's stripe held,
// before any bytes change. A non-nil error vetoes the install. Because a
// crash acquires every stripe before publishing its state change, a gate
// that reads crash-published state (e.g. the database's frozen flag) can
// never race with the crash itself: the flag cannot flip while the install
// holds its stripe. The hook must not call back into the Machine.
type InstallGateFunc func(nd NodeID, l LineID) error

// SchedNoteFunc annotates low-level interleaving (line-lock grants,
// installs) for the chaos schedule recorder. It may be called with a stripe
// held, so it must be cheap and must not call back into the Machine.
type SchedNoteFunc func(nd NodeID, site string, l LineID)

// Machine is a simulated cache-coherent shared-memory multiprocessor.
// All methods are safe for concurrent use by multiple goroutines.
type Machine struct {
	cfg Config

	// stripes shard the line directory: all state of line l (data,
	// directory entry, active bit, line lock) is guarded by
	// stripes[l&stripeMask]. A line operation holds exactly one stripe and
	// never blocks on a second one, so operations on lines of different
	// stripes proceed in parallel.
	stripes [stripeCount]stripe
	lines   []line

	// liveMu orders whole-machine liveness transitions (Crash, Restart).
	// Crash additionally acquires every stripe in ascending order, so the
	// crash sweep — and the crashNotify callback it ends with — is atomic
	// with respect to every line operation, preserving the old global-
	// mutex guarantee that no goroutine ever observes a half-crashed node.
	liveMu sync.Mutex
	// aliveMask has bit n set while node n is up (Nodes <= 64 by
	// validation). Line operations read it under their stripe lock; it
	// only transitions downward while every stripe is held (Crash), and
	// upward without any line state changing (Restart).
	aliveMask atomic.Uint64

	allocMu sync.Mutex
	// next is the bump-allocator frontier: lines 0..next-1 are allocated.
	// Atomic so sweeps (Crash, CachedLines, DiscardAll) read it lock-free.
	next atomic.Int64

	// clocks are per-node simulated nanoseconds, accessed only atomically:
	// observability hooks in other layers (wal, buffer) need a node's
	// clock while a stripe may be held by a pre-transition callback higher
	// in the stack. Monotonic absolute stores go through maxStoreInt64.
	clocks []int64
	stats  Stats // updated and snapshotted atomically (see stats.go)

	// hooks is copy-on-write under hookMu; never nil.
	hookMu sync.Mutex
	hooks  atomic.Pointer[hookSet]
}

// New constructs a machine. It panics on an invalid configuration, since a
// configuration is always programmer-provided.
func New(cfg Config) *Machine {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:    cfg,
		lines:  make([]line, cfg.Lines),
		clocks: make([]int64, cfg.Nodes),
	}
	for i := range m.stripes {
		m.stripes[i].cond = sync.NewCond(&m.stripes[i].mu)
		m.stripes[i].idx = int32(i)
	}
	m.aliveMask.Store(^uint64(0) >> (64 - uint(cfg.Nodes)))
	m.hooks.Store(&hookSet{})
	for i := range m.lines {
		m.lines[i].excl = NoNode
		m.lines[i].lock.owner = NoNode
	}
	return m
}

// stripeOf returns the stripe guarding line l.
func (m *Machine) stripeOf(l LineID) *stripe {
	return &m.stripes[int(l)&stripeMask]
}

// frontier returns the bump-allocator frontier: every allocated line id is
// below it. Lock-free.
func (m *Machine) frontier() LineID { return LineID(m.next.Load()) }

// maxStoreInt64 advances *addr to v if v is greater. Used for absolute
// clock stores so concurrent charges to the same node's clock can never
// move it backwards (the simulated-clock monotonicity invariant).
func maxStoreInt64(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// Config returns the machine's configuration (with defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// Nodes returns the number of nodes.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// LineSize returns the coherency unit in bytes.
func (m *Machine) LineSize() int { return m.cfg.LineSize }

// Alloc reserves n consecutive cache lines of shared memory and returns the
// first LineID. Allocation is a simple bump pointer; freed regions are not
// reused (database structures in this reproduction live for the life of the
// machine). Alloc panics if the machine is out of lines, which indicates a
// mis-sized Config rather than a runtime condition.
func (m *Machine) Alloc(n int) LineID {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	base := m.frontier()
	if int(base)+n > len(m.lines) {
		panic(fmt.Sprintf("machine: out of shared memory (%d lines in use, %d requested, %d total)",
			base, n, len(m.lines)))
	}
	m.next.Store(int64(base) + int64(n))
	return base
}

// Alive reports whether node n is up. Lock-free, so it is safe to call even
// from code running under a pre-transition callback.
func (m *Machine) Alive(n NodeID) bool {
	return n >= 0 && int(n) < m.cfg.Nodes && m.aliveMask.Load()&(1<<uint(n)) != 0
}

// aliveCount returns the number of live nodes. Lock-free.
func (m *Machine) aliveCount() int {
	return bits.OnesCount64(m.aliveMask.Load())
}

// setHooks applies a copy-on-write mutation to the hook set.
func (m *Machine) setHooks(mut func(*hookSet)) {
	m.hookMu.Lock()
	defer m.hookMu.Unlock()
	hk := *m.hooks.Load()
	mut(&hk)
	m.hooks.Store(&hk)
}

// SetPreTransition installs the coherency-event callback used by triggered
// Stable LBM. Passing nil removes it.
func (m *Machine) SetPreTransition(f PreTransitionFunc) {
	m.setHooks(func(hk *hookSet) { hk.preTransition = f })
}

// SetTransitionFault installs the fault-injection hook consulted after every
// coherency transition. Passing nil removes it.
func (m *Machine) SetTransitionFault(f TransitionFaultFunc) {
	m.setHooks(func(hk *hookSet) { hk.transitionFault = f })
}

// SetCrashNotify installs the crash callback invoked (with every stripe
// held — the machine fully quiesced) whenever nodes actually go down.
// Passing nil removes it.
func (m *Machine) SetCrashNotify(f func(CrashReport)) {
	m.setHooks(func(hk *hookSet) { hk.crashNotify = f })
}

// SetInstallGate installs (or, with nil, removes) the install veto hook.
// See InstallGateFunc for the concurrency contract.
func (m *Machine) SetInstallGate(f InstallGateFunc) {
	m.setHooks(func(hk *hookSet) { hk.installGate = f })
}

// SetSchedNote installs (or, with nil, removes) the schedule-recorder
// annotation hook. See SchedNoteFunc for the concurrency contract.
func (m *Machine) SetSchedNote(f SchedNoteFunc) {
	m.setHooks(func(hk *hookSet) { hk.schedNote = f })
}

// schedNote emits a schedule annotation if a recorder hook is attached.
func (m *Machine) schedNote(nd NodeID, site string, l LineID) {
	if f := m.hooks.Load().schedNote; f != nil {
		f(nd, site, l)
	}
}

// SetObserver attaches (or, with nil, detaches) the observability layer.
// Coherency transitions, line-lock latencies, trigger fires, and crashes are
// reported to it. The observer must not call back into the Machine.
func (m *Machine) SetObserver(o *obs.Observer) {
	m.setHooks(func(hk *hookSet) { hk.obs = o })
}

// SetWaterfall attaches (or, with nil, detaches) the per-transaction latency
// waterfall recorder. Line-lock waits (with the holding transaction, when
// resolvable) are reported to it. The recorder must not call back into the
// Machine.
func (m *Machine) SetWaterfall(w *waterfall.Recorder) {
	m.setHooks(func(hk *hookSet) { hk.wf = w })
}

// trace records an instant event at node nd's current simulated time. Safe
// to call with or without stripe locks held.
func (m *Machine) trace(k obs.Kind, nd NodeID, a, b int64) {
	hk := m.hooks.Load()
	if hk.obs == nil {
		return
	}
	var sim int64
	if nd >= 0 && int(nd) < len(m.clocks) {
		sim = atomic.LoadInt64(&m.clocks[nd])
	}
	hk.obs.Instant(k, int32(nd), sim, a, b)
}

// SetActive sets or clears the per-line "contains active data" bit
// (section 5.2). The caller should hold the line (via line lock or
// exclusivity); the machine does not check.
func (m *Machine) SetActive(l LineID, on bool) error {
	if err := m.checkLine(l); err != nil {
		return err
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	m.lines[l].active = on
	return nil
}

// Active reports the line's active-data bit.
func (m *Machine) Active(l LineID) bool {
	if l < 0 || int(l) >= len(m.lines) {
		return false
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	return m.lines[l].active
}

// Clock returns node n's simulated clock in nanoseconds. It is lock-free,
// so it is safe to call even from code running under a pre-transition
// callback (which holds the line's stripe lock).
func (m *Machine) Clock(n NodeID) int64 {
	if n < 0 || int(n) >= len(m.clocks) {
		return 0
	}
	return atomic.LoadInt64(&m.clocks[n])
}

// MaxClock returns the maximum simulated clock across nodes: the simulated
// makespan of the run so far. Lock-free, like Clock.
func (m *Machine) MaxClock() int64 {
	var max int64
	for i := range m.clocks {
		if c := atomic.LoadInt64(&m.clocks[i]); c > max {
			max = c
		}
	}
	return max
}

// AdvanceClock charges d simulated nanoseconds to node n. Database layers
// use it for work that happens outside the machine proper (disk I/O, log
// forces, message passing). Lock-free.
func (m *Machine) AdvanceClock(n NodeID, d int64) {
	if d <= 0 {
		return
	}
	if n >= 0 && int(n) < len(m.clocks) {
		atomic.AddInt64(&m.clocks[n], d)
	}
}

// checkLine validates a line id.
func (m *Machine) checkLine(l LineID) error {
	if l < 0 || int(l) >= len(m.lines) {
		return fmt.Errorf("%w: line %d of %d", ErrBadAddress, l, len(m.lines))
	}
	return nil
}

// checkRange validates a byte range within a line.
func (m *Machine) checkRange(l LineID, off, n int) error {
	if err := m.checkLine(l); err != nil {
		return err
	}
	if off < 0 || n < 0 || off+n > m.cfg.LineSize {
		return fmt.Errorf("%w: [%d,%d) of %d-byte line", ErrBadAddress, off, off+n, m.cfg.LineSize)
	}
	return nil
}

// fire invokes the pre-transition callback if the line's active bit is set,
// charging the returned cost to node charge. On success the active bit is
// cleared, as the paper's section 5.2 hardware extension specifies ("log
// forces would clear the bits of all associated cache lines"): the callback
// has made the line's pending log records stable, so later transitions need
// no further forces until the line is updated again. Called with the line's
// stripe held.
func (m *Machine) fire(l LineID, kind EventKind, from, to, charge NodeID) (int64, error) {
	ln := &m.lines[l]
	hk := m.hooks.Load()
	if !ln.active || hk.preTransition == nil {
		return 0, nil
	}
	cost, err := hk.preTransition(Event{Line: l, Kind: kind, From: from, To: to})
	if charge >= 0 && int(charge) < len(m.clocks) {
		atomic.AddInt64(&m.clocks[charge], cost)
	}
	atomic.AddInt64(&m.stats.TriggerFires, 1)
	m.trace(obs.KindTriggerFire, charge, int64(l), int64(kind))
	if err == nil {
		ln.active = false
	}
	return cost, err
}
