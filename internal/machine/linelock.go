package machine

// Line locks (the KSR-1's gsp/rsp "get/release subpage" primitives, renamed
// getline/releaseline in the paper) pin a cache line in the caller's cache
// in a mutually-exclusive state. While held, no other node can read or write
// the line, so an in-place update and the write of its log record become
// atomic with respect to cache-line migration. This is the mechanism that
// makes Volatile LBM nearly free (section 5.1) and that enforces the ordered
// update logging rule (section 6).
//
// Lock waiters block on the per-stripe condition variable; ReleaseLine wakes
// its own stripe's waiters, and Crash (which holds every stripe) wakes all
// of them so they re-check node liveness and line validity.

import (
	"sync/atomic"

	"smdb/internal/obs"
)

// GetLine acquires the line lock on l for node nd, blocking (the calling
// goroutine) while another node holds it. On success the line is exclusively
// resident in nd's cache. The simulated cost is LineLockLocal if the line was
// already exclusive locally and LineLockRemote otherwise, plus queueing delay
// chained through earlier holders (which is what produces the paper's
// contention curve).
func (m *Machine) GetLine(nd NodeID, l LineID) error {
	if err := m.checkLine(l); err != nil {
		return err
	}
	victims, err := m.getLineLocked(nd, l)
	if err != nil {
		return err
	}
	m.schedNote(nd, "getline", l)
	// If an injected fault named nd itself, the crash sweep below breaks
	// the lock nd just acquired, so the error return leaves no dangling
	// ownership — same observable outcome as the old order, which crashed
	// before recording ownership.
	return m.applyFault(victims, nd)
}

func (m *Machine) getLineLocked(nd NodeID, l LineID) ([]NodeID, error) {
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	if !m.Alive(nd) {
		return nil, ErrNodeDown
	}
	ln := &m.lines[l]
	if !ln.valid {
		return nil, ErrLineLost
	}
	atomic.AddInt64(&m.stats.LineLockAcquires, 1)
	entry := atomic.LoadInt64(&m.clocks[nd])
	contended := ln.lock.held
	// Resolve the blocking transaction while the holder still holds: by the
	// time the wait ends the holder may have moved on, and the waterfall's
	// convoy explanation wants who was *actually* in the way.
	var holderTxn int64
	if hk := m.hooks.Load(); hk.wf != nil && contended && ln.lock.owner != NoNode {
		holderTxn = hk.wf.CurrentTxn(int32(ln.lock.owner))
	}
	if contended {
		atomic.AddInt64(&m.stats.LineLockContended, 1)
	}
	ln.lock.waiters++
	for ln.lock.held {
		m.condWait(s)
		if !m.Alive(nd) {
			ln.lock.waiters--
			return nil, ErrNodeDown
		}
		if !ln.valid {
			ln.lock.waiters--
			return nil, ErrLineLost
		}
	}
	ln.lock.waiters--

	// Simulated queueing: we cannot start acquiring before the lock's
	// simulated free time.
	start := atomic.LoadInt64(&m.clocks[nd])
	if ln.lock.freeAt > start {
		start = ln.lock.freeAt
	}
	cost := m.cfg.Cost.LineLockRemote
	if ln.excl == nd {
		cost = m.cfg.Cost.LineLockLocal
	}
	// Acquiring the lock also acquires the line exclusively, with the same
	// coherency side effects as a write.
	var fev *Event
	var trig int64 // trigger-force cost charged to nd by fire, attributed separately
	if ln.excl != NoNode && ln.excl != nd {
		from := ln.excl
		tc, err := m.fire(l, EventMigrate, ln.excl, nd, nd)
		if err != nil {
			return nil, err
		}
		trig = tc
		atomic.AddInt64(&m.stats.Migrations, 1)
		ln.holders = 0
		m.trace(obs.KindMigrate, nd, int64(l), int64(from))
		fev = &Event{Line: l, Kind: EventMigrate, From: from, To: nd}
	} else if !ln.holders.sole(nd) {
		others := ln.holders
		others.remove(nd)
		if !others.empty() {
			tc, err := m.fire(l, EventInvalidate, others.lowest(), nd, nd)
			if err != nil {
				return nil, err
			}
			trig = tc
			atomic.AddInt64(&m.stats.Invalidations, int64(others.count()))
			m.trace(obs.KindInvalidate, nd, int64(l), int64(others.count()))
			fev = &Event{Line: l, Kind: EventInvalidate, From: others.lowest(), To: nd}
		}
		ln.holders = 0
	}
	ln.holders.add(nd)
	ln.excl = nd
	// Injected fault: the previous holder can die at the instant the
	// line-locked acquisition migrates the line into nd's cache. The crash
	// applies once the stripe is released (see GetLine above for the
	// nd-is-a-victim case).
	var victims []NodeID
	if fev != nil {
		victims = m.consultFault(*fev)
	}
	ln.lock.held = true
	ln.lock.owner = nd
	maxStoreInt64(&m.clocks[nd], start+cost)
	if hk := m.hooks.Load(); hk.obs != nil || hk.wf != nil {
		// Acquisition latency is the simulated interval from the caller
		// issuing GetLine to holding the lock: queueing delay (chained
		// through freeAt) plus the acquire cost itself.
		lat := start + cost - entry
		if hk.obs != nil {
			hk.obs.ObserveLineLock(lat)
			if contended {
				hk.obs.Instant(obs.KindLineLockWait, int32(nd), start+cost, int64(l), lat)
			}
		}
		// The waterfall counts real waiting only: a contended acquisition,
		// or simulated queueing chained through freeAt (start > entry). The
		// uncontended acquire cost itself stays in the compute residue, and a
		// trigger force charged by fire is already the DB layer's CauseLogForce
		// segment — subtract it so the causes don't overlap.
		if hk.wf != nil && (contended || start > entry) {
			if holderTxn == 0 {
				holderTxn = ln.lock.lastTxn
			}
			hk.wf.NoteLineWait(int32(nd), int(l), holderTxn, start+cost, lat-trig)
		}
	}
	return victims, nil
}

// TryGetLine is GetLine without blocking: it reports false if the lock is
// held by another node.
func (m *Machine) TryGetLine(nd NodeID, l LineID) (bool, error) {
	if err := m.checkLine(l); err != nil {
		return false, err
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	locked := m.lines[l].lock.held && m.lines[l].lock.owner != nd
	m.unlockStripe(s)
	if locked {
		return false, nil
	}
	if err := m.GetLine(nd, l); err != nil {
		return false, err
	}
	return true, nil
}

// ReleaseLine releases the line lock on l held by node nd.
func (m *Machine) ReleaseLine(nd NodeID, l LineID) error {
	if err := m.checkLine(l); err != nil {
		return err
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	ln := &m.lines[l]
	if !ln.lock.held || ln.lock.owner != nd {
		return ErrNotLockHolder
	}
	m.charge(nd, m.cfg.Cost.LineLockRelease)
	if hk := m.hooks.Load(); hk.wf != nil {
		ln.lock.lastTxn = hk.wf.CurrentTxn(int32(nd))
	}
	ln.lock.held = false
	ln.lock.owner = NoNode
	// The lock becomes free, in simulated time, when the releasing node's
	// clock reaches this instant; waiters chain their start times from it.
	ln.lock.freeAt = atomic.LoadInt64(&m.clocks[nd])
	m.broadcast(s)
	return nil
}

// LineLockHeldBy returns the node holding the line lock on l, or NoNode.
func (m *Machine) LineLockHeldBy(l LineID) NodeID {
	if l < 0 || int(l) >= len(m.lines) {
		return NoNode
	}
	s := m.stripeOf(l)
	m.lockStripe(s)
	defer m.unlockStripe(s)
	if !m.lines[l].lock.held {
		return NoNode
	}
	return m.lines[l].lock.owner
}
