package machine

import (
	"runtime"
	"testing"

	"smdb/internal/obs/prof"
)

func profMachine(t testing.TB) (*Machine, *prof.StripeProf) {
	t.Helper()
	m := New(Config{Nodes: 4, Lines: 1024})
	base := m.Alloc(256)
	for l := base; l < base+256; l++ {
		if err := m.Install(0, l, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	p := prof.NewStripeProf(StripeCount)
	m.SetProfiler(p)
	return m, p
}

func TestProfilerCountsStripeActivity(t *testing.T) {
	m, p := profMachine(t)
	const l = LineID(7)
	if err := m.GetLine(0, l); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, l, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := m.ReleaseLine(0, l); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	c := s.Stripes[int(l)&stripeMask]
	// GetLine + Write + ReleaseLine each take the stripe once; the Installs
	// in profMachine ran before the profiler attached and are not counted.
	if c.Acquires < 3 {
		t.Errorf("stripe %d acquires = %d, want >= 3", c.Stripe, c.Acquires)
	}
	if c.HoldNS <= 0 {
		t.Errorf("stripe %d holdNS = %d, want > 0", c.Stripe, c.HoldNS)
	}
	if c.Wakeups < 1 {
		t.Errorf("stripe %d wakeups = %d, want >= 1 (ReleaseLine broadcast)", c.Stripe, c.Wakeups)
	}
	if got := s.Totals().Acquires; got < 3 {
		t.Errorf("total acquires = %d", got)
	}
}

// TestProfilerCondWait drives a real blocked GetLine: once the waiter is
// observed contended it is parked inside the stripe's wait loop holding the
// stripe mutex, so the release cannot overtake it and a condvar sleep is
// guaranteed to be recorded.
func TestProfilerCondWait(t *testing.T) {
	m, p := profMachine(t)
	const l = LineID(3)
	if err := m.GetLine(0, l); err != nil {
		t.Fatal(err)
	}
	before := m.Stats().LineLockContended
	done := make(chan error, 1)
	go func() {
		if err := m.GetLine(1, l); err != nil {
			done <- err
			return
		}
		done <- m.ReleaseLine(1, l)
	}()
	for m.Stats().LineLockContended == before {
		runtime.Gosched()
	}
	if err := m.ReleaseLine(0, l); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c := p.Snapshot().Stripes[int(l)&stripeMask]
	if c.CondWaits < 1 || c.CondWaitNS <= 0 {
		t.Errorf("cond waits = %d (%dns), want >= 1", c.CondWaits, c.CondWaitNS)
	}
	if c.Wakeups < 2 {
		t.Errorf("wakeups = %d, want >= 2 (two releases)", c.Wakeups)
	}
}

// TestProfilerDetachMidSection exercises attach/detach around open critical
// sections: the holdStart guard must keep unlockStripe correct whichever
// half of a section saw the profiler.
func TestProfilerDetachMidSection(t *testing.T) {
	m, p := profMachine(t)
	m.SetProfiler(nil)
	if err := m.Write(0, 1, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	m.SetProfiler(p)
	if err := m.Write(0, 1, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got := p.Snapshot().Totals().Acquires; got < 1 {
		t.Errorf("acquires after reattach = %d", got)
	}
}

// TestNilProfilerDoesNotAllocate is the disabled-profiler guard, matching
// the nil-observer guard in internal/obs: the machine hot paths must stay
// allocation-free with no profiler attached.
func TestNilProfilerDoesNotAllocate(t *testing.T) {
	m := New(Config{Nodes: 2, Lines: 256})
	l := m.Alloc(1)
	if err := m.Install(0, l, []byte{1}); err != nil {
		t.Fatal(err)
	}
	buf := []byte{42}
	if n := testing.AllocsPerRun(200, func() {
		if err := m.GetLine(0, l); err != nil {
			t.Fatal(err)
		}
		if err := m.Write(0, l, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := m.ReleaseLine(0, l); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("nil-profiler lock/write/release path allocates %.1f/op", n)
	}
}

// BenchmarkLineLockAcquireReleaseProfiled is the enabled-profiler
// counterpart of BenchmarkLineLockAcquireRelease: the delta between the two
// is the profiler's hot-path overhead (a TryLock, two monotonic clock
// reads, and a few atomic adds).
func BenchmarkLineLockAcquireReleaseProfiled(b *testing.B) {
	m, l := benchMachine(b, 4)
	m.SetProfiler(prof.NewStripeProf(StripeCount))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.GetLine(0, l); err != nil {
			b.Fatal(err)
		}
		if err := m.ReleaseLine(0, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLineLockAcquireReleaseNilProfiler pins the disabled path's cost
// (and, via -benchmem, its zero allocations) for comparison against the
// pre-profiler BenchmarkLineLockAcquireRelease numbers.
func BenchmarkLineLockAcquireReleaseNilProfiler(b *testing.B) {
	m, l := benchMachine(b, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.GetLine(0, l); err != nil {
			b.Fatal(err)
		}
		if err := m.ReleaseLine(0, l); err != nil {
			b.Fatal(err)
		}
	}
}
