package machine

import "sync/atomic"

// Stats counts coherency traffic and failure events. The recovery
// experiments use these to relate protocol overheads to the sharing
// behaviour that causes them. Inside the Machine every field is updated
// with atomic adds (line operations hold only their line's stripe, so a
// single non-atomic counter block would race); Stats() assembles a
// field-by-field atomic snapshot.
type Stats struct {
	// Reads and Writes are total loads/stores issued.
	Reads, Writes int64
	// LocalHits are accesses satisfied by the local cache.
	LocalHits int64
	// RemoteFetches are accesses serviced from another node's cache.
	RemoteFetches int64
	// Migrations are exclusive-to-exclusive transfers caused by remote
	// writes (histories H_ww1/H_ww2): the old holder loses its copy.
	Migrations int64
	// Downgrades are exclusive-to-shared transitions caused by remote
	// reads (history H_wr).
	Downgrades int64
	// Replications are copies created in additional caches by reads.
	Replications int64
	// Invalidations are shared copies destroyed by writes.
	Invalidations int64
	// Broadcasts are write-broadcast update rounds.
	Broadcasts int64
	// Installs are lines loaded from outside (disk) into a cache.
	Installs int64
	// Discards are cached copies dropped by software (cache flush),
	// whether one at a time (Discard) or batched (DiscardAll).
	Discards int64
	// LineLockAcquires and LineLockContended count GetLine calls and the
	// subset that found the lock held.
	LineLockAcquires, LineLockContended int64
	// TriggerFires counts pre-transition callback invocations on active
	// lines (the section 5.2 hardware extension).
	TriggerFires int64
	// Crashes is the number of node crashes injected.
	Crashes int64
	// LinesLost is the number of valid lines destroyed by crashes (their
	// only copy was on a crashed node).
	LinesLost int64
}

// Sub returns the per-interval delta s - prev: each counter minus its value
// in an earlier snapshot. Harnesses use it to report work done inside a
// measurement window without hand-subtracting fields.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:             s.Reads - prev.Reads,
		Writes:            s.Writes - prev.Writes,
		LocalHits:         s.LocalHits - prev.LocalHits,
		RemoteFetches:     s.RemoteFetches - prev.RemoteFetches,
		Migrations:        s.Migrations - prev.Migrations,
		Downgrades:        s.Downgrades - prev.Downgrades,
		Replications:      s.Replications - prev.Replications,
		Invalidations:     s.Invalidations - prev.Invalidations,
		Broadcasts:        s.Broadcasts - prev.Broadcasts,
		Installs:          s.Installs - prev.Installs,
		Discards:          s.Discards - prev.Discards,
		LineLockAcquires:  s.LineLockAcquires - prev.LineLockAcquires,
		LineLockContended: s.LineLockContended - prev.LineLockContended,
		TriggerFires:      s.TriggerFires - prev.TriggerFires,
		Crashes:           s.Crashes - prev.Crashes,
		LinesLost:         s.LinesLost - prev.LinesLost,
	}
}

// Stats returns a snapshot of the machine's counters. Each field is read
// atomically; the snapshot as a whole is not a single point in time when
// line operations are in flight (counters of one operation may land across
// two snapshots), which no consumer depends on.
func (m *Machine) Stats() Stats {
	return Stats{
		Reads:             atomic.LoadInt64(&m.stats.Reads),
		Writes:            atomic.LoadInt64(&m.stats.Writes),
		LocalHits:         atomic.LoadInt64(&m.stats.LocalHits),
		RemoteFetches:     atomic.LoadInt64(&m.stats.RemoteFetches),
		Migrations:        atomic.LoadInt64(&m.stats.Migrations),
		Downgrades:        atomic.LoadInt64(&m.stats.Downgrades),
		Replications:      atomic.LoadInt64(&m.stats.Replications),
		Invalidations:     atomic.LoadInt64(&m.stats.Invalidations),
		Broadcasts:        atomic.LoadInt64(&m.stats.Broadcasts),
		Installs:          atomic.LoadInt64(&m.stats.Installs),
		Discards:          atomic.LoadInt64(&m.stats.Discards),
		LineLockAcquires:  atomic.LoadInt64(&m.stats.LineLockAcquires),
		LineLockContended: atomic.LoadInt64(&m.stats.LineLockContended),
		TriggerFires:      atomic.LoadInt64(&m.stats.TriggerFires),
		Crashes:           atomic.LoadInt64(&m.stats.Crashes),
		LinesLost:         atomic.LoadInt64(&m.stats.LinesLost),
	}
}

// ResetStats zeroes the counters (the clock and memory state are unchanged).
func (m *Machine) ResetStats() {
	for _, p := range []*int64{
		&m.stats.Reads, &m.stats.Writes, &m.stats.LocalHits,
		&m.stats.RemoteFetches, &m.stats.Migrations, &m.stats.Downgrades,
		&m.stats.Replications, &m.stats.Invalidations, &m.stats.Broadcasts,
		&m.stats.Installs, &m.stats.Discards, &m.stats.LineLockAcquires,
		&m.stats.LineLockContended, &m.stats.TriggerFires, &m.stats.Crashes,
		&m.stats.LinesLost,
	} {
		atomic.StoreInt64(p, 0)
	}
}
