package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// opScript is a randomly generated sequence of machine operations, used to
// check coherency invariants under arbitrary interleavings.
type opScript struct {
	Seed int64
	N    uint8 // operation count
}

// Generate implements quick.Generator.
func (opScript) Generate(r *rand.Rand, _ int) interface{} {
	return opScript{Seed: r.Int63(), N: uint8(r.Intn(200) + 20)}
}

// runScript executes the script against a small machine, mirroring every
// write into a model map, and returns the machine plus the model.
func runScript(s opScript) (*Machine, map[LineID][]byte, []bool) {
	return runScriptCoherency(s, WriteInvalidate)
}

func runScriptCoherency(s opScript, coh Coherency) (*Machine, map[LineID][]byte, []bool) {
	const nodes, nlines = 4, 8
	r := rand.New(rand.NewSource(s.Seed))
	m := New(Config{Nodes: nodes, Lines: nlines, LineSize: 32, Coherency: coh})
	model := make(map[LineID][]byte) // expected contents of valid lines
	alive := make([]bool, nodes)
	for i := range alive {
		alive[i] = true
	}
	base := m.Alloc(nlines)
	for i := 0; i < int(s.N); i++ {
		nd := NodeID(r.Intn(nodes))
		l := base + LineID(r.Intn(nlines))
		switch r.Intn(10) {
		case 0, 1: // install
			if !alive[nd] {
				continue
			}
			data := make([]byte, 32)
			r.Read(data)
			if err := m.Install(nd, l, data); err == nil {
				model[l] = append([]byte(nil), data...)
			}
		case 2, 3, 4: // write
			off := r.Intn(28)
			data := make([]byte, r.Intn(4)+1)
			r.Read(data)
			if err := m.Write(nd, l, off, data); err == nil {
				if mb, ok := model[l]; ok {
					copy(mb[off:], data)
				}
			}
		case 5, 6, 7: // read (checked by caller)
			_, _ = m.Read(nd, l, 0, 32)
		case 8: // discard
			before := m.Holders(l)
			if err := m.Discard(nd, l); err == nil && len(before) == 1 && before[0] == nd {
				delete(model, l)
			}
		case 9: // crash / restart
			if alive[nd] && r.Intn(3) == 0 {
				rep := m.Crash(nd)
				alive[nd] = false
				for _, lost := range rep.LostLines {
					delete(model, lost)
				}
			} else if !alive[nd] {
				_ = m.Restart(nd)
				alive[nd] = true
			}
		}
	}
	return m, model, alive
}

// TestQuickCoherenceMatchesModel checks that under any operation sequence,
// every line that the machine says is resident holds exactly the bytes of
// the most recent surviving write, observed identically from every live node
// (single-writer coherence: all copies are interchangeable).
func TestQuickCoherenceMatchesModel(t *testing.T) {
	f := func(s opScript) bool {
		m, model, alive := runScript(s)
		for l, want := range model {
			if !m.Resident(l) {
				t.Logf("seed %d: line %d in model but not resident", s.Seed, l)
				return false
			}
			for nd := NodeID(0); int(nd) < m.Nodes(); nd++ {
				if !alive[nd] {
					continue
				}
				got, err := m.Read(nd, l, 0, 32)
				if err != nil {
					t.Logf("seed %d: read(%d,%d): %v", s.Seed, nd, l, err)
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						t.Logf("seed %d: line %d byte %d: got %d want %d (node %d)",
							s.Seed, l, i, got[i], want[i], nd)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDirectoryInvariants checks structural invariants after random
// operation sequences: a valid line has at least one live holder; an
// exclusive holder is the sole holder; crashed nodes hold nothing.
func TestQuickDirectoryInvariants(t *testing.T) {
	f := func(s opScript) bool {
		m, _, alive := runScript(s)
		for l := LineID(0); l < 8; l++ {
			holders := m.Holders(l)
			if m.Resident(l) && len(holders) == 0 {
				t.Logf("seed %d: resident line %d with no holders", s.Seed, l)
				return false
			}
			if ex := m.ExclusiveHolder(l); ex != NoNode {
				if len(holders) != 1 || holders[0] != ex {
					t.Logf("seed %d: line %d exclusive at %d but holders %v", s.Seed, l, ex, holders)
					return false
				}
			}
			for _, h := range holders {
				if !alive[h] {
					t.Logf("seed %d: dead node %d holds line %d", s.Seed, h, l)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickClocksMonotonic checks that simulated clocks never move backwards.
func TestQuickClocksMonotonic(t *testing.T) {
	f := func(s opScript) bool {
		const nodes, nlines = 4, 8
		r := rand.New(rand.NewSource(s.Seed))
		m := New(Config{Nodes: nodes, Lines: nlines, LineSize: 32})
		base := m.Alloc(nlines)
		prev := make([]int64, nodes)
		for i := 0; i < int(s.N); i++ {
			nd := NodeID(r.Intn(nodes))
			l := base + LineID(r.Intn(nlines))
			switch r.Intn(3) {
			case 0:
				_ = m.Install(nd, l, make([]byte, 32))
			case 1:
				_ = m.Write(nd, l, 0, []byte{byte(i)})
			case 2:
				_, _ = m.Read(nd, l, 0, 8)
			}
			for n := 0; n < nodes; n++ {
				c := m.Clock(NodeID(n))
				if c < prev[n] {
					t.Logf("seed %d: clock %d went backwards %d -> %d", s.Seed, n, prev[n], c)
					return false
				}
				prev[n] = c
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickBitset exercises the bitset helper.
func TestQuickBitset(t *testing.T) {
	f := func(raw uint16) bool {
		var b bitset
		want := map[NodeID]bool{}
		for i := 0; i < 16; i++ {
			if raw&(1<<i) != 0 {
				b.add(NodeID(i))
				want[NodeID(i)] = true
			}
		}
		if b.count() != len(want) {
			return false
		}
		for n := NodeID(0); n < 16; n++ {
			if b.has(n) != want[n] {
				return false
			}
		}
		ns := b.nodes()
		if len(ns) != len(want) {
			return false
		}
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				return false
			}
		}
		if len(ns) > 0 && b.lowest() != ns[0] {
			return false
		}
		if len(ns) == 1 && !b.sole(ns[0]) {
			return false
		}
		if len(ns) != 1 && len(ns) > 0 && b.sole(ns[0]) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickWriteBroadcastCoherence runs the model-based coherence check
// under the write-broadcast protocol: all copies stay interchangeable, and
// a line survives a crash whenever any other node holds a copy.
func TestQuickWriteBroadcastCoherence(t *testing.T) {
	f := func(s opScript) bool {
		m, model, alive := runScriptCoherency(s, WriteBroadcast)
		for l, want := range model {
			if !m.Resident(l) {
				t.Logf("seed %d: line %d in model but not resident", s.Seed, l)
				return false
			}
			for nd := NodeID(0); int(nd) < m.Nodes(); nd++ {
				if !alive[nd] {
					continue
				}
				got, err := m.Read(nd, l, 0, 32)
				if err != nil {
					t.Logf("seed %d: read(%d,%d): %v", s.Seed, nd, l, err)
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						t.Logf("seed %d: line %d byte %d: got %d want %d (node %d)",
							s.Seed, l, i, got[i], want[i], nd)
						return false
					}
				}
			}
		}
		// Broadcast never migrates on plain writes.
		if st := m.Stats(); st.Migrations != 0 {
			t.Logf("seed %d: %d migrations under write-broadcast", s.Seed, st.Migrations)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
