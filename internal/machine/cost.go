package machine

// CostModel gives the simulated duration, in nanoseconds, of the primitive
// operations of the machine and of the storage devices attached to it. The
// defaults are calibrated to mid-1990s shared-memory multiprocessor and disk
// hardware so that the shapes reported in the paper hold; in particular the
// line-lock figures of section 5.1 (mean acquisition < 10 us under low
// contention, < 40 us with 32 processors contending for one line) fall out
// of LineLockLocal/LineLockRemote plus the queueing behaviour of GetLine.
type CostModel struct {
	// ReadLocal is a load hitting the local cache.
	ReadLocal int64
	// WriteLocal is a store to a line already exclusive locally.
	WriteLocal int64
	// RemoteFetch is fetching a line from another node's cache (read or
	// write miss serviced by the interconnect).
	RemoteFetch int64
	// InvalidatePerSharer is the added cost, per remote sharer, of an
	// invalidation round.
	InvalidatePerSharer int64
	// BroadcastPerSharer is the added cost, per remote sharer, of a
	// write-broadcast update.
	BroadcastPerSharer int64
	// LineLockLocal is acquiring an uncontended line lock on a line
	// already exclusive in the local cache.
	LineLockLocal int64
	// LineLockRemote is acquiring an uncontended line lock on a line that
	// must first be fetched into the local cache.
	LineLockRemote int64
	// LineLockRelease is releasing a line lock.
	LineLockRelease int64
	// DiskRead and DiskWrite are one page of stable-database I/O.
	DiskRead, DiskWrite int64
	// LogForce is forcing the tail of a node's log to the stable log
	// device (rotational disk).
	LogForce int64
	// LogForceNVRAM is the same force when the log device is battery-backed
	// RAM (the section 7 discussion of making Stable LBM practical).
	LogForceNVRAM int64
	// MessageRoundTrip is one request/reply exchange between nodes through
	// the operating system, used by the shared-disk-style message-passing
	// lock manager baseline (the cost SM locking eliminates).
	MessageRoundTrip int64
}

// DefaultCostModel returns the calibrated defaults described above.
func DefaultCostModel() CostModel {
	return CostModel{
		ReadLocal:           100,        // 0.1 us
		WriteLocal:          150,        // 0.15 us
		RemoteFetch:         2_000,      // 2 us interconnect fetch
		InvalidatePerSharer: 300,        // 0.3 us per sharer invalidation
		BroadcastPerSharer:  400,        // 0.4 us per sharer update
		LineLockLocal:       800,        // 0.8 us: gsp on a locally held line
		LineLockRemote:      1_000,      // 1 us: gsp including the ring transfer
		LineLockRelease:     200,        // 0.2 us: rsp
		DiskRead:            10_000_000, // 10 ms
		DiskWrite:           10_000_000, // 10 ms
		LogForce:            8_000_000,  // 8 ms rotational force
		LogForceNVRAM:       25_000,     // 25 us NVRAM force
		MessageRoundTrip:    500_000,    // 0.5 ms OS-level IPC round trip
	}
}

func (c *CostModel) setDefaults() {
	d := DefaultCostModel()
	if c.ReadLocal == 0 {
		c.ReadLocal = d.ReadLocal
	}
	if c.WriteLocal == 0 {
		c.WriteLocal = d.WriteLocal
	}
	if c.RemoteFetch == 0 {
		c.RemoteFetch = d.RemoteFetch
	}
	if c.InvalidatePerSharer == 0 {
		c.InvalidatePerSharer = d.InvalidatePerSharer
	}
	if c.BroadcastPerSharer == 0 {
		c.BroadcastPerSharer = d.BroadcastPerSharer
	}
	if c.LineLockLocal == 0 {
		c.LineLockLocal = d.LineLockLocal
	}
	if c.LineLockRemote == 0 {
		c.LineLockRemote = d.LineLockRemote
	}
	if c.LineLockRelease == 0 {
		c.LineLockRelease = d.LineLockRelease
	}
	if c.DiskRead == 0 {
		c.DiskRead = d.DiskRead
	}
	if c.DiskWrite == 0 {
		c.DiskWrite = d.DiskWrite
	}
	if c.LogForce == 0 {
		c.LogForce = d.LogForce
	}
	if c.LogForceNVRAM == 0 {
		c.LogForceNVRAM = d.LogForceNVRAM
	}
	if c.MessageRoundTrip == 0 {
		c.MessageRoundTrip = d.MessageRoundTrip
	}
}
