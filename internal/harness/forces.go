package harness

import (
	"fmt"

	"smdb/internal/obs"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E6 measures log-force frequency (section 5.2): eager Stable
// LBM forces on every update; triggered Stable LBM forces only when an
// active line is about to migrate, downgrade, or be invalidated (the
// proposed coherency-protocol extension), so its force count tracks the
// *inter-node sharing rate* rather than the update rate; Volatile LBM
// forces only at commit.
type ForcesPoint struct {
	Protocol        recovery.Protocol
	SharingFraction float64
	Updates         int64
	// LBMForces are forces attributable to the LBM policy; PhysForces are
	// all physical forces including commits and WAL.
	LBMForces, PhysForces int64
	// ForcesPerKUpdate is PhysForces per 1000 updates.
	ForcesPerKUpdate float64
	// TriggerFires counts coherency-trigger callback invocations.
	TriggerFires int64
	// ForceP50NS/ForceP99NS are log-force latency quantiles from a per-run
	// observer's histogram (simulated ns; 0 when the run forced nothing).
	ForceP50NS, ForceP99NS int64
}

// ForcesResult is the sweep.
type ForcesResult struct {
	Points []ForcesPoint
}

// RunForces sweeps the sharing fraction for the three force disciplines.
func RunForces(sharing []float64, seed int64) (*ForcesResult, error) {
	if len(sharing) == 0 {
		sharing = []float64{0.0, 0.25, 0.5, 0.75, 1.0}
	}
	res := &ForcesResult{}
	for _, proto := range []recovery.Protocol{recovery.VolatileSelectiveRedo, recovery.StableTriggered, recovery.StableEager} {
		for _, sh := range sharing {
			db, err := seededDB(proto, 8, 4, defaultPages, 0)
			if err != nil {
				return nil, err
			}
			o := obs.New()
			db.AttachObserver(o)
			forces0 := totalLogForces(db)
			r := workload.NewRunner(db, workload.Spec{
				TxnsPerNode: 6, OpsPerTxn: 10,
				ReadFraction: 0.2, SharingFraction: sh, Seed: seed,
			})
			wres, err := r.Run()
			if err != nil {
				return nil, fmt.Errorf("forces %v sh=%.2f: %w", proto, sh, err)
			}
			st := db.Stats()
			p := ForcesPoint{
				Protocol:        proto,
				SharingFraction: sh,
				Updates:         int64(wres.Writes),
				LBMForces:       st.LBMForces,
				PhysForces:      totalLogForces(db) - forces0,
				TriggerFires:    db.M.Stats().TriggerFires,
			}
			if p.Updates > 0 {
				p.ForcesPerKUpdate = 1000 * float64(p.PhysForces) / float64(p.Updates)
			}
			if h := o.LogForceHist().Snapshot(); h.Count > 0 {
				p.ForceP50NS = h.Quantile(0.50)
				p.ForceP99NS = h.Quantile(0.99)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *ForcesResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "sharing", "updates", "LBM-forces", "phys-forces", "forces/1k-updates", "force-p50", "force-p99", "trigger-fires",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Protocol.String(),
			pct(p.SharingFraction),
			fmt.Sprintf("%d", p.Updates),
			fmt.Sprintf("%d", p.LBMForces),
			fmt.Sprintf("%d", p.PhysForces),
			fmt.Sprintf("%.1f", p.ForcesPerKUpdate),
			us(p.ForceP50NS),
			us(p.ForceP99NS),
			fmt.Sprintf("%d", p.TriggerFires),
		)
	}
	return t.String()
}
