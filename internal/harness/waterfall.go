package harness

import (
	"errors"
	"fmt"
	"time"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs/waterfall"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
)

// Experiment E22 is the latency-waterfall attribution census: the depcensus
// convoy schedule (E17's line-hopping writes, every write stealing a line
// from the previous uncommitted writer) runs under each real protocol with
// the waterfall recorder attached, extended with a record-lock conflict, an
// in-flight round, the node-3 crash, a frozen-window probe, and recovery —
// so every cause the recorder knows (compute, lock-wait, line-wait, fetch,
// log-append, log-force, frozen, undo) has a chance to appear. The gate is
// attribution coverage: at least waterfallMinCoverage of every completed
// transaction's measured sim latency must be explained by some cause. A
// second sweep times the committed rounds bare vs recorded (E19-style
// wall-clock ns/update) to report the enabled recorder's overhead.
type WaterfallPoint struct {
	Protocol recovery.Protocol
	// Completed counts closed waterfalls; Coverage is attributed/total sim
	// latency across them (the gated number).
	Completed int64
	Coverage  float64
	// ByCause is the attributed sim-ns per cause, in waterfall.Causes order.
	ByCause []int64
	// Slow counts tail-sampled waterfalls; Convoyed the slow samples carrying
	// at least one line-wait segment with a holder txn id (the convoy
	// explanation the tentpole promises).
	Slow, Convoyed int
	// Phases counts recovery phases the live progress observer closed.
	Phases int
}

// WaterfallOverheadPoint is one arm of the off/on overhead sweep.
type WaterfallOverheadPoint struct {
	Recorded bool
	Updates  int
	WallNS   int64
}

// NSPerUpdate is the timed cost of one write under this arm.
func (p WaterfallOverheadPoint) NSPerUpdate() int64 {
	if p.Updates == 0 {
		return 0
	}
	return p.WallNS / int64(p.Updates)
}

// WaterfallResult is the per-protocol census plus the overhead sweep.
type WaterfallResult struct {
	Points   []WaterfallPoint
	Overhead []WaterfallOverheadPoint
}

// waterfallMinCoverage is the attribution-coverage gate: below this, the
// decomposition is lying by omission and RunWaterfall fails.
const waterfallMinCoverage = 0.9

// waterfallOverheadRounds is how many committed line-hopping rounds the
// overhead arms time (each is depCensusLines lines x 4 nodes writes).
const waterfallOverheadRounds = 6

// RunWaterfall runs E22.
func RunWaterfall(seed int64) (*WaterfallResult, error) {
	_ = seed // the schedule is deterministic; kept for the bench's uniform signature
	res := &WaterfallResult{}
	for _, proto := range recovery.Protocols() {
		p, err := waterfallArm(proto)
		if err != nil {
			return nil, fmt.Errorf("waterfall %v: %w", proto, err)
		}
		if p.Coverage < waterfallMinCoverage {
			return nil, fmt.Errorf("waterfall %v: attribution coverage %.3f < %.2f (%d completed)",
				proto, p.Coverage, waterfallMinCoverage, p.Completed)
		}
		res.Points = append(res.Points, p)
	}
	for _, recorded := range []bool{false, true} {
		p, err := waterfallOverheadArm(recorded)
		if err != nil {
			return nil, fmt.Errorf("waterfall overhead recorded=%v: %w", recorded, err)
		}
		res.Overhead = append(res.Overhead, p)
	}
	return res, nil
}

// waterfallArm runs one protocol's census cell.
func waterfallArm(proto recovery.Protocol) (WaterfallPoint, error) {
	p := WaterfallPoint{Protocol: proto}
	db, err := seededDB(proto, 4, 4, defaultPages, 0)
	if err != nil {
		return p, err
	}
	wf := waterfall.New(waterfall.Config{Nodes: db.M.Nodes()})
	db.AttachWaterfall(wf)
	mgr := txn.NewManager(db)

	// Committed convoy rounds: line-waits with holders, appends, forces.
	for round := 0; round < 3; round++ {
		if _, err := depCensusRound(db, mgr, round, true); err != nil {
			return p, err
		}
	}

	// Record-lock conflict: tb queues behind ta's exclusive lock, so its
	// blocked acquire attempts become CauseLockWait segments.
	ta, err := mgr.Begin(0)
	if err != nil {
		return p, err
	}
	tb, err := mgr.Begin(1)
	if err != nil {
		return p, err
	}
	rid := heap.RID{Page: storage.PageID(1), Slot: 0}
	if err := ta.Write(rid, []byte{9, 0}); err != nil {
		return p, err
	}
	for i := 0; i < 3; i++ {
		if err := tb.Write(rid, []byte{9, 1}); !errors.Is(err, txn.ErrBlocked) {
			return p, fmt.Errorf("conflicting write: got %v, want ErrBlocked", err)
		}
	}
	if err := ta.Commit(); err != nil {
		return p, err
	}
	if err := txn.Retry(func() error { return tb.Write(rid, []byte{9, 1}) }); err != nil {
		return p, err
	}
	if err := tb.Commit(); err != nil {
		return p, err
	}

	// Rollback: an aborted writer's undo walk lands under CauseUndo.
	tu, err := mgr.Begin(2)
	if err != nil {
		return p, err
	}
	if err := tu.Write(heap.RID{Page: storage.PageID(7), Slot: 2}, []byte{7, 2}); err != nil {
		return p, err
	}
	if err := tu.Abort(); err != nil {
		return p, err
	}

	// The hazard round: in-flight writes whose latest copies sit on node 3.
	txs, err := depCensusRound(db, mgr, 3, false)
	if err != nil {
		return p, err
	}
	victim := machine.NodeID(3)
	db.Crash(victim)
	// Freeze-window probe: every survivor's next operation stalls against
	// recovery, opening the CauseFrozen span that recovery's clock charges
	// (redo replays onto the survivors) will fill.
	for n := 0; n < 3; n++ {
		if err := txs[n].Write(heap.RID{Page: 1, Slot: uint16(n)}, []byte{8, byte(n)}); !errors.Is(err, txn.ErrBlocked) {
			return p, fmt.Errorf("frozen write node %d: got %v, want ErrBlocked", n, err)
		}
	}
	if _, err := db.Recover([]machine.NodeID{victim}); err != nil {
		return p, err
	}
	if proto.IFA() {
		// Survivors resume: the freeze lift closes the CauseFrozen span, then
		// the branches commit. (Under the baseline everything crashed; the
		// survivors' transactions were settled by recovery.)
		for n := 0; n < 3; n++ {
			if err := txn.Retry(func() error {
				return txs[n].Write(heap.RID{Page: 1, Slot: uint16(n)}, []byte{8, byte(n)})
			}); err != nil {
				return p, err
			}
			if err := txs[n].Commit(); err != nil {
				return p, err
			}
		}
	}

	p.Completed = wf.Completed()
	p.Coverage, _, _ = wf.Coverage()
	totals := wf.Totals()
	p.ByCause = totals[:]
	slow := wf.Slow(0)
	p.Slow = len(slow)
	for _, w := range slow {
		for _, s := range w.Segments {
			if s.Cause == waterfall.CauseLineWait && s.Holder != 0 {
				p.Convoyed++
				break
			}
		}
	}
	p.Phases = len(wf.Progress().Snapshot())
	if p.Completed == 0 {
		return p, fmt.Errorf("no waterfalls completed")
	}
	if p.Slow == 0 {
		return p, fmt.Errorf("tail sampler retained nothing")
	}
	if p.Phases == 0 {
		return p, fmt.Errorf("recovery progress recorded no phases")
	}
	return p, nil
}

// waterfallOverheadArm times the committed convoy rounds with and without the
// recorder attached (VolatileSelectiveRedo, the busiest real protocol: undo
// tags plus volatile LBM).
func waterfallOverheadArm(recorded bool) (WaterfallOverheadPoint, error) {
	p := WaterfallOverheadPoint{Recorded: recorded}
	db, err := seededDB(recovery.VolatileSelectiveRedo, 4, 4, defaultPages, 0)
	if err != nil {
		return p, err
	}
	if recorded {
		db.AttachWaterfall(waterfall.New(waterfall.Config{Nodes: db.M.Nodes()}))
	}
	mgr := txn.NewManager(db)
	start := time.Now()
	for round := 0; round < waterfallOverheadRounds; round++ {
		if _, err := depCensusRound(db, mgr, round, true); err != nil {
			return p, err
		}
	}
	p.WallNS = time.Since(start).Nanoseconds()
	p.Updates = waterfallOverheadRounds * depCensusLines * 4
	return p, nil
}

// Table renders the census and the overhead sweep.
func (r *WaterfallResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "txns", "coverage", "compute", "lock-wait", "line-wait",
		"fetch", "log-force", "frozen", "undo", "slow", "convoyed", "phases",
	}}
	for _, p := range r.Points {
		var attr int64
		for _, v := range p.ByCause {
			attr += v
		}
		share := func(c waterfall.Cause) string {
			if attr == 0 {
				return "-"
			}
			return pct(float64(p.ByCause[c]) / float64(attr))
		}
		t.addRow(
			p.Protocol.String(),
			fmt.Sprintf("%d", p.Completed),
			pct(p.Coverage),
			share(waterfall.CauseCompute),
			share(waterfall.CauseLockWait),
			share(waterfall.CauseLineWait),
			share(waterfall.CauseFetch),
			share(waterfall.CauseLogForce),
			share(waterfall.CauseFrozen),
			share(waterfall.CauseUndo),
			fmt.Sprintf("%d", p.Slow),
			fmt.Sprintf("%d", p.Convoyed),
			fmt.Sprintf("%d", p.Phases),
		)
	}
	out := t.String()

	ot := &tableWriter{header: []string{"waterfall", "updates", "ns/update", "overhead"}}
	var bare int64
	for _, p := range r.Overhead {
		if !p.Recorded {
			bare = p.NSPerUpdate()
		}
	}
	for _, p := range r.Overhead {
		overhead := "-"
		if p.Recorded && bare > 0 {
			overhead = pct(float64(p.NSPerUpdate()-bare) / float64(bare))
		}
		ot.addRow(mark(p.Recorded), fmt.Sprintf("%d", p.Updates),
			fmt.Sprintf("%d", p.NSPerUpdate()), overhead)
	}
	return out + "\n" + ot.String()
}
