package harness

import (
	"strings"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// TestFigure1SystemModel checks the executable content of the paper's
// figure 1: every node has its own cache and log, all nodes share coherent
// memory, and all nodes reach all disks (any node can fetch any page).
func TestFigure1SystemModel(t *testing.T) {
	db, err := seededDB(recovery.VolatileSelectiveRedo, 4, 4, defaultPages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Logs) != 4 {
		t.Errorf("logs per node = %d, want 4", len(db.Logs))
	}
	for n := machine.NodeID(0); n < 4; n++ {
		if db.Logs[n].Node() != n {
			t.Errorf("log %d owned by node %d", n, db.Logs[n].Node())
		}
		// Any node can fetch any page from the shared disks.
		if err := db.BM.Fetch(n, 3); err != nil {
			t.Errorf("node %d cannot reach the shared disk: %v", n, err)
		}
	}
	// Coherent shared memory: a write by one node is read by another.
	if err := db.Store.WriteSlot(0, ridAt(0, db.Store.Layout.SlotsPerPage()), heapSlot(77)); err != nil {
		t.Fatal(err)
	}
	sd, err := db.Store.ReadSlot(3, ridAt(0, db.Store.Layout.SlotsPerPage()))
	if err != nil || sd.Data[0] != 77 {
		t.Errorf("coherency: got %+v, %v", sd, err)
	}
}

// TestFigure2MigrationScenario is the named entry point for the paper's
// figure 2 (the detailed protocol checks live in the recovery package's
// TestFigure2* tests): uncommitted data migrates and both crash cases
// preserve IFA.
func TestFigure2MigrationScenario(t *testing.T) {
	for _, proto := range IFAProtocols() {
		db, err := seededDB(proto, 2, 4, defaultPages, 0)
		if err != nil {
			t.Fatal(err)
		}
		r := workload.NewRunner(db, workload.Spec{
			TxnsPerNode: 1, OpsPerTxn: 6, ReadFraction: 0, SharingFraction: 1.0, Seed: 2,
		})
		if _, err := r.RunUntilMidFlight(4); err != nil {
			t.Fatal(err)
		}
		db.Crash(0)
		if _, err := db.Recover([]machine.NodeID{0}); err != nil {
			t.Fatal(err)
		}
		if v := db.CheckIFA(1); len(v) != 0 {
			t.Errorf("%v: %v", proto, v)
		}
	}
}

func heapSlot(b byte) heap.SlotData {
	return heap.SlotData{Flags: heap.FlagOccupied, Data: []byte{b}, Tag: machine.NoNode}
}

func TestTable1Shapes(t *testing.T) {
	res, err := RunTable1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0]
	if base.Protocol != recovery.BaselineFA {
		t.Fatal("baseline not first")
	}
	// Baseline pays none of the IFA overheads.
	if base.NTAForces != 0 || base.ReadLockLogs != 0 || base.TagWrites != 0 || base.LBMForces != 0 {
		t.Errorf("baseline shows IFA overheads: %+v", base)
	}
	for _, row := range res.Rows[1:] {
		if row.NTAForces == 0 {
			t.Errorf("%v: no early-committed structural changes", row.Protocol)
		}
		if row.ReadLockLogs == 0 {
			t.Errorf("%v: read locks not logged", row.Protocol)
		}
		undoTag := row.Protocol == recovery.VolatileSelectiveRedo
		if (row.TagWrites > 0) != undoTag {
			t.Errorf("%v: tag writes = %d, tagging = %v", row.Protocol, row.TagWrites, undoTag)
		}
		if row.Protocol.StableLBM() && row.LBMForces == 0 {
			t.Errorf("%v: no LBM forces", row.Protocol)
		}
		if !row.Protocol.StableLBM() && row.LBMForces != 0 {
			t.Errorf("%v: unexpected LBM forces %d", row.Protocol, row.LBMForces)
		}
	}
	if !strings.Contains(res.Table(), "protocol") {
		t.Error("table missing header")
	}
}

func TestLineLockBands(t *testing.T) {
	res, err := RunLineLock(nil, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	low := res.Points[0]
	if low.Contenders != 1 || low.MeanNS >= 10_000 {
		t.Errorf("low contention mean = %v, want < 10us", us(low.MeanNS))
	}
	high := res.Points[len(res.Points)-1]
	if high.Contenders != 32 || high.MeanNS >= 40_000 {
		t.Errorf("32-way contention mean = %v, want < 40us", us(high.MeanNS))
	}
	// Monotone growth with contention.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].MeanNS < res.Points[i-1].MeanNS {
			t.Errorf("latency not monotone: %v then %v", res.Points[i-1], res.Points[i])
		}
	}
}

func TestAbortsShapes(t *testing.T) {
	res, err := RunAborts(4, []int{4}, []float64{0.8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		switch {
		case p.Protocol == recovery.BaselineFA:
			if p.Aborted != p.ActiveAtCrash {
				t.Errorf("baseline aborted %d of %d", p.Aborted, p.ActiveAtCrash)
			}
			if p.Unnecessary == 0 {
				t.Errorf("baseline shows no unnecessary aborts with sharing 0.8")
			}
		default:
			if p.Unnecessary != 0 {
				t.Errorf("%v: %d unnecessary aborts", p.Protocol, p.Unnecessary)
			}
			if p.Violations != 0 {
				t.Errorf("%v: %d IFA violations", p.Protocol, p.Violations)
			}
		}
	}
}

func TestRuntimeShapes(t *testing.T) {
	res, err := RunRuntime(4, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	get := func(proto recovery.Protocol, nvram bool) RuntimePoint {
		for _, p := range res.Points {
			if p.Protocol == proto && p.NVRAM == nvram {
				return p
			}
		}
		t.Fatalf("missing %v nvram=%v", proto, nvram)
		return RuntimePoint{}
	}
	base := get(recovery.BaselineFA, false)
	volSel := get(recovery.VolatileSelectiveRedo, false)
	eager := get(recovery.StableEager, false)
	eagerNVRAM := get(recovery.StableEager, true)
	// Volatile LBM is nearly free: within 2x of baseline.
	if volSel.SimTimePerOp > 2*base.SimTimePerOp {
		t.Errorf("volatile LBM slowdown: %v vs baseline %v", us(volSel.SimTimePerOp), us(base.SimTimePerOp))
	}
	// Stable LBM on disk is dramatically slower (the paper's point).
	if eager.SimTimePerOp < 5*volSel.SimTimePerOp {
		t.Errorf("stable-eager %v not >> volatile %v", us(eager.SimTimePerOp), us(volSel.SimTimePerOp))
	}
	// NVRAM rescues stable LBM.
	if eagerNVRAM.SimTimePerOp > eager.SimTimePerOp/5 {
		t.Errorf("NVRAM did not help: %v vs disk %v", us(eagerNVRAM.SimTimePerOp), us(eager.SimTimePerOp))
	}
}

func TestRestartShapes(t *testing.T) {
	res, err := RunRestart([]int{64, 256}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[recovery.Protocol][]RestartPoint{}
	for _, p := range res.Points {
		byProto[p.Protocol] = append(byProto[p.Protocol], p)
	}
	for proto, pts := range byProto {
		if pts[1].RedoApplied+pts[1].RedoSkipped <= pts[0].RedoApplied+pts[0].RedoSkipped {
			t.Errorf("%v: redo work did not grow with backlog", proto)
		}
	}
	// Redo All applies more redo than Selective Redo at equal backlog.
	ra := byProto[recovery.VolatileRedoAll]
	sr := byProto[recovery.VolatileSelectiveRedo]
	for i := range ra {
		if ra[i].RedoApplied <= sr[i].RedoApplied {
			t.Errorf("backlog %d: redo-all applied %d, selective %d; want redo-all greater",
				ra[i].Backlog, ra[i].RedoApplied, sr[i].RedoApplied)
		}
	}
}

func TestForcesShapes(t *testing.T) {
	res, err := RunForces([]float64{0.0, 1.0}, 6)
	if err != nil {
		t.Fatal(err)
	}
	get := func(proto recovery.Protocol, sh float64) ForcesPoint {
		for _, p := range res.Points {
			if p.Protocol == proto && p.SharingFraction == sh {
				return p
			}
		}
		t.Fatalf("missing %v %v", proto, sh)
		return ForcesPoint{}
	}
	// Eager forces roughly one per update, independent of sharing.
	eagerLo := get(recovery.StableEager, 0.0)
	if eagerLo.LBMForces < eagerLo.Updates/2 {
		t.Errorf("eager forces %d for %d updates", eagerLo.LBMForces, eagerLo.Updates)
	}
	// Triggered forces grow with sharing and stay far below eager.
	trigLo := get(recovery.StableTriggered, 0.0)
	trigHi := get(recovery.StableTriggered, 1.0)
	if trigHi.LBMForces <= trigLo.LBMForces {
		t.Errorf("triggered forces did not grow with sharing: %d -> %d", trigLo.LBMForces, trigHi.LBMForces)
	}
	eagerHi := get(recovery.StableEager, 1.0)
	if trigHi.LBMForces >= eagerHi.LBMForces {
		t.Errorf("triggered (%d) not below eager (%d)", trigHi.LBMForces, eagerHi.LBMForces)
	}
	// Volatile LBM: no LBM forces at all.
	vol := get(recovery.VolatileSelectiveRedo, 1.0)
	if vol.LBMForces != 0 {
		t.Errorf("volatile LBM forced %d times", vol.LBMForces)
	}
}

func TestBroadcastShapes(t *testing.T) {
	res, err := RunBroadcast(7)
	if err != nil {
		t.Fatal(err)
	}
	var wi, wb BroadcastPoint
	for _, p := range res.Points {
		if p.Coherency == machine.WriteBroadcast {
			wb = p
		} else {
			wi = p
		}
	}
	// Write-broadcast eliminates data migration; the handful left comes
	// from line-lock (ME-state) acquisitions, which are exclusive by
	// definition under either coherency protocol.
	if wi.Migrations == 0 {
		t.Fatal("write-invalidate migrated nothing under heavy sharing")
	}
	if wb.Migrations*5 > wi.Migrations {
		t.Errorf("write-broadcast migrations %d not far below write-invalidate %d", wb.Migrations, wi.Migrations)
	}
	// Under write-broadcast, surviving nodes' updates are replicated, so
	// restart needs no redo (the section 7 claim); undo is still needed.
	if wb.RedoApplied != 0 {
		t.Errorf("write-broadcast needed %d redos", wb.RedoApplied)
	}
	for _, p := range res.Points {
		if p.Unnecessary != 0 || p.Violations != 0 {
			t.Errorf("%v: unnecessary=%d violations=%d", p.Coherency, p.Unnecessary, p.Violations)
		}
	}
}

func TestLocksShapes(t *testing.T) {
	res, err := RunLocks([]int{8}, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sm, sd LocksPoint
	for _, p := range res.Points {
		switch p.Manager {
		case "sm-locking (ifa: read locks logged)":
			sm = p
		case "sd message-passing (replicated)":
			sd = p
		}
	}
	// The elimination of IPC: SM locking is at least an order of
	// magnitude cheaper than message passing.
	if sm.MeanAcquireNS*10 > sd.MeanAcquireNS {
		t.Errorf("sm acquire %v not << sd %v", us(sm.MeanAcquireNS), us(sd.MeanAcquireNS))
	}
	if sm.Messages != 0 {
		t.Errorf("sm locking exchanged %d messages", sm.Messages)
	}
	if sd.Messages == 0 {
		t.Error("sd locking exchanged no messages")
	}
	if sm.LockLogRecords == 0 {
		t.Error("IFA SM locking logged nothing")
	}
}

func TestBTreeRecoveryShapes(t *testing.T) {
	for _, proto := range IFAProtocols() {
		res, err := RunBTreeRecovery(proto, 60, 9)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.TreeViolations != 0 || res.IFAViolations != 0 {
			t.Errorf("%v: violations: tree=%d ifa=%d", proto, res.TreeViolations, res.IFAViolations)
		}
		if res.SplitsForced == 0 {
			t.Errorf("%v: no early-committed splits", proto)
		}
		// Committed keys plus the three surviving in-flight inserts.
		if res.SurvivingKeys != res.CommittedKeys+3 {
			t.Errorf("%v: surviving keys = %d, want %d", proto, res.SurvivingKeys, res.CommittedKeys+3)
		}
	}
}

func TestLockRecoveryShapes(t *testing.T) {
	for _, chained := range []bool{false, true} {
		res, err := RunLockRecovery(recovery.VolatileSelectiveRedo, 8, 10, chained, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.LCBsLost == 0 {
			t.Errorf("chained=%v: crash destroyed no LCBs (scenario failed to concentrate them)", chained)
		}
		if res.Reinstalled < res.LCBsLost {
			t.Errorf("chained=%v: reinstalled %d < lost %d", chained, res.Reinstalled, res.LCBsLost)
		}
		if res.Replayed == 0 {
			t.Errorf("chained=%v: no surviving locks replayed", chained)
		}
		if res.Violations != 0 {
			t.Errorf("chained=%v: %d IFA violations", chained, res.Violations)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	res, err := RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		switch p.Protocol {
		case recovery.VolatileSelectiveRedo:
			if p.Violations != 0 {
				t.Errorf("real protocol case %d: %d violations", p.CrashCase, p.Violations)
			}
		case recovery.AblatedNoLBM:
			if p.Violations == 0 {
				t.Errorf("no-LBM case %d: hazard not observed", p.CrashCase)
			}
		}
	}
}

func TestParallelShapes(t *testing.T) {
	res, err := RunParallel(recovery.VolatileSelectiveRedo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedBranches != res.Participants {
		t.Errorf("aborted %d of %d branches", res.AbortedBranches, res.Participants)
	}
	if !res.IndependentSurvived {
		t.Error("independent transaction was aborted")
	}
	if res.Violations != 0 {
		t.Errorf("%d IFA violations", res.Violations)
	}
}

func TestScalingShapes(t *testing.T) {
	res, err := RunScaling([]int{4, 16}, 12)
	if err != nil {
		t.Fatal(err)
	}
	get := func(proto recovery.Protocol, nodes int) ScalingPoint {
		for _, p := range res.Points {
			if p.Protocol == proto && p.Nodes == nodes {
				return p
			}
		}
		t.Fatalf("missing %v %d", proto, nodes)
		return ScalingPoint{}
	}
	// Baseline loses everything at every size; IFA loses one node's worth.
	for _, n := range []int{4, 16} {
		base := get(recovery.BaselineFA, n)
		ifa := get(recovery.VolatileSelectiveRedo, n)
		if base.Aborted != base.ActiveAtCrash {
			t.Errorf("baseline@%d aborted %d of %d", n, base.Aborted, base.ActiveAtCrash)
		}
		if ifa.Aborted != 1 {
			t.Errorf("ifa@%d aborted %d, want 1", n, ifa.Aborted)
		}
	}
	// The yearly-loss gap widens superlinearly with machine size.
	gap4 := get(recovery.BaselineFA, 4).LostWritesPerYear - get(recovery.VolatileSelectiveRedo, 4).LostWritesPerYear
	gap16 := get(recovery.BaselineFA, 16).LostWritesPerYear - get(recovery.VolatileSelectiveRedo, 16).LostWritesPerYear
	if gap16 < 4*gap4 {
		t.Errorf("availability gap did not scale: %0.f at 4 nodes, %0.f at 16", gap4, gap16)
	}
}

func TestHotspotShapes(t *testing.T) {
	res, err := RunHotspot([]float64{0.0, 0.9}, 13)
	if err != nil {
		t.Fatal(err)
	}
	get := func(proto recovery.Protocol, hp float64) HotspotPoint {
		for _, p := range res.Points {
			if p.Protocol == proto && p.HotProb == hp {
				return p
			}
		}
		t.Fatalf("missing %v %v", proto, hp)
		return HotspotPoint{}
	}
	// Under strict 2PL, skew serializes the hot records, so migration
	// pressure per update *drops* as the hot set concentrates.
	trigCold := get(recovery.StableTriggered, 0.0)
	trigHot := get(recovery.StableTriggered, 0.9)
	if trigHot.MigrationsPerUpdate >= trigCold.MigrationsPerUpdate {
		t.Errorf("skew did not reduce migrations/update: %.2f -> %.2f",
			trigCold.MigrationsPerUpdate, trigHot.MigrationsPerUpdate)
	}
	// The contention reappears in the lock manager.
	volCold := get(recovery.VolatileSelectiveRedo, 0.0)
	volHot := get(recovery.VolatileSelectiveRedo, 0.9)
	if volHot.Deadlocks+trigHot.Deadlocks <= volCold.Deadlocks+trigCold.Deadlocks {
		t.Errorf("skew did not raise lock contention: deadlocks %d -> %d",
			volCold.Deadlocks+trigCold.Deadlocks, volHot.Deadlocks+trigHot.Deadlocks)
	}
	// Volatile LBM forces stay below triggered at every skew level.
	if volHot.ForcesPerKUpdate >= trigHot.ForcesPerKUpdate {
		t.Errorf("volatile (%.1f) not below triggered (%.1f) under skew",
			volHot.ForcesPerKUpdate, trigHot.ForcesPerKUpdate)
	}
}

func TestOSStructShapes(t *testing.T) {
	res, err := RunOSStruct()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("%d integrity violations: %+v", res.Violations, res)
	}
	if res.SemsRebuilt == 0 && res.UnitsReleased == 0 {
		t.Error("crash touched no semaphore state (scenario too weak)")
	}
	if res.MapLinesRebuilt == 0 && res.BlocksReclaimed == 0 {
		t.Error("crash touched no disk-map state (scenario too weak)")
	}
	// The victim's blocks vanish either by explicit reclamation (surviving
	// line) or implicitly via a rebuild that excludes them; the Violations
	// check above already proved they are gone.
	if res.MapLinesRebuilt == 0 && res.BlocksReclaimed < res.VictimBlocks {
		t.Errorf("reclaimed %d of the victim's %d blocks with no rebuild", res.BlocksReclaimed, res.VictimBlocks)
	}
}

func TestDepCensusShapes(t *testing.T) {
	res, err := RunDepCensus(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	byProto := map[recovery.Protocol]DepCensusPoint{}
	for _, p := range res.Points {
		byProto[p.Protocol] = p
		// The schedule forms cross-node dependencies under every discipline
		// — LBM changes their *coverage*, not their existence.
		if p.Census.Edges == 0 || p.Census.TxnsWithDeps == 0 {
			t.Errorf("%v: no dependencies formed: %+v", p.Protocol, p.Census)
		}
		// The crash yields a verdict for the victim and each survivor.
		if p.Verdicts == 0 || p.Aborted == 0 {
			t.Errorf("%v: verdicts=%d aborted=%d", p.Protocol, p.Verdicts, p.Aborted)
		}
	}
	for _, proto := range []recovery.Protocol{recovery.StableEager, recovery.VolatileSelectiveRedo} {
		p := byProto[proto]
		if p.Census.UnloggedEdges != 0 || p.Census.TxnsWithUnlogged != 0 {
			t.Errorf("%v exposed unlogged edges: %+v", proto, p.Census)
		}
		if p.Doomed != 0 {
			t.Errorf("%v doomed a survivor: %+v", proto, p)
		}
	}
	abl := byProto[recovery.AblatedNoLBM]
	if abl.Census.UnloggedEdges == 0 || abl.Census.TxnsWithUnlogged == 0 {
		t.Errorf("ablated control exposed no unlogged edges: %+v", abl.Census)
	}
	if abl.Doomed == 0 {
		t.Error("ablated control doomed no survivor — the census cannot show the hazard")
	}
	table := res.Table()
	for _, want := range []string{"unlogged", "doomed", "ablated/no-lbm"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
