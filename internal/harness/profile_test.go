package harness

import (
	"strings"
	"testing"
)

// TestRecoveryProfileShapes is the E20 acceptance gate: every point's
// attribution buckets must cover at least 90% of the measured wall time, and
// the report must name the contended stripes and the per-worker breakdown.
func TestRecoveryProfileShapes(t *testing.T) {
	res, err := RunRecoveryProfile(1, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Wall <= 0 {
			t.Errorf("workers=%d wall = %v", p.Workers, p.Wall)
		}
		if p.Coverage < 0.9 {
			t.Errorf("workers=%d coverage = %.2f (busy=%d lockWait=%d condWait=%d idle=%d merge=%d wall=%d), want >= 0.9",
				p.Workers, p.Coverage, p.BusyNS, p.LockWaitNS, p.CondWaitNS, p.IdleNS, p.MergeNS, p.Wall.Nanoseconds())
		}
		if len(p.TopStripes) == 0 {
			t.Errorf("workers=%d has no touched stripes", p.Workers)
		}
		// The sequential pipeline never fans out, so only parallel points
		// must record per-phase worker attribution.
		if p.Workers > 1 && len(p.Phases.Phases) == 0 {
			t.Errorf("workers=%d recorded no fan-outs", p.Workers)
		}
	}
	// The parallel point must attribute real fan-out: redo-scan runs with
	// more than one worker cell.
	par := res.Points[1]
	found := false
	for _, ph := range par.Phases.Phases {
		if len(ph.Workers) > 1 {
			found = true
		}
	}
	if !found {
		t.Error("parallel point has no multi-worker phase")
	}

	rep := res.Report()
	for _, want := range []string{"contended stripes", "per-phase fan-out profile", "per-worker totals", "coverage"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
