package harness

import (
	"fmt"

	"smdb/internal/btree"
	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
	"smdb/internal/workload"
)

// Experiment E9 exercises section 4.2.1: B-tree inserts and deletes behave
// like record updates under the recovery protocols (undo tags, logical
// deletes whose undo is an unmark), while page splits are early-committed
// structural changes that survive both the enclosing transaction's abort
// and its node's crash. The experiment loads an index, crashes a node with
// in-flight index transactions, recovers, and validates the tree.
type BTreeRecoveryResult struct {
	Protocol recovery.Protocol
	// Committed keys loaded; InFlight index ops pending at the crash.
	CommittedKeys, InFlight int
	// SplitsForced is the number of early-committed structural changes.
	SplitsForced int64
	// RecoverySimTime is the restart duration.
	RecoverySimTime int64
	// SurvivingKeys is the live-key count after recovery (must equal
	// CommittedKeys plus the surviving nodes' uncommitted inserts).
	SurvivingKeys int
	// TreeViolations and IFAViolations must both be zero.
	TreeViolations, IFAViolations int
}

// RunBTreeRecovery runs the scenario under the given protocol.
func RunBTreeRecovery(proto recovery.Protocol, keys int, seed int64) (*BTreeRecoveryResult, error) {
	const nodes = 4
	db, err := newDB(proto, nodes, 4, 128, 0)
	if err != nil {
		return nil, err
	}
	tree, err := btree.New(db, 0, 128)
	if err != nil {
		return nil, err
	}
	mgr := txn.NewManager(db)
	// Load committed keys round-robin across nodes.
	for k := 1; k <= keys; k++ {
		tx, err := mgr.Begin(machine.NodeID(k % nodes))
		if err != nil {
			return nil, err
		}
		if err := tree.Insert(tx, uint64(k*29%(8*keys)+1), uint64(k)); err != nil {
			return nil, fmt.Errorf("load key %d: %w", k, err)
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	if err := db.Checkpoint(0); err != nil {
		return nil, err
	}
	committed, err := tree.LiveKeys(0)
	if err != nil {
		return nil, err
	}

	// In-flight index transactions on every node, inserting keys spread
	// across distinct leaves (clustering several uncommitted inserts in
	// one leaf would block its split, by design), then crash one node.
	spread := pickAbsentKeys(committed, nodes, uint64(8*keys))
	inFlight := 0
	var txns []*txn.Txn
	for n := 0; n < nodes; n++ {
		tx, err := mgr.Begin(machine.NodeID(n))
		if err != nil {
			return nil, err
		}
		key := spread[n]
		if err := tree.Insert(tx, key, key); err != nil {
			return nil, fmt.Errorf("in-flight insert %d: %w", key, err)
		}
		inFlight++
		txns = append(txns, tx)
	}
	victim := machine.NodeID(nodes - 1)
	db.Crash(victim)
	rep, err := db.Recover([]machine.NodeID{victim})
	if err != nil {
		return nil, err
	}

	live, err := tree.LiveKeys(0)
	if err != nil {
		return nil, err
	}
	res := &BTreeRecoveryResult{
		Protocol:        proto,
		CommittedKeys:   len(committed),
		InFlight:        inFlight,
		SplitsForced:    db.Stats().NTAForces,
		RecoverySimTime: rep.SimTime,
		SurvivingKeys:   len(live),
		TreeViolations:  len(tree.Validate(0)),
		IFAViolations:   len(db.CheckIFA(0)),
	}
	// Surviving transactions can finish.
	for _, tx := range txns {
		if tx.Node() != victim {
			if err := tx.Commit(); err != nil {
				return nil, fmt.Errorf("post-recovery commit: %w", err)
			}
		}
	}
	return res, nil
}

// Table renders the result.
func (r *BTreeRecoveryResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "committed-keys", "in-flight", "splits-forced", "recovery-time", "surviving-keys", "tree-violations", "ifa-violations",
	}}
	t.addRow(
		r.Protocol.String(),
		fmt.Sprintf("%d", r.CommittedKeys),
		fmt.Sprintf("%d", r.InFlight),
		fmt.Sprintf("%d", r.SplitsForced),
		ms(r.RecoverySimTime),
		fmt.Sprintf("%d", r.SurvivingKeys),
		fmt.Sprintf("%d", r.TreeViolations),
		fmt.Sprintf("%d", r.IFAViolations),
	)
	return t.String()
}

// Experiment E10: lock-space recovery (section 4.2.2). Shared locks from
// many nodes concentrate LCBs on whichever node touched them last; a crash
// destroys those LCBs and recovery must release the dead transactions'
// locks and rebuild the survivors' from their (read-lock-inclusive) logs.
type LockRecoveryResult struct {
	Protocol recovery.Protocol
	// Chained selects the multi-line LCB organization (section 4.2.2's
	// harder variant, recovered by dropping and rebuilding whole chains).
	Chained bool
	// LocksHeld is lock entries before the crash; LCBsLost the destroyed
	// control blocks; Reinstalled/Released/Replayed the recovery work;
	// ChainsDropped whole chained LCBs discarded for rebuild.
	LocksHeld, LCBsLost, Reinstalled, Released, Replayed, ChainsDropped int
	// SimTime is recovery duration; Phases its per-phase breakdown;
	// Violations the IFA check.
	SimTime    int64
	Phases     []obs.PhaseSpan
	Violations int
}

// RunLockRecovery builds a lock-heavy state and crashes the node that
// acquired last (so it holds most LCB lines). A non-nil observer is
// attached to the run for tracing.
func RunLockRecovery(proto recovery.Protocol, locksPerNode int, seed int64, chained bool, o *obs.Observer) (*LockRecoveryResult, error) {
	const nodes = 4
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: nodes, Lines: defaultPages*4 + 1024 + 128},
		Protocol:       proto,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          defaultPages,
		LockTableLines: 1024,
		ChainedLCBs:    chained,
	})
	if err != nil {
		return nil, err
	}
	if err := workload.Seed(db, 0); err != nil {
		return nil, err
	}
	db.M.ResetStats()
	if o != nil {
		mode := "one-line"
		if chained {
			mode = "chained"
		}
		o.BeginProcess(fmt.Sprintf("lock-recovery %v %s", proto, mode))
		db.AttachObserver(o)
	}
	mgr := txn.NewManager(db)
	slots := db.Store.Layout.SlotsPerPage()
	// One transaction per node in the one-line mode; four per node in the
	// chained mode, so each LCB's holder list overflows its first line and
	// the crash breaks chains.
	txnsPerNode := 1
	if chained {
		txnsPerNode = 4
	}
	var txns []*txn.Txn
	for n := 0; n < nodes; n++ {
		for k := 0; k < txnsPerNode; k++ {
			tx, err := mgr.Begin(machine.NodeID(n))
			if err != nil {
				return nil, err
			}
			txns = append(txns, tx)
		}
	}
	// Every transaction read-locks the same shared records, node order
	// last, so the crash victim (last to acquire) holds the LCB lines.
	held := 0
	for i := 0; i < locksPerNode; i++ {
		rid := ridAt(i, slots)
		for _, tx := range txns {
			if _, err := tx.Read(rid); err != nil {
				return nil, fmt.Errorf("lock %d txn %v: %w", i, tx.ID(), err)
			}
			held++
		}
	}
	victim := machine.NodeID(nodes - 1)
	lost := db.Locks.LostLCBCount()
	db.Crash(victim)
	lostAfter := db.Locks.LostLCBCount()
	rep, err := db.Recover([]machine.NodeID{victim})
	if err != nil {
		return nil, err
	}
	return &LockRecoveryResult{
		Protocol:      proto,
		Chained:       chained,
		LocksHeld:     held,
		LCBsLost:      lostAfter - lost,
		Reinstalled:   rep.LCBsReinstalled,
		Released:      rep.LockEntriesReleased,
		Replayed:      rep.LocksReplayed,
		ChainsDropped: rep.LCBChainsDropped,
		SimTime:       rep.SimTime,
		Phases:        rep.Phases,
		Violations:    len(db.CheckIFA(0)),
	}, nil
}

// pickAbsentKeys returns n keys evenly spread over [1, max] that are not in
// the present set.
func pickAbsentKeys(present map[uint64]uint64, n int, max uint64) []uint64 {
	out := make([]uint64, 0, n)
	step := max / uint64(n+1)
	if step == 0 {
		step = 1
	}
	k := step
	for len(out) < n {
		if _, ok := present[k]; !ok {
			out = append(out, k)
			k += step
		} else {
			k++
		}
	}
	return out
}

// ridAt picks the i-th shared-pool record (the second half of the space).
func ridAt(i, slotsPerPage int) heap.RID {
	// The shared pool starts at the middle page of the default heap.
	page := defaultPages/2 + i/slotsPerPage
	return heap.RID{Page: storage.PageID(page), Slot: uint16(i % slotsPerPage)}
}

// Table renders the result.
func (r *LockRecoveryResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "lcb-mode", "locks-held", "lcbs-lost", "chains-dropped", "reinstalled", "entries-released", "locks-replayed", "recovery-time", "phase-breakdown", "ifa-violations",
	}}
	mode := "one-line"
	if r.Chained {
		mode = "chained"
	}
	t.addRow(
		r.Protocol.String(),
		mode,
		fmt.Sprintf("%d", r.LocksHeld),
		fmt.Sprintf("%d", r.LCBsLost),
		fmt.Sprintf("%d", r.ChainsDropped),
		fmt.Sprintf("%d", r.Reinstalled),
		fmt.Sprintf("%d", r.Released),
		fmt.Sprintf("%d", r.Replayed),
		ms(r.SimTime),
		obs.FormatPhases(r.Phases),
		fmt.Sprintf("%d", r.Violations),
	)
	return t.String()
}
