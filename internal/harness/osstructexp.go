package harness

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/osstruct"
)

// Experiment E15 demonstrates the paper's closing claim (section 9): the
// same recovery techniques protect shared-memory *operating-system*
// structures. A semaphore table and a disk-usage bitmap live in coherent
// shared memory; a node crash destroys whichever of their lines it held,
// and log-based recovery restores them so that "the crash of one node does
// not necessarily affect the integrity of the process management
// information on other nodes".
type OSStructResult struct {
	// Semaphores: units held by survivors/victim before the crash,
	// semaphore lines rebuilt, dead units released (in surviving lines).
	SurvivorUnits, VictimUnits, SemsRebuilt, UnitsReleased int
	// Disk map: blocks held by survivors/victim, bitmap lines rebuilt,
	// victim blocks reclaimed.
	SurvivorBlocks, VictimBlocks, MapLinesRebuilt, BlocksReclaimed int
	// Violations counts integrity failures after recovery (must be 0):
	// survivor holdings disturbed, or victim resources not reclaimed.
	Violations int
}

// RunOSStruct runs the scenario: every node takes semaphore units and disk
// blocks, the last toucher crashes, and both structures are recovered.
func RunOSStruct() (*OSStructResult, error) {
	const nodes = 4
	m := machine.New(machine.Config{Nodes: nodes, Lines: 512})
	sems, err := osstruct.NewSemTable(m, []int{8, 8, 2})
	if err != nil {
		return nil, err
	}
	dmap, err := osstruct.NewDiskMap(m, 128)
	if err != nil {
		return nil, err
	}
	res := &OSStructResult{}
	victim := machine.NodeID(nodes - 1)
	survivorBlocks := map[int]machine.NodeID{}
	for n := machine.NodeID(0); n < nodes; n++ {
		for sem := 0; sem < 2; sem++ {
			if err := sems.P(n, sem); err != nil {
				return nil, err
			}
			if n == victim {
				res.VictimUnits++
			} else {
				res.SurvivorUnits++
			}
		}
		for i := 0; i < 4; i++ {
			b, err := dmap.Alloc(n)
			if err != nil {
				return nil, err
			}
			if n == victim {
				res.VictimBlocks++
			} else {
				res.SurvivorBlocks++
				survivorBlocks[b] = n
			}
		}
	}
	// The victim acquired last, so the shared lines live on it.
	m.Crash(victim)

	res.SemsRebuilt, res.UnitsReleased, err = sems.Recover(0, []machine.NodeID{victim})
	if err != nil {
		return nil, err
	}
	res.MapLinesRebuilt, res.BlocksReclaimed, err = dmap.Recover(0, []machine.NodeID{victim})
	if err != nil {
		return nil, err
	}

	// Integrity: survivors' units intact, victim's gone.
	for sem, wantHolders := range map[int]int{0: nodes - 1, 1: nodes - 1, 2: 0} {
		_, holders, err := sems.Value(0, sem)
		if err != nil {
			return nil, err
		}
		if len(holders) != wantHolders {
			res.Violations++
		}
		for _, h := range holders {
			if h == victim {
				res.Violations++
			}
		}
	}
	allocated := 0
	for b := 0; b < dmap.Blocks(); b++ {
		ok, err := dmap.Allocated(0, b)
		if err != nil {
			return nil, err
		}
		if ok {
			allocated++
			if _, mine := survivorBlocks[b]; !mine {
				res.Violations++ // a victim block survived reclamation
			}
		}
	}
	if allocated != len(survivorBlocks) {
		res.Violations++
	}
	return res, nil
}

// Table renders the result.
func (r *OSStructResult) Table() string {
	t := &tableWriter{header: []string{
		"structure", "survivor-held", "victim-held", "lines-rebuilt", "reclaimed/released", "violations",
	}}
	t.addRow("semaphores", fmt.Sprintf("%d units", r.SurvivorUnits), fmt.Sprintf("%d units", r.VictimUnits),
		fmt.Sprintf("%d", r.SemsRebuilt), fmt.Sprintf("%d", r.VictimUnits), fmt.Sprintf("%d", r.Violations))
	t.addRow("disk-map", fmt.Sprintf("%d blocks", r.SurvivorBlocks), fmt.Sprintf("%d blocks", r.VictimBlocks),
		fmt.Sprintf("%d", r.MapLinesRebuilt), fmt.Sprintf("%d", r.BlocksReclaimed), fmt.Sprintf("%d", r.Violations))
	return t.String()
}
