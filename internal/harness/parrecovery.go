package harness

import (
	"fmt"
	"time"

	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E18 measures what the parallel restart pipeline buys: the same
// multi-survivor crash is recovered sequentially and with increasing worker
// fan-out, and the host wall-clock makespan of Recover is compared. Recovery
// work (redo/undo decisions) is identical at every worker count — that is the
// equivalence gate in internal/recovery — so the only thing moving is the
// wall clock. Speedup is bounded by GOMAXPROCS: on a single-core host the
// sweep documents overhead, not gain.

// ParRecoveryPoint is one (protocol, workers) cell of the sweep.
type ParRecoveryPoint struct {
	Protocol recovery.Protocol
	// Workers is Cfg.RecoveryWorkers for this run (0 = sequential pipeline).
	Workers int
	// RedoApplied/UndoApplied pin that the work is worker-invariant.
	RedoApplied, UndoApplied int
	// SimTime is the simulated recovery duration (also worker-invariant up
	// to interleaving); Wall is the host wall-clock makespan of Recover —
	// the quantity parallelism shrinks.
	SimTime int64
	Wall    time.Duration
	// Speedup is sequential Wall over this run's Wall (1.0 for the
	// sequential row itself).
	Speedup float64
}

// ParRecoveryResult is the sweep.
type ParRecoveryResult struct {
	Nodes, Victims int
	Points         []ParRecoveryPoint
}

// parDB is newDB plus the RecoveryWorkers knob.
func parDB(proto recovery.Protocol, nodes, pages, workers int) (*recovery.DB, error) {
	lockLines := 1024
	db, err := recovery.New(recovery.Config{
		Machine: machine.Config{
			Nodes: nodes,
			Lines: pages*4 + lockLines + 128,
		},
		Protocol:        proto,
		LinesPerPage:    4,
		RecsPerLine:     4,
		Pages:           pages,
		LockTableLines:  lockLines,
		RecoveryWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	if err := workload.Seed(db, 0); err != nil {
		return nil, err
	}
	db.M.ResetStats()
	return db, nil
}

// RunParRecovery sweeps worker counts over every IFA protocol on a
// multi-survivor config: 8 nodes, a heavy committed backlog since the seed
// checkpoint, and a two-node crash, so every parallel phase (per-survivor log
// scans, page-partitioned redo, tag scans, lock replay) has real fan-out
// width. A nil workers slice gets the standard 0/1/2/4/8 sweep.
func RunParRecovery(seed int64, workers []int) (*ParRecoveryResult, error) {
	if len(workers) == 0 {
		workers = []int{0, 1, 2, 4, 8}
	}
	const nodes, pages = 8, 32
	res := &ParRecoveryResult{Nodes: nodes, Victims: 2}
	for _, proto := range IFAProtocols() {
		var seqWall time.Duration
		for _, w := range workers {
			p, err := runParRecoveryOnce(proto, nodes, pages, w, seed)
			if err != nil {
				return nil, fmt.Errorf("parrecovery %v workers=%d: %w", proto, w, err)
			}
			if seqWall == 0 {
				seqWall = p.Wall
			}
			if p.Wall > 0 {
				p.Speedup = float64(seqWall) / float64(p.Wall)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

func runParRecoveryOnce(proto recovery.Protocol, nodes, pages, workers int, seed int64) (ParRecoveryPoint, error) {
	db, err := parDB(proto, nodes, pages, workers)
	if err != nil {
		return ParRecoveryPoint{}, err
	}
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 12, OpsPerTxn: 8,
		ReadFraction: 0.2, SharingFraction: 0.5, Seed: seed,
	})
	if _, err := r.Run(); err != nil {
		return ParRecoveryPoint{}, err
	}
	victims := []machine.NodeID{machine.NodeID(nodes - 1), machine.NodeID(nodes - 2)}
	db.Crash(victims...)
	start := time.Now()
	rep, err := db.Recover(victims)
	wall := time.Since(start)
	if err != nil {
		return ParRecoveryPoint{}, err
	}
	return ParRecoveryPoint{
		Protocol:    proto,
		Workers:     workers,
		RedoApplied: rep.RedoApplied,
		UndoApplied: rep.UndoApplied,
		SimTime:     rep.SimTime,
		Wall:        wall,
	}, nil
}

// Table renders the sweep.
func (r *ParRecoveryResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "workers", "redo-applied", "undo", "sim-recovery", "host-wall", "speedup",
	}}
	for _, p := range r.Points {
		w := "seq"
		if p.Workers > 0 {
			w = fmt.Sprintf("%d", p.Workers)
		}
		t.addRow(
			p.Protocol.String(),
			w,
			fmt.Sprintf("%d", p.RedoApplied),
			fmt.Sprintf("%d", p.UndoApplied),
			ms(p.SimTime),
			fmt.Sprintf("%.3fms", float64(p.Wall.Nanoseconds())/1e6),
			fmt.Sprintf("%.2fx", p.Speedup),
		)
	}
	return t.String()
}
