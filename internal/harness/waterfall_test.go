package harness

import (
	"strings"
	"testing"

	"smdb/internal/recovery"
)

// TestRunWaterfall runs E22 end-to-end: every real protocol must clear the
// attribution-coverage gate (RunWaterfall fails below waterfallMinCoverage),
// complete waterfalls, retain tail samples, and record recovery phases.
func TestRunWaterfall(t *testing.T) {
	res, err := RunWaterfall(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Points), len(recovery.Protocols()); got != want {
		t.Fatalf("census has %d points, want %d", got, want)
	}
	for _, p := range res.Points {
		if p.Coverage < waterfallMinCoverage {
			t.Errorf("%v: coverage %.3f below gate %.2f", p.Protocol, p.Coverage, waterfallMinCoverage)
		}
		if p.Convoyed == 0 {
			t.Errorf("%v: no slow sample carries a line-wait holder (convoy explanation missing)", p.Protocol)
		}
	}
	if len(res.Overhead) != 2 {
		t.Fatalf("overhead sweep has %d arms, want 2", len(res.Overhead))
	}
	table := res.Table()
	for _, want := range []string{"protocol", "coverage", "convoyed", "ns/update"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
