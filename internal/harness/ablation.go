package harness

import (
	"fmt"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

// Experiment E11 is the ablation study DESIGN.md calls out: the same
// figure 2 scenario run with logging-before-migration disabled (update
// logging deferred to commit; everything else identical). It demonstrates
// that LBM is the load-bearing mechanism — without it, the undo hazard
// (crash of the updater leaves its uncommitted update alive on a survivor)
// and the redo hazard (crash of the destination loses a surviving
// transaction's update) both materialize, and the IFA checker reports them.
type AblationPoint struct {
	Protocol recovery.Protocol
	// CrashCase is 1 (the updating node crashes; undo needed) or 2 (the
	// node holding the migrated line crashes; redo needed) — figure 2's
	// two cases.
	CrashCase int
	// Violations is the IFA-checker report size after recovery.
	Violations int
	// Description summarizes the observed outcome.
	Description string
}

// AblationResult compares the real protocol against the no-LBM control.
type AblationResult struct {
	Points []AblationPoint
}

// RunAblation executes figure 2's two crash cases under the real protocol
// and the no-LBM control.
func RunAblation() (*AblationResult, error) {
	res := &AblationResult{}
	for _, proto := range []recovery.Protocol{recovery.VolatileSelectiveRedo, recovery.AblatedNoLBM} {
		for crashCase := 1; crashCase <= 2; crashCase++ {
			p, err := runAblationCase(proto, crashCase)
			if err != nil {
				return nil, fmt.Errorf("ablation %v case %d: %w", proto, crashCase, err)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

func runAblationCase(proto recovery.Protocol, crashCase int) (AblationPoint, error) {
	db, err := newDB(proto, 2, 4, defaultPages, 0)
	if err != nil {
		return AblationPoint{}, err
	}
	mgr := txn.NewManager(db)
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 0, Slot: 1}
	init, err := mgr.Begin(0)
	if err != nil {
		return AblationPoint{}, err
	}
	for _, rid := range []heap.RID{r1, r2} {
		if err := init.Insert(rid, []byte{1}); err != nil {
			return AblationPoint{}, err
		}
	}
	if err := init.Commit(); err != nil {
		return AblationPoint{}, err
	}
	if err := db.Checkpoint(0); err != nil {
		return AblationPoint{}, err
	}

	tx, err := mgr.Begin(0)
	if err != nil {
		return AblationPoint{}, err
	}
	ty, err := mgr.Begin(1)
	if err != nil {
		return AblationPoint{}, err
	}
	if err := tx.Write(r1, []byte{100}); err != nil {
		return AblationPoint{}, err
	}
	if err := ty.Write(r2, []byte{200}); err != nil { // the line migrates
		return AblationPoint{}, err
	}
	victim := machine.NodeID(crashCase - 1) // case 1: node 0 (t_x); case 2: node 1
	db.Crash(victim)
	if _, err := db.Recover([]machine.NodeID{victim}); err != nil {
		return AblationPoint{}, err
	}
	survivor := machine.NodeID(1 - int(victim))
	violations := db.CheckIFA(survivor)

	sd, err := db.Read(survivor, r1)
	if err != nil {
		return AblationPoint{}, err
	}
	desc := ""
	switch {
	case crashCase == 1 && sd.Data[0] == 100:
		desc = "t_x's uncommitted update SURVIVED its node's crash (undo hazard)"
	case crashCase == 1:
		desc = "t_x's update correctly undone"
	case crashCase == 2 && sd.Data[0] != 100:
		desc = "surviving t_x LOST its update to the remote crash (redo hazard)"
	case crashCase == 2:
		desc = "t_x's update correctly redone"
	}
	return AblationPoint{
		Protocol:    proto,
		CrashCase:   crashCase,
		Violations:  len(violations),
		Description: desc,
	}, nil
}

// Table renders the comparison.
func (r *AblationResult) Table() string {
	t := &tableWriter{header: []string{"protocol", "crash-case", "ifa-violations", "outcome"}}
	for _, p := range r.Points {
		t.addRow(p.Protocol.String(), fmt.Sprintf("%d", p.CrashCase),
			fmt.Sprintf("%d", p.Violations), p.Description)
	}
	return t.String()
}

// Experiment E12 exercises the paper's section 9 extension: a transaction
// parallelized across several nodes must abort entirely if any of its nodes
// crashes, while independent transactions on the same surviving nodes are
// untouched.
type ParallelResult struct {
	Protocol recovery.Protocol
	// Participants is the branch count; AbortedBranches how many recovery
	// rolled back (all of them); IndependentSurvived whether the control
	// transaction stayed active.
	Participants, AbortedBranches int
	IndependentSurvived           bool
	Violations                    int
}

// RunParallel runs one parallel transaction over n-1 nodes plus one
// independent transaction, crashing a single participant.
func RunParallel(proto recovery.Protocol, nodes int) (*ParallelResult, error) {
	db, err := seededDB(proto, nodes, 4, defaultPages, 0)
	if err != nil {
		return nil, err
	}
	mgr := txn.NewManager(db)
	parts := make([]machine.NodeID, nodes-1)
	for i := range parts {
		parts[i] = machine.NodeID(i)
	}
	p, err := mgr.BeginParallel(parts...)
	if err != nil {
		return nil, err
	}
	for i, nd := range parts {
		if err := p.On(nd).Write(heap.RID{Page: 0, Slot: uint16(i)}, []byte{byte(50 + i)}); err != nil {
			return nil, err
		}
	}
	indep, err := mgr.Begin(machine.NodeID(nodes - 1))
	if err != nil {
		return nil, err
	}
	if err := indep.Write(heap.RID{Page: 1, Slot: 0}, []byte{99}); err != nil {
		return nil, err
	}
	victim := parts[len(parts)-1]
	db.Crash(victim)
	rep, err := db.Recover([]machine.NodeID{victim})
	if err != nil {
		return nil, err
	}
	st, _ := db.Status(indep.ID())
	return &ParallelResult{
		Protocol:            proto,
		Participants:        len(parts),
		AbortedBranches:     len(rep.Aborted),
		IndependentSurvived: st == recovery.TxnActive,
		Violations:          len(db.CheckIFA(db.M.AliveNodes()[0])),
	}, nil
}

// Table renders the result.
func (r *ParallelResult) Table() string {
	t := &tableWriter{header: []string{"protocol", "participants", "aborted-branches", "independent-survived", "ifa-violations"}}
	t.addRow(r.Protocol.String(), fmt.Sprintf("%d", r.Participants),
		fmt.Sprintf("%d", r.AbortedBranches), fmt.Sprintf("%v", r.IndependentSurvived),
		fmt.Sprintf("%d", r.Violations))
	return t.String()
}
