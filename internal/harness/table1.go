package harness

import (
	"fmt"

	"smdb/internal/btree"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
	"smdb/internal/wal"
	"smdb/internal/workload"
)

// Experiment E1 regenerates the paper's Table 1 — the incremental runtime
// overheads each IFA protocol pays beyond plain failure atomicity — and
// quantifies each cell on a fixed mixed workload (record updates, B-tree
// inserts/deletes with splits, shared/exclusive locking):
//
//   - early commit of structural changes  -> NTA log forces
//   - logging of read locks               -> shared-lock log records
//   - undo tagging                        -> tag writes and bytes
//   - higher frequency of log forces      -> physical LBM forces
type Table1Row struct {
	Protocol recovery.Protocol
	// Overhead presence (the paper's checkmarks).
	EarlyCommit, ReadLockLogging, UndoTagging, HigherForces bool
	// Measured magnitudes on the reference workload.
	NTAForces     int64
	ReadLockLogs  int64
	TagWrites     int64
	TagBytes      int64
	LBMForces     int64
	CommitForces  int64
	TotalPhysical int64 // all physical stable-log forces
	SimTime       int64
}

// Table1Result is the set of rows, baseline first.
type Table1Result struct {
	Rows []Table1Row
	// WorkloadOps is the operation count of the reference workload.
	WorkloadOps int
}

// RunTable1 executes the reference workload under every protocol.
func RunTable1(seed int64) (*Table1Result, error) {
	res := &Table1Result{}
	protos := append([]recovery.Protocol{recovery.BaselineFA}, IFAProtocols()...)
	for _, proto := range protos {
		row, ops, err := runTable1Once(proto, seed)
		if err != nil {
			return nil, fmt.Errorf("table1 %v: %w", proto, err)
		}
		res.Rows = append(res.Rows, row)
		res.WorkloadOps = ops
	}
	return res, nil
}

func runTable1Once(proto recovery.Protocol, seed int64) (Table1Row, int, error) {
	// 48 pages: the first 24 are the record heap, the rest the index.
	db, err := newDB(proto, 8, 4, 48, 0)
	if err != nil {
		return Table1Row{}, 0, err
	}
	if err := workload.Seed(db, 24); err != nil {
		return Table1Row{}, 0, err
	}
	db.M.ResetStats()
	forcesBefore := totalLogForces(db)

	// Record workload.
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 8, OpsPerTxn: 8, HeapPages: 24,
		ReadFraction: 0.5, SharingFraction: 0.5, Seed: seed,
	})
	wres, err := r.Run()
	if err != nil {
		return Table1Row{}, 0, err
	}

	// Index workload on the dedicated tree page range: splits exercise
	// the early commit of structural changes.
	tree, err := btree.New(db, 24, 24)
	if err != nil {
		return Table1Row{}, 0, err
	}
	mgr := txn.NewManager(db)
	keys := 0
	for k := uint64(1); k <= 40; k++ {
		tx, err := mgr.Begin(machine.NodeID(k % 8))
		if err != nil {
			return Table1Row{}, 0, err
		}
		if err := tree.Insert(tx, k*17%1009, k); err != nil {
			return Table1Row{}, 0, err
		}
		if k%5 == 0 {
			if err := tree.Delete(tx, (k-4)*17%1009); err != nil {
				return Table1Row{}, 0, err
			}
		}
		if err := tx.Commit(); err != nil {
			return Table1Row{}, 0, err
		}
		keys++
	}

	stats := db.Stats()
	readLockLogs := int64(0)
	for _, l := range db.Logs {
		for _, rec := range l.Records(1) {
			if rec.Type == wal.TypeLockAcquire && lock.Mode(rec.Mode) == lock.Shared {
				readLockLogs++
			}
		}
	}
	row := Table1Row{
		Protocol:        proto,
		EarlyCommit:     proto.EarlyCommitsStructural(),
		ReadLockLogging: proto.LogsReadLocks(),
		UndoTagging:     proto.UndoTagging(),
		HigherForces:    proto.StableLBM(),
		NTAForces:       stats.NTAForces,
		ReadLockLogs:    readLockLogs,
		TagWrites:       stats.TagWrites,
		TagBytes:        stats.UndoTagBytes,
		LBMForces:       stats.LBMForces,
		CommitForces:    stats.CommitForces,
		TotalPhysical:   totalLogForces(db) - forcesBefore,
		SimTime:         db.M.MaxClock(),
	}
	ops := wres.Reads + wres.Writes + keys
	return row, ops, nil
}

// Table renders the paper's checkmark matrix with measured magnitudes.
func (r *Table1Result) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "early-commit", "read-lock-logs", "undo-tagging", "LBM-forces", "phys-forces", "sim-time",
	}}
	for _, row := range r.Rows {
		cell := func(present bool, measured string) string {
			if !present {
				return "-"
			}
			return measured
		}
		t.addRow(
			row.Protocol.String(),
			cell(row.EarlyCommit, fmt.Sprintf("yes (%d forces)", row.NTAForces)),
			cell(row.ReadLockLogging, fmt.Sprintf("yes (%d recs)", row.ReadLockLogs)),
			cell(row.UndoTagging, fmt.Sprintf("yes (%d writes, %dB)", row.TagWrites, row.TagBytes)),
			cell(row.HigherForces, fmt.Sprintf("yes (%d)", row.LBMForces)),
			fmt.Sprintf("%d", row.TotalPhysical),
			ms(row.SimTime),
		)
	}
	return t.String()
}
