package harness

import (
	"fmt"
	"time"

	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/audit"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

// Experiment E19 is the online-auditor overhead and violation census: the
// depcensus line-hopping schedule (E17) runs under each representative LBM
// discipline twice — once bare, once with the online IFA auditor attached —
// measuring the wall-clock cost the auditor adds per update and, for the
// audited arms, the census it produced: typed LBM violations, completed
// audit trails, time-series windows, and watchdog anomalies. The real
// protocols must audit clean; the ablated no-LBM control must light up with
// unlogged-exposure violations on the very same schedule, the live analogue
// of E11's post-crash checker ablation.
type AuditOverheadPoint struct {
	Protocol recovery.Protocol
	Audited  bool
	// Updates counts the timed writes; WallNS the wall-clock time the
	// committed rounds took (the failure-free path the auditor taxes).
	Updates int
	WallNS  int64
	// The auditor's census after crash and recovery (zero when unaudited).
	Violations int
	Unlogged   int
	Completed  int
	Windows    int
	Anomalies  int
}

// NSPerUpdate is the timed cost of one write under this arm.
func (p AuditOverheadPoint) NSPerUpdate() int64 {
	if p.Updates == 0 {
		return 0
	}
	return p.WallNS / int64(p.Updates)
}

// AuditOverheadResult is the protocol x {off,on} sweep, off before on.
type AuditOverheadResult struct {
	Points []AuditOverheadPoint
}

// auditOverheadRounds is how many committed line-hopping rounds are timed.
// Each round is depCensusLines lines x 4 nodes = 24 migrating writes.
const auditOverheadRounds = 6

// auditOverheadWindowNS is the audited arms' time-series window width. The
// schedule spans well under the default 1ms of simulated time, so the
// census uses a narrower window to close (and thus evaluate) several
// windows within the run.
const auditOverheadWindowNS = 20_000

// RunAuditOverhead runs E19.
func RunAuditOverhead(seed int64) (*AuditOverheadResult, error) {
	_ = seed // the schedule is deterministic; kept for the bench's uniform signature
	res := &AuditOverheadResult{}
	for _, proto := range []recovery.Protocol{
		recovery.StableEager,
		recovery.VolatileSelectiveRedo,
		recovery.AblatedNoLBM,
	} {
		for _, audited := range []bool{false, true} {
			p, err := auditOverheadArm(proto, audited)
			if err != nil {
				return nil, fmt.Errorf("audit overhead %v audited=%v: %w", proto, audited, err)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// auditOverheadArm runs one (protocol, audited) cell: the timed committed
// rounds, then an untimed in-flight round, the node-3 crash destroying the
// sole copies of its updates, and recovery — so the audited arms exercise
// the auditor's crash/recovery suspension path too, not just the fast path.
func auditOverheadArm(proto recovery.Protocol, audited bool) (AuditOverheadPoint, error) {
	p := AuditOverheadPoint{Protocol: proto, Audited: audited}
	db, err := seededDB(proto, 4, 4, defaultPages, 0)
	if err != nil {
		return p, err
	}
	var a *audit.Auditor
	if audited {
		// Both arms pay for the observer so the delta isolates the auditor.
		o := obs.NewWithCapacity(8192)
		db.AttachObserver(o)
		a = audit.New(audit.Config{
			Stable:   proto.StableLBM() && db.M.Config().Coherency == machine.WriteInvalidate,
			WindowNS: auditOverheadWindowNS,
		})
		db.AttachAudit(a)
	} else {
		db.AttachObserver(obs.NewWithCapacity(8192))
	}

	mgr := txn.NewManager(db)
	start := time.Now()
	for round := 0; round < auditOverheadRounds; round++ {
		if _, err := depCensusRound(db, mgr, round, true); err != nil {
			return p, err
		}
	}
	p.WallNS = time.Since(start).Nanoseconds()
	p.Updates = auditOverheadRounds * depCensusLines * 4

	// The hazard round: in-flight writes whose sole copies sit on node 3.
	if _, err := depCensusRound(db, mgr, auditOverheadRounds, false); err != nil {
		return p, err
	}
	victim := machine.NodeID(3)
	db.Crash(victim)
	if _, err := db.Recover([]machine.NodeID{victim}); err != nil {
		return p, err
	}

	if audited {
		sum := a.Summary()
		p.Violations = sum.Violations
		p.Unlogged = sum.ViolationsByKind[audit.ViolationUnlogged]
		p.Completed = sum.Completed
		p.Windows = sum.Windows
		p.Anomalies = sum.Anomalies
	}
	return p, nil
}

// Table renders the sweep; overhead compares each audited arm's per-update
// cost against its protocol's bare arm (wall-clock, so noisy on loaded
// machines — the census columns are the deterministic part).
func (r *AuditOverheadResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "audit", "updates", "ns/update", "overhead",
		"violations", "unlogged", "trails", "windows", "anomalies",
	}}
	bare := map[recovery.Protocol]int64{}
	for _, p := range r.Points {
		if !p.Audited {
			bare[p.Protocol] = p.NSPerUpdate()
		}
	}
	for _, p := range r.Points {
		overhead := "-"
		if p.Audited {
			if b := bare[p.Protocol]; b > 0 {
				overhead = pct(float64(p.NSPerUpdate()-b) / float64(b))
			}
		}
		t.addRow(
			p.Protocol.String(),
			mark(p.Audited),
			fmt.Sprintf("%d", p.Updates),
			fmt.Sprintf("%d", p.NSPerUpdate()),
			overhead,
			fmt.Sprintf("%d", p.Violations),
			fmt.Sprintf("%d", p.Unlogged),
			fmt.Sprintf("%d", p.Completed),
			fmt.Sprintf("%d", p.Windows),
			fmt.Sprintf("%d", p.Anomalies),
		)
	}
	return t.String()
}
