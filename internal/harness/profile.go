package harness

import (
	"fmt"
	"time"

	"smdb/internal/machine"
	"smdb/internal/obs/prof"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E20 turns the profiler on the question E18 raises: where does
// parallel recovery's wall clock actually go? The E18 workload (8 nodes,
// heavy committed backlog, two-node crash) is recovered sequentially and at
// increasing fan-out with the contention & cost-attribution profiler
// attached, and each run's host wall time is decomposed into worker busy
// time, stripe lock-wait, condvar-wait, fan-out idle (workers parked while a
// sibling finishes its last task), and coordinator merge time. The residual
// the buckets fail to cover is reported, so an attribution hole shows up as
// a number rather than a shrug.

// RecoveryProfilePoint is one worker count's attribution.
type RecoveryProfilePoint struct {
	// Workers is Cfg.RecoveryWorkers (0 = sequential pipeline).
	Workers int
	// Wall is the host wall-clock makespan of Recover.
	Wall time.Duration
	// The attribution buckets, all host nanoseconds on the wall-clock axis
	// (per-thread quantities are divided by the fan-out width):
	// BusyNS is worker compute, SerialNS the pipeline's non-fanned spans
	// (folded into BusyNS for coverage), LockWaitNS stripe-mutex wait,
	// CondWaitNS condvar sleeps, IdleNS fan-out tail idleness, MergeNS the
	// coordinator's sequential merges.
	BusyNS, SerialNS, LockWaitNS, CondWaitNS, IdleNS, MergeNS int64
	// Coverage is the bucket sum over Wall; the acceptance bar is >= 0.9.
	Coverage float64
	// TopStripes are the most contended stripes during this recovery.
	TopStripes []prof.StripeCounters
	// Stripes is the full stripe-counter delta (TopStripes is its head).
	Stripes prof.StripeSnapshot
	// Phases is the per-phase worker attribution (the /prof/workers view,
	// scoped to this Recover call).
	Phases prof.WorkerSnapshot
}

// RecoveryProfileResult is the sweep.
type RecoveryProfileResult struct {
	Protocol       recovery.Protocol
	Nodes, Victims int
	Points         []RecoveryProfilePoint
}

// RunRecoveryProfile profiles the E18 recovery at each worker count (default
// sequential/2/4/8) under Volatile Selective Redo, the protocol whose
// pipeline exercises every parallel phase. Each run gets a fresh DB and a
// fresh profiler pair, so points are independent.
func RunRecoveryProfile(seed int64, workers []int) (*RecoveryProfileResult, error) {
	if len(workers) == 0 {
		workers = []int{0, 2, 4, 8}
	}
	const nodes, pages = 8, 32
	proto := recovery.VolatileSelectiveRedo
	res := &RecoveryProfileResult{Protocol: proto, Nodes: nodes, Victims: 2}
	for _, w := range workers {
		p, err := runRecoveryProfileOnce(proto, nodes, pages, w, seed)
		if err != nil {
			return nil, fmt.Errorf("recoveryprofile workers=%d: %w", w, err)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

func runRecoveryProfileOnce(proto recovery.Protocol, nodes, pages, workers int, seed int64) (RecoveryProfilePoint, error) {
	db, err := parDB(proto, nodes, pages, workers)
	if err != nil {
		return RecoveryProfilePoint{}, err
	}
	pair := prof.NewPair(machine.StripeCount)
	db.AttachProf(pair)
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 12, OpsPerTxn: 8,
		ReadFraction: 0.2, SharingFraction: 0.5, Seed: seed,
	})
	if _, err := r.Run(); err != nil {
		return RecoveryProfilePoint{}, err
	}
	victims := []machine.NodeID{machine.NodeID(nodes - 1), machine.NodeID(nodes - 2)}
	db.Crash(victims...)
	start := time.Now()
	rep, err := db.Recover(victims)
	wall := time.Since(start)
	if err != nil {
		return RecoveryProfilePoint{}, err
	}
	if rep.Prof == nil {
		return RecoveryProfilePoint{}, fmt.Errorf("profiler attached but RecoveryReport.Prof is nil")
	}
	return attributeRecovery(workers, wall, rep.Prof), nil
}

// attributeRecovery decomposes one profiled Recover call. All per-thread
// quantities (worker busy sums, stripe wait totals) are rescaled onto the
// wall-clock axis by the fan-out width, so the buckets are comparable to —
// and should roughly sum to — the measured wall time.
func attributeRecovery(workers int, wall time.Duration, rp *recovery.RecoveryProfile) RecoveryProfilePoint {
	width := int64(workers)
	if width < 1 {
		width = 1
	}
	wallNS := wall.Nanoseconds()

	// Fan-out wall, merge, and wall-axis busy come straight from the worker
	// profiler; the fan-out tail idle is their complement inside the fanned
	// spans.
	parWall := rp.Workers.TotalWallNS()
	merge := rp.Workers.TotalMergeNS()
	var busyWall int64
	for _, ph := range rp.Workers.Phases {
		busyWall += ph.BusyWallNS()
	}
	idle := parWall - busyWall
	if idle < 0 {
		idle = 0
	}
	// Whatever Recover spent outside the fanned spans and merges is the
	// pipeline's serial remainder (checkpoint settling, lock-space sweeps,
	// report assembly); it ran on one goroutine, so it is already wall-axis.
	serial := wallNS - parWall - merge
	if serial < 0 {
		serial = 0
	}
	// Stripe waits are summed across every waiting goroutine; dividing by
	// the width approximates their wall-axis footprint. They happened inside
	// time the meters counted as busy, so they move out of the busy bucket
	// rather than stacking on top of it.
	totals := rp.Stripes.Totals()
	lockWait := totals.WaitNS / width
	condWait := totals.CondWaitNS / width
	busy := busyWall + serial - lockWait - condWait
	if busy < 0 {
		busy = 0
	}
	cov := 0.0
	if wallNS > 0 {
		cov = float64(busy+lockWait+condWait+idle+merge) / float64(wallNS)
	}
	return RecoveryProfilePoint{
		Workers:    workers,
		Wall:       wall,
		BusyNS:     busy,
		SerialNS:   serial,
		LockWaitNS: lockWait,
		CondWaitNS: condWait,
		IdleNS:     idle,
		MergeNS:    merge,
		Coverage:   cov,
		TopStripes: rp.Stripes.TopContended(5),
		Stripes:    rp.Stripes,
		Phases:     rp.Workers,
	}
}

// Table renders the attribution sweep.
func (r *RecoveryProfileResult) Table() string {
	t := &tableWriter{header: []string{
		"workers", "host-wall", "busy", "lock-wait", "cond-wait", "idle", "merge", "coverage",
	}}
	for _, p := range r.Points {
		w := "seq"
		if p.Workers > 0 {
			w = fmt.Sprintf("%d", p.Workers)
		}
		t.addRow(
			w,
			prof.FormatNS(p.Wall.Nanoseconds()),
			prof.FormatNS(p.BusyNS),
			prof.FormatNS(p.LockWaitNS),
			prof.FormatNS(p.CondWaitNS),
			prof.FormatNS(p.IdleNS),
			prof.FormatNS(p.MergeNS),
			fmt.Sprintf("%.0f%%", p.Coverage*100),
		)
	}
	return t.String()
}

// Report is Table plus, for the widest fan-out, the top contended stripes
// and the per-phase worker breakdown — the text form of the acceptance
// criterion "attributes the wall time and names the contended stripes".
func (r *RecoveryProfileResult) Report() string {
	out := r.Table()
	if len(r.Points) == 0 {
		return out
	}
	last := r.Points[len(r.Points)-1]
	out += "\n" + prof.RenderReport(last.Stripes, last.Phases, 5)
	return out
}
