// Package harness drives the experiments that regenerate the paper's table,
// measured numbers, and quantitative claims (see DESIGN.md's experiment
// index E1-E10 and EXPERIMENTS.md for paper-vs-measured). Each experiment
// returns a typed result whose Table method prints the rows the paper
// reports; cmd/smdb-bench and the root bench_test.go are thin wrappers.
package harness

import (
	"fmt"
	"strings"

	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/workload"
)

// IFAProtocols are the protocols guaranteeing IFA, in presentation order.
func IFAProtocols() []recovery.Protocol {
	return []recovery.Protocol{
		recovery.VolatileRedoAll,
		recovery.VolatileSelectiveRedo,
		recovery.StableEager,
		recovery.StableTriggered,
	}
}

// newDB builds a database with the harness's standard geometry.
func newDB(proto recovery.Protocol, nodes, recsPerLine, pages int, coherency machine.Coherency) (*recovery.DB, error) {
	lockLines := 1024
	return recovery.New(recovery.Config{
		Machine: machine.Config{
			Nodes:     nodes,
			Lines:     pages*4 + lockLines + 128,
			Coherency: coherency,
		},
		Protocol:       proto,
		LinesPerPage:   4,
		RecsPerLine:    recsPerLine,
		Pages:          pages,
		LockTableLines: lockLines,
	})
}

// seededDB builds and seeds a database or fails loudly (configuration
// errors are programming errors in the harness).
func seededDB(proto recovery.Protocol, nodes, recsPerLine, pages int, coherency machine.Coherency) (*recovery.DB, error) {
	db, err := newDB(proto, nodes, recsPerLine, pages, coherency)
	if err != nil {
		return nil, err
	}
	if err := workload.Seed(db, 0); err != nil {
		return nil, err
	}
	// Seeding noise should not pollute experiment counters.
	db.M.ResetStats()
	return db, nil
}

// totalLogForces sums physical stable-log forces across all nodes' devices.
func totalLogForces(db *recovery.DB) int64 {
	var n int64
	for _, l := range db.Logs {
		n += l.Device().Forces()
	}
	return n
}

// tableWriter accumulates an aligned text table.
type tableWriter struct {
	header []string
	rows   [][]string
}

func (t *tableWriter) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tableWriter) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i, w := range width {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// us formats nanoseconds as microseconds.
func us(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1e3) }

// ms formats nanoseconds as milliseconds.
func ms(ns int64) string { return fmt.Sprintf("%.2fms", float64(ns)/1e6) }

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// mark renders a Table 1 checkmark.
func mark(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

// pagesFor keeps experiments' heap sizes consistent.
const defaultPages = 16

var _ = storage.PageID(0)
