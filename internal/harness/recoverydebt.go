package harness

import (
	"errors"
	"fmt"
	"time"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs/debt"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

// Experiment E24 is the recovery-debt estimator accuracy census: each real
// protocol runs the deterministic depcensus convoy schedule with the debt
// tracker attached through structurally identical crash/recover cycles. The
// first cycle calibrates the estimator (RecoveryEnd feeds the measured
// ns-per-replayed-record back into the tracker); each later cycle snapshots
// the calibrated replay-time estimate immediately before the crash, then
// recovers and compares the estimate against the measured recovery wall
// time. Gates: the estimate must land within recoveryDebtMaxRatio (2x) of
// the measurement on the best-agreeing judged cycle (wall-clock jitter on
// one cycle must not fail a sound estimator), per-record attribution
// coverage must reach
// recoveryDebtMinCoverage, debt must collapse to zero right after a
// successful recovery (the fuzzy end-of-restart safe point) and
// re-accumulate once survivors resume, and a double run of every arm must
// produce identical sim-deterministic accounting — the property that lets
// the tracker ride under the chaos record/replay harness.
type RecoveryDebtPoint struct {
	Protocol recovery.Protocol
	// Pre-crash accounting of the first judged cycle (the shape the
	// double-run determinism gate compares).
	DebtRecords int64
	DebtBytes   int64
	RedoSpan    int64
	Coverage    float64
	// EstNS is the calibrated parallel-adjusted replay estimate at the
	// snapshot and WallNS the measured recovery wall time, from the
	// best-agreeing judged cycle; Ratio is the larger over the smaller
	// after both are clamped up to recoveryDebtNoiseNS.
	EstNS  int64
	WallNS int64
	Ratio  float64
	// ResidualDebt is the debt immediately after the judged recovery (the
	// safe point should have swallowed everything); ResumedDebt the debt
	// after survivors resumed (it must re-accumulate).
	ResidualDebt int64
	ResumedDebt  int64
	// MTTR accounting after both cycles.
	Recoveries int64
	EwmaMTTRNS int64
}

// RecoveryDebtResult is the per-protocol sweep.
type RecoveryDebtResult struct {
	Points []RecoveryDebtPoint
}

// recoveryDebtMinCoverage gates per-record attribution: below this the
// space-attribution story is lying by omission.
const recoveryDebtMinCoverage = 0.9

// recoveryDebtMaxRatio gates estimate-vs-actual accuracy.
const recoveryDebtMaxRatio = 2.0

// recoveryDebtNoiseNS clamps both sides of the accuracy ratio: recoveries
// this short are dominated by scheduler noise, not replay work, and the
// estimator is not pretending to resolve them.
const recoveryDebtNoiseNS = 200_000

// recoveryDebtRounds is the committed convoy rounds per cycle (plus one
// round left in flight); enough that recovery replays a multi-hundred-record
// debt and the wall measurement rises above the noise clamp.
const recoveryDebtRounds = 4

// recoveryDebtJudged is how many calibrated cycles each arm judges; the
// accuracy gate takes the best ratio, so a single GC pause or scheduler
// hiccup inflating one measured recovery cannot fail a sound estimator.
const recoveryDebtJudged = 3

// RunRecoveryDebt runs E24.
func RunRecoveryDebt(seed int64) (*RecoveryDebtResult, error) {
	_ = seed // the schedule is deterministic; kept for the bench's uniform signature
	res := &RecoveryDebtResult{}
	for _, proto := range recovery.Protocols() {
		p, err := recoveryDebtArm(proto)
		if err != nil {
			return nil, fmt.Errorf("recoverydebt %v: %w", proto, err)
		}
		// Determinism gate: a second, identical run must produce the same
		// sim-deterministic accounting (wall-clock fields are excluded — the
		// estimator calibrates from real time by design).
		q, err := recoveryDebtArm(proto)
		if err != nil {
			return nil, fmt.Errorf("recoverydebt %v (rerun): %w", proto, err)
		}
		if p.DebtRecords != q.DebtRecords || p.DebtBytes != q.DebtBytes ||
			p.RedoSpan != q.RedoSpan || p.Coverage != q.Coverage ||
			p.ResidualDebt != q.ResidualDebt || p.Recoveries != q.Recoveries {
			return nil, fmt.Errorf("recoverydebt %v: nondeterministic accounting: %+v vs %+v", proto, p, q)
		}
		if p.Coverage < recoveryDebtMinCoverage {
			return nil, fmt.Errorf("recoverydebt %v: attribution coverage %.3f < %.2f",
				proto, p.Coverage, recoveryDebtMinCoverage)
		}
		if p.EstNS <= 0 {
			return nil, fmt.Errorf("recoverydebt %v: no calibrated estimate at the crash snapshot", proto)
		}
		if p.Ratio > recoveryDebtMaxRatio {
			return nil, fmt.Errorf("recoverydebt %v: estimate %s vs measured %s — ratio %.2f > %.1fx",
				proto, us(p.EstNS), us(p.WallNS), p.Ratio, recoveryDebtMaxRatio)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// recoveryDebtArm runs one protocol's cell: a calibration cycle followed by
// recoveryDebtJudged judged cycles.
func recoveryDebtArm(proto recovery.Protocol) (RecoveryDebtPoint, error) {
	p := RecoveryDebtPoint{Protocol: proto}
	db, err := seededDB(proto, 4, 4, defaultPages, 0)
	if err != nil {
		return p, err
	}
	d := debt.New(debt.Config{Nodes: db.M.Nodes(), LinesPerPage: db.Cfg.LinesPerPage})
	db.AttachDebt(d)
	mgr := txn.NewManager(db)

	// Cycle 0: calibrate. The pre-crash snapshot is discarded — the tracker
	// has no replay-rate sample yet.
	if _, _, _, err := recoveryDebtCycle(db, mgr, d, proto, 0); err != nil {
		return p, err
	}

	// Judged cycles: snapshot the calibrated estimate just before each
	// crash, measure the recovery it predicts, and keep the best ratio (the
	// accounting fields come from the first judged cycle — the one whose
	// sim-deterministic shape the double-run gate compares).
	var post debt.Snapshot
	for cycle := 0; cycle < recoveryDebtJudged; cycle++ {
		base := (cycle + 1) * (recoveryDebtRounds + 1)
		pre, cpost, wallNS, err := recoveryDebtCycle(db, mgr, d, proto, base)
		if err != nil {
			return p, err
		}
		post = cpost
		if cpost.DebtRecords != 0 {
			return p, fmt.Errorf("cycle %d: debt did not collapse after recovery: %d records above the safe point",
				cycle, cpost.DebtRecords)
		}
		est, wall := pre.EstParNS, wallNS
		if est < recoveryDebtNoiseNS {
			est = recoveryDebtNoiseNS
		}
		if wall < recoveryDebtNoiseNS {
			wall = recoveryDebtNoiseNS
		}
		ratio := float64(est) / float64(wall)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if cycle == 0 {
			p.DebtRecords = pre.DebtRecords
			p.DebtBytes = pre.DebtBytes
			p.RedoSpan = pre.RedoSpan
			p.Coverage = pre.Coverage
		}
		if cycle == 0 || ratio < p.Ratio {
			p.EstNS = pre.EstParNS
			p.WallNS = wallNS
			p.Ratio = ratio
		}
		if pre.EstParNS <= 0 {
			return p, fmt.Errorf("cycle %d: no calibrated estimate at the crash snapshot", cycle)
		}
	}

	p.ResidualDebt = post.DebtRecords
	p.Recoveries = post.Recoveries
	p.EwmaMTTRNS = post.EwmaWallNS
	if post.Failures != 0 {
		return p, fmt.Errorf("%d failed recoveries", post.Failures)
	}
	if want := int64(recoveryDebtJudged + 1); p.Recoveries != want {
		return p, fmt.Errorf("recoveries = %d, want %d", p.Recoveries, want)
	}

	// Debt must re-accumulate once the system resumes work.
	if _, err := depCensusRound(db, mgr, (recoveryDebtJudged+1)*(recoveryDebtRounds+1), true); err != nil {
		return p, err
	}
	p.ResumedDebt = d.Snapshot().DebtRecords
	if p.ResumedDebt <= p.ResidualDebt {
		return p, fmt.Errorf("debt did not re-accumulate after recovery (resumed %d)", p.ResumedDebt)
	}
	return p, nil
}

// recoveryDebtCycle drives committed convoy rounds plus one in-flight round,
// snapshots the tracker, crashes node 3 (the holder of every hopped line),
// recovers under wall timing, snapshots again (the residual-debt probe,
// before anything resumes), and settles the surviving transactions. base
// offsets the round payloads so the two cycles write distinct values.
func recoveryDebtCycle(db *recovery.DB, mgr *txn.Manager, d *debt.Tracker, proto recovery.Protocol, base int) (pre, post debt.Snapshot, wallNS int64, err error) {
	for round := 0; round < recoveryDebtRounds; round++ {
		if _, err := depCensusRound(db, mgr, base+round, true); err != nil {
			return pre, post, 0, err
		}
	}
	txs, err := depCensusRound(db, mgr, base+recoveryDebtRounds, false)
	if err != nil {
		return pre, post, 0, err
	}
	pre = d.Snapshot()

	victim := machine.NodeID(3)
	db.Crash(victim)
	start := time.Now()
	if _, err := db.Recover([]machine.NodeID{victim}); err != nil {
		return pre, post, 0, err
	}
	wallNS = time.Since(start).Nanoseconds()
	post = d.Snapshot()
	if !db.M.Alive(victim) { // the baseline reboot restarts every node itself
		if err := db.RestartNode(victim); err != nil {
			return pre, post, wallNS, err
		}
	}

	if proto.IFA() {
		// Survivors resume and commit (under the baseline recovery aborted
		// everything, including the survivors' in-flight transactions).
		for n := 0; n < 3; n++ {
			if err := txn.Retry(func() error {
				return txs[n].Write(heap.RID{Page: 1, Slot: uint16(n)}, []byte{byte(base + 8), byte(n)})
			}); err != nil {
				if errors.Is(err, txn.ErrDone) {
					continue
				}
				return pre, post, wallNS, err
			}
			if err := txs[n].Commit(); err != nil {
				return pre, post, wallNS, err
			}
		}
	}
	return pre, post, wallNS, nil
}

// Table renders the census.
func (r *RecoveryDebtResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "debt-recs", "debt-bytes", "redo-span", "coverage",
		"est", "measured", "ratio", "residual", "recoveries", "mttr-ewma",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Protocol.String(),
			fmt.Sprintf("%d", p.DebtRecords),
			fmt.Sprintf("%d", p.DebtBytes),
			fmt.Sprintf("%d", p.RedoSpan),
			pct(p.Coverage),
			us(p.EstNS),
			us(p.WallNS),
			fmt.Sprintf("%.2fx", p.Ratio),
			fmt.Sprintf("%d", p.ResidualDebt),
			fmt.Sprintf("%d", p.Recoveries),
			us(p.EwmaMTTRNS),
		)
	}
	return t.String()
}
