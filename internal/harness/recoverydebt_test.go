package harness

import (
	"strings"
	"testing"

	"smdb/internal/recovery"
)

// TestRunRecoveryDebt runs E24 end-to-end: every real protocol must clear
// the estimator-accuracy gate (RunRecoveryDebt fails past
// recoveryDebtMaxRatio), the attribution-coverage gate, the
// debt-collapses-after-recovery gate, and the double-run determinism gate —
// all enforced inside RunRecoveryDebt itself.
func TestRunRecoveryDebt(t *testing.T) {
	res, err := RunRecoveryDebt(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Points), len(recovery.Protocols()); got != want {
		t.Fatalf("census has %d points, want %d", got, want)
	}
	for _, p := range res.Points {
		if p.DebtRecords == 0 {
			t.Errorf("%v: no debt accumulated before the judged crash", p.Protocol)
		}
		if p.Coverage < recoveryDebtMinCoverage {
			t.Errorf("%v: coverage %.3f below gate %.2f", p.Protocol, p.Coverage, recoveryDebtMinCoverage)
		}
		if p.Ratio > recoveryDebtMaxRatio {
			t.Errorf("%v: estimate ratio %.2f past gate %.1f", p.Protocol, p.Ratio, recoveryDebtMaxRatio)
		}
		if p.ResidualDebt != 0 {
			t.Errorf("%v: residual debt %d after recovery", p.Protocol, p.ResidualDebt)
		}
		if p.ResumedDebt == 0 {
			t.Errorf("%v: debt did not re-accumulate after recovery", p.Protocol)
		}
		if want := int64(recoveryDebtJudged + 1); p.Recoveries != want {
			t.Errorf("%v: recoveries = %d, want %d", p.Protocol, p.Recoveries, want)
		}
	}
	table := res.Table()
	for _, want := range []string{"protocol", "debt-recs", "coverage", "est", "measured", "ratio", "mttr-ewma"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
