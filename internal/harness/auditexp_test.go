package harness

import (
	"strings"
	"testing"

	"smdb/internal/recovery"
)

func TestAuditOverheadShapes(t *testing.T) {
	res, err := RunAuditOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d, want 6 (3 protocols x off/on)", len(res.Points))
	}
	type key struct {
		proto   recovery.Protocol
		audited bool
	}
	byArm := map[key]AuditOverheadPoint{}
	for _, p := range res.Points {
		byArm[key{p.Protocol, p.Audited}] = p
		if p.Updates == 0 || p.WallNS <= 0 {
			t.Errorf("%v audited=%v: updates=%d wall=%dns", p.Protocol, p.Audited, p.Updates, p.WallNS)
		}
		// Bare arms carry no auditor, hence no census.
		if !p.Audited && (p.Violations != 0 || p.Completed != 0 || p.Windows != 0 || p.Anomalies != 0) {
			t.Errorf("%v bare arm reports a census: %+v", p.Protocol, p)
		}
	}
	// The real protocols audit clean on the very schedule that lights the
	// ablated control up.
	for _, proto := range []recovery.Protocol{recovery.StableEager, recovery.VolatileSelectiveRedo} {
		p := byArm[key{proto, true}]
		if p.Violations != 0 {
			t.Errorf("%v audited: %d violations, want 0", proto, p.Violations)
		}
		if p.Completed == 0 || p.Windows == 0 {
			t.Errorf("%v audited: trails=%d windows=%d, want both > 0", proto, p.Completed, p.Windows)
		}
	}
	abl := byArm[key{recovery.AblatedNoLBM, true}]
	if abl.Violations == 0 || abl.Unlogged == 0 {
		t.Errorf("ablated audited arm stayed clean: %+v", abl)
	}
	if abl.Unlogged > abl.Violations {
		t.Errorf("ablated: unlogged %d > total %d", abl.Unlogged, abl.Violations)
	}
	if abl.Anomalies == 0 {
		t.Errorf("ablated audited arm raised no watchdog anomaly: %+v", abl)
	}

	table := res.Table()
	for _, want := range []string{"overhead", "unlogged", "anomalies", "ablated/no-lbm"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
