package harness

import (
	"fmt"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/deps"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
)

// Experiment E17 is the dependency census: the recovery-dependency graph
// tracker watches the same line-hopping schedule under each LBM discipline
// and counts the cross-node dependencies transactions accumulate — and,
// crucially, how many are *unlogged* (the sole copy of an uncommitted
// update migrated away with no covering log record). Stable LBM forces the
// log before a line is exposed, so every edge is stable-covered; volatile
// LBM leaves a surviving volatile log record, so edges are covered but a
// crash still costs redo; the ablated no-LBM control defers logging to
// commit, exposing unlogged edges — which the final crash turns into doomed
// survivors, the hazard the explainer reports and LBM exists to prevent.
//
// The schedule is deterministic and deadlock-free by construction: the four
// nodes write *distinct record slots of the same cache lines*, so no record
// lock ever conflicts, but every write steals the line from the previous
// writer while that writer's transaction is still uncommitted — the
// dependency-forming event. (The random runner cannot drive the ablated
// control here: its deadlock victims need undo logging to abort, which is
// exactly what no-LBM lacks.)
type DepCensusPoint struct {
	Protocol recovery.Protocol
	Census   deps.Census
	// Verdicts counts the explainer's crash-time verdicts; Doomed the
	// doomed-survivor subset (nonzero only when IFA is lost).
	Verdicts, Doomed int
	// Aborted is the recovery's victim count, for scale.
	Aborted int
}

// DepCensusResult is the per-protocol sweep.
type DepCensusResult struct {
	Points []DepCensusPoint
}

// depCensusLines is how many distinct cache lines each round walks.
const depCensusLines = 6

// depCensusRound runs one round of the line-hopping schedule: every node
// begins a transaction, then for each line the nodes write their private
// slot in node order (each write migrating the line onward). When commit is
// false the transactions are left in flight and returned.
func depCensusRound(db *recovery.DB, mgr *txn.Manager, round int, commit bool) ([]*txn.Txn, error) {
	nodes := 4
	txs := make([]*txn.Txn, nodes)
	for n := 0; n < nodes; n++ {
		tx, err := mgr.Begin(machine.NodeID(n))
		if err != nil {
			return nil, err
		}
		txs[n] = tx
	}
	for l := 0; l < depCensusLines; l++ {
		for n := 0; n < nodes; n++ {
			rid := heap.RID{Page: storage.PageID(l + 1), Slot: uint16(n)}
			if err := txs[n].Write(rid, []byte{byte(2 + round), byte(n)}); err != nil {
				return nil, fmt.Errorf("round %d line %d node %d: %w", round, l, n, err)
			}
		}
	}
	if !commit {
		return txs, nil
	}
	for n, tx := range txs {
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("round %d node %d commit: %w", round, n, err)
		}
	}
	return nil, nil
}

// RunDepCensus runs the census for the representative protocols: one stable
// LBM, one volatile LBM, and the ablated negative control. Each run gets a
// private observer and tracker, drives two committed rounds plus one left
// in flight, then crashes the last node — the holder of every hopped line —
// and recovers.
func RunDepCensus(seed int64) (*DepCensusResult, error) {
	_ = seed // the schedule is deterministic; kept for the bench's uniform signature
	res := &DepCensusResult{}
	for _, proto := range []recovery.Protocol{
		recovery.StableEager,
		recovery.VolatileSelectiveRedo,
		recovery.AblatedNoLBM,
	} {
		db, err := seededDB(proto, 4, 4, defaultPages, 0)
		if err != nil {
			return nil, err
		}
		o := obs.NewWithCapacity(4096)
		db.AttachObserver(o)
		tr := deps.New(o)
		db.AttachDeps(tr)

		mgr := txn.NewManager(db)
		for round := 0; round < 2; round++ {
			if _, err := depCensusRound(db, mgr, round, true); err != nil {
				return nil, fmt.Errorf("depcensus %v: %w", proto, err)
			}
		}
		if _, err := depCensusRound(db, mgr, 2, false); err != nil {
			return nil, fmt.Errorf("depcensus %v: %w", proto, err)
		}

		// Node 3 wrote last on every line, so it holds them all; its crash
		// destroys the sole copies of the in-flight round's updates.
		victim := machine.NodeID(3)
		db.Crash(victim)
		rep, err := db.Recover([]machine.NodeID{victim})
		if err != nil {
			return nil, fmt.Errorf("depcensus %v recover: %w", proto, err)
		}

		p := DepCensusPoint{
			Protocol: proto,
			Census:   tr.Census(),
			Aborted:  len(rep.Aborted),
		}
		for _, v := range tr.Verdicts() {
			p.Verdicts++
			if v.Doomed {
				p.Doomed++
			}
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Table renders the census.
func (r *DepCensusResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "txns", "dep-edges", "unlogged", "txns-w/deps", "txns-w/unlogged",
		"mean-deps", "max-deps", "verdicts", "doomed", "aborted",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Protocol.String(),
			fmt.Sprintf("%d", p.Census.Txns),
			fmt.Sprintf("%d", p.Census.Edges),
			fmt.Sprintf("%d", p.Census.UnloggedEdges),
			fmt.Sprintf("%d", p.Census.TxnsWithDeps),
			fmt.Sprintf("%d", p.Census.TxnsWithUnlogged),
			fmt.Sprintf("%.2f", p.Census.MeanDeps()),
			fmt.Sprintf("%d", p.Census.MaxDeps),
			fmt.Sprintf("%d", p.Verdicts),
			fmt.Sprintf("%d", p.Doomed),
			fmt.Sprintf("%d", p.Aborted),
		)
	}
	return t.String()
}
