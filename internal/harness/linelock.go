package harness

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/obs"
)

// Experiment E2 reproduces the only measured numbers in the paper (section
// 5.1): the mean time to acquire a cache-line lock, under low contention
// (< 10 us on the KSR-1) and with up to 32 processors simultaneously
// hammering the same line (< 40 us). The simulated cost model is calibrated
// so these bands hold; the experiment's value is the contention *curve*.
type LineLockPoint struct {
	// Contenders is the number of processors cycling on one line lock.
	Contenders int
	// MeanNS / MaxNS are per-acquisition latency (request to grant) in
	// simulated nanoseconds.
	MeanNS, MaxNS int64
	// P50NS/P95NS/P99NS are latency quantiles from the observability
	// layer's line-lock histogram (each contention level gets a private
	// observer, so the distribution is per-level).
	P50NS, P95NS, P99NS int64
	// Acquisitions is the sample count.
	Acquisitions int
}

// LineLockResult is the contention sweep.
type LineLockResult struct {
	Points []LineLockPoint
}

// RunLineLock measures line-lock acquisition latency for each contention
// level. Each contender performs rounds acquire/(hold for holdNS)/release
// cycles on the same line; the deterministic round-robin driver plus the
// machine's simulated lock-queue chaining yields the same queueing behaviour
// a closed-loop hardware test does.
func RunLineLock(contentionLevels []int, rounds int, holdNS int64) (*LineLockResult, error) {
	if len(contentionLevels) == 0 {
		contentionLevels = []int{1, 2, 4, 8, 16, 32}
	}
	if rounds == 0 {
		rounds = 200
	}
	res := &LineLockResult{}
	for _, c := range contentionLevels {
		m := machine.New(machine.Config{Nodes: 32, Lines: 64})
		o := obs.New()
		m.SetObserver(o)
		l := m.Alloc(1)
		if err := m.Install(0, l, make([]byte, m.LineSize())); err != nil {
			return nil, err
		}
		var total, max int64
		n := 0
		for round := 0; round < rounds; round++ {
			for nd := machine.NodeID(0); int(nd) < c; nd++ {
				before := m.Clock(nd)
				if err := m.GetLine(nd, l); err != nil {
					return nil, err
				}
				lat := m.Clock(nd) - before
				total += lat
				if lat > max {
					max = lat
				}
				n++
				m.AdvanceClock(nd, holdNS)
				if err := m.ReleaseLine(nd, l); err != nil {
					return nil, err
				}
			}
		}
		hist := o.LineLockHist().Snapshot()
		res.Points = append(res.Points, LineLockPoint{
			Contenders:   c,
			MeanNS:       total / int64(n),
			MaxNS:        max,
			P50NS:        hist.Quantile(0.50),
			P95NS:        hist.Quantile(0.95),
			P99NS:        hist.Quantile(0.99),
			Acquisitions: n,
		})
	}
	return res, nil
}

// Table renders the sweep with the paper's reference bands.
func (r *LineLockResult) Table() string {
	t := &tableWriter{header: []string{"contenders", "mean", "p50", "p95", "p99", "max", "paper band"}}
	for _, p := range r.Points {
		band := ""
		switch {
		case p.Contenders == 1:
			band = "< 10us (low contention)"
		case p.Contenders == 32:
			band = "< 40us (32 processors)"
		}
		t.addRow(fmt.Sprintf("%d", p.Contenders), us(p.MeanNS),
			us(p.P50NS), us(p.P95NS), us(p.P99NS), us(p.MaxNS), band)
	}
	return t.String()
}
