package harness

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E7 tests the section 7 claim about write-broadcast coherency:
// under write-broadcast, ww sharing replicates lines instead of migrating
// them, so a crash destroys a line only if the crashed node held its sole
// copy. No surviving transaction's update is ever lost to a remote crash
// (redo at restart becomes unnecessary — only undo is required), which makes
// Selective Redo the natural scheme.
type BroadcastPoint struct {
	Coherency machine.Coherency
	// Migrations counts exclusive transfers (zero under write-broadcast).
	Migrations int64
	// LostLines is lines destroyed by the crash; RedoApplied is restart
	// redo work; UndoApplied restart undo work.
	LostLines, RedoApplied, UndoApplied int
	// Unnecessary is aborts beyond the crashed node's transactions.
	Unnecessary int
	// Violations is the IFA checker output length.
	Violations int
}

// BroadcastResult compares write-invalidate and write-broadcast.
type BroadcastResult struct {
	Points []BroadcastPoint
}

// RunBroadcast runs the same shared workload plus a one-node crash under
// both coherency protocols with Volatile LBM / Selective Redo.
func RunBroadcast(seed int64) (*BroadcastResult, error) {
	res := &BroadcastResult{}
	for _, coh := range []machine.Coherency{machine.WriteInvalidate, machine.WriteBroadcast} {
		db, err := seededDB(recovery.VolatileSelectiveRedo, 4, 4, defaultPages, coh)
		if err != nil {
			return nil, err
		}
		r := workload.NewRunner(db, workload.Spec{
			TxnsPerNode: 4, OpsPerTxn: 12,
			ReadFraction: 0.2, SharingFraction: 0.8, Seed: seed,
		})
		if _, err := r.RunUntilMidFlight(10); err != nil {
			return nil, err
		}
		victim := machine.NodeID(3)
		crashedTxns := len(db.ActiveTxns(victim))
		crash := db.Crash(victim)
		rep, err := db.Recover([]machine.NodeID{victim})
		if err != nil {
			return nil, fmt.Errorf("broadcast %v: %w", coh, err)
		}
		res.Points = append(res.Points, BroadcastPoint{
			Coherency:   coh,
			Migrations:  db.M.Stats().Migrations,
			LostLines:   len(crash.LostLines),
			RedoApplied: rep.RedoApplied,
			UndoApplied: rep.UndoApplied,
			Unnecessary: len(rep.Aborted) - crashedTxns,
			Violations:  len(db.CheckIFA(db.M.AliveNodes()[0])),
		})
	}
	return res, nil
}

// Table renders the comparison.
func (r *BroadcastResult) Table() string {
	t := &tableWriter{header: []string{
		"coherency", "migrations", "lost-lines", "redo", "undo", "unnecessary-aborts", "ifa-violations",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Coherency.String(),
			fmt.Sprintf("%d", p.Migrations),
			fmt.Sprintf("%d", p.LostLines),
			fmt.Sprintf("%d", p.RedoApplied),
			fmt.Sprintf("%d", p.UndoApplied),
			fmt.Sprintf("%d", p.Unnecessary),
			fmt.Sprintf("%d", p.Violations),
		)
	}
	return t.String()
}
