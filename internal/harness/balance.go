package harness

import (
	"fmt"
	"time"

	"smdb/internal/machine"
	"smdb/internal/obs/prof"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E23 isolates the work-stealing chunker's contribution to the
// E18 speedup: the same crash recovery runs twice at the same fan-out width,
// once with grain -1 (the legacy one-task-per-index dispatch) and once with
// the default weight-balanced chunks, and the profiler's per-worker busy/idle
// split is compared per phase. The redo/undo outcome is identical by the
// equivalence gate; what moves is how evenly the fixed amount of work lands
// on the workers — Imbalance (max/mean busy) and IdleFraction are the two
// numbers the chunker exists to push toward 1.0 and 0.0.

// WorkBalanceArm is one dispatch strategy's measurement.
type WorkBalanceArm struct {
	// Label names the arm; Grain is the Cfg.RecoveryStealGrain that selects
	// it (-1 = per-item dispatch, 0 = default balanced chunks).
	Label string `json:"label"`
	Grain int    `json:"grain"`
	// Wall is the host wall-clock makespan of Recover.
	Wall time.Duration `json:"wall_ns"`
	// RedoApplied pins that both arms did the same recovery work.
	RedoApplied int `json:"redo_applied"`
	// Phases is the per-phase worker balance summary.
	Phases []prof.PhaseBalance `json:"phases"`
}

// WorkBalanceResult is the A/B pair.
type WorkBalanceResult struct {
	Protocol       recovery.Protocol `json:"-"`
	Nodes, Victims int               `json:"-"`
	Workers        int               `json:"workers"`
	Arms           []WorkBalanceArm  `json:"arms"`
}

// RunWorkBalance measures per-item vs chunked dispatch on the E18 workload
// (8 nodes, heavy committed backlog, two-node crash) under Volatile Selective
// Redo at the given fan-out width (default 4).
func RunWorkBalance(seed int64, workers int) (*WorkBalanceResult, error) {
	if workers <= 0 {
		workers = 4
	}
	const nodes, pages = 8, 32
	proto := recovery.VolatileSelectiveRedo
	res := &WorkBalanceResult{Protocol: proto, Nodes: nodes, Victims: 2, Workers: workers}
	for _, arm := range []struct {
		label string
		grain int
	}{
		{"per-item", -1},
		{"chunked", 0},
	} {
		a, err := runWorkBalanceArm(proto, nodes, pages, workers, arm.grain, arm.label, seed)
		if err != nil {
			return nil, fmt.Errorf("workbalance %s: %w", arm.label, err)
		}
		res.Arms = append(res.Arms, a)
	}
	return res, nil
}

func runWorkBalanceArm(proto recovery.Protocol, nodes, pages, workers, grain int, label string, seed int64) (WorkBalanceArm, error) {
	db, err := parDB(proto, nodes, pages, workers)
	if err != nil {
		return WorkBalanceArm{}, err
	}
	db.Cfg.RecoveryStealGrain = grain
	pair := prof.NewPair(machine.StripeCount)
	db.AttachProf(pair)
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 12, OpsPerTxn: 8,
		ReadFraction: 0.2, SharingFraction: 0.5, Seed: seed,
	})
	if _, err := r.Run(); err != nil {
		return WorkBalanceArm{}, err
	}
	victims := []machine.NodeID{machine.NodeID(nodes - 1), machine.NodeID(nodes - 2)}
	db.Crash(victims...)
	start := time.Now()
	rep, err := db.Recover(victims)
	wall := time.Since(start)
	if err != nil {
		return WorkBalanceArm{}, err
	}
	if rep.Prof == nil {
		return WorkBalanceArm{}, fmt.Errorf("profiler attached but RecoveryReport.Prof is nil")
	}
	return WorkBalanceArm{
		Label:       label,
		Grain:       grain,
		Wall:        wall,
		RedoApplied: rep.RedoApplied,
		Phases:      rep.Prof.Workers.Balances(),
	}, nil
}

// Table renders the A/B with numeric imbalance/idle columns (the bench
// scripts parse these into the CI artifact, so the formats are stable).
func (r *WorkBalanceResult) Table() string {
	t := &tableWriter{header: []string{
		"arm", "phase", "workers", "tasks", "mean-busy", "max-busy", "imbalance", "idle-frac",
	}}
	for _, a := range r.Arms {
		for _, p := range a.Phases {
			t.addRow(
				a.Label,
				p.Phase,
				fmt.Sprintf("%d", p.Workers),
				fmt.Sprintf("%d", p.Tasks),
				prof.FormatNS(p.MeanBusyNS),
				prof.FormatNS(p.MaxBusyNS),
				fmt.Sprintf("%.3f", p.Imbalance),
				fmt.Sprintf("%.3f", p.IdleFraction),
			)
		}
	}
	out := t.String()
	for _, a := range r.Arms {
		out += fmt.Sprintf("%s: wall %.3fms, redo applied %d\n",
			a.Label, float64(a.Wall.Nanoseconds())/1e6, a.RedoApplied)
	}
	return out
}
