package harness

import (
	"fmt"

	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E14 examines access skew. The intuitive expectation — a hot
// set bouncing between nodes maximizes migration — turns out backwards
// under strict 2PL: the hot records' locks serialize access, so fewer
// distinct lines transfer per completed update as the hot set shrinks,
// while lock waits and deadlocks rise instead. Skew moves contention from
// the coherence fabric into the lock manager. The triggered Stable LBM
// force rate tracks the migration rate (not the update rate), so it
// follows the same downward curve, staying well below eager forcing at
// every skew level.
type HotspotPoint struct {
	Protocol recovery.Protocol
	// HotProb is the fraction of shared accesses hitting the hottest 5%
	// of the shared pool.
	HotProb float64
	// MigrationsPerUpdate is coherency migrations per update performed.
	MigrationsPerUpdate float64
	// ForcesPerKUpdate is physical log forces per 1000 updates.
	ForcesPerKUpdate float64
	// SimTimePerOp is mean simulated time per operation.
	SimTimePerOp int64
	// Deadlocks counts deadlock victims — where skewed contention goes.
	Deadlocks int
}

// HotspotResult is the sweep.
type HotspotResult struct {
	Points []HotspotPoint
}

// RunHotspot sweeps the hot-spot probability for the volatile and triggered
// protocols.
func RunHotspot(hotProbs []float64, seed int64) (*HotspotResult, error) {
	if len(hotProbs) == 0 {
		hotProbs = []float64{0.0, 0.5, 0.9}
	}
	res := &HotspotResult{}
	for _, proto := range []recovery.Protocol{recovery.VolatileSelectiveRedo, recovery.StableTriggered} {
		for _, hp := range hotProbs {
			db, err := seededDB(proto, 8, 4, defaultPages, 0)
			if err != nil {
				return nil, err
			}
			forces0 := totalLogForces(db)
			r := workload.NewRunner(db, workload.Spec{
				TxnsPerNode: 6, OpsPerTxn: 10,
				ReadFraction: 0.2, SharingFraction: 0.8,
				HotSpot: 0.05, HotProb: hp,
				Seed: seed,
			})
			wres, err := r.Run()
			if err != nil {
				return nil, fmt.Errorf("hotspot %v hp=%.1f: %w", proto, hp, err)
			}
			mst := db.M.Stats()
			p := HotspotPoint{
				Protocol:     proto,
				HotProb:      hp,
				SimTimePerOp: wres.SimTimePerOp,
				Deadlocks:    wres.Deadlocks,
			}
			if wres.Writes > 0 {
				p.MigrationsPerUpdate = float64(mst.Migrations) / float64(wres.Writes)
				p.ForcesPerKUpdate = 1000 * float64(totalLogForces(db)-forces0) / float64(wres.Writes)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *HotspotResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "hot-prob", "migrations/update", "forces/1k-updates", "deadlocks", "sim-time/op",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Protocol.String(),
			pct(p.HotProb),
			fmt.Sprintf("%.2f", p.MigrationsPerUpdate),
			fmt.Sprintf("%.1f", p.ForcesPerKUpdate),
			fmt.Sprintf("%d", p.Deadlocks),
			us(p.SimTimePerOp),
		)
	}
	return t.String()
}
