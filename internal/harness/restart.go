package harness

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E5 compares the restart-recovery cost of the two schemes of
// section 4.1.2 as a function of the redo backlog (committed work since the
// last checkpoint). Redo All discards every cache and replays everything;
// Selective Redo replays only what the crash actually destroyed, at the
// price of undo tagging during normal operation.
type RestartPoint struct {
	Protocol recovery.Protocol
	// Backlog is the number of updates since the last checkpoint.
	Backlog int
	// RedoApplied/RedoSkipped are restart redo decisions; UndoApplied is
	// undo work; TagScanLines the Selective Redo cache scan size.
	RedoApplied, RedoSkipped, UndoApplied, TagScanLines int
	// SimTime is the simulated recovery duration; Phases its breakdown into
	// recovery phases (freeze, lock rebuild, redo scan/probe/apply, ...).
	SimTime int64
	Phases  []obs.PhaseSpan
}

// RestartResult is the sweep.
type RestartResult struct {
	Points []RestartPoint
}

// RunRestart sweeps the post-checkpoint backlog for both volatile-LBM
// restart schemes, crashing one (mostly idle) node so that the work
// measured is recovery overhead rather than lost data. A non-nil observer
// is attached to every run (one trace process per sweep point), so the
// caller can export the whole sweep as one Chrome trace.
func RunRestart(backlogs []int, seed int64, o *obs.Observer) (*RestartResult, error) {
	if len(backlogs) == 0 {
		backlogs = []int{32, 128, 512}
	}
	res := &RestartResult{}
	for _, proto := range []recovery.Protocol{recovery.VolatileRedoAll, recovery.VolatileSelectiveRedo} {
		for _, backlog := range backlogs {
			p, err := runRestartOnce(proto, backlog, seed, o)
			if err != nil {
				return nil, fmt.Errorf("restart %v backlog=%d: %w", proto, backlog, err)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

func runRestartOnce(proto recovery.Protocol, backlog int, seed int64, o *obs.Observer) (RestartPoint, error) {
	nodes := 4
	db, err := seededDB(proto, nodes, 4, 32, 0)
	if err != nil {
		return RestartPoint{}, err
	}
	if o != nil {
		o.BeginProcess(fmt.Sprintf("restart %v backlog=%d", proto, backlog))
		db.AttachObserver(o)
	}
	// Build the backlog: committed updates after the seed checkpoint,
	// spread across the surviving nodes.
	opsPerTxn := 8
	txns := backlog / opsPerTxn
	perNode := txns / (nodes - 1)
	if perNode < 1 {
		perNode = 1
	}
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: perNode, OpsPerTxn: opsPerTxn,
		ReadFraction: 0, SharingFraction: 0.4, Seed: seed,
	})
	if _, err := r.Run(); err != nil {
		return RestartPoint{}, err
	}
	victim := machine.NodeID(nodes - 1)
	db.Crash(victim)
	rep, err := db.Recover([]machine.NodeID{victim})
	if err != nil {
		return RestartPoint{}, err
	}
	return RestartPoint{
		Protocol:     proto,
		Backlog:      backlog,
		RedoApplied:  rep.RedoApplied,
		RedoSkipped:  rep.RedoSkipped,
		UndoApplied:  rep.UndoApplied,
		TagScanLines: rep.TagScanLines,
		SimTime:      rep.SimTime,
		Phases:       rep.Phases,
	}, nil
}

// Table renders the sweep.
func (r *RestartResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "backlog", "redo-applied", "redo-skipped", "undo", "tag-scan-lines", "recovery-time", "phase-breakdown",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Protocol.String(),
			fmt.Sprintf("%d", p.Backlog),
			fmt.Sprintf("%d", p.RedoApplied),
			fmt.Sprintf("%d", p.RedoSkipped),
			fmt.Sprintf("%d", p.UndoApplied),
			fmt.Sprintf("%d", p.TagScanLines),
			ms(p.SimTime),
			obs.FormatPhases(p.Phases),
		)
	}
	return t.String()
}
