package harness

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E3 quantifies the paper's headline claim: without IFA, a
// single node crash aborts transactions on nodes that never failed (in the
// conventional design, *all* of them — the machine reboots); with the
// paper's protocols, only the crashed node's transactions abort, regardless
// of how aggressively cache lines were shared. The sweep varies the
// protocol, the number of records per cache line, and the fraction of
// shared accesses.
type AbortsPoint struct {
	Protocol        recovery.Protocol
	Nodes           int
	RecsPerLine     int
	SharingFraction float64
	// ActiveAtCrash is the number of in-flight transactions when one node
	// crashed; Aborted is how many recovery killed; Unnecessary is the
	// aborts beyond the crashed node's own transactions.
	ActiveAtCrash, Aborted, Unnecessary int
	// OrphanLines is how many shared-memory lines held crashed-node data
	// on survivors (the dependency surface the protocols must clean).
	OrphanLines int
	// Violations is the IFA-checker output length (must be 0 for IFA
	// protocols).
	Violations int
}

// AbortsResult is the sweep.
type AbortsResult struct {
	Points []AbortsPoint
}

// RunAborts sweeps protocols x records-per-line x sharing fraction on the
// given node count, crashing one node mid-flight each time.
func RunAborts(nodes int, recsPerLine []int, sharing []float64, seed int64) (*AbortsResult, error) {
	if len(recsPerLine) == 0 {
		recsPerLine = []int{1, 2, 4, 8}
	}
	if len(sharing) == 0 {
		sharing = []float64{0.0, 0.5, 1.0}
	}
	protos := append([]recovery.Protocol{recovery.BaselineFA}, IFAProtocols()...)
	res := &AbortsResult{}
	for _, proto := range protos {
		for _, rpl := range recsPerLine {
			for _, sh := range sharing {
				p, err := runAbortsOnce(proto, nodes, rpl, sh, seed)
				if err != nil {
					return nil, fmt.Errorf("aborts %v rpl=%d sh=%.1f: %w", proto, rpl, sh, err)
				}
				res.Points = append(res.Points, p)
			}
		}
	}
	return res, nil
}

func runAbortsOnce(proto recovery.Protocol, nodes, rpl int, sharing float64, seed int64) (AbortsPoint, error) {
	db, err := seededDB(proto, nodes, rpl, defaultPages, 0)
	if err != nil {
		return AbortsPoint{}, err
	}
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 4, OpsPerTxn: 16,
		ReadFraction: 0.3, SharingFraction: sharing, Seed: seed,
	})
	// Run until every node has a transaction well in flight.
	if _, err := r.RunUntilMidFlight(10); err != nil {
		return AbortsPoint{}, err
	}
	active := len(db.ActiveTxns(machine.NoNode))
	victim := machine.NodeID(nodes - 1)
	crashedTxns := len(db.ActiveTxns(victim))
	crash := db.Crash(victim)
	rep, err := db.Recover([]machine.NodeID{victim})
	if err != nil {
		return AbortsPoint{}, err
	}
	// Count only heap (database-object) lines as the dependency surface;
	// LCB-line orphans are reported by E10.
	orphanHeap := 0
	for _, l := range crash.OrphanedLines {
		if db.Store.Contains(l) {
			orphanHeap++
		}
	}
	p := AbortsPoint{
		Protocol:        proto,
		Nodes:           nodes,
		RecsPerLine:     rpl,
		SharingFraction: sharing,
		ActiveAtCrash:   active,
		Aborted:         len(rep.Aborted),
		Unnecessary:     len(rep.Aborted) - crashedTxns,
		OrphanLines:     orphanHeap,
	}
	if proto.IFA() {
		p.Violations = len(db.CheckIFA(db.M.AliveNodes()[0]))
	}
	return p, nil
}

// Table renders the sweep.
func (r *AbortsResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "recs/line", "sharing", "active", "aborted", "unnecessary", "orphan-lines", "ifa-violations",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Protocol.String(),
			fmt.Sprintf("%d", p.RecsPerLine),
			pct(p.SharingFraction),
			fmt.Sprintf("%d", p.ActiveAtCrash),
			fmt.Sprintf("%d", p.Aborted),
			fmt.Sprintf("%d", p.Unnecessary),
			fmt.Sprintf("%d", p.OrphanLines),
			fmt.Sprintf("%d", p.Violations),
		)
	}
	return t.String()
}
