package harness

import (
	"fmt"

	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// Experiment E8 compares SM locking (LCBs in shared memory, line-lock
// critical sections) against the shared-disk-style message-passing lock
// manager (sections 4.2.2, 7, and the companion report [20]): the
// performance gain of SM locking "stems from the elimination of all
// inter-process communication". The experiment also prices IFA's read-lock
// logging against the SD alternative (replicated lock tables).
type LocksPoint struct {
	Manager string
	Nodes   int
	// MeanAcquireNS / MeanReleaseNS are simulated per-operation costs.
	MeanAcquireNS, MeanReleaseNS int64
	// Messages is inter-node message round trips (SD only).
	Messages int64
	// LockLogRecords is logical lock log records written (SM under IFA).
	LockLogRecords int64
}

// LocksResult is the comparison across node counts.
type LocksResult struct {
	Points []LocksPoint
}

// RunLocks drives acquire/release pairs of distinct locks from every node
// under each manager and reports the mean simulated cost per operation.
func RunLocks(nodeCounts []int, opsPerNode int, seed int64) (*LocksResult, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{2, 8, 32}
	}
	if opsPerNode == 0 {
		opsPerNode = 200
	}
	res := &LocksResult{}
	for _, nodes := range nodeCounts {
		sm, err := runSMLocks(nodes, opsPerNode, lock.LogAllLocks)
		if err != nil {
			return nil, err
		}
		sm.Manager = "sm-locking (ifa: read locks logged)"
		res.Points = append(res.Points, sm)

		smNoLog, err := runSMLocks(nodes, opsPerNode, lock.LogWriteLocks)
		if err != nil {
			return nil, err
		}
		smNoLog.Manager = "sm-locking (write locks only)"
		res.Points = append(res.Points, smNoLog)

		for _, replicated := range []bool{false, true} {
			sd, err := runSDLocks(nodes, opsPerNode, replicated)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, sd)
		}
	}
	return res, nil
}

func runSMLocks(nodes, ops int, lm lock.LogMode) (LocksPoint, error) {
	m := machine.New(machine.Config{Nodes: nodes, Lines: 4096})
	logs := make([]*wal.Log, nodes)
	for i := range logs {
		var err error
		logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			return LocksPoint{}, err
		}
	}
	s, err := lock.NewSMManager(m, 2048, logs, lm)
	if err != nil {
		return LocksPoint{}, err
	}
	var acq, rel int64
	n := 0
	for op := 0; op < ops; op++ {
		for nd := machine.NodeID(0); int(nd) < nodes; nd++ {
			txn := wal.MakeTxnID(nd, uint64(op+1))
			// Draw names from a recurring pool, as record locking does.
			name := lockName(op, int(nd), nodes)
			mode := lock.Shared
			if op%2 == 0 {
				mode = lock.Exclusive
			}
			before := m.Clock(nd)
			if _, err := s.Acquire(nd, txn, name, mode); err != nil {
				return LocksPoint{}, err
			}
			acq += m.Clock(nd) - before
			before = m.Clock(nd)
			if err := s.Release(nd, txn, name); err != nil {
				return LocksPoint{}, err
			}
			rel += m.Clock(nd) - before
			n++
		}
	}
	return LocksPoint{
		Nodes:          nodes,
		MeanAcquireNS:  acq / int64(n),
		MeanReleaseNS:  rel / int64(n),
		LockLogRecords: s.Stats().LockLogs,
	}, nil
}

// lockName draws from a pool of 512 recurring lock names, spread so that
// concurrent requesters in one round use distinct names (no blocking).
func lockName(op, nd, nodes int) lock.Name {
	return lock.NameOfKey(uint64((op*nodes + nd) % 512))
}

func runSDLocks(nodes, ops int, replicated bool) (LocksPoint, error) {
	m := machine.New(machine.Config{Nodes: nodes, Lines: 64})
	s := lock.NewSDManager(m, replicated)
	var acq, rel int64
	n := 0
	for op := 0; op < ops; op++ {
		for nd := machine.NodeID(0); int(nd) < nodes; nd++ {
			txn := wal.MakeTxnID(nd, uint64(op+1))
			name := lockName(op, int(nd), nodes)
			mode := lock.Shared
			if op%2 == 0 {
				mode = lock.Exclusive
			}
			before := m.Clock(nd)
			if _, err := s.Acquire(nd, txn, name, mode); err != nil {
				return LocksPoint{}, err
			}
			acq += m.Clock(nd) - before
			before = m.Clock(nd)
			if err := s.Release(nd, txn, name); err != nil {
				return LocksPoint{}, err
			}
			rel += m.Clock(nd) - before
			n++
		}
	}
	name := "sd message-passing"
	if replicated {
		name = "sd message-passing (replicated)"
	}
	return LocksPoint{
		Manager:       name,
		Nodes:         nodes,
		MeanAcquireNS: acq / int64(n),
		MeanReleaseNS: rel / int64(n),
		Messages:      s.Stats().Messages,
	}, nil
}

// Table renders the comparison.
func (r *LocksResult) Table() string {
	t := &tableWriter{header: []string{
		"manager", "nodes", "mean-acquire", "mean-release", "messages", "lock-log-recs",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Manager,
			fmt.Sprintf("%d", p.Nodes),
			us(p.MeanAcquireNS),
			us(p.MeanReleaseNS),
			fmt.Sprintf("%d", p.Messages),
			fmt.Sprintf("%d", p.LockLogRecords),
		)
	}
	return t.String()
}
