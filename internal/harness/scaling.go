package harness

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E13 quantifies the paper's introduction and section 3.3
// argument for why IFA matters more as machines grow: "in very large
// systems if one node crash implies system failure, then the system could
// be down quite often", and "it is conceivable that a single node failure
// would affect thousands of active transactions" (the KSR-1 scaled to
// 1,088 nodes). The experiment crashes one node at increasing machine
// sizes and converts the measured aborts into yearly lost work under a
// fixed per-node MTBF: the baseline's loss grows quadratically with the
// node count (crash frequency x active transactions killed), the IFA
// protocols' only linearly (crash frequency x one node's transactions).
type ScalingPoint struct {
	Protocol recovery.Protocol
	Nodes    int
	// ActiveAtCrash transactions were in flight; Aborted were killed;
	// LostWrites is the update work rolled back.
	ActiveAtCrash, Aborted, LostWrites int
	// RecoverySimTime is the restart duration for this crash.
	RecoverySimTime int64
	// CrashesPerYear = Nodes * (365 / MTBFdays); LostWritesPerYear
	// extrapolates the measured per-crash loss.
	CrashesPerYear    float64
	LostWritesPerYear float64
}

// MTBFDays is the assumed per-node mean time between failures used for the
// yearly extrapolation (a deliberately conservative 90 days, motivated by
// the section 3.3 picture of users powering nodes down at will).
const MTBFDays = 90.0

// ScalingResult is the sweep.
type ScalingResult struct {
	Points []ScalingPoint
}

// RunScaling sweeps machine sizes for the baseline and the recommended IFA
// protocol.
func RunScaling(nodeCounts []int, seed int64) (*ScalingResult, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{4, 8, 16, 32, 64}
	}
	res := &ScalingResult{}
	for _, proto := range []recovery.Protocol{recovery.BaselineFA, recovery.VolatileSelectiveRedo} {
		for _, nodes := range nodeCounts {
			p, err := runScalingOnce(proto, nodes, seed)
			if err != nil {
				return nil, fmt.Errorf("scaling %v nodes=%d: %w", proto, nodes, err)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

func runScalingOnce(proto recovery.Protocol, nodes int, seed int64) (ScalingPoint, error) {
	// Heap scaled with the node count so per-node work stays comparable.
	pages := nodes * 4
	db, err := seededDB(proto, nodes, 4, pages, 0)
	if err != nil {
		return ScalingPoint{}, err
	}
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 4, OpsPerTxn: 12,
		ReadFraction: 0.3, SharingFraction: 0.5, Seed: seed,
	})
	if _, err := r.RunUntilMidFlight(8); err != nil {
		return ScalingPoint{}, err
	}
	active := len(db.ActiveTxns(machine.NoNode))
	victim := machine.NodeID(nodes - 1)
	db.Crash(victim)
	rep, err := db.Recover([]machine.NodeID{victim})
	if err != nil {
		return ScalingPoint{}, err
	}
	lost := 0
	for _, t := range rep.Aborted {
		lost += db.WriteCount(t)
	}
	crashesPerYear := float64(nodes) * 365.0 / MTBFDays
	return ScalingPoint{
		Protocol:          proto,
		Nodes:             nodes,
		ActiveAtCrash:     active,
		Aborted:           len(rep.Aborted),
		LostWrites:        lost,
		RecoverySimTime:   rep.SimTime,
		CrashesPerYear:    crashesPerYear,
		LostWritesPerYear: crashesPerYear * float64(lost),
	}, nil
}

// Table renders the sweep.
func (r *ScalingResult) Table() string {
	t := &tableWriter{header: []string{
		"protocol", "nodes", "active", "aborted", "lost-writes/crash", "recovery", "crashes/yr", "lost-writes/yr",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Protocol.String(),
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.ActiveAtCrash),
			fmt.Sprintf("%d", p.Aborted),
			fmt.Sprintf("%d", p.LostWrites),
			ms(p.RecoverySimTime),
			fmt.Sprintf("%.0f", p.CrashesPerYear),
			fmt.Sprintf("%.0f", p.LostWritesPerYear),
		)
	}
	return t.String()
}
