package harness

import "testing"

func TestHangRepro(t *testing.T) {
	if _, err := RunHotspot([]float64{0.5}, 1); err != nil {
		t.Fatal(err)
	}
}
