package harness

import (
	"fmt"

	"smdb/internal/recovery"
	"smdb/internal/workload"
)

// Experiment E4 measures the failure-free runtime cost of each protocol on
// an update-heavy shared workload (sections 4.1.1, 5, 7): the paper's claim
// is that Volatile LBM costs almost nothing beyond the baseline (the log
// record is written anyway; the line lock bounds it), while Stable LBM pays
// a log force per update (eager) or per migration of active data
// (triggered), which only NVRAM log devices make tolerable.
type RuntimePoint struct {
	Protocol recovery.Protocol
	NVRAM    bool
	// SimTimePerOp is mean simulated nanoseconds per record operation.
	SimTimePerOp int64
	// ThroughputTPS is committed transactions per simulated second.
	ThroughputTPS float64
	// PhysForces is the number of physical log forces during the run.
	PhysForces int64
	// Slowdown is SimTimePerOp relative to the baseline row.
	Slowdown float64
}

// RuntimeResult is the comparison.
type RuntimeResult struct {
	Points []RuntimePoint
	Spec   workload.Spec
}

// RunRuntime executes the same workload under every protocol (plus the
// stable protocols with an NVRAM log device) and reports per-op cost.
func RunRuntime(nodes int, sharing float64, seed int64) (*RuntimeResult, error) {
	spec := workload.Spec{
		TxnsPerNode: 8, OpsPerTxn: 10,
		ReadFraction: 0.2, SharingFraction: sharing, Seed: seed,
	}
	res := &RuntimeResult{Spec: spec}
	type cfg struct {
		proto recovery.Protocol
		nvram bool
	}
	cfgs := []cfg{
		{recovery.BaselineFA, false},
		{recovery.VolatileRedoAll, false},
		{recovery.VolatileSelectiveRedo, false},
		{recovery.StableEager, false},
		{recovery.StableTriggered, false},
		{recovery.StableEager, true},
		{recovery.StableTriggered, true},
	}
	var baseline int64
	for _, c := range cfgs {
		db, err := seededDB(c.proto, nodes, 4, defaultPages, 0)
		if err != nil {
			return nil, err
		}
		db.BM.NVRAMLog = c.nvram
		if c.nvram {
			// Rebuild with the NVRAM cost model for protocol-level
			// forces too.
			db.Cfg.NVRAMLog = true
		}
		forces0 := totalLogForces(db)
		start := db.M.MaxClock()
		r := workload.NewRunner(db, spec)
		wres, err := r.Run()
		if err != nil {
			return nil, fmt.Errorf("runtime %v: %w", c.proto, err)
		}
		elapsed := db.M.MaxClock() - start
		p := RuntimePoint{
			Protocol:     c.proto,
			NVRAM:        c.nvram,
			SimTimePerOp: wres.SimTimePerOp,
			PhysForces:   totalLogForces(db) - forces0,
		}
		if elapsed > 0 {
			p.ThroughputTPS = float64(wres.Committed) / (float64(elapsed) / 1e9)
		}
		if c.proto == recovery.BaselineFA {
			baseline = p.SimTimePerOp
		}
		if baseline > 0 {
			p.Slowdown = float64(p.SimTimePerOp) / float64(baseline)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Table renders the comparison.
func (r *RuntimeResult) Table() string {
	t := &tableWriter{header: []string{"protocol", "log-device", "sim-time/op", "txns/sim-sec", "phys-forces", "slowdown"}}
	for _, p := range r.Points {
		dev := "disk"
		if p.NVRAM {
			dev = "nvram"
		}
		t.addRow(
			p.Protocol.String(), dev,
			us(p.SimTimePerOp),
			fmt.Sprintf("%.0f", p.ThroughputTPS),
			fmt.Sprintf("%d", p.PhysForces),
			fmt.Sprintf("%.2fx", p.Slowdown),
		)
	}
	return t.String()
}
