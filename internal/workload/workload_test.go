package workload

import (
	"testing"

	"smdb/internal/machine"
	"smdb/internal/recovery"
)

func newDB(t *testing.T, proto recovery.Protocol, nodes int) *recovery.DB {
	t.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: nodes, Lines: 4096},
		Protocol:       proto,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          8,
		LockTableLines: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunCompletesAllTxns(t *testing.T) {
	db := newDB(t, recovery.VolatileSelectiveRedo, 4)
	r := NewRunner(db, Spec{TxnsPerNode: 5, OpsPerTxn: 6, ReadFraction: 0.5, SharingFraction: 0.3, Seed: 1})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Committed + res.Aborted; got != 4*5 {
		t.Errorf("finished %d transactions, want 20 (%s)", got, res)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Errorf("mix missing: %s", res)
	}
	if res.SimTime <= 0 || res.SimTimePerOp <= 0 {
		t.Errorf("no simulated time recorded: %s", res)
	}
	// Everything finished: IFA trivially holds pre-crash.
	if v := db.CheckIFA(0); len(v) != 0 {
		t.Errorf("post-run check: %v", v)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Result, machine.Stats) {
		db := newDB(t, recovery.VolatileSelectiveRedo, 3)
		r := NewRunner(db, Spec{TxnsPerNode: 4, OpsPerTxn: 5, ReadFraction: 0.4, SharingFraction: 0.6, Seed: 42})
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, db.M.Stats()
	}
	a, am := run()
	b, bm := run()
	if a != b {
		t.Errorf("results differ:\n%v\n%v", a, b)
	}
	if am != bm {
		t.Errorf("machine stats differ:\n%+v\n%+v", am, bm)
	}
}

func TestAbortFraction(t *testing.T) {
	db := newDB(t, recovery.VolatileRedoAll, 2)
	r := NewRunner(db, Spec{TxnsPerNode: 20, OpsPerTxn: 3, AbortFraction: 1.0, Seed: 7})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 0 || res.Aborted != 40 {
		t.Errorf("abort fraction not honored: %s", res)
	}
	if v := db.VerifyCommittedDurability(0); len(v) != 0 {
		t.Errorf("aborts corrupted committed state: %v", v)
	}
}

func TestSharingDrivesCoherencyTraffic(t *testing.T) {
	traffic := func(sharing float64) int64 {
		db := newDB(t, recovery.VolatileSelectiveRedo, 4)
		db.M.ResetStats()
		r := NewRunner(db, Spec{TxnsPerNode: 10, OpsPerTxn: 8, ReadFraction: 0.2, SharingFraction: sharing, Seed: 5})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		s := db.M.Stats()
		return s.Migrations + s.Downgrades + s.Invalidations
	}
	lo := traffic(0.0)
	hi := traffic(0.9)
	if hi <= lo {
		t.Errorf("coherency traffic: sharing=0.9 gives %d, sharing=0 gives %d; want more with sharing", hi, lo)
	}
}

func TestMidFlightCrashWithWorkload(t *testing.T) {
	db := newDB(t, recovery.VolatileSelectiveRedo, 4)
	r := NewRunner(db, Spec{TxnsPerNode: 6, OpsPerTxn: 10, ReadFraction: 0.3, SharingFraction: 0.7, Seed: 11})
	if _, err := r.RunUntilMidFlight(12); err != nil {
		t.Fatal(err)
	}
	active := db.ActiveTxns(machine.NoNode)
	if len(active) == 0 {
		t.Fatal("no transactions in flight")
	}
	db.Crash(2)
	if _, err := db.Recover([]machine.NodeID{2}); err != nil {
		t.Fatal(err)
	}
	if v := db.CheckIFA(0); len(v) != 0 {
		for _, s := range v {
			t.Errorf("IFA violation: %s", s)
		}
	}
}
