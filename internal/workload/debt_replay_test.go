package workload

import (
	"reflect"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/obs/debt"
	"smdb/internal/recovery"
	"smdb/internal/sched"
)

// TestChaosReplayDeterministicWithDebt re-runs the record/replay gate with a
// recovery-debt tracker attached: the tracker rides every WAL append, force,
// dirty-line transition, and recovery, and must neither perturb the recorded
// interleaving nor drift itself — a replay has to reproduce the recording's
// sim-deterministic debt accounting exactly (wall-clock-derived estimator
// fields are excluded by design; the estimator calibrates from real time).
func TestChaosReplayDeterministicWithDebt(t *testing.T) {
	proto := recovery.VolatileSelectiveRedo
	attach := func(db *recovery.DB) *debt.Tracker {
		d := debt.New(debt.Config{Nodes: db.M.Nodes(), LinesPerPage: db.Cfg.LinesPerPage})
		db.AttachDebt(d)
		return d
	}
	type accounting struct {
		records, bytes, span int64
		coverage             float64
		recoveries, failures int64
	}
	account := func(d *debt.Tracker) accounting {
		s := d.Snapshot()
		return accounting{s.DebtRecords, s.DebtBytes, s.RedoSpan, s.Coverage, s.Recoveries, s.Failures}
	}

	for seed := int64(1); seed <= 2; seed++ {
		db0 := chaosDB(t, proto, 4)
		d0 := attach(db0)
		rec := sched.NewRecorder()
		res0, err := RunChaosSession(db0, fault.New(chaosPlan(seed)), chaosSpec(seed), 3, rec)
		if err != nil {
			t.Fatalf("record run (seed %d): %v", seed, err)
		}
		schedule := rec.Schedule()
		img0 := imageHash(t, db0)
		acc0 := account(d0)
		if acc0.records == 0 && acc0.recoveries == 0 {
			t.Fatalf("seed %d: tracker saw no traffic at all: %+v", seed, acc0)
		}

		db1 := chaosDB(t, proto, 4)
		d1 := attach(db1)
		res1, err := RunChaosSession(db1, fault.New(chaosPlan(schedule.FaultSeed)),
			chaosSpec(schedule.Seed), 0, sched.NewReplayer(schedule))
		if err != nil {
			t.Fatalf("replay run (seed %d): %v", seed, err)
		}
		if !reflect.DeepEqual(res0, res1) {
			t.Errorf("seed %d: replay diverged from recording with debt attached:\n  rec %+v\n  rep %+v",
				seed, res0, res1)
		}
		if img1 := imageHash(t, db1); img0 != img1 {
			t.Errorf("seed %d: replay image differs from recording's", seed)
		}
		if acc1 := account(d1); acc0 != acc1 {
			t.Errorf("seed %d: replay debt accounting diverged:\n  rec %+v\n  rep %+v", seed, acc0, acc1)
		}
	}
}
