//go:build race

package workload

// raceEnabled reports whether this test binary was built with the race
// detector; see race_off_test.go for the other half.
const raceEnabled = true
