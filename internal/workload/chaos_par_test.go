package workload

import (
	"strings"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/recovery"
)

// TestChaosParallelRecovery runs the seeded chaos sweep with the parallel
// recovery pipeline enabled: in-recovery crashes, torn forces, and transient
// I/O errors now land inside (or between) fanned-out phases, so this is the
// race and error-path coverage for parrestart.go under live fault injection.
func TestChaosParallelRecovery(t *testing.T) {
	protos := []recovery.Protocol{
		recovery.VolatileRedoAll,
		recovery.VolatileSelectiveRedo,
		recovery.StableEager,
		recovery.StableTriggered,
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				db := chaosDB(t, proto, 5)
				db.Cfg.RecoveryWorkers = 4
				attachTracker(db)
				inj := fault.New(fault.Plan{
					Seed:              seed,
					PCrashAtMigration: 0.02,
					PCrashAtUpdate:    0.01,
					PTornForce:        0.02,
					PCrashInRecovery:  0.3,
					PCoordinatorCrash: 0.5,
					PIOError:          0.05,
					MaxCrashes:        2,
				})
				res, err := RunChaos(db, inj, chaosSpec(seed), 3)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(res.Violations) != 0 {
					t.Errorf("seed %d: IFA violations under %v with parallel recovery:\n%s",
						seed, proto, strings.Join(res.Violations, "\n"))
				}
				if res.RecoveryAttempts < res.Episodes {
					t.Errorf("seed %d: %d recovery attempts over %d episodes",
						seed, res.RecoveryAttempts, res.Episodes)
				}
			}
		})
	}
}
