package workload

import (
	"fmt"
	"time"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/recovery"
)

// RunChaos drives seeded crash/recover episodes: each episode runs the
// concurrent workload with the fault injector armed, waits for an injected
// failure (crashing a node itself if the schedule fired none), runs restart
// recovery with faults still live — so recovery must survive coordinator
// crashes and flaky I/O — and then asserts the IFA checker before restarting
// the dead nodes for the next episode. The injector's single PRNG stream
// makes the fault schedule reproducible from its seed.

// ChaosResult aggregates one seeded chaos run.
type ChaosResult struct {
	Seed     int64
	Episodes int
	// Fault-side counts, from the injector.
	CrashesInjected, TornForces, RecoveryCrashes, IOErrors int
	// ForcedCrashes counts episodes where the schedule fired nothing and
	// the harness crashed a node itself so recovery still ran.
	ForcedCrashes int
	// Recovery-side counts, summed over episodes.
	RecoveryAttempts, CoordinatorFailovers int
	// Workload-side counts, summed over episodes.
	Committed, Aborted int
	// Violations holds every IFA-checker complaint, prefixed with its
	// episode (empty = the protocol survived the whole schedule).
	Violations []string
}

func (r ChaosResult) String() string {
	return fmt.Sprintf("seed=%d episodes=%d crashes=%d (forced=%d) torn=%d recoveryCrashes=%d ioErrors=%d attempts=%d failovers=%d committed=%d aborted=%d violations=%d",
		r.Seed, r.Episodes, r.CrashesInjected, r.ForcedCrashes, r.TornForces,
		r.RecoveryCrashes, r.IOErrors, r.RecoveryAttempts, r.CoordinatorFailovers,
		r.Committed, r.Aborted, len(r.Violations))
}

// chaosDownNodes lists the currently dead nodes.
func chaosDownNodes(db *recovery.DB) []machine.NodeID {
	var out []machine.NodeID
	for n := machine.NodeID(0); int(n) < db.M.Nodes(); n++ {
		if !db.M.Alive(n) {
			out = append(out, n)
		}
	}
	return out
}

// RunChaos seeds the database, then runs `episodes` crash/recover episodes
// of spec under the injector's fault schedule. It returns the aggregate
// result; the error is non-nil only for harness failures (a wedged episode
// or an unrecoverable engine error), never for IFA violations — those are
// reported in the result so callers (and the -broken negative control) can
// assert either way.
func RunChaos(db *recovery.DB, inj *fault.Injector, spec Spec, episodes int) (ChaosResult, error) {
	res := ChaosResult{Seed: inj.Plan().Seed}
	if err := Seed(db, spec.HeapPages); err != nil {
		return res, fmt.Errorf("workload: chaos seeding: %w", err)
	}
	db.AttachFaults(inj)
	defer db.AttachFaults(nil)
	defer inj.Disarm()

	for ep := 0; ep < episodes; ep++ {
		res.Episodes++
		epSpec := spec
		epSpec.Seed = spec.Seed + int64(ep)*9973
		runner := NewRunner(db, epSpec)
		inj.ResetEpisode()
		inj.Arm()

		type runOut struct {
			res Result
			err error
		}
		stop := make(chan struct{})
		out := make(chan runOut, 1)
		go func() {
			r, err := runner.RunConcurrent(stop)
			out <- runOut{r, err}
		}()

		// Wait for a fault to freeze the system, or for the workload to
		// drain without one.
		var ro runOut
		got := false
		deadline := time.Now().Add(60 * time.Second)
		for !got && !db.Frozen() {
			select {
			case ro = <-out:
				got = true
			case <-time.After(200 * time.Microsecond):
				if time.Now().After(deadline) {
					close(stop)
					return res, fmt.Errorf("workload: chaos episode %d wedged (no crash, no completion)", ep)
				}
			}
		}
		close(stop)
		if !got {
			ro = <-out
		}
		if ro.err != nil && !db.Cfg.Protocol.DeferredLogging() {
			// The deferred-logging negative control legitimately fails
			// mid-workload (it cannot abort); real protocols must not.
			return res, fmt.Errorf("workload: chaos episode %d: %w", ep, ro.err)
		}
		res.Committed += ro.res.Committed
		res.Aborted += ro.res.Aborted

		// If the schedule fired no crash this episode, crash a node
		// ourselves — every episode must exercise recovery.
		if !db.Frozen() {
			alive := db.M.AliveNodes()
			if len(alive) > 1 {
				db.Crash(alive[len(alive)-1])
				res.ForcedCrashes++
			} else {
				inj.Disarm()
				continue
			}
		}

		down := chaosDownNodes(db)
		rep, err := db.Recover(down)
		if err != nil {
			return res, fmt.Errorf("workload: chaos episode %d recovery: %w", ep, err)
		}
		res.RecoveryAttempts += rep.Attempts
		res.CoordinatorFailovers += rep.CoordinatorFailovers

		// The checker must not draw injected I/O errors, and the stranded-
		// transaction cleanup below is harness bookkeeping, not workload.
		inj.Disarm()

		// Recovery rightly leaves the survivors' in-flight transactions
		// alone — that is the point of isolated failure atomicity — but the
		// interrupted workload's worker goroutines are gone, so nobody will
		// ever finish them, and under strict 2PL their locks would starve
		// every later episode. Roll them back; the deferred-logging negative
		// control cannot (it logged no undo information), so it only sheds
		// their locks.
		for _, t := range db.ActiveTxns(machine.NoNode) {
			nd := t.Node()
			if !db.M.Alive(nd) {
				continue
			}
			if err := db.Abort(nd, t); err != nil && !db.Cfg.Protocol.DeferredLogging() {
				return res, fmt.Errorf("workload: chaos episode %d rollback of stranded %v: %w", ep, t, err)
			}
			for _, name := range db.HeldLocks(t) {
				_ = db.Locks.Release(nd, t, name)
			}
		}

		coord := db.M.AliveNodes()[0]
		for _, v := range db.CheckIFA(coord) {
			res.Violations = append(res.Violations, fmt.Sprintf("episode %d: %s", ep, v))
		}
		for _, n := range chaosDownNodes(db) {
			if err := db.RestartNode(n); err != nil {
				return res, fmt.Errorf("workload: chaos episode %d restart of node %d: %w", ep, n, err)
			}
		}
	}

	st := inj.Stats()
	res.CrashesInjected = st.Crashes
	res.TornForces = st.TornForces
	res.RecoveryCrashes = st.RecoveryCrashes
	res.IOErrors = st.IOErrors
	return res, nil
}
