package workload

import (
	"fmt"
	"io"
	"strings"
	"time"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/obs/audit"
	"smdb/internal/obs/deps"
	"smdb/internal/recovery"
	"smdb/internal/sched"
)

// RunChaos drives seeded crash/recover episodes: each episode runs the
// concurrent workload with the fault injector armed, waits for an injected
// failure (crashing a node itself if the schedule fired none), runs restart
// recovery with faults still live — so recovery must survive coordinator
// crashes and flaky I/O — and then asserts the IFA checker before restarting
// the dead nodes for the next episode. The injector's single PRNG stream
// makes the fault schedule reproducible from its seed.

// ChaosResult aggregates one seeded chaos run.
type ChaosResult struct {
	Seed     int64
	Episodes int
	// Fault-side counts, from the injector.
	CrashesInjected, TornForces, RecoveryCrashes, IOErrors int
	// ForcedCrashes counts episodes where the schedule fired nothing and
	// the harness crashed a node itself so recovery still ran.
	ForcedCrashes int
	// Recovery-side counts, summed over episodes.
	RecoveryAttempts, CoordinatorFailovers int
	// Workload-side counts, summed over episodes.
	Committed, Aborted int
	// Violations holds every IFA-checker complaint, prefixed with its
	// episode (empty = the protocol survived the whole schedule).
	Violations []string
	// Explainer cross-check, populated when a dependency tracker is
	// attached (db.AttachDeps): Verdicts counts IFA-explainer verdicts
	// consumed, DoomedVerdicts the survivor verdicts predicting an unlogged
	// lost update (the no-LBM hazard; structurally impossible under real
	// protocols), and ExplainMismatches every disagreement between the
	// explainer and the IFA checker — recovery aborts with no crashed-node
	// verdict, doomed predictions under an IFA protocol, or checker-found
	// survivor losses the explainer missed.
	Verdicts, DoomedVerdicts int
	ExplainMismatches        []string
	// Online-auditor census, populated when an auditor is attached
	// (db.AttachAudit): AuditViolations counts the typed LBM violations the
	// auditor raised *during* the workload, AuditAnomalies the time-series
	// watchdog's findings. Auditor/checker disagreements (a violation under
	// an IFA protocol, or a checker-confirmed lost update the auditor never
	// saw exposed) are folded into ExplainMismatches.
	AuditViolations, AuditAnomalies int
}

func (r ChaosResult) String() string {
	s := fmt.Sprintf("seed=%d episodes=%d crashes=%d (forced=%d) torn=%d recoveryCrashes=%d ioErrors=%d attempts=%d failovers=%d committed=%d aborted=%d violations=%d",
		r.Seed, r.Episodes, r.CrashesInjected, r.ForcedCrashes, r.TornForces,
		r.RecoveryCrashes, r.IOErrors, r.RecoveryAttempts, r.CoordinatorFailovers,
		r.Committed, r.Aborted, len(r.Violations))
	if r.Verdicts > 0 {
		s += fmt.Sprintf(" verdicts=%d doomed=%d mismatches=%d",
			r.Verdicts, r.DoomedVerdicts, len(r.ExplainMismatches))
	}
	if r.AuditViolations > 0 || r.AuditAnomalies > 0 {
		s += fmt.Sprintf(" auditViolations=%d auditAnomalies=%d",
			r.AuditViolations, r.AuditAnomalies)
	}
	return s
}

// chaosDownNodes lists the currently dead nodes.
func chaosDownNodes(db *recovery.DB) []machine.NodeID {
	var out []machine.NodeID
	for n := machine.NodeID(0); int(n) < db.M.Nodes(); n++ {
		if !db.M.Alive(n) {
			out = append(out, n)
		}
	}
	return out
}

// ErrScheduleDiverged reports that a replayed chaos run's control flow left
// the recorded schedule (typical for shrink candidates whose dropped
// decisions change the interleaving). The run's results are meaningless.
var ErrScheduleDiverged = fmt.Errorf("workload: chaos replay diverged from recorded schedule")

// RunChaos seeds the database, then runs `episodes` crash/recover episodes
// of spec under the injector's fault schedule. It returns the aggregate
// result; the error is non-nil only for harness failures (a wedged episode
// or an unrecoverable engine error), never for IFA violations — those are
// reported in the result so callers (and the -broken negative control) can
// assert either way.
func RunChaos(db *recovery.DB, inj *fault.Injector, spec Spec, episodes int) (ChaosResult, error) {
	return RunChaosSession(db, inj, spec, episodes, nil)
}

// RunChaosSession is RunChaos under an optional schedule session: a
// recording session captures every nondeterministic decision of the run
// into a sched.Schedule; a replaying session re-executes a recorded one
// deterministically (episodes then comes from the schedule, and the
// episode count argument is ignored). A nil session is plain RunChaos.
func RunChaosSession(db *recovery.DB, inj *fault.Injector, spec Spec, episodes int, sess *sched.Session) (ChaosResult, error) {
	res := ChaosResult{Seed: inj.Plan().Seed}
	if sess != nil && db.Cfg.RecoveryWorkers > 1 {
		// Parallel recovery assigns versions in worker order; a schedule
		// recorded (or replayed) over it could never reproduce.
		return res, fmt.Errorf("workload: chaos record/replay requires sequential recovery (RecoveryWorkers <= 1, have %d)", db.Cfg.RecoveryWorkers)
	}
	if sess.Replaying() {
		episodes = sess.EpisodePoints()
	}
	if err := Seed(db, spec.HeapPages); err != nil {
		return res, fmt.Errorf("workload: chaos seeding: %w", err)
	}
	if sess != nil {
		sess.SetRunInfo(spec.Seed, inj.Plan().Seed, db.Cfg.Protocol.String(), db.M.Nodes())
		ds := spec
		ds.setDefaults()
		plan := inj.Plan()
		sess.SetSpec(sched.RunSpec{
			TxnsPerNode:     ds.TxnsPerNode,
			OpsPerTxn:       ds.OpsPerTxn,
			ReadFraction:    ds.ReadFraction,
			SharingFraction: ds.SharingFraction,
			HotSpot:         ds.HotSpot,
			HotProb:         ds.HotProb,
			AbortFraction:   ds.AbortFraction,
			HeapPages:       ds.HeapPages,
			MaxCrashes:      plan.MaxCrashes,
			MinAlive:        plan.MinAlive,
			IOErrorBurst:    plan.IOErrorBurst,
			PIOError:        plan.PIOError,
			GroupForce:      db.Cfg.GroupCommitForces,
		})
		db.AttachSched(sess)
		defer db.AttachSched(nil)
		inj.SetSched(sess)
		defer inj.SetSched(nil)
		defer sess.Disarm()
		// Every flight dump taken during this run (IFA violations above all)
		// carries the schedule as recorded so far — including the failing
		// episode's index and derived seed — so the dump is its own repro.
		if fr := db.FlightRecorder(); fr != nil {
			fr.SetAux("schedule.json", func(w io.Writer) error {
				return sess.Schedule().WriteJSON(w)
			})
			defer fr.SetAux("schedule.json", nil)
		}
	}
	db.AttachFaults(inj)
	defer db.AttachFaults(nil)
	defer inj.Disarm()

	prevAuditViol := 0
	for ep := 0; ep < episodes; ep++ {
		res.Episodes++
		// Episodes carry their ORIGINAL index (and thus their derived seed)
		// through the schedule, so a shrunk schedule that drops episodes
		// still replays the survivors with the right per-episode seeds.
		epOrig := ep
		epSpec := spec
		inj.ResetEpisode()
		inj.Arm()
		if sess != nil {
			sess.Arm()
			epOrig = sess.BeginEpisode(ep, spec.Seed+int64(ep)*9973)
		}
		epSpec.Seed = spec.Seed + int64(epOrig)*9973
		runner := NewRunner(db, epSpec)
		runner.Sched = sess

		type runOut struct {
			res Result
			err error
		}
		stop := make(chan struct{})
		out := make(chan runOut, 1)
		go func() {
			r, err := runner.RunConcurrent(stop)
			out <- runOut{r, err}
		}()

		// Wait for a fault to freeze the system, or for the workload to
		// drain without one. A replay needs no polling: the workers' stop
		// observations come from the schedule, so they terminate on their
		// own at exactly the recorded steps.
		var ro runOut
		if sess.Replaying() {
			ro = <-out
			close(stop)
		} else {
			got := false
			deadline := time.Now().Add(60 * time.Second)
			for !got && !db.Frozen() {
				select {
				case ro = <-out:
					got = true
				case <-time.After(200 * time.Microsecond):
					if time.Now().After(deadline) {
						close(stop)
						return res, fmt.Errorf("workload: chaos episode %d (seed %d) wedged (no crash, no completion)", epOrig, epSpec.Seed)
					}
				}
			}
			close(stop)
			if !got {
				ro = <-out
			}
		}
		// The workers are gone; the harness phase (recovery, rollback,
		// checking) below must run unscheduled.
		sess.Disarm()
		if d, msg := sess.Diverged(); d {
			return res, fmt.Errorf("%w: %s", ErrScheduleDiverged, msg)
		}
		if ro.err != nil && !db.Cfg.Protocol.DeferredLogging() {
			// The deferred-logging negative control legitimately fails
			// mid-workload (it cannot abort); real protocols must not.
			return res, fmt.Errorf("workload: chaos episode %d (seed %d): %w", epOrig, epSpec.Seed, ro.err)
		}
		res.Committed += ro.res.Committed
		res.Aborted += ro.res.Aborted

		// If the schedule fired no crash this episode, crash a node
		// ourselves — every episode must exercise recovery.
		if !db.Frozen() {
			alive := db.M.AliveNodes()
			if len(alive) > 1 {
				db.Crash(alive[len(alive)-1])
				res.ForcedCrashes++
			} else {
				inj.Disarm()
				continue
			}
		}

		down := chaosDownNodes(db)
		rep, err := db.Recover(down)
		if err != nil {
			return res, fmt.Errorf("workload: chaos episode %d (seed %d) recovery: %w", epOrig, epSpec.Seed, err)
		}
		res.RecoveryAttempts += rep.Attempts
		res.CoordinatorFailovers += rep.CoordinatorFailovers

		// The checker must not draw injected I/O errors, and the stranded-
		// transaction cleanup below is harness bookkeeping, not workload.
		inj.Disarm()

		// Recovery rightly leaves the survivors' in-flight transactions
		// alone — that is the point of isolated failure atomicity — but the
		// interrupted workload's worker goroutines are gone, so nobody will
		// ever finish them, and under strict 2PL their locks would starve
		// every later episode. Roll them back; the deferred-logging negative
		// control cannot (it logged no undo information), so it only sheds
		// their locks.
		for _, t := range db.ActiveTxns(machine.NoNode) {
			nd := t.Node()
			if !db.M.Alive(nd) {
				continue
			}
			if err := db.Abort(nd, t); err != nil && !db.Cfg.Protocol.DeferredLogging() {
				return res, fmt.Errorf("workload: chaos episode %d (seed %d) rollback of stranded %v: %w", epOrig, epSpec.Seed, t, err)
			}
			for _, name := range db.HeldLocks(t) {
				_ = db.Locks.Release(nd, t, name)
			}
		}

		coord := db.M.AliveNodes()[0]
		epViolations := db.CheckIFA(coord)
		for _, v := range epViolations {
			res.Violations = append(res.Violations, fmt.Sprintf("episode %d: %s", epOrig, v))
		}
		crossCheckExplainer(db, rep, epViolations, epOrig, &res)
		prevAuditViol = crossCheckAuditor(db, epViolations, epOrig, prevAuditViol, &res)
		if len(epViolations) > 0 {
			// Stamp the failing episode (and its derived seed) into the
			// schedule being recorded, so the violation dump below — and the
			// schedule file itself — carries its own repro coordinates.
			sess.NoteFailure(epOrig, epSpec.Seed)
			// A checker violation is exactly what the flight recorder exists
			// for: preserve the evidence before the episode state is reset.
			_, _ = db.DumpFlight(fmt.Sprintf("ifa-violation-ep%d", epOrig))
		}
		for _, n := range chaosDownNodes(db) {
			if err := db.RestartNode(n); err != nil {
				return res, fmt.Errorf("workload: chaos episode %d (seed %d) restart of node %d: %w", epOrig, epSpec.Seed, n, err)
			}
		}
	}

	st := inj.Stats()
	res.CrashesInjected = st.Crashes
	res.TornForces = st.TornForces
	res.RecoveryCrashes = st.RecoveryCrashes
	res.IOErrors = st.IOErrors
	if a := db.Audit(); a != nil {
		sum := a.Summary()
		res.AuditViolations = sum.Violations
		res.AuditAnomalies = sum.Anomalies
	}
	return res, nil
}

// crossCheckAuditor reconciles the online IFA auditor's typed violations —
// raised at exposure instants, while the workload runs — against the
// crash-time ground truth, and returns the new cumulative violation count.
// The two monitors approach the same invariant from opposite ends: the
// auditor flags the cause (a dirty line leaving its writer's failure domain
// without log coverage), the checker the effect (an update actually lost).
// No-op when no auditor is attached.
func crossCheckAuditor(db *recovery.DB, violations []string, ep, prev int, res *ChaosResult) int {
	a := db.Audit()
	if a == nil {
		return prev
	}
	sum := a.Summary()
	mism := func(format string, args ...any) {
		res.ExplainMismatches = append(res.ExplainMismatches,
			fmt.Sprintf("episode %d: ", ep)+fmt.Sprintf(format, args...))
	}
	delta := sum.Violations - prev

	// Rule A: under an IFA protocol the LBM invariant holds by construction,
	// so any online violation is an auditor false positive.
	if delta > 0 && db.Cfg.Protocol.IFA() {
		mism("online auditor raised %d violation(s) under IFA protocol %v", delta, db.Cfg.Protocol)
	}

	// Rule B: when the checker catches a survivor's lost update (the no-LBM
	// hazard), its cause — an unlogged dirty line leaving its failure
	// domain — must have been visible to the auditor before the crash.
	lost := 0
	for _, viol := range violations {
		if strings.Contains(viol, "update lost") {
			lost++
		}
	}
	if lost > 0 && sum.ViolationsByKind[audit.ViolationUnlogged] == 0 {
		mism("checker found %d lost survivor update(s) but the online auditor flagged no unlogged exposure", lost)
	}

	if delta > 0 && len(violations) == 0 {
		// The auditor saw a hazard this episode's crashes did not happen to
		// convert into data loss; preserve the evidence trails while fresh.
		_, _ = db.DumpFlight(fmt.Sprintf("audit-violation-ep%d", ep))
	}
	return sum.Violations
}

// crossCheckExplainer reconciles the dependency tracker's IFA-explainer
// verdicts (computed independently at crash instants, from the coherency
// event stream) against ground truth: the recovery report's abort set and the
// IFA checker's violations. A disagreement in either direction is recorded as
// an ExplainMismatch. No-op when no tracker is attached.
func crossCheckExplainer(db *recovery.DB, rep *recovery.RecoveryReport, violations []string, ep int, res *ChaosResult) {
	tr := db.Deps()
	if tr == nil {
		return
	}
	vs := tr.TakeVerdicts()
	res.Verdicts += len(vs)
	// An episode can contain several crashes (recovery-time crashes retry),
	// each producing a verdict batch; the latest verdict per transaction is
	// the one that saw the most state, so it wins.
	byTxn := make(map[int64]deps.Verdict, len(vs))
	doomed := 0
	for _, v := range vs {
		byTxn[v.Txn] = v
		if v.Doomed {
			doomed++
		}
	}
	res.DoomedVerdicts += doomed
	mism := func(format string, args ...any) {
		res.ExplainMismatches = append(res.ExplainMismatches,
			fmt.Sprintf("episode %d: ", ep)+fmt.Sprintf(format, args...))
	}

	// Rule 1: every transaction recovery aborted was on a crashed node, so
	// the explainer must have issued it a crashed-node verdict.
	for _, t := range rep.Aborted {
		v, ok := byTxn[int64(t)]
		switch {
		case !ok:
			mism("recovery aborted %v but the explainer issued no verdict for it", t)
		case !v.Crashed:
			mism("recovery aborted %v but the explainer classified it a survivor: %s", t, v.Text)
		}
	}

	// Rule 2: a doomed-survivor verdict means an update with no log record
	// was destroyed — structurally impossible under any protocol that logs
	// before migration. Predicting one under an IFA protocol is a tracker bug.
	if db.Cfg.Protocol.IFA() {
		for _, v := range vs {
			if v.Doomed {
				mism("IFA protocol %v predicted a doomed survivor: %s", db.Cfg.Protocol, v.Text)
			}
		}
	}

	// Rule 3: conversely, when the checker catches a survivor's lost update
	// (the no-LBM hazard the ablated control exists to exhibit), the explainer
	// must have predicted at least one doomed survivor this episode.
	lost := 0
	for _, viol := range violations {
		if strings.Contains(viol, "update lost") {
			lost++
		}
	}
	if lost > 0 && doomed == 0 {
		mism("checker found %d lost survivor update(s) but the explainer predicted none", lost)
	}
}
