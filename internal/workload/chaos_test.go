package workload

import (
	"strings"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/audit"
	"smdb/internal/obs/deps"
	"smdb/internal/recovery"
)

func chaosDB(t *testing.T, proto recovery.Protocol, nodes int) *recovery.DB {
	t.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: nodes, Lines: 4096},
		Protocol:       proto,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          16,
		LockTableLines: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// attachTracker wires an observer plus dependency tracker into db, enabling
// RunChaos's explainer cross-check.
func attachTracker(db *recovery.DB) *deps.Tracker {
	o := obs.NewWithCapacity(4096)
	db.AttachObserver(o)
	tr := deps.New(o)
	db.AttachDeps(tr)
	return tr
}

// attachAuditor wires an observer plus online IFA auditor into db, enabling
// RunChaos's auditor cross-check. The dependency tracker is deliberately not
// attached: the explainer's reconciliation rules assume an IFA or ablated
// protocol, while the auditor sweep also covers the baseline.
func attachAuditor(db *recovery.DB) *audit.Auditor {
	o := obs.NewWithCapacity(4096)
	db.AttachObserver(o)
	a := audit.New(audit.Config{
		Stable: db.Cfg.Protocol.StableLBM() && db.M.Config().Coherency == machine.WriteInvalidate,
	})
	db.AttachAudit(a)
	return a
}

func chaosSpec(seed int64) Spec {
	return Spec{
		TxnsPerNode:     6,
		OpsPerTxn:       6,
		ReadFraction:    0.4,
		SharingFraction: 0.7,
		Seed:            seed,
	}
}

// TestChaosSeededSweep runs a sweep of seeded fault schedules — migration
// crashes, update-window crashes, torn forces, in-recovery crashes, and
// transient I/O errors all live at once — over each IFA protocol, asserting
// zero checker violations across every recovery.
func TestChaosSeededSweep(t *testing.T) {
	protos := []recovery.Protocol{
		recovery.VolatileSelectiveRedo,
		recovery.StableEager,
		recovery.StableTriggered,
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 6; seed++ {
				db := chaosDB(t, proto, 4)
				attachTracker(db)
				inj := fault.New(fault.Plan{
					Seed:              seed,
					PCrashAtMigration: 0.02,
					PCrashAtUpdate:    0.01,
					PTornForce:        0.02,
					PCrashInRecovery:  0.3,
					PCoordinatorCrash: 0.5,
					PIOError:          0.05,
					MaxCrashes:        2,
				})
				res, err := RunChaos(db, inj, chaosSpec(seed), 3)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(res.Violations) != 0 {
					t.Errorf("seed %d: IFA violations under %v:\n%s",
						seed, proto, strings.Join(res.Violations, "\n"))
				}
				if res.RecoveryAttempts < res.Episodes {
					t.Errorf("seed %d: %d recovery attempts over %d episodes", seed, res.RecoveryAttempts, res.Episodes)
				}
				// The IFA explainer must agree with the checker on every
				// episode: every recovery abort concretely explained, no
				// doomed-survivor predictions under a real LBM protocol.
				if res.Verdicts == 0 {
					t.Errorf("seed %d: tracker attached but no explainer verdicts issued", seed)
				}
				if res.DoomedVerdicts != 0 {
					t.Errorf("seed %d: %d doomed-survivor verdicts under IFA protocol %v",
						seed, res.DoomedVerdicts, proto)
				}
				if len(res.ExplainMismatches) != 0 {
					t.Errorf("seed %d: explainer/checker mismatches under %v:\n%s",
						seed, proto, strings.Join(res.ExplainMismatches, "\n"))
				}
			}
		})
	}
}

// TestChaosCoordinatorCrashDuringRecovery forces the coordinator to die at a
// recovery phase boundary in every episode: recovery must re-elect, re-enter,
// and still satisfy the checker.
func TestChaosCoordinatorCrashDuringRecovery(t *testing.T) {
	db := chaosDB(t, recovery.StableEager, 4)
	inj := fault.New(fault.Plan{
		Seed:              7,
		PCrashInRecovery:  1.0, // fire at the first phase boundary of every attempt
		PCoordinatorCrash: 1.0, // always the coordinator
		MaxCrashes:        2,   // the workload crash plus one in-recovery crash
	})
	res, err := RunChaos(db, inj, chaosSpec(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("IFA violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	if res.RecoveryCrashes == 0 {
		t.Error("no in-recovery crash fired despite PCrashInRecovery=1")
	}
	if res.RecoveryAttempts <= res.Episodes {
		t.Errorf("attempts=%d episodes=%d: no recovery re-entry happened", res.RecoveryAttempts, res.Episodes)
	}
	if res.CoordinatorFailovers == 0 {
		t.Error("coordinator died mid-recovery but no failover was recorded")
	}
}

// TestChaosTornTail makes every fault a torn log force: the victim's stable
// device ends in a partial record, and recovery must truncate it at the last
// checksum-valid record and settle the interrupted commit correctly.
func TestChaosTornTail(t *testing.T) {
	db := chaosDB(t, recovery.StableEager, 3)
	inj := fault.New(fault.Plan{
		Seed:       11,
		PTornForce: 0.05,
	})
	res, err := RunChaos(db, inj, chaosSpec(11), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("IFA violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	if res.TornForces == 0 {
		t.Skip("no torn force fired under this seed (schedule-dependent)")
	}
}

// TestChaosIORetry saturates the workload with transient I/O errors (no
// crashes at all): every operation must eventually succeed through the
// bounded retries, and a plain recovery of a forced crash must still pass.
func TestChaosIORetry(t *testing.T) {
	db := chaosDB(t, recovery.VolatileSelectiveRedo, 3)
	inj := fault.New(fault.Plan{
		Seed:     13,
		PIOError: 0.5,
	})
	res, err := RunChaos(db, inj, chaosSpec(13), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("IFA violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	if res.IOErrors == 0 {
		t.Error("no I/O error fired despite PIOError=0.5")
	}
	if res.Committed == 0 {
		t.Error("nothing committed under transient I/O errors (retries not working)")
	}
}

// TestChaosBrokenPolicyCaught is the negative control: the AblatedNoLBM
// policy logs at commit instead of before migration, so a crash at a line
// migration loses undo information the survivors already depend on. The same
// chaos harness that passes the real protocols must catch it.
func TestChaosBrokenPolicyCaught(t *testing.T) {
	caught := false
	var mismatches []string
	for seed := int64(1); seed <= 12 && !caught; seed++ {
		db := chaosDB(t, recovery.AblatedNoLBM, 4)
		attachTracker(db)
		inj := fault.New(fault.Plan{
			Seed: seed,
			// Mid-workload odds, not certainty: a certain crash would fire
			// at the episode's very first data-line migration, before any
			// transaction has uncommitted state to lose.
			PCrashAtMigration: 0.35,
		})
		res, err := RunChaos(db, inj, chaosSpec(seed), 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Violations) > 0 {
			caught = true
		}
		mismatches = append(mismatches, res.ExplainMismatches...)
	}
	if !caught {
		t.Fatal("chaos harness failed to catch the deliberately broken AblatedNoLBM policy")
	}
	if len(mismatches) != 0 {
		t.Errorf("explainer/checker mismatches under AblatedNoLBM:\n%s",
			strings.Join(mismatches, "\n"))
	}
}

// TestChaosAuditCleanRealProtocols runs the full chaos fault schedule over
// every real protocol with the online IFA auditor armed: the continuously
// monitored LBM invariant must hold — zero typed violations — across every
// workload, crash, and recovery, and the auditor must agree with the
// crash-time checker on every episode.
func TestChaosAuditCleanRealProtocols(t *testing.T) {
	for _, proto := range recovery.Protocols() {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				db := chaosDB(t, proto, 4)
				a := attachAuditor(db)
				inj := fault.New(fault.Plan{
					Seed:              seed,
					PCrashAtMigration: 0.02,
					PCrashAtUpdate:    0.01,
					PTornForce:        0.02,
					PCrashInRecovery:  0.3,
					PCoordinatorCrash: 0.5,
					PIOError:          0.05,
					MaxCrashes:        2,
				})
				res, err := RunChaos(db, inj, chaosSpec(seed), 3)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.AuditViolations != 0 {
					var details []string
					for _, v := range a.Violations() {
						details = append(details, v.Detail)
					}
					t.Errorf("seed %d: online auditor raised %d violation(s) under %v:\n%s",
						seed, res.AuditViolations, proto, strings.Join(details, "\n"))
				}
				if len(res.ExplainMismatches) != 0 {
					t.Errorf("seed %d: auditor/checker mismatches under %v:\n%s",
						seed, proto, strings.Join(res.ExplainMismatches, "\n"))
				}
				sum := a.Summary()
				if sum.Completed == 0 {
					t.Errorf("seed %d: auditor observed no completed trails", seed)
				}
				if sum.Windows == 0 {
					t.Errorf("seed %d: auditor recorded no time-series windows", seed)
				}
			}
		})
	}
}

// TestChaosAuditCatchesAblated is the negative control for the online
// auditor: under AblatedNoLBM every migration of a dirty line is an
// unlogged exposure, so the auditor must raise typed violations — each
// carrying the offending transaction's trail as evidence — without waiting
// for a crash to convert the hazard into data loss, and without ever
// disagreeing with the crash-time checker. The fault draws are seeded but
// their *order* follows the goroutine interleaving (the race detector's
// slowdown shifts it), so no single seed guarantees a mid-workload
// migration crash; the sweep fails only if every seed stays silent.
func TestChaosAuditCatchesAblated(t *testing.T) {
	var a *audit.Auditor
	var res *ChaosResult
	for seed := int64(1); seed <= 8; seed++ {
		db := chaosDB(t, recovery.AblatedNoLBM, 4)
		aud := attachAuditor(db)
		inj := fault.New(fault.Plan{
			Seed:              seed,
			PCrashAtMigration: 0.35,
		})
		r, err := RunChaos(db, inj, chaosSpec(seed), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.ExplainMismatches) != 0 {
			t.Errorf("seed %d: auditor/checker mismatches under AblatedNoLBM:\n%s",
				seed, strings.Join(r.ExplainMismatches, "\n"))
		}
		if r.AuditViolations > 0 {
			// Keep the first violating seed; prefer one whose exposure
			// windows also closed (watchdog anomalies evaluated).
			if res == nil || r.AuditAnomalies > 0 {
				a, res = aud, &r
			}
			if r.AuditAnomalies > 0 {
				break
			}
		}
	}
	if res == nil {
		t.Fatal("the ablated protocol migrated dirty lines on 8 seeds but the online auditor raised no violation")
	}
	vs := a.Violations()
	if len(vs) == 0 {
		t.Fatal("violation total > 0 but no records retained")
	}
	for i, v := range vs {
		if v.Kind != audit.ViolationUnlogged {
			t.Errorf("violation %d kind = %q, want %q", i, v.Kind, audit.ViolationUnlogged)
		}
		if len(v.Trail.Steps) == 0 {
			t.Errorf("violation %d carries no evidence trail", i)
		}
		if v.Detail == "" || v.Name == "" {
			t.Errorf("violation %d missing provenance: %+v", i, v)
		}
	}
	// The evidence trail must show the unlogged update that caused the
	// exposure: an update step with LSN 0 on the violating line.
	found := false
	for _, s := range vs[0].Trail.Steps {
		if s.Kind == "update" && s.Line == vs[0].Line && s.LSN == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("evidence trail lacks the unlogged update of line %d:\n%+v", vs[0].Line, vs[0].Trail.Steps)
	}
	if res.AuditAnomalies == 0 {
		t.Error("unlogged exposures raised no watchdog anomaly")
	}
}

// TestAblatedDoomedVerdict drives the doomed-survivor hazard itself: under
// AblatedNoLBM the sole copy of a survivor's unlogged update migrates to the
// crash victim and dies there, and the explainer must predict the loss with
// an "unlogged cross-node dependency" verdict that the checker then confirms.
// A writes-only, fully-shared workload keeps lines exclusive (reads would
// downgrade them to shared, where write-broadcast preserves surviving
// copies), and the low crash probability lets cross-node write traffic build
// up in-flight dependencies before the victim dies. The schedule is heavily
// contended, so it is deliberately named outside the -run Chaos race sweep.
func TestAblatedDoomedVerdict(t *testing.T) {
	if raceEnabled {
		// The write-only, high-sharing schedule this sweep needs is a lock
		// convoy by design; under the race detector's slowdown it livelocks
		// past the harness's wedge deadline. The explainer/checker agreement
		// it asserts is covered under race by the Chaos tests.
		t.Skip("hyper-contended schedule livelocks under the race detector")
	}
	doomed := 0
	var mismatches []string
	for seed := int64(1); seed <= 12; seed++ {
		db := chaosDB(t, recovery.AblatedNoLBM, 4)
		attachTracker(db)
		inj := fault.New(fault.Plan{
			Seed:              seed,
			PCrashAtMigration: 0.03,
		})
		spec := chaosSpec(seed)
		spec.TxnsPerNode = 12
		spec.OpsPerTxn = 12
		spec.ReadFraction = 0
		spec.SharingFraction = 0.9
		res, err := RunChaos(db, inj, spec, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		doomed += res.DoomedVerdicts
		mismatches = append(mismatches, res.ExplainMismatches...)
	}
	if doomed == 0 {
		t.Error("no doomed-survivor verdict across the ablated sweep: the explainer never predicted an unlogged cross-node loss")
	}
	if len(mismatches) != 0 {
		t.Errorf("explainer/checker mismatches under AblatedNoLBM:\n%s",
			strings.Join(mismatches, "\n"))
	}
}
