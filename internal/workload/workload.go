// Package workload generates and drives synthetic transaction workloads
// against the shared-memory database. The knobs mirror the sharing
// parameters the paper's analysis turns on: how many records share a cache
// line (a layout property), how much data is shared between nodes, the
// read/write mix, and access skew. The driver is deterministic: nodes are
// stepped round-robin from a seeded PRNG, so every experiment is exactly
// reproducible; a concurrent driver (goroutine per node) is available for
// wall-clock benchmarks.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/sched"
	"smdb/internal/storage"
	"smdb/internal/txn"
)

// Spec describes a workload.
type Spec struct {
	// TxnsPerNode transactions run on each node, OpsPerTxn operations
	// each.
	TxnsPerNode, OpsPerTxn int
	// ReadFraction of operations are reads (the rest are updates).
	ReadFraction float64
	// SharingFraction of operations target the globally shared record
	// pool; the rest go to the issuing node's private partition. This is
	// the knob that produces inter-node cache-line traffic.
	SharingFraction float64
	// HotSpot skews shared-pool accesses: a fraction HotProb of them hit
	// the hottest HotSpot fraction of the shared pool. Zero disables skew.
	HotSpot, HotProb float64
	// AbortFraction of transactions voluntarily abort at the end.
	AbortFraction float64
	// HeapPages restricts the workload to the first HeapPages pages of
	// the store (0 means all); experiments that reserve tail pages for an
	// index set it.
	HeapPages int
	// Seed makes the run reproducible.
	Seed int64
}

func (s *Spec) setDefaults() {
	if s.TxnsPerNode == 0 {
		s.TxnsPerNode = 8
	}
	if s.OpsPerTxn == 0 {
		s.OpsPerTxn = 8
	}
}

// Result aggregates a run.
type Result struct {
	Committed, Aborted int
	Reads, Writes      int
	// BlockedRetries counts operations re-issued after a lock wait;
	// Deadlocks counts deadlock victims (aborted and counted in Aborted).
	BlockedRetries, Deadlocks int
	// SimTime is the simulated makespan of the run in nanoseconds.
	SimTime int64
	// SimTimePerOp is SimTime divided by completed operations.
	SimTimePerOp int64
}

func (r Result) String() string {
	return fmt.Sprintf("committed=%d aborted=%d reads=%d writes=%d retries=%d deadlocks=%d simTime=%.3fms",
		r.Committed, r.Aborted, r.Reads, r.Writes, r.BlockedRetries, r.Deadlocks,
		float64(r.SimTime)/1e6)
}

// Layouts the record space: each node owns a private partition; the tail of
// the record space is the shared pool.
type space struct {
	rids    []heap.RID
	private [][]heap.RID
	shared  []heap.RID
}

func buildSpace(db *recovery.DB, pages int) space {
	if pages <= 0 || pages > db.Store.NPages {
		pages = db.Store.NPages
	}
	layout := db.Store.Layout
	var sp space
	for p := 0; p < pages; p++ {
		for s := 0; s < layout.SlotsPerPage(); s++ {
			sp.rids = append(sp.rids, heap.RID{Page: storage.PageID(p), Slot: uint16(s)})
		}
	}
	nodes := db.M.Nodes()
	// First half: private partitions; second half: shared pool.
	half := len(sp.rids) / 2
	per := half / nodes
	sp.private = make([][]heap.RID, nodes)
	for n := 0; n < nodes; n++ {
		sp.private[n] = sp.rids[n*per : (n+1)*per]
	}
	sp.shared = sp.rids[half:]
	return sp
}

// Seed populates every record of the first `pages` pages (0 = all) with an
// initial committed value and checkpoints, so experiments start from a
// stable database.
func Seed(db *recovery.DB, pages int) error {
	if pages <= 0 || pages > db.Store.NPages {
		pages = db.Store.NPages
	}
	mgr := txn.NewManager(db)
	// Seed in page-sized batches to bound the lock table footprint.
	layout := db.Store.Layout
	for p := 0; p < pages; p++ {
		tx, err := mgr.Begin(0)
		if err != nil {
			return err
		}
		for s := 0; s < layout.SlotsPerPage(); s++ {
			rid := heap.RID{Page: storage.PageID(p), Slot: uint16(s)}
			if err := tx.Insert(rid, []byte{1, byte(p), byte(s)}); err != nil {
				return fmt.Errorf("workload: seeding %v: %w", rid, err)
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return db.Checkpoint(0)
}

// Runner drives a Spec against a database.
type Runner struct {
	DB   *recovery.DB
	Mgr  *txn.Manager
	Spec Spec
	// Sched, when non-nil, records or replays the concurrent driver's
	// scheduling decisions (stop observations, and — through the DB's
	// attached session — every operation's check and fetch points). Set by
	// the chaos harness; nil for plain runs.
	Sched *sched.Session

	sp  space
	rng *rand.Rand
}

// NewRunner builds a deterministic runner. Call Seed first.
func NewRunner(db *recovery.DB, spec Spec) *Runner {
	spec.setDefaults()
	return &Runner{
		DB:   db,
		Mgr:  txn.NewManager(db),
		Spec: spec,
		sp:   buildSpace(db, spec.HeapPages),
		rng:  rand.New(rand.NewSource(spec.Seed)),
	}
}

// pickRID chooses the target record for one operation by node nd.
func (r *Runner) pickRID(nd machine.NodeID) heap.RID {
	if r.rng.Float64() < r.Spec.SharingFraction && len(r.sp.shared) > 0 {
		pool := r.sp.shared
		if r.Spec.HotSpot > 0 && r.rng.Float64() < r.Spec.HotProb {
			hot := int(float64(len(pool)) * r.Spec.HotSpot)
			if hot < 1 {
				hot = 1
			}
			return pool[r.rng.Intn(hot)]
		}
		return pool[r.rng.Intn(len(pool))]
	}
	part := r.sp.private[nd]
	if len(part) == 0 {
		return r.sp.shared[r.rng.Intn(len(r.sp.shared))]
	}
	return part[r.rng.Intn(len(part))]
}

// nodeState tracks one node's progress through its transaction quota.
type nodeState struct {
	tx        *txn.Txn
	txnsLeft  int
	opsLeft   int
	willAbort bool
	// pending is the operation blocked on a lock, retried verbatim on the
	// node's next turns (abandoning it would leak its queued request).
	pending     *heap.RID
	pendingRead bool
}

// Run executes the workload round-robin across all live nodes and returns
// the aggregate result. Operations that block are retried on the node's
// next turn; deadlock victims abort and are replaced.
func (r *Runner) Run() (Result, error) {
	var res Result
	start := r.DB.M.MaxClock()
	nodes := r.DB.M.AliveNodes()
	states := make(map[machine.NodeID]*nodeState, len(nodes))
	for _, nd := range nodes {
		states[nd] = &nodeState{txnsLeft: r.Spec.TxnsPerNode}
	}
	for {
		work := false
		for _, nd := range nodes {
			st := states[nd]
			if err := r.stepNode(nd, st, &res); err != nil {
				return res, err
			}
			if st.txnsLeft > 0 || st.tx != nil {
				work = true
			}
		}
		if !work {
			break
		}
	}
	res.SimTime = r.DB.M.MaxClock() - start
	if ops := res.Reads + res.Writes; ops > 0 {
		res.SimTimePerOp = res.SimTime / int64(ops)
	}
	return res, nil
}

// stepNode advances one node by one operation (or txn boundary).
func (r *Runner) stepNode(nd machine.NodeID, st *nodeState, res *Result) error {
	if st.tx == nil {
		if st.txnsLeft == 0 {
			return nil
		}
		tx, err := r.Mgr.Begin(nd)
		if err != nil {
			return err
		}
		st.tx = tx
		st.txnsLeft--
		st.opsLeft = r.Spec.OpsPerTxn
		st.willAbort = r.rng.Float64() < r.Spec.AbortFraction
		return nil
	}
	if st.opsLeft == 0 {
		var err error
		if st.willAbort {
			err = st.tx.Abort()
			res.Aborted++
		} else {
			err = st.tx.Commit()
			res.Committed++
		}
		st.tx = nil
		return err
	}
	var rid heap.RID
	var read bool
	if st.pending != nil {
		rid, read = *st.pending, st.pendingRead
	} else {
		rid = r.pickRID(nd)
		read = r.rng.Float64() < r.Spec.ReadFraction
	}
	var err error
	if read {
		_, err = st.tx.Read(rid)
		if err == nil {
			res.Reads++
		}
	} else {
		err = st.tx.Write(rid, []byte{byte(r.rng.Intn(250) + 2), byte(nd)})
		if err == nil {
			res.Writes++
		}
	}
	switch {
	case err == nil:
		st.opsLeft--
		st.pending = nil
	case errors.Is(err, txn.ErrBlocked):
		res.BlockedRetries++
		st.pending = &rid
		st.pendingRead = read
	case errors.Is(err, txn.ErrDeadlock):
		res.Deadlocks++
		res.Aborted++
		if err := st.tx.Abort(); err != nil {
			return err
		}
		st.tx = nil
		st.pending = nil
	case errors.Is(err, txn.ErrNotFound):
		// A concurrent (or own) delete made the record invisible; count
		// the read and move on.
		st.opsLeft--
		st.pending = nil
	default:
		return fmt.Errorf("workload: node %d op on %v: %w", nd, rid, err)
	}
	return nil
}

// ActiveTxns returns transactions currently in flight in the runner (used
// by crash experiments that want victims mid-transaction). The runner can
// be resumed afterwards only for surviving nodes.
func (r *Runner) RunUntilMidFlight(opsBudget int) (Result, error) {
	var res Result
	start := r.DB.M.MaxClock()
	nodes := r.DB.M.AliveNodes()
	states := make(map[machine.NodeID]*nodeState, len(nodes))
	for _, nd := range nodes {
		states[nd] = &nodeState{txnsLeft: r.Spec.TxnsPerNode}
	}
	for i := 0; i < opsBudget; i++ {
		for _, nd := range nodes {
			if err := r.stepNode(nd, states[nd], &res); err != nil {
				return res, err
			}
		}
	}
	res.SimTime = r.DB.M.MaxClock() - start
	if ops := res.Reads + res.Writes; ops > 0 {
		res.SimTimePerOp = res.SimTime / int64(ops)
	}
	return res, nil
}
