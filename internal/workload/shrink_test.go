package workload

import (
	"reflect"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/sched"
)

// TestDDMin pins the delta-debugging kernel: failure requires items 3 and 7
// together, and ddmin must find exactly that pair.
func TestDDMin(t *testing.T) {
	test := func(keep []bool) bool { return keep[3] && keep[7] }
	keep := ddmin(10, test)
	want := make([]bool, 10)
	want[3], want[7] = true, true
	if !reflect.DeepEqual(keep, want) {
		t.Fatalf("ddmin kept %v, want only items 3 and 7", indicesOf(keep))
	}
}

// TestDDMinKeepsAllWhenNothingRemovable: a failure needing every item must
// come back intact.
func TestDDMinKeepsAllWhenNothingRemovable(t *testing.T) {
	test := func(keep []bool) bool {
		for _, k := range keep {
			if !k {
				return false
			}
		}
		return true
	}
	for _, k := range ddmin(6, test) {
		if !k {
			t.Fatal("ddmin dropped a required item")
		}
	}
}

// TestSuffixTrimMask: per-key FIFOs keep their prefix through the last fired
// draw; all-quiet keys vanish entirely.
func TestSuffixTrimMask(t *testing.T) {
	sch := &sched.Schedule{Draws: []sched.Draw{
		{Key: "a"},             // 0: kept (before a's fired draw)
		{Key: "b"},             // 1: dropped (b never fires)
		{Key: "a", Fire: true}, // 2: kept (a's last fired)
		{Key: "a"},             // 3: dropped (a's no-fire tail)
		{Key: "c", Fire: true}, // 4: kept
		{Key: "b"},             // 5: dropped
	}}
	got := suffixTrimMask(sch)
	want := []bool{true, false, true, false, true, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("suffixTrimMask = %v, want %v", got, want)
	}
}

// TestEpisodeBlocksAndKeep: block boundaries at episode markers, and
// keepEpisodes preserving surviving blocks' points, indices, and seeds.
func TestEpisodeBlocksAndKeep(t *testing.T) {
	sch := &sched.Schedule{
		Points: []sched.Point{
			{Actor: sched.HarnessActor, Site: sched.SiteEpisode, Arg: 0},
			{Actor: 0, Site: sched.SiteCheck},
			{Actor: 1, Site: sched.SiteStop},
			{Actor: sched.HarnessActor, Site: sched.SiteEpisode, Arg: 1},
			{Actor: 1, Site: sched.SiteCheck},
		},
		Episodes:     []int{0, 1},
		EpisodeSeeds: []int64{100, 200},
	}
	blocks := episodeBlocks(sch)
	if want := [][2]int{{0, 3}, {3, 5}}; !reflect.DeepEqual(blocks, want) {
		t.Fatalf("episodeBlocks = %v, want %v", blocks, want)
	}
	out := keepEpisodes(sch, []bool{false, true})
	if len(out.Points) != 2 || out.Points[0].Arg != 1 {
		t.Fatalf("keepEpisodes kept wrong points: %+v", out.Points)
	}
	if !reflect.DeepEqual(out.Episodes, []int{1}) || !reflect.DeepEqual(out.EpisodeSeeds, []int64{200}) {
		t.Fatalf("keepEpisodes kept episodes %v seeds %v", out.Episodes, out.EpisodeSeeds)
	}
}

// TestTruncateActor: the chosen stop answers "stop now" and the actor's
// later points inside the block are gone; other actors are untouched.
func TestTruncateActor(t *testing.T) {
	sch := &sched.Schedule{Points: []sched.Point{
		{Actor: 0, Site: sched.SiteStop, Arg: 0},  // 0: becomes Arg=1
		{Actor: 1, Site: sched.SiteCheck},         // 1: kept
		{Actor: 0, Site: sched.SiteCheck},         // 2: dropped (actor 0, later)
		{Actor: 0, Site: sched.SiteFetch, Arg: 7}, // 3: dropped
		{Actor: 1, Site: sched.SiteStop, Arg: 0},  // 4: kept
	}}
	out := truncateActor(sch, 0, 0, len(sch.Points))
	want := []sched.Point{
		{Actor: 0, Site: sched.SiteStop, Arg: 1},
		{Actor: 1, Site: sched.SiteCheck},
		{Actor: 1, Site: sched.SiteStop, Arg: 0},
	}
	if !reflect.DeepEqual(out.Points, want) {
		t.Fatalf("truncateActor = %+v, want %+v", out.Points, want)
	}
}

// TestShrinkRejectsCleanInput: Shrink must refuse a schedule whose replay
// does not violate IFA, rather than "minimizing" a passing run.
func TestShrinkRejectsCleanInput(t *testing.T) {
	proto := recovery.VolatileSelectiveRedo
	_, schedule, _ := recordRun(t, proto, 11, 1)
	env := ShrinkEnv{
		NewDB: func() (*recovery.DB, error) {
			return recovery.New(recovery.Config{
				Machine:        machine.Config{Nodes: 4, Lines: 4096},
				Protocol:       proto,
				LinesPerPage:   4,
				RecsPerLine:    4,
				Pages:          16,
				LockTableLines: 128,
			})
		},
		NewInjector: func() *fault.Injector { return fault.New(chaosPlan(schedule.FaultSeed)) },
		Spec:        chaosSpec(schedule.Seed),
	}
	if _, _, err := Shrink(env, schedule); err == nil {
		t.Fatal("Shrink accepted a clean (non-failing) schedule")
	}
}
