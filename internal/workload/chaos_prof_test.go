package workload

import (
	"strings"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/obs/prof"
	"smdb/internal/recovery"
)

// TestChaosProfiledRecovery is TestChaosParallelRecovery with the contention
// profiler armed: every stripe acquisition, condvar sleep, and fan-out now
// runs the profiled hot path while crashes land mid-phase, so under -race
// this is the data-race coverage for the profiler's counter blocks, the
// holdStart hand-off in the stripe helpers, and mid-run attach/detach.
func TestChaosProfiledRecovery(t *testing.T) {
	protos := []recovery.Protocol{
		recovery.VolatileSelectiveRedo,
		recovery.StableTriggered,
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				db := chaosDB(t, proto, 5)
				db.Cfg.RecoveryWorkers = 4
				attachTracker(db)
				pair := prof.NewPair(machine.StripeCount)
				db.AttachProf(pair)
				if seed == 2 {
					// One seed flips the profiler off and on mid-setup so
					// detach-with-open-sections sees chaos coverage too.
					db.AttachProf(nil)
					db.AttachProf(pair)
				}
				inj := fault.New(fault.Plan{
					Seed:              seed,
					PCrashAtMigration: 0.02,
					PCrashAtUpdate:    0.01,
					PTornForce:        0.02,
					PCrashInRecovery:  0.3,
					PCoordinatorCrash: 0.5,
					PIOError:          0.05,
					MaxCrashes:        2,
				})
				res, err := RunChaos(db, inj, chaosSpec(seed), 3)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(res.Violations) != 0 {
					t.Errorf("seed %d: IFA violations under %v with profiled recovery:\n%s",
						seed, proto, strings.Join(res.Violations, "\n"))
				}
				snap := pair.Stripes.Snapshot()
				if snap.Totals().Acquires == 0 {
					t.Errorf("seed %d: profiler recorded no stripe acquisitions", seed)
				}
				if res.Episodes > 0 && len(pair.Workers.Snapshot().Phases) == 0 {
					t.Errorf("seed %d: %d recovery episodes but no fan-outs attributed",
						seed, res.Episodes)
				}
			}
		})
	}
}
