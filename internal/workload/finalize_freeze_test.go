package workload

import (
	"bytes"
	"sync/atomic"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

// TestFinalizeRetriesLineLostAcrossFreeze pins the frozen-window finalize
// race from the ROADMAP watch item: a survivor already past Abort's freeze
// check carries its undo walk into a crash, and the next heap access lands
// on a line the crash destroyed — machine.ErrLineLost surfaces from the
// finalize call, not from an op. The worker's finalize loop must retry it
// (like the op loop always has) until recovery repairs the line, instead of
// reporting it as a fatal runner outcome.
//
// The choreography is deterministic: the worker runs three single-line
// writes whose targets the test picks one call at a time through the
// stop-probe hook; before the last op, a node-1 transaction steals the first
// two ops' lines (plus their page headers) and commits, and a transition
// fault is armed to crash node 1 the moment the undo walk migrates any of
// those lines back. The machine fires injected transition faults after the
// triggering migration completes, so the abort survives its first
// re-fetched line and then finds the remaining stolen lines gone.
func TestFinalizeRetriesLineLostAcrossFreeze(t *testing.T) {
	db := chaosDB(t, recovery.VolatileSelectiveRedo, 2)
	if err := Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(db, Spec{TxnsPerNode: 1, OpsPerTxn: 3, AbortFraction: 1})

	// The worker's three ops, fed one at a time via the stop probe; B and D
	// share cache lines with A and C (RecsPerLine = 4), so node 1 writing
	// them steals the very lines the abort must undo.
	ridA := heap.RID{Page: 1, Slot: 0}
	ridB := heap.RID{Page: 1, Slot: 1}
	ridC := heap.RID{Page: 2, Slot: 0}
	ridD := heap.RID{Page: 2, Slot: 1}
	ridE := heap.RID{Page: 3, Slot: 0}
	r.sp.private[0] = []heap.RID{ridA}

	lineA, _, err := db.Store.LineOf(ridA)
	if err != nil {
		t.Fatal(err)
	}
	lineC, _, err := db.Store.LineOf(ridC)
	if err != nil {
		t.Fatal(err)
	}
	stolen := map[machine.LineID]bool{
		lineA: true, db.Store.HeaderLine(ridA.Page): true,
		lineC: true, db.Store.HeaderLine(ridC.Page): true,
	}

	var armed, fired bool
	db.M.SetTransitionFault(func(ev machine.Event, _ int) []machine.NodeID {
		if !armed || fired || ev.From != 1 || !stolen[ev.Line] {
			return nil
		}
		fired = true
		return []machine.NodeID{1}
	})
	defer db.M.SetTransitionFault(nil)

	victim := machine.NodeID(1)
	var recovered bool
	calls := 0
	probe := func() bool {
		calls++
		switch {
		case calls == 2: // op 1's target (A) is picked; feed op 2
			r.sp.private[0] = []heap.RID{ridC}
		case calls == 3: // op 2's target (C) is picked; feed op 3
			r.sp.private[0] = []heap.RID{ridE}
		case calls == 4:
			// Steal A's and C's lines to node 1 with committed sibling-slot
			// writes, then arm the crash for the undo walk's re-fetch. Op 3
			// (E) touches neither line, so the fault stays quiet until the
			// finalize.
			t1, err := r.Mgr.Begin(victim)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []struct {
				rid heap.RID
				val []byte
			}{{ridB, []byte{9, 1}}, {ridD, []byte{9, 2}}} {
				w := w
				if err := txn.Retry(func() error { return t1.Write(w.rid, w.val) }); err != nil {
					t.Fatalf("stealing write %v: %v", w.rid, err)
				}
			}
			if err := txn.Retry(t1.Commit); err != nil {
				t.Fatal(err)
			}
			armed = true
		case calls > 4 && !recovered:
			// Only the finalize retry loop probes past call 4: the abort
			// stalled on crash-destroyed data inside the freeze window.
			// Repair it and let the retry finish the undo.
			if !fired {
				t.Fatal("finalize stalled before the armed crash fired")
			}
			if !db.Frozen() {
				t.Error("finalize stalled outside the freeze window")
			}
			if _, err := db.Recover([]machine.NodeID{victim}); err != nil {
				t.Fatalf("recovery: %v", err)
			}
			recovered = true
		}
		return false
	}

	var ops atomic.Int64
	res, werr := r.runWorker(0, probe, &ops)
	if werr != nil {
		t.Fatalf("finalize surfaced a retryable stall as fatal: %v", werr)
	}
	if !fired {
		t.Fatal("choreography failed: the transition fault never fired")
	}
	if !recovered {
		t.Fatal("abort finished without ever stalling on the lost line")
	}
	if res.Writes != 3 || res.Aborted != 1 || res.Committed != 0 {
		t.Errorf("worker result = %+v, want 3 writes and 1 abort", res)
	}
	if res.BlockedRetries == 0 {
		t.Error("finalize retry was never counted")
	}

	// End state: the retried abort restored the seeded values, and node 1's
	// committed steals survived its crash.
	check, err := r.Mgr.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Abort()
	for _, want := range []struct {
		rid heap.RID
		val []byte
	}{
		{ridA, []byte{1, 1, 0}},
		{ridC, []byte{1, 2, 0}},
		{ridE, []byte{1, 3, 0}},
		{ridB, []byte{9, 1}},
		{ridD, []byte{9, 2}},
	} {
		var got []byte
		if err := txn.Retry(func() error {
			var err error
			got, err = check.Read(want.rid)
			return err
		}); err != nil {
			t.Fatalf("post-recovery read %v: %v", want.rid, err)
		}
		if !bytes.HasPrefix(got, want.val) { // slots read back zero-padded
			t.Errorf("post-recovery %v = %v, want prefix %v", want.rid, got, want.val)
		}
	}
}
