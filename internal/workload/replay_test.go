package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/sched"
	"smdb/internal/storage"
)

// chaosPlan is the TestChaosSeededSweep fault mix, reused by the
// record/replay tests so recorded schedules cover every fault flavour.
func chaosPlan(seed int64) fault.Plan {
	return fault.Plan{
		Seed:              seed,
		PCrashAtMigration: 0.02,
		PCrashAtUpdate:    0.01,
		PTornForce:        0.02,
		PCrashInRecovery:  0.3,
		PCoordinatorCrash: 0.5,
		PIOError:          0.05,
		MaxCrashes:        2,
	}
}

// imageHash digests every slot of the database (flags, version, payload) as
// seen from the first live node — the "identical images" half of the replay
// determinism gate.
func imageHash(t *testing.T, db *recovery.DB) string {
	t.Helper()
	coord := db.M.AliveNodes()[0]
	h := sha256.New()
	for p := 0; p < db.Cfg.Pages; p++ {
		for s := 0; s < db.Store.Layout.SlotsPerPage(); s++ {
			rid := heap.RID{Page: storage.PageID(p), Slot: uint16(s)}
			sd, err := db.Read(coord, rid)
			if err != nil {
				t.Fatalf("image hash read %v: %v", rid, err)
			}
			fmt.Fprintf(h, "%v|%d|%d|%x\n", rid, sd.Flags, sd.Version, sd.Data)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// recordRun records one seeded chaos run and returns its result, schedule,
// and final image hash.
func recordRun(t *testing.T, proto recovery.Protocol, seed int64, episodes int) (ChaosResult, *sched.Schedule, string) {
	t.Helper()
	db := chaosDB(t, proto, 4)
	inj := fault.New(chaosPlan(seed))
	rec := sched.NewRecorder()
	res, err := RunChaosSession(db, inj, chaosSpec(seed), episodes, rec)
	if err != nil {
		t.Fatalf("record run (proto %v seed %d): %v", proto, seed, err)
	}
	return res, rec.Schedule(), imageHash(t, db)
}

// replayRun replays a schedule and returns the result and image hash.
func replayRun(t *testing.T, proto recovery.Protocol, schedule *sched.Schedule, episodes int) (ChaosResult, string) {
	t.Helper()
	db := chaosDB(t, proto, 4)
	inj := fault.New(chaosPlan(schedule.FaultSeed))
	res, err := RunChaosSession(db, inj, chaosSpec(schedule.Seed), episodes, sched.NewReplayer(schedule))
	if err != nil {
		t.Fatalf("replay run (proto %v): %v", proto, err)
	}
	return res, imageHash(t, db)
}

// TestChaosRecordReplayDeterminism is the replay gate: record a seeded chaos
// run, replay the schedule twice, and require the full ChaosResult and the
// final database images to be identical across record and both replays.
func TestChaosRecordReplayDeterminism(t *testing.T) {
	protos := []recovery.Protocol{
		recovery.VolatileSelectiveRedo,
		recovery.StableEager,
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				res0, schedule, img0 := recordRun(t, proto, seed, 3)
				if len(res0.Violations) != 0 {
					t.Fatalf("seed %d: recording run violated IFA:\n%s",
						seed, strings.Join(res0.Violations, "\n"))
				}
				if len(schedule.Points) == 0 || len(schedule.Episodes) != 3 {
					t.Fatalf("seed %d: implausible schedule: %d points, episodes %v",
						seed, len(schedule.Points), schedule.Episodes)
				}
				res1, img1 := replayRun(t, proto, schedule, 0)
				res2, img2 := replayRun(t, proto, schedule, 0)
				if !reflect.DeepEqual(res1, res2) {
					t.Errorf("seed %d: two replays disagree:\n  %+v\n  %+v", seed, res1, res2)
				}
				if img1 != img2 {
					t.Errorf("seed %d: two replays produced different images", seed)
				}
				if !reflect.DeepEqual(res0, res1) {
					t.Errorf("seed %d: replay diverged from recording:\n  rec %+v\n  rep %+v", seed, res0, res1)
				}
				if img0 != img1 {
					t.Errorf("seed %d: replay image differs from recording's", seed)
				}
			}
		})
	}
}

// TestChaosRecordReplayGroupForce re-runs the replay gate with epoch/group
// commit forces enabled: under an attached schedule session the leader's
// epoch window and every follower wait round become recorded scheduling
// points, so a replay must coalesce the exact same commits into the exact
// same physical forces. The schedule must also stamp Spec.GroupForce so
// replay tooling rebuilds the matching DB config.
func TestChaosRecordReplayGroupForce(t *testing.T) {
	gfDB := func() *recovery.DB {
		db, err := recovery.New(recovery.Config{
			Machine:           machine.Config{Nodes: 4, Lines: 4096},
			Protocol:          recovery.VolatileSelectiveRedo,
			LinesPerPage:      4,
			RecsPerLine:       4,
			Pages:             16,
			LockTableLines:    128,
			GroupCommitForces: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	for seed := int64(1); seed <= 2; seed++ {
		db := gfDB()
		inj := fault.New(chaosPlan(seed))
		rec := sched.NewRecorder()
		res0, err := RunChaosSession(db, inj, chaosSpec(seed), 3, rec)
		if err != nil {
			t.Fatalf("record run (seed %d): %v", seed, err)
		}
		if len(res0.Violations) != 0 {
			t.Fatalf("seed %d: recording run violated IFA:\n%s",
				seed, strings.Join(res0.Violations, "\n"))
		}
		schedule := rec.Schedule()
		if schedule.Spec == nil || !schedule.Spec.GroupForce {
			t.Fatalf("seed %d: schedule did not record GroupForce (spec %+v)", seed, schedule.Spec)
		}
		img0 := imageHash(t, db)
		replay := func() (ChaosResult, string) {
			db := gfDB()
			inj := fault.New(chaosPlan(schedule.FaultSeed))
			res, err := RunChaosSession(db, inj, chaosSpec(schedule.Seed), 0, sched.NewReplayer(schedule))
			if err != nil {
				t.Fatalf("groupforce replay (seed %d): %v", seed, err)
			}
			return res, imageHash(t, db)
		}
		res1, img1 := replay()
		res2, img2 := replay()
		if !reflect.DeepEqual(res1, res2) {
			t.Errorf("seed %d: two groupforce replays disagree:\n  %+v\n  %+v", seed, res1, res2)
		}
		if !reflect.DeepEqual(res0, res1) {
			t.Errorf("seed %d: groupforce replay diverged from recording:\n  rec %+v\n  rep %+v", seed, res0, res1)
		}
		if img0 != img1 || img1 != img2 {
			t.Errorf("seed %d: groupforce record/replay images differ (%s / %s / %s)",
				seed, img0[:12], img1[:12], img2[:12])
		}
	}
}

// TestScheduleRoundTrip checks that a recorded schedule survives JSON
// serialization bit-for-bit (the replay above re-reads it from disk).
func TestScheduleRoundTrip(t *testing.T) {
	_, schedule, _ := recordRun(t, recovery.VolatileSelectiveRedo, 2, 2)
	path := filepath.Join(t.TempDir(), "schedule.json")
	if err := schedule.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := sched.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(schedule, got) {
		t.Fatalf("schedule did not round-trip:\n  wrote %d points %d draws %d notes\n  read  %d points %d draws %d notes",
			len(schedule.Points), len(schedule.Draws), len(schedule.Notes),
			len(got.Points), len(got.Draws), len(got.Notes))
	}
}
