package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/sched"
	"smdb/internal/txn"
)

// RunConcurrent drives the workload with one goroutine per live node — real
// parallelism against the thread-safe simulated machine, for stress tests
// and wall-clock benchmarks. Workers stop early when the stop channel
// closes or their node crashes (machine.ErrNodeDown); transactions in
// flight at that moment are left active, exactly as a crash would leave
// them, so the caller can proceed to Recover and CheckIFA.
//
// Unlike Run, interleaving is scheduler-dependent; per-worker PRNGs keep
// each node's operation stream (though not the global order) reproducible.
func (r *Runner) RunConcurrent(stop <-chan struct{}) (Result, error) {
	var (
		res      Result
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		opCount  atomic.Int64
	)
	rawStop := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	// With a schedule session attached, every stop observation is a
	// scheduling point: recording captures the outcome each worker actually
	// saw (and where in the interleaving it saw it); replay feeds the
	// recorded outcome back instead of consulting the channel, so a
	// replayed worker stops at exactly the recorded step.
	stopFor := func(nd machine.NodeID) func() bool {
		if r.Sched == nil {
			return rawStop
		}
		actor := int32(nd)
		if r.Sched.Replaying() {
			return func() bool { return r.Sched.Point(actor, sched.SiteStop, 0) != 0 }
		}
		return func() bool {
			var v int64
			if rawStop() {
				v = 1
			}
			return r.Sched.Point(actor, sched.SiteStop, v) != 0
		}
	}
	start := r.DB.M.MaxClock()
	for _, nd := range r.DB.M.AliveNodes() {
		nd := nd
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r.Sched != nil {
				// Release the scheduler floor at every exit path, so the
				// next scheduled worker can run.
				defer r.Sched.Exit(int32(nd))
			}
			local, err := r.runWorker(nd, stopFor(nd), &opCount)
			mu.Lock()
			defer mu.Unlock()
			res.Committed += local.Committed
			res.Aborted += local.Aborted
			res.Reads += local.Reads
			res.Writes += local.Writes
			res.BlockedRetries += local.BlockedRetries
			res.Deadlocks += local.Deadlocks
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()
	res.SimTime = r.DB.M.MaxClock() - start
	if ops := res.Reads + res.Writes; ops > 0 {
		res.SimTimePerOp = res.SimTime / int64(ops)
	}
	return res, firstErr
}

// runWorker executes one node's transaction quota.
func (r *Runner) runWorker(nd machine.NodeID, stopNow func() bool, opCount *atomic.Int64) (Result, error) {
	var res Result
	rng := rand.New(rand.NewSource(r.Spec.Seed + int64(nd)*7919))
	for t := 0; t < r.Spec.TxnsPerNode; t++ {
		if stopNow() {
			return res, nil
		}
		tx, err := r.Mgr.Begin(nd)
		if errors.Is(err, machine.ErrNodeDown) {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		willAbort := rng.Float64() < r.Spec.AbortFraction
		dead := false
		for op := 0; op < r.Spec.OpsPerTxn; op++ {
			rid := r.pickRIDWith(rng, nd)
			read := rng.Float64() < r.Spec.ReadFraction
			for {
				if stopNow() {
					return res, nil // leave the transaction in flight
				}
				var err error
				if read {
					_, err = tx.Read(rid)
				} else {
					err = tx.Write(rid, []byte{byte(rng.Intn(250) + 2), byte(nd)})
				}
				switch {
				case err == nil:
					if read {
						res.Reads++
					} else {
						res.Writes++
					}
					opCount.Add(1)
				case errors.Is(err, txn.ErrBlocked), errors.Is(err, machine.ErrLineLost):
					// Lock wait, or a stall on data destroyed by a crash
					// that recovery has not yet repaired.
					res.BlockedRetries++
					runtime.Gosched()
					continue
				case errors.Is(err, txn.ErrDeadlock):
					res.Deadlocks++
					res.Aborted++
					if err := tx.Abort(); err != nil && !errors.Is(err, machine.ErrNodeDown) {
						return res, err
					}
					dead = true
				case errors.Is(err, machine.ErrNodeDown):
					return res, nil // crashed mid-transaction: leave it for recovery
				case errors.Is(err, txn.ErrNotFound):
					res.Reads++
				default:
					return res, fmt.Errorf("workload: node %d concurrent op on %v: %w", nd, rid, err)
				}
				break
			}
			if dead {
				break
			}
		}
		if dead {
			continue
		}
		for {
			var finErr error
			if willAbort {
				finErr = tx.Abort()
			} else {
				finErr = tx.Commit()
			}
			switch {
			case finErr == nil:
			case errors.Is(finErr, txn.ErrBlocked), errors.Is(finErr, machine.ErrLineLost):
				// Same pair as the op loop above: a commit/abort can stall on
				// the freeze window, or on data a crash destroyed that
				// recovery has not yet repaired (undo walks read the heap).
				if stopNow() {
					return res, nil // left in flight for recovery
				}
				res.BlockedRetries++
				runtime.Gosched()
				continue
			case errors.Is(finErr, machine.ErrNodeDown):
				return res, nil
			default:
				return res, finErr
			}
			if willAbort {
				res.Aborted++
			} else {
				res.Committed++
			}
			break
		}
	}
	return res, nil
}

// pickRIDWith is pickRID with an explicit PRNG (per-worker).
func (r *Runner) pickRIDWith(rng *rand.Rand, nd machine.NodeID) heap.RID {
	if rng.Float64() < r.Spec.SharingFraction && len(r.sp.shared) > 0 {
		pool := r.sp.shared
		if r.Spec.HotSpot > 0 && rng.Float64() < r.Spec.HotProb {
			hot := int(float64(len(pool)) * r.Spec.HotSpot)
			if hot < 1 {
				hot = 1
			}
			return pool[rng.Intn(hot)]
		}
		return pool[rng.Intn(len(pool))]
	}
	part := r.sp.private[nd]
	if len(part) == 0 {
		return r.sp.shared[rng.Intn(len(r.sp.shared))]
	}
	return part[rng.Intn(len(part))]
}
