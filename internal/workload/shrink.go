package workload

import (
	"fmt"
	"time"

	"smdb/internal/fault"
	"smdb/internal/recovery"
	"smdb/internal/sched"
)

// The schedule shrinker: delta-debugging over a recorded failing chaos
// schedule. Candidates drop whole episodes, truncate workers at earlier stop
// observations, and remove fault-injector draws; a candidate is kept only if
// its replay still produces an IFA violation. Candidates whose control flow
// no longer matches their edited schedule diverge and are simply rejected —
// divergence is the shrinker's rollback mechanism, not an error.

// ShrinkEnv supplies the shrinker with fresh replay environments. Every
// candidate test needs a pristine database and injector, because a chaos run
// mutates both.
type ShrinkEnv struct {
	// NewDB builds a fresh database configured exactly like the one the
	// schedule was recorded against (protocol, nodes, sequential recovery).
	NewDB func() (*recovery.DB, error)
	// NewInjector builds a fresh injector with the recorded plan. Its PRNG is
	// never consulted during replay (draws come from the schedule), but the
	// plan's MaxCrashes budget still applies.
	NewInjector func() *fault.Injector
	// Spec is the workload spec of the recorded run; Seed is overridden from
	// the schedule.
	Spec Spec
	// Watchdog overrides the replay divergence timeout for candidate tests
	// (shrink candidates diverge routinely; a short watchdog keeps the loop
	// fast). Zero keeps sched.DefaultWatchdog.
	Watchdog time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// ShrinkReport summarizes one Shrink call.
type ShrinkReport struct {
	// Tests counts candidate replays executed; Rejected how many of those
	// diverged or no longer failed.
	Tests, Rejected int
	// Before/After report the schedule size at each end.
	BeforePoints, AfterPoints     int
	BeforeEpisodes, AfterEpisodes int
	BeforeDraws, AfterDraws       int
}

func (r ShrinkReport) String() string {
	return fmt.Sprintf("shrink: %d candidate runs (%d rejected); episodes %d -> %d, points %d -> %d, draws %d -> %d",
		r.Tests, r.Rejected, r.BeforeEpisodes, r.AfterEpisodes,
		r.BeforePoints, r.AfterPoints, r.BeforeDraws, r.AfterDraws)
}

func (e *ShrinkEnv) logf(format string, args ...any) {
	if e.Log != nil {
		e.Log(format, args...)
	}
}

// fails replays a candidate schedule on a fresh environment and reports
// whether it still produces an IFA violation. Harness errors and divergence
// both reject the candidate.
//
// The replay runs under a hard deadline, not just the session watchdog: a
// truncation candidate can retire a worker that held a 2PL lock, leaving
// the next scheduled worker parked in the lock manager's condition variable
// — an engine-level wait the scheduling watchdog cannot see. Such a
// candidate is rejected at the deadline and its goroutine abandoned (it
// holds only its own candidate database).
func (e *ShrinkEnv) fails(sch *sched.Schedule, rep *ShrinkReport) bool {
	rep.Tests++
	db, err := e.NewDB()
	if err != nil {
		rep.Rejected++
		return false
	}
	sess := sched.NewReplayer(sch)
	if e.Watchdog > 0 {
		sess.SetWatchdog(e.Watchdog)
	}
	spec := e.Spec
	spec.Seed = sch.Seed
	deadline := 4*e.Watchdog + 2*time.Second
	if e.Watchdog <= 0 {
		deadline = 4*sched.DefaultWatchdog + 2*time.Second
	}
	out := make(chan bool, 1)
	go func() {
		res, err := RunChaosSession(db, e.NewInjector(), spec, 0, sess)
		out <- err == nil && len(res.Violations) > 0
	}()
	select {
	case ok := <-out:
		if !ok {
			rep.Rejected++
		}
		return ok
	case <-time.After(deadline):
		rep.Rejected++
		return false
	}
}

// episodeBlocks splits the point list into per-episode half-open ranges
// [start, end), one per SiteEpisode marker, marker included.
func episodeBlocks(sch *sched.Schedule) [][2]int {
	var blocks [][2]int
	for i, p := range sch.Points {
		if p.Actor == sched.HarnessActor && p.Site == sched.SiteEpisode {
			if n := len(blocks); n > 0 {
				blocks[n-1][1] = i
			}
			blocks = append(blocks, [2]int{i, len(sch.Points)})
		}
	}
	return blocks
}

// keepEpisodes rebuilds the schedule with only the marked episode blocks.
func keepEpisodes(sch *sched.Schedule, keep []bool) *sched.Schedule {
	blocks := episodeBlocks(sch)
	out := *sch
	out.Points = nil
	out.Episodes = nil
	out.EpisodeSeeds = nil
	out.Notes = nil // positions no longer meaningful after surgery
	for i, b := range blocks {
		if !keep[i] {
			continue
		}
		out.Points = append(out.Points, sch.Points[b[0]:b[1]]...)
		if i < len(sch.Episodes) {
			out.Episodes = append(out.Episodes, sch.Episodes[i])
		}
		if i < len(sch.EpisodeSeeds) {
			out.EpisodeSeeds = append(out.EpisodeSeeds, sch.EpisodeSeeds[i])
		}
	}
	out.Draws = append([]sched.Draw(nil), sch.Draws...)
	return &out
}

// keepDraws rebuilds the schedule with only the marked draws.
func keepDraws(sch *sched.Schedule, keep []bool) *sched.Schedule {
	out := *sch
	out.Draws = nil
	for i, d := range sch.Draws {
		if keep[i] {
			out.Draws = append(out.Draws, d)
		}
	}
	return &out
}

// ddmin is classic delta debugging over n items: it greedily removes chunks
// (halving granularity as removals stop working) while test keeps passing,
// and returns the kept-item mask. test(keep) must report whether the
// configuration still exhibits the failure.
func ddmin(n int, test func(keep []bool) bool) []bool {
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	if n <= 1 {
		return keep
	}
	granularity := 2
	for {
		kept := indicesOf(keep)
		if len(kept) <= 1 {
			return keep
		}
		// Clamp instead of bailing when the doubling overshoots: the final
		// granularity == len(kept) pass is the chunk-size-1 sweep that makes
		// the result 1-minimal per chunk.
		if granularity > len(kept) {
			granularity = len(kept)
		}
		chunk := (len(kept) + granularity - 1) / granularity
		removed := false
		for lo := 0; lo < len(kept); lo += chunk {
			hi := lo + chunk
			if hi > len(kept) {
				hi = len(kept)
			}
			cand := append([]bool(nil), keep...)
			for _, idx := range kept[lo:hi] {
				cand[idx] = false
			}
			if test(cand) {
				copy(keep, cand)
				removed = true
				break
			}
		}
		switch {
		case removed:
			granularity = 2
		case granularity >= len(kept):
			return keep
		default:
			granularity *= 2
		}
	}
}

// suffixTrimMask keeps, for every draw key, only the prefix of its FIFO up
// to and including the last fired draw.
func suffixTrimMask(sch *sched.Schedule) []bool {
	lastFired := map[string]int{}
	for i, d := range sch.Draws {
		if d.Fire {
			lastFired[d.Key] = i
		}
	}
	keep := make([]bool, len(sch.Draws))
	for i, d := range sch.Draws {
		last, ok := lastFired[d.Key]
		keep[i] = ok && i <= last
	}
	return keep
}

// firedMask keeps only the draws that fired.
func firedMask(sch *sched.Schedule) []bool {
	keep := make([]bool, len(sch.Draws))
	for i, d := range sch.Draws {
		keep[i] = d.Fire
	}
	return keep
}

func indicesOf(keep []bool) []int {
	var out []int
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// truncateActor builds a candidate where the actor's point at index p (a
// stop observation inside block [lo,hi)) answers "stop now" and all of the
// actor's later points in that block are removed — the worker retires early.
func truncateActor(sch *sched.Schedule, actor int32, p, hi int) *sched.Schedule {
	out := *sch
	out.Points = make([]sched.Point, 0, len(sch.Points))
	for i, pt := range sch.Points {
		if i == p {
			pt.Arg = 1
			out.Points = append(out.Points, pt)
			continue
		}
		if i > p && i < hi && pt.Actor == actor {
			continue
		}
		out.Points = append(out.Points, pt)
	}
	out.Notes = nil
	return &out
}

// Shrink minimizes a failing schedule: (1) ddmin over whole episodes, (2)
// per-actor stop truncation inside the surviving episodes, (3) ddmin over
// injector draws. The input must fail (replay to at least one IFA
// violation); Shrink returns an error otherwise. The returned schedule is
// the smallest failing candidate found.
func Shrink(env ShrinkEnv, sch *sched.Schedule) (*sched.Schedule, ShrinkReport, error) {
	var rep ShrinkReport
	rep.BeforePoints = len(sch.Points)
	rep.BeforeEpisodes = len(episodeBlocks(sch))
	rep.BeforeDraws = len(sch.Draws)

	if !env.fails(sch, &rep) {
		return nil, rep, fmt.Errorf("workload: shrink input does not reproduce a violation (or diverged)")
	}

	// Phase 1: whole episodes. The failing episode's derived seed travels
	// with its marker (episodes carry their ORIGINAL index), so candidates
	// that drop predecessors replay the survivors with the right seeds.
	cur := sch
	if blocks := episodeBlocks(cur); len(blocks) > 1 {
		keep := ddmin(len(blocks), func(keep []bool) bool {
			any := false
			for _, k := range keep {
				any = any || k
			}
			if !any {
				return false
			}
			return env.fails(keepEpisodes(cur, keep), &rep)
		})
		cur = keepEpisodes(cur, keep)
		env.logf("shrink: episodes %d -> %d", len(blocks), len(episodeBlocks(cur)))
	}

	// Phase 2: stop truncation. For every actor in every surviving episode,
	// retire the worker at its earliest stop observation that still fails.
	for {
		improved := false
		blocks := episodeBlocks(cur)
		for _, b := range blocks {
			actors := map[int32]bool{}
			for i := b[0]; i < b[1]; i++ {
				actors[cur.Points[i].Actor] = true
			}
			for actor := range actors {
				if actor == sched.HarnessActor {
					continue
				}
				for i := b[0]; i < b[1]; i++ {
					pt := cur.Points[i]
					if pt.Actor != actor || pt.Site != sched.SiteStop || pt.Arg != 0 {
						continue
					}
					cand := truncateActor(cur, actor, i, b[1])
					if len(cand.Points) < len(cur.Points) && env.fails(cand, &rep) {
						cur = cand
						improved = true
					}
					break // only the earliest live stop per actor per pass
				}
				if improved {
					break // block indices are stale; restart the scan
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	env.logf("shrink: points %d -> %d after stop truncation", rep.BeforePoints, len(cur.Points))

	// Phase 3: injector draws, cheapest reductions first. (a) Per-key no-fire
	// suffixes are always removable — an exhausted key replays as a quiet
	// no-fire, so dropping a FIFO's tail after its last fired draw cannot
	// change any replayed outcome; one candidate validates the whole trim.
	// (b) Keeping only the fired draws is NOT semantics-preserving (removing
	// a no-fire entry shifts its key's later draws earlier), but when the
	// interleaving tolerates it, one test eliminates nearly everything.
	// (c) ddmin mops up whatever survives.
	if cand := keepDraws(cur, suffixTrimMask(cur)); len(cand.Draws) < len(cur.Draws) && env.fails(cand, &rep) {
		cur = cand
		env.logf("shrink: draws %d -> %d after no-fire suffix trim", rep.BeforeDraws, len(cur.Draws))
	}
	if cand := keepDraws(cur, firedMask(cur)); len(cand.Draws) < len(cur.Draws) && env.fails(cand, &rep) {
		cur = cand
		env.logf("shrink: draws -> %d keeping only fired", len(cur.Draws))
	}
	if len(cur.Draws) > 0 {
		keep := ddmin(len(cur.Draws), func(keep []bool) bool {
			return env.fails(keepDraws(cur, keep), &rep)
		})
		cur = keepDraws(cur, keep)
	}
	env.logf("shrink: draws %d -> %d", rep.BeforeDraws, len(cur.Draws))

	// The minimized schedule must still fail (paranoia: phase order effects).
	if !env.fails(cur, &rep) {
		return nil, rep, fmt.Errorf("workload: shrink result stopped failing (shrinker bug)")
	}
	rep.AfterPoints = len(cur.Points)
	rep.AfterEpisodes = len(episodeBlocks(cur))
	rep.AfterDraws = len(cur.Draws)
	return cur, rep, nil
}
