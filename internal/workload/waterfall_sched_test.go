package workload

import (
	"reflect"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/obs/waterfall"
	"smdb/internal/recovery"
	"smdb/internal/sched"
)

// wfConfig bounds the recorder tightly so the test exercises both selection
// mechanisms: a small top-K that must discriminate, and a 1-in-8 reservoir.
func wfConfig(nodes int) waterfall.Config {
	return waterfall.Config{TopK: 4, SampleN: 8, Nodes: nodes}
}

// slowIDs returns the tail sampler's retained transaction ids in Slow order.
func slowIDs(wf *waterfall.Recorder) []int64 {
	var ids []int64
	for _, w := range wf.Slow(0) {
		ids = append(ids, w.Txn)
	}
	return ids
}

// TestWaterfallReplaySelectsIdenticalTxns is the tail sampler's determinism
// gate: a recorded chaos run and its replays must sample the same slow
// transactions — the top-K windows see identical sim latencies, and the
// 1-in-N reservoir is a pure function of the txn id. Without this, a trace
// captured from a replayed incident would spotlight different transactions
// than the incident itself.
func TestWaterfallReplaySelectsIdenticalTxns(t *testing.T) {
	proto := recovery.VolatileSelectiveRedo
	seed := int64(2)

	db := chaosDB(t, proto, 4)
	wf0 := waterfall.New(wfConfig(db.M.Nodes()))
	db.AttachWaterfall(wf0)
	inj := fault.New(chaosPlan(seed))
	rec := sched.NewRecorder()
	if _, err := RunChaosSession(db, inj, chaosSpec(seed), 2, rec); err != nil {
		t.Fatalf("record run: %v", err)
	}
	schedule := rec.Schedule()
	ids0 := slowIDs(wf0)
	if len(ids0) == 0 {
		t.Fatal("tail sampler retained nothing during the recording run")
	}
	if wf0.Completed() == 0 {
		t.Fatal("no waterfalls completed during the recording run")
	}

	for i := 0; i < 2; i++ {
		db := chaosDB(t, proto, 4)
		wf := waterfall.New(wfConfig(db.M.Nodes()))
		db.AttachWaterfall(wf)
		inj := fault.New(chaosPlan(schedule.FaultSeed))
		if _, err := RunChaosSession(db, inj, chaosSpec(schedule.Seed), 0, sched.NewReplayer(schedule)); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if ids := slowIDs(wf); !reflect.DeepEqual(ids0, ids) {
			t.Errorf("replay %d sampled different transactions:\n  recorded %v\n  replayed %v", i, ids0, ids)
		}
		if got := wf.Completed(); got != wf0.Completed() {
			t.Errorf("replay %d completed %d waterfalls, recording completed %d", i, got, wf0.Completed())
		}
	}
}
