package workload

import (
	"testing"

	"smdb/internal/machine"
	"smdb/internal/recovery"
)

func TestConcurrentCompletes(t *testing.T) {
	db := newDB(t, recovery.VolatileSelectiveRedo, 4)
	r := NewRunner(db, Spec{TxnsPerNode: 10, OpsPerTxn: 6, ReadFraction: 0.5, SharingFraction: 0.4, Seed: 3})
	stop := make(chan struct{})
	res, err := r.RunConcurrent(stop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.Aborted < 4*10-res.Deadlocks {
		t.Errorf("finished %d+%d of 40 (deadlocks %d)", res.Committed, res.Aborted, res.Deadlocks)
	}
	if v := db.CheckIFA(0); len(v) != 0 {
		t.Errorf("post-run: %v", v)
	}
	if v := db.VerifyCommittedDurability(0); len(v) != 0 {
		t.Errorf("durability: %v", v)
	}
}

// TestConcurrentCrashMidRun injects a real crash while four goroutines are
// hammering shared records, then recovers and checks IFA. This is the
// closest the test suite comes to the paper's operating conditions: true
// parallelism, migration storms, and an asynchronous failure.
func TestConcurrentCrashMidRun(t *testing.T) {
	for _, proto := range []recovery.Protocol{
		recovery.VolatileRedoAll,
		recovery.VolatileSelectiveRedo,
		recovery.StableTriggered,
	} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			db := newDB(t, proto, 4)
			r := NewRunner(db, Spec{
				TxnsPerNode: 400, OpsPerTxn: 6,
				ReadFraction: 0.4, SharingFraction: 0.7, Seed: 9,
			})
			stop := make(chan struct{})
			done := make(chan struct{})
			var res Result
			var runErr error
			go func() {
				res, runErr = r.RunConcurrent(stop)
				close(done)
			}()
			// Let real work accumulate, then crash node 2 out from under
			// the workers and stop the rest.
			for db.Stats().Updates < 50 {
			}
			db.Crash(2)
			close(stop)
			<-done
			if runErr != nil {
				t.Fatal(runErr)
			}
			if res.Committed == 0 {
				t.Fatal("no transactions committed before the crash")
			}
			if _, err := db.Recover([]machine.NodeID{2}); err != nil {
				t.Fatal(err)
			}
			if v := db.CheckIFA(0); len(v) != 0 {
				for _, s := range v {
					t.Errorf("IFA violation: %s", s)
				}
			}
		})
	}
}
