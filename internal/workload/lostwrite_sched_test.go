package workload

import (
	"errors"
	"strings"
	"testing"

	"smdb/internal/fault"
	"smdb/internal/recovery"
	"smdb/internal/sched"
)

// testdata/lostwrite.min.json is a shrunk real capture of the
// committed-value-lost race that used to fail TestChaosSeededSweep under
// -race roughly one run in five (ROADMAP's former open item 6, EXPERIMENTS
// E21): a survivor passes the freeze check, a crash then destroys the sole
// dirty committed copy of its target line, and the survivor's fetch
// reinstalls the stale disk image — so its stranded-rollback abort later
// restores a stale before-image over a committed write. It was recorded
// with `smdb-chaos -record -ablate-install-gate` at the standard chaos
// sweep fault mix and minimized with `smdb-chaos -shrink`.

// lostWriteSchedule loads the committed schedule and rebuilds its replay
// environment exactly as cmd/smdb-chaos does: everything from the file.
func lostWriteSchedule(t *testing.T) (*sched.Schedule, recovery.Protocol, Spec, fault.Plan) {
	t.Helper()
	sch, err := sched.ReadFile("testdata/lostwrite.min.json")
	if err != nil {
		t.Fatalf("loading committed schedule: %v", err)
	}
	proto, ok := recovery.ParseProtocol(sch.Protocol)
	if !ok {
		t.Fatalf("schedule names unknown protocol %q", sch.Protocol)
	}
	rs := sch.Spec
	if rs == nil {
		t.Fatal("schedule carries no RunSpec")
	}
	spec := Spec{
		TxnsPerNode:     rs.TxnsPerNode,
		OpsPerTxn:       rs.OpsPerTxn,
		ReadFraction:    rs.ReadFraction,
		SharingFraction: rs.SharingFraction,
		HotSpot:         rs.HotSpot,
		HotProb:         rs.HotProb,
		AbortFraction:   rs.AbortFraction,
		HeapPages:       rs.HeapPages,
		Seed:            sch.Seed,
	}
	plan := fault.Plan{
		Seed:         sch.FaultSeed,
		MaxCrashes:   rs.MaxCrashes,
		MinAlive:     rs.MinAlive,
		IOErrorBurst: rs.IOErrorBurst,
		PIOError:     rs.PIOError,
	}
	return sch, proto, spec, plan
}

// TestLostWriteScheduleRegression replays the minimized schedule in both
// directions: with the install gate ablated (the pre-fix engine) the
// recorded violation must reproduce deterministically, and with the gate in
// place the same interleaving must not lose the committed write.
func TestLostWriteScheduleRegression(t *testing.T) {
	sch, proto, spec, plan := lostWriteSchedule(t)
	if sch.FailEpisode < 0 {
		t.Fatalf("committed schedule records no failing episode")
	}

	t.Run("ablated-gate-reproduces", func(t *testing.T) {
		db := chaosDB(t, proto, sch.Nodes)
		db.M.SetInstallGate(nil)
		res, err := RunChaosSession(db, fault.New(plan), spec, 0, sched.NewReplayer(sch))
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		lost := false
		for _, v := range res.Violations {
			if strings.Contains(v, "committed value lost") {
				lost = true
			}
		}
		if !lost {
			t.Fatalf("the minimized schedule no longer reproduces the lost write with the gate ablated; violations: %v",
				res.Violations)
		}
	})

	t.Run("install-gate-prevents", func(t *testing.T) {
		db := chaosDB(t, proto, sch.Nodes)
		res, err := RunChaosSession(db, fault.New(plan), spec, 0, sched.NewReplayer(sch))
		if err != nil {
			// The gate refusing the stale install may legitimately change
			// control flow enough that the replay leaves the schedule; what
			// it must never do is complete the schedule AND lose the write.
			if errors.Is(err, ErrScheduleDiverged) {
				return
			}
			t.Fatalf("replay: %v", err)
		}
		for _, v := range res.Violations {
			if strings.Contains(v, "committed value lost") {
				t.Fatalf("the install gate failed to prevent the recorded lost write: %s", v)
			}
		}
	})
}
