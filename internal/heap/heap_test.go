package heap

import (
	"errors"
	"testing"
	"testing/quick"

	"smdb/internal/machine"
	"smdb/internal/storage"
)

func testLayout(t *testing.T, recsPerLine int) Layout {
	t.Helper()
	l, err := NewLayout(128, 4, recsPerLine)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newStore(t *testing.T, nodes, recsPerLine, npages int) *Store {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, Lines: 4096})
	s := NewStore(m, testLayout(t, recsPerLine), npages)
	for p := 0; p < npages; p++ {
		if err := s.FormatPage(0, storage.PageID(p)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestLayoutArithmetic(t *testing.T) {
	l := testLayout(t, 4)
	if l.SlotBytes() != 32 {
		t.Errorf("SlotBytes = %d, want 32", l.SlotBytes())
	}
	if l.RecordSize() != 24 {
		t.Errorf("RecordSize = %d, want 24", l.RecordSize())
	}
	if l.SlotsPerPage() != 12 {
		t.Errorf("SlotsPerPage = %d, want 12", l.SlotsPerPage())
	}
	if l.PageBytes() != 512 {
		t.Errorf("PageBytes = %d, want 512", l.PageBytes())
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(128, 1, 4); err == nil {
		t.Error("LinesPerPage=1 accepted")
	}
	if _, err := NewLayout(128, 4, 0); err == nil {
		t.Error("RecsPerLine=0 accepted")
	}
	if _, err := NewLayout(16, 4, 4); err == nil {
		t.Error("impossible record size accepted")
	}
}

func TestSlotRoundTrip(t *testing.T) {
	s := newStore(t, 2, 4, 2)
	rid := RID{Page: 1, Slot: 5}
	want := SlotData{
		Tag:     1,
		Flags:   FlagOccupied,
		Version: 0x123456789a,
		Data:    []byte("hello record"),
	}
	if err := s.WriteSlot(0, rid, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadSlot(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != want.Tag || got.Flags != want.Flags || got.Version != want.Version {
		t.Errorf("metadata: got %+v", got)
	}
	if string(got.Data[:len(want.Data)]) != string(want.Data) {
		t.Errorf("data = %q", got.Data)
	}
	if !got.Occupied() || got.Deleted() {
		t.Errorf("flag helpers wrong: %+v", got)
	}
}

func TestSlotsShareLines(t *testing.T) {
	s := newStore(t, 2, 4, 1)
	// Slots 0..3 are on the same line; 4 is on the next.
	l0, _, err := s.LineOf(RID{Page: 0, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	l3, off3, err := s.LineOf(RID{Page: 0, Slot: 3})
	if err != nil {
		t.Fatal(err)
	}
	l4, _, err := s.LineOf(RID{Page: 0, Slot: 4})
	if err != nil {
		t.Fatal(err)
	}
	if l0 != l3 || off3 != 3*s.Layout.SlotBytes() {
		t.Errorf("slots 0 and 3: lines %d, %d off %d", l0, l3, off3)
	}
	if l4 == l0 {
		t.Error("slot 4 should be on the next line")
	}
	// One record per line layout never shares.
	s1 := newStore(t, 2, 1, 1)
	a, _, _ := s1.LineOf(RID{Page: 0, Slot: 0})
	b, _, _ := s1.LineOf(RID{Page: 0, Slot: 1})
	if a == b {
		t.Error("RecsPerLine=1 put two records in one line")
	}
}

func TestBadSlot(t *testing.T) {
	s := newStore(t, 1, 4, 1)
	for _, rid := range []RID{
		{Page: 5, Slot: 0},
		{Page: 0, Slot: 200},
	} {
		if _, err := s.ReadSlot(0, rid); !errors.Is(err, ErrBadSlot) {
			t.Errorf("ReadSlot(%v): err = %v, want ErrBadSlot", rid, err)
		}
	}
}

func TestWriteTagAndFlagsOnly(t *testing.T) {
	s := newStore(t, 2, 4, 1)
	rid := RID{Page: 0, Slot: 2}
	if err := s.WriteSlot(0, rid, SlotData{Tag: machine.NoNode, Flags: FlagOccupied, Version: 7, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteTag(0, rid, 1); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadSlot(0, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 1 || got.Version != 7 || got.Data[0] != 'x' {
		t.Errorf("tag write clobbered slot: %+v", got)
	}
	if err := s.WriteFlags(0, rid, FlagOccupied|FlagDeleted); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ReadSlot(0, rid)
	if !got.Deleted() || got.Tag != 1 {
		t.Errorf("flags write wrong: %+v", got)
	}
	if err := s.WriteTag(0, rid, machine.NoNode); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ReadSlot(0, rid)
	if got.Tag != machine.NoNode {
		t.Errorf("tag clear wrong: %+v", got)
	}
}

func TestPageVersion(t *testing.T) {
	s := newStore(t, 2, 2, 2)
	if v, err := s.PageVersion(0, 1); err != nil || v != 0 {
		t.Fatalf("initial version = %d, %v", v, err)
	}
	if err := s.SetPageVersion(0, 1, 991); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.PageVersion(1, 1); v != 991 {
		t.Errorf("version = %d, want 991", v)
	}
	// Page 0's version is independent.
	if v, _ := s.PageVersion(0, 0); v != 0 {
		t.Errorf("page 0 version = %d, want 0", v)
	}
}

func TestPageImageRoundTrip(t *testing.T) {
	s := newStore(t, 2, 4, 2)
	rid := RID{Page: 0, Slot: 1}
	if err := s.WriteSlot(0, rid, SlotData{Tag: 0, Flags: FlagOccupied, Version: 3, Data: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	img, err := s.PageImage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != s.Layout.PageBytes() {
		t.Fatalf("image size %d", len(img))
	}
	// Wipe the page, reinstall the image, and check the slot came back.
	for i := 0; i < s.Layout.LinesPerPage; i++ {
		if err := s.M.Discard(0, s.PageBase(0)+machine.LineID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.ResidentPage(0) {
		t.Fatal("page should be gone")
	}
	if err := s.InstallImage(1, 0, img, false); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadSlot(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || string(got.Data[:3]) != "abc" {
		t.Errorf("restored slot = %+v", got)
	}
}

func TestInstallImageOnlyLost(t *testing.T) {
	s := newStore(t, 2, 4, 1)
	// Two slots on different lines; lose one line, keep the other.
	r0 := RID{Page: 0, Slot: 0} // line 1
	r4 := RID{Page: 0, Slot: 4} // line 2
	if err := s.WriteSlot(0, r0, SlotData{Flags: FlagOccupied, Version: 1, Data: []byte("keep"), Tag: machine.NoNode}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSlot(0, r4, SlotData{Flags: FlagOccupied, Version: 1, Data: []byte("lose"), Tag: machine.NoNode}); err != nil {
		t.Fatal(err)
	}
	img, err := s.PageImage(0, 0) // disk image with both
	if err != nil {
		t.Fatal(err)
	}
	// Update r0 in memory after the "flush", then lose r4's line only.
	if err := s.WriteSlot(0, r0, SlotData{Flags: FlagOccupied, Version: 2, Data: []byte("newer"), Tag: machine.NoNode}); err != nil {
		t.Fatal(err)
	}
	line4, _, _ := s.LineOf(r4)
	if err := s.M.Discard(0, line4); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallImage(1, 0, img, true); err != nil {
		t.Fatal(err)
	}
	// r4 restored from the image; r0 keeps the newer cached value.
	got4, err := s.ReadSlot(1, r4)
	if err != nil || string(got4.Data[:4]) != "lose" {
		t.Errorf("lost slot = %+v, %v", got4, err)
	}
	got0, err := s.ReadSlot(1, r0)
	if err != nil || got0.Version != 2 {
		t.Errorf("surviving slot overwritten: %+v, %v", got0, err)
	}
}

func TestSlotOfLine(t *testing.T) {
	s := newStore(t, 1, 4, 3)
	for _, tc := range []struct {
		rid RID
	}{
		{RID{Page: 0, Slot: 0}},
		{RID{Page: 1, Slot: 7}},
		{RID{Page: 2, Slot: 11}},
	} {
		line, _, err := s.LineOf(tc.rid)
		if err != nil {
			t.Fatal(err)
		}
		p, first, ok := s.SlotOfLine(line)
		if !ok || p != tc.rid.Page {
			t.Errorf("SlotOfLine(%d) = %d, %d, %v", line, p, first, ok)
		}
		if int(tc.rid.Slot) < first || int(tc.rid.Slot) >= first+s.Layout.RecsPerLine {
			t.Errorf("slot %d not in [%d, %d)", tc.rid.Slot, first, first+s.Layout.RecsPerLine)
		}
	}
	if _, _, ok := s.SlotOfLine(s.HeaderLine(1)); ok {
		t.Error("header line classified as data line")
	}
	if _, _, ok := s.SlotOfLine(s.Base + machine.LineID(s.NPages*s.Layout.LinesPerPage)); ok {
		t.Error("out-of-store line accepted")
	}
}

// TestQuickSlotEncodeDecode: any slot data round-trips through a line image.
func TestQuickSlotEncodeDecode(t *testing.T) {
	layout, err := NewLayout(128, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(tag uint8, flags byte, version uint64, data []byte) bool {
		version &= 1<<48 - 1
		sd := SlotData{
			Tag:     machine.NodeID(int(tag%65) - 1),
			Flags:   flags,
			Version: version,
		}
		if len(data) > layout.RecordSize() {
			data = data[:layout.RecordSize()]
		}
		sd.Data = data
		raw := EncodeSlot(layout, sd)
		if len(raw) != layout.SlotBytes() {
			return false
		}
		// Embed in a line image at each slot position.
		for pos := 0; pos < layout.RecsPerLine; pos++ {
			img := make([]byte, layout.LineSize)
			copy(img[pos*layout.SlotBytes():], raw)
			got := DecodeSlotFromLine(layout, img, pos)
			if got.Tag != sd.Tag || got.Flags != sd.Flags || got.Version != sd.Version {
				return false
			}
			for i, b := range data {
				if got.Data[i] != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickVersionRoundTrip: 48-bit versions survive the packed encoding.
func TestQuickVersionRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<48 - 1
		var b [versionBytes]byte
		putVersion(b[:], v)
		return versionFrom(b[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
