// Package heap lays database records out on the cache lines of the shared
// memory machine. Pages consist of a header line followed by data lines;
// each data line holds several fixed-size record slots (the paper's premise:
// with 128-byte lines, multiple records share a line unless space is
// wasted). Every slot carries, in the same cache line as the record data:
//
//   - an undo tag — the node ID of the transaction with an uncommitted
//     update to the record (the Tagging Rule of section 4.1.2); NoNode when
//     the record is not active, and
//   - a version — the global update version of the record's last update,
//     used for idempotent redo decisions during restart recovery.
//
// Because tag and version share the record's line, they migrate, survive,
// and are destroyed exactly with the data they describe, which is what makes
// Selective Redo's cache scan sound.
//
// This package provides layout arithmetic and raw slot access only; line
// locking, logging, and the LBM policies are composed above it (internal/
// recovery, internal/txn).
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/storage"
)

// Slot metadata layout within a record slot.
const (
	tagBytes     = 1 // undo tag: node ID + 1; 0 means "no active transaction"
	flagBytes    = 1
	versionBytes = 6 // 48-bit update version
	slotOverhead = tagBytes + flagBytes + versionBytes
)

// Slot flags.
const (
	// FlagOccupied marks a slot that holds a record.
	FlagOccupied = 1 << 0
	// FlagDeleted marks a logically deleted record (section 4.2.1: deletes
	// are performed by marking, so the undo of an uncommitted delete is a
	// simple unmark and the freed space is not reused before commit).
	FlagDeleted = 1 << 1
)

// Layout describes how records map onto lines and pages.
type Layout struct {
	// LineSize is the machine's coherency unit.
	LineSize int
	// LinesPerPage includes the header line.
	LinesPerPage int
	// RecsPerLine is the number of record slots per data line — the
	// paper's key sharing parameter (1 means one object per line).
	RecsPerLine int
}

// NewLayout validates and returns a layout. RecordSize is derived:
// LineSize/RecsPerLine minus the per-slot metadata.
func NewLayout(lineSize, linesPerPage, recsPerLine int) (Layout, error) {
	l := Layout{LineSize: lineSize, LinesPerPage: linesPerPage, RecsPerLine: recsPerLine}
	if linesPerPage < 2 {
		return l, fmt.Errorf("heap: LinesPerPage must be >= 2 (header + data), got %d", linesPerPage)
	}
	if recsPerLine < 1 {
		return l, fmt.Errorf("heap: RecsPerLine must be >= 1, got %d", recsPerLine)
	}
	if l.RecordSize() < 1 {
		return l, fmt.Errorf("heap: %d-byte lines cannot hold %d slots (record size would be %d)",
			lineSize, recsPerLine, l.RecordSize())
	}
	return l, nil
}

// SlotBytes is the total bytes per slot including metadata.
func (l Layout) SlotBytes() int { return l.LineSize / l.RecsPerLine }

// RecordSize is the usable record payload per slot.
func (l Layout) RecordSize() int { return l.SlotBytes() - slotOverhead }

// SlotsPerPage is the number of record slots on one page.
func (l Layout) SlotsPerPage() int { return (l.LinesPerPage - 1) * l.RecsPerLine }

// PageBytes is the page size in bytes (the unit of disk I/O).
func (l Layout) PageBytes() int { return l.LinesPerPage * l.LineSize }

// RID identifies a record: a page and a slot on it.
type RID struct {
	Page storage.PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("r%d.%d", r.Page, r.Slot) }

// Errors.
var (
	ErrBadSlot = errors.New("heap: slot out of range")
)

// Store provides raw slot access to pages resident in shared memory. Frames
// are direct-mapped: page p occupies LinesPerPage lines starting at
// base + p*LinesPerPage. Fetching pages from disk is the buffer manager's
// job; Store assumes the lines it touches are resident and surfaces
// machine.ErrLineLost otherwise.
type Store struct {
	M      *machine.Machine
	Layout Layout
	Base   machine.LineID
	NPages int
}

// NewStore allocates frames for npages pages on m and returns the store.
func NewStore(m *machine.Machine, layout Layout, npages int) *Store {
	if layout.LineSize != m.LineSize() {
		panic(fmt.Sprintf("heap: layout line size %d != machine line size %d", layout.LineSize, m.LineSize()))
	}
	base := m.Alloc(npages * layout.LinesPerPage)
	return &Store{M: m, Layout: layout, Base: base, NPages: npages}
}

// PageBase returns the first line of page p's frame.
func (s *Store) PageBase(p storage.PageID) machine.LineID {
	return s.Base + machine.LineID(int(p)*s.Layout.LinesPerPage)
}

// HeaderLine returns the line holding page p's header (by the section 6
// convention, the first line of the page, which carries the Page-LSN).
func (s *Store) HeaderLine(p storage.PageID) machine.LineID { return s.PageBase(p) }

// LineOf returns the line holding rid's slot and the slot's byte offset in
// that line.
func (s *Store) LineOf(rid RID) (machine.LineID, int, error) {
	if int(rid.Page) < 0 || int(rid.Page) >= s.NPages || int(rid.Slot) >= s.Layout.SlotsPerPage() {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadSlot, rid)
	}
	dataLine := 1 + int(rid.Slot)/s.Layout.RecsPerLine
	off := (int(rid.Slot) % s.Layout.RecsPerLine) * s.Layout.SlotBytes()
	return s.PageBase(rid.Page) + machine.LineID(dataLine), off, nil
}

// SlotData is the decoded contents of one record slot.
type SlotData struct {
	// Tag is the undo tag: the node running the transaction with an
	// uncommitted update to this record, or machine.NoNode.
	Tag machine.NodeID
	// Flags holds FlagOccupied / FlagDeleted.
	Flags byte
	// Version is the global update version of the last applied update.
	Version uint64
	// Data is the record payload.
	Data []byte
}

// Deleted reports whether the slot is logically deleted.
func (sd SlotData) Deleted() bool { return sd.Flags&FlagDeleted != 0 }

// Occupied reports whether the slot holds a record.
func (sd SlotData) Occupied() bool { return sd.Flags&FlagOccupied != 0 }

// ReadSlot reads rid's slot on behalf of node nd. The read goes through the
// coherency protocol (and so may replicate the line into nd's cache).
func (s *Store) ReadSlot(nd machine.NodeID, rid RID) (SlotData, error) {
	line, off, err := s.LineOf(rid)
	if err != nil {
		return SlotData{}, err
	}
	raw, err := s.M.Read(nd, line, off, s.Layout.SlotBytes())
	if err != nil {
		return SlotData{}, err
	}
	return decodeSlot(raw, s.Layout.RecordSize()), nil
}

// decodeSlot parses a raw slot image.
func decodeSlot(raw []byte, recordSize int) SlotData {
	var sd SlotData
	sd.Tag = machine.NodeID(int(raw[0]) - 1)
	sd.Flags = raw[1]
	sd.Version = versionFrom(raw[2 : 2+versionBytes])
	sd.Data = raw[slotOverhead : slotOverhead+recordSize]
	return sd
}

// EncodeSlot builds a raw slot image (exported for recovery code that
// assembles whole-line images).
func EncodeSlot(layout Layout, sd SlotData) []byte {
	raw := make([]byte, layout.SlotBytes())
	raw[0] = byte(int(sd.Tag) + 1)
	raw[1] = sd.Flags
	putVersion(raw[2:2+versionBytes], sd.Version)
	copy(raw[slotOverhead:], sd.Data)
	return raw
}

// WriteSlot overwrites rid's entire slot (data, flags, version, tag) on
// behalf of node nd, without locking or logging: callers compose those. The
// payload is zero-padded/truncated to the record size.
func (s *Store) WriteSlot(nd machine.NodeID, rid RID, sd SlotData) error {
	line, off, err := s.LineOf(rid)
	if err != nil {
		return err
	}
	return s.M.Write(nd, line, off, EncodeSlot(s.Layout, sd))
}

// WriteTag updates only rid's undo tag.
func (s *Store) WriteTag(nd machine.NodeID, rid RID, tag machine.NodeID) error {
	line, off, err := s.LineOf(rid)
	if err != nil {
		return err
	}
	return s.M.Write(nd, line, off, []byte{byte(int(tag) + 1)})
}

// WriteFlags updates only rid's flags byte.
func (s *Store) WriteFlags(nd machine.NodeID, rid RID, flags byte) error {
	line, off, err := s.LineOf(rid)
	if err != nil {
		return err
	}
	return s.M.Write(nd, line, off+tagBytes, []byte{flags})
}

// Page header layout: pageID(4) | version(8) — the Page-LSN field of
// section 6, maintained under a line lock on the header line to enforce the
// ordered update logging rule.
const (
	hdrPageID  = 0
	hdrVersion = 4
)

// PageVersion reads page p's header version (Page-LSN analogue).
func (s *Store) PageVersion(nd machine.NodeID, p storage.PageID) (uint64, error) {
	raw, err := s.M.Read(nd, s.HeaderLine(p), hdrVersion, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(raw), nil
}

// SetPageVersion writes page p's header version.
func (s *Store) SetPageVersion(nd machine.NodeID, p storage.PageID, v uint64) error {
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], v)
	return s.M.Write(nd, s.HeaderLine(p), hdrVersion, raw[:])
}

// FormatPage installs a fresh, empty page p into shared memory on node nd
// (all slots unoccupied, tag-free, version 0).
func (s *Store) FormatPage(nd machine.NodeID, p storage.PageID) error {
	base := s.PageBase(p)
	hdr := make([]byte, s.Layout.LineSize)
	binary.LittleEndian.PutUint32(hdr[hdrPageID:], uint32(p))
	if err := s.M.Install(nd, base, hdr); err != nil {
		return err
	}
	empty := make([]byte, s.Layout.LineSize)
	for i := 1; i < s.Layout.LinesPerPage; i++ {
		if err := s.M.Install(nd, base+machine.LineID(i), empty); err != nil {
			return err
		}
	}
	return nil
}

// PageImage assembles the full byte image of page p by reading every line on
// behalf of node nd (used to flush to disk). It fails with
// machine.ErrLineLost if any line is not resident.
func (s *Store) PageImage(nd machine.NodeID, p storage.PageID) ([]byte, error) {
	base := s.PageBase(p)
	out := make([]byte, 0, s.Layout.PageBytes())
	for i := 0; i < s.Layout.LinesPerPage; i++ {
		b, err := s.M.Read(nd, base+machine.LineID(i), 0, s.Layout.LineSize)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// InstallImage installs a page image (e.g. read from disk) into page p's
// frame on node nd, line by line. If onlyLost is true, lines that are still
// resident in some cache are left untouched — this is how restart recovery
// reloads exactly the destroyed portion of a page while preserving surviving
// (possibly newer) cached lines.
func (s *Store) InstallImage(nd machine.NodeID, p storage.PageID, img []byte, onlyLost bool) error {
	if len(img) != s.Layout.PageBytes() {
		return fmt.Errorf("heap: page image is %d bytes, want %d", len(img), s.Layout.PageBytes())
	}
	base := s.PageBase(p)
	for i := 0; i < s.Layout.LinesPerPage; i++ {
		l := base + machine.LineID(i)
		if onlyLost && s.M.Resident(l) {
			continue
		}
		if err := s.M.Install(nd, l, img[i*s.Layout.LineSize:(i+1)*s.Layout.LineSize]); err != nil {
			return err
		}
	}
	return nil
}

// ResidentPage reports whether every line of page p is resident somewhere.
func (s *Store) ResidentPage(p storage.PageID) bool {
	base := s.PageBase(p)
	for i := 0; i < s.Layout.LinesPerPage; i++ {
		if !s.M.Resident(base + machine.LineID(i)) {
			return false
		}
	}
	return true
}

// StripTags nulls every slot's undo tag in a raw page image. The buffer
// manager applies it before writing a page to the stable database: tags are
// an in-cache mechanism only — any update that reaches disk has, by the WAL
// rule, its undo log record on stable store, so recovery never needs tags
// from disk, and persisting them would resurrect stale tags on later
// fetches.
func StripTags(layout Layout, img []byte) {
	for line := 1; line < layout.LinesPerPage; line++ {
		for s := 0; s < layout.RecsPerLine; s++ {
			img[line*layout.LineSize+s*layout.SlotBytes()] = byte(int(machine.NoNode) + 1)
		}
	}
}

// Contains reports whether line l lies within the store's frame area
// (header or data line of some page).
func (s *Store) Contains(l machine.LineID) bool {
	idx := int(l - s.Base)
	return idx >= 0 && idx < s.NPages*s.Layout.LinesPerPage
}

// SlotOfLine maps a line back to the page and first slot it carries; ok is
// false for header lines or lines outside the store. Selective Redo's undo
// scan uses this to interpret cached lines.
func (s *Store) SlotOfLine(l machine.LineID) (p storage.PageID, firstSlot int, ok bool) {
	idx := int(l - s.Base)
	if idx < 0 || idx >= s.NPages*s.Layout.LinesPerPage {
		return 0, 0, false
	}
	p = storage.PageID(idx / s.Layout.LinesPerPage)
	lineInPage := idx % s.Layout.LinesPerPage
	if lineInPage == 0 {
		return p, 0, false // header line
	}
	return p, (lineInPage - 1) * s.Layout.RecsPerLine, true
}

// DecodeSlotFromLine decodes slot index slotInLine from a raw line image.
func DecodeSlotFromLine(layout Layout, lineImg []byte, slotInLine int) SlotData {
	off := slotInLine * layout.SlotBytes()
	return decodeSlot(lineImg[off:off+layout.SlotBytes()], layout.RecordSize())
}

func versionFrom(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40
}

func putVersion(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
}
