package btree_test

import (
	"testing"

	"smdb/internal/btree"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

func benchTree(b *testing.B, preload int) (*btree.Tree, *txn.Manager) {
	b.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: 2, Lines: 1 << 16},
		Protocol:       recovery.VolatileSelectiveRedo,
		LinesPerPage:   8,
		RecsPerLine:    4,
		Pages:          4096,
		LockTableLines: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := btree.New(db, 0, 4096)
	if err != nil {
		b.Fatal(err)
	}
	mgr := txn.NewManager(db)
	for k := 1; k <= preload; k++ {
		tx, err := mgr.Begin(0)
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Insert(tx, uint64(k)*2, uint64(k)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	return tr, mgr
}

func BenchmarkBTreeInsertCommit(b *testing.B) {
	tr, mgr := benchTree(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := mgr.Begin(machine.NodeID(i % 2))
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Insert(tx, uint64(1_000_000+i), uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	tr, mgr := benchTree(b, 512)
	tx, err := mgr.Begin(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Lookup(tx, uint64(i%512+1)*2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeScan(b *testing.B) {
	tr, mgr := benchTree(b, 512)
	tx, err := mgr.Begin(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := tr.Scan(tx, 100, 160)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("empty scan")
		}
	}
}
