package btree

import (
	"fmt"
	"sort"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/txn"
)

// Structural changes: page allocation and node splits. Splits are performed
// preventively during the insert descent — any full node on the path is
// split before descending into it — so a non-root split always finds room
// for its new separator in the (just-visited, non-full) parent. Every split
// runs as its own nested top-level action and is committed early.

// isFull reports whether page p has no usable entry slot.
func (tr *Tree) isFull(nd machine.NodeID, p storage.PageID) (bool, error) {
	_, ok, err := tr.freeSlot(nd, p)
	return !ok, err
}

// childFor returns the child of internal page p covering key.
func (tr *Tree) childFor(nd machine.NodeID, p storage.PageID, key uint64) (storage.PageID, error) {
	ents, err := tr.readEntries(nd, p)
	if err != nil {
		return storage.NoPage, err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	child := storage.NoPage
	for _, e := range ents {
		if e.key <= key {
			child = storage.PageID(e.val)
		}
	}
	if child == storage.NoPage {
		return storage.NoPage, fmt.Errorf("btree: internal page %d has no child for key %d", p, key)
	}
	return child, nil
}

// alloc reserves the next free index page and writes its metadata record as
// part of the open NTA (space allocation is a structural change).
func (tr *Tree) alloc(t *txn.Txn, nta uint64, level int, next storage.PageID) (storage.PageID, error) {
	if tr.nextFree >= tr.NPages {
		return storage.NoPage, ErrTreeFull
	}
	p := tr.FirstPage + storage.PageID(tr.nextFree)
	tr.nextFree++
	err := tr.DB.StructuralUpdate(t.Node(), t.ID(), heap.RID{Page: p, Slot: metaSlot},
		heap.FlagOccupied, encodeMeta(nodeMeta{level: level, nextLeaf: next}), nta)
	if err != nil {
		return storage.NoPage, err
	}
	return p, nil
}

// writeMeta rewrites page p's metadata record structurally.
func (tr *Tree) writeMeta(t *txn.Txn, nta uint64, p storage.PageID, m nodeMeta) error {
	return tr.DB.StructuralUpdate(t.Node(), t.ID(), heap.RID{Page: p, Slot: metaSlot},
		heap.FlagOccupied, encodeMeta(m), nta)
}

// writeEntry writes an entry structurally into (p, slot), preserving the
// given flags (a moved tombstone keeps its deleted mark).
func (tr *Tree) writeEntry(t *txn.Txn, nta uint64, p storage.PageID, slot uint16, flags byte, key, val uint64) error {
	return tr.DB.StructuralUpdate(t.Node(), t.ID(), heap.RID{Page: p, Slot: slot}, flags, encodeEntry(key, val), nta)
}

// clearSlot frees (p, slot) structurally.
func (tr *Tree) clearSlot(t *txn.Txn, nta uint64, p storage.PageID, slot uint16) error {
	return tr.DB.StructuralUpdate(t.Node(), t.ID(), heap.RID{Page: p, Slot: slot}, 0, nil, nta)
}

// fullEntries returns every occupied entry (live and tombstoned) sorted by
// key.
func (tr *Tree) fullEntries(nd machine.NodeID, p storage.PageID) ([]entry, error) {
	ents, err := tr.readEntries(nd, p)
	if err != nil {
		return nil, err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	return ents, nil
}

// chooseSplit picks the index i into sorted entries such that entries[i:]
// move to the new (right) node. For leaves, physical undo forbids moving
// tagged (uncommitted) entries, so the split point is pushed right past
// them; 0 and an ErrSplitBusy are returned if no point both frees space and
// respects the constraint.
func chooseSplit(ents []entry, leaf bool) (int, error) {
	mid := len(ents) / 2
	if mid == 0 {
		mid = 1
	}
	if !leaf {
		return mid, nil
	}
	for i := mid; i < len(ents); i++ {
		ok := true
		for _, e := range ents[i:] {
			if e.tag != machine.NoNode {
				ok = false
				break
			}
		}
		// The separator must exceed the largest staying key, which holds
		// automatically for distinct keys.
		if ok {
			return i, nil
		}
	}
	return 0, ErrSplitBusy
}

// splitRoot splits the (full) root in place: its entries move to two fresh
// children and the root becomes (or stays) an internal node one level up.
// Because every root entry relocates, a leaf root may not contain any
// uncommitted entry.
func (tr *Tree) splitRoot(t *txn.Txn) error {
	nd := t.Node()
	meta, err := tr.readMeta(nd, tr.FirstPage)
	if err != nil {
		return err
	}
	ents, err := tr.fullEntries(nd, tr.FirstPage)
	if err != nil {
		return err
	}
	if meta.level == 0 {
		for _, e := range ents {
			if e.tag != machine.NoNode {
				return ErrSplitBusy
			}
		}
	}
	if len(ents) < 2 {
		return fmt.Errorf("btree: cannot split root with %d entries", len(ents))
	}
	mid := len(ents) / 2
	sep := ents[mid].key

	nta, err := tr.DB.BeginNTA(nd, t.ID())
	if err != nil {
		return err
	}
	right, err := tr.alloc(t, nta, meta.level, meta.nextLeaf)
	if err != nil {
		return err
	}
	leftNext := storage.NoPage
	if meta.level == 0 {
		leftNext = right
	}
	left, err := tr.alloc(t, nta, meta.level, leftNext)
	if err != nil {
		return err
	}
	for i, e := range ents {
		dst, slot := left, uint16(i+1)
		if i >= mid {
			dst, slot = right, uint16(i-mid+1)
		}
		flags := byte(heap.FlagOccupied)
		if e.deleted {
			flags |= heap.FlagDeleted
		}
		if err := tr.writeEntry(t, nta, dst, slot, flags, e.key, e.val); err != nil {
			return err
		}
		if err := tr.clearSlot(t, nta, tr.FirstPage, e.slot); err != nil {
			return err
		}
	}
	if err := tr.writeMeta(t, nta, tr.FirstPage, nodeMeta{level: meta.level + 1, nextLeaf: storage.NoPage}); err != nil {
		return err
	}
	if err := tr.writeEntry(t, nta, tr.FirstPage, 1, heap.FlagOccupied, 0, uint64(left)); err != nil {
		return err
	}
	if err := tr.writeEntry(t, nta, tr.FirstPage, 2, heap.FlagOccupied, sep, uint64(right)); err != nil {
		return err
	}
	return tr.DB.EndNTA(nd, t.ID(), nta)
}

// splitNonRoot splits full page p, whose parent is guaranteed non-full by
// the preventive descent, moving the upper entries to a new sibling and
// publishing the separator in the parent.
func (tr *Tree) splitNonRoot(t *txn.Txn, p, parent storage.PageID) error {
	nd := t.Node()
	meta, err := tr.readMeta(nd, p)
	if err != nil {
		return err
	}
	ents, err := tr.fullEntries(nd, p)
	if err != nil {
		return err
	}
	i, err := chooseSplit(ents, meta.level == 0)
	if err != nil {
		return err
	}
	sep := ents[i].key

	nta, err := tr.DB.BeginNTA(nd, t.ID())
	if err != nil {
		return err
	}
	newP, err := tr.alloc(t, nta, meta.level, meta.nextLeaf)
	if err != nil {
		return err
	}
	for j, e := range ents[i:] {
		flags := byte(heap.FlagOccupied)
		if e.deleted {
			flags |= heap.FlagDeleted
		}
		if err := tr.writeEntry(t, nta, newP, uint16(j+1), flags, e.key, e.val); err != nil {
			return err
		}
		if err := tr.clearSlot(t, nta, p, e.slot); err != nil {
			return err
		}
	}
	if meta.level == 0 {
		if err := tr.writeMeta(t, nta, p, nodeMeta{level: 0, nextLeaf: newP}); err != nil {
			return err
		}
	}
	// Publish the separator in the parent (non-full by invariant; entries
	// are unsorted in storage, so any free slot works).
	slot, ok, err := tr.freeSlot(nd, parent)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("btree: parent %d full during split of %d (descent invariant broken)", parent, p)
	}
	if err := tr.writeEntry(t, nta, parent, slot, heap.FlagOccupied, sep, uint64(newP)); err != nil {
		return err
	}
	return tr.DB.EndNTA(nd, t.ID(), nta)
}

// ensureLeafForInsert descends to the leaf covering key, preventively
// splitting every full node on the way, and returns a leaf guaranteed to
// have a usable slot (or ErrSplitBusy / ErrTreeFull).
func (tr *Tree) ensureLeafForInsert(t *txn.Txn, key uint64) (storage.PageID, error) {
	nd := t.Node()
	for restart := 0; restart < tr.NPages+2; restart++ {
		p := tr.FirstPage
		parent := storage.NoPage
		for {
			full, err := tr.isFull(nd, p)
			if err != nil {
				return storage.NoPage, err
			}
			if full {
				if parent == storage.NoPage {
					if err := tr.splitRoot(t); err != nil {
						return storage.NoPage, err
					}
					break // restart from the (now internal) root
				}
				if err := tr.splitNonRoot(t, p, parent); err != nil {
					return storage.NoPage, err
				}
				// Re-route from the parent: the key may now belong in
				// the new sibling.
				p, err = tr.childFor(nd, parent, key)
				if err != nil {
					return storage.NoPage, err
				}
				continue
			}
			meta, err := tr.readMeta(nd, p)
			if err != nil {
				return storage.NoPage, err
			}
			if meta.level == 0 {
				return p, nil
			}
			parent = p
			p, err = tr.childFor(nd, p, key)
			if err != nil {
				return storage.NoPage, err
			}
		}
	}
	return storage.NoPage, fmt.Errorf("btree: descent did not converge for key %d", key)
}
