package btree

import (
	"fmt"
	"sort"

	"smdb/internal/machine"
	"smdb/internal/storage"
)

// Structural validation and whole-tree inspection, used by tests and by the
// recovery experiments to assert index integrity after crashes.

// Validate checks the tree's structural invariants reading as node nd:
// separator ordering, key-range containment, uniform leaf depth, leaf-chain
// order, and live-key uniqueness. It returns a list of violations (empty
// means the tree is well formed).
func (tr *Tree) Validate(nd machine.NodeID) []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []string
	add := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	var leaves []storage.PageID
	leafDepth := -1
	seen := make(map[uint64]storage.PageID)

	var walk func(p storage.PageID, lo, hi uint64, depth int)
	walk = func(p storage.PageID, lo, hi uint64, depth int) {
		meta, err := tr.readMeta(nd, p)
		if err != nil {
			add("page %d: unreadable meta: %v", p, err)
			return
		}
		ents, err := tr.fullEntries(nd, p)
		if err != nil {
			add("page %d: unreadable entries: %v", p, err)
			return
		}
		if meta.level == 0 {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				add("leaf %d at depth %d, others at %d", p, depth, leafDepth)
			}
			leaves = append(leaves, p)
			for _, e := range ents {
				if e.key < lo || (hi != ^uint64(0) && e.key >= hi) {
					add("leaf %d: key %d outside range [%d, %d)", p, e.key, lo, hi)
				}
				if e.deleted {
					continue
				}
				if prev, dup := seen[e.key]; dup {
					add("key %d live in both leaf %d and leaf %d", e.key, prev, p)
				}
				seen[e.key] = p
			}
			return
		}
		if len(ents) == 0 {
			add("internal page %d is empty", p)
			return
		}
		if ents[0].key != 0 && ents[0].key > lo {
			add("internal page %d: first separator %d above range floor %d", p, ents[0].key, lo)
		}
		for i, e := range ents {
			if e.deleted {
				add("internal page %d: tombstoned separator %d", p, e.key)
			}
			if e.tag != machine.NoNode {
				add("internal page %d: tagged separator %d", p, e.key)
			}
			childLo := e.key
			if childLo < lo {
				childLo = lo
			}
			childHi := hi
			if i+1 < len(ents) {
				childHi = ents[i+1].key
			}
			walk(storage.PageID(e.val), childLo, childHi, depth+1)
		}
	}
	walk(tr.FirstPage, 0, ^uint64(0), 0)

	// Leaf chain: following nextLeaf from the leftmost leaf must visit
	// exactly the leaves found by the tree walk, in key order.
	if len(leaves) > 0 {
		sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
		inTree := make(map[storage.PageID]bool, len(leaves))
		for _, l := range leaves {
			inTree[l] = true
		}
		// The leftmost leaf is the one reached by descending key 0.
		p := tr.FirstPage
		for {
			meta, err := tr.readMeta(nd, p)
			if err != nil {
				add("chain: unreadable page %d: %v", p, err)
				return out
			}
			if meta.level == 0 {
				break
			}
			child, err := tr.childFor(nd, p, 0)
			if err != nil {
				add("chain: %v", err)
				return out
			}
			p = child
		}
		visited := 0
		prevMax := uint64(0)
		for p != storage.NoPage {
			if !inTree[p] {
				add("chain visits page %d not in the tree", p)
				break
			}
			visited++
			if visited > len(leaves) {
				add("leaf chain longer than leaf count %d (cycle?)", len(leaves))
				break
			}
			ents, err := tr.fullEntries(nd, p)
			if err != nil {
				add("chain: unreadable leaf %d: %v", p, err)
				break
			}
			for _, e := range ents {
				if visited > 1 && e.key <= prevMax {
					add("chain: leaf %d key %d <= previous leaf max %d", p, e.key, prevMax)
				}
			}
			if len(ents) > 0 {
				prevMax = ents[len(ents)-1].key
			}
			meta, err := tr.readMeta(nd, p)
			if err != nil {
				add("chain: unreadable meta %d: %v", p, err)
				break
			}
			p = meta.nextLeaf
		}
		if visited != len(leaves) {
			add("chain visited %d leaves, tree has %d", visited, len(leaves))
		}
	}
	return out
}

// LiveKeys returns every non-deleted key with its value, reading as nd.
func (tr *Tree) LiveKeys(nd machine.NodeID) (map[uint64]uint64, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[uint64]uint64)
	var walk func(p storage.PageID) error
	walk = func(p storage.PageID) error {
		meta, err := tr.readMeta(nd, p)
		if err != nil {
			return err
		}
		ents, err := tr.readEntries(nd, p)
		if err != nil {
			return err
		}
		if meta.level == 0 {
			for _, e := range ents {
				if !e.deleted {
					out[e.key] = e.val
				}
			}
			return nil
		}
		for _, e := range ents {
			if err := walk(storage.PageID(e.val)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tr.FirstPage); err != nil {
		return nil, err
	}
	return out, nil
}

// Height returns the tree height (1 for a lone leaf root).
func (tr *Tree) Height(nd machine.NodeID) (int, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	h := 1
	p := tr.FirstPage
	for {
		meta, err := tr.readMeta(nd, p)
		if err != nil {
			return 0, err
		}
		if meta.level == 0 {
			return h, nil
		}
		child, err := tr.childFor(nd, p, 0)
		if err != nil {
			return 0, err
		}
		p = child
		h++
	}
}

// PagesUsed returns how many index pages are allocated.
func (tr *Tree) PagesUsed() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.nextFree
}
