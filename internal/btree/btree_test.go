package btree_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"smdb/internal/btree"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

// newTree builds a tree over a small-page database so splits happen early:
// LinesPerPage=3 gives 8 slots per page, i.e. 7 entries per node.
func newTree(t *testing.T, proto recovery.Protocol, nodes int) (*btree.Tree, *txn.Manager) {
	t.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: nodes, Lines: 4096},
		Protocol:       proto,
		LinesPerPage:   3,
		RecsPerLine:    4,
		Pages:          256,
		LockTableLines: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := btree.New(db, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	return tr, txn.NewManager(db)
}

func validate(t *testing.T, tr *btree.Tree, nd machine.NodeID) {
	t.Helper()
	for _, v := range tr.Validate(nd) {
		t.Errorf("tree violation: %s", v)
	}
}

func TestInsertLookup(t *testing.T) {
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 2)
	for k := uint64(1); k <= 10; k++ {
		tx := mustBegin(t, mgr, 0)
		if err := tr.Insert(tx, k, k*100); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx := mustBegin(t, mgr, 0)
	for k := uint64(1); k <= 10; k++ {
		v, err := tr.Lookup(tx, k)
		if err != nil {
			t.Fatalf("lookup %d: %v", k, err)
		}
		if v != k*100 {
			t.Errorf("lookup %d = %d, want %d", k, v, k*100)
		}
	}
	if _, err := tr.Lookup(tx, 999); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Errorf("missing key: err = %v", err)
	}
	if err := tr.Insert(tx, 5, 1); !errors.Is(err, btree.ErrKeyExists) {
		t.Errorf("duplicate insert: err = %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	validate(t, tr, 0)
}

func TestSplitsGrowTree(t *testing.T) {
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 1)
	tx, _ := mgr.Begin(0)
	const n = 60
	for k := uint64(1); k <= n; k++ {
		if err := tr.Insert(tx, k*13%997, k); err != nil { // mixed order, distinct
			t.Fatalf("insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx, _ = mgr.Begin(0)
	}
	h, err := tr.Height(0)
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Errorf("height = %d, want >= 3 (splits should have cascaded)", h)
	}
	if tr.PagesUsed() < 5 {
		t.Errorf("pages used = %d, want several", tr.PagesUsed())
	}
	validate(t, tr, 0)
	keys, err := tr.LiveKeys(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Errorf("live keys = %d, want %d", len(keys), n)
	}
	if db := mgr.DB.Stats(); db.NTAForces == 0 {
		t.Error("splits did not early-commit (no NTA forces)")
	}
}

func TestUpdateAndDelete(t *testing.T) {
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 2)
	for k := uint64(1); k <= 8; k++ {
		tx := mustBegin(t, mgr, 0)
		if err := tr.Insert(tx, k, k); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	ty, _ := mgr.Begin(1)
	if err := tr.Update(ty, 3, 333); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(ty, 5); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.Lookup(ty, 3); err != nil || v != 333 {
		t.Errorf("updated value = %d, %v", v, err)
	}
	if _, err := tr.Lookup(ty, 5); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Errorf("deleted key visible: %v", err)
	}
	if err := tr.Delete(ty, 5); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Errorf("double delete: err = %v", err)
	}
	if err := tr.Update(ty, 5, 1); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Errorf("update of deleted key: err = %v", err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	validate(t, tr, 0)
	// The committed tombstone's slot is reusable.
	tz, _ := mgr.Begin(0)
	if err := tr.Insert(tz, 5, 555); err != nil {
		t.Fatalf("reinsert over tombstone: %v", err)
	}
	if err := tz.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Lookup(mustBegin(t, mgr, 0), 5); v != 555 {
		t.Errorf("reinserted value = %d", v)
	}
}

func mustBegin(t *testing.T, mgr *txn.Manager, nd machine.NodeID) *txn.Txn {
	t.Helper()
	tx, err := mgr.Begin(nd)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestAbortUndoesIndexOps(t *testing.T) {
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 2)
	setup, _ := mgr.Begin(0)
	for k := uint64(10); k <= 30; k += 10 {
		if err := tr.Insert(setup, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	tx, _ := mgr.Begin(1)
	if err := tr.Insert(tx, 15, 15); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(tx, 20); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(tx, 30, 999); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	check, _ := mgr.Begin(0)
	if _, err := tr.Lookup(check, 15); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Errorf("aborted insert visible: %v", err)
	}
	if v, err := tr.Lookup(check, 20); err != nil || v != 20 {
		t.Errorf("aborted delete not undone: %d, %v", v, err)
	}
	if v, err := tr.Lookup(check, 30); err != nil || v != 30 {
		t.Errorf("aborted update not undone: %d, %v", v, err)
	}
	validate(t, tr, 0)
}

func TestSplitSurvivesAbortAndCrash(t *testing.T) {
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 2)
	// Fill the root with committed keys so the next insert splits it.
	setup, _ := mgr.Begin(0)
	for k := uint64(1); k <= 7; k++ {
		if err := tr.Insert(setup, k*10, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	pagesBefore := tr.PagesUsed()

	tx, _ := mgr.Begin(1)
	if err := tr.Insert(tx, 25, 25); err != nil { // triggers root split
		t.Fatal(err)
	}
	if tr.PagesUsed() <= pagesBefore {
		t.Fatal("no split happened")
	}
	// Crash the inserting node: the insert must vanish; the split stays.
	db := mgr.DB
	db.Crash(1)
	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	check, _ := mgr.Begin(0)
	if _, err := tr.Lookup(check, 25); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Errorf("crashed insert visible after recovery: %v", err)
	}
	for k := uint64(1); k <= 7; k++ {
		if v, err := tr.Lookup(check, k*10); err != nil || v != k {
			t.Errorf("committed key %d lost: %d, %v", k*10, v, err)
		}
	}
	validate(t, tr, 0)
}

func TestScan(t *testing.T) {
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 1)
	for k := uint64(1); k <= 40; k++ {
		tx := mustBegin(t, mgr, 0)
		if err := tr.Insert(tx, k*3, k); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx := mustBegin(t, mgr, 0)
	if err := tr.Delete(tx, 9); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ty, _ := mgr.Begin(0)
	got, err := tr.Scan(ty, 6, 21)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{6, 12, 15, 18, 21} // 9 deleted
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want keys %v", got, want)
	}
	for i, kv := range got {
		if kv[0] != want[i] {
			t.Errorf("scan[%d] key = %d, want %d", i, kv[0], want[i])
		}
	}
}

func TestSplitBusyWithUncommittedRoot(t *testing.T) {
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 2)
	tx, _ := mgr.Begin(0)
	// Fill the root leaf with uncommitted entries; the split that the next
	// insert needs would have to relocate tagged entries.
	for k := uint64(1); k <= 7; k++ {
		if err := tr.Insert(tx, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Insert(tx, 8, 8); !errors.Is(err, btree.ErrSplitBusy) {
		t.Fatalf("split over uncommitted root: err = %v, want ErrSplitBusy", err)
	}
	// After commit the split can proceed.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ty, _ := mgr.Begin(1)
	if err := tr.Insert(ty, 8, 8); err != nil {
		t.Fatalf("insert after commit: %v", err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	validate(t, tr, 0)
}

func TestIndexSharingAcrossNodes(t *testing.T) {
	// Two nodes interleave inserts into the same tree: index lines migrate
	// between them; a crash of one node must not disturb the other's keys.
	tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 2)
	for k := uint64(100); k < 130; k++ {
		setup := mustBegin(t, mgr, 0)
		if err := tr.Insert(setup, k, 0); err != nil {
			t.Fatal(err)
		}
		if err := setup.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	t0, _ := mgr.Begin(0)
	t1, _ := mgr.Begin(1)
	if err := tr.Insert(t0, 50, 50); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(t1, 51, 51); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(t1, 105, 1); err != nil {
		t.Fatal(err)
	}
	db := mgr.DB
	db.Crash(1)
	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	if v := db.CheckIFA(0); len(v) != 0 {
		for _, s := range v {
			t.Errorf("IFA violation: %s", s)
		}
	}
	check := mustBegin(t, mgr, 0)
	if _, err := tr.Lookup(check, 51); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Errorf("crashed node's insert visible: %v", err)
	}
	if v, err := tr.Lookup(check, 105); err != nil || v != 0 {
		t.Errorf("crashed node's update not undone: %d, %v", v, err)
	}
	// t0 is alive and its insert must still be there (uncommitted).
	if v, err := tr.Lookup(t0, 50); err != nil || v != 50 {
		t.Errorf("survivor's insert lost: %d, %v", v, err)
	}
	if err := t0.Commit(); err != nil {
		t.Fatal(err)
	}
	validate(t, tr, 0)
}

// TestQuickTreeMatchesMap: random interleaved inserts/updates/deletes match
// a map model, and the tree stays structurally valid throughout.
func TestQuickTreeMatchesMap(t *testing.T) {
	type scenario struct{ Seed int64 }
	gen := func(r *rand.Rand) scenario { return scenario{Seed: r.Int63()} }
	_ = gen
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 2)
		model := make(map[uint64]uint64)
		for i := 0; i < 120; i++ {
			tx, err := mgr.Begin(machine.NodeID(i % 2))
			if err != nil {
				t.Log(err)
				return false
			}
			key := uint64(r.Intn(60) + 1)
			var opErr error
			switch r.Intn(3) {
			case 0: // insert
				opErr = tr.Insert(tx, key, key*2)
				if opErr == nil {
					model[key] = key * 2
				} else if !errors.Is(opErr, btree.ErrKeyExists) {
					t.Logf("seed %d: insert %d: %v", seed, key, opErr)
					return false
				}
			case 1: // delete
				opErr = tr.Delete(tx, key)
				if opErr == nil {
					delete(model, key)
				} else if !errors.Is(opErr, btree.ErrKeyNotFound) {
					t.Logf("seed %d: delete %d: %v", seed, key, opErr)
					return false
				}
			case 2: // update
				opErr = tr.Update(tx, key, key*3)
				if opErr == nil {
					model[key] = key * 3
				} else if !errors.Is(opErr, btree.ErrKeyNotFound) {
					t.Logf("seed %d: update %d: %v", seed, key, opErr)
					return false
				}
			}
			if err := tx.Commit(); err != nil {
				t.Logf("seed %d: commit: %v", seed, err)
				return false
			}
		}
		if v := tr.Validate(0); len(v) != 0 {
			for _, s := range v {
				t.Logf("seed %d: %s", seed, s)
			}
			return false
		}
		got, err := tr.LiveKeys(1)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(got) != len(model) {
			t.Logf("seed %d: %d live keys, want %d", seed, len(got), len(model))
			return false
		}
		for k, v := range model {
			if got[k] != v {
				t.Logf("seed %d: key %d = %d, want %d", seed, k, got[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickTreeCrashRecovery: random committed index workloads plus a crash
// with in-flight operations; after recovery the tree must validate and
// contain exactly the committed keys plus surviving in-flight inserts.
func TestQuickTreeCrashRecovery(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, mgr := newTree(t, recovery.VolatileSelectiveRedo, 3)
		db := mgr.DB
		committed := make(map[uint64]uint64)
		for i := 0; i < 60; i++ {
			tx, err := mgr.Begin(machine.NodeID(i % 3))
			if err != nil {
				t.Log(err)
				return false
			}
			key := uint64(r.Intn(240) + 1)
			var opErr error
			switch r.Intn(3) {
			case 0:
				opErr = tr.Insert(tx, key, key*2)
				if opErr == nil {
					committed[key] = key * 2
				}
			case 1:
				opErr = tr.Delete(tx, key)
				if opErr == nil {
					delete(committed, key)
				}
			default:
				opErr = tr.Update(tx, key, key*3)
				if opErr == nil {
					committed[key] = key * 3
				}
			}
			if opErr != nil && !errors.Is(opErr, btree.ErrKeyExists) && !errors.Is(opErr, btree.ErrKeyNotFound) {
				t.Logf("seed %d: %v", seed, opErr)
				return false
			}
			if err := tx.Commit(); err != nil {
				t.Log(err)
				return false
			}
		}
		// In-flight ops on each node: interior keys absent from the tree,
		// spread across distinct leaves (several uncommitted inserts in one
		// leaf would block its split by design).
		pick := func(lo uint64) uint64 {
			for k := lo; ; k++ {
				if _, ok := committed[k]; !ok {
					return k
				}
			}
		}
		inflight := map[machine.NodeID]uint64{}
		for n := machine.NodeID(0); n < 3; n++ {
			key := pick(uint64(20 + int(n)*80))
			tx, err := mgr.Begin(n)
			if err != nil {
				t.Log(err)
				return false
			}
			if err := tr.Insert(tx, key, 1); err != nil {
				t.Logf("seed %d: inflight: %v", seed, err)
				return false
			}
			inflight[n] = key
		}
		victim := machine.NodeID(r.Intn(3))
		db.Crash(victim)
		if _, err := db.Recover([]machine.NodeID{victim}); err != nil {
			t.Log(err)
			return false
		}
		if v := tr.Validate(db.M.AliveNodes()[0]); len(v) != 0 {
			t.Logf("seed %d: %v", seed, v)
			return false
		}
		if v := db.CheckIFA(db.M.AliveNodes()[0]); len(v) != 0 {
			t.Logf("seed %d: IFA: %v", seed, v)
			return false
		}
		live, err := tr.LiveKeys(db.M.AliveNodes()[0])
		if err != nil {
			t.Log(err)
			return false
		}
		// Committed keys all present with right values.
		for k, v := range committed {
			if live[k] != v {
				t.Logf("seed %d: committed key %d = %d, want %d", seed, k, live[k], v)
				return false
			}
		}
		// Crashed node's in-flight insert gone; survivors' present.
		for n, k := range inflight {
			_, present := live[k]
			if n == victim && present {
				t.Logf("seed %d: crashed insert %d visible", seed, k)
				return false
			}
			if n != victim && !present {
				t.Logf("seed %d: surviving insert %d lost", seed, k)
				return false
			}
		}
		return len(live) == len(committed)+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
