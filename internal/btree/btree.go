// Package btree implements the shared-memory B+-tree of paper section
// 4.2.1: an index whose nodes are ordinary shared-memory pages, so that its
// cache lines migrate and replicate between processor nodes exactly like
// record lines do. Keys live only in leaves; leaves are chained for range
// scans.
//
// Recovery treatment follows the paper:
//
//   - Non-structural changes — key insert, delete, value update — are
//     ordinary transactional updates: they run under key locks, are logged
//     with before/after images, and (under Volatile LBM with Selective
//     Redo) carry undo tags. Deletes are logical: the entry is marked, not
//     removed, so a migrating cache line carries the original record and
//     the undo of an uncommitted delete is a mere unmark. The space of a
//     deleted entry becomes reusable only after the deleting transaction
//     commits (the slot's undo tag is null).
//
//   - Structural changes — page allocation, splits, separator insertion —
//     run as nested top-level actions, committed early (log forced at NTA
//     end) so no transaction on another node can become dependent on a
//     structural change that might roll back.
//
// Physical undo constraint: because record undo is physical (by page and
// slot), a split never relocates an entry that carries an undo tag — the
// uncommitted entry stays put and the separator is chosen around it. A
// split that cannot free space without moving tagged entries fails with
// ErrSplitBusy, and a root-leaf split requires a fully committed root.
// (ARIES/IM solves this generally with logical undo; the paper does not
// address entry relocation, and this restriction preserves its physical
// undo model.)
//
// Concurrency: tree traversals and structural changes are serialized by a
// tree-wide latch (a Go mutex). Latching strategy is orthogonal to the
// recovery protocols under study — every physical update still goes through
// the machine's coherency protocol, line locks, and the LBM policies.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"smdb/internal/heap"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
)

// Errors.
var (
	// ErrKeyExists reports an insert of a key already present.
	ErrKeyExists = errors.New("btree: key exists")
	// ErrKeyNotFound reports a lookup/delete/update of an absent key.
	ErrKeyNotFound = errors.New("btree: key not found")
	// ErrTreeFull reports that the tree's reserved page range is exhausted.
	ErrTreeFull = errors.New("btree: out of index pages")
	// ErrSplitBusy reports a split blocked by uncommitted (tagged) entries
	// that physical undo forbids relocating; retry after they resolve.
	ErrSplitBusy = errors.New("btree: split blocked by uncommitted entries")
)

// Slot 0 of every index page is the node's metadata record:
// magic 'M' | level (0 = leaf) | nextLeaf PageID+1 (0 = none).
const (
	metaMagic   = 'M'
	metaSlot    = 0
	entryBytes  = 16 // key (8) + value/child (8)
	minRecordSz = entryBytes
)

// Tree is a B+-tree occupying a contiguous page range of a recovery.DB.
type Tree struct {
	DB *recovery.DB
	// FirstPage..FirstPage+NPages-1 is the reserved page range; FirstPage
	// is the (fixed) root.
	FirstPage storage.PageID
	NPages    int

	mu       sync.Mutex
	nextFree int // next unallocated page index within the range
}

// New reserves the page range [first, first+npages) of db for a tree. The
// root starts as an empty leaf (an unformatted page reads as one).
func New(db *recovery.DB, first storage.PageID, npages int) (*Tree, error) {
	if npages < 1 {
		return nil, fmt.Errorf("btree: need at least 1 page, got %d", npages)
	}
	if int(first)+npages > db.Store.NPages {
		return nil, fmt.Errorf("btree: page range [%d,%d) exceeds store (%d pages)", first, int(first)+npages, db.Store.NPages)
	}
	if db.Store.Layout.RecordSize() < minRecordSz {
		return nil, fmt.Errorf("btree: record size %d cannot hold a %d-byte entry", db.Store.Layout.RecordSize(), entryBytes)
	}
	if cap := db.Store.Layout.SlotsPerPage() - 1; cap < 4 {
		// Below fanout 4, preventive splitting degenerates (each split
		// leaves near-singleton nodes and the height explodes).
		return nil, fmt.Errorf("btree: node capacity %d too small (need >= 4 entries per page)", cap)
	}
	return &Tree{DB: db, FirstPage: first, NPages: npages, nextFree: 1}, nil
}

// Root returns the root page id.
func (tr *Tree) Root() storage.PageID { return tr.FirstPage }

// capacity is the number of entry slots per node (slot 0 is metadata).
func (tr *Tree) capacity() int { return tr.DB.Store.Layout.SlotsPerPage() - 1 }

// nodeMeta is the decoded metadata record.
type nodeMeta struct {
	level    int
	nextLeaf storage.PageID // NoPage if none
}

func encodeMeta(m nodeMeta) []byte {
	b := make([]byte, 6)
	b[0] = metaMagic
	b[1] = byte(m.level)
	binary.LittleEndian.PutUint32(b[2:], uint32(m.nextLeaf+1))
	return b
}

func decodeMeta(sd heap.SlotData) nodeMeta {
	if !sd.Occupied() || sd.Data[0] != metaMagic {
		// Unformatted page: an empty leaf with no successor.
		return nodeMeta{level: 0, nextLeaf: storage.NoPage}
	}
	return nodeMeta{
		level:    int(sd.Data[1]),
		nextLeaf: storage.PageID(binary.LittleEndian.Uint32(sd.Data[2:])) - 1,
	}
}

// entry is a decoded, occupied entry slot.
type entry struct {
	slot    uint16
	key     uint64
	val     uint64
	deleted bool
	tag     machine.NodeID
}

func encodeEntry(key, val uint64) []byte {
	b := make([]byte, entryBytes)
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], val)
	return b
}

// readMeta reads page p's metadata on behalf of node nd.
func (tr *Tree) readMeta(nd machine.NodeID, p storage.PageID) (nodeMeta, error) {
	sd, err := tr.DB.Read(nd, heap.RID{Page: p, Slot: metaSlot})
	if err != nil {
		return nodeMeta{}, err
	}
	return decodeMeta(sd), nil
}

// readEntries returns the occupied entries of page p (slot order).
func (tr *Tree) readEntries(nd machine.NodeID, p storage.PageID) ([]entry, error) {
	var out []entry
	for s := 1; s <= tr.capacity(); s++ {
		sd, err := tr.DB.Read(nd, heap.RID{Page: p, Slot: uint16(s)})
		if err != nil {
			return nil, err
		}
		if !sd.Occupied() {
			continue
		}
		out = append(out, entry{
			slot:    uint16(s),
			key:     binary.LittleEndian.Uint64(sd.Data),
			val:     binary.LittleEndian.Uint64(sd.Data[8:]),
			deleted: sd.Deleted(),
			tag:     sd.Tag,
		})
	}
	return out, nil
}

// descend walks from the root to the leaf responsible for key, returning
// the path (root first, leaf last).
func (tr *Tree) descend(nd machine.NodeID, key uint64) ([]storage.PageID, error) {
	path := []storage.PageID{tr.FirstPage}
	p := tr.FirstPage
	for {
		meta, err := tr.readMeta(nd, p)
		if err != nil {
			return nil, err
		}
		if meta.level == 0 {
			return path, nil
		}
		ents, err := tr.readEntries(nd, p)
		if err != nil {
			return nil, err
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
		child := storage.NoPage
		for _, e := range ents {
			if e.key <= key {
				child = storage.PageID(e.val)
			}
		}
		if child == storage.NoPage {
			return nil, fmt.Errorf("btree: internal page %d has no child for key %d", p, key)
		}
		path = append(path, child)
		p = child
	}
}

// findInLeaf locates key's live (non-deleted) entry in leaf p.
func (tr *Tree) findInLeaf(nd machine.NodeID, p storage.PageID, key uint64) (entry, bool, error) {
	ents, err := tr.readEntries(nd, p)
	if err != nil {
		return entry{}, false, err
	}
	for _, e := range ents {
		if e.key == key && !e.deleted {
			return e, true, nil
		}
	}
	return entry{}, false, nil
}

// Lookup returns the value stored under key, taking a shared key lock.
func (tr *Tree) Lookup(t *txn.Txn, key uint64) (uint64, error) {
	if err := t.LockKey(key, lock.Shared); err != nil {
		return 0, err
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	path, err := tr.descend(t.Node(), key)
	if err != nil {
		return 0, err
	}
	e, ok, err := tr.findInLeaf(t.Node(), path[len(path)-1], key)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrKeyNotFound, key)
	}
	return e.val, nil
}

// Insert adds (key, value) under an exclusive key lock, splitting leaves as
// early-committed structural changes when needed.
func (tr *Tree) Insert(t *txn.Txn, key, val uint64) error {
	if err := t.LockKey(key, lock.Exclusive); err != nil {
		return err
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	leaf, err := tr.ensureLeafForInsert(t, key)
	if err != nil {
		return err
	}
	if _, ok, err := tr.findInLeaf(t.Node(), leaf, key); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %d", ErrKeyExists, key)
	}
	slot, ok, err := tr.freeSlot(t.Node(), leaf)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("btree: leaf %d full after preventive split", leaf)
	}
	return tr.DB.Insert(t.Node(), t.ID(), heap.RID{Page: leaf, Slot: slot}, encodeEntry(key, val))
}

// Update changes the value stored under an existing key.
func (tr *Tree) Update(t *txn.Txn, key, val uint64) error {
	if err := t.LockKey(key, lock.Exclusive); err != nil {
		return err
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	path, err := tr.descend(t.Node(), key)
	if err != nil {
		return err
	}
	e, ok, err := tr.findInLeaf(t.Node(), path[len(path)-1], key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrKeyNotFound, key)
	}
	return tr.DB.Update(t.Node(), t.ID(), heap.RID{Page: path[len(path)-1], Slot: e.slot}, encodeEntry(key, val))
}

// Delete logically deletes key (mark, keep bytes) under an exclusive lock.
func (tr *Tree) Delete(t *txn.Txn, key uint64) error {
	if err := t.LockKey(key, lock.Exclusive); err != nil {
		return err
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	path, err := tr.descend(t.Node(), key)
	if err != nil {
		return err
	}
	e, ok, err := tr.findInLeaf(t.Node(), path[len(path)-1], key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrKeyNotFound, key)
	}
	return tr.DB.Delete(t.Node(), t.ID(), heap.RID{Page: path[len(path)-1], Slot: e.slot})
}

// Scan returns the live (key, value) pairs with from <= key <= to in key
// order, taking shared locks on each returned key. (Phantom protection —
// next-key locking — is not implemented; scans are serializable only with
// respect to the keys they return.)
func (tr *Tree) Scan(t *txn.Txn, from, to uint64) ([][2]uint64, error) {
	tr.mu.Lock()
	path, err := tr.descend(t.Node(), from)
	if err != nil {
		tr.mu.Unlock()
		return nil, err
	}
	p := path[len(path)-1]
	var found [][2]uint64
	for p != storage.NoPage {
		ents, err := tr.readEntries(t.Node(), p)
		if err != nil {
			tr.mu.Unlock()
			return nil, err
		}
		past := false
		for _, e := range ents {
			if e.deleted {
				continue
			}
			if e.key >= from && e.key <= to {
				found = append(found, [2]uint64{e.key, e.val})
			}
			if e.key > to {
				past = true
			}
		}
		if past {
			break
		}
		meta, err := tr.readMeta(t.Node(), p)
		if err != nil {
			tr.mu.Unlock()
			return nil, err
		}
		p = meta.nextLeaf
	}
	tr.mu.Unlock()
	sort.Slice(found, func(i, j int) bool { return found[i][0] < found[j][0] })
	// Lock the result set (after releasing the latch: lock waits must not
	// hold the tree).
	for _, kv := range found {
		if err := t.LockKey(kv[0], lock.Shared); err != nil {
			return nil, err
		}
	}
	return found, nil
}

// freeSlot finds a slot usable for insertion: unoccupied, or a committed
// tombstone (deleted with a null tag — the deleting transaction committed,
// so the space is reusable per section 4.2.1).
func (tr *Tree) freeSlot(nd machine.NodeID, p storage.PageID) (uint16, bool, error) {
	for s := 1; s <= tr.capacity(); s++ {
		sd, err := tr.DB.Read(nd, heap.RID{Page: p, Slot: uint16(s)})
		if err != nil {
			return 0, false, err
		}
		if !sd.Occupied() || (sd.Deleted() && sd.Tag == machine.NoNode) {
			return uint16(s), true, nil
		}
	}
	return 0, false, nil
}
