// Package buffer implements the no-force/steal buffer manager of the
// shared-memory database (paper section 2). Pages live in shared-memory
// frames managed by internal/heap; this package moves them between the
// frames and the stable database:
//
//   - no-force: committing a transaction does not write its pages to disk,
//     so redo information must survive for committed transactions;
//   - steal: a dirty page may be written to disk while it still carries
//     uncommitted updates, provided the write-ahead-log rule holds.
//
// WAL enforcement follows section 6: a shared-memory table records, per
// page, the last update LSN of every node that updated it; a page may go to
// the stable database only after each such node has forced its log through
// that LSN. (The table is written only by the local node and is simply
// re-initialized for a node that crashes.)
package buffer

import (
	"errors"
	"fmt"
	"sync"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/debt"
	"smdb/internal/obs/waterfall"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// Stats counts buffer manager activity.
type Stats struct {
	// Fetches is the number of Fetch calls; DiskFetches the subset that
	// performed disk I/O; Formats the subset that created fresh pages.
	Fetches, DiskFetches, Formats int64
	// Flushes is pages written to the stable database; Steals the subset
	// that carried uncommitted updates (an undo tag was present).
	Flushes, Steals int64
	// WALForces is log forces performed to satisfy the WAL rule before a
	// flush.
	WALForces int64
	// IORetries is transient disk errors retried (and outlasted) by page
	// reads and writes.
	IORetries int64
}

// Sub returns the per-interval delta s - prev (see machine.Stats.Sub).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Fetches:     s.Fetches - prev.Fetches,
		DiskFetches: s.DiskFetches - prev.DiskFetches,
		Formats:     s.Formats - prev.Formats,
		Flushes:     s.Flushes - prev.Flushes,
		Steals:      s.Steals - prev.Steals,
		WALForces:   s.WALForces - prev.WALForces,
		IORetries:   s.IORetries - prev.IORetries,
	}
}

// Manager is the buffer manager. It is safe for concurrent use.
type Manager struct {
	Store *heap.Store
	Disk  *storage.Disk
	// Logs holds each node's write-ahead log, indexed by node ID, for WAL
	// enforcement on flush.
	Logs []*wal.Log
	// NVRAMLog selects the NVRAM log-force cost instead of rotational
	// disk (section 7's discussion of making stable logging cheap).
	NVRAMLog bool
	// Retry bounds transient-I/O-error retries on page reads and writes;
	// the zero value means storage.DefaultRetry.
	Retry storage.RetryPolicy

	mu       sync.Mutex
	dirty    map[storage.PageID]bool
	updTable map[storage.PageID]map[machine.NodeID]wal.LSN
	stats    Stats
	obs      *obs.Observer
	wf       *waterfall.Recorder
	dbt      *debt.Tracker
	// fetchHook, when non-nil, is called at every Fetch entry with no
	// manager state held. The chaos schedule recorder uses it as a
	// scheduling point: a fetch is where a crash-lost page is faulted back
	// in from disk, i.e. the hazard window of the stale-reinstall race.
	fetchHook func(machine.NodeID, storage.PageID)
}

// SetFetchHook attaches (or, with nil, detaches) the Fetch-entry callback.
// The hook may block (the schedule replayer parks callers on it); it is
// invoked outside the manager mutex.
func (b *Manager) SetFetchHook(f func(machine.NodeID, storage.PageID)) {
	b.mu.Lock()
	b.fetchHook = f
	b.mu.Unlock()
}

// SetObserver attaches the observability layer; disk fetches, flushes, and
// WAL-rule log forces are reported against the requesting node's clock.
func (b *Manager) SetObserver(o *obs.Observer) {
	b.mu.Lock()
	b.obs = o
	b.mu.Unlock()
}

// observer returns the attached observer (possibly nil).
func (b *Manager) observer() *obs.Observer {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.obs
}

// SetWaterfall attaches (or, with nil, detaches) the waterfall recorder;
// disk-read waits during Fetch are attributed to the requesting node's
// current transaction.
func (b *Manager) SetWaterfall(w *waterfall.Recorder) {
	b.mu.Lock()
	b.wf = w
	b.mu.Unlock()
}

// waterfall returns the attached recorder (possibly nil).
func (b *Manager) waterfall() *waterfall.Recorder {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wf
}

// SetDebt attaches (or, with nil, detaches) the recovery-debt tracker;
// dirty-page transitions feed its redo-working-set accounting.
func (b *Manager) SetDebt(d *debt.Tracker) {
	b.mu.Lock()
	b.dbt = d
	b.mu.Unlock()
}

// NewManager creates a buffer manager over the given store, disk, and
// per-node logs.
func NewManager(store *heap.Store, disk *storage.Disk, logs []*wal.Log) *Manager {
	if disk.PageSize() < store.Layout.PageBytes() {
		panic(fmt.Sprintf("buffer: disk page size %d < heap page size %d", disk.PageSize(), store.Layout.PageBytes()))
	}
	return &Manager{
		Store:    store,
		Disk:     disk,
		Logs:     logs,
		dirty:    make(map[storage.PageID]bool),
		updTable: make(map[storage.PageID]map[machine.NodeID]wal.LSN),
	}
}

// Stats returns a snapshot of the counters.
func (b *Manager) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Fetch ensures every line of page p is resident in shared memory, on
// behalf of node nd. A page never written to disk is formatted fresh; a
// partially lost page has only its missing lines reinstalled from the disk
// image, preserving newer surviving cached lines.
func (b *Manager) Fetch(nd machine.NodeID, p storage.PageID) error {
	b.mu.Lock()
	b.stats.Fetches++
	hook := b.fetchHook
	b.mu.Unlock()
	if hook != nil {
		hook(nd, p)
	}
	if b.Store.ResidentPage(p) {
		return nil
	}
	if !b.Disk.Exists(p) {
		b.mu.Lock()
		b.stats.Formats++
		b.mu.Unlock()
		return b.Store.FormatPage(nd, p)
	}
	img, err := b.readPage(nd, p)
	if err != nil {
		return err
	}
	cost := b.Store.M.Config().Cost.DiskRead
	b.Store.M.AdvanceClock(nd, cost)
	b.mu.Lock()
	b.stats.DiskFetches++
	b.mu.Unlock()
	if o := b.observer(); o != nil {
		o.Instant(obs.KindPageFetch, int32(nd), b.Store.M.Clock(nd), int64(p), 1)
	}
	if wf := b.waterfall(); wf != nil {
		wf.NoteFetch(int32(nd), int(p), b.Store.M.Clock(nd), cost)
	}
	return b.Store.InstallImage(nd, p, img[:b.Store.Layout.PageBytes()], true)
}

// MarkDirty records that page p diverges from its disk image.
func (b *Manager) MarkDirty(p storage.PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dirty[p] = true
	b.dbt.NoteDirty(int64(p))
}

// Dirty reports whether page p is marked dirty.
func (b *Manager) Dirty(p storage.PageID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dirty[p]
}

// DirtyPages returns the dirty page set (unordered).
func (b *Manager) DirtyPages() []storage.PageID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]storage.PageID, 0, len(b.dirty))
	for p := range b.dirty {
		out = append(out, p)
	}
	return out
}

// NoteUpdate records, in the shared (page, LSN) table, that node nd's log
// record lsn updated page p. FlushPage consults it to enforce WAL.
func (b *Manager) NoteUpdate(p storage.PageID, nd machine.NodeID, lsn wal.LSN) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.updTable[p]
	if t == nil {
		t = make(map[machine.NodeID]wal.LSN)
		b.updTable[p] = t
	}
	if lsn > t[nd] {
		t[nd] = lsn
	}
}

// logForceCost returns the simulated cost of one physical log force.
func (b *Manager) logForceCost() int64 {
	c := b.Store.M.Config().Cost
	if b.NVRAMLog {
		return c.LogForceNVRAM
	}
	return c.LogForce
}

// FlushPage writes page p to the stable database on behalf of node nd,
// first enforcing the WAL rule: every node that updated p forces its log
// through its last update to p. Flushing a page with an undo-tagged record
// is a steal (an uncommitted update reaches disk); its undo record is made
// stable by the same WAL forces. FlushPage fails with machine.ErrLineLost
// if part of the page was destroyed by a crash and not yet recovered.
func (b *Manager) FlushPage(nd machine.NodeID, p storage.PageID) error {
	// WAL rule first (the order is the point of the protocol).
	b.mu.Lock()
	pending := make(map[machine.NodeID]wal.LSN, len(b.updTable[p]))
	for n, lsn := range b.updTable[p] {
		pending[n] = lsn
	}
	b.mu.Unlock()
	for n, lsn := range pending {
		if int(n) >= len(b.Logs) || b.Logs[n] == nil {
			continue
		}
		if _, forced := b.Logs[n].Force(lsn); forced {
			cost := b.logForceCost()
			b.Store.M.AdvanceClock(nd, cost)
			b.mu.Lock()
			b.stats.WALForces++
			b.mu.Unlock()
			b.observer().ObserveLogForce(cost)
		}
	}

	img, err := b.Store.PageImage(nd, p)
	if err != nil {
		return fmt.Errorf("buffer: flushing page %d: %w", p, err)
	}
	steal := pageHasTag(b.Store.Layout, img)
	// Tags never reach disk: the WAL forces above made every stolen
	// update's undo record stable, which is what recovery uses for
	// on-disk uncommitted data (tags only ever describe cached lines).
	heap.StripTags(b.Store.Layout, img)
	if err := b.writePage(nd, p, img); err != nil {
		return err
	}
	b.Store.M.AdvanceClock(nd, b.Store.M.Config().Cost.DiskWrite)
	b.mu.Lock()
	b.stats.Flushes++
	if steal {
		b.stats.Steals++
	}
	delete(b.dirty, p)
	delete(b.updTable, p)
	b.dbt.NoteClean(int64(p))
	o := b.obs
	b.mu.Unlock()
	if o != nil {
		var stole int64
		if steal {
			stole = 1
		}
		o.Instant(obs.KindPageFlush, int32(nd), b.Store.M.Clock(nd), int64(p), stole)
	}
	return nil
}

// retryPolicy returns the configured retry policy (DefaultRetry when unset).
func (b *Manager) retryPolicy() storage.RetryPolicy {
	if b.Retry.MaxAttempts > 0 {
		return b.Retry
	}
	return storage.DefaultRetry
}

// noteRetry charges simulated backoff to nd and counts one retried attempt.
func (b *Manager) noteRetry(nd machine.NodeID, p storage.PageID, attempt int, backoff int64) {
	b.Store.M.AdvanceClock(nd, backoff)
	b.mu.Lock()
	b.stats.IORetries++
	b.mu.Unlock()
	if o := b.observer(); o != nil {
		o.Instant(obs.KindIORetry, int32(nd), b.Store.M.Clock(nd), int64(p), int64(attempt))
	}
}

// readPage reads page p from the stable database, retrying transient errors
// under the retry policy with exponential simulated backoff.
func (b *Manager) readPage(nd machine.NodeID, p storage.PageID) ([]byte, error) {
	pol := b.retryPolicy()
	for attempt := 1; ; attempt++ {
		img, err := b.Disk.ReadPage(p)
		if err == nil {
			return img, nil
		}
		if !errors.Is(err, storage.ErrTransient) || attempt >= pol.MaxAttempts {
			return nil, err
		}
		b.noteRetry(nd, p, attempt, pol.Backoff(attempt))
	}
}

// writePage writes page p to the stable database with the same retry policy.
func (b *Manager) writePage(nd machine.NodeID, p storage.PageID, img []byte) error {
	pol := b.retryPolicy()
	for attempt := 1; ; attempt++ {
		err := b.Disk.WritePage(p, img)
		if err == nil {
			return nil
		}
		if !errors.Is(err, storage.ErrTransient) || attempt >= pol.MaxAttempts {
			return err
		}
		b.noteRetry(nd, p, attempt, pol.Backoff(attempt))
	}
}

// pageHasTag reports whether any slot in the page image carries an undo tag
// (i.e. an uncommitted update).
func pageHasTag(layout heap.Layout, img []byte) bool {
	for line := 1; line < layout.LinesPerPage; line++ {
		lineImg := img[line*layout.LineSize : (line+1)*layout.LineSize]
		for s := 0; s < layout.RecsPerLine; s++ {
			if sd := heap.DecodeSlotFromLine(layout, lineImg, s); sd.Tag != machine.NoNode {
				return true
			}
		}
	}
	return false
}

// EvictPage flushes page p and then discards every cached copy of its
// lines, freeing the frame contents (the page survives only on disk). This
// is the steal path under memory pressure.
func (b *Manager) EvictPage(nd machine.NodeID, p storage.PageID) error {
	if err := b.FlushPage(nd, p); err != nil {
		return err
	}
	base := b.Store.PageBase(p)
	for i := 0; i < b.Store.Layout.LinesPerPage; i++ {
		l := base + machine.LineID(i)
		for _, h := range b.Store.M.Holders(l) {
			if err := b.Store.M.Discard(h, l); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlushAll flushes every dirty page (checkpoint support).
func (b *Manager) FlushAll(nd machine.NodeID) error {
	for _, p := range b.DirtyPages() {
		if err := b.FlushPage(nd, p); err != nil {
			return err
		}
	}
	return nil
}

// DropNode re-initializes the crashed node's column of the (page, LSN)
// table: its volatile log tail is gone, so there is nothing left to force.
// (Its stable records remain on its log device for recovery.)
func (b *Manager) DropNode(nd machine.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, t := range b.updTable {
		delete(t, nd)
	}
}

// PendingWAL returns the nodes (and LSNs) that would have to force their
// logs before page p could be flushed. Exposed for tests and experiments.
func (b *Manager) PendingWAL(p storage.PageID) map[machine.NodeID]wal.LSN {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[machine.NodeID]wal.LSN, len(b.updTable[p]))
	for n, lsn := range b.updTable[p] {
		if int(n) < len(b.Logs) && b.Logs[n] != nil && b.Logs[n].ForcedLSN() < lsn {
			out[n] = lsn
		}
	}
	return out
}
