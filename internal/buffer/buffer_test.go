package buffer

import (
	"errors"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

type fixture struct {
	m    *machine.Machine
	disk *storage.Disk
	logs []*wal.Log
	bm   *Manager
}

func newFixture(t *testing.T, nodes int) *fixture {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, Lines: 4096})
	layout, err := heap.NewLayout(m.LineSize(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	store := heap.NewStore(m, layout, 8)
	disk := storage.NewDisk(layout.PageBytes())
	logs := make([]*wal.Log, nodes)
	for i := range logs {
		logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{m: m, disk: disk, logs: logs, bm: NewManager(store, disk, logs)}
}

func TestFetchFormatsFreshPage(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.bm.Fetch(0, 3); err != nil {
		t.Fatal(err)
	}
	if !f.bm.Store.ResidentPage(3) {
		t.Fatal("page not resident after fetch")
	}
	s := f.bm.Stats()
	if s.Formats != 1 || s.DiskFetches != 0 {
		t.Errorf("stats = %+v, want one format", s)
	}
	// Second fetch is a hit.
	if err := f.bm.Fetch(1, 3); err != nil {
		t.Fatal(err)
	}
	if s := f.bm.Stats(); s.Fetches != 2 || s.Formats != 1 {
		t.Errorf("stats after hit = %+v", s)
	}
}

func TestFlushAndRefetch(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.bm.Fetch(0, 1); err != nil {
		t.Fatal(err)
	}
	rid := heap.RID{Page: 1, Slot: 2}
	sd := heap.SlotData{Tag: machine.NoNode, Flags: heap.FlagOccupied, Version: 5, Data: []byte("persist me")}
	if err := f.bm.Store.WriteSlot(0, rid, sd); err != nil {
		t.Fatal(err)
	}
	f.bm.MarkDirty(1)
	if !f.bm.Dirty(1) {
		t.Fatal("page not dirty")
	}
	clock0 := f.m.Clock(0)
	if err := f.bm.FlushPage(0, 1); err != nil {
		t.Fatal(err)
	}
	if f.bm.Dirty(1) {
		t.Error("page still dirty after flush")
	}
	if f.m.Clock(0)-clock0 < f.m.Config().Cost.DiskWrite {
		t.Error("flush did not charge disk time")
	}
	// Evict everything, then refetch from disk.
	if err := f.bm.EvictPage(0, 1); err != nil {
		t.Fatal(err)
	}
	if f.bm.Store.ResidentPage(1) {
		t.Fatal("page resident after evict")
	}
	if err := f.bm.Fetch(1, 1); err != nil {
		t.Fatal(err)
	}
	got, err := f.bm.Store.ReadSlot(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 5 || string(got.Data[:10]) != "persist me" {
		t.Errorf("refetched slot = %+v", got)
	}
	if s := f.bm.Stats(); s.DiskFetches != 1 {
		t.Errorf("DiskFetches = %d, want 1", s.DiskFetches)
	}
}

func TestWALEnforcedOnFlush(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.bm.Fetch(0, 0); err != nil {
		t.Fatal(err)
	}
	// Two nodes update page 0, logging volatilely.
	lsn0 := f.logs[0].Append(wal.Record{Type: wal.TypeUpdate, Txn: wal.MakeTxnID(0, 1), Page: 0})
	f.bm.NoteUpdate(0, 0, lsn0)
	lsn1 := f.logs[1].Append(wal.Record{Type: wal.TypeUpdate, Txn: wal.MakeTxnID(1, 1), Page: 0})
	f.bm.NoteUpdate(0, 1, lsn1)

	pend := f.bm.PendingWAL(0)
	if len(pend) != 2 {
		t.Fatalf("PendingWAL = %v, want both nodes", pend)
	}
	if err := f.bm.FlushPage(0, 0); err != nil {
		t.Fatal(err)
	}
	// Both logs must now be stable through the noted LSNs.
	if f.logs[0].ForcedLSN() < lsn0 || f.logs[1].ForcedLSN() < lsn1 {
		t.Errorf("WAL not enforced: forced = %d, %d", f.logs[0].ForcedLSN(), f.logs[1].ForcedLSN())
	}
	if s := f.bm.Stats(); s.WALForces != 2 {
		t.Errorf("WALForces = %d, want 2", s.WALForces)
	}
	if len(f.bm.PendingWAL(0)) != 0 {
		t.Error("PendingWAL nonempty after flush")
	}
}

func TestStealDetection(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.bm.Fetch(0, 2); err != nil {
		t.Fatal(err)
	}
	rid := heap.RID{Page: 2, Slot: 0}
	// An undo-tagged slot marks an uncommitted update: flushing is a steal.
	if err := f.bm.Store.WriteSlot(0, rid, heap.SlotData{Tag: 0, Flags: heap.FlagOccupied, Version: 1, Data: []byte("uncommitted")}); err != nil {
		t.Fatal(err)
	}
	if err := f.bm.FlushPage(0, 2); err != nil {
		t.Fatal(err)
	}
	if s := f.bm.Stats(); s.Steals != 1 {
		t.Errorf("Steals = %d, want 1", s.Steals)
	}
	// Clear the tag; the next flush is not a steal.
	if err := f.bm.Store.WriteTag(0, rid, machine.NoNode); err != nil {
		t.Fatal(err)
	}
	if err := f.bm.FlushPage(0, 2); err != nil {
		t.Fatal(err)
	}
	if s := f.bm.Stats(); s.Steals != 1 || s.Flushes != 2 {
		t.Errorf("stats = %+v, want 1 steal of 2 flushes", s)
	}
}

func TestFlushLostPageFails(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.bm.Fetch(0, 0); err != nil {
		t.Fatal(err)
	}
	// Node 0 holds every line exclusively; crash it: the page is destroyed.
	f.m.Crash(0)
	if err := f.bm.FlushPage(1, 0); !errors.Is(err, machine.ErrLineLost) {
		t.Errorf("flush of destroyed page: err = %v, want ErrLineLost", err)
	}
}

func TestPartialReinstallAfterCrash(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.bm.Fetch(0, 0); err != nil {
		t.Fatal(err)
	}
	slotA := heap.RID{Page: 0, Slot: 0} // line 1
	slotB := heap.RID{Page: 0, Slot: 4} // line 2
	for _, rid := range []heap.RID{slotA, slotB} {
		if err := f.bm.Store.WriteSlot(0, rid, heap.SlotData{Tag: machine.NoNode, Flags: heap.FlagOccupied, Version: 1, Data: []byte("v1")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.bm.FlushPage(0, 0); err != nil {
		t.Fatal(err)
	}
	// Node 1 updates slot A (its line migrates to node 1) and keeps v2
	// only in its cache; the rest of the page stays on node 0.
	if err := f.bm.Store.WriteSlot(1, slotA, heap.SlotData{Tag: machine.NoNode, Flags: heap.FlagOccupied, Version: 2, Data: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	// Crash node 0: the header, slot B's line, and the unused line die;
	// slot A's line (on node 1) survives.
	f.m.Crash(0)
	if f.bm.Store.ResidentPage(0) {
		t.Fatal("page should be partially lost")
	}
	if err := f.bm.Fetch(1, 0); err != nil {
		t.Fatal(err)
	}
	// Slot A must keep v2 (survivor), slot B restored to v1 from disk.
	a, err := f.bm.Store.ReadSlot(1, slotA)
	if err != nil || a.Version != 2 {
		t.Errorf("slot A = %+v, %v; want v2 preserved", a, err)
	}
	bSlot, err := f.bm.Store.ReadSlot(1, slotB)
	if err != nil || bSlot.Version != 1 {
		t.Errorf("slot B = %+v, %v; want v1 from disk", bSlot, err)
	}
}

func TestDropNode(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.bm.Fetch(0, 0); err != nil {
		t.Fatal(err)
	}
	lsn := f.logs[0].Append(wal.Record{Type: wal.TypeUpdate, Txn: wal.MakeTxnID(0, 1), Page: 0})
	f.bm.NoteUpdate(0, 0, lsn)
	f.bm.DropNode(0)
	if len(f.bm.PendingWAL(0)) != 0 {
		t.Error("crashed node's WAL entries should be dropped")
	}
}

func TestFlushAll(t *testing.T) {
	f := newFixture(t, 1)
	for p := storage.PageID(0); p < 3; p++ {
		if err := f.bm.Fetch(0, p); err != nil {
			t.Fatal(err)
		}
		f.bm.MarkDirty(p)
	}
	if err := f.bm.FlushAll(0); err != nil {
		t.Fatal(err)
	}
	if n := len(f.bm.DirtyPages()); n != 0 {
		t.Errorf("%d dirty pages after FlushAll", n)
	}
	if s := f.bm.Stats(); s.Flushes != 3 {
		t.Errorf("Flushes = %d, want 3", s.Flushes)
	}
}
