package lock

import (
	"errors"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

func newSM(t *testing.T, nodes, tableLines int, lm LogMode) (*SMManager, []*wal.Log, *machine.Machine) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, Lines: tableLines + 64})
	logs := make([]*wal.Log, nodes)
	for i := range logs {
		var err error
		logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSMManager(m, tableLines, logs, lm)
	if err != nil {
		t.Fatal(err)
	}
	return s, logs, m
}

func TestModeCompatibility(t *testing.T) {
	if !Compatible(Shared, Shared) {
		t.Error("S-S should be compatible")
	}
	for _, pair := range [][2]Mode{{Shared, Exclusive}, {Exclusive, Shared}, {Exclusive, Exclusive}} {
		if Compatible(pair[0], pair[1]) {
			t.Errorf("%v-%v should conflict", pair[0], pair[1])
		}
	}
}

func TestNames(t *testing.T) {
	a := NameOfRID(heap.RID{Page: 1, Slot: 2})
	b := NameOfRID(heap.RID{Page: 1, Slot: 3})
	c := NameOfKey(0x10002)
	d := NameOfPage(storage.PageID(1))
	names := map[Name]bool{a: true, b: true, c: true, d: true}
	if len(names) != 4 {
		t.Errorf("name collision among %v %v %v %v", a, b, c, d)
	}
	if a == 0 || c == 0 || d == 0 {
		t.Error("reserved zero name produced")
	}
}

func TestAcquireReleaseBasic(t *testing.T) {
	s, _, _ := newSM(t, 2, 64, LogAllLocks)
	tx := wal.MakeTxnID(0, 1)
	name := NameOfKey(7)
	granted, err := s.Acquire(0, tx, name, Exclusive)
	if err != nil || !granted {
		t.Fatalf("Acquire = %v, %v", granted, err)
	}
	mode, held, err := s.Holds(0, tx, name)
	if err != nil || !held || mode != Exclusive {
		t.Fatalf("Holds = %v, %v, %v", mode, held, err)
	}
	if err := s.Release(0, tx, name); err != nil {
		t.Fatal(err)
	}
	if _, held, _ := s.Holds(0, tx, name); held {
		t.Error("held after release")
	}
	if err := s.Release(0, tx, name); !errors.Is(err, ErrNotHeld) {
		t.Errorf("double release: err = %v, want ErrNotHeld", err)
	}
}

func TestSharedConcurrencyAndConflict(t *testing.T) {
	s, _, _ := newSM(t, 3, 64, LogAllLocks)
	t1, t2, t3 := wal.MakeTxnID(0, 1), wal.MakeTxnID(1, 1), wal.MakeTxnID(2, 1)
	name := NameOfKey(99)
	for nd, tx := range map[machine.NodeID]wal.TxnID{0: t1, 1: t2} {
		if g, err := s.Acquire(nd, tx, name, Shared); err != nil || !g {
			t.Fatalf("shared acquire by %v: %v, %v", tx, g, err)
		}
	}
	// X conflicts with the two S holders: queued.
	g, err := s.Acquire(2, t3, name, Exclusive)
	if err != nil || g {
		t.Fatalf("conflicting X: granted = %v, err = %v", g, err)
	}
	// FIFO: a later S request must queue behind the waiting X.
	t4 := wal.MakeTxnID(2, 2)
	if g, err := s.Acquire(2, t4, name, Shared); err != nil || g {
		t.Fatalf("S behind waiting X: granted = %v, err = %v", g, err)
	}
	// Release both S holders: X is promoted; the queued S still waits.
	if err := s.Release(0, t1, name); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(1, t2, name); err != nil {
		t.Fatal(err)
	}
	if _, held, _ := s.Holds(2, t3, name); !held {
		t.Error("X not promoted after S releases")
	}
	if _, held, _ := s.Holds(2, t4, name); held {
		t.Error("S granted while X held")
	}
	// Release X: S promoted.
	if err := s.Release(2, t3, name); err != nil {
		t.Fatal(err)
	}
	if _, held, _ := s.Holds(2, t4, name); !held {
		t.Error("S not promoted after X release")
	}
	if st := s.Stats(); st.Promotions != 2 {
		t.Errorf("Promotions = %d, want 2", st.Promotions)
	}
}

func TestReacquireAndUpgrade(t *testing.T) {
	s, _, _ := newSM(t, 2, 64, LogAllLocks)
	tx := wal.MakeTxnID(0, 1)
	name := NameOfKey(5)
	if g, _ := s.Acquire(0, tx, name, Shared); !g {
		t.Fatal("S not granted")
	}
	// Re-acquire in the same mode: no-op grant.
	if g, _ := s.Acquire(0, tx, name, Shared); !g {
		t.Fatal("reacquire not granted")
	}
	// Upgrade while sole holder: granted.
	if g, _ := s.Acquire(0, tx, name, Exclusive); !g {
		t.Fatal("sole-holder upgrade not granted")
	}
	if mode, _, _ := s.Holds(0, tx, name); mode != Exclusive {
		t.Errorf("mode after upgrade = %v", mode)
	}
	// Downgrade request (X holder asks S): no-op grant, stays X.
	if g, _ := s.Acquire(0, tx, name, Shared); !g {
		t.Fatal("weaker reacquire not granted")
	}
	if mode, _, _ := s.Holds(0, tx, name); mode != Exclusive {
		t.Errorf("mode = %v, want X preserved", mode)
	}
}

func TestUpgradeWaitsWithOtherHolders(t *testing.T) {
	s, _, _ := newSM(t, 2, 64, LogAllLocks)
	t1, t2 := wal.MakeTxnID(0, 1), wal.MakeTxnID(1, 1)
	name := NameOfKey(6)
	s.Acquire(0, t1, name, Shared)
	s.Acquire(1, t2, name, Shared)
	g, err := s.Acquire(0, t1, name, Exclusive)
	if err != nil || g {
		t.Fatalf("upgrade with co-holder: granted = %v", g)
	}
	// Releasing the other holder promotes the upgrade.
	if err := s.Release(1, t2, name); err != nil {
		t.Fatal(err)
	}
	if mode, held, _ := s.Holds(0, t1, name); !held || mode != Exclusive {
		t.Errorf("upgrade not promoted: %v, %v", mode, held)
	}
}

func TestCancelWait(t *testing.T) {
	s, _, _ := newSM(t, 2, 64, LogAllLocks)
	t1, t2, t3 := wal.MakeTxnID(0, 1), wal.MakeTxnID(1, 1), wal.MakeTxnID(1, 2)
	name := NameOfKey(8)
	s.Acquire(0, t1, name, Exclusive)
	s.Acquire(1, t2, name, Exclusive) // waits
	s.Acquire(1, t3, name, Shared)    // waits behind t2
	if err := s.CancelWait(1, t2, name); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(0, t1, name); err != nil {
		t.Fatal(err)
	}
	if _, held, _ := s.Holds(1, t3, name); !held {
		t.Error("t3 not promoted after cancel + release")
	}
	// Cancel of a non-waiter is a no-op.
	if err := s.CancelWait(1, t2, name); err != nil {
		t.Fatal(err)
	}
}

func TestProbingWithCollisions(t *testing.T) {
	// A 2-line table forces collisions and wraparound.
	s, _, _ := newSM(t, 1, 2, LogNoLocks)
	tx := wal.MakeTxnID(0, 1)
	n1, n2 := NameOfKey(1), NameOfKey(2)
	if g, err := s.Acquire(0, tx, n1, Exclusive); err != nil || !g {
		t.Fatal(g, err)
	}
	if g, err := s.Acquire(0, tx, n2, Exclusive); err != nil || !g {
		t.Fatal(g, err)
	}
	// Table is full now.
	if _, err := s.Acquire(0, tx, NameOfKey(3), Exclusive); !errors.Is(err, ErrLockTableFull) {
		t.Errorf("full table: err = %v, want ErrLockTableFull", err)
	}
	// Release n1 (tombstone), n2 must still be findable past the tombstone.
	if err := s.Release(0, tx, n1); err != nil {
		t.Fatal(err)
	}
	if _, held, err := s.Holds(0, tx, n2); err != nil || !held {
		t.Errorf("n2 lost after tombstoning n1: %v, %v", held, err)
	}
	// The tombstone is reusable.
	if g, err := s.Acquire(0, tx, NameOfKey(3), Exclusive); err != nil || !g {
		t.Errorf("tombstone not reused: %v, %v", g, err)
	}
}

func TestLCBCapacity(t *testing.T) {
	s, _, _ := newSM(t, 1, 16, LogNoLocks)
	name := NameOfKey(1)
	cap := s.entryCap()
	for i := 0; i < cap; i++ {
		if g, err := s.Acquire(0, wal.MakeTxnID(0, uint64(i+1)), name, Shared); err != nil || !g {
			t.Fatalf("S holder %d: %v, %v", i, g, err)
		}
	}
	_, err := s.Acquire(0, wal.MakeTxnID(0, uint64(cap+1)), name, Shared)
	if !errors.Is(err, ErrLCBFull) {
		t.Errorf("over-capacity LCB: err = %v, want ErrLCBFull", err)
	}
}

func TestLockLogging(t *testing.T) {
	for _, tc := range []struct {
		lm        LogMode
		wantRecs  int // acquire S + acquire X + release X + release S records
		wantTypes []wal.RecordType
	}{
		{LogNoLocks, 0, nil},
		{LogWriteLocks, 2, []wal.RecordType{wal.TypeLockAcquire, wal.TypeLockRelease}},
		{LogAllLocks, 4, []wal.RecordType{wal.TypeLockAcquire, wal.TypeLockAcquire, wal.TypeLockRelease, wal.TypeLockRelease}},
	} {
		s, logs, _ := newSM(t, 1, 64, tc.lm)
		tx := wal.MakeTxnID(0, 1)
		s.Acquire(0, tx, NameOfKey(1), Shared)
		s.Acquire(0, tx, NameOfKey(2), Exclusive)
		s.Release(0, tx, NameOfKey(2))
		s.Release(0, tx, NameOfKey(1))
		recs := logs[0].Records(1)
		if len(recs) != tc.wantRecs {
			t.Errorf("LogMode %d: %d records, want %d", tc.lm, len(recs), tc.wantRecs)
			continue
		}
		for i, want := range tc.wantTypes {
			if recs[i].Type != want {
				t.Errorf("LogMode %d: record %d = %v, want %v", tc.lm, i, recs[i].Type, want)
			}
		}
	}
}

// TestLCBMigrationAndCrash reproduces the section 3.1 lock-table scenario:
// two transactions on different nodes hold a shared lock whose LCB sits in
// one cache line; the LCB is valid only at the node that last acquired, so
// that node's crash destroys both holders' lock information.
func TestLCBMigrationAndCrash(t *testing.T) {
	s, _, m := newSM(t, 2, 8, LogAllLocks)
	t0, t1 := wal.MakeTxnID(0, 1), wal.MakeTxnID(1, 1)
	name := NameOfKey(42)
	if g, _ := s.Acquire(0, t0, name, Shared); !g {
		t.Fatal("t0 S not granted")
	}
	if g, _ := s.Acquire(1, t1, name, Shared); !g {
		t.Fatal("t1 S not granted")
	}
	// Node 1's crash destroys the LCB (it holds the only copy after its
	// acquire), losing node 0's lock info too — the recovery problem.
	m.Crash(1)
	if got := s.LostLCBCount(); got != 1 {
		t.Fatalf("LostLCBCount = %d, want 1 (the LCB line died with node 1)", got)
	}
	// Recovery: reinstall lost lines as tombstones, then node 0 re-requests
	// its surviving transactions' locks (idempotent Acquire).
	if n, err := s.ReinstallLost(0); err != nil || n != 1 {
		t.Fatalf("ReinstallLost = %d, %v", n, err)
	}
	if g, err := s.Acquire(0, t0, name, Shared); err != nil || !g {
		t.Fatalf("re-acquire after rebuild: %v, %v", g, err)
	}
	snap, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || len(snap[0].Holders) != 1 || snap[0].Holders[0].Txn != t0 {
		t.Errorf("rebuilt lock space = %+v, want only t0's hold", snap)
	}
}

func TestReleaseCrashed(t *testing.T) {
	s, _, m := newSM(t, 3, 32, LogAllLocks)
	tSurvivor := wal.MakeTxnID(0, 1)
	tDead := wal.MakeTxnID(2, 1)
	nameShared := NameOfKey(1)
	nameDead := NameOfKey(2)
	s.Acquire(0, tSurvivor, nameShared, Shared)
	s.Acquire(2, tDead, nameShared, Shared)
	s.Acquire(2, tDead, nameDead, Exclusive)
	// A survivor waits behind the dead transaction's X lock.
	if g, _ := s.Acquire(0, tSurvivor, nameDead, Exclusive); g {
		t.Fatal("should wait behind tDead")
	}
	// Keep the LCB lines alive on a surviving node: node 0 touches them
	// last (Holds on a present name takes the line lock, migrating the
	// line), so they reside there, not on the crashing node.
	for _, n := range []Name{nameShared, nameDead} {
		if _, _, err := s.Holds(0, tDead, n); err != nil {
			t.Fatal(err)
		}
	}
	m.Crash(2)
	released, err := s.ReleaseCrashed(0, []machine.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	if released != 2 {
		t.Errorf("released %d entries, want 2", released)
	}
	// tSurvivor keeps its shared lock and is promoted to the X lock.
	if _, held, _ := s.Holds(0, tSurvivor, nameShared); !held {
		t.Error("survivor's shared lock lost")
	}
	if mode, held, _ := s.Holds(0, tSurvivor, nameDead); !held || mode != Exclusive {
		t.Errorf("survivor not promoted: %v, %v", mode, held)
	}
}

func TestWaitsForAndDeadlock(t *testing.T) {
	s, _, _ := newSM(t, 2, 64, LogNoLocks)
	tA, tB := wal.MakeTxnID(0, 1), wal.MakeTxnID(1, 1)
	n1, n2 := NameOfKey(1), NameOfKey(2)
	s.Acquire(0, tA, n1, Exclusive)
	s.Acquire(1, tB, n2, Exclusive)
	if victim, err := s.FindDeadlock(0); err != nil || victim != 0 {
		t.Fatalf("no deadlock yet: victim = %v, err = %v", victim, err)
	}
	s.Acquire(0, tA, n2, Exclusive) // A waits for B
	s.Acquire(1, tB, n1, Exclusive) // B waits for A: cycle
	g, err := s.WaitsFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g[tA]) != 1 || g[tA][0] != tB || len(g[tB]) != 1 || g[tB][0] != tA {
		t.Errorf("waits-for = %v", g)
	}
	victim, err := s.FindDeadlock(0)
	if err != nil || victim == 0 {
		t.Fatalf("deadlock not found: %v, %v", victim, err)
	}
	if victim != tA && victim != tB {
		t.Errorf("victim = %v, want tA or tB", victim)
	}
}

func TestSDManagerBasics(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 4, Lines: 16})
	s := NewSDManager(m, true)
	tx := wal.MakeTxnID(0, 1)
	name := NameOfKey(10)
	owner := s.Owner(name)
	requester := machine.NodeID((int(owner) + 2) % 4) // definitely remote
	before := m.Clock(requester)
	g, err := s.Acquire(requester, tx, name, Exclusive)
	if err != nil || !g {
		t.Fatalf("Acquire = %v, %v", g, err)
	}
	cost := m.Clock(requester) - before
	rtt := m.Config().Cost.MessageRoundTrip
	if cost < 2*rtt { // remote request + replication
		t.Errorf("remote acquire cost %d, want >= %d", cost, 2*rtt)
	}
	if mode, held, _ := s.Holds(requester, tx, name); !held || mode != Exclusive {
		t.Error("not held after grant")
	}
	if err := s.Release(requester, tx, name); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Messages < 4 {
		t.Errorf("Messages = %d, want >= 4", st.Messages)
	}
}

func TestSDManagerConflictAndPromotion(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, Lines: 16})
	s := NewSDManager(m, false)
	t1, t2 := wal.MakeTxnID(0, 1), wal.MakeTxnID(1, 1)
	name := NameOfKey(3)
	if g, _ := s.Acquire(0, t1, name, Exclusive); !g {
		t.Fatal("t1 X not granted")
	}
	if g, _ := s.Acquire(1, t2, name, Exclusive); g {
		t.Fatal("t2 X granted over conflict")
	}
	if err := s.Release(0, t1, name); err != nil {
		t.Fatal(err)
	}
	if _, held, _ := s.Holds(1, t2, name); !held {
		t.Error("t2 not promoted")
	}
}

func TestSDManagerCrashWithReplication(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 4, Lines: 16})
	s := NewSDManager(m, true)
	name := NameOfKey(10)
	owner := s.Owner(name)
	surv := machine.NodeID((int(owner) + 2) % 4)
	tSurv := wal.MakeTxnID(surv, 1)
	tDead := wal.MakeTxnID(owner, 1)
	s.Acquire(surv, tSurv, name, Shared)
	s.Acquire(owner, tDead, name, Shared)
	// Crash the owner: the replica takes over; the survivor's lock must
	// persist and the dead transaction's lock must be released.
	s.Crash(owner)
	if _, held, _ := s.Holds(surv, tSurv, name); !held {
		t.Error("survivor's lock lost despite replication")
	}
	if _, held, _ := s.Holds(surv, tDead, name); held {
		t.Error("crashed transaction's lock not released")
	}
}

// TestUpgradeRetryDoesNotDuplicateWaiter is a regression test: a retried
// upgrade request used to append a fresh waiter entry on every attempt;
// stale duplicates outlived the (deadlock-victim) transaction, and a later
// promotion resurrected it as a holder, wedging the lock forever.
func TestUpgradeRetryDoesNotDuplicateWaiter(t *testing.T) {
	s, _, _ := newSM(t, 2, 64, LogNoLocks)
	t1, t2 := wal.MakeTxnID(0, 1), wal.MakeTxnID(1, 1)
	name := NameOfKey(1)
	s.Acquire(0, t1, name, Shared)
	s.Acquire(1, t2, name, Shared)
	// t1 retries its upgrade many times, as a blocked transaction does.
	for i := 0; i < 5; i++ {
		if g, err := s.Acquire(0, t1, name, Exclusive); err != nil || g {
			t.Fatalf("retry %d: granted=%v err=%v", i, g, err)
		}
	}
	snap, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || len(snap[0].Waiters) != 1 {
		t.Fatalf("waiters = %+v, want exactly one upgrade entry", snap)
	}
	// t1 gives up (deadlock victim): cancel + release. No trace may remain.
	if err := s.CancelWait(0, t1, name); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(0, t1, name); err != nil {
		t.Fatal(err)
	}
	// t2 releases: the lock space must end empty — a resurrected t1 entry
	// would wedge the lock.
	if err := s.Release(1, t2, name); err != nil {
		t.Fatal(err)
	}
	snap, _ = s.Snapshot(0)
	if len(snap) != 0 {
		t.Errorf("lock space not empty: %+v", snap)
	}
}
