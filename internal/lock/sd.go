package lock

import (
	"sync"

	"smdb/internal/machine"
	"smdb/internal/wal"
)

// SDManager is the shared-disk-style message-passing lock manager baseline
// (the architecture of the VAXcluster distributed lock manager and of the
// systems in [19, 21, 25], sketched in sections 4.2.2 and 7). Each lock
// name has a designated owner node holding its lock state in private
// memory; other nodes acquire and release by exchanging messages with the
// owner. To survive node failures without read-lock logging, the owner
// replicates each lock-state change to a backup node (one more message).
//
// The simulated cost of every remote interaction is one OS-level message
// round trip — the overhead that SM locking eliminates entirely. Lock state
// lives in Go maps, modelling per-node private memory (it is not part of
// the coherent shared-memory space, so it neither migrates nor gets
// destroyed by remote failures).
type SDManager struct {
	M *machine.Machine

	mu        sync.Mutex
	nodes     int
	primary   []map[Name]*sdLCB // indexed by owner node
	replica   []map[Name]*sdLCB // replica of node i's primary, stored at (i+1)%nodes
	alive     []bool
	stats     SDStats
	replicate bool
}

// sdLCB is the owner-resident lock state.
type sdLCB struct {
	holders []Entry
	waiters []Entry
}

// SDStats counts SD lock manager activity.
type SDStats struct {
	Acquires, Grants, Waits, Releases int64
	// Messages is the number of message round trips exchanged.
	Messages int64
}

// NewSDManager creates the baseline manager for the machine's node count.
// replicate enables backup replication of every lock-state change (the
// failure-resilient configuration of [19, 25]).
func NewSDManager(m *machine.Machine, replicate bool) *SDManager {
	n := m.Nodes()
	s := &SDManager{M: m, nodes: n, replicate: replicate}
	s.primary = make([]map[Name]*sdLCB, n)
	s.replica = make([]map[Name]*sdLCB, n)
	s.alive = make([]bool, n)
	for i := 0; i < n; i++ {
		s.primary[i] = make(map[Name]*sdLCB)
		s.replica[i] = make(map[Name]*sdLCB)
		s.alive[i] = true
	}
	return s
}

// Owner returns the designated owner node of a lock name.
func (s *SDManager) Owner(name Name) machine.NodeID {
	h := uint64(name) * 0x9e3779b97f4a7c15
	h ^= h >> 33 // fold the high bits so small moduli see them
	return machine.NodeID(h % uint64(s.nodes))
}

// backupOf returns the node holding the replica of owner's lock table.
func (s *SDManager) backupOf(owner machine.NodeID) machine.NodeID {
	return machine.NodeID((int(owner) + 1) % s.nodes)
}

// message charges one round trip to nd.
func (s *SDManager) message(nd machine.NodeID) {
	s.stats.Messages++
	s.M.AdvanceClock(nd, s.M.Config().Cost.MessageRoundTrip)
}

// table returns the authoritative lock map for name: the owner's primary,
// or its replica if the owner is down.
func (s *SDManager) table(name Name) (map[Name]*sdLCB, machine.NodeID) {
	o := s.Owner(name)
	if s.alive[o] {
		return s.primary[o], o
	}
	return s.replica[o], s.backupOf(o)
}

// Acquire requests name in mode for txn on node nd. Remote requests cost a
// message round trip; replication (if enabled) costs another.
func (s *SDManager) Acquire(nd machine.NodeID, txn wal.TxnID, name Name, mode Mode) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Acquires++
	tbl, host := s.table(name)
	if host != nd {
		s.message(nd)
	}
	b := tbl[name]
	if b == nil {
		b = &sdLCB{}
		tbl[name] = b
	}
	granted := s.acquireLCB(b, txn, mode)
	if s.replicate {
		s.message(nd)
		s.mirror(name, b)
	}
	if granted {
		s.stats.Grants++
	} else {
		s.stats.Waits++
	}
	return granted, nil
}

// acquireLCB applies the same grant rules as the SM manager.
func (s *SDManager) acquireLCB(b *sdLCB, txn wal.TxnID, mode Mode) bool {
	for i, h := range b.holders {
		if h.Txn != txn {
			continue
		}
		if h.Mode >= mode {
			return true
		}
		if len(b.holders) == 1 {
			b.holders[i].Mode = mode
			return true
		}
		for _, w := range b.waiters {
			if w.Txn == txn {
				return false // upgrade already queued
			}
		}
		b.waiters = append(b.waiters, Entry{Txn: txn, Mode: mode})
		return false
	}
	for _, w := range b.waiters {
		if w.Txn == txn {
			return false
		}
	}
	lb := lcb{holders: b.holders, waiters: b.waiters}
	if grantable(&lb, txn, mode) {
		b.holders = append(b.holders, Entry{Txn: txn, Mode: mode})
		return true
	}
	b.waiters = append(b.waiters, Entry{Txn: txn, Mode: mode})
	return false
}

// mirror copies b into the owner's replica table.
func (s *SDManager) mirror(name Name, b *sdLCB) {
	o := s.Owner(name)
	cp := &sdLCB{
		holders: append([]Entry(nil), b.holders...),
		waiters: append([]Entry(nil), b.waiters...),
	}
	s.replica[o][name] = cp
	if len(cp.holders) == 0 && len(cp.waiters) == 0 {
		delete(s.replica[o], name)
	}
}

// Holds reports whether txn holds name. Polling a remote owner costs a
// message round trip.
func (s *SDManager) Holds(nd machine.NodeID, txn wal.TxnID, name Name) (Mode, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, host := s.table(name)
	if host != nd {
		s.message(nd)
	}
	b := tbl[name]
	if b == nil {
		return 0, false, nil
	}
	for _, h := range b.holders {
		if h.Txn == txn {
			return h.Mode, true, nil
		}
	}
	return 0, false, nil
}

// Release removes txn's hold on (or wait for) name and promotes waiters.
func (s *SDManager) Release(nd machine.NodeID, txn wal.TxnID, name Name) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, host := s.table(name)
	if host != nd {
		s.message(nd)
	}
	b := tbl[name]
	if b == nil {
		return ErrNotHeld
	}
	found := false
	for i, h := range b.holders {
		if h.Txn == txn {
			b.holders = append(b.holders[:i], b.holders[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		for i, w := range b.waiters {
			if w.Txn == txn {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				found = true
				break
			}
		}
	}
	if !found {
		return ErrNotHeld
	}
	lb := lcb{holders: b.holders, waiters: b.waiters}
	s.promoteSD(&lb)
	b.holders, b.waiters = lb.holders, lb.waiters
	if len(b.holders) == 0 && len(b.waiters) == 0 {
		delete(tbl, name)
	}
	if s.replicate {
		s.message(nd)
		s.mirror(name, b)
	}
	s.stats.Releases++
	return nil
}

// promoteSD applies the SM promotion rules without touching SM stats.
func (s *SDManager) promoteSD(b *lcb) {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		isUpgrade := false
		for i, h := range b.holders {
			if h.Txn == w.Txn {
				if len(b.holders) == 1 {
					b.holders[i].Mode = w.Mode
					isUpgrade = true
				}
				break
			}
		}
		if isUpgrade {
			b.waiters = b.waiters[1:]
			continue
		}
		for _, h := range b.holders {
			if !Compatible(h.Mode, w.Mode) {
				return
			}
		}
		b.holders = append(b.holders, w)
		b.waiters = b.waiters[1:]
	}
}

// Crash marks a node down. If replication is enabled the lock space
// survives (the backup's replica becomes authoritative); without it, the
// owner's lock state is simply lost — the failure mode replication exists
// to prevent. Locks held by crashed-node transactions are released.
func (s *SDManager) Crash(crashed ...machine.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	down := map[machine.NodeID]bool{}
	for _, c := range crashed {
		if int(c) < len(s.alive) {
			s.alive[c] = false
			down[c] = true
			s.primary[c] = make(map[Name]*sdLCB) // private memory destroyed
		}
	}
	// Drop entries of crashed transactions everywhere that survived.
	for i := 0; i < s.nodes; i++ {
		for _, tbl := range []map[Name]*sdLCB{s.primary[i], s.replica[i]} {
			for name, b := range tbl {
				lb := lcb{holders: b.holders, waiters: b.waiters}
				var rel int
				lb.holders, _ = dropCrashed(lb.holders, down, &rel, false)
				lb.waiters, _ = dropCrashed(lb.waiters, down, &rel, false)
				s.promoteSD(&lb)
				b.holders, b.waiters = lb.holders, lb.waiters
				if len(b.holders) == 0 && len(b.waiters) == 0 {
					delete(tbl, name)
				}
			}
		}
	}
}

// Stats returns a snapshot of the counters.
func (s *SDManager) Stats() SDStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
