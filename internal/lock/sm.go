package lock

import (
	"encoding/binary"
	"fmt"
	"sync"

	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/wal"
)

// LCB line layout:
//
//	off 0   state: empty / used / tombstone / overflow
//	off 1   holder count (this line's share)
//	off 2   waiter count (this line's share)
//	off 3   reserved
//	off 4   next line: table-slot index + 1 of the overflow continuation,
//	        0 if none (only meaningful in chained mode)
//	off 8   lock name (8 bytes); for an overflow line, the head's table
//	        slot index (for orphan detection)
//	off 16  entries: holders first, then waiters, 9 bytes each
//	        (txn id 8 bytes + mode 1 byte)
//
// In the default (one-line) mode, an LCB spans exactly one cache line — the
// paper's recommended organization: "a node crash will either destroy all
// or none of a specific LCB". In chained mode (section 4.2.2's harder
// variant) an LCB's queues may continue into overflow lines, so a crash can
// destroy arbitrary segments; recovery then discards every surviving
// fragment of a broken chain and rebuilds the whole LCB from the logs,
// exactly as the paper recommends.
const (
	lcbStateOff   = 0
	lcbNHoldOff   = 1
	lcbNWaitOff   = 2
	lcbNextOff    = 4
	lcbNameOff    = 8
	lcbEntriesOff = 16
	lcbEntryBytes = 9
)

// LCB slot states.
const (
	lcbEmpty     = 0 // never used; probe chains end here
	lcbUsed      = 1
	lcbTombstone = 2 // reusable, but probe chains continue past it
	lcbOverflow  = 3 // continuation of a chained LCB; skipped by probing
)

// LogMode selects which lock operations are logged.
type LogMode int

const (
	// LogNoLocks logs nothing (pure FA baseline with system-reboot
	// recovery: lock state need not be reconstructible).
	LogNoLocks LogMode = iota
	// LogWriteLocks logs exclusive acquisitions and releases only, the
	// conventional policy ("typically, transaction management systems log
	// only write locks").
	LogWriteLocks
	// LogAllLocks logs shared acquisitions too — the extra overhead IFA
	// imposes (Table 1) so that LCBs destroyed with a crashed node can be
	// rebuilt for surviving transactions.
	LogAllLocks
)

// Entry is one holder or waiter in an LCB.
type Entry struct {
	Txn  wal.TxnID
	Mode Mode
}

// lcb is the decoded form of one lock-control-block line (a head or an
// overflow fragment), or — after loadChain — a whole chained LCB aggregated
// into one value.
type lcb struct {
	state byte
	name  Name
	// next is the table slot of the overflow continuation, -1 if none.
	next    int
	holders []Entry
	waiters []Entry
}

// Stats counts SM lock manager activity.
type Stats struct {
	Acquires   int64 // acquisition requests
	Grants     int64 // immediate grants
	Waits      int64 // requests that were queued
	Releases   int64
	Promotions int64 // waiters promoted to holders on release
	LockLogs   int64 // logical lock log records written
	Probes     int64 // LCB table slots examined
}

// Sub returns the per-interval delta s - prev (see machine.Stats.Sub).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Acquires:   s.Acquires - prev.Acquires,
		Grants:     s.Grants - prev.Grants,
		Waits:      s.Waits - prev.Waits,
		Releases:   s.Releases - prev.Releases,
		Promotions: s.Promotions - prev.Promotions,
		LockLogs:   s.LockLogs - prev.LockLogs,
		Probes:     s.Probes - prev.Probes,
	}
}

// SMManager is the shared-memory lock manager: a linear-probed LCB table in
// shared memory with line-lock critical sections. By default each LCB spans
// exactly one cache line; with Chained set, LCB queues may continue into
// overflow lines (the paper's harder recovery variant — see
// SweepBrokenChains).
type SMManager struct {
	M    *machine.Machine
	Logs []*wal.Log
	// LogMode controls logical lock logging (see LogMode values).
	LogMode LogMode
	// Chained permits LCBs to span multiple cache lines. Set before first
	// use.
	Chained bool

	base  machine.LineID
	nline int

	mu       sync.Mutex
	stats    Stats
	suppress bool
	obs      *obs.Observer
}

// SetObserver attaches the observability layer; grants and queued waits are
// reported as lock events timestamped with the requesting node's clock.
func (s *SMManager) SetObserver(o *obs.Observer) {
	s.mu.Lock()
	s.obs = o
	s.mu.Unlock()
}

// observer returns the attached observer (possibly nil).
func (s *SMManager) observer() *obs.Observer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obs
}

// SetLogSuppressed disables (true) or re-enables (false) logical lock
// logging. Restart recovery suppresses logging while it replays surviving
// transactions' lock acquisitions, so the rebuild does not re-log what the
// log already records.
func (s *SMManager) SetLogSuppressed(b bool) {
	s.mu.Lock()
	s.suppress = b
	s.mu.Unlock()
}

// NewSMManager allocates and initializes a lock table of nLines LCB slots on
// machine m, formatting it from node 0. logs is indexed by node and may be
// nil when LogMode is LogNoLocks.
func NewSMManager(m *machine.Machine, nLines int, logs []*wal.Log, lm LogMode) (*SMManager, error) {
	if nLines < 1 {
		return nil, fmt.Errorf("lock: table must have at least 1 line, got %d", nLines)
	}
	s := &SMManager{M: m, Logs: logs, LogMode: lm, base: m.Alloc(nLines), nline: nLines}
	empty := make([]byte, m.LineSize())
	for i := 0; i < nLines; i++ {
		if err := m.Install(0, s.base+machine.LineID(i), empty); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// TableLines returns the LCB table's line range (for recovery scans).
func (s *SMManager) TableLines() (base machine.LineID, n int) { return s.base, s.nline }

// entryCap is the number of holder+waiter entries one LCB line can store.
func (s *SMManager) entryCap() int {
	return (s.M.LineSize() - lcbEntriesOff) / lcbEntryBytes
}

// Stats returns a snapshot of the counters.
func (s *SMManager) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *SMManager) bump(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// decodeLCB parses a raw LCB line image.
func decodeLCB(raw []byte) lcb {
	var b lcb
	b.state = raw[lcbStateOff]
	b.next = int(binary.LittleEndian.Uint32(raw[lcbNextOff:])) - 1
	if b.state != lcbUsed && b.state != lcbOverflow {
		return b
	}
	nh := int(raw[lcbNHoldOff])
	nw := int(raw[lcbNWaitOff])
	b.name = Name(binary.LittleEndian.Uint64(raw[lcbNameOff:]))
	for i := 0; i < nh+nw; i++ {
		off := lcbEntriesOff + i*lcbEntryBytes
		e := Entry{
			Txn:  wal.TxnID(binary.LittleEndian.Uint64(raw[off:])),
			Mode: Mode(raw[off+8]),
		}
		if i < nh {
			b.holders = append(b.holders, e)
		} else {
			b.waiters = append(b.waiters, e)
		}
	}
	return b
}

// encodeLCB builds a raw line image for b.
func encodeLCB(lineSize int, b lcb) []byte {
	raw := make([]byte, lineSize)
	raw[lcbStateOff] = b.state
	binary.LittleEndian.PutUint32(raw[lcbNextOff:], uint32(b.next+1))
	if b.state != lcbUsed && b.state != lcbOverflow {
		return raw
	}
	raw[lcbNHoldOff] = byte(len(b.holders))
	raw[lcbNWaitOff] = byte(len(b.waiters))
	binary.LittleEndian.PutUint64(raw[lcbNameOff:], uint64(b.name))
	i := 0
	for _, list := range [][]Entry{b.holders, b.waiters} {
		for _, e := range list {
			off := lcbEntriesOff + i*lcbEntryBytes
			binary.LittleEndian.PutUint64(raw[off:], uint64(e.Txn))
			raw[off+8] = byte(e.Mode)
			i++
		}
	}
	return raw
}

// readLCB reads and decodes the LCB at table slot i on behalf of node nd.
func (s *SMManager) readLCB(nd machine.NodeID, i int) (lcb, error) {
	raw, err := s.M.Read(nd, s.base+machine.LineID(i), 0, s.M.LineSize())
	if err != nil {
		return lcb{}, err
	}
	return decodeLCB(raw), nil
}

// writeLCB encodes and writes b to table slot i on behalf of node nd. The
// caller holds the slot's line lock.
func (s *SMManager) writeLCB(nd machine.NodeID, i int, b lcb) error {
	return s.M.Write(nd, s.base+machine.LineID(i), 0, encodeLCB(s.M.LineSize(), b))
}

// loadChain reads the complete LCB headed at table slot head — the head
// line plus, in chained mode, its overflow continuations — aggregated into
// one lcb value. The returned slots are the lines occupied, head first.
// The caller holds the head's line lock. An inconsistent chain is an error
// (SweepBrokenChains repairs chains after crashes, before any other use).
func (s *SMManager) loadChain(nd machine.NodeID, head int) (lcb, []int, error) {
	b, err := s.readLCB(nd, head)
	if err != nil {
		return lcb{}, nil, err
	}
	slots := []int{head}
	cur := b.next
	for cur >= 0 {
		if len(slots) > s.nline {
			return lcb{}, nil, fmt.Errorf("lock: LCB chain at slot %d cycles", head)
		}
		ov, err := s.readLCB(nd, cur)
		if err != nil {
			return lcb{}, nil, err
		}
		if ov.state != lcbOverflow || ov.name != Name(head) {
			return lcb{}, nil, fmt.Errorf("lock: LCB chain at slot %d broken at %d", head, cur)
		}
		b.holders = append(b.holders, ov.holders...)
		b.waiters = append(b.waiters, ov.waiters...)
		slots = append(slots, cur)
		cur = ov.next
	}
	return b, slots, nil
}

// storeChain writes the aggregated LCB b back, redistributing its entries
// across the head line and as many overflow lines as needed (chained mode),
// reusing the previously occupied slots, claiming new ones, and tombstoning
// leftovers. The caller holds the head's line lock. An empty b (state
// tombstone) frees the whole chain.
func (s *SMManager) storeChain(nd machine.NodeID, head int, b lcb, oldSlots []int) error {
	cap := s.entryCap()
	ents := make([]Entry, 0, len(b.holders)+len(b.waiters))
	ents = append(ents, b.holders...)
	ents = append(ents, b.waiters...)
	need := 1
	if len(ents) > 0 {
		need = (len(ents) + cap - 1) / cap
	}
	if b.state != lcbUsed {
		need = 0 // tombstoning the whole chain
	}
	slots := append([]int(nil), oldSlots...)
	for len(slots) < need {
		free, err := s.claimOverflowSlot(nd)
		if err != nil {
			return err
		}
		slots = append(slots, free)
	}
	// Write the occupied lines, head first.
	for i := 0; i < need; i++ {
		lo := i * cap
		hi := lo + cap
		if hi > len(ents) {
			hi = len(ents)
		}
		chunk := ents[lo:hi]
		line := lcb{state: lcbOverflow, name: Name(head), next: -1}
		if i == 0 {
			line = lcb{state: lcbUsed, name: b.name, next: -1}
		}
		if i+1 < need {
			line.next = slots[i+1]
		}
		for j, e := range chunk {
			if lo+j < len(b.holders) {
				line.holders = append(line.holders, e)
			} else {
				line.waiters = append(line.waiters, e)
			}
		}
		if err := s.writeLCB(nd, slots[i], line); err != nil {
			return err
		}
	}
	// Free what is no longer needed.
	for i := need; i < len(slots); i++ {
		if err := s.writeLCB(nd, slots[i], lcb{state: lcbTombstone, next: -1}); err != nil {
			return err
		}
	}
	return nil
}

// claimOverflowSlot finds and claims a free table slot for an overflow
// line, serializing competing claims through the slot's line lock.
func (s *SMManager) claimOverflowSlot(nd machine.NodeID) (int, error) {
	for i := 0; i < s.nline; i++ {
		b, err := s.readLCB(nd, i)
		if err != nil {
			return -1, err
		}
		if b.state != lcbEmpty && b.state != lcbTombstone {
			continue
		}
		ok, err := s.M.TryGetLine(nd, s.base+machine.LineID(i))
		if err != nil {
			return -1, err
		}
		if !ok {
			continue
		}
		b, err = s.readLCB(nd, i)
		if err == nil && (b.state == lcbEmpty || b.state == lcbTombstone) {
			// Reserve it; the caller overwrites it with real content
			// while still holding its head lock (no one follows a chain
			// without that lock).
			err = s.writeLCB(nd, i, lcb{state: lcbOverflow, name: Name(i), next: -1})
		}
		s.releaseSlot(nd, i)
		if err != nil {
			return -1, err
		}
		if b.state == lcbEmpty || b.state == lcbTombstone {
			return i, nil
		}
	}
	return -1, ErrLockTableFull
}

// hashSlot returns the home slot of a name.
func (s *SMManager) hashSlot(name Name) int {
	h := uint64(name) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	return int(h % uint64(s.nline))
}

// withLCB locates the LCB for name (or the slot where it should be
// inserted), and calls fn with the slot index and decoded LCB while holding
// the slot's line lock; fn returns the (possibly modified) LCB and whether
// to write it back. Linear probing with tombstones: the search continues
// past tombstones and ends at the first empty slot; insertion reuses the
// first tombstone seen. If create is false and the name is absent, fn is
// called with found=false and state lcbEmpty at the would-be slot.
func (s *SMManager) withLCB(nd machine.NodeID, name Name, create bool,
	fn func(slot int, b *lcb, found bool) (write bool, err error)) error {
retry:
	firstFree := -1
	h := s.hashSlot(name)
	for probe := 0; probe < s.nline; probe++ {
		i := (h + probe) % s.nline
		s.bump(func(st *Stats) { st.Probes++ })
		// Peek without the lock first; confirm under the lock.
		b, err := s.readLCB(nd, i)
		if err != nil {
			return err
		}
		switch {
		case b.state == lcbUsed && b.name == name:
			if err := s.M.GetLine(nd, s.base+machine.LineID(i)); err != nil {
				return err
			}
			b, err = s.readLCB(nd, i)
			if err != nil {
				s.releaseSlot(nd, i)
				return err
			}
			if b.state != lcbUsed || b.name != name {
				// Changed while we were acquiring the line lock.
				s.releaseSlot(nd, i)
				goto retry
			}
			full, slots, err := s.loadChain(nd, i)
			if err != nil {
				s.releaseSlot(nd, i)
				return err
			}
			write, err := fn(i, &full, true)
			if err == nil && write {
				err = s.storeChain(nd, i, full, slots)
			}
			s.releaseSlot(nd, i)
			return err
		case b.state == lcbTombstone:
			if firstFree < 0 {
				firstFree = i
			}
		case b.state == lcbEmpty:
			if firstFree < 0 {
				firstFree = i
			}
			// End of probe chain: the name is not in the table.
			if !create {
				var nb lcb
				_, err := fn(firstFree, &nb, false)
				return err
			}
			if err := s.M.GetLine(nd, s.base+machine.LineID(firstFree)); err != nil {
				return err
			}
			nb, err := s.readLCB(nd, firstFree)
			if err != nil {
				s.releaseSlot(nd, firstFree)
				return err
			}
			if nb.state != lcbEmpty && nb.state != lcbTombstone {
				// Another node claimed the slot meanwhile (as an LCB
				// head or an overflow line).
				s.releaseSlot(nd, firstFree)
				goto retry
			}
			nb = lcb{state: lcbUsed, name: name, next: -1}
			write, err := fn(firstFree, &nb, false)
			if err == nil && write {
				err = s.writeLCB(nd, firstFree, nb)
			}
			s.releaseSlot(nd, firstFree)
			return err
		}
	}
	// Full scan without hitting an empty slot (a table of used slots and
	// tombstones). The name is definitively absent.
	if !create {
		var nb lcb
		_, err := fn(firstFree, &nb, false)
		return err
	}
	if firstFree < 0 {
		return ErrLockTableFull
	}
	if err := s.M.GetLine(nd, s.base+machine.LineID(firstFree)); err != nil {
		return err
	}
	nb, err := s.readLCB(nd, firstFree)
	if err != nil {
		s.releaseSlot(nd, firstFree)
		return err
	}
	if nb.state != lcbEmpty && nb.state != lcbTombstone {
		s.releaseSlot(nd, firstFree)
		goto retry
	}
	nb = lcb{state: lcbUsed, name: name, next: -1}
	write, err := fn(firstFree, &nb, false)
	if err == nil && write {
		err = s.writeLCB(nd, firstFree, nb)
	}
	s.releaseSlot(nd, firstFree)
	return err
}

func (s *SMManager) releaseSlot(nd machine.NodeID, i int) {
	// Best effort; the only failure is not holding the lock, which would
	// be a bug upstream.
	_ = s.M.ReleaseLine(nd, s.base+machine.LineID(i))
}

// logLock writes a logical lock log record (volatile) for the operation, if
// the logging policy requires it (section 4.2.2: "prior to acquiring (or
// releasing) a lock on node x, a logical log record is written to the log on
// node x").
func (s *SMManager) logLock(nd machine.NodeID, typ wal.RecordType, txn wal.TxnID, name Name, mode Mode) {
	s.mu.Lock()
	suppressed := s.suppress
	s.mu.Unlock()
	if suppressed {
		return
	}
	switch s.LogMode {
	case LogNoLocks:
		return
	case LogWriteLocks:
		if mode != Exclusive {
			return
		}
	}
	if int(nd) >= len(s.Logs) || s.Logs[nd] == nil {
		return
	}
	s.Logs[nd].Append(wal.Record{Type: typ, Txn: txn, Lock: uint64(name), Mode: uint8(mode)})
	s.bump(func(st *Stats) { st.LockLogs++ })
}

// grantable reports whether a request by txn in mode can be granted given
// the LCB state: it must be compatible with every other holder, and no
// earlier waiter may conflict (FIFO fairness).
func grantable(b *lcb, txn wal.TxnID, mode Mode) bool {
	for _, h := range b.holders {
		if h.Txn != txn && !Compatible(h.Mode, mode) {
			return false
		}
	}
	for _, w := range b.waiters {
		if w.Txn != txn && !Compatible(w.Mode, mode) {
			return false
		}
	}
	return true
}

// Acquire requests name in mode for txn running on node nd. It returns true
// if the lock was granted immediately; false if the request was queued (the
// caller polls with Holds or abandons with CancelWait). Re-acquiring a held
// lock in the same or weaker mode is a no-op grant; an upgrade from Shared
// to Exclusive is granted when txn is the sole holder and queued otherwise.
func (s *SMManager) Acquire(nd machine.NodeID, txn wal.TxnID, name Name, mode Mode) (bool, error) {
	s.logLock(nd, wal.TypeLockAcquire, txn, name, mode)
	s.bump(func(st *Stats) { st.Acquires++ })
	granted := false
	err := s.withLCB(nd, name, true, func(_ int, b *lcb, _ bool) (bool, error) {
		// Already holding?
		for i, h := range b.holders {
			if h.Txn != txn {
				continue
			}
			if h.Mode >= mode {
				granted = true
				return false, nil
			}
			// Upgrade request.
			if len(b.holders) == 1 {
				b.holders[i].Mode = mode
				granted = true
				return true, nil
			}
			// Queue the upgrade once; a retried request must not add a
			// second waiter entry (stale duplicates would outlive the
			// transaction and resurrect it as a holder on promotion).
			for _, w := range b.waiters {
				if w.Txn == txn {
					return false, nil
				}
			}
			b.waiters = append(b.waiters, Entry{Txn: txn, Mode: mode})
			if err := s.checkCap(b); err != nil {
				return false, err
			}
			return true, nil
		}
		// Already waiting? (A retried request is not duplicated.)
		for _, w := range b.waiters {
			if w.Txn == txn {
				return false, nil
			}
		}
		if grantable(b, txn, mode) {
			b.holders = append(b.holders, Entry{Txn: txn, Mode: mode})
			granted = true
		} else {
			b.waiters = append(b.waiters, Entry{Txn: txn, Mode: mode})
		}
		if err := s.checkCap(b); err != nil {
			return false, err
		}
		return true, nil
	})
	if err != nil {
		return false, err
	}
	if granted {
		s.bump(func(st *Stats) { st.Grants++ })
	} else {
		s.bump(func(st *Stats) { st.Waits++ })
	}
	if o := s.observer(); o != nil {
		k := obs.KindLockAcquire
		if !granted {
			k = obs.KindLockWait
		}
		o.Instant(k, int32(nd), s.M.Clock(nd), int64(name), int64(mode))
	}
	return granted, nil
}

func (s *SMManager) checkCap(b *lcb) error {
	if s.Chained {
		return nil // overflow lines absorb any queue length
	}
	if len(b.holders)+len(b.waiters) > s.entryCap() {
		return fmt.Errorf("%w: %d entries (capacity %d)", ErrLCBFull, len(b.holders)+len(b.waiters), s.entryCap())
	}
	return nil
}

// Holds reports whether txn currently holds name, and in which mode.
// Waiters poll this after a queued Acquire.
func (s *SMManager) Holds(nd machine.NodeID, txn wal.TxnID, name Name) (Mode, bool, error) {
	var mode Mode
	var held bool
	err := s.withLCB(nd, name, false, func(_ int, b *lcb, found bool) (bool, error) {
		if !found {
			return false, nil
		}
		for _, h := range b.holders {
			if h.Txn == txn {
				mode, held = h.Mode, true
			}
		}
		return false, nil
	})
	return mode, held, err
}

// Release removes txn's hold on (or wait for) name and promotes newly
// compatible waiters in FIFO order. Releasing the last entry tombstones the
// LCB slot.
func (s *SMManager) Release(nd machine.NodeID, txn wal.TxnID, name Name) error {
	var mode Mode = Exclusive // logged mode; refined below
	found := false
	err := s.withLCB(nd, name, false, func(_ int, b *lcb, ok bool) (bool, error) {
		if !ok {
			return false, ErrNotHeld
		}
		for i, h := range b.holders {
			if h.Txn == txn {
				mode = h.Mode
				b.holders = append(b.holders[:i], b.holders[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			for i, w := range b.waiters {
				if w.Txn == txn {
					mode = w.Mode
					b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
					found = true
					break
				}
			}
		}
		if !found {
			return false, ErrNotHeld
		}
		s.promote(b)
		if len(b.holders) == 0 && len(b.waiters) == 0 {
			*b = lcb{state: lcbTombstone}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	s.logLock(nd, wal.TypeLockRelease, txn, name, mode)
	s.bump(func(st *Stats) { st.Releases++ })
	return nil
}

// CancelWait removes txn's queued request for name (used when a waiter
// times out or its transaction aborts). It is a no-op if txn is not
// waiting.
func (s *SMManager) CancelWait(nd machine.NodeID, txn wal.TxnID, name Name) error {
	canceled, wasHolder := false, false
	var mode Mode
	err := s.withLCB(nd, name, false, func(_ int, b *lcb, ok bool) (bool, error) {
		if !ok {
			return false, nil
		}
		for i, w := range b.waiters {
			if w.Txn == txn {
				canceled, mode = true, w.Mode
				for _, h := range b.holders {
					if h.Txn == txn {
						wasHolder = true // upgrade wait: the grant stays
					}
				}
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				s.promote(b)
				if len(b.holders) == 0 && len(b.waiters) == 0 {
					*b = lcb{state: lcbTombstone}
				}
				return true, nil
			}
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	if canceled && !wasHolder {
		// A withdrawn request that was never granted is absent from the
		// transaction's held-lock bookkeeping, so no release will ever
		// follow; without a matching log record a post-crash lock replay
		// would see the bare acquire and resurrect the request for a
		// transaction that has forgotten it — leaking the entry forever
		// once the transaction ends. An upgrade withdrawal keeps its prior
		// grant (still releasable by name) and must NOT be logged: a
		// release record would erase the held mode from the replay's view.
		s.logLock(nd, wal.TypeLockRelease, txn, name, mode)
	}
	return nil
}

// promote moves waiters to holders while the head of the queue is
// compatible with all current holders. Upgrade waiters (already holding)
// are promoted by strengthening their holder entry.
func (s *SMManager) promote(b *lcb) {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		// Upgrade case: the waiter already holds in a weaker mode.
		isUpgrade := false
		for i, h := range b.holders {
			if h.Txn == w.Txn {
				if len(b.holders) == 1 {
					b.holders[i].Mode = w.Mode
					isUpgrade = true
				}
				break
			}
		}
		if isUpgrade {
			b.waiters = b.waiters[1:]
			continue
		}
		ok := true
		for _, h := range b.holders {
			if !Compatible(h.Mode, w.Mode) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		b.holders = append(b.holders, w)
		b.waiters = b.waiters[1:]
		s.bump(func(st *Stats) { st.Promotions++ })
	}
}
