package lock

import (
	"errors"
	"sort"

	"smdb/internal/machine"
	"smdb/internal/wal"
)

// Recovery operations for the shared-memory lock space (section 4.2.2).
// After a node crash, IFA for locking requires:
//
//  1. every lock acquired by a crashed-node transaction and stored in a
//     *surviving* LCB is released (ReleaseCrashed), and
//  2. every lock acquired by a surviving transaction whose LCB was
//     *destroyed* is restored (ReinstallLost + replaying the survivors'
//     logical lock logs through Acquire, which is idempotent).
//
// Because each LCB occupies exactly one line, a crash destroys all or none
// of it; destroyed table lines are reinstalled as tombstones so that linear
// probe chains passing through them keep finding surviving LCBs.

// LockState is the decoded, exported view of one LCB (for recovery
// verification and experiments).
type LockState struct {
	Name    Name
	Holders []Entry
	Waiters []Entry
}

// ReinstallLost reinstalls every lock-table line that is no longer resident
// in any cache as a tombstone slot, on behalf of node nd. It returns the
// number of lines reinstalled (the count of destroyed LCB slots).
func (s *SMManager) ReinstallLost(nd machine.NodeID) (int, error) {
	img := encodeLCB(s.M.LineSize(), lcb{state: lcbTombstone, next: -1})
	n := 0
	for i := 0; i < s.nline; i++ {
		l := s.base + machine.LineID(i)
		if s.M.Resident(l) {
			continue
		}
		if err := s.M.Install(nd, l, img); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ReleaseCrashed scans every surviving LCB and removes holder and waiter
// entries belonging to transactions that ran on the crashed nodes, promoting
// newly compatible waiters. It returns the number of entries released.
// Non-resident table lines are skipped (ReinstallLost handles them).
func (s *SMManager) ReleaseCrashed(nd machine.NodeID, crashed []machine.NodeID) (int, error) {
	down := make(map[machine.NodeID]bool, len(crashed))
	for _, c := range crashed {
		down[c] = true
	}
	released := 0
	for i := 0; i < s.nline; i++ {
		l := s.base + machine.LineID(i)
		if !s.M.Resident(l) {
			continue
		}
		if err := s.M.GetLine(nd, l); err != nil {
			if errors.Is(err, machine.ErrLineLost) {
				continue
			}
			return released, err
		}
		b, err := s.readLCB(nd, i)
		if err != nil {
			s.releaseSlot(nd, i)
			return released, err
		}
		if b.state != lcbUsed {
			// Overflow lines are handled through their heads; empty and
			// tombstoned slots have nothing to release.
			s.releaseSlot(nd, i)
			continue
		}
		full, slots, err := s.loadChain(nd, i)
		if err != nil {
			s.releaseSlot(nd, i)
			return released, err
		}
		changed := false
		full.holders, changed = dropCrashed(full.holders, down, &released, changed)
		full.waiters, changed = dropCrashed(full.waiters, down, &released, changed)
		if changed {
			s.promote(&full)
			if len(full.holders) == 0 && len(full.waiters) == 0 {
				full.state = lcbTombstone
			}
			if err := s.storeChain(nd, i, full, slots); err != nil {
				s.releaseSlot(nd, i)
				return released, err
			}
		}
		s.releaseSlot(nd, i)
	}
	return released, nil
}

// SweepBrokenChains repairs the chained-LCB table after a crash (no-op for
// the one-line organization): any LCB whose overflow chain was broken by
// the failure — a fragment destroyed, or a dangling continuation — is
// discarded in its entirety (all surviving fragments tombstoned), to be
// rebuilt from the surviving nodes' lock logs, "rather than attempting to
// repair only the missing portion" (section 4.2.2). Orphaned overflow
// fragments whose heads died are reclaimed too. It returns the number of
// LCBs dropped and the number of orphaned fragments reclaimed. Run it after
// ReinstallLost and before ReleaseCrashed.
func (s *SMManager) SweepBrokenChains(nd machine.NodeID) (int, int, error) {
	referenced := make(map[int]bool)
	dropped, orphans := 0, 0
	for i := 0; i < s.nline; i++ {
		b, err := s.readLCB(nd, i)
		if err != nil {
			return dropped, orphans, err
		}
		if b.state != lcbUsed {
			continue
		}
		// Walk the chain, remembering every fragment reached.
		parts := []int{i}
		intact := true
		cur := b.next
		for cur >= 0 && len(parts) <= s.nline {
			ov, err := s.readLCB(nd, cur)
			if err != nil {
				return dropped, orphans, err
			}
			if ov.state != lcbOverflow || ov.name != Name(i) {
				intact = false
				break
			}
			parts = append(parts, cur)
			cur = ov.next
		}
		if intact {
			for _, p := range parts[1:] {
				referenced[p] = true
			}
			continue
		}
		// Broken: drop every surviving fragment; replay will rebuild.
		dropped++
		for _, p := range parts {
			if err := s.writeLCB(nd, p, lcb{state: lcbTombstone, next: -1}); err != nil {
				return dropped, orphans, err
			}
		}
	}
	// Reclaim orphaned overflow fragments (their head died or was dropped).
	for i := 0; i < s.nline; i++ {
		b, err := s.readLCB(nd, i)
		if err != nil {
			return dropped, orphans, err
		}
		if b.state == lcbOverflow && !referenced[i] {
			orphans++
			if err := s.writeLCB(nd, i, lcb{state: lcbTombstone, next: -1}); err != nil {
				return dropped, orphans, err
			}
		}
	}
	return dropped, orphans, nil
}

func dropCrashed(list []Entry, down map[machine.NodeID]bool, released *int, changed bool) ([]Entry, bool) {
	out := list[:0]
	for _, e := range list {
		if down[e.Txn.Node()] {
			*released++
			changed = true
			continue
		}
		out = append(out, e)
	}
	return out, changed
}

// Snapshot returns the state of every used LCB (whole chains aggregated),
// read on behalf of node nd. Non-resident lines and broken chains are
// skipped. Intended for verification and experiments, not for the
// transaction path.
func (s *SMManager) Snapshot(nd machine.NodeID) ([]LockState, error) {
	var out []LockState
	for i := 0; i < s.nline; i++ {
		l := s.base + machine.LineID(i)
		if !s.M.Resident(l) {
			continue
		}
		b, err := s.readLCB(nd, i)
		if err != nil {
			if errors.Is(err, machine.ErrLineLost) {
				continue
			}
			return nil, err
		}
		if b.state != lcbUsed {
			continue
		}
		full, _, err := s.loadChain(nd, i)
		if err != nil {
			continue // broken chain mid-crash; the sweep will handle it
		}
		out = append(out, LockState{Name: full.name, Holders: full.holders, Waiters: full.waiters})
	}
	return out, nil
}

// LostLCBCount returns how many table lines are currently non-resident
// (destroyed LCB slots awaiting ReinstallLost).
func (s *SMManager) LostLCBCount() int {
	n := 0
	for i := 0; i < s.nline; i++ {
		if !s.M.Resident(s.base + machine.LineID(i)) {
			n++
		}
	}
	return n
}

// WaitsFor builds the waits-for relation from the current lock space, read
// on behalf of node nd: txn A waits for txn B if A is queued (or requesting
// an upgrade) on an LCB where B holds an incompatible mode, or where B is an
// earlier incompatible waiter. Used for deadlock detection.
func (s *SMManager) WaitsFor(nd machine.NodeID) (map[wal.TxnID][]wal.TxnID, error) {
	snap, err := s.Snapshot(nd)
	if err != nil {
		return nil, err
	}
	out := make(map[wal.TxnID][]wal.TxnID)
	for _, st := range snap {
		for wi, w := range st.Waiters {
			for _, h := range st.Holders {
				if h.Txn != w.Txn && !Compatible(h.Mode, w.Mode) {
					out[w.Txn] = append(out[w.Txn], h.Txn)
				}
			}
			for _, earlier := range st.Waiters[:wi] {
				if earlier.Txn != w.Txn && !Compatible(earlier.Mode, w.Mode) {
					out[w.Txn] = append(out[w.Txn], earlier.Txn)
				}
			}
		}
	}
	return out, nil
}

// FindDeadlock returns the victim of one waits-for cycle, or 0 if the lock
// space is deadlock-free. Victim selection is deterministic: the youngest
// (largest-ID) transaction on the first cycle found in sorted traversal
// order, so every participant that polls reaches the same verdict.
func (s *SMManager) FindDeadlock(nd machine.NodeID) (wal.TxnID, error) {
	g, err := s.WaitsFor(nd)
	if err != nil {
		return 0, err
	}
	roots := make([]wal.TxnID, 0, len(g))
	for t := range g {
		roots = append(roots, t)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[wal.TxnID]int, len(g))
	var stack []wal.TxnID
	var victim wal.TxnID
	var visit func(t wal.TxnID) bool
	visit = func(t wal.TxnID) bool {
		color[t] = gray
		stack = append(stack, t)
		for _, u := range g[t] {
			switch color[u] {
			case gray:
				// The cycle is the stack suffix starting at u.
				victim = u
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] > victim {
						victim = stack[i]
					}
					if stack[i] == u {
						break
					}
				}
				return true
			case white:
				if visit(u) {
					return true
				}
			}
		}
		color[t] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for _, t := range roots {
		if color[t] == white && visit(t) {
			return victim, nil
		}
	}
	return 0, nil
}
