package lock

import (
	"testing"

	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

func newChained(t *testing.T, nodes, tableLines int) (*SMManager, *machine.Machine) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, Lines: tableLines + 64})
	logs := make([]*wal.Log, nodes)
	for i := range logs {
		var err error
		logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSMManager(m, tableLines, logs, LogAllLocks)
	if err != nil {
		t.Fatal(err)
	}
	s.Chained = true
	return s, m
}

// TestChainedOverflow: more holders than one line can store spill into
// overflow lines, remain visible, and shrink back on release.
func TestChainedOverflow(t *testing.T) {
	s, _ := newChained(t, 2, 64)
	name := NameOfKey(7)
	cap := s.entryCap()
	n := cap + 5 // forces a second line
	for i := 0; i < n; i++ {
		txn := wal.MakeTxnID(machine.NodeID(i%2), uint64(i+1))
		if g, err := s.Acquire(machine.NodeID(i%2), txn, name, Shared); err != nil || !g {
			t.Fatalf("holder %d: %v, %v", i, g, err)
		}
	}
	snap, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || len(snap[0].Holders) != n {
		t.Fatalf("snapshot = %d LCBs, %d holders; want 1, %d", len(snap), len(snap[0].Holders), n)
	}
	// Every holder is individually visible.
	for i := 0; i < n; i++ {
		txn := wal.MakeTxnID(machine.NodeID(i%2), uint64(i+1))
		if _, held, err := s.Holds(0, txn, name); err != nil || !held {
			t.Errorf("holder %d invisible: %v, %v", i, held, err)
		}
	}
	// Release all: the chain shrinks and finally tombstones.
	for i := 0; i < n; i++ {
		txn := wal.MakeTxnID(machine.NodeID(i%2), uint64(i+1))
		if err := s.Release(machine.NodeID(i%2), txn, name); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	snap, err = s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 0 {
		t.Errorf("lock space not empty after releases: %+v", snap)
	}
	// The freed overflow slots are reusable: fill the table with fresh
	// single-line locks.
	for i := 0; i < 32; i++ {
		txn := wal.MakeTxnID(0, uint64(1000+i))
		if g, err := s.Acquire(0, txn, NameOfKey(uint64(100+i)), Exclusive); err != nil || !g {
			t.Fatalf("post-shrink acquire %d: %v, %v", i, g, err)
		}
	}
}

// TestChainedWaitersOverflow: long waiter queues spill too, and FIFO
// promotion order is preserved across the chain.
func TestChainedWaitersOverflow(t *testing.T) {
	s, _ := newChained(t, 2, 64)
	name := NameOfKey(9)
	holder := wal.MakeTxnID(0, 1)
	if g, _ := s.Acquire(0, holder, name, Exclusive); !g {
		t.Fatal("holder not granted")
	}
	nWaiters := s.entryCap() + 3
	for i := 0; i < nWaiters; i++ {
		txn := wal.MakeTxnID(1, uint64(i+10))
		if g, err := s.Acquire(1, txn, name, Exclusive); err != nil || g {
			t.Fatalf("waiter %d: granted=%v err=%v", i, g, err)
		}
	}
	// Release the holder: exactly the first waiter is promoted.
	if err := s.Release(0, holder, name); err != nil {
		t.Fatal(err)
	}
	if _, held, _ := s.Holds(0, wal.MakeTxnID(1, 10), name); !held {
		t.Error("first waiter not promoted")
	}
	if _, held, _ := s.Holds(0, wal.MakeTxnID(1, 11), name); held {
		t.Error("second waiter promoted out of order")
	}
}

// TestChainedCrashDropsWholeLCB: destroying one fragment of a chained LCB
// drops the whole chain (section 4.2.2: "it would be much easier to
// reconstruct the entire LCB"), and orphaned fragments are reclaimed.
func TestChainedCrashDropsWholeLCB(t *testing.T) {
	s, m := newChained(t, 3, 64)
	name := NameOfKey(3)
	n := s.entryCap() + 4
	for i := 0; i < n; i++ {
		txn := wal.MakeTxnID(machine.NodeID(i%2), uint64(i+1))
		if g, err := s.Acquire(machine.NodeID(i%2), txn, name, Shared); err != nil || !g {
			t.Fatalf("holder %d: %v %v", i, g, err)
		}
	}
	// The last acquirer (node 1) wrote every line of the chain, so the
	// whole chain is exclusively cached there; crash it.
	m.Crash(1)
	lost := s.LostLCBCount()
	if lost == 0 {
		t.Fatal("crash destroyed no LCB lines")
	}
	if _, err := s.ReinstallLost(0); err != nil {
		t.Fatal(err)
	}
	dropped, orphans, err := s.SweepBrokenChains(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = orphans
	// Either the whole chain died (nothing to drop) or a fragment
	// survived and the sweep dropped the remains; in both cases the name
	// must be absent afterwards and the table consistent.
	snap, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range snap {
		if ls.Name == name {
			t.Errorf("broken chain still visible: %+v (dropped=%d)", ls, dropped)
		}
	}
	// Replay-style rebuild: re-request the surviving node's locks.
	s.SetLogSuppressed(true)
	rebuilt := 0
	for i := 0; i < n; i += 2 { // node 0's transactions
		txn := wal.MakeTxnID(0, uint64(i+1))
		if g, err := s.Acquire(0, txn, name, Shared); err != nil || !g {
			t.Fatalf("rebuild %d: %v %v", i, g, err)
		}
		rebuilt++
	}
	s.SetLogSuppressed(false)
	snap, _ = s.Snapshot(0)
	if len(snap) != 1 || len(snap[0].Holders) != rebuilt {
		t.Errorf("rebuilt LCB: %+v, want %d holders", snap, rebuilt)
	}
}

// TestSweepNoopOnIntactTable: the sweep changes nothing when no chain is
// broken, in either mode.
func TestSweepNoopOnIntactTable(t *testing.T) {
	s, _ := newChained(t, 2, 64)
	name := NameOfKey(5)
	for i := 0; i < s.entryCap()+2; i++ {
		txn := wal.MakeTxnID(0, uint64(i+1))
		if g, err := s.Acquire(0, txn, name, Shared); err != nil || !g {
			t.Fatal(g, err)
		}
	}
	before, _ := s.Snapshot(0)
	dropped, orphans, err := s.SweepBrokenChains(0)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || orphans != 0 {
		t.Errorf("sweep touched an intact table: dropped=%d orphans=%d", dropped, orphans)
	}
	after, _ := s.Snapshot(0)
	if len(before) != len(after) || len(before[0].Holders) != len(after[0].Holders) {
		t.Errorf("sweep mutated an intact table: %+v -> %+v", before, after)
	}
}
