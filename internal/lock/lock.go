// Package lock implements database locking for the shared-memory system.
//
// The primary implementation is SM locking (paper section 4.2.2): lock
// control blocks (LCBs) live directly in shared memory, sized so each LCB
// spans exactly one cache line, and every LCB operation runs inside a
// critical section built from the machine's line locks. Acquiring a lock
// thus costs a few local memory references instead of an inter-process
// message exchange — the performance argument of the paper (and of its
// companion report [20]).
//
// Because LCB lines are shared, they migrate between nodes exactly like
// record lines do, so a node crash can destroy lock state belonging to
// surviving transactions, or preserve lock state belonging to crashed ones.
// The package therefore also provides the recovery operations of section
// 4.2.2: releasing every lock held by crashed-node transactions from
// surviving LCBs, and rebuilding destroyed LCBs from the survivors' logical
// lock logs (which is why IFA requires read locks to be logged too).
//
// A shared-disk-style message-passing lock manager (SDManager) is included
// as the baseline SM locking is compared against.
package lock

import (
	"errors"
	"fmt"

	"smdb/internal/heap"
	"smdb/internal/storage"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared allows concurrent readers.
	Shared Mode = 1
	// Exclusive allows a single reader/writer.
	Exclusive Mode = 2
)

func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Compatible reports whether a and b may be held simultaneously by
// different transactions.
func Compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Name identifies a lockable object. Helpers below derive names from
// records and keys; 0 is reserved (never a valid name).
type Name uint64

// NameOfRID returns the lock name of a heap record.
func NameOfRID(rid heap.RID) Name {
	return Name(1)<<62 | Name(uint32(rid.Page))<<16 | Name(rid.Slot)
}

// NameOfKey returns the lock name of a B-tree key. The tag in the top bits
// avoids collisions with RID names and the reserved zero name.
func NameOfKey(key uint64) Name {
	return Name(2)<<62 | Name(key&(1<<62-1))
}

// NameOfPage returns the lock name of a whole page.
func NameOfPage(p storage.PageID) Name {
	return Name(3)<<62 | Name(uint32(p))
}

// Errors.
var (
	// ErrLockTableFull reports that linear probing found no free LCB slot.
	ErrLockTableFull = errors.New("lock: lock table full")
	// ErrLCBFull reports that an LCB's fixed entry area overflowed.
	ErrLCBFull = errors.New("lock: lock control block full")
	// ErrNotHeld reports a release of a lock the transaction neither holds
	// nor waits for.
	ErrNotHeld = errors.New("lock: not held by transaction")
)
