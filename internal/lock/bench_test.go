package lock

import (
	"testing"

	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

func benchSM(b *testing.B, lm LogMode) (*SMManager, *machine.Machine) {
	b.Helper()
	m := machine.New(machine.Config{Nodes: 4, Lines: 4096})
	logs := make([]*wal.Log, 4)
	for i := range logs {
		var err error
		logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			b.Fatal(err)
		}
	}
	s, err := NewSMManager(m, 2048, logs, lm)
	if err != nil {
		b.Fatal(err)
	}
	return s, m
}

func BenchmarkSMAcquireReleaseLocal(b *testing.B) {
	s, _ := benchSM(b, LogNoLocks)
	txn := wal.MakeTxnID(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := NameOfKey(uint64(i % 256))
		if _, err := s.Acquire(0, txn, name, Exclusive); err != nil {
			b.Fatal(err)
		}
		if err := s.Release(0, txn, name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMAcquireReleaseMigrating alternates the acquiring node so every
// LCB line migrates between caches — the paper's sharing pattern.
func BenchmarkSMAcquireReleaseMigrating(b *testing.B) {
	s, _ := benchSM(b, LogAllLocks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd := machine.NodeID(i % 4)
		txn := wal.MakeTxnID(nd, uint64(i+1))
		name := NameOfKey(uint64(i % 64))
		if _, err := s.Acquire(nd, txn, name, Shared); err != nil {
			b.Fatal(err)
		}
		if err := s.Release(nd, txn, name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSDAcquireRelease(b *testing.B) {
	m := machine.New(machine.Config{Nodes: 4, Lines: 64})
	s := NewSDManager(m, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd := machine.NodeID(i % 4)
		txn := wal.MakeTxnID(nd, uint64(i+1))
		name := NameOfKey(uint64(i % 256))
		if _, err := s.Acquire(nd, txn, name, Exclusive); err != nil {
			b.Fatal(err)
		}
		if err := s.Release(nd, txn, name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaitsForGraph(b *testing.B) {
	s, _ := benchSM(b, LogNoLocks)
	// Build a lock space with holders and waiters.
	for i := 0; i < 64; i++ {
		holder := wal.MakeTxnID(machine.NodeID(i%4), uint64(i+1))
		waiter := wal.MakeTxnID(machine.NodeID((i+1)%4), uint64(i+1000))
		name := NameOfKey(uint64(i))
		if _, err := s.Acquire(machine.NodeID(i%4), holder, name, Exclusive); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Acquire(machine.NodeID((i+1)%4), waiter, name, Exclusive); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FindDeadlock(0); err != nil {
			b.Fatal(err)
		}
	}
}
